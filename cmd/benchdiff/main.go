// Command benchdiff prints the wall-clock perf delta between two BENCH_PR
// snapshots produced by `make bench-json`: per benchmark, old vs new ns/op
// and the relative change, plus B/op and allocs/op movement. It is the
// non-gating CI step that makes the perf trajectory visible on every PR.
//
// Usage:
//
//	benchdiff OLD.json NEW.json    # explicit snapshots
//	benchdiff                      # auto: diff the two newest BENCH_PR*.json
//	                               # in the current directory (by PR number)
//
// With fewer than two snapshots available, auto mode prints a notice and
// exits 0 — the first PR that ships an artifact has nothing to diff against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Entry mirrors cmd/benchjson's artifact schema.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func load(path string) (map[string]Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Entry
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

var prName = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// latestTwo picks the two highest-numbered BENCH_PR*.json in dir.
func latestTwo(dir string) (old, new string, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_PR*.json"))
	if err != nil {
		return "", "", err
	}
	type snap struct {
		n    int
		path string
	}
	var snaps []snap
	for _, p := range matches {
		m := prName.FindStringSubmatch(filepath.Base(p))
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		snaps = append(snaps, snap{n, p})
	}
	if len(snaps) < 2 {
		return "", "", nil
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].n < snaps[j].n })
	return snaps[len(snaps)-2].path, snaps[len(snaps)-1].path, nil
}

func pct(oldV, newV float64) string {
	if oldV == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
}

func main() {
	flag.Parse()
	var oldPath, newPath string
	switch flag.NArg() {
	case 0:
		var err error
		oldPath, newPath, err = latestTwo(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		if oldPath == "" {
			fmt.Println("benchdiff: fewer than two BENCH_PR*.json snapshots, nothing to diff")
			return
		}
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff [OLD.json NEW.json]")
		os.Exit(2)
	}

	oldM, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	newM, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(newM))
	for n := range newM {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Printf("%s -> %s\n", oldPath, newPath)
	fmt.Printf("%-34s %14s %14s %9s %9s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "ns/op", "B/op", "allocs")
	for _, n := range names {
		ne := newM[n]
		oe, ok := oldM[n]
		if !ok {
			fmt.Printf("%-34s %14s %14.0f %9s %9s %9s\n", n, "(new)", ne.NsPerOp, "-", "-", "-")
			continue
		}
		fmt.Printf("%-34s %14.0f %14.0f %9s %9s %9s\n", n, oe.NsPerOp, ne.NsPerOp,
			pct(oe.NsPerOp, ne.NsPerOp), pct(oe.BytesPerOp, ne.BytesPerOp),
			pct(oe.AllocsPerOp, ne.AllocsPerOp))
	}
	removed := make([]string, 0, len(oldM))
	for n := range oldM {
		if _, ok := newM[n]; !ok {
			removed = append(removed, n)
		}
	}
	sort.Strings(removed)
	for _, n := range removed {
		fmt.Printf("%-34s (removed)\n", n)
	}
}
