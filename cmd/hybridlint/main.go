// Command hybridlint is the repository's static-analysis gate: a multichecker
// running the four custom analyzers that machine-check the simulator's core
// invariants (see DESIGN.md §8):
//
//	wallclock  no wall-clock time / global math/rand in simulation packages
//	lockcheck  "guarded by mu" fields only touched with mu held
//	maporder   no order-dependent effects inside map iteration
//	vtunits    no raw vclock/time conversions or cross-timeline arithmetic
//
// Usage:
//
//	hybridlint [-only name[,name]] [./...]
//
// The tool always analyzes the whole module containing the working directory
// (the pattern argument is accepted for familiarity). It exits non-zero when
// any diagnostic survives the //lint:allow filter.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hybridndp/internal/analysis"
	"hybridndp/internal/analysis/load"
	"hybridndp/internal/analysis/lockcheck"
	"hybridndp/internal/analysis/maporder"
	"hybridndp/internal/analysis/vtunits"
	"hybridndp/internal/analysis/wallclock"
)

var all = []*analysis.Analyzer{
	wallclock.Analyzer,
	lockcheck.Analyzer,
	maporder.Analyzer,
	vtunits.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "hybridlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridlint:", err)
		os.Exit(2)
	}
	units, err := load.Module(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(units, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil {
			rel = r
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hybridlint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
