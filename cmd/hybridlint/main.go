// Command hybridlint is the repository's static-analysis gate: a multichecker
// running the eight custom analyzers that machine-check the simulator's core
// invariants (see DESIGN.md §8):
//
//	wallclock    no wall-clock time / global math/rand in simulation packages
//	lockcheck    "guarded by mu" fields only touched with mu held
//	maporder     no order-dependent effects inside map iteration
//	vtunits      no raw vclock/time conversions or cross-timeline arithmetic
//	chargecheck  modeled I/O must charge a vclock.Timeline (whole-program, fact-based)
//	spanbalance  every obs.Trace.Start paired with End on all control-flow paths
//	errsink      no discarded error results from simulator emit/inject/recovery APIs
//	detsched     no scheduler-order nondeterminism (multi-case selects, arrival-order fan-in)
//
// Usage:
//
//	hybridlint [-only name[,name]] [-json] [-github] [-budget 30s] [./...]
//
// The tool always analyzes the whole module containing the working directory
// (the pattern argument is accepted for familiarity). Analyzers run
// concurrently; the merged output is fully sorted (file, line, column,
// analyzer, message) and therefore stable across runs. It exits 1 when any
// diagnostic survives the //lint:allow filter, 2 on load/usage errors, and 3
// when -budget is set and the run exceeded it (the tier-1 gate must stay
// fast enough to run on every push).
//
// -json prints the diagnostics as a JSON array of
// {file,line,col,analyzer,message} objects for tooling; -github prints
// GitHub Actions workflow annotations (::error file=...) so findings surface
// inline on pull requests. Both forms use the same deterministic order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hybridndp/internal/analysis"
	"hybridndp/internal/analysis/chargecheck"
	"hybridndp/internal/analysis/detsched"
	"hybridndp/internal/analysis/errsink"
	"hybridndp/internal/analysis/load"
	"hybridndp/internal/analysis/lockcheck"
	"hybridndp/internal/analysis/maporder"
	"hybridndp/internal/analysis/spanbalance"
	"hybridndp/internal/analysis/vtunits"
	"hybridndp/internal/analysis/wallclock"
)

var all = []*analysis.Analyzer{
	wallclock.Analyzer,
	lockcheck.Analyzer,
	maporder.Analyzer,
	vtunits.Analyzer,
	chargecheck.Analyzer,
	spanbalance.Analyzer,
	errsink.Analyzer,
	detsched.Analyzer,
}

// jsonDiag is the machine-readable diagnostic shape (-json).
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "print diagnostics as a JSON array of {file,line,col,analyzer,message}")
	github := flag.Bool("github", false, "print diagnostics as GitHub Actions ::error annotations")
	budget := flag.Duration("budget", 0, "fail with exit code 3 if the run exceeds this wall time (0 = no budget)")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "hybridlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	start := time.Now()
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridlint:", err)
		os.Exit(2)
	}
	units, err := load.Module(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(units, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hybridlint:", err)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	rel := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil {
			return r
		}
		return name
	}
	switch {
	case *asJSON:
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: rel(d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "hybridlint:", err)
			os.Exit(2)
		}
	case *github:
		for _, d := range diags {
			// https://docs.github.com/actions/reference/workflow-commands:
			// property values need %, CR and LF escaped.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=hybridlint %s::%s\n",
				rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, escapeAnnotation(d.Message))
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hybridlint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "hybridlint: run took %s, over the %s budget\n", elapsed.Round(time.Millisecond), *budget)
		os.Exit(3)
	}
}

// escapeAnnotation escapes a workflow-command message value.
func escapeAnnotation(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
