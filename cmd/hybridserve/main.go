// Command hybridserve replays a JOB query mix through the concurrent query
// scheduler and prints the serving statistics: admission/degradation counts,
// queue waits per priority class, pool busy times and the virtual throughput.
//
// Usage:
//
//	hybridserve                              # adaptive policy, JOB mix ×3
//	hybridserve -policy host                 # always-host baseline
//	hybridserve -policy ndp -workers 4       # always-NDP, 4 workers
//	hybridserve -sweep                       # policy × concurrency table
//	hybridserve -devices 4 -repeat 5         # bigger fleet, longer mix
//
// Open-loop SLO mode (the serving front door: SQL sessions, shared plan
// cache, per-tenant quotas and weighted fair queuing) — active whenever
// -tenants, -arrival or -slo is given. It plays the identical arrival stream
// through force-host, force-ndp and adaptive placement and prints the
// per-tenant p50/p95/p99 and SLO-miss table:
//
//	hybridserve -tenants 3 -arrival poisson:200 -slo 10ms
//	hybridserve -tenants gold:4:150:5,bronze:1:50:20 -arrival burst:80:50:0.2:5
//	hybridserve -tenants 3 -slo 10ms -metrics   # plus per-policy registry dumps
//
// Chaos-SLO mode — active when -faults is combined with open-loop SLO mode.
// The workload's cost table is measured through a fault-injected fleet (once
// unhedged, once with hedged shard execution) and the identical arrival
// stream plays through five policy×hedge combos; the run exits non-zero
// unless adaptive+hedge strictly beats both force-host and unhedged adaptive
// on worst-tenant p99 and SLO-miss rate:
//
//	hybridserve -faults "dev1:dev.stall=2ms,seed=1" -arrival poisson
//	hybridserve -faults "dev1:dev.stall=2ms,seed=1" -arrival poisson -deadlines
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hybridndp/internal/fault"
	"hybridndp/internal/fleet"
	"hybridndp/internal/harness"
	"hybridndp/internal/hw"
	"hybridndp/internal/obs"
	"hybridndp/internal/sched"
	"hybridndp/internal/serve"
	"hybridndp/internal/vclock"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.01, "JOB dataset scale (1.0 ≈ 3.9M rows)")
		policy  = flag.String("policy", "adaptive", "adaptive | host | ndp")
		workers = flag.Int("workers", 16, "worker pool size (concurrent queries)")
		queue   = flag.Int("queue", 0, "admission queue depth (0 = sized to the mix)")
		devices = flag.Int("devices", 1, "smart-storage fleet size")
		repeat  = flag.Int("repeat", 3, "times the JOB suite is replayed")
		timeout = flag.Duration("timeout", 0, "per-query admission timeout (0 = none)")
		sweep   = flag.Bool("sweep", false, "run the policy × concurrency sweep instead")
		traceF  = flag.String("trace", "",
			"write a merged Chrome trace_event JSON of every served query to this file")
		metrics = flag.Bool("metrics", false,
			"record scheduler/executor metrics and print the registry dump at the end")
		faults = flag.String("faults", "",
			"fault-injection spec (see jobbench -faults): serve the mix with device faults injected; recovery retries, host fallback and circuit breaking keep queries answering")
		fleetSpec = flag.String("fleet", "",
			"serve through sharded fleet scatter-gather execution with this partitioning spec (range | stripe | stripe:<n>); shard admission shares the scheduler's ledger and breakers, and -devices sets the fleet size")
		tenantsF = flag.String("tenants", "",
			"open-loop SLO mode: tenant count, or comma-separated name:weight[:qps[:slo_ms]] specs (qps = offered rate; omitted fields default)")
		arrivalF = flag.String("arrival", "",
			"open-loop arrival process: poisson[:qps] | burst:<qps>:<period_ms>:<duty>:<mult> | trace:<ms>,<ms>,... (activates open-loop SLO mode)")
		sloF = flag.Duration("slo", 0,
			"default per-tenant latency objective for open-loop SLO mode (virtual time; 0 = 10ms for count-form tenants)")
		horizonF = flag.Duration("horizon", time.Second,
			"open-loop arrival window in virtual time")
		seedF     = flag.Int64("seed", 1, "open-loop arrival/selection seed")
		deadlineF = flag.Duration("deadline", 0,
			"per-request deadline for batch serving mode: bounds both the wall-clock queue wait and the virtual execution budget; expired requests reject with sched.ErrExpired, deadline-pressed fleet shards degrade to host")
		deadlinesB = flag.Bool("deadlines", false,
			"open-loop SLO/chaos mode: shed requests whose earliest feasible completion would already blow arrival + tenant SLO (serve.ErrDeadlineExceeded)")
		hedgeB = flag.Bool("hedge", false,
			"enable hedged shard execution in batch fleet mode: slow shards get a host-native backup and the earlier virtual finisher wins")
	)
	flag.Parse()

	var pol sched.Policy
	switch strings.ToLower(*policy) {
	case "adaptive":
		pol = sched.Adaptive
	case "host":
		pol = sched.ForceHost
	case "ndp":
		pol = sched.ForceNDP
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q (adaptive | host | ndp)\n", *policy)
		os.Exit(2)
	}

	start := time.Now()
	fmt.Printf("loading JOB at scale %g ...\n", *scale)
	h, err := harness.New(*scale, hw.Cosmos())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded in %v\n", time.Since(start).Round(time.Millisecond))

	if *tenantsF != "" || *arrivalF != "" || *sloF != 0 {
		if *faults != "" {
			if err := chaosOpenLoop(h, *faults, *tenantsF, *arrivalF, *sloF, *horizonF,
				*seedF, *workers, *devices, *metrics, *deadlinesB); err != nil {
				fatal(err)
			}
		} else if err := openLoop(h, *tenantsF, *arrivalF, *sloF, *horizonF, *seedF, *workers, *queue, *metrics, *deadlinesB); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwall time %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	var faultPlan *fault.Plan
	if *faults != "" {
		p, err := fault.Parse(*faults)
		if err != nil {
			fatal(err)
		}
		faultPlan = p
		h.Exec.Faults = p
		fmt.Printf("fault injection active: %s\n", p)
	}

	if *sweep {
		if _, err := h.ServingSweep(os.Stdout, nil); err != nil {
			fatal(err)
		}
		return
	}

	mix := harness.ServingMix(*repeat)
	cfg := sched.DefaultConfig()
	cfg.Policy = pol
	cfg.Workers = *workers
	cfg.Devices = *devices
	cfg.QueryTimeout = *timeout
	cfg.QueueDepth = *queue
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * len(mix)
	}

	var reg *obs.Registry
	if *metrics {
		reg = h.BindMetrics(obs.NewRegistry())
		cfg.Metrics = reg
	}
	var traces *obs.TraceSet
	if *traceF != "" {
		traces = obs.NewTraceSet()
		cfg.Traces = traces
	}
	if *fleetSpec != "" {
		desc, err := fleet.Build(h.DS.Cat, cfg.Devices, *fleetSpec)
		if err != nil {
			fatal(err)
		}
		if err := desc.Validate(h.DS.Cat); err != nil {
			fatal(err)
		}
		cfg.Fleet = fleet.NewExecutor(h.DS.Cat, h.DS.DB, h.DS.Model, desc)
		cfg.Fleet.Faults = faultPlan
		if *hedgeB {
			cfg.Fleet.Hedge = fleet.HedgeConfig{Enabled: true}
			fmt.Println("hedged shard execution active")
		}
		fmt.Printf("fleet execution active:\n%s", desc)
	} else if *hedgeB {
		fatal(fmt.Errorf("-hedge requires -fleet (hedging is per-shard)"))
	}

	fmt.Printf("serving %d queries (%s policy, %d workers, %d device(s)) ...\n",
		len(mix), pol, cfg.Workers, cfg.Devices)
	s := sched.New(h.Opt, h.Exec, h.DS.Model, cfg)
	dl := sched.Deadline{Wall: *deadlineF, Exec: vclock.FromStd(*deadlineF)}
	for i, q := range mix {
		if _, err := s.SubmitDeadline(context.Background(), q, sched.Priority(i%3), dl); err != nil {
			s.Close()
			fatal(fmt.Errorf("submit %s: %w", q.Name, err))
		}
	}
	s.Close()
	st := s.Stats()
	fmt.Println()
	fmt.Print(st)
	if traces != nil {
		f, err := os.Create(*traceF)
		if err != nil {
			fatal(err)
		}
		if err := traces.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s (%d traces)\n", *traceF, len(traces.Traces()))
	}
	if reg != nil {
		h.PublishStorage(reg)
		fmt.Println("\nmetrics")
		fmt.Println("-------")
		fmt.Print(reg.Dump())
	}
	fmt.Printf("\nwall time %v\n", time.Since(start).Round(time.Millisecond))
	if st.Errors > 0 {
		os.Exit(1)
	}
}

// openLoop runs the serving-front-door experiment: the SLO sweep over the
// three policies with the identical arrival stream, printing the per-tenant
// tail-latency table (and, with -metrics, each policy's registry dump).
func openLoop(h *harness.H, tenantsSpec, arrivalSpec string, slo, horizon time.Duration, seed int64, workers, queue int, metrics, deadlines bool) error {
	defSLO := vclock.FromStd(slo)
	if defSLO <= 0 {
		defSLO = 10 * vclock.Millisecond
	}
	tenants, err := parseTenants(tenantsSpec, defSLO)
	if err != nil {
		return err
	}
	opt := harness.SLOOptions{
		Tenants:      tenants,
		Horizon:      vclock.FromStd(horizon),
		Seed:         seed,
		Workers:      workers,
		QueueDepth:   queue,
		UseDeadlines: deadlines,
	}
	if arrivalSpec != "" {
		spec, err := serve.ParseArrival(arrivalSpec)
		if err != nil {
			return err
		}
		opt.Arrival = spec
	}
	rep, err := h.SLOSweep(os.Stdout, opt)
	if err != nil {
		return err
	}
	if rep.RatePerTenant > 0 {
		fmt.Printf("calibrated offered load: %.2f q/s per tenant (%.2f×%d over host capacity)\n",
			rep.RatePerTenant, 1.25, len(rep.Results[0].Tenants))
	}
	if metrics {
		for i, res := range rep.Results {
			fmt.Printf("\nmetrics (%s)\n--------\n%s", res.Policy, rep.Dumps[i])
		}
	}
	var completed int
	for _, res := range rep.Results {
		completed += res.Completed
	}
	if len(rep.Results) == 0 || completed == 0 {
		return fmt.Errorf("open-loop sweep completed no requests (empty table)")
	}
	return nil
}

// chaosOpenLoop runs the chaos-SLO sweep: fault-injected fleet cost
// measurement (unhedged and hedged), then the identical open-loop arrival
// stream through five policy×hedge combos. It fails — making `make chaos-slo`
// a real gate — when the separation the hedging subsystem exists for does not
// hold: adaptive+hedge must strictly beat both force-host and unhedged
// adaptive on worst-tenant p99 and SLO-miss rate.
func chaosOpenLoop(h *harness.H, faults, tenantsSpec, arrivalSpec string, slo, horizon time.Duration,
	seed int64, workers, devices int, metrics, deadlines bool) error {
	opt := harness.ChaosSLOOptions{
		Faults:       faults,
		Horizon:      vclock.FromStd(horizon),
		Seed:         seed,
		Workers:      workers,
		UseDeadlines: deadlines,
	}
	if devices > 1 {
		opt.Devices = devices
	}
	if tenantsSpec != "" {
		defSLO := vclock.FromStd(slo)
		if defSLO <= 0 {
			defSLO = 10 * vclock.Millisecond
		}
		tenants, err := parseTenants(tenantsSpec, defSLO)
		if err != nil {
			return err
		}
		opt.Tenants = tenants
	}
	if arrivalSpec != "" {
		spec, err := serve.ParseArrival(arrivalSpec)
		if err != nil {
			return err
		}
		opt.Arrival = spec
	}
	rep, err := h.ChaosSLOSweep(os.Stdout, opt)
	if err != nil {
		return err
	}
	if rep.RatePerTenant > 0 {
		fmt.Printf("calibrated offered load: %.2f q/s per tenant\n", rep.RatePerTenant)
	}
	if metrics {
		for i, res := range rep.Results {
			fmt.Printf("\nmetrics (%s %s)\n--------\n%s", rep.Labels[i], res.Policy, rep.Dumps[i])
		}
	}
	return rep.Gate()
}

// parseTenants accepts either a tenant count ("3") or comma-separated
// name:weight[:qps[:slo_ms]] specs.
func parseTenants(s string, defSLO vclock.Duration) ([]serve.TenantConfig, error) {
	if s == "" {
		s = "3"
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n < 1 || n > 64 {
			return nil, fmt.Errorf("tenant count %d out of range [1,64]", n)
		}
		return serve.DefaultTenants(n, defSLO), nil
	}
	var out []serve.TenantConfig
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 4 || fields[0] == "" {
			return nil, fmt.Errorf("tenant spec %q: want name:weight[:qps[:slo_ms]]", part)
		}
		weight, err := strconv.Atoi(fields[1])
		if err != nil || weight < 1 {
			return nil, fmt.Errorf("tenant spec %q: bad weight %q", part, fields[1])
		}
		tc := serve.TenantConfig{Name: fields[0], Weight: weight, SLO: defSLO, Skew: 1.3}
		if len(fields) >= 3 {
			qps, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || qps < 0 {
				return nil, fmt.Errorf("tenant spec %q: bad qps %q", part, fields[2])
			}
			tc.RateQPS = qps
		}
		if len(fields) == 4 {
			ms, err := strconv.ParseFloat(fields[3], 64)
			if err != nil || ms <= 0 {
				return nil, fmt.Errorf("tenant spec %q: bad slo_ms %q", part, fields[3])
			}
			tc.SLO = vclock.Duration(ms) * vclock.Millisecond
		}
		out = append(out, tc)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridserve:", err)
	os.Exit(1)
}
