// Command hybridserve replays a JOB query mix through the concurrent query
// scheduler and prints the serving statistics: admission/degradation counts,
// queue waits per priority class, pool busy times and the virtual throughput.
//
// Usage:
//
//	hybridserve                              # adaptive policy, JOB mix ×3
//	hybridserve -policy host                 # always-host baseline
//	hybridserve -policy ndp -workers 4       # always-NDP, 4 workers
//	hybridserve -sweep                       # policy × concurrency table
//	hybridserve -devices 4 -repeat 5         # bigger fleet, longer mix
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hybridndp/internal/fault"
	"hybridndp/internal/fleet"
	"hybridndp/internal/harness"
	"hybridndp/internal/hw"
	"hybridndp/internal/obs"
	"hybridndp/internal/sched"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.01, "JOB dataset scale (1.0 ≈ 3.9M rows)")
		policy  = flag.String("policy", "adaptive", "adaptive | host | ndp")
		workers = flag.Int("workers", 16, "worker pool size (concurrent queries)")
		queue   = flag.Int("queue", 0, "admission queue depth (0 = sized to the mix)")
		devices = flag.Int("devices", 1, "smart-storage fleet size")
		repeat  = flag.Int("repeat", 3, "times the JOB suite is replayed")
		timeout = flag.Duration("timeout", 0, "per-query admission timeout (0 = none)")
		sweep   = flag.Bool("sweep", false, "run the policy × concurrency sweep instead")
		traceF  = flag.String("trace", "",
			"write a merged Chrome trace_event JSON of every served query to this file")
		metrics = flag.Bool("metrics", false,
			"record scheduler/executor metrics and print the registry dump at the end")
		faults = flag.String("faults", "",
			"fault-injection spec (see jobbench -faults): serve the mix with device faults injected; recovery retries, host fallback and circuit breaking keep queries answering")
		fleetSpec = flag.String("fleet", "",
			"serve through sharded fleet scatter-gather execution with this partitioning spec (range | stripe | stripe:<n>); shard admission shares the scheduler's ledger and breakers, and -devices sets the fleet size")
	)
	flag.Parse()

	var pol sched.Policy
	switch strings.ToLower(*policy) {
	case "adaptive":
		pol = sched.Adaptive
	case "host":
		pol = sched.ForceHost
	case "ndp":
		pol = sched.ForceNDP
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q (adaptive | host | ndp)\n", *policy)
		os.Exit(2)
	}

	start := time.Now()
	fmt.Printf("loading JOB at scale %g ...\n", *scale)
	h, err := harness.New(*scale, hw.Cosmos())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded in %v\n", time.Since(start).Round(time.Millisecond))

	if *faults != "" {
		p, err := fault.Parse(*faults)
		if err != nil {
			fatal(err)
		}
		h.Exec.Faults = p
		fmt.Printf("fault injection active: %s\n", p)
	}

	if *sweep {
		if _, err := h.ServingSweep(os.Stdout, nil); err != nil {
			fatal(err)
		}
		return
	}

	mix := harness.ServingMix(*repeat)
	cfg := sched.DefaultConfig()
	cfg.Policy = pol
	cfg.Workers = *workers
	cfg.Devices = *devices
	cfg.QueryTimeout = *timeout
	cfg.QueueDepth = *queue
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * len(mix)
	}

	var reg *obs.Registry
	if *metrics {
		reg = h.BindMetrics(obs.NewRegistry())
		cfg.Metrics = reg
	}
	var traces *obs.TraceSet
	if *traceF != "" {
		traces = obs.NewTraceSet()
		cfg.Traces = traces
	}
	if *fleetSpec != "" {
		desc, err := fleet.Build(h.DS.Cat, cfg.Devices, *fleetSpec)
		if err != nil {
			fatal(err)
		}
		if err := desc.Validate(h.DS.Cat); err != nil {
			fatal(err)
		}
		cfg.Fleet = fleet.NewExecutor(h.DS.Cat, h.DS.DB, h.DS.Model, desc)
		fmt.Printf("fleet execution active:\n%s", desc)
	}

	fmt.Printf("serving %d queries (%s policy, %d workers, %d device(s)) ...\n",
		len(mix), pol, cfg.Workers, cfg.Devices)
	s := sched.New(h.Opt, h.Exec, h.DS.Model, cfg)
	for i, q := range mix {
		if _, err := s.Submit(context.Background(), q, sched.Priority(i%3)); err != nil {
			s.Close()
			fatal(fmt.Errorf("submit %s: %w", q.Name, err))
		}
	}
	s.Close()
	st := s.Stats()
	fmt.Println()
	fmt.Print(st)
	if traces != nil {
		f, err := os.Create(*traceF)
		if err != nil {
			fatal(err)
		}
		if err := traces.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s (%d traces)\n", *traceF, len(traces.Traces()))
	}
	if reg != nil {
		h.PublishStorage(reg)
		fmt.Println("\nmetrics")
		fmt.Println("-------")
		fmt.Print(reg.Dump())
	}
	fmt.Printf("\nwall time %v\n", time.Since(start).Round(time.Millisecond))
	if st.Errors > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridserve:", err)
	os.Exit(1)
}
