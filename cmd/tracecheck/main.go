// Command tracecheck validates a Chrome trace_event JSON file produced by
// `jobbench -trace` / `hybridserve -trace`. It is the CI smoke gate for the
// observability subsystem: the file must parse, contain complete ("X") spans
// on at least two named threads (host and device), show the two tracks
// overlapping in time, and — when run with -slots — contain an explicit
// device.wait.slot back-pressure span.
//
// Usage:
//
//	tracecheck trace.json            # parse + structural checks
//	tracecheck -slots trace.json     # also require a slot-stall span
//	tracecheck -chaos trace.json     # also require retry/fallback recovery spans
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type event struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args"`
}

func main() {
	slots := flag.Bool("slots", false, "require an explicit device.wait.slot span")
	chaos := flag.Bool("chaos", false,
		"require fault-recovery structure: coop.retry and coop.fallback.host spans nested inside a query root span on the host track (and, when present, fleet.hedge / fleet.deadline.degrade spans too)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-slots] [-chaos] trace.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	if len(data) == 0 {
		fail("%s is empty", path)
	}
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		fail("%s does not parse as trace_event JSON: %v", path, err)
	}

	threads := map[int]string{} // tid -> thread_name (within one pid is enough)
	type track struct{ lo, hi float64 }
	tracks := map[string]*track{}
	var spans, slotSpans int
	var hostRoots, hostRetries, hostFallbacks, hostHedges []event
	for _, e := range events {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threads[e.Tid] = e.Args["name"]
			}
		case "X":
			spans++
			if e.Name == "device.wait.slot" {
				slotSpans++
			}
			name := threads[e.Tid]
			if name == "host" {
				switch {
				case len(e.Name) > 6 && e.Name[:6] == "query:":
					hostRoots = append(hostRoots, e)
				case e.Name == "coop.retry":
					hostRetries = append(hostRetries, e)
				case e.Name == "coop.fallback.host":
					hostFallbacks = append(hostFallbacks, e)
				case e.Name == "fleet.hedge" || e.Name == "fleet.deadline.degrade":
					hostHedges = append(hostHedges, e)
				}
			}
			t := tracks[name]
			if t == nil {
				t = &track{lo: e.Ts, hi: e.Ts + e.Dur}
				tracks[name] = t
			}
			if e.Ts < t.lo {
				t.lo = e.Ts
			}
			if e.Ts+e.Dur > t.hi {
				t.hi = e.Ts + e.Dur
			}
		}
	}

	if spans == 0 {
		fail("%s contains no complete spans", path)
	}
	host, dev := tracks["host"], tracks["device"]
	if host == nil || dev == nil {
		fail("%s is missing a host or device track (got %v)", path, threads)
	}
	if host.lo >= dev.hi || dev.lo >= host.hi {
		fail("%s: host [%g,%g]µs and device [%g,%g]µs tracks do not overlap",
			path, host.lo, host.hi, dev.lo, dev.hi)
	}
	if *slots && slotSpans == 0 {
		fail("%s contains no device.wait.slot span", path)
	}
	if *chaos {
		// Recovery spans must exist AND nest inside a query root span's
		// [ts, ts+dur) interval on the same (host) track — the structural
		// guarantee that retries and the fallback are attributed to a query.
		nested := func(kind string, es []event) {
			if len(es) == 0 {
				fail("%s contains no %s span", path, kind)
			}
			// ts/dur are µs rounded independently, so interval endpoints can
			// disagree by one rounding step; tolerate a few ns of slop.
			const eps = 0.01
			for _, e := range es {
				ok := false
				for _, r := range hostRoots {
					if e.Tid == r.Tid && e.Ts >= r.Ts-eps && e.Ts+e.Dur <= r.Ts+r.Dur+eps {
						ok = true
						break
					}
				}
				if !ok {
					fail("%s: %s span at ts=%g is not nested in any query root span", path, kind, e.Ts)
				}
			}
		}
		if len(hostRoots) == 0 {
			fail("%s contains no query root span on the host track", path)
		}
		nested("coop.retry", hostRetries)
		nested("coop.fallback.host", hostFallbacks)
		// Hedge and deadline-degrade spans only exist in fleet traces; when
		// present they must obey the same nesting rule (every robustness
		// action is attributed to the query that triggered it).
		if len(hostHedges) > 0 {
			nested("fleet.hedge/fleet.deadline.degrade", hostHedges)
		}
	}

	fmt.Printf("tracecheck: %s ok (%d spans, %d threads, %d slot stalls, %d retries, %d fallbacks, %d hedges)\n",
		path, spans, len(threads), slotSpans, len(hostRetries), len(hostFallbacks), len(hostHedges))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
