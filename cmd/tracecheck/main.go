// Command tracecheck validates a Chrome trace_event JSON file produced by
// `jobbench -trace` / `hybridserve -trace`. It is the CI smoke gate for the
// observability subsystem: the file must parse, contain complete ("X") spans
// on at least two named threads (host and device), show the two tracks
// overlapping in time, and — when run with -slots — contain an explicit
// device.wait.slot back-pressure span.
//
// Usage:
//
//	tracecheck trace.json            # parse + structural checks
//	tracecheck -slots trace.json     # also require a slot-stall span
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type event struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args"`
}

func main() {
	slots := flag.Bool("slots", false, "require an explicit device.wait.slot span")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-slots] trace.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	if len(data) == 0 {
		fail("%s is empty", path)
	}
	var events []event
	if err := json.Unmarshal(data, &events); err != nil {
		fail("%s does not parse as trace_event JSON: %v", path, err)
	}

	threads := map[int]string{} // tid -> thread_name (within one pid is enough)
	type track struct{ lo, hi float64 }
	tracks := map[string]*track{}
	var spans, slotSpans int
	for _, e := range events {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threads[e.Tid] = e.Args["name"]
			}
		case "X":
			spans++
			if e.Name == "device.wait.slot" {
				slotSpans++
			}
			name := threads[e.Tid]
			t := tracks[name]
			if t == nil {
				t = &track{lo: e.Ts, hi: e.Ts + e.Dur}
				tracks[name] = t
			}
			if e.Ts < t.lo {
				t.lo = e.Ts
			}
			if e.Ts+e.Dur > t.hi {
				t.hi = e.Ts + e.Dur
			}
		}
	}

	if spans == 0 {
		fail("%s contains no complete spans", path)
	}
	host, dev := tracks["host"], tracks["device"]
	if host == nil || dev == nil {
		fail("%s is missing a host or device track (got %v)", path, threads)
	}
	if host.lo >= dev.hi || dev.lo >= host.hi {
		fail("%s: host [%g,%g]µs and device [%g,%g]µs tracks do not overlap",
			path, host.lo, host.hi, dev.lo, dev.hi)
	}
	if *slots && slotSpans == 0 {
		fail("%s contains no device.wait.slot span", path)
	}

	fmt.Printf("tracecheck: %s ok (%d spans, %d threads, %d slot stalls)\n",
		path, spans, len(threads), slotSpans)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
