// Command benchjson converts `go test -bench` output read from stdin into a
// stable JSON artifact mapping benchmark name → ns/op, B/op, allocs/op. It is
// the backing of `make bench-json`, which snapshots the wall-clock perf
// trajectory (BENCH_PR4.json) so allocation regressions on the hot paths are
// diffable across PRs. Only the three standard metrics are captured; custom
// virtual-time metrics (…-ms) are deliberately ignored — virtual time is
// tracked by the experiments themselves, this artifact tracks the simulator's
// own speed.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_PR4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's captured metrics.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// cpuSuffix strips the trailing GOMAXPROCS suffix (-8) benchmarks carry, so
// artifacts from machines with different core counts stay comparable.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parse(lines *bufio.Scanner) map[string]Entry {
	out := map[string]Entry{}
	for lines.Scan() {
		f := strings.Fields(lines.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := cpuSuffix.ReplaceAllString(f[0], "")
		e := out[name]
		// f[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		out[name] = e
	}
	return out
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	entries := parse(sc)
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	// Deterministic artifact: sorted keys, stable indentation.
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		enc, err := json.Marshal(entries[n])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&b, "  %q: %s", n, enc)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")

	w := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.WriteString(b.String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
