// Command jobbench regenerates the paper's evaluation tables and figures
// (EDBT 2025, §5) against the synthetic JOB dataset and prints the same
// rows/series the paper reports.
//
// Usage:
//
//	jobbench                         # every experiment except the slow sweeps
//	jobbench -experiments all        # everything incl. Fig 12 / Fig 13
//	jobbench -experiments fig12      # just the 113-query sweep
//	jobbench -scale 0.1              # bigger dataset
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hybridndp/internal/fault"
	"hybridndp/internal/harness"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/obs"
	"hybridndp/internal/vclock"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.05, "JOB dataset scale (1.0 ≈ 3.9M rows)")
		exps  = flag.String("experiments", "fast",
			"comma list of calib,fig2,fig11,table3,fig12,fig13,fig14,fig15,fig16,fig17 | fast | all")
		seed  = flag.Int64("seed", job.DefaultSeed, "dataset generation seed (0 = default)")
		plans = flag.Bool("plans", false,
			"dump the optimizer's plan and strategy for every JOB query, then exit; byte-identical across runs at a given -seed/-scale")
		trace = flag.String("trace", "",
			"trace one JOB query (e.g. -trace 8d, -trace 8d@H2:out.json): run it under the decided (or @-forced) strategy, write Chrome trace_event JSON, print the flame report and phase profile, then exit")
		metrics = flag.Bool("metrics", false,
			"record execution metrics during the experiments and print the registry dump at the end")
		slots = flag.Int("slots", 0,
			"override the device's shared result-buffer slot count (0 = model default); small values make slot back-pressure visible in traces")
		slotKB = flag.Int("slotkb", 0,
			"override the shared result-buffer slot size in KiB (0 = model default)")
		workers = flag.Int("workers", 1,
			"wall-clock worker goroutines for the sweep experiments and -plans; results are byte-identical to -workers 1")
		deadline = flag.Duration("deadline", 0,
			"per-run virtual execution deadline for the chaos sweep and traced runs (0 = none): once a device attempt's virtual clock plus the next backoff would cross it, the executor stops retrying and falls back to the host immediately")
		faults = flag.String("faults", "",
			"fault-injection spec (e.g. flash.read.err=0.01,dev.crash@batch=7,slot.corrupt=0.005,dev.stall=2ms,seed=1): run the chaos sweep — every JOB query under its decided strategy with faults injected, verified against a fault-free host-native baseline — then exit; with -trace, trace the query under faults instead")
		devicesF = flag.String("devices", "",
			"comma list of fleet sizes (e.g. 1,2,4,8): run the fleet scale-out sweep — every JOB query scatter-gathered over each fleet size, fingerprint-verified against a single-device baseline — then exit (non-zero on any mismatch)")
		fleetSpec = flag.String("fleet", "range",
			"fleet partitioning spec for -devices: range | stripe | stripe:<n>")
		batchN = flag.Int("batch", 0,
			"columnar batch row capacity for every engine (0 = default 1024); virtual-time results are byte-identical at any value — the knob only trades wall-clock locality against scratch memory")
		cpuprofile = flag.String("cpuprofile", "",
			"write a wall-clock CPU profile of the run to this file (written on clean exit)")
		memprofile = flag.String("memprofile", "",
			"write a heap profile to this file at clean exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jobbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "jobbench:", err)
			}
		}()
	}

	var faultPlan *fault.Plan
	if *faults != "" {
		p, err := fault.Parse(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(2)
		}
		faultPlan = p
	}

	model := hw.Cosmos()
	if *slots > 0 {
		model.SharedSlots = *slots
	}
	if *slotKB > 0 {
		model.SharedBufferSlot = int64(*slotKB) * hw.KB
	}

	want := map[string]bool{}
	switch *exps {
	case "all":
		for _, e := range []string{"calib", "fig2", "fig11", "table3", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"} {
			want[e] = true
		}
	case "fast":
		for _, e := range []string{"calib", "fig2", "fig11", "table3", "fig14", "fig15", "fig16", "fig17"} {
			want[e] = true
		}
	default:
		for _, e := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	start := time.Now()
	if *trace != "" {
		// Traced single-query run: deterministic, no progress chatter.
		name, outPath := *trace, "trace.json"
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name, outPath = name[:i], name[i+1:]
		}
		strat := ""
		if i := strings.IndexByte(name, '@'); i >= 0 {
			name, strat = name[:i], name[i+1:]
		}
		h, err := harness.NewSeeded(*scale, model, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		if *metrics {
			h.BindMetrics(obs.NewRegistry())
		}
		h.SetBatchSize(*batchN)
		h.Exec.Faults = faultPlan
		h.Exec.Deadline = vclock.FromStd(*deadline)
		tr, err := h.TraceQuery(name, strat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		if err := tr.WriteTrace(f, os.Stdout); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		if *metrics {
			h.PublishStorage(h.Exec.Metrics)
			fmt.Print(h.Exec.Metrics.Dump())
		}
		fmt.Printf("wrote %s (%d spans)\n", outPath, tr.Trace.Len())
		return
	}
	if faultPlan != nil {
		// Chaos sweep: deterministic, no progress chatter, so repeated runs
		// at a given -seed/-scale/-faults diff byte-for-byte.
		h, err := harness.NewSeeded(*scale, model, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		h.Workers = *workers
		h.SetBatchSize(*batchN)
		h.Exec.Deadline = vclock.FromStd(*deadline)
		var reg *obs.Registry
		if *metrics {
			reg = h.BindMetrics(obs.NewRegistry())
		}
		res := h.ChaosSweep(os.Stdout, faultPlan)
		if reg != nil {
			h.PublishStorage(reg)
			fmt.Println("\nmetrics")
			fmt.Println("-------")
			fmt.Print(reg.Dump())
		}
		if !res.Clean() {
			os.Exit(1)
		}
		return
	}
	if *devicesF != "" {
		// Fleet scale-out sweep: deterministic, no progress chatter, so
		// repeated runs at a given -seed/-scale/-fleet diff byte-for-byte.
		var counts []int
		for _, part := range strings.Split(*devicesF, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "jobbench: bad -devices entry %q\n", part)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		h, err := harness.NewSeeded(*scale, model, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		h.Workers = *workers
		h.SetBatchSize(*batchN)
		res, err := h.FleetSweep(os.Stdout, counts, *fleetSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		if !res.Clean() {
			os.Exit(1)
		}
		return
	}
	if *plans {
		// Plan dump: no progress chatter, so the output can be diffed
		// byte-for-byte between runs.
		h, err := harness.NewSeeded(*scale, model, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		h.Workers = *workers
		h.SetBatchSize(*batchN)
		if err := h.Plans(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("loading JOB at scale %g ...\n", *scale)
	h, err := harness.NewSeeded(*scale, model, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jobbench:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded in %v (%d tables)\n", time.Since(start).Round(time.Millisecond), len(h.DS.Cat.Tables()))
	h.Workers = *workers
	h.SetBatchSize(*batchN)
	if *metrics {
		h.BindMetrics(obs.NewRegistry())
	}

	w := os.Stdout
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "jobbench:", err)
		os.Exit(1)
	}
	if want["calib"] {
		h.Calibration(w)
	}
	if want["fig2"] {
		if _, err := h.Fig2(w); err != nil {
			fail(err)
		}
	}
	if want["fig11"] {
		if _, err := h.Fig11(w); err != nil {
			fail(err)
		}
	}
	if want["table3"] {
		if _, err := h.Table3(w); err != nil {
			fail(err)
		}
	}
	if want["fig12"] {
		if _, err := h.Fig12(w); err != nil {
			fail(err)
		}
	}
	if want["fig13"] {
		if _, err := h.Fig13(w); err != nil {
			fail(err)
		}
	}
	if want["fig14"] {
		if _, err := h.Fig14(w); err != nil {
			fail(err)
		}
	}
	if want["fig15"] {
		if _, err := h.Fig15(w); err != nil {
			fail(err)
		}
	}
	if want["fig16"] {
		if _, err := h.Fig16(w); err != nil {
			fail(err)
		}
	}
	if want["fig17"] {
		if _, err := h.Fig17Table4(w); err != nil {
			fail(err)
		}
	}
	if *metrics {
		h.PublishStorage(h.Exec.Metrics)
		fmt.Println("\nmetrics")
		fmt.Println("-------")
		fmt.Print(h.Exec.Metrics.Dump())
	}
	fmt.Printf("\ndone in %v\n", time.Since(start).Round(time.Millisecond))
}
