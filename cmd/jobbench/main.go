// Command jobbench regenerates the paper's evaluation tables and figures
// (EDBT 2025, §5) against the synthetic JOB dataset and prints the same
// rows/series the paper reports.
//
// Usage:
//
//	jobbench                         # every experiment except the slow sweeps
//	jobbench -experiments all        # everything incl. Fig 12 / Fig 13
//	jobbench -experiments fig12      # just the 113-query sweep
//	jobbench -scale 0.1              # bigger dataset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hybridndp/internal/harness"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.05, "JOB dataset scale (1.0 ≈ 3.9M rows)")
		exps  = flag.String("experiments", "fast",
			"comma list of calib,fig2,fig11,table3,fig12,fig13,fig14,fig15,fig16,fig17 | fast | all")
		seed  = flag.Int64("seed", job.DefaultSeed, "dataset generation seed (0 = default)")
		plans = flag.Bool("plans", false,
			"dump the optimizer's plan and strategy for every JOB query, then exit; byte-identical across runs at a given -seed/-scale")
	)
	flag.Parse()

	want := map[string]bool{}
	switch *exps {
	case "all":
		for _, e := range []string{"calib", "fig2", "fig11", "table3", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17"} {
			want[e] = true
		}
	case "fast":
		for _, e := range []string{"calib", "fig2", "fig11", "table3", "fig14", "fig15", "fig16", "fig17"} {
			want[e] = true
		}
	default:
		for _, e := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(e)] = true
		}
	}

	start := time.Now()
	if *plans {
		// Plan dump: no progress chatter, so the output can be diffed
		// byte-for-byte between runs.
		h, err := harness.NewSeeded(*scale, hw.Cosmos(), *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		if err := h.Plans(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "jobbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("loading JOB at scale %g ...\n", *scale)
	h, err := harness.NewSeeded(*scale, hw.Cosmos(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jobbench:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded in %v (%d tables)\n", time.Since(start).Round(time.Millisecond), len(h.DS.Cat.Tables()))

	w := os.Stdout
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "jobbench:", err)
		os.Exit(1)
	}
	if want["calib"] {
		h.Calibration(w)
	}
	if want["fig2"] {
		if _, err := h.Fig2(w); err != nil {
			fail(err)
		}
	}
	if want["fig11"] {
		if _, err := h.Fig11(w); err != nil {
			fail(err)
		}
	}
	if want["table3"] {
		if _, err := h.Table3(w); err != nil {
			fail(err)
		}
	}
	if want["fig12"] {
		if _, err := h.Fig12(w); err != nil {
			fail(err)
		}
	}
	if want["fig13"] {
		if _, err := h.Fig13(w); err != nil {
			fail(err)
		}
	}
	if want["fig14"] {
		if _, err := h.Fig14(w); err != nil {
			fail(err)
		}
	}
	if want["fig15"] {
		if _, err := h.Fig15(w); err != nil {
			fail(err)
		}
	}
	if want["fig16"] {
		if _, err := h.Fig16(w); err != nil {
			fail(err)
		}
	}
	if want["fig17"] {
		if _, err := h.Fig17Table4(w); err != nil {
			fail(err)
		}
	}
	fmt.Printf("\ndone in %v\n", time.Since(start).Round(time.Millisecond))
}
