// Command hwprofile runs the hardware profiling benchmark of paper §3.1: a
// series of memcpy operations across buffer sizes, floating-point loops, a
// flash read/write mix and handshake-like interconnect transfers. The
// measured characteristics are translated into the Table 2 parameter values
// and printed in the DBMS parameter-file format, to be placed before
// startup.
package main

import (
	"flag"
	"fmt"
	"os"

	"hybridndp/internal/hw"
)

func main() {
	quick := flag.Bool("quick", false, "reduced iteration counts")
	flag.Parse()

	p := hw.Profiler{Base: hw.Cosmos(), Quick: *quick}
	res := p.Run()

	fmt.Println("# measured characteristics")
	if err := res.Report(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hwprofile:", err)
		os.Exit(1)
	}
	fmt.Println("\n# derived hardware-model parameter file (Table 2)")
	if err := res.WriteParameterFile(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hwprofile:", err)
		os.Exit(1)
	}
	fmt.Printf("\n# host/device compute ratio: %.1f (paper: 31.2)\n", res.Model.ComputeRatio())
}
