// Command hybridndp plans and executes one JOB query under a chosen
// execution strategy, printing the physical plan, the optimizer's cost
// picture and split decision, and the cooperative-execution timeline.
//
// Usage:
//
//	hybridndp -query 8c                 # optimizer decides (hybridNDP mode)
//	hybridndp -query 8c -strategy H3    # force split H3
//	hybridndp -query 17b -strategy ndp  # force full offload
//	hybridndp -query 1a -strategy sweep # run every strategy and compare
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	hybridndp "hybridndp"
	"hybridndp/internal/coop"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	queryPkg "hybridndp/internal/query"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.05, "JOB dataset scale (1.0 ≈ 3.9M rows)")
		queryArg = flag.String("query", "8c", "JOB query name (1a..33c)")
		sqlArg   = flag.String("sql", "", "ad-hoc SQL text (overrides -query)")
		strategy = flag.String("strategy", "auto", "auto | block | native | ndp | H<k> | sweep")
		showPlan = flag.Bool("plan", true, "print the physical plan")
		timeline = flag.Bool("timeline", false, "print the batch timeline and breakdowns")
	)
	flag.Parse()

	fmt.Printf("loading JOB at scale %g ...\n", *scale)
	sys, err := hybridndp.OpenJOB(*scale, hw.Cosmos())
	if err != nil {
		fatal(err)
	}

	var q *queryPkg.Query
	if *sqlArg != "" {
		q, err = sys.Query(*sqlArg)
		if err != nil {
			fatal(err)
		}
	} else {
		q = job.QueryByName(*queryArg)
		if q == nil {
			fmt.Fprintf(os.Stderr, "unknown query %q (try 1a..33c)\n", *queryArg)
			os.Exit(2)
		}
	}
	fmt.Println(q.SQL())

	d, err := sys.Decide(q)
	if err != nil {
		fatal(err)
	}
	if *showPlan {
		fmt.Println()
		fmt.Println(d.Plan)
	}
	fmt.Printf("\ncost model: host=%.0f ndp=%.0f c_target=%.0f best split=H%d\n",
		d.Costs.HostTotal, d.Costs.NDPTotal, d.Costs.CTarget, d.Costs.BestSplit)
	fmt.Printf("decision: %s — %s\n\n", d.StrategyLabel(), d.Reason)

	run := func(st coop.Strategy) {
		rep, err := sys.Executor.Run(d.Plan, st)
		if err != nil {
			fmt.Printf("  %-7s error: %v\n", st, err)
			return
		}
		fmt.Printf("  %-7s %10.3fms  rows=%d batches=%d transferred=%dB\n",
			st, rep.Elapsed.Milliseconds(), rep.Result.RowCount, rep.Batches, rep.TransferredBytes)
		if *timeline && len(rep.Timeline) > 0 {
			for _, ev := range rep.Timeline {
				fmt.Printf("      batch %2d ready=%8.2fms fetched=%8.2fms done=%8.2fms rows=%d\n",
					ev.Idx, float64(ev.DeviceReady)/1e6, float64(ev.HostFetched)/1e6,
					float64(ev.HostDone)/1e6, ev.Rows)
			}
		}
	}

	switch strings.ToLower(*strategy) {
	case "auto":
		run(hybridndp.DecisionStrategy(d))
	case "block":
		run(coop.Strategy{Kind: coop.BlockOnly})
	case "native":
		run(coop.Strategy{Kind: coop.HostNative})
	case "ndp":
		run(coop.Strategy{Kind: coop.NDPOnly})
	case "sweep":
		run(coop.Strategy{Kind: coop.BlockOnly})
		run(coop.Strategy{Kind: coop.HostNative})
		splits, err := sys.Splits(q)
		if err == nil {
			for _, st := range splits {
				run(st)
			}
		}
		run(coop.Strategy{Kind: coop.NDPOnly})
	default:
		s := strings.TrimPrefix(strings.ToUpper(*strategy), "H")
		k, err := strconv.Atoi(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -strategy %q\n", *strategy)
			os.Exit(2)
		}
		if k == 0 {
			k = -1
		}
		run(coop.Strategy{Kind: coop.Hybrid, Split: k})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hybridndp:", err)
	os.Exit(1)
}
