package hybridndp

import (
	"testing"

	"hybridndp/internal/coop"
	"hybridndp/internal/exec"
	"hybridndp/internal/job"
	"hybridndp/internal/vclock"
)

// Shape tests: the reproduction's pass criteria are relative orderings (who
// wins, where crossovers fall), not absolute times. These assert the
// headline shapes of the paper's figures at the shared test scale.

// elapsedFor runs the query under a strategy and returns the virtual time.
func elapsedFor(t *testing.T, s *System, p *exec.Plan, st coop.Strategy) vclock.Duration {
	t.Helper()
	rep, err := s.Executor.Run(p, st)
	if err != nil {
		t.Fatalf("%v: %v", st, err)
	}
	return rep.Elapsed
}

func TestShapeFig2FullNDPWorstInteriorBest(t *testing.T) {
	s := testSystem(t)
	q := job.QueryByName("8c")
	p, err := s.Optimizer.BuildPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	host := elapsedFor(t, s, p, coop.Strategy{Kind: coop.HostNative})
	ndp := elapsedFor(t, s, p, coop.Strategy{Kind: coop.NDPOnly})
	if ndp <= host {
		t.Fatalf("Fig 2 shape: full NDP (%v) must be slower than host-only (%v) on Q8.c", ndp, host)
	}
	best := ndp
	for k := -1; k <= len(p.Steps); k++ {
		if k == 0 {
			continue
		}
		if d := elapsedFor(t, s, p, coop.Strategy{Kind: coop.Hybrid, Split: k}); d < best {
			best = d
		}
	}
	if best >= host {
		t.Fatalf("Fig 2 shape: the best hybrid (%v) must beat host-only (%v)", best, host)
	}
}

func TestShapeFig11HybridBeatsBaselines(t *testing.T) {
	s := testSystem(t)
	for _, name := range []string{"8c", "17b", "32b"} {
		q := job.QueryByName(name)
		p, err := s.Optimizer.BuildPlan(q)
		if err != nil {
			t.Fatal(err)
		}
		blk := elapsedFor(t, s, p, coop.Strategy{Kind: coop.BlockOnly})
		nat := elapsedFor(t, s, p, coop.Strategy{Kind: coop.HostNative})
		if blk <= nat {
			t.Fatalf("%s: BLK (%v) must be slower than NATIVE (%v)", name, blk, nat)
		}
		best := blk
		for k := -1; k <= len(p.Steps); k++ {
			if k == 0 {
				continue
			}
			if d := elapsedFor(t, s, p, coop.Strategy{Kind: coop.Hybrid, Split: k}); d < best {
				best = d
			}
		}
		if best >= nat {
			t.Fatalf("%s: hybridNDP's best split (%v) must beat NATIVE (%v)", name, best, nat)
		}
	}
}

func TestShapeFig14DeviceWinsNonIndexedJoin(t *testing.T) {
	s := testSystem(t)
	q := job.Listing2(int32(s.JOB.Counts["movie_link"]/3), true)
	p, err := s.Optimizer.BuildPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Steps {
		p.Steps[i].Type = exec.BNL
	}
	nat := elapsedFor(t, s, p, coop.Strategy{Kind: coop.HostNative})
	ndp := elapsedFor(t, s, p, coop.Strategy{Kind: coop.NDPOnly})
	if ndp >= nat {
		t.Fatalf("Fig 14 shape: NDP (%v) must beat the native stack (%v) on the Listing 2 join", ndp, nat)
	}
}

func TestShapeFig17OverlapAfterInitialWait(t *testing.T) {
	s := testSystem(t)
	q := job.QueryByName("8d")
	p, err := s.Optimizer.BuildPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	split := 2
	if len(p.Steps) < 2 {
		split = len(p.Steps)
	}
	rep, err := s.Executor.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: split})
	if err != nil {
		t.Fatal(err)
	}
	// An initial wait exists (the device computes the first result set),
	// and later waits are a small fraction of it (overlap works).
	if rep.WaitInitial() <= 0 {
		t.Fatal("Fig 17 shape: no initial device wait recorded")
	}
	if rep.WaitFetch() > rep.WaitInitial() {
		t.Fatalf("Fig 17 shape: later waits (%v) exceed the initial wait (%v) — no overlap",
			rep.WaitFetch(), rep.WaitInitial())
	}
}

func TestShapeDecisionNeverPicksDominatedFullNDP(t *testing.T) {
	// The optimizer must not choose full NDP for the deep marquee queries
	// where the paper shows it losing badly.
	s := testSystem(t)
	for _, name := range []string{"8c", "8d", "17b"} {
		d, err := s.Decide(job.QueryByName(name))
		if err != nil {
			t.Fatal(err)
		}
		if d.NDP {
			t.Fatalf("%s: optimizer chose full NDP (%s)", name, d.Reason)
		}
	}
}
