# Tier-1 gate (see ROADMAP.md): build, vet, lint, tests — `make race` adds the
# race detector, which the concurrent scheduler's stress tests rely on.

GO ?= go

.PHONY: all build vet lint test race bench bench-json benchdiff serve serve-smoke trace-smoke chaos chaos-slo fleet-smoke

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# hybridlint: the in-tree analyzer suite (wallclock, lockcheck, maporder,
# vtunits) enforcing virtual-time and determinism discipline. See DESIGN.md §8.
lint:
	$(GO) run ./cmd/hybridlint -budget 15s ./...

test:
	$(GO) test ./...

# The harness package's determinism suites (parallel sweep, chaos, fleet)
# exceed go test's default 10-minute package timeout under the race detector.
race:
	$(GO) test -race -timeout 30m ./...

# Virtual-time benchmarks (one pass each; wall ns/op only measures the
# simulator). HYBRIDNDP_SCALE overrides the dataset scale.
bench:
	$(GO) test -run '^$$' -bench . -benchtime=1x .

# Wall-clock perf trajectory: snapshot ns/op, B/op, allocs/op of the hot-path
# microbenchmarks, the full JOB sweep, the fleet scale-out sweep and the
# open-loop serving loop into BENCH_PR9.json (diffable across PRs; non-gating
# CI artifact). The exec microbenchmarks run 5 iterations for stable
# allocs/op; the sweeps run once — they are the wall-clock headline.
bench-json:
	( $(GO) test -run '^$$' -bench 'ScanFilter|HashJoin|JoinStep|GroupAggregate' -benchmem -benchtime=5x ./internal/exec/ ; \
	  $(GO) test -run '^$$' -bench 'Fig12JOBSweep|FleetSweep|ServeOpenLoop' -benchmem -benchtime=1x -timeout 30m . ) | $(GO) run ./cmd/benchjson -o BENCH_PR9.json

# Non-gating perf-trajectory diff: ns/op (plus B/op, allocs/op) deltas of the
# two newest BENCH_PR*.json snapshots.
benchdiff:
	$(GO) run ./cmd/benchdiff

# The serving sweep: policy × concurrency throughput table.
serve:
	$(GO) run ./cmd/hybridserve -sweep

# Serving front-door gate: the open-loop SLO sweep must run two tenants
# end-to-end (SQL sessions → plan cache → quotas → WFQ → lanes) with zero
# errors and a non-empty table; hybridserve exits non-zero otherwise.
serve-smoke:
	$(GO) run ./cmd/hybridserve -scale 0.01 -tenants 2 -arrival poisson:100 -slo 10ms -horizon 300ms >/dev/null

# Observability smoke: trace one hybrid JOB query (single buffer slot so the
# device's back-pressure stall is visible) and validate the Chrome trace.
trace-smoke:
	$(GO) run ./cmd/jobbench -scale 0.05 -slots 1 -trace "8d@H1:trace.json" >/dev/null
	$(GO) run ./cmd/tracecheck -slots trace.json
	rm -f trace.json

# Fleet gate: the 4-device scatter-gather sweep must answer every JOB query
# byte-identically (fingerprint) to the single-device baseline; jobbench exits
# non-zero on any mismatch or error.
fleet-smoke:
	$(GO) run ./cmd/jobbench -scale 0.01 -devices 1,4 -workers 4 >/dev/null

# Chaos gate: every JOB query must survive a 100%-crash device (retry, then
# host fallback) with results identical to host-native, and a traced chaos
# query must show the retry/fallback spans nested under its query root.
chaos:
	$(GO) run ./cmd/jobbench -scale 0.01 -faults "dev.crash=1" >/dev/null
	$(GO) run ./cmd/jobbench -scale 0.01 -faults "dev.crash=1" -trace "8d@H1:chaos-trace.json" >/dev/null
	$(GO) run ./cmd/tracecheck -chaos chaos-trace.json
	rm -f chaos-trace.json

# Chaos-SLO gate: cost tables measured through a 4-device fleet with one
# stalled member (unhedged and hedged), then the identical open-loop arrival
# stream through five policy×hedge combos. hybridserve exits non-zero unless
# adaptive placement + hedged shard execution strictly beats both force-host
# and unhedged adaptive on worst-tenant p99 and SLO-miss rate (or if any
# fleet result mismatches the host-native fingerprint).
chaos-slo:
	$(GO) run ./cmd/hybridserve -scale 0.01 -faults "dev1:dev.stall=2ms,seed=1" -arrival poisson >/dev/null
