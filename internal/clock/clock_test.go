package clock

import (
	"testing"
	"time"
)

func TestFakeAdvance(t *testing.T) {
	f := NewFake()
	t0 := f.Now()
	f.Advance(90 * time.Second)
	if got := f.Since(t0); got != 90*time.Second {
		t.Fatalf("Since after Advance = %v, want 90s", got)
	}
	if !f.Now().Equal(t0.Add(90 * time.Second)) {
		t.Fatalf("Now = %v, want %v", f.Now(), t0.Add(90*time.Second))
	}
}

func TestSystemMonotoneEnough(t *testing.T) {
	c := System()
	a := c.Now()
	if c.Since(a) < 0 {
		t.Fatal("system clock ran backwards")
	}
}
