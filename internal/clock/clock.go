// Package clock is the injectable wall-time source for the layers of the
// system that legitimately deal in wall time — the scheduler's admission
// queue (queue-wait measurement, priority aging, admission timeouts) and the
// serving harness. Simulation packages must not read wall time at all (the
// hybridlint wallclock analyzer enforces this); the few components that need
// it take a Clock so tests can substitute a deterministic fake and the
// remaining time.Now calls are confined to this package.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current wall time.
type Clock interface {
	Now() time.Time
	// Since is a convenience for Now().Sub(t).
	Since(t time.Time) time.Duration
}

// system is the real wall clock.
type system struct{}

func (system) Now() time.Time                  { return time.Now() }
func (system) Since(t time.Time) time.Duration { return time.Since(t) }

// System returns the real wall clock.
func System() Clock { return system{} }

// Fake is a manually advanced clock for deterministic tests. The zero value
// starts at the zero time; use NewFake to start at a sensible base instant.
type Fake struct {
	mu  sync.Mutex
	now time.Time
}

// NewFake returns a fake clock starting at a fixed, arbitrary base time.
func NewFake() *Fake {
	return &Fake{now: time.Date(2025, 3, 25, 0, 0, 0, 0, time.UTC)}
}

// Now reports the fake's current instant.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since reports the fake duration elapsed since t.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// Advance moves the fake clock forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// Set jumps the fake clock to t.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	f.now = t
	f.mu.Unlock()
}
