// Package fault is the seeded, virtual-time fault-injection subsystem: a
// Plan parsed from a compact spec string ("flash.read.err=0.01,dev.crash@batch=7,
// slot.corrupt=0.005,dev.stall=2ms") drives injection hooks in the flash read
// path, the device batch-emit path and the interconnect transfer path. Every
// probabilistic draw comes from a per-run *rand.Rand derived from the plan
// seed and the run key, so the same seed + spec + workload reproduces the
// exact same fault episode regardless of wall-clock concurrency — chaos runs
// stay byte-identical, the determinism discipline of the rest of the repro.
// Injected delays are charged to virtual timelines by the call sites; this
// package never touches wall time.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"hybridndp/internal/flash"
	"hybridndp/internal/obs"
	"hybridndp/internal/vclock"
)

// Typed fault sentinels. Every injected failure wraps ErrInjected, so
// recovery code can distinguish "the simulated hardware failed" (retry /
// fall back) from a real execution error (propagate) with one errors.Is.
var (
	// ErrInjected is the base sentinel every injected fault wraps.
	ErrInjected = errors.New("fault: injected")
	// ErrFlashRead is a simulated uncorrectable flash read error (post-ECC).
	ErrFlashRead = fmt.Errorf("flash read error: %w", ErrInjected)
	// ErrDeviceCrash is a simulated mid-command device crash: the NDP command
	// dies before emitting its next batch and the device must be re-invoked.
	ErrDeviceCrash = fmt.Errorf("device crash: %w", ErrInjected)
	// ErrCorruptBatch is a checksum mismatch on a delivered result batch
	// (corrupted on device or in transit over the interconnect).
	ErrCorruptBatch = fmt.Errorf("corrupt batch: %w", ErrInjected)
)

// Injected reports whether err stems from an injected fault (and is therefore
// recoverable by retry / host fallback rather than a plan or engine bug).
func Injected(err error) bool { return errors.Is(err, ErrInjected) }

// Plan is a parsed fault specification. The zero value injects nothing.
// Plans are immutable after Parse and safe to share across concurrent runs;
// all mutable per-run state lives in the Injector.
type Plan struct {
	// Seed derives every per-run rng (combined with the run key).
	Seed int64
	// FlashReadErr is the per-read probability of an uncorrectable flash
	// read error ("flash.read.err=P").
	FlashReadErr float64
	// CrashProb is the per-batch probability that the device crashes before
	// emitting ("dev.crash=P").
	CrashProb float64
	// CrashAtBatch crashes the device deterministically before emitting the
	// 0-based batch with this index ("dev.crash@batch=N"); -1 disables.
	CrashAtBatch int
	// SlotCorrupt is the per-batch probability that the device corrupts the
	// payload before sealing the slot ("slot.corrupt=P").
	SlotCorrupt float64
	// XferCorrupt is the per-batch probability that the interconnect flips
	// bits during the host fetch ("xfer.corrupt=P").
	XferCorrupt float64
	// DevStall is an extra device-side latency charged before every emitted
	// batch ("dev.stall=2ms") — a firmware hiccup, not a failure.
	DevStall vclock.Duration
	// perDev holds device-scoped overlays ("dev1:dev.stall=2ms" applies only
	// to device 1); nil for unscoped plans. ForDevice resolves the effective
	// plan for one fleet member.
	perDev map[int]*Plan
}

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	if p.FlashReadErr > 0 || p.CrashProb > 0 || p.CrashAtBatch >= 0 ||
		p.SlotCorrupt > 0 || p.XferCorrupt > 0 || p.DevStall > 0 {
		return true
	}
	for _, sub := range p.perDev {
		if sub.Enabled() {
			return true
		}
	}
	return false
}

// ForDevice resolves the effective plan for one fleet device: the unscoped
// entries apply to every device, and a "devN:"-scoped entry overlays device
// N's plan. For plans without device scoping the receiver itself is returned,
// so the single-device paths pay nothing. The overlay shares the base seed;
// call sites keep per-device draws independent by folding the device id into
// the Injector run key.
func (p *Plan) ForDevice(dev int) *Plan {
	if p == nil || len(p.perDev) == 0 {
		return p
	}
	base := *p
	base.perDev = nil
	sub, ok := p.perDev[dev]
	if !ok {
		return &base
	}
	if sub.FlashReadErr > 0 {
		base.FlashReadErr = sub.FlashReadErr
	}
	if sub.CrashProb > 0 {
		base.CrashProb = sub.CrashProb
	}
	if sub.CrashAtBatch >= 0 {
		base.CrashAtBatch = sub.CrashAtBatch
	}
	if sub.SlotCorrupt > 0 {
		base.SlotCorrupt = sub.SlotCorrupt
	}
	if sub.XferCorrupt > 0 {
		base.XferCorrupt = sub.XferCorrupt
	}
	if sub.DevStall > 0 {
		base.DevStall = sub.DevStall
	}
	return &base
}

// Parse parses a comma-separated fault spec. Recognized keys:
//
//	flash.read.err=P    uncorrectable flash read probability per read
//	dev.crash=P         device crash probability per batch
//	dev.crash@batch=N   deterministic crash before 0-based batch N
//	slot.corrupt=P      device-side payload corruption probability per batch
//	xfer.corrupt=P      interconnect corruption probability per batch
//	dev.stall=DUR       extra device latency per batch (ns/us/µs/ms/s)
//
// A key may carry a device scope prefix ("dev1:dev.stall=2ms"): the entry
// then applies only to fleet device 1, modeling a single sick device. The
// seed cannot be scoped. An empty spec yields a disabled plan.
func Parse(spec string) (*Plan, error) {
	p := &Plan{CrashAtBatch: -1}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := part
		target := p
		// A colon before the '=' is a device scope: "dev1:dev.stall=2ms".
		if ci := strings.IndexByte(part, ':'); ci >= 0 && ci < strings.IndexByte(part, '=') {
			scope := part[:ci]
			n, err := strconv.Atoi(strings.TrimPrefix(scope, "dev"))
			if !strings.HasPrefix(scope, "dev") || err != nil || n < 0 {
				return nil, fmt.Errorf("fault: bad device scope %q (want devN:key=value)", part)
			}
			if p.perDev == nil {
				p.perDev = make(map[int]*Plan)
			}
			if p.perDev[n] == nil {
				p.perDev[n] = &Plan{CrashAtBatch: -1}
			}
			target = p.perDev[n]
			kv = part[ci+1:]
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if key == "seed" && target != p {
			return nil, fmt.Errorf("fault: seed cannot be device-scoped (%q)", part)
		}
		if err := applyKV(target, key, val); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// applyKV sets one parsed key=value on a plan (the top-level plan or a
// device-scoped overlay).
func applyKV(p *Plan, key, val string) error {
	switch key {
	case "flash.read.err":
		if err := parseProb(val, &p.FlashReadErr); err != nil {
			return fmt.Errorf("fault: %s: %w", key, err)
		}
	case "dev.crash":
		if err := parseProb(val, &p.CrashProb); err != nil {
			return fmt.Errorf("fault: %s: %w", key, err)
		}
	case "dev.crash@batch":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("fault: dev.crash@batch needs a batch index ≥ 0, got %q", val)
		}
		p.CrashAtBatch = n
	case "slot.corrupt":
		if err := parseProb(val, &p.SlotCorrupt); err != nil {
			return fmt.Errorf("fault: %s: %w", key, err)
		}
	case "xfer.corrupt":
		if err := parseProb(val, &p.XferCorrupt); err != nil {
			return fmt.Errorf("fault: %s: %w", key, err)
		}
	case "dev.stall":
		d, err := parseDur(val)
		if err != nil {
			return fmt.Errorf("fault: dev.stall: %w", err)
		}
		p.DevStall = d
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("fault: seed: %w", err)
		}
		p.Seed = n
	default:
		return fmt.Errorf("fault: unknown fault key %q", key)
	}
	return nil
}

// String renders the plan back as a canonical spec (sorted key order,
// disabled entries omitted). Parse(p.String()) round-trips.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.FlashReadErr > 0 {
		parts = append(parts, "flash.read.err="+formatProb(p.FlashReadErr))
	}
	if p.CrashProb > 0 {
		parts = append(parts, "dev.crash="+formatProb(p.CrashProb))
	}
	if p.CrashAtBatch >= 0 {
		parts = append(parts, "dev.crash@batch="+strconv.Itoa(p.CrashAtBatch))
	}
	if p.SlotCorrupt > 0 {
		parts = append(parts, "slot.corrupt="+formatProb(p.SlotCorrupt))
	}
	if p.XferCorrupt > 0 {
		parts = append(parts, "xfer.corrupt="+formatProb(p.XferCorrupt))
	}
	if p.DevStall > 0 {
		parts = append(parts, "dev.stall="+formatDur(p.DevStall))
	}
	if p.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(p.Seed, 10))
	}
	sort.Strings(parts)
	devs := make([]int, 0, len(p.perDev))
	for dev := range p.perDev {
		devs = append(devs, dev)
	}
	sort.Ints(devs)
	for _, dev := range devs {
		sub := p.perDev[dev]
		if sub == nil {
			continue
		}
		prefix := "dev" + strconv.Itoa(dev) + ":"
		for _, sp := range strings.Split(sub.String(), ",") {
			if sp != "" {
				parts = append(parts, prefix+sp)
			}
		}
	}
	return strings.Join(parts, ",")
}

func parseProb(val string, out *float64) error {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || f < 0 || f > 1 {
		return fmt.Errorf("needs a probability in [0,1], got %q", val)
	}
	*out = f
	return nil
}

func formatProb(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// parseDur parses a duration with ns/us/µs/ms/s suffix straight into virtual
// nanoseconds. Deliberately not time.ParseDuration: fault specs describe
// virtual time, and the vtunits analyzer bans time.Duration→vclock crossings
// outside vclock itself.
func parseDur(val string) (vclock.Duration, error) {
	var mult float64
	var num string
	switch {
	case strings.HasSuffix(val, "ns"):
		mult, num = 1, strings.TrimSuffix(val, "ns")
	case strings.HasSuffix(val, "µs"):
		mult, num = 1e3, strings.TrimSuffix(val, "µs")
	case strings.HasSuffix(val, "us"):
		mult, num = 1e3, strings.TrimSuffix(val, "us")
	case strings.HasSuffix(val, "ms"):
		mult, num = 1e6, strings.TrimSuffix(val, "ms")
	case strings.HasSuffix(val, "s"):
		mult, num = 1e9, strings.TrimSuffix(val, "s")
	default:
		return 0, fmt.Errorf("duration %q needs a ns/us/ms/s suffix", val)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad duration %q", val)
	}
	return vclock.Duration(f * mult), nil
}

func formatDur(d vclock.Duration) string {
	switch {
	case d >= 1e9 && float64(d/1e9) == float64(int64(d/1e9)):
		return strconv.FormatFloat(float64(d)/1e9, 'g', -1, 64) + "s"
	case d >= 1e6 && float64(d/1e6) == float64(int64(d/1e6)):
		return strconv.FormatFloat(float64(d)/1e6, 'g', -1, 64) + "ms"
	case d >= 1e3 && float64(d/1e3) == float64(int64(d/1e3)):
		return strconv.FormatFloat(float64(d)/1e3, 'g', -1, 64) + "us"
	default:
		return strconv.FormatFloat(float64(d), 'g', -1, 64) + "ns"
	}
}

// EmitFault is the injector's verdict for one about-to-be-emitted batch.
type EmitFault struct {
	// Stall is extra device latency to charge before the slot seals.
	Stall vclock.Duration
	// Corrupt flips the batch checksum on the device side.
	Corrupt bool
	// Crash, when non-nil, kills the command before the batch is emitted
	// (wraps ErrDeviceCrash).
	Crash error
}

// Injector is the per-run mutable state of a fault plan: one seeded rng plus
// metric counters. Create one per executed query run via Plan.Injector; an
// injector is owned by that run's goroutine and is not safe for concurrent
// use. All methods are nil-receiver-safe (a nil injector injects nothing),
// so fault-free paths stay branch-cheap.
type Injector struct {
	plan *Plan
	rng  *rand.Rand
	// Metrics, when set, counts every injected fault under
	// "coop.fault.injected" (total and per kind).
	Metrics *obs.Registry
	// batches counts batches seen by BeforeEmit, for dev.crash@batch.
	batches int
}

// Injector derives the per-run injector for the given run key (query name +
// strategy label). A nil or disabled plan returns a nil injector.
func (p *Plan) Injector(key string) *Injector {
	if !p.Enabled() {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	const mix = uint64(0x9e3779b97f4a7c15) // golden-ratio odd constant
	seed := int64(h.Sum64() ^ (uint64(p.Seed) * mix))
	return &Injector{plan: p, rng: rand.New(rand.NewSource(seed))}
}

// Bind attaches a metrics registry (nil-safe on both sides).
func (in *Injector) Bind(m *obs.Registry) *Injector {
	if in != nil {
		in.Metrics = m
	}
	return in
}

func (in *Injector) count(kind string) {
	if in.Metrics == nil {
		return
	}
	in.Metrics.Counter("coop.fault.injected").Inc()
	in.Metrics.Counter("coop.fault.injected." + kind).Inc()
}

// ReadFault implements flash.Faults: it decides whether this flash read
// fails with a simulated uncorrectable error. The caller has already charged
// the read's virtual time — a failed read still occupied the channel.
func (in *Injector) ReadFault(id flash.FileID, off, length int64) error {
	if in == nil || in.plan.FlashReadErr <= 0 {
		return nil
	}
	if in.rng.Float64() < in.plan.FlashReadErr {
		in.count("flash.read")
		return fmt.Errorf("fault: flash read file %d [%d,%d): %w", id, off, off+length, ErrFlashRead)
	}
	return nil
}

// BeforeEmit decides the fate of the next batch the device wants to emit:
// an extra stall, device-side payload corruption, or a crash. Draw order is
// fixed (stall, crash, corrupt) so episodes are reproducible.
func (in *Injector) BeforeEmit() EmitFault {
	if in == nil {
		return EmitFault{}
	}
	idx := in.batches
	in.batches++
	var ev EmitFault
	if in.plan.DevStall > 0 {
		ev.Stall = in.plan.DevStall
		in.count("dev.stall")
	}
	if in.plan.CrashAtBatch >= 0 && idx == in.plan.CrashAtBatch {
		in.count("dev.crash")
		ev.Crash = fmt.Errorf("fault: before batch %d: %w", idx, ErrDeviceCrash)
		return ev
	}
	if in.plan.CrashProb > 0 && in.rng.Float64() < in.plan.CrashProb {
		in.count("dev.crash")
		ev.Crash = fmt.Errorf("fault: before batch %d: %w", idx, ErrDeviceCrash)
		return ev
	}
	if in.plan.SlotCorrupt > 0 && in.rng.Float64() < in.plan.SlotCorrupt {
		in.count("slot.corrupt")
		ev.Corrupt = true
	}
	return ev
}

// TransferCorrupt decides whether the interconnect corrupts the batch during
// the host fetch.
func (in *Injector) TransferCorrupt() bool {
	if in == nil || in.plan.XferCorrupt <= 0 {
		return false
	}
	if in.rng.Float64() < in.plan.XferCorrupt {
		in.count("xfer.corrupt")
		return true
	}
	return false
}
