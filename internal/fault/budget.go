package fault

import "sync"

// RetryBudget is a global token-bucket bound on recovery work, shared across
// every retry and hedge a run issues. Without it an injected fault storm
// amplifies: every faulted request retries up to its per-request cap, the
// retries contend with first-attempt work, and the storm outlives the fault.
// The bucket starts full; each retry or hedge spends one token, and each
// successful request refills a fraction of a token (so sustained recovery
// capacity tracks the success rate — the classic "10% retry budget"). When
// the bucket is empty, callers skip recovery and go straight to the host
// fallback, which needs no device and therefore cannot amplify.
//
// A nil *RetryBudget is an unlimited budget: Allow always grants, OnSuccess
// is a no-op — fault-free and budget-free paths stay branch-cheap.
type RetryBudget struct {
	mu      sync.Mutex
	tokens  float64 // current balance; guarded by mu
	max     float64 // bucket capacity; immutable after NewRetryBudget
	refill  float64 // tokens granted per success; immutable after NewRetryBudget
	denied  int64   // Allow calls rejected on an empty bucket; guarded by mu
	granted int64   // Allow calls that spent a token; guarded by mu
}

// NewRetryBudget builds a budget with the given capacity and per-success
// refill fraction. Capacity ≤ 0 defaults to 10 tokens; refill ≤ 0 defaults
// to 0.1 (10% of successes fund a retry).
func NewRetryBudget(capacity, refillPerSuccess float64) *RetryBudget {
	if capacity <= 0 {
		capacity = 10
	}
	if refillPerSuccess <= 0 {
		refillPerSuccess = 0.1
	}
	return &RetryBudget{tokens: capacity, max: capacity, refill: refillPerSuccess}
}

// Allow spends one token for a retry or hedge attempt. It reports false —
// and the caller must skip the attempt — when the bucket is empty.
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.granted++
	return true
}

// OnSuccess refills the per-success fraction after a request completes
// without needing recovery, capped at the bucket capacity.
func (b *RetryBudget) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.refill
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Stats returns the grant/deny counters (for tables and tests).
func (b *RetryBudget) Stats() (granted, denied int64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.granted, b.denied
}
