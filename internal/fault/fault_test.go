package fault

import (
	"errors"
	"reflect"
	"testing"

	"hybridndp/internal/vclock"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"flash.read.err=0.01",
		"dev.crash=0.5,slot.corrupt=0.005",
		"dev.crash@batch=7,dev.stall=2ms",
		"dev.crash=1,flash.read.err=0.25,seed=42,slot.corrupt=0.1,xfer.corrupt=0.2",
		"dev1:dev.stall=2ms",
		"dev.stall=1ms,dev1:dev.stall=2ms,dev3:dev.crash=0.5,seed=9",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip of %q: %+v != %+v", spec, p, p2)
		}
		if p.String() != p2.String() {
			t.Fatalf("String round trip of %q: %q != %q", spec, p.String(), p2.String())
		}
	}
}

// TestDeviceScoping: a devN:-scoped entry applies only to device N; unscoped
// entries apply fleet-wide; plans without scoping resolve to themselves.
func TestDeviceScoping(t *testing.T) {
	p, err := Parse("dev.stall=1ms,dev1:dev.stall=2ms,dev1:slot.corrupt=0.5,dev3:dev.crash=1")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Enabled() {
		t.Fatal("scoped plan must be enabled")
	}
	d0 := p.ForDevice(0)
	if d0.DevStall != vclock.Duration(1e6) || d0.SlotCorrupt != 0 || d0.CrashProb != 0 {
		t.Fatalf("device 0 must see only unscoped entries: %+v", d0)
	}
	d1 := p.ForDevice(1)
	if d1.DevStall != vclock.Duration(2e6) || d1.SlotCorrupt != 0.5 {
		t.Fatalf("device 1 must see its overlay: %+v", d1)
	}
	d3 := p.ForDevice(3)
	if d3.CrashProb != 1 || d3.DevStall != vclock.Duration(1e6) {
		t.Fatalf("device 3 must merge overlay with base: %+v", d3)
	}

	// Scope-only plans are inert on unscoped devices.
	p2, err := Parse("dev1:dev.crash=1")
	if err != nil {
		t.Fatal(err)
	}
	if p2.ForDevice(0).Enabled() {
		t.Fatal("device 0 must be fault-free under dev1:-scoped plan")
	}
	if !p2.ForDevice(1).Enabled() {
		t.Fatal("device 1 must be faulted")
	}

	// Unscoped plans return the receiver (no allocation, shared injector seed).
	p3, err := Parse("dev.crash=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p3.ForDevice(2) != p3 {
		t.Fatal("unscoped ForDevice must return the receiver")
	}
	var pn *Plan
	if pn.ForDevice(0) != nil {
		t.Fatal("nil plan ForDevice must stay nil")
	}
}

func TestScopedParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"dev:dev.stall=2ms", "devx:dev.stall=2ms", "dev-1:dev.stall=2ms",
		"dev1:seed=5", "dev1:bogus=1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q) must fail", spec)
		}
	}
}

// TestRetryBudget: tokens are spent by Allow, refilled fractionally by
// OnSuccess, and a nil budget is unlimited.
func TestRetryBudget(t *testing.T) {
	b := NewRetryBudget(2, 0.5)
	if !b.Allow() || !b.Allow() {
		t.Fatal("a full bucket must grant its capacity")
	}
	if b.Allow() {
		t.Fatal("an empty bucket must deny")
	}
	b.OnSuccess() // 0.5 tokens: still under 1
	if b.Allow() {
		t.Fatal("fractional balance below 1 must deny")
	}
	b.OnSuccess() // 1.0 tokens
	if !b.Allow() {
		t.Fatal("refilled bucket must grant")
	}
	granted, denied := b.Stats()
	if granted != 3 || denied != 2 {
		t.Fatalf("stats = (%d granted, %d denied), want (3, 2)", granted, denied)
	}
	// Refill caps at capacity.
	for i := 0; i < 100; i++ {
		b.OnSuccess()
	}
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("capped bucket must hold capacity tokens, failed at %d", i)
		}
	}
	if b.Allow() {
		t.Fatal("bucket must not exceed capacity")
	}

	var nb *RetryBudget
	if !nb.Allow() {
		t.Fatal("nil budget must be unlimited")
	}
	nb.OnSuccess()
	if g, d := nb.Stats(); g != 0 || d != 0 {
		t.Fatal("nil budget stats must be zero")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"flash.read.err=2", "dev.crash=-0.1", "dev.crash@batch=-1",
		"dev.stall=5", "dev.stall=2h", "bogus.key=1", "dev.crash",
	} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q) must fail", spec)
		}
	}
}

func TestParseDurations(t *testing.T) {
	p, err := Parse("dev.stall=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.DevStall != vclock.Duration(2e6) {
		t.Fatalf("2ms = %v ns, want 2e6", float64(p.DevStall))
	}
	p, err = Parse("dev.stall=250ns")
	if err != nil {
		t.Fatal(err)
	}
	if p.DevStall != vclock.Duration(250) {
		t.Fatalf("250ns = %v", float64(p.DevStall))
	}
	p, err = Parse("dev.stall=1.5us")
	if err != nil {
		t.Fatal(err)
	}
	if p.DevStall != vclock.Duration(1500) {
		t.Fatalf("1.5us = %v", float64(p.DevStall))
	}
}

func TestSentinelsAreIsable(t *testing.T) {
	p, err := Parse("dev.crash@batch=0,flash.read.err=1")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector("q|H1")
	ev := in.BeforeEmit()
	if ev.Crash == nil || !errors.Is(ev.Crash, ErrDeviceCrash) || !errors.Is(ev.Crash, ErrInjected) {
		t.Fatalf("crash error %v must wrap ErrDeviceCrash and ErrInjected", ev.Crash)
	}
	if !Injected(ev.Crash) {
		t.Fatal("Injected() must recognize the crash")
	}
	rerr := in.ReadFault(1, 0, 100)
	if rerr == nil || !errors.Is(rerr, ErrFlashRead) || !Injected(rerr) {
		t.Fatalf("read error %v must wrap ErrFlashRead", rerr)
	}
	if Injected(errors.New("plain")) {
		t.Fatal("Injected() must reject unrelated errors")
	}
}

// TestInjectorDeterministic: same plan + same run key ⇒ identical fault
// episode; different keys diverge (independent per-run streams).
func TestInjectorDeterministic(t *testing.T) {
	p, err := Parse("dev.crash=0.3,slot.corrupt=0.3,flash.read.err=0.3,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	episode := func(key string) []bool {
		in := p.Injector(key)
		var out []bool
		for i := 0; i < 64; i++ {
			ev := in.BeforeEmit()
			out = append(out, ev.Crash != nil, ev.Corrupt, in.ReadFault(1, int64(i), 8) != nil, in.TransferCorrupt())
		}
		return out
	}
	a, b := episode("8d|H1"), episode("8d|H1")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same key diverged at draw %d", i)
		}
	}
	c := episode("8d|H2")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different run keys produced the identical episode")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if ev := in.BeforeEmit(); ev.Crash != nil || ev.Corrupt || ev.Stall != 0 {
		t.Fatal("nil injector must not inject")
	}
	if in.ReadFault(1, 0, 10) != nil || in.TransferCorrupt() {
		t.Fatal("nil injector must not inject")
	}
	var p *Plan
	if p.Enabled() || p.Injector("k") != nil || p.String() != "" {
		t.Fatal("nil plan must be inert")
	}
	disabled, _ := Parse("")
	if disabled.Enabled() || disabled.Injector("k") != nil {
		t.Fatal("empty plan must be inert")
	}
}

func TestCrashAtBatch(t *testing.T) {
	p, err := Parse("dev.crash@batch=2")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector("q")
	for i := 0; i < 2; i++ {
		if ev := in.BeforeEmit(); ev.Crash != nil {
			t.Fatalf("crashed early at batch %d", i)
		}
	}
	if ev := in.BeforeEmit(); ev.Crash == nil {
		t.Fatal("batch 2 must crash")
	}
}

func TestStallAppliesPerBatch(t *testing.T) {
	p, err := Parse("dev.stall=2ms")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector("q")
	for i := 0; i < 3; i++ {
		ev := in.BeforeEmit()
		if ev.Stall != vclock.Duration(2e6) || ev.Crash != nil || ev.Corrupt {
			t.Fatalf("batch %d: %+v", i, ev)
		}
	}
}
