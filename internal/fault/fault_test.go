package fault

import (
	"errors"
	"testing"

	"hybridndp/internal/vclock"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"flash.read.err=0.01",
		"dev.crash=0.5,slot.corrupt=0.005",
		"dev.crash@batch=7,dev.stall=2ms",
		"dev.crash=1,flash.read.err=0.25,seed=42,slot.corrupt=0.1,xfer.corrupt=0.2",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if *p != *p2 {
			t.Fatalf("round trip of %q: %+v != %+v", spec, p, p2)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"flash.read.err=2", "dev.crash=-0.1", "dev.crash@batch=-1",
		"dev.stall=5", "dev.stall=2h", "bogus.key=1", "dev.crash",
	} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q) must fail", spec)
		}
	}
}

func TestParseDurations(t *testing.T) {
	p, err := Parse("dev.stall=2ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.DevStall != vclock.Duration(2e6) {
		t.Fatalf("2ms = %v ns, want 2e6", float64(p.DevStall))
	}
	p, err = Parse("dev.stall=250ns")
	if err != nil {
		t.Fatal(err)
	}
	if p.DevStall != vclock.Duration(250) {
		t.Fatalf("250ns = %v", float64(p.DevStall))
	}
	p, err = Parse("dev.stall=1.5us")
	if err != nil {
		t.Fatal(err)
	}
	if p.DevStall != vclock.Duration(1500) {
		t.Fatalf("1.5us = %v", float64(p.DevStall))
	}
}

func TestSentinelsAreIsable(t *testing.T) {
	p, err := Parse("dev.crash@batch=0,flash.read.err=1")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector("q|H1")
	ev := in.BeforeEmit()
	if ev.Crash == nil || !errors.Is(ev.Crash, ErrDeviceCrash) || !errors.Is(ev.Crash, ErrInjected) {
		t.Fatalf("crash error %v must wrap ErrDeviceCrash and ErrInjected", ev.Crash)
	}
	if !Injected(ev.Crash) {
		t.Fatal("Injected() must recognize the crash")
	}
	rerr := in.ReadFault(1, 0, 100)
	if rerr == nil || !errors.Is(rerr, ErrFlashRead) || !Injected(rerr) {
		t.Fatalf("read error %v must wrap ErrFlashRead", rerr)
	}
	if Injected(errors.New("plain")) {
		t.Fatal("Injected() must reject unrelated errors")
	}
}

// TestInjectorDeterministic: same plan + same run key ⇒ identical fault
// episode; different keys diverge (independent per-run streams).
func TestInjectorDeterministic(t *testing.T) {
	p, err := Parse("dev.crash=0.3,slot.corrupt=0.3,flash.read.err=0.3,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	episode := func(key string) []bool {
		in := p.Injector(key)
		var out []bool
		for i := 0; i < 64; i++ {
			ev := in.BeforeEmit()
			out = append(out, ev.Crash != nil, ev.Corrupt, in.ReadFault(1, int64(i), 8) != nil, in.TransferCorrupt())
		}
		return out
	}
	a, b := episode("8d|H1"), episode("8d|H1")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same key diverged at draw %d", i)
		}
	}
	c := episode("8d|H2")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different run keys produced the identical episode")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if ev := in.BeforeEmit(); ev.Crash != nil || ev.Corrupt || ev.Stall != 0 {
		t.Fatal("nil injector must not inject")
	}
	if in.ReadFault(1, 0, 10) != nil || in.TransferCorrupt() {
		t.Fatal("nil injector must not inject")
	}
	var p *Plan
	if p.Enabled() || p.Injector("k") != nil || p.String() != "" {
		t.Fatal("nil plan must be inert")
	}
	disabled, _ := Parse("")
	if disabled.Enabled() || disabled.Injector("k") != nil {
		t.Fatal("empty plan must be inert")
	}
}

func TestCrashAtBatch(t *testing.T) {
	p, err := Parse("dev.crash@batch=2")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector("q")
	for i := 0; i < 2; i++ {
		if ev := in.BeforeEmit(); ev.Crash != nil {
			t.Fatalf("crashed early at batch %d", i)
		}
	}
	if ev := in.BeforeEmit(); ev.Crash == nil {
		t.Fatal("batch 2 must crash")
	}
}

func TestStallAppliesPerBatch(t *testing.T) {
	p, err := Parse("dev.stall=2ms")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Injector("q")
	for i := 0; i < 3; i++ {
		ev := in.BeforeEmit()
		if ev.Stall != vclock.Duration(2e6) || ev.Crash != nil || ev.Corrupt {
			t.Fatalf("batch %d: %+v", i, ev)
		}
	}
}
