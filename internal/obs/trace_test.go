package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"hybridndp/internal/vclock"
)

func TestSpanNestingAndDurations(t *testing.T) {
	tr := NewTrace("q")
	tl := vclock.NewTimeline("host")

	root := tr.Start(tl, "root")
	tl.Charge("work", 100)
	child := tr.Start(tl, "child")
	tl.Charge("work", 50)
	grand := tr.Start(tl, "grand")
	tl.Charge("work", 25)
	grand.End()
	child.End()
	tl.Charge("work", 10)
	// Sibling after the pops nests under root again.
	sib := tr.Start(tl, "sibling")
	sib.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].parent != -1 || spans[1].parent != spans[0].id || spans[2].parent != spans[1].id {
		t.Fatalf("nesting broken: parents %d %d %d", spans[0].parent, spans[1].parent, spans[2].parent)
	}
	if got := spans[3].parent; got != spans[0].id {
		t.Fatalf("sibling parent %d, want root %d", got, spans[0].id)
	}
	if d := root.Duration(); d != 185 {
		t.Fatalf("root duration %v, want 185", d)
	}
	if d := grand.Duration(); d != 25 {
		t.Fatalf("grand duration %v, want 25", d)
	}
}

func TestSpansSeparateTimelinesDoNotNest(t *testing.T) {
	tr := NewTrace("q")
	host := vclock.NewTimeline("host")
	dev := vclock.NewTimeline("device")
	h := tr.Start(host, "host-root")
	d := tr.Start(dev, "device-root")
	if got := tr.Spans()[1].parent; got != -1 {
		t.Fatalf("device root nested under host span (parent %d)", got)
	}
	d.End()
	h.End()
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	tl := vclock.NewTimeline("host")
	sp := tr.Start(tl, "x").Attr("k", "v").AttrInt("n", 1)
	sp.End()
	if sp != nil || tr.Len() != 0 || tr.Spans() != nil || tr.Name() != "" {
		t.Fatal("nil trace must be inert")
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b, 1); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("nil trace dump %q", b.String())
	}
	if err := tr.WriteFlame(&b); err != nil {
		t.Fatal(err)
	}
}

// chromeEvent mirrors the trace_event fields we assert on.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args"`
}

func TestWriteChromeTraceParsesAndIsStable(t *testing.T) {
	build := func() *Trace {
		tr := NewTrace("8d")
		host := vclock.NewTimeline("host")
		dev := vclock.NewTimeline("device")
		r := tr.Start(host, "query:8d").Attr("strategy", "H2")
		s := tr.Start(dev, "device.chunk").AttrInt("rows", 512).AttrInt("chunk", 0)
		dev.Charge("scan", 2000)
		s.End()
		host.Charge("build", 1500)
		r.End()
		return tr
	}
	var a, b strings.Builder
	if err := build().WriteChromeTrace(&a, 1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b, 1); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two identical executions produced different trace bytes")
	}

	var events []chromeEvent
	if err := json.Unmarshal([]byte(a.String()), &events); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	var meta, complete int
	tids := map[int]bool{}
	for _, e := range events {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			tids[e.Tid] = true
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if meta != 3 { // process_name + 2 thread_name
		t.Fatalf("got %d metadata events, want 3", meta)
	}
	if complete != 2 || !tids[0] || !tids[1] {
		t.Fatalf("want 2 X events on 2 tids, got %d on %v", complete, tids)
	}
	// Sorted attrs: chunk before rows.
	var found bool
	for _, e := range events {
		if e.Name == "device.chunk" {
			found = true
			if e.Args["rows"] != "512" || e.Args["chunk"] != "0" {
				t.Fatalf("span args %v", e.Args)
			}
			if e.Dur != 2 { // 2000 ns = 2 µs
				t.Fatalf("span dur %v µs, want 2", e.Dur)
			}
		}
	}
	if !found {
		t.Fatal("device.chunk span missing")
	}
}

func TestWriteFlameShowsTreeAndAttrs(t *testing.T) {
	tr := NewTrace("q")
	tl := vclock.NewTimeline("host")
	root := tr.Start(tl, "root")
	tl.Charge("w", 100)
	c := tr.Start(tl, "child").Attr("k", "v")
	tl.Charge("w", 50)
	c.End()
	root.End()
	var b strings.Builder
	if err := tr.WriteFlame(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"trace q (2 spans)", "root", "child", "k=v", "host"} {
		if !strings.Contains(out, want) {
			t.Fatalf("flame output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceSetMergesWithDistinctPids(t *testing.T) {
	ts := NewTraceSet()
	for _, name := range []string{"b", "a"} {
		tr := ts.New(name)
		tl := vclock.NewTimeline("host")
		sp := tr.Start(tl, "span:"+name)
		tl.Charge("w", 10)
		sp.End()
	}
	var b strings.Builder
	if err := ts.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("merged trace does not parse: %v", err)
	}
	pids := map[int]string{}
	for _, e := range events {
		if e.Ph == "M" && e.Name == "process_name" {
			pids[e.Pid] = e.Args["name"]
		}
	}
	// Sorted by name: "a" gets pid 1, "b" pid 2.
	if pids[1] != "a" || pids[2] != "b" {
		t.Fatalf("pid assignment %v", pids)
	}

	var nilSet *TraceSet
	if nilSet.New("x") != nil || nilSet.Traces() != nil {
		t.Fatal("nil trace set must be inert")
	}
	b.Reset()
	if err := nilSet.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("nil set dump %q", b.String())
	}
}

func TestOutOfOrderEndDoesNotCorruptStack(t *testing.T) {
	tr := NewTrace("q")
	tl := vclock.NewTimeline("host")
	a := tr.Start(tl, "a")
	b := tr.Start(tl, "b")
	a.End() // out of order: a is not innermost
	b.End()
	b.End() // double end is a no-op
	c := tr.Start(tl, "c")
	// b's pop restored a as innermost; a had already ended but that only
	// affects nesting, never panics. c must be at top level or under a — not
	// under b.
	if got := tr.Spans()[2].parent; got == b.id {
		t.Fatal("stack corrupted: c nested under ended span b")
	}
	c.End()
}
