package obs

import (
	"fmt"
	"io"
	"math"
	"strings"

	"hybridndp/internal/hw"
	"hybridndp/internal/vclock"
)

// Phase is one bucket of the paper's phase structure (Fig. 17 / Table 4): the
// places a hybrid query's virtual time can go. Host and device timelines use
// disjoint subsets plus the shared setup/transfer phases.
type Phase string

// The paper phases. HostProcess and DeviceOther absorb every category not
// explicitly mapped, so a profile always covers its timeline completely.
const (
	PhaseSetup        Phase = "setup"         // NDP command transfer / rendezvous
	PhaseDeviceScan   Phase = "device-scan"   // flash load, seeks, selection, evaluation
	PhaseDeviceJoin   Phase = "device-join"   // on-device hash build/probe, grouping, buffer mgmt
	PhaseSlotWait     Phase = "slot-wait"     // device stalled on a full shared buffer
	PhaseStallInitial Phase = "stall-initial" // host wait for the first device batch
	PhaseStallFetch   Phase = "stall-fetch"   // host waits for later batches
	PhaseTransfer     Phase = "transfer"      // interconnect result transfer
	PhaseHostBuild    Phase = "host-build"    // host-side hash build (PQEP prep)
	PhaseHostProbe    Phase = "host-probe"    // host-side probe work
	PhaseHostProcess  Phase = "host-process"  // remaining host processing
	PhaseDeviceOther  Phase = "device-other"  // remaining device work
)

// hostPhases / devicePhases fix the rendering order of a profile.
var hostPhases = []Phase{
	PhaseSetup, PhaseStallInitial, PhaseStallFetch, PhaseTransfer,
	PhaseHostBuild, PhaseHostProbe, PhaseHostProcess,
}

var devicePhases = []Phase{
	PhaseSetup, PhaseDeviceScan, PhaseDeviceJoin, PhaseSlotWait,
	PhaseTransfer, PhaseDeviceOther,
}

// hostPhaseOf maps a host timeline cost category to its paper phase.
func hostPhaseOf(cat string) Phase {
	switch cat {
	case hw.CatNDPSetup:
		return PhaseSetup
	case hw.CatWaitInitial:
		return PhaseStallInitial
	case hw.CatWaitFetch:
		return PhaseStallFetch
	case hw.CatTransfer:
		return PhaseTransfer
	case hw.CatHashBuild:
		return PhaseHostBuild
	case hw.CatHashProbe:
		return PhaseHostProbe
	default:
		return PhaseHostProcess
	}
}

// devicePhaseOf maps a device timeline cost category to its paper phase.
func devicePhaseOf(cat string) Phase {
	switch cat {
	case hw.CatNDPSetup:
		return PhaseSetup
	case hw.CatWaitSlots:
		return PhaseSlotWait
	case hw.CatTransfer:
		return PhaseTransfer
	case hw.CatFlashLoad, hw.CatSeekIndex, hw.CatSeekData,
		hw.CatSelection, hw.CatMemcmp, hw.CatCompareKeys, hw.CatEval:
		return PhaseDeviceScan
	case hw.CatHashBuild, hw.CatHashProbe, hw.CatGroup, hw.CatBufferManage, hw.CatMemcpy:
		return PhaseDeviceJoin
	default:
		return PhaseDeviceOther
	}
}

// PhaseTotal is one rendered line of a profile.
type PhaseTotal struct {
	Phase   Phase
	Total   vclock.Duration
	Percent float64 // share of the timeline's total
}

// QueryProfile aggregates one query execution into the paper's phase
// structure. Host phases partition the host timeline exactly: their sum
// equals the end-to-end virtual runtime (Elapsed), because every host-side
// charge and stall lands in exactly one phase. Device phases likewise
// partition the device timeline.
type QueryProfile struct {
	Query    string
	Strategy string
	// Elapsed is the end-to-end virtual runtime (host timeline completion).
	Elapsed vclock.Duration
	// DeviceElapsed is the device timeline's completion instant (zero for
	// host-only strategies).
	DeviceElapsed vclock.Duration

	Host   []PhaseTotal
	Device []PhaseTotal
}

// aggregate folds an account into fixed-order phase totals using the given
// category→phase mapping; total is the timeline's end instant used for
// percentages.
func aggregate(account map[string]vclock.Duration, phaseOf func(string) Phase,
	order []Phase, total vclock.Duration) []PhaseTotal {
	sums := map[Phase]vclock.Duration{}
	for cat, d := range account {
		sums[phaseOf(cat)] += d
	}
	out := make([]PhaseTotal, 0, len(order))
	for _, ph := range order {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(sums[ph]) / float64(total)
		}
		out = append(out, PhaseTotal{Phase: ph, Total: sums[ph], Percent: pct})
	}
	return out
}

// Profile builds the paper-phase profile of one execution from its timeline
// accounts. hostAccount/deviceAccount are vclock.Timeline.Account() maps;
// elapsed and deviceElapsed are the corresponding end instants. A host-only
// execution passes a nil deviceAccount.
func Profile(queryName, strategy string,
	hostAccount, deviceAccount map[string]vclock.Duration,
	elapsed, deviceElapsed vclock.Duration) *QueryProfile {

	p := &QueryProfile{
		Query:         queryName,
		Strategy:      strategy,
		Elapsed:       elapsed,
		DeviceElapsed: deviceElapsed,
		Host:          aggregate(hostAccount, hostPhaseOf, hostPhases, elapsed),
	}
	if deviceAccount != nil {
		p.Device = aggregate(deviceAccount, devicePhaseOf, devicePhases, deviceElapsed)
	}
	return p
}

// HostPhase reports the host-side total booked under ph.
func (p *QueryProfile) HostPhase(ph Phase) vclock.Duration { return phaseTotal(p.Host, ph) }

// DevicePhase reports the device-side total booked under ph.
func (p *QueryProfile) DevicePhase(ph Phase) vclock.Duration { return phaseTotal(p.Device, ph) }

func phaseTotal(ts []PhaseTotal, ph Phase) vclock.Duration {
	for _, t := range ts {
		if t.Phase == ph {
			return t.Total
		}
	}
	return 0
}

// Stalls reports the profile's stall accounting (paper Table 4): the host's
// initial and follow-up waits for the device and the device's waits for a
// free shared-buffer slot.
func (p *QueryProfile) Stalls() (hostInitial, hostFetch, deviceSlots vclock.Duration) {
	return p.HostPhase(PhaseStallInitial), p.HostPhase(PhaseStallFetch), p.DevicePhase(PhaseSlotWait)
}

// reconcileTolerance bounds the relative error accepted by Reconciles: phase
// sums re-add the same float64 charges in a different order than the clock
// advanced, so equality holds only up to accumulation rounding.
const reconcileTolerance = 1e-9

// Reconciles verifies the profile's core invariant: the phase totals
// partition their timeline, i.e. the host phases sum to the end-to-end
// virtual runtime and the device phases to the device timeline span (up to
// float64 accumulation rounding).
func (p *QueryProfile) Reconciles() bool {
	return closeTo(sumPhases(p.Host), p.Elapsed) &&
		(p.Device == nil || closeTo(sumPhases(p.Device), p.DeviceElapsed))
}

func sumPhases(ts []PhaseTotal) vclock.Duration {
	var s vclock.Duration
	for _, t := range ts {
		s += t.Total
	}
	return s
}

func closeTo(a, b vclock.Duration) bool {
	diff := math.Abs(float64(a) - float64(b))
	scale := math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
	return diff <= reconcileTolerance*math.Max(scale, 1)
}

// WriteText renders the profile as the paper's two phase tables.
func (p *QueryProfile) WriteText(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s [%s] elapsed=%s\n", p.Query, p.Strategy, p.Elapsed)
	writePhases(&b, "host", p.Host)
	if p.Device != nil {
		writePhases(&b, "device", p.Device)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writePhases(b *strings.Builder, tl string, ts []PhaseTotal) {
	fmt.Fprintf(b, "  %s:\n", tl)
	for _, t := range ts {
		fmt.Fprintf(b, "    %-14s %12s %6.2f%%\n", t.Phase, t.Total.String(), t.Percent)
	}
}

// MergeProfiles aggregates many per-query profiles into one workload-level
// phase breakdown per timeline — the harness-level aggregation view (where
// does the mix's virtual time go). Phases keep their fixed order; percentages
// are recomputed against the merged totals.
func MergeProfiles(ps []*QueryProfile) *QueryProfile {
	merged := &QueryProfile{Query: fmt.Sprintf("aggregate(%d)", len(ps)), Strategy: "mixed"}
	hostSums := map[Phase]vclock.Duration{}
	devSums := map[Phase]vclock.Duration{}
	anyDev := false
	for _, p := range ps {
		if p == nil {
			continue
		}
		merged.Elapsed += p.Elapsed
		merged.DeviceElapsed += p.DeviceElapsed
		for _, t := range p.Host {
			hostSums[t.Phase] += t.Total
		}
		if p.Device != nil {
			anyDev = true
			for _, t := range p.Device {
				devSums[t.Phase] += t.Total
			}
		}
	}
	toTotals := func(sums map[Phase]vclock.Duration, order []Phase, total vclock.Duration) []PhaseTotal {
		out := make([]PhaseTotal, 0, len(order))
		for _, ph := range order {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(sums[ph]) / float64(total)
			}
			out = append(out, PhaseTotal{Phase: ph, Total: sums[ph], Percent: pct})
		}
		return out
	}
	merged.Host = toTotals(hostSums, hostPhases, merged.Elapsed)
	if anyDev {
		merged.Device = toTotals(devSums, devicePhases, merged.DeviceElapsed)
	}
	return merged
}
