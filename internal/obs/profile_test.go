package obs

import (
	"strings"
	"testing"

	"hybridndp/internal/hw"
	"hybridndp/internal/vclock"
)

// buildAccounts simulates two timelines the way the executor does: every
// charge advances the clock and books to a category, so the account sums equal
// the end instants by construction.
func buildAccounts() (host, dev map[string]vclock.Duration, elapsed, devElapsed vclock.Duration) {
	hostTL := vclock.NewTimeline("host")
	devTL := vclock.NewTimeline("device")
	hostTL.Charge(hw.CatNDPSetup, 100)
	devTL.Charge(hw.CatNDPSetup, 100)
	devTL.Charge(hw.CatFlashLoad, 400)
	devTL.Charge(hw.CatEval, 200)
	devTL.Charge(hw.CatHashBuild, 50)
	devTL.Charge(hw.CatWaitSlots, 80)
	hostTL.Charge(hw.CatWaitInitial, 300)
	hostTL.Charge(hw.CatTransfer, 120)
	hostTL.Charge(hw.CatHashBuild, 90)
	hostTL.Charge(hw.CatHashProbe, 60)
	hostTL.Charge(hw.CatWaitFetch, 40)
	hostTL.Charge(hw.CatGroup, 30)
	return hostTL.Account(), devTL.Account(),
		vclock.Duration(hostTL.Now()), vclock.Duration(devTL.Now())
}

func TestProfilePhasesAndReconciliation(t *testing.T) {
	host, dev, elapsed, devElapsed := buildAccounts()
	p := Profile("8d", "H2", host, dev, elapsed, devElapsed)
	if !p.Reconciles() {
		t.Fatal("phase totals must partition the timelines")
	}
	checks := []struct {
		got  vclock.Duration
		want vclock.Duration
		name string
	}{
		{p.HostPhase(PhaseSetup), 100, "host setup"},
		{p.HostPhase(PhaseStallInitial), 300, "stall-initial"},
		{p.HostPhase(PhaseStallFetch), 40, "stall-fetch"},
		{p.HostPhase(PhaseTransfer), 120, "transfer"},
		{p.HostPhase(PhaseHostBuild), 90, "host-build"},
		{p.HostPhase(PhaseHostProbe), 60, "host-probe"},
		{p.HostPhase(PhaseHostProcess), 30, "host-process"},
		{p.DevicePhase(PhaseSetup), 100, "device setup"},
		{p.DevicePhase(PhaseDeviceScan), 600, "device-scan"},
		{p.DevicePhase(PhaseDeviceJoin), 50, "device-join"},
		{p.DevicePhase(PhaseSlotWait), 80, "slot-wait"},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	hi, hf, ds := p.Stalls()
	if hi != 300 || hf != 40 || ds != 80 {
		t.Fatalf("stalls (%v,%v,%v)", hi, hf, ds)
	}
}

func TestProfileReconcilesRejectsMissingTime(t *testing.T) {
	host, dev, elapsed, devElapsed := buildAccounts()
	p := Profile("q", "H1", host, dev, elapsed+1000, devElapsed)
	if p.Reconciles() {
		t.Fatal("missing host time must fail reconciliation")
	}
	p = Profile("q", "H1", host, dev, elapsed, devElapsed-10)
	if p.Reconciles() {
		t.Fatal("missing device time must fail reconciliation")
	}
}

func TestHostOnlyProfileHasNoDeviceTable(t *testing.T) {
	host, _, elapsed, _ := buildAccounts()
	p := Profile("q", "native", host, nil, elapsed, 0)
	if p.Device != nil {
		t.Fatal("host-only profile must not fabricate a device table")
	}
	if !p.Reconciles() {
		t.Fatal("host-only profile must reconcile")
	}
	if p.DevicePhase(PhaseDeviceScan) != 0 {
		t.Fatal("missing device phases must read zero")
	}
}

func TestUnknownCategoriesLandInCatchAll(t *testing.T) {
	host := map[string]vclock.Duration{"mystery": 10}
	dev := map[string]vclock.Duration{"mystery": 20}
	p := Profile("q", "H1", host, dev, 10, 20)
	if p.HostPhase(PhaseHostProcess) != 10 {
		t.Fatal("unknown host category must land in host-process")
	}
	if p.DevicePhase(PhaseDeviceOther) != 20 {
		t.Fatal("unknown device category must land in device-other")
	}
	if !p.Reconciles() {
		t.Fatal("catch-all phases must keep the partition complete")
	}
}

func TestWriteTextRendersBothTables(t *testing.T) {
	host, dev, elapsed, devElapsed := buildAccounts()
	p := Profile("8d", "H2", host, dev, elapsed, devElapsed)
	var b strings.Builder
	if err := p.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"profile 8d [H2]", "host:", "device:", "slot-wait", "stall-initial"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestMergeProfilesAggregates(t *testing.T) {
	host, dev, elapsed, devElapsed := buildAccounts()
	p1 := Profile("a", "H2", host, dev, elapsed, devElapsed)
	p2 := Profile("b", "native", host, nil, elapsed, 0)
	m := MergeProfiles([]*QueryProfile{p1, nil, p2})
	if m.Elapsed != 2*elapsed {
		t.Fatalf("merged elapsed %v, want %v", m.Elapsed, 2*elapsed)
	}
	if m.HostPhase(PhaseStallInitial) != 600 {
		t.Fatalf("merged stall-initial %v, want 600", m.HostPhase(PhaseStallInitial))
	}
	if m.DevicePhase(PhaseSlotWait) != 80 {
		t.Fatalf("merged slot-wait %v, want 80", m.DevicePhase(PhaseSlotWait))
	}
	if !m.Reconciles() {
		t.Fatal("merged profile must reconcile")
	}
}
