// Package obs is the virtual-time observability subsystem: structured
// tracing, metrics and per-query execution profiles for the cooperative
// pipeline. The paper's headline artifacts (Fig. 17 batch timeline, Table 4
// stall accounting) are observability outputs; obs makes them a uniform,
// deterministic layer instead of ad-hoc report fields.
//
// Everything in this package is pinned to the simulator's *virtual* clocks
// (vclock.Timeline): a span's start and end are virtual instants, a profile's
// phases sum to the query's virtual elapsed time, and no wall-clock source is
// read anywhere (the hybridlint wallclock analyzer enforces this — obs is a
// simulation package). Two runs of the same seeded query therefore produce
// byte-identical trace and metrics dumps; determinism is a tested invariant,
// not an accident.
//
// The three parts:
//
//   - Trace / Span (this file): structured spans with parent nesting per
//     timeline, a Chrome trace_event JSON exporter (load trace.json in
//     chrome://tracing or https://ui.perfetto.dev) and a plain-text flame
//     report.
//   - Registry / Counter / Gauge / Histogram (metrics.go): race-safe process
//     metrics with a sorted, byte-stable text dump.
//   - QueryProfile (profile.go): aggregation of a query's timeline accounts
//     into the paper's phase structure with exact reconciliation against the
//     end-to-end virtual runtime.
//
// All entry points are nil-safe: a nil *Trace or nil *Registry turns every
// recording call into a cheap no-op, so instrumented hot paths pay only a
// pointer test when observability is off (BenchmarkTracerOverhead pins the
// bound).
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hybridndp/internal/vclock"
)

// Attr is one span attribute. Values are stored pre-formatted so the dump is
// byte-stable by construction.
type Attr struct {
	Key string
	Val string
}

// Span is one traced region of virtual time on a single timeline.
type Span struct {
	tr       *Trace
	tl       *vclock.Timeline
	id       int
	parent   int // span id of the enclosing open span on the same timeline, -1 at top level
	name     string
	timeline string
	start    vclock.Time
	end      vclock.Time
	attrs    []Attr
	ended    bool
}

// Trace collects the spans of one query execution. A Trace is owned by the
// single goroutine simulating the query (the cooperative pipeline interleaves
// host and device work on one goroutine), but it is mutex-guarded anyway so
// aggregating layers can read it concurrently with late writers.
type Trace struct {
	name string

	mu    sync.Mutex
	spans []*Span        // guarded by mu
	open  map[string]int // guarded by mu; timeline name → index of innermost open span
}

// NewTrace starts an empty trace labelled with the query/run name.
func NewTrace(name string) *Trace {
	return &Trace{name: name, open: make(map[string]int)}
}

// Name reports the trace's label.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Start opens a span named name on tl's timeline, starting at the timeline's
// current virtual instant. The span nests under the innermost span still open
// on the same timeline. Nil-safe: a nil trace returns a nil span and records
// nothing.
func (t *Trace) Start(tl *vclock.Timeline, name string) *Span {
	if t == nil || tl == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{
		tr:       t,
		tl:       tl,
		id:       len(t.spans),
		parent:   -1,
		name:     name,
		timeline: tl.Name(),
		start:    tl.Now(),
	}
	if idx, ok := t.open[sp.timeline]; ok {
		sp.parent = t.spans[idx].id
	}
	t.spans = append(t.spans, sp)
	t.open[sp.timeline] = sp.id
	return sp
}

// Attr attaches a pre-formatted attribute and returns the span for chaining.
func (s *Span) Attr(key, val string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.tr.mu.Unlock()
	return s
}

// AttrInt is Attr for integer values.
func (s *Span) AttrInt(key string, val int64) *Span {
	return s.Attr(key, strconv.FormatInt(val, 10))
}

// End closes the span at its timeline's current virtual instant and pops it
// from the nesting stack. Ending an already-ended or nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.end = s.tl.Now()
	// Restore the parent as the innermost open span. Spans end LIFO per
	// timeline in a well-nested trace; guard anyway so a stray out-of-order
	// End cannot corrupt the stack.
	if idx, ok := s.tr.open[s.timeline]; ok && idx == s.id {
		if s.parent >= 0 {
			s.tr.open[s.timeline] = s.parent
		} else {
			delete(s.tr.open, s.timeline)
		}
	}
}

// Duration reports the span's virtual length (zero while still open).
func (s *Span) Duration() vclock.Duration {
	if s == nil || !s.ended {
		return 0
	}
	return s.end.Sub(s.start)
}

// Spans returns the recorded spans in creation order. Open spans are included
// with a zero end; callers that need closed intervals should End them first.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len reports the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// sortedAttrs returns the span's attributes sorted by key (duplicate keys keep
// insertion order), so every dump is byte-stable.
func (s *Span) sortedAttrs() []Attr {
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// usec renders a virtual instant/duration as Chrome's microsecond unit with a
// fixed number of decimals, so output bytes do not depend on float printing
// subtleties across values.
func usec(ns float64) string {
	return strconv.FormatFloat(ns/1e3, 'f', 3, 64)
}

// WriteChromeTrace serializes the trace in Chrome trace_event JSON (array
// form): one complete ("X") event per span with virtual-microsecond
// timestamps, pid pid, and the timeline name as tid metadata. Load the file
// in chrome://tracing or Perfetto to see host and device tracks overlapping,
// with slot-stall and host-wait spans making every rendezvous explicit.
//
// The output is deterministic: spans emit in creation order with sorted
// attributes, and all numbers use fixed formatting.
func (t *Trace) WriteChromeTrace(w io.Writer, pid int) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	b.WriteString("[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	// tid assignment: timelines in first-use order (host before device in
	// every execution path, but derived from the data, not assumed).
	tids := map[string]int{}
	order := []string{}
	for _, sp := range t.spans {
		if _, ok := tids[sp.timeline]; !ok {
			tids[sp.timeline] = len(order)
			order = append(order, sp.timeline)
		}
	}
	emit(fmt.Sprintf(`  {"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
		pid, strconv.Quote(t.name)))
	for i, tl := range order {
		emit(fmt.Sprintf(`  {"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			pid, i, strconv.Quote(tl)))
	}
	for _, sp := range t.spans {
		end := sp.end
		if !sp.ended {
			end = sp.start
		}
		var args strings.Builder
		for i, a := range sp.sortedAttrs() {
			if i > 0 {
				args.WriteString(",")
			}
			fmt.Fprintf(&args, "%s:%s", strconv.Quote(a.Key), strconv.Quote(a.Val))
		}
		emit(fmt.Sprintf(`  {"name":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{%s}}`,
			strconv.Quote(sp.name), pid, tids[sp.timeline],
			usec(float64(sp.start)), usec(float64(end.Sub(sp.start))), args.String()))
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFlame renders the span tree as an indented plain-text flame report,
// one block per timeline: each line shows the span's virtual duration, its
// share of the timeline's total span and its attributes. Deterministic by the
// same rules as the Chrome exporter.
func (t *Trace) WriteFlame(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	children := map[int][]*Span{} // parent id (-1 = roots) → spans, creation order
	var timelines []string
	seen := map[string]bool{}
	for _, sp := range t.spans {
		children[sp.parent] = append(children[sp.parent], sp)
		if !seen[sp.timeline] {
			seen[sp.timeline] = true
			timelines = append(timelines, sp.timeline)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans)\n", t.name, len(t.spans))
	for _, tl := range timelines {
		var total vclock.Duration
		for _, sp := range children[-1] {
			if sp.timeline == tl {
				total += sp.end.Sub(sp.start)
			}
		}
		fmt.Fprintf(&b, "%s (%s total across root spans)\n", tl, total)
		var walk func(sp *Span, depth int)
		walk = func(sp *Span, depth int) {
			d := sp.end.Sub(sp.start)
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(d) / float64(total)
			}
			fmt.Fprintf(&b, "  %s%-*s %12s %6.2f%%", strings.Repeat("  ", depth),
				32-2*depth, sp.name, d.String(), pct)
			for _, a := range sp.sortedAttrs() {
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Val)
			}
			b.WriteString("\n")
			for _, c := range children[sp.id] {
				walk(c, depth+1)
			}
		}
		for _, sp := range children[-1] {
			if sp.timeline == tl {
				walk(sp, 0)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// TraceSet is a race-safe collection of per-query traces, used by the
// concurrent scheduler: each admitted query records into its own Trace, and
// the set merges them into one Chrome trace (one pid per query). Nil-safe:
// a nil set hands out nil traces.
type TraceSet struct {
	mu     sync.Mutex
	traces []*Trace // guarded by mu
}

// NewTraceSet returns an empty trace set.
func NewTraceSet() *TraceSet { return &TraceSet{} }

// New registers and returns a fresh trace. Registration order follows
// completion of the call, which under concurrent serving is scheduling-
// dependent; per-trace content stays deterministic.
func (ts *TraceSet) New(name string) *Trace {
	if ts == nil {
		return nil
	}
	tr := NewTrace(name)
	ts.mu.Lock()
	ts.traces = append(ts.traces, tr)
	ts.mu.Unlock()
	return tr
}

// Traces snapshots the registered traces in registration order.
func (ts *TraceSet) Traces() []*Trace {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]*Trace, len(ts.traces))
	copy(out, ts.traces)
	return out
}

// WriteChromeTrace merges every registered trace into one Chrome trace_event
// JSON document, one pid per trace. Traces are sorted by name (then
// registration order) so the merged dump does not depend on goroutine
// interleaving.
func (ts *TraceSet) WriteChromeTrace(w io.Writer) error {
	if ts == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	traces := ts.Traces()
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].name < traces[j].name })
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, tr := range traces {
		var one strings.Builder
		if err := tr.WriteChromeTrace(&one, i+1); err != nil {
			return err
		}
		// Strip the per-trace array brackets and splice the events in.
		body := strings.TrimSpace(one.String())
		body = strings.TrimPrefix(body, "[")
		body = strings.TrimSuffix(body, "]")
		body = strings.TrimSpace(body)
		if body == "" {
			continue
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "  "+body); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}
