package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup must return the same counter")
	}

	g := r.Gauge("g")
	g.Set(1.5)
	g.Add(0.5)
	if g.Value() != 2 {
		t.Fatalf("gauge %v, want 2", g.Value())
	}
	g.SetInt(7)
	if g.Value() != 7 {
		t.Fatalf("gauge %v, want 7", g.Value())
	}

	h := r.Histogram("h", []float64{10, 100})
	for _, x := range []float64{5, 10, 50, 1000} {
		h.Observe(x)
	}
	if h.Count() != 4 || h.Sum() != 1065 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	bounds, counts := h.Buckets()
	if len(bounds) != 2 || counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("buckets %v %v", bounds, counts)
	}
}

func TestNilRegistryHandsOutInertHandles(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", DefaultSizeBuckets).Observe(1)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h", nil).Count() != 0 {
		t.Fatal("nil registry handles must be inert")
	}
	if r.Dump() != "" {
		t.Fatal("nil registry dump must be empty")
	}
	if n, err := r.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatal("nil registry WriteTo must be a no-op")
	}
}

func TestDumpSortedAndByteStable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in an order that differs from the sorted dump order.
		r.Gauge("z.gauge").Set(2.5)
		r.Counter("b.counter").Add(3)
		r.Histogram("a.hist", []float64{1, 10}).Observe(5)
		r.Counter("a.counter").Inc()
		return r
	}
	d1, d2 := build().Dump(), build().Dump()
	if d1 != d2 {
		t.Fatalf("dumps differ:\n%s\n---\n%s", d1, d2)
	}
	lines := strings.Split(strings.TrimSpace(d1), "\n")
	want := []string{
		"counter a.counter 1",
		"counter b.counter 3",
		"gauge z.gauge 2.5",
		"hist a.hist count=1 sum=5 le{1=0 10=1 inf=0}",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want), d1)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestHistogramBoundsAreSortedCopies(t *testing.T) {
	in := []float64{100, 1, 10}
	h := newHistogram(in)
	h.Observe(5)
	bounds, counts := h.Buckets()
	if bounds[0] != 1 || bounds[1] != 10 || bounds[2] != 100 {
		t.Fatalf("bounds not sorted: %v", bounds)
	}
	if counts[1] != 1 {
		t.Fatalf("5 must land in (1,10] bucket: %v", counts)
	}
	in[0] = -1 // mutating the caller's slice must not affect the histogram
	if b, _ := h.Buckets(); b[2] != 100 {
		t.Fatal("histogram shares the caller's bounds slice")
	}
}

// TestRegistryConcurrentUpdates is the race stress for the registry: many
// goroutines hammer shared counters, gauges and histograms (including
// first-use creation races) and one dump runs concurrently. Run under
// `go test -race` (make race) this proves the registry is safe to share
// across scheduler workers.
func TestRegistryConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Add(1)
				r.Histogram("shared.hist", DefaultSizeBuckets).Observe(float64(i))
				if i == perG/2 {
					// A dump in the middle of the storm must not race.
					_ = r.Dump()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != goroutines*perG {
		t.Fatalf("counter %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("shared.gauge").Value(); got != goroutines*perG {
		t.Fatalf("gauge %v, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("shared.hist", nil).Count(); got != goroutines*perG {
		t.Fatalf("hist count %d, want %d", got, goroutines*perG)
	}
	if !strings.Contains(r.Dump(), "counter shared.counter 8000") {
		t.Fatalf("final dump wrong:\n%s", r.Dump())
	}
}
