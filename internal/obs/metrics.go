package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotone race-safe counter. The nil counter is a no-op sink.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a race-safe instantaneous value (float64). The nil gauge is a
// no-op sink.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a race-safe histogram over fixed, immutable bucket bounds:
// observation x lands in the first bucket with x <= bound, or the implicit
// +Inf overflow bucket. Fixed bounds keep dumps byte-stable and make two
// histograms mergeable by bucket index. The nil histogram is a no-op sink.
type Histogram struct {
	bounds []float64 // immutable after newHistogram
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		v := math.Float64frombits(old) + x
		if h.sum.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observations. Under concurrent observers the
// float accumulation order is nondeterministic; dumps meant to be
// byte-compared must come from single-goroutine runs (as the determinism test
// does).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the bounds and per-bucket counts (the last count is the
// +Inf overflow bucket).
func (h *Histogram) Buckets() ([]float64, []int64) {
	if h == nil {
		return nil, nil
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// DefaultDurationBuckets is the standard bucket ladder for virtual-nanosecond
// durations: 1µs..10s in decades.
var DefaultDurationBuckets = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// DefaultSizeBuckets is the standard ladder for row/byte counts.
var DefaultSizeBuckets = []float64{1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7}

// DefaultRatioBuckets is the ladder for actual/estimate ratios (calibration
// true-up): 1 is a perfect estimate, the tails are order-of-magnitude misses.
var DefaultRatioBuckets = []float64{0.1, 0.25, 0.5, 1, 2, 4, 10, 100}

// Registry is a race-safe named-metric registry. Metric handles are created
// on first use and stable afterwards; the text dump is sorted and
// byte-stable. The nil registry hands out nil (no-op) metric handles, so
// instrumented code needs no branches beyond the calls themselves.
type Registry struct {
	mu sync.Mutex
	cs map[string]*Counter   // guarded by mu
	gs map[string]*Gauge     // guarded by mu
	hs map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cs: map[string]*Counter{},
		gs: map[string]*Gauge{},
		hs: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.cs[name]
	if !ok {
		c = &Counter{}
		r.cs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gs[name]
	if !ok {
		g = &Gauge{}
		r.gs[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds on
// first use. Later calls return the existing histogram regardless of bounds
// (bounds are a property of the first registration).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hs[name]
	if !ok {
		h = newHistogram(bounds)
		r.hs[name] = h
	}
	return h
}

// num renders a float64 without trailing noise, deterministically.
func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo dumps every metric as one line, sorted by kind-qualified name, in a
// fixed plain-text format:
//
//	counter <name> <value>
//	gauge <name> <value>
//	hist <name> count=<n> sum=<s> le{<bound>=<n> ... inf=<n>}
//
// The dump is byte-stable for a given sequence of recordings.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	type line struct{ key, text string }
	var lines []line
	for name, c := range r.cs {
		lines = append(lines, line{"counter " + name,
			fmt.Sprintf("counter %s %d\n", name, c.Value())})
	}
	for name, g := range r.gs {
		lines = append(lines, line{"gauge " + name,
			fmt.Sprintf("gauge %s %s\n", name, num(g.Value()))})
	}
	for name, h := range r.hs {
		lines = append(lines, line{"hist " + name, histLine(name, h)})
	}
	r.mu.Unlock()
	sort.Slice(lines, func(i, j int) bool { return lines[i].key < lines[j].key })
	var n int64
	for _, l := range lines {
		m, err := io.WriteString(w, l.text)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// histLine renders one histogram's dump line.
func histLine(name string, h *Histogram) string {
	bounds, counts := h.Buckets()
	var b strings.Builder
	fmt.Fprintf(&b, "hist %s count=%d sum=%s le{", name, h.Count(), num(h.Sum()))
	for i, bound := range bounds {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", num(bound), counts[i])
	}
	if len(bounds) > 0 {
		b.WriteString(" ")
	}
	fmt.Fprintf(&b, "inf=%d}\n", counts[len(counts)-1])
	return b.String()
}

// Dump returns the sorted text dump as a string.
func (r *Registry) Dump() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	//lint:allow errsink writes to a strings.Builder cannot fail
	_, _ = r.WriteTo(&b)
	return b.String()
}
