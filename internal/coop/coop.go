// Package coop implements hybridNDP's cooperative execution model (paper §4)
// and the baseline execution stacks. A hybrid run splits the physical plan
// at Hk, ships the NDP-PQEP to the device simulator, pre-builds the host
// PQEP's structures while the device performs its initial execution, and then
// consumes intermediate result sets slot by slot, so both engines overlap and
// only stall on each other when the shared buffer runs full (device) or
// empty (host). All interaction is priced on two virtual timelines whose
// rendezvous points reproduce the phase structure of paper Fig. 17 / Table 4.
package coop

import (
	"fmt"
	"strings"

	"hybridndp/internal/device"
	"hybridndp/internal/exec"
	"hybridndp/internal/fault"
	"hybridndp/internal/hw"
	"hybridndp/internal/kv"
	"hybridndp/internal/lsm"
	"hybridndp/internal/num"
	"hybridndp/internal/obs"
	"hybridndp/internal/table"
	"hybridndp/internal/vclock"
)

// Kind selects the execution strategy.
type Kind int

// Execution strategies. BlockOnly and HostNative run the whole plan on the
// host over the BLK / native stacks (paper Fig. 10 baselines); NDPOnly
// offloads the complete plan; Hybrid splits it.
const (
	BlockOnly Kind = iota
	HostNative
	NDPOnly
	Hybrid
)

func (k Kind) String() string {
	switch k {
	case BlockOnly:
		return "block"
	case HostNative:
		return "native"
	case NDPOnly:
		return "ndp"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Strategy is a fully specified execution choice.
type Strategy struct {
	Kind Kind
	// Split is the number of join steps executed on device for Hybrid:
	// -1 = H0 (every leaf selection offloaded, all joins on host),
	// k ≥ 1 = Hk (leaves 0..k and joins 1..k offloaded).
	Split int
}

// SplitLabel renders H0..Hn / stack names.
func (s Strategy) String() string {
	if s.Kind != Hybrid {
		return s.Kind.String()
	}
	if s.Split < 0 {
		return "H0"
	}
	return fmt.Sprintf("H%d", s.Split)
}

// BatchEvent records one intermediate result set handoff for timeline plots.
type BatchEvent struct {
	Idx         int
	Rows        int
	Bytes       int64
	DeviceReady vclock.Time // device finished producing the slot
	HostFetched vclock.Time // host completed the transfer
	HostDone    vclock.Time // host finished processing the batch
}

// Report is the outcome of one execution.
type Report struct {
	Query    string
	Strategy Strategy
	Result   *exec.Result
	// Elapsed is the end-to-end virtual runtime (host completion).
	Elapsed vclock.Duration
	// DeviceElapsed is the device timeline's completion instant (zero for
	// host-only strategies).
	DeviceElapsed vclock.Duration

	HostAccount   map[string]vclock.Duration
	DeviceAccount map[string]vclock.Duration

	Batches          int
	TransferredBytes int64
	Timeline         []BatchEvent
	DeviceMemory     device.MemoryPlan

	// FaultRetries counts device-command retries forced by injected faults;
	// the wasted virtual time of every failed attempt is folded into Elapsed.
	FaultRetries int
	// FellBack reports that the run abandoned the device after exhausting its
	// retries and re-executed the whole plan host-only.
	FellBack bool
}

// Profile aggregates the report's timeline accounts into the paper's phase
// structure (obs.QueryProfile): host phases partition the end-to-end virtual
// runtime, device phases the device timeline span, with explicit stall
// accounting.
func (r *Report) Profile() *obs.QueryProfile {
	var dev map[string]vclock.Duration
	if len(r.DeviceAccount) > 0 {
		dev = r.DeviceAccount
	}
	return obs.Profile(r.Query, r.Strategy.String(), r.HostAccount, dev, r.Elapsed, r.DeviceElapsed)
}

// WaitInitial reports the host's initial stall waiting for the first device
// result (Fig. 17 / Table 4 "Wait (initial device exec.)").
func (r *Report) WaitInitial() vclock.Duration { return r.HostAccount[hw.CatWaitInitial] }

// WaitFetch reports host stalls on later batches.
func (r *Report) WaitFetch() vclock.Duration { return r.HostAccount[hw.CatWaitFetch] }

// DeviceWaitSlots reports device stalls on exhausted buffer slots.
func (r *Report) DeviceWaitSlots() vclock.Duration { return r.DeviceAccount[hw.CatWaitSlots] }

// CacheFormat overrides the device's intermediate-result cache format.
type CacheFormat int

// Cache format overrides (paper §4.2): Auto switches to pointer format above
// two tables; the forced settings exist for the ablation benchmarks.
const (
	CacheAuto CacheFormat = iota
	CacheRow
	CachePointer
)

// Executor runs plans under any strategy.
type Executor struct {
	Cat   *table.Catalog
	DB    *kv.DB
	Model hw.Model
	// Chunks overrides the driving-table partition count (0 = auto).
	Chunks int
	// CacheFormat overrides the device cache-structure choice.
	CacheFormat CacheFormat
	// Metrics receives per-run counters/histograms (batches, transfer volume,
	// stall time, cache hit rates). Nil disables metric recording; the
	// registry is race-safe, so one registry may be shared by concurrent runs.
	Metrics *obs.Registry
	// Faults, when set to an enabled plan, deterministically injects device
	// faults (see internal/fault): flash read errors and per-batch
	// stall/crash/corruption on device strategies. Host-side execution — and
	// therefore the fallback path — is never injected: the smart-storage
	// device is the unreliable component of the model.
	Faults *fault.Plan
	// MaxRetries caps device-command retries before host-only fallback
	// (0 = default of 2, negative = no retries).
	MaxRetries int
	// Budget, when set, is the global token-bucket retry budget shared by
	// every run of this executor (and, in fleet settings, with shard hedges):
	// each retry spends a token, each successful run refills a fraction, and
	// a drained bucket sends faulted runs straight to the host fallback so a
	// fault storm cannot amplify into a retry storm. Nil = unlimited.
	Budget *fault.RetryBudget
	// Deadline is the default per-run virtual-time budget (0 = none): once a
	// faulted device attempt can no longer finish inside it, the run stops
	// retrying and falls back to the host immediately. RunDeadline overrides
	// it per run.
	Deadline vclock.Duration
	// BatchSize sets the row capacity of the columnar batches the engines
	// this executor builds process at a time (0 = exec.DefaultBatchSize).
	// Virtual-time charges are byte-identical for every value; the knob only
	// trades wall-clock locality against scratch memory.
	BatchSize int
}

// maxRetries resolves the retry cap.
func (x *Executor) maxRetries() int {
	if x.MaxRetries < 0 {
		return 0
	}
	if x.MaxRetries == 0 {
		return 2
	}
	return x.MaxRetries
}

// injectorFor derives the per-run fault injector. The stream is keyed by
// query and strategy, so concurrent scheduling order can never perturb a
// run's fault episode. Nil when fault injection is disabled.
func (x *Executor) injectorFor(p *exec.Plan, s Strategy) *fault.Injector {
	in := x.Faults.Injector(p.Query.Name + "|" + s.String())
	in.Bind(x.Metrics)
	return in
}

// applyCacheFormat applies the override to a device engine.
func (x *Executor) applyCacheFormat(eng *exec.Engine) {
	switch x.CacheFormat {
	case CacheRow:
		eng.PointerCache = false
	case CachePointer:
		eng.PointerCache = true
	}
}

// NewExecutor builds an executor over the catalog.
func NewExecutor(cat *table.Catalog, db *kv.DB, m hw.Model) *Executor {
	return &Executor{Cat: cat, DB: db, Model: m}
}

// hostCache builds a fresh host block cache sized as the model's fraction of
// the stored dataset (MyRocks block cache under the paper's memory-pressure
// ratio). Every run starts cold so strategy comparisons are
// order-independent.
func (x *Executor) hostCache() *lsm.BlockCache {
	bytes := int64(float64(x.DB.Flash().Used()) * x.Model.HostCacheFraction)
	return lsm.NewBlockCache(bytes)
}

// Run executes the plan under the given strategy.
func (x *Executor) Run(p *exec.Plan, s Strategy) (*Report, error) {
	return x.RunTraced(p, s, nil)
}

// RunTraced executes the plan under the given strategy, recording structured
// spans into tr (nil tr disables tracing at the cost of a pointer test per
// span site). The trace is per-run state, so one Executor can serve
// concurrent traced runs, each with its own Trace.
func (x *Executor) RunTraced(p *exec.Plan, s Strategy, tr *obs.Trace) (*Report, error) {
	return x.RunDeadline(p, s, tr, x.Deadline)
}

// RunDeadline executes like RunTraced under an explicit per-run virtual-time
// deadline (0 = none). The deadline is advisory for fault recovery, not a
// hard abort: a fault-free run past its deadline still completes (the serve
// layer accounts the SLO miss), but a faulted run whose next device attempt
// cannot fit inside the remaining budget skips the retries and re-executes
// host-side at once — the cheapest completion still available.
func (x *Executor) RunDeadline(p *exec.Plan, s Strategy, tr *obs.Trace, deadline vclock.Duration) (*Report, error) {
	var rep *Report
	var err error
	switch s.Kind {
	case BlockOnly:
		rep, err = x.runHostOnly(p, s, hw.BlockStackRates(x.Model), tr)
	case HostNative:
		rep, err = x.runHostOnly(p, s, hw.HostRates(x.Model), tr)
	case NDPOnly:
		rep, err = x.runNDPOnly(p, s, tr, deadline)
	case Hybrid:
		rep, err = x.runHybrid(p, s, tr, deadline)
	default:
		return nil, fmt.Errorf("coop: unknown strategy %v", s.Kind)
	}
	if err != nil {
		return nil, err
	}
	if rep.FaultRetries == 0 && !rep.FellBack {
		x.Budget.OnSuccess()
	}
	x.recordRun(rep)
	return rep, nil
}

// recordRun publishes one finished run's outcome into the metrics registry
// (no-op on a nil registry).
func (x *Executor) recordRun(r *Report) {
	m := x.Metrics
	if m == nil {
		return
	}
	m.Counter("coop.runs." + r.Strategy.Kind.String()).Inc()
	m.Histogram("coop.elapsed.ns", obs.DefaultDurationBuckets).Observe(float64(r.Elapsed))
	if r.Batches > 0 {
		m.Counter("coop.batches").Add(int64(r.Batches))
		m.Histogram("coop.batch.count", obs.DefaultSizeBuckets).Observe(float64(r.Batches))
	}
	if r.TransferredBytes > 0 {
		m.Counter("coop.transfer.bytes").Add(r.TransferredBytes)
	}
	m.Counter("coop.stall.host.initial.ns").Add(int64(r.WaitInitial()))
	m.Counter("coop.stall.host.fetch.ns").Add(int64(r.WaitFetch()))
	m.Counter("coop.stall.device.slots.ns").Add(int64(r.DeviceWaitSlots()))
}

// recordStorage publishes a host engine's storage-path observability: block
// cache hit/miss counts plus the derived hit rate, and Bloom-filter probe
// outcomes (no-op on a nil registry). Counters only ever accumulate virtual
// simulation outcomes, so the dump stays deterministic.
func (x *Executor) recordStorage(eng *exec.Engine) {
	m := x.Metrics
	if m == nil || eng == nil {
		return
	}
	if eng.Cache != nil {
		hits, misses, _ := eng.Cache.Stats()
		m.Counter("coop.host.cache.hits").Add(hits)
		m.Counter("coop.host.cache.misses").Add(misses)
		h := m.Counter("coop.host.cache.hits").Value()
		n := h + m.Counter("coop.host.cache.misses").Value()
		if n > 0 {
			m.Gauge("coop.host.cache.hitrate").Set(float64(h) / float64(n))
		}
	}
	if neg, pos := eng.Bloom.Counts(); neg+pos > 0 {
		m.Counter("coop.host.bloom.negative").Add(neg)
		m.Counter("coop.host.bloom.positive").Add(pos)
	}
}

// instrument attaches per-run Bloom-filter stats to a host engine when a
// metrics registry is bound.
func (x *Executor) instrument(eng *exec.Engine) *exec.Engine {
	if x.Metrics != nil {
		eng.Bloom = &lsm.BloomStats{}
	}
	return eng
}

// runHostOnly executes the whole plan on the host stack. All table data
// crosses the interconnect as part of the host flash path.
func (x *Executor) runHostOnly(p *exec.Plan, s Strategy, rates hw.Rates, tr *obs.Trace) (*Report, error) {
	tl := vclock.NewTimeline("host")
	eng := x.instrument(&exec.Engine{Cat: x.Cat, TL: tl, R: rates, Cache: x.hostCache(), BatchSize: x.BatchSize})
	root := tr.Start(tl, "query:"+p.Query.Name).Attr("strategy", s.String())
	res, err := eng.RunPlan(p)
	root.End()
	if err != nil {
		return nil, err
	}
	x.recordStorage(eng)
	return &Report{
		Query:       p.Query.Name,
		Strategy:    s,
		Result:      res,
		Elapsed:     vclock.Duration(tl.Now()),
		HostAccount: tl.Account(),
	}, nil
}

// snapshotFor captures the shared state for the device-read tables.
func (x *Executor) snapshotFor(p *exec.Plan, split int) (*kv.Snapshot, error) {
	var names []string
	add := func(ref exec.AccessPath) {
		names = append(names, "tbl."+ref.Ref.Table)
	}
	add(p.Driving)
	limit := len(p.Steps)
	if split >= 0 {
		limit = split
	}
	for i := 0; i < limit; i++ {
		add(p.Steps[i].Right)
	}
	return x.DB.TakeSnapshot(names)
}

// chunkCount sizes the driving-table partitioning so a chunk's result set
// lands near the shared-buffer slot size.
func (x *Executor) chunkCount(p *exec.Plan) int {
	if x.Chunks > 0 {
		return x.Chunks
	}
	t, err := x.Cat.Table(p.Driving.Ref.Table)
	if err != nil {
		return 8
	}
	st := t.CollectStats()
	bytes := float64(st.TotalBytes())
	c := int(bytes / float64(4*x.Model.SharedBufferSlot))
	if c < 4 {
		c = 4
	}
	if c > 64 {
		c = 64
	}
	return c
}

// withRecovery drives a device strategy to completion on hostTL. attempt runs
// one full device-side execution and returns the device timeline's position
// at exit; injected faults (crash, corruption, flash read errors) are retried
// with capped exponential backoff after the host has waited out the failed
// attempt, and once maxRetries is exhausted the original plan re-executes
// host-only on the same timeline. Every failed attempt's virtual time is
// therefore folded into the final report's Elapsed. Non-injected errors
// (planning bugs, validation) propagate immediately.
//
// Two more guards cut the retry loop short: a per-run deadline (a retry whose
// backoff alone pushes past the remaining virtual budget is pointless — the
// host fallback is the only completion left worth buying) and the shared
// retry budget (a drained bucket means the system is already saturated with
// recovery work, so this run must not add more device attempts).
func (x *Executor) withRecovery(orig *exec.Plan, s Strategy, tr *obs.Trace,
	hostTL *vclock.Timeline, deadline vclock.Duration, attempt func() (*Report, vclock.Time, error)) (*Report, error) {

	retries := 0
	for {
		rep, devNow, err := attempt()
		if err == nil {
			rep.FaultRetries = retries
			return rep, nil
		}
		if !fault.Injected(err) {
			return nil, err
		}
		if retries >= x.maxRetries() {
			return x.fallbackHost(orig, s, tr, hostTL, devNow, retries, err)
		}
		if deadline > 0 && vclock.Duration(devNow)+retryBackoff(retries+1) >= deadline {
			if m := x.Metrics; m != nil {
				m.Counter("coop.deadline.fallback").Inc()
			}
			return x.fallbackHost(orig, s, tr, hostTL, devNow, retries, err)
		}
		if !x.Budget.Allow() {
			if m := x.Metrics; m != nil {
				m.Counter("coop.retry.budget_exhausted").Inc()
			}
			return x.fallbackHost(orig, s, tr, hostTL, devNow, retries, err)
		}
		retries++
		// The host discovers the failure no earlier than the device reached
		// it, then backs off before reissuing the command.
		rsp := tr.Start(hostTL, "coop.retry").AttrInt("attempt", int64(retries)).
			Attr("cause", err.Error())
		hostTL.WaitUntil(devNow, hw.CatFaultWait)
		hostTL.Charge(hw.CatBackoff, retryBackoff(retries))
		rsp.End()
		if m := x.Metrics; m != nil {
			m.Counter("coop.retry").Inc()
		}
	}
}

// retryBackoff is the capped exponential backoff before retry n (1-based):
// 100µs doubling per attempt, capped at 5ms.
func retryBackoff(n int) vclock.Duration {
	d := vclock.Duration(100e3)
	for i := 1; i < n; i++ {
		d *= 2
	}
	if d > vclock.Duration(5e6) {
		d = vclock.Duration(5e6)
	}
	return d
}

// fallbackHost re-executes the original plan host-only after the device was
// given up on. It runs on the same host timeline, so the report's Elapsed
// includes everything wasted on the failed device attempts.
func (x *Executor) fallbackHost(p *exec.Plan, s Strategy, tr *obs.Trace,
	hostTL *vclock.Timeline, devNow vclock.Time, retries int, cause error) (*Report, error) {

	if m := x.Metrics; m != nil {
		m.Counter("coop.fallback.host").Inc()
	}
	fsp := tr.Start(hostTL, "coop.fallback.host").Attr("cause", cause.Error())
	hostTL.WaitUntil(devNow, hw.CatFaultWait)
	eng := x.instrument(&exec.Engine{Cat: x.Cat, TL: hostTL, R: hw.HostRates(x.Model), Cache: x.hostCache(), BatchSize: x.BatchSize})
	res, err := eng.RunPlan(p)
	fsp.End()
	if err != nil {
		return nil, err
	}
	x.recordStorage(eng)
	return &Report{
		Query:        p.Query.Name,
		Strategy:     s,
		Result:       res,
		Elapsed:      vclock.Duration(hostTL.Now()),
		HostAccount:  hostTL.Account(),
		FaultRetries: retries,
		FellBack:     true,
	}, nil
}

// runNDPOnly offloads the complete plan including grouping/aggregation; the
// host only issues the command and fetches the final result.
func (x *Executor) runNDPOnly(p *exec.Plan, s Strategy, tr *obs.Trace, deadline vclock.Duration) (*Report, error) {
	snap, err := x.snapshotFor(p, -1) // full plan: all tables device-read
	if err != nil {
		return nil, err
	}
	cmd := &device.Command{Plan: p, SplitAfter: len(p.Steps), Snapshot: snap, Chunks: 1}
	mp := device.PlanMemory(x.Model, p, cmd.SplitAfter)
	inj := x.injectorFor(p, s)
	hostTL := vclock.NewTimeline("host")
	hostR := hw.HostRates(x.Model)

	root := tr.Start(hostTL, "query:"+p.Query.Name).Attr("strategy", s.String())
	defer root.End()

	return x.withRecovery(p, s, tr, hostTL, deadline, func() (*Report, vclock.Time, error) {
		dev := device.New(x.Model, x.Cat)
		dev.BatchSize = x.BatchSize
		dev.Trace = tr
		dev.Metrics = x.Metrics
		dev.Faults = inj
		if err := dev.Validate(cmd); err != nil {
			return nil, dev.TL.Now(), err
		}
		eng := dev.Engine(mp)
		x.applyCacheFormat(eng)
		eng.Views = snapshotViews(snap)

		devRoot := tr.Start(dev.TL, "device:"+p.Query.Name).Attr("strategy", s.String())

		// NDP setup: the command (plan, placements, shared state) crosses PCIe.
		sp := tr.Start(hostTL, "ndp.setup").AttrInt("cmd.bytes", cmd.Bytes())
		setup := hostR.Interconnect.Transfer(cmd.Bytes(), cmd.Bytes())
		hostTL.Charge(hw.CatNDPSetup, setup)
		sp.End()
		dsp := tr.Start(dev.TL, "device.setup.wait")
		dev.TL.WaitUntil(hostTL.Now(), hw.CatNDPSetup)
		dsp.End()

		dsp = tr.Start(dev.TL, "device.plan")
		res, err := eng.RunPlan(p)
		if err == nil && inj != nil {
			// The final result ships as one batch: give the injector its
			// per-batch shot at stalling or crashing the command.
			ev := inj.BeforeEmit()
			if ev.Stall > 0 {
				dev.TL.Charge(hw.CatFaultStall, ev.Stall)
			}
			if ev.Crash != nil {
				err = fmt.Errorf("device: final result: %w", ev.Crash)
			}
		}
		dsp.End()
		devRoot.End()
		if err != nil {
			return nil, dev.TL.Now(), err
		}
		// Host waits for device completion, then transfers the final result.
		sp = tr.Start(hostTL, "host.wait.device")
		hostTL.WaitUntil(dev.TL.Now(), hw.CatWaitInitial)
		sp.End()
		sp = tr.Start(hostTL, "transfer.result").AttrInt("bytes", res.Bytes)
		hostR.Transfer(hostTL, res.Bytes, x.Model.SharedBufferSlot)
		sp.End()

		return &Report{
			Query:            p.Query.Name,
			Strategy:         s,
			Result:           res,
			Elapsed:          vclock.Duration(hostTL.Now()),
			DeviceElapsed:    vclock.Duration(dev.TL.Now()),
			HostAccount:      hostTL.Account(),
			DeviceAccount:    dev.TL.Account(),
			TransferredBytes: res.Bytes,
			DeviceMemory:     mp,
		}, dev.TL.Now(), nil
	})
}

// runHybrid is the cooperative execution path.
func (x *Executor) runHybrid(orig *exec.Plan, s Strategy, tr *obs.Trace, deadline vclock.Duration) (*Report, error) {
	p := orig
	split := s.Split
	if split == 0 {
		split = -1 // H0
	}
	if split > len(p.Steps) {
		return nil, fmt.Errorf("coop: split H%d exceeds the plan's %d joins", split, len(p.Steps))
	}
	// Join-free (single-table) plans execute as H0: the device scans and
	// filters the base table, ships survivor chunks through the shared
	// buffer, and the host finalizes (projection / aggregation). Interior
	// splits are rejected above since len(p.Steps) == 0.
	if split < 0 {
		// H0 joins device-shipped leaf rows on the host: every step becomes
		// a buffered join over the seeded inner sides; index joins against
		// the base tables would discard the offloaded selections.
		p2 := *p
		p2.Steps = append([]exec.JoinStep(nil), p.Steps...)
		for i := range p2.Steps {
			if p2.Steps[i].Type == exec.BNLI {
				p2.Steps[i].Type = exec.BNL
			}
		}
		p = &p2
	}
	snap, err := x.snapshotFor(p, split)
	if err != nil {
		return nil, err
	}
	mp := device.PlanMemory(x.Model, p, split)
	inj := x.injectorFor(p, s)
	hostTL := vclock.NewTimeline("host")
	hostR := hw.HostRates(x.Model)

	root := tr.Start(hostTL, "query:"+p.Query.Name).Attr("strategy", s.String())
	defer root.End()

	// The fallback re-executes the ORIGINAL plan (with its BNLI index joins
	// intact): the H0 rewrite only makes sense with device-seeded inners.
	return x.withRecovery(orig, s, tr, hostTL, deadline, func() (*Report, vclock.Time, error) {
		dev := device.New(x.Model, x.Cat)
		dev.BatchSize = x.BatchSize
		dev.Trace = tr
		dev.Metrics = x.Metrics
		dev.Faults = inj
		cmd := &device.Command{Plan: p, SplitAfter: split, Snapshot: snap, Chunks: x.chunkCount(p)}
		if err := dev.Validate(cmd); err != nil {
			return nil, dev.TL.Now(), err
		}
		devEng := dev.Engine(mp)
		x.applyCacheFormat(devEng)
		devEng.Views = snapshotViews(snap)

		hostEng := x.instrument(&exec.Engine{Cat: x.Cat, TL: hostTL, R: hostR, Cache: x.hostCache(), BatchSize: x.BatchSize})

		// The two engines share one pipeline: the device owns the inner state
		// of its join steps, the host owns the rest. Each attempt starts from
		// a fresh pipeline (and device), so a retried command replays its
		// builds and scans instead of resuming half-poisoned state.
		pl, err := hostEng.StartPipeline(p)
		if err != nil {
			return nil, dev.TL.Now(), err
		}

		devRoot := tr.Start(dev.TL, "device:"+p.Query.Name).Attr("strategy", s.String()).
			AttrInt("chunks", int64(cmd.Chunks))

		// (A) NDP invocation.
		sp := tr.Start(hostTL, "ndp.setup").AttrInt("cmd.bytes", cmd.Bytes())
		setup := hostR.Interconnect.Transfer(cmd.Bytes(), cmd.Bytes())
		hostTL.Charge(hw.CatNDPSetup, setup)
		sp.End()
		dsp := tr.Start(dev.TL, "device.setup.wait")
		dev.TL.WaitUntil(hostTL.Now(), hw.CatNDPSetup)
		dsp.End()

		// Host prep overlaps the device's initial execution: build the hash
		// tables of the host-side buffered joins now.
		hostFrom := 0
		if split > 0 {
			hostFrom = split
		}
		if split > 0 { // Hk: host joins steps[split:]; inners are host-scanned.
			for si := hostFrom; si < len(p.Steps); si++ {
				if p.Steps[si].Type != exec.BNLI {
					bsp := tr.Start(hostTL, "host.build.inner").
						Attr("alias", p.Steps[si].Right.Ref.Alias).AttrInt("step", int64(si))
					_, err := hostEng.BuildInner(pl, si)
					bsp.End()
					if err != nil {
						// Close the device root span before abandoning the
						// attempt: leaving it open corrupts the per-timeline
						// span stack for the fault-injection retry that
						// replays this command on the same trace.
						devRoot.End()
						return nil, dev.TL.Now(), err
					}
				}
			}
		}

		report := &Report{Query: p.Query.Name, Strategy: s, DeviceMemory: mp}
		var tuples []exec.Tuple
		var fetchDone []vclock.Time
		first := true

		emit := func(b device.Batch) error {
			cat := hw.CatWaitFetch
			spName := "host.wait.fetch"
			if first {
				cat = hw.CatWaitInitial
				spName = "host.wait.initial"
			}
			idx := int64(report.Batches)
			wsp := tr.Start(hostTL, spName).AttrInt("batch", idx)
			stall := hostTL.WaitUntil(b.Ready, cat)
			wsp.Attr("stall", stall.String()).End()
			first = false
			tsp := tr.Start(hostTL, "host.fetch").AttrInt("batch", idx).AttrInt("bytes", b.Bytes)
			hostR.Transfer(hostTL, num.MaxI64(b.Bytes, 64), x.Model.SharedBufferSlot)
			tsp.End()
			fetchDone = append(fetchDone, hostTL.Now())
			report.TransferredBytes += b.Bytes
			report.Batches++
			if b.Sum != 0 {
				// Sealed batch (fault injection active): corrupt in transit
				// per the plan, then verify the checksum host-side.
				if inj.TransferCorrupt() {
					b.CorruptInTransfer()
				}
				if verr := b.Verify(); verr != nil {
					return fmt.Errorf("batch %d: %w", idx, verr)
				}
			}

			ev := BatchEvent{
				Idx:         report.Batches - 1,
				Bytes:       b.Bytes,
				DeviceReady: b.Ready,
				HostFetched: hostTL.Now(),
			}

			psp := tr.Start(hostTL, "host.process.batch").AttrInt("batch", idx)
			if b.LeafAlias != "" {
				// H0 leaf batch: the column batch seeds the host join's inner
				// side directly.
				psp.Attr("leaf", b.LeafAlias)
				for si, st := range p.Steps {
					if st.Right.Ref.Alias == b.LeafAlias {
						if seedErr := hostEng.SeedInnerCols(pl, si, b.Cols); seedErr != nil {
							psp.End()
							return seedErr
						}
						break
					}
				}
				ev.Rows = b.Cols.Len()
			} else {
				// Driving-chunk batch: run it through the host PQEP.
				batch := b.Tuples
				ev.Rows = len(batch)
				for si := hostFrom; si < len(p.Steps); si++ {
					jsp := tr.Start(hostTL, "host.join").AttrInt("step", int64(si)).
						AttrInt("in.rows", int64(len(batch)))
					var jerr error
					batch, jerr = hostEng.JoinStep(pl, si, batch)
					jsp.AttrInt("out.rows", int64(len(batch))).End()
					if jerr != nil {
						psp.End()
						return jerr
					}
				}
				tuples = append(tuples, batch...)
			}
			psp.AttrInt("rows", int64(ev.Rows)).End()
			if m := x.Metrics; m != nil {
				m.Histogram("coop.batch.rows", obs.DefaultSizeBuckets).Observe(float64(ev.Rows))
				m.Histogram("coop.batch.bytes", obs.DefaultSizeBuckets).Observe(float64(b.Bytes))
			}
			ev.HostDone = hostTL.Now()
			report.Timeline = append(report.Timeline, ev)
			return nil
		}
		waitSlot := func(j int) (vclock.Time, bool) {
			if j < len(fetchDone) {
				return fetchDone[j], true
			}
			return 0, false
		}

		runErr := dev.Run(cmd, pl, devEng, emit, waitSlot)
		devRoot.End()
		if runErr != nil {
			return nil, dev.TL.Now(), runErr
		}

		fsp := tr.Start(hostTL, "host.finalize").AttrInt("rows", int64(len(tuples)))
		res, err := hostEng.Finalize(pl, tuples)
		fsp.End()
		if err != nil {
			return nil, dev.TL.Now(), err
		}
		x.recordStorage(hostEng)
		report.Result = res
		report.Elapsed = vclock.Duration(hostTL.Now())
		report.DeviceElapsed = vclock.Duration(dev.TL.Now())
		report.HostAccount = hostTL.Account()
		report.DeviceAccount = dev.TL.Account()
		return report, dev.TL.Now(), nil
	})
}

// snapshotViews extracts the frozen per-table views from the shared-state
// snapshot (update-aware NDP): the device engine reads through them, so
// host writes issued after the invocation stay invisible on device.
func snapshotViews(snap *kv.Snapshot) map[string]*lsm.View {
	views := make(map[string]*lsm.View, len(snap.CFs))
	for name, cf := range snap.CFs {
		views[strings.TrimPrefix(name, "tbl.")] = cf.View
	}
	return views
}
