package coop_test

import (
	"sync"
	"testing"

	"hybridndp/internal/coop"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/vclock"
)

var (
	dsOnce sync.Once
	ds     *job.Dataset
	dsErr  error
)

func env(t *testing.T) (*optimizer.Optimizer, *coop.Executor) {
	t.Helper()
	dsOnce.Do(func() { ds, dsErr = job.Load(0.01, hw.Cosmos()) })
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return optimizer.New(ds.Cat, ds.Model), coop.NewExecutor(ds.Cat, ds.DB, ds.Model)
}

func TestStrategyStrings(t *testing.T) {
	cases := map[string]coop.Strategy{
		"block":  {Kind: coop.BlockOnly},
		"native": {Kind: coop.HostNative},
		"ndp":    {Kind: coop.NDPOnly},
		"H0":     {Kind: coop.Hybrid, Split: -1},
		"H3":     {Kind: coop.Hybrid, Split: 3},
	}
	for want, s := range cases {
		if s.String() != want {
			t.Errorf("%v renders %q, want %q", s, s.String(), want)
		}
	}
}

func TestEveryStrategySameResultRows(t *testing.T) {
	opt, ex := env(t)
	for _, name := range []string{"1a", "4b", "10c", "32b"} {
		q := job.QueryByName(name)
		p, err := opt.BuildPlan(q)
		if err != nil {
			t.Fatal(err)
		}
		strategies := []coop.Strategy{
			{Kind: coop.BlockOnly}, {Kind: coop.HostNative}, {Kind: coop.NDPOnly},
			{Kind: coop.Hybrid, Split: -1},
		}
		for k := 1; k <= len(p.Steps); k++ {
			strategies = append(strategies, coop.Strategy{Kind: coop.Hybrid, Split: k})
		}
		var ref int64 = -1
		for _, st := range strategies {
			rep, err := ex.Run(p, st)
			if err != nil {
				t.Fatalf("%s %v: %v", name, st, err)
			}
			if ref < 0 {
				ref = rep.Result.RowCount
			} else if rep.Result.RowCount != ref {
				t.Fatalf("%s %v: %d rows, reference %d", name, st, rep.Result.RowCount, ref)
			}
		}
	}
}

func TestBlockStackSlowerThanNative(t *testing.T) {
	opt, ex := env(t)
	p, err := opt.BuildPlan(job.QueryByName("8c"))
	if err != nil {
		t.Fatal(err)
	}
	blk, err := ex.Run(p, coop.Strategy{Kind: coop.BlockOnly})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := ex.Run(p, coop.Strategy{Kind: coop.HostNative})
	if err != nil {
		t.Fatal(err)
	}
	if blk.Elapsed <= nat.Elapsed {
		t.Fatalf("BLK (%v) must be slower than native (%v)", blk.Elapsed, nat.Elapsed)
	}
}

func TestHybridTimelineMonotone(t *testing.T) {
	opt, ex := env(t)
	p, err := opt.BuildPlan(job.QueryByName("8c"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Batches == 0 || len(rep.Timeline) != rep.Batches {
		t.Fatalf("batches=%d timeline=%d", rep.Batches, len(rep.Timeline))
	}
	var prevFetch vclock.Time
	for _, ev := range rep.Timeline {
		if ev.HostFetched < ev.DeviceReady {
			t.Fatal("host fetched a batch before the device produced it")
		}
		if ev.HostDone < ev.HostFetched {
			t.Fatal("host finished a batch before fetching it")
		}
		if ev.HostFetched < prevFetch {
			t.Fatal("fetches out of order")
		}
		prevFetch = ev.HostFetched
	}
	if vclock.Time(rep.Elapsed) < rep.Timeline[len(rep.Timeline)-1].HostDone {
		t.Fatal("elapsed ends before the last batch completes")
	}
}

func TestHybridRejectsBadSplits(t *testing.T) {
	opt, ex := env(t)
	p, err := opt.BuildPlan(job.QueryByName("1a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: len(p.Steps) + 5}); err == nil {
		t.Fatal("oversized split must fail")
	}
	single, err := opt.BuildPlan(job.Listing2(1000, false))
	if err != nil {
		t.Fatal(err)
	}
	single.Steps = nil // degenerate: no joins
	if _, err := ex.Run(single, coop.Strategy{Kind: coop.Hybrid, Split: 1}); err == nil {
		t.Fatal("hybrid without joins must fail")
	}
}

func TestNDPOnlyTransfersOnlyResults(t *testing.T) {
	opt, ex := env(t)
	p, err := opt.BuildPlan(job.QueryByName("1a"))
	if err != nil {
		t.Fatal(err)
	}
	ndp, err := ex.Run(p, coop.Strategy{Kind: coop.NDPOnly})
	if err != nil {
		t.Fatal(err)
	}
	h0, err := ex.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ndp.TransferredBytes >= h0.TransferredBytes {
		t.Fatalf("full NDP ships %d B, H0 ships %d B — NDP must ship less (final result only)",
			ndp.TransferredBytes, h0.TransferredBytes)
	}
	if ndp.DeviceAccount == nil || ndp.HostAccount[hw.CatWaitInitial] <= 0 {
		t.Fatal("NDP-only run missing device account or host wait")
	}
}

func TestHybridAccountsCoherent(t *testing.T) {
	opt, ex := env(t)
	p, err := opt.BuildPlan(job.QueryByName("17b"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: -1})
	if err != nil {
		t.Fatal(err)
	}
	var hostSum vclock.Duration
	for _, d := range rep.HostAccount {
		hostSum += d
	}
	// Float summation order differs between the timeline and this loop.
	if diff := float64(hostSum - rep.Elapsed); diff > 1 || diff < -1 {
		t.Fatalf("host account sums to %v but elapsed is %v", hostSum, rep.Elapsed)
	}
	if rep.WaitInitial() < 0 || rep.WaitFetch() < 0 || rep.DeviceWaitSlots() < 0 {
		t.Fatal("negative waits")
	}
	if rep.DeviceMemory.Selections == 0 {
		t.Fatal("memory plan missing")
	}
}

func TestSingleTableNDPOnly(t *testing.T) {
	// A single-table query (no joins) still runs under full NDP: the device
	// scans, filters and aggregates, and only the final result crosses.
	opt, ex := env(t)
	q := job.Listing2(int32(ds.Counts["movie_link"]), false)
	q.Tables = q.Tables[:1] // movie_keyword only
	q.Joins = nil
	q.Output = q.Output[:1]
	delete(q.Filters, "ml")
	q.Name = "single"
	p, err := opt.BuildPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	host, err := ex.Run(p, coop.Strategy{Kind: coop.HostNative})
	if err != nil {
		t.Fatal(err)
	}
	ndp, err := ex.Run(p, coop.Strategy{Kind: coop.NDPOnly})
	if err != nil {
		t.Fatal(err)
	}
	if host.Result.RowCount != ndp.Result.RowCount {
		t.Fatalf("single-table rows differ: %d vs %d", host.Result.RowCount, ndp.Result.RowCount)
	}
	if ndp.TransferredBytes <= 0 {
		t.Fatal("NDP-only must ship the result")
	}
}

func TestHybridH0SeedsEveryInner(t *testing.T) {
	// H0's leaf offloading must seed every join's inner side: the host must
	// not rescan any table (its flash account stays empty apart from the
	// driving-chunk processing it receives pre-filtered).
	opt, ex := env(t)
	p, err := opt.BuildPlan(job.QueryByName("1a"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ex.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.HostAccount[hw.CatFlashLoad]; got > 0 {
		t.Fatalf("H0 host still read %v of flash — a leaf was not seeded", got)
	}
	leaves := 0
	for _, ev := range rep.Timeline {
		_ = ev
		leaves++
	}
	if rep.Batches < len(p.Steps)+1 {
		t.Fatalf("H0 shipped %d batches for %d inners + driving chunks", rep.Batches, len(p.Steps))
	}
}

func TestCacheFormatOverride(t *testing.T) {
	opt, ex := env(t)
	p, err := opt.BuildPlan(job.QueryByName("8c"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { ex.CacheFormat = coop.CacheAuto }()
	ex.CacheFormat = coop.CacheRow
	row, err := ex.Run(p, coop.Strategy{Kind: coop.NDPOnly})
	if err != nil {
		t.Fatal(err)
	}
	ex.CacheFormat = coop.CachePointer
	ptr, err := ex.Run(p, coop.Strategy{Kind: coop.NDPOnly})
	if err != nil {
		t.Fatal(err)
	}
	if row.Result.RowCount != ptr.Result.RowCount {
		t.Fatal("cache format changed the result")
	}
	if ptr.DeviceAccount[hw.CatBufferManage] <= row.DeviceAccount[hw.CatBufferManage] {
		t.Fatal("pointer format must pay more buffer management (dereferencing)")
	}
}

func TestMultiDeviceMatchesSingleDevice(t *testing.T) {
	opt, ex := env(t)
	for _, name := range []string{"1a", "17b"} {
		p, err := opt.BuildPlan(job.QueryByName(name))
		if err != nil {
			t.Fatal(err)
		}
		for _, split := range []int{-1, 1} {
			single, err := ex.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: split})
			if err != nil {
				t.Fatalf("%s H%d single: %v", name, split, err)
			}
			for _, n := range []int{1, 2, 4} {
				multi, err := ex.RunHybridMulti(p, coop.Strategy{Kind: coop.Hybrid, Split: split}, n)
				if err != nil {
					t.Fatalf("%s H%d x%d: %v", name, split, n, err)
				}
				if multi.Result.RowCount != single.Result.RowCount {
					t.Fatalf("%s H%d x%d: %d rows, single-device %d",
						name, split, n, multi.Result.RowCount, single.Result.RowCount)
				}
				if multi.Devices != n || len(multi.DeviceElapsed) != n {
					t.Fatalf("%s: device accounting wrong: %d/%d", name, multi.Devices, len(multi.DeviceElapsed))
				}
			}
		}
	}
}

func TestMultiDevicePartitionsShrinkPerDeviceWork(t *testing.T) {
	opt, ex := env(t)
	p, err := opt.BuildPlan(job.QueryByName("17b"))
	if err != nil {
		t.Fatal(err)
	}
	one, err := ex.RunHybridMulti(p, coop.Strategy{Kind: coop.Hybrid, Split: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := ex.RunHybridMulti(p, coop.Strategy{Kind: coop.Hybrid, Split: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var maxFour vclock.Duration
	for _, d := range four.DeviceElapsed {
		if d > maxFour {
			maxFour = d
		}
	}
	if maxFour >= one.DeviceElapsed[0] {
		t.Fatalf("slowest of 4 devices (%v) should be under the single device (%v)",
			maxFour, one.DeviceElapsed[0])
	}
}

func TestMultiDeviceRejectsNonHybrid(t *testing.T) {
	opt, ex := env(t)
	p, err := opt.BuildPlan(job.QueryByName("1a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.RunHybridMulti(p, coop.Strategy{Kind: coop.NDPOnly}, 2); err == nil {
		t.Fatal("non-hybrid multi-device run must fail")
	}
	if _, err := ex.RunHybridMulti(p, coop.Strategy{Kind: coop.Hybrid, Split: 99}, 2); err == nil {
		t.Fatal("oversized split must fail")
	}
}

func TestChunksOverride(t *testing.T) {
	opt, ex := env(t)
	p, err := opt.BuildPlan(job.QueryByName("17b"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { ex.Chunks = 0 }()
	ex.Chunks = 2
	few, err := ex.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: -1})
	if err != nil {
		t.Fatal(err)
	}
	ex.Chunks = 32
	many, err := ex.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: -1})
	if err != nil {
		t.Fatal(err)
	}
	if many.Result.RowCount != few.Result.RowCount {
		t.Fatal("chunking changed the result")
	}
}

// TestMultiReportAggregationInvariants pins the aggregation contract of
// MultiReport across fleet sizes: the per-device vectors match the fleet
// size, no device's busy time exceeds the end-to-end elapsed time (devices
// run within the cooperative window), and the union of partitioned results
// equals the single-device result.
func TestMultiReportAggregationInvariants(t *testing.T) {
	opt, ex := env(t)
	p, err := opt.BuildPlan(job.QueryByName("17b"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ex.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 8} {
		mr, err := ex.RunHybridMulti(p, coop.Strategy{Kind: coop.Hybrid, Split: 1}, n)
		if err != nil {
			t.Fatalf("x%d: %v", n, err)
		}
		if mr.Devices != n {
			t.Fatalf("x%d: Devices=%d", n, mr.Devices)
		}
		if len(mr.DeviceElapsed) != n || len(mr.DeviceAccounts) != n {
			t.Fatalf("x%d: per-device vectors sized %d/%d",
				n, len(mr.DeviceElapsed), len(mr.DeviceAccounts))
		}
		for d, el := range mr.DeviceElapsed {
			if el <= 0 {
				t.Fatalf("x%d: device %d reports no busy time", n, d)
			}
			if el > mr.Elapsed {
				t.Fatalf("x%d: device %d busy %v exceeds elapsed %v", n, d, el, mr.Elapsed)
			}
			if len(mr.DeviceAccounts[d]) == 0 {
				t.Fatalf("x%d: device %d has an empty account", n, d)
			}
		}
		if mr.Result.RowCount != ref.Result.RowCount {
			t.Fatalf("x%d: %d rows, single-device %d", n, mr.Result.RowCount, ref.Result.RowCount)
		}
		if mr.Batches < n {
			t.Fatalf("x%d: only %d batches; every device must ship at least one", n, mr.Batches)
		}
		if mr.TransferredBytes <= 0 {
			t.Fatalf("x%d: no bytes transferred", n)
		}
	}
}
