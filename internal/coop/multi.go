package coop

import (
	"fmt"
	"sort"

	"hybridndp/internal/device"
	"hybridndp/internal/exec"
	"hybridndp/internal/hw"
	"hybridndp/internal/num"
	"hybridndp/internal/vclock"
)

// MultiReport extends Report with per-device information for multi-device
// cooperative execution.
type MultiReport struct {
	Report
	Devices        int
	DeviceElapsed  []vclock.Duration // per-device busy time
	DeviceAccounts []map[string]vclock.Duration
}

// RunHybridMulti executes a hybrid split across several simulated smart
// storage devices (paper §4 opens with "the cooperative execution model and
// the handling of multiple devices with their own PQEP"). The driving
// table's key space is partitioned across the devices by primary-key
// quantiles; every device receives its own NDP command for the same
// device-side PQEP over its partition, produces intermediate result sets
// independently, and the host consumes the union in device-completion order.
//
// Simplification relative to the single-device path: per-device shared-buffer
// back-pressure is not modelled — with several producers the host is the
// bottleneck and devices run freely into their slots.
func (x *Executor) RunHybridMulti(p *exec.Plan, s Strategy, devices int) (*MultiReport, error) {
	if devices < 1 {
		devices = 1
	}
	if s.Kind != Hybrid {
		return nil, fmt.Errorf("coop: multi-device execution requires a hybrid strategy, got %v", s.Kind)
	}
	split := s.Split
	if split == 0 {
		split = -1
	}
	if split > len(p.Steps) {
		return nil, fmt.Errorf("coop: invalid split H%d for a %d-join plan", split, len(p.Steps))
	}
	if split < 0 {
		// H0 with its BNLI→BNL coercion, as in the single-device path.
		p2 := *p
		p2.Steps = append([]exec.JoinStep(nil), p.Steps...)
		for i := range p2.Steps {
			if p2.Steps[i].Type == exec.BNLI {
				p2.Steps[i].Type = exec.BNL
			}
		}
		p = &p2
	}
	snap, err := x.snapshotFor(p, split)
	if err != nil {
		return nil, err
	}

	hostTL := vclock.NewTimeline("host")
	hostR := hw.HostRates(x.Model)
	hostEng := &exec.Engine{Cat: x.Cat, TL: hostTL, R: hostR, Cache: x.hostCache(), BatchSize: x.BatchSize}
	pl, err := hostEng.StartPipeline(p)
	if err != nil {
		return nil, err
	}

	// Partition the driving table across devices by PK quantiles.
	bounds, err := x.drivingPartitions(p, devices)
	if err != nil {
		return nil, err
	}

	mr := &MultiReport{Devices: devices}
	mr.Query = p.Query.Name
	mr.Strategy = s
	mr.DeviceMemory = device.PlanMemory(x.Model, p, split)

	type timedBatch struct {
		b   device.Batch
		dev int
	}
	var all []timedBatch

	// (A) One NDP invocation per device; the commands go out back to back.
	hostFrom := 0
	if split > 0 {
		hostFrom = split
	}
	for d := 0; d < devices; d++ {
		dev := device.New(x.Model, x.Cat)
		dev.BatchSize = x.BatchSize
		cmd := &device.Command{Plan: p, SplitAfter: split, Snapshot: snap,
			Chunks: x.chunkCount(p)/devices + 1}
		if err := dev.Validate(cmd); err != nil {
			return nil, err
		}
		eng := dev.Engine(mr.DeviceMemory)
		x.applyCacheFormat(eng)
		eng.Views = snapshotViews(snap)
		setup := hostR.Interconnect.Transfer(cmd.Bytes(), cmd.Bytes())
		hostTL.Charge(hw.CatNDPSetup, setup)
		dev.TL.WaitUntil(hostTL.Now(), hw.CatNDPSetup)

		devIdx := d
		lo, hi := bounds[d], bounds[d+1]
		emit := func(b device.Batch) {
			all = append(all, timedBatch{b: b, dev: devIdx})
		}
		if err := x.runDevicePartition(dev, cmd, pl, eng, lo, hi, emit); err != nil {
			return nil, err
		}
		mr.DeviceElapsed = append(mr.DeviceElapsed, vclock.Duration(dev.TL.Now()))
		mr.DeviceAccounts = append(mr.DeviceAccounts, dev.TL.Account())
	}

	// Host prep overlaps the initial device executions.
	if split > 0 {
		for si := hostFrom; si < len(p.Steps); si++ {
			if p.Steps[si].Type != exec.BNLI {
				if _, err := hostEng.BuildInner(pl, si); err != nil {
					return nil, err
				}
			}
		}
	}

	// (B) Consume in device-completion order.
	sort.SliceStable(all, func(i, j int) bool { return all[i].b.Ready < all[j].b.Ready })
	var tuples []exec.Tuple
	first := true
	for _, tb := range all {
		cat := hw.CatWaitFetch
		if first {
			cat = hw.CatWaitInitial
		}
		hostTL.WaitUntil(tb.b.Ready, cat)
		first = false
		hostR.Transfer(hostTL, num.MaxI64(tb.b.Bytes, 64), x.Model.SharedBufferSlot)
		mr.TransferredBytes += tb.b.Bytes
		mr.Batches++
		ev := BatchEvent{
			Idx: mr.Batches - 1, Bytes: tb.b.Bytes,
			DeviceReady: tb.b.Ready, HostFetched: hostTL.Now(),
		}
		if tb.b.LeafAlias != "" {
			for si, st := range p.Steps {
				if st.Right.Ref.Alias == tb.b.LeafAlias {
					// Leaf batches arrive partitioned per device; seeding
					// accumulates across devices via AppendInnerCols.
					if err := hostEng.AppendInnerCols(pl, si, tb.b.Cols); err != nil {
						return nil, err
					}
					break
				}
			}
			ev.Rows = tb.b.Cols.Len()
		} else {
			batch := tb.b.Tuples
			ev.Rows = len(batch)
			for si := hostFrom; si < len(p.Steps); si++ {
				var jerr error
				batch, jerr = hostEng.JoinStep(pl, si, batch)
				if jerr != nil {
					return nil, jerr
				}
			}
			tuples = append(tuples, batch...)
		}
		ev.HostDone = hostTL.Now()
		mr.Timeline = append(mr.Timeline, ev)
	}

	res, err := hostEng.Finalize(pl, tuples)
	if err != nil {
		return nil, err
	}
	mr.Result = res
	mr.Elapsed = vclock.Duration(hostTL.Now())
	mr.HostAccount = hostTL.Account()
	if devices > 0 {
		mr.DeviceAccount = mr.DeviceAccounts[0]
	}
	return mr, nil
}

// drivingPartitions derives devices+1 PK boundaries from the driving table's
// statistics sample (open at both ends).
func (x *Executor) drivingPartitions(p *exec.Plan, devices int) ([]*int32, error) {
	t, err := x.Cat.Table(p.Driving.Ref.Table)
	if err != nil {
		return nil, err
	}
	st := t.CollectStats()
	pks := make([]int32, 0, len(st.Sample))
	for _, r := range st.Sample {
		pks = append(pks, r.PK())
	}
	sort.Slice(pks, func(i, j int) bool { return pks[i] < pks[j] })
	bounds := make([]*int32, 0, devices+1)
	bounds = append(bounds, nil)
	for d := 1; d < devices && len(pks) > devices; d++ {
		q := pks[d*len(pks)/devices]
		if last := bounds[len(bounds)-1]; last == nil || q > *last {
			v := q
			bounds = append(bounds, &v)
		}
	}
	bounds = append(bounds, nil)
	for len(bounds) < devices+1 {
		bounds = append(bounds, nil) // degenerate: fewer distinct quantiles
	}
	return bounds, nil
}

// runDevicePartition runs one device's share: the device-side PQEP restricted
// to the driving-table range [lo, hi). H0 leaf batches for the inner tables
// are emitted only by device 0 — in a real deployment each device holds its
// partition of every table; here the single flash holds everything once.
func (x *Executor) runDevicePartition(dev *device.Device, cmd *device.Command,
	pl *exec.Pipeline, eng *exec.Engine, lo, hi *int32, emit func(device.Batch)) error {
	return dev.RunPartition(cmd, pl, eng, lo, hi, emit)
}
