// Package expr implements the predicate language of the reproduced workload:
// comparisons, BETWEEN, IN, SQL LIKE, IS [NOT] NULL and boolean combinators,
// evaluated over fixed-width records. Predicates report their term count so
// the cost model can price per-record evaluation work (usr_rec × terms).
package expr

import (
	"fmt"
	"strings"

	"hybridndp/internal/table"
)

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Pred is a predicate over a single table's record.
type Pred interface {
	// Eval reports whether the record matches. NULL comparisons are false
	// (SQL three-valued logic collapsed to boolean, sufficient for JOB).
	Eval(r table.Record) bool
	// Terms counts the primitive comparison terms, the cost model's unit.
	Terms() int
	// Columns lists referenced column names.
	Columns() []string
	String() string
}

// Cmp compares a column with a constant.
type Cmp struct {
	Col string
	Op  CmpOp
	Val table.Value
}

// Eval implements Pred.
func (p Cmp) Eval(r table.Record) bool {
	v := r.GetByName(p.Col)
	if v.Null || p.Val.Null {
		return false
	}
	var c int
	switch {
	case v.IsI && p.Val.IsI:
		switch {
		case v.Int < p.Val.Int:
			c = -1
		case v.Int > p.Val.Int:
			c = 1
		}
	case !v.IsI && !p.Val.IsI:
		c = strings.Compare(v.Str, p.Val.Str)
	default:
		return false
	}
	switch p.Op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// Terms implements Pred.
func (p Cmp) Terms() int { return 1 }

// Columns implements Pred.
func (p Cmp) Columns() []string { return []string{p.Col} }

func (p Cmp) String() string { return fmt.Sprintf("%s %s %s", p.Col, p.Op, quote(p.Val)) }

func quote(v table.Value) string {
	if v.Null {
		return "NULL"
	}
	if v.IsI {
		return fmt.Sprint(v.Int)
	}
	return "'" + v.Str + "'"
}

// Between checks lo ≤ col ≤ hi (both integer bounds).
type Between struct {
	Col    string
	Lo, Hi int32
}

// Eval implements Pred.
func (p Between) Eval(r table.Record) bool {
	v := r.GetByName(p.Col)
	return !v.Null && v.IsI && v.Int >= p.Lo && v.Int <= p.Hi
}

// Terms implements Pred.
func (p Between) Terms() int { return 2 }

// Columns implements Pred.
func (p Between) Columns() []string { return []string{p.Col} }

func (p Between) String() string { return fmt.Sprintf("%s BETWEEN %d AND %d", p.Col, p.Lo, p.Hi) }

// In checks membership in a constant list.
type In struct {
	Col  string
	Vals []table.Value
}

// Eval implements Pred.
func (p In) Eval(r table.Record) bool {
	v := r.GetByName(p.Col)
	if v.Null {
		return false
	}
	for _, c := range p.Vals {
		if v.IsI == c.IsI && !c.Null {
			if v.IsI && v.Int == c.Int {
				return true
			}
			if !v.IsI && v.Str == c.Str {
				return true
			}
		}
	}
	return false
}

// Terms implements Pred.
func (p In) Terms() int { return len(p.Vals) }

// Columns implements Pred.
func (p In) Columns() []string { return []string{p.Col} }

func (p In) String() string {
	parts := make([]string, len(p.Vals))
	for i, v := range p.Vals {
		parts[i] = quote(v)
	}
	return fmt.Sprintf("%s IN (%s)", p.Col, strings.Join(parts, ", "))
}

// Like implements SQL LIKE with % and _ wildcards; Not negates it.
type Like struct {
	Col     string
	Pattern string
	Not     bool
}

// Eval implements Pred.
func (p Like) Eval(r table.Record) bool {
	v := r.GetByName(p.Col)
	if v.Null || v.IsI {
		return false
	}
	m := likeMatch(p.Pattern, v.Str)
	if p.Not {
		return !m
	}
	return m
}

// Terms implements Pred.
func (p Like) Terms() int { return 2 } // pattern matching is pricier than a compare

// Columns implements Pred.
func (p Like) Columns() []string { return []string{p.Col} }

func (p Like) String() string {
	op := "LIKE"
	if p.Not {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s '%s'", p.Col, op, p.Pattern)
}

// likeMatch matches SQL LIKE patterns with a two-pointer greedy algorithm.
func likeMatch(pattern, s string) bool {
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// IsNull checks col IS NULL (or IS NOT NULL with Not).
type IsNull struct {
	Col string
	Not bool
}

// Eval implements Pred.
func (p IsNull) Eval(r table.Record) bool {
	null := r.GetByName(p.Col).Null
	if p.Not {
		return !null
	}
	return null
}

// Terms implements Pred.
func (p IsNull) Terms() int { return 1 }

// Columns implements Pred.
func (p IsNull) Columns() []string { return []string{p.Col} }

func (p IsNull) String() string {
	if p.Not {
		return p.Col + " IS NOT NULL"
	}
	return p.Col + " IS NULL"
}

// And is a conjunction.
type And struct{ Preds []Pred }

// Eval implements Pred.
func (p And) Eval(r table.Record) bool {
	for _, q := range p.Preds {
		if !q.Eval(r) {
			return false
		}
	}
	return true
}

// Terms implements Pred.
func (p And) Terms() int { return sumTerms(p.Preds) }

// Columns implements Pred.
func (p And) Columns() []string { return allColumns(p.Preds) }

func (p And) String() string { return joinPreds(p.Preds, " AND ") }

// Or is a disjunction.
type Or struct{ Preds []Pred }

// Eval implements Pred.
func (p Or) Eval(r table.Record) bool {
	for _, q := range p.Preds {
		if q.Eval(r) {
			return true
		}
	}
	return false
}

// Terms implements Pred.
func (p Or) Terms() int { return sumTerms(p.Preds) }

// Columns implements Pred.
func (p Or) Columns() []string { return allColumns(p.Preds) }

func (p Or) String() string { return "(" + joinPreds(p.Preds, " OR ") + ")" }

// Not negates a predicate.
type Not struct{ Pred Pred }

// Eval implements Pred.
func (p Not) Eval(r table.Record) bool { return !p.Pred.Eval(r) }

// Terms implements Pred.
func (p Not) Terms() int { return p.Pred.Terms() }

// Columns implements Pred.
func (p Not) Columns() []string { return p.Pred.Columns() }

func (p Not) String() string { return "NOT (" + p.Pred.String() + ")" }

func sumTerms(preds []Pred) int {
	n := 0
	for _, p := range preds {
		n += p.Terms()
	}
	return n
}

func allColumns(preds []Pred) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range preds {
		for _, c := range p.Columns() {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

func joinPreds(preds []Pred, sep string) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, sep)
}

// EqCol extracts the constant of a `col = const` shaped predicate within a
// conjunction, used for index-access-path selection.
func EqCol(p Pred, col string) (table.Value, bool) {
	switch q := p.(type) {
	case Cmp:
		if q.Op == Eq && q.Col == col {
			return q.Val, true
		}
	case And:
		for _, sub := range q.Preds {
			if v, ok := EqCol(sub, col); ok {
				return v, true
			}
		}
	}
	return table.Value{}, false
}
