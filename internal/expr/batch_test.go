package expr

import (
	"math/rand"
	"testing"

	"hybridndp/internal/table"
)

func batchTestSchema(t *testing.T) *table.Schema {
	t.Helper()
	s, err := table.NewSchema("t", []table.Column{
		{Name: "id", Type: table.Int32, Size: 4},
		{Name: "n", Type: table.Int32, Size: 4, Nullable: true},
		{Name: "name", Type: table.Char, Size: 8, Nullable: true},
		{Name: "code", Type: table.Char, Size: 4, Nullable: true},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// batchTestRows builds a deterministic mix of rows covering NULLs, empty
// strings, padded strings and boundary integers.
func batchTestRows(t *testing.T, s *table.Schema) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	names := []string{"", "a", "ab", "abc", "abcdefgh", "zz", "Ab", "a%b", "a_b"}
	codes := []string{"", "x", "xy", "xyz", "zzzz"}
	var rows [][]byte
	for i := 0; i < 500; i++ {
		vals := []table.Value{
			table.IntVal(int32(i - 250)),
			table.IntVal(int32(rng.Intn(20) - 10)),
			table.StrVal(names[rng.Intn(len(names))]),
			table.StrVal(codes[rng.Intn(len(codes))]),
		}
		if rng.Intn(4) == 0 {
			vals[1] = table.NullVal()
		}
		if rng.Intn(4) == 0 {
			vals[2] = table.NullVal()
		}
		if rng.Intn(5) == 0 {
			vals[3] = table.NullVal()
		}
		row, err := s.EncodeRow(vals)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	return rows
}

// batchTestPreds enumerates predicate shapes including every edge case the
// compiler folds: NULL constants, type mismatches, unknown columns, NOT LIKE,
// IS [NOT] NULL on unknown columns, nested combinators.
func batchTestPreds() []Pred {
	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	var preds []Pred
	for _, op := range ops {
		preds = append(preds,
			Cmp{Col: "n", Op: op, Val: table.IntVal(3)},
			Cmp{Col: "name", Op: op, Val: table.StrVal("ab")},
			Cmp{Col: "name", Op: op, Val: table.StrVal("")},
		)
	}
	preds = append(preds,
		Cmp{Col: "n", Op: Eq, Val: table.NullVal()},       // NULL const
		Cmp{Col: "n", Op: Eq, Val: table.StrVal("3")},     // type mismatch
		Cmp{Col: "name", Op: Eq, Val: table.IntVal(3)},    // type mismatch
		Cmp{Col: "missing", Op: Eq, Val: table.IntVal(1)}, // unknown column
		Between{Col: "n", Lo: -3, Hi: 4},
		Between{Col: "n", Lo: 4, Hi: -3},       // empty range
		Between{Col: "name", Lo: 0, Hi: 10},    // wrong type
		Between{Col: "missing", Lo: 0, Hi: 10}, // unknown column
		In{Col: "n", Vals: []table.Value{table.IntVal(1), table.IntVal(5), table.NullVal(), table.StrVal("x")}},
		In{Col: "n", Vals: []table.Value{table.IntVal(-9), table.IntVal(-2), table.IntVal(0), table.IntVal(1),
			table.IntVal(2), table.IntVal(3), table.IntVal(4), table.IntVal(5), table.IntVal(6), table.IntVal(7)}}, // > smallInList
		In{Col: "name", Vals: []table.Value{table.StrVal("a"), table.StrVal("zz"), table.IntVal(7)}},
		In{Col: "name", Vals: []table.Value{table.IntVal(7)}}, // no usable consts
		In{Col: "missing", Vals: []table.Value{table.IntVal(1)}},
		Like{Col: "name", Pattern: "a%"},
		Like{Col: "name", Pattern: "a%", Not: true},
		Like{Col: "name", Pattern: "%b%"},
		Like{Col: "name", Pattern: "a_c"},
		Like{Col: "name", Pattern: ""},
		Like{Col: "n", Pattern: "a%"},                  // integer column
		Like{Col: "missing", Pattern: "a%", Not: true}, // unknown column
		IsNull{Col: "n"},
		IsNull{Col: "n", Not: true},
		IsNull{Col: "name"},
		IsNull{Col: "missing"}, // unknown: always NULL
		IsNull{Col: "missing", Not: true},
	)
	preds = append(preds,
		And{Preds: []Pred{Between{Col: "n", Lo: -5, Hi: 5}, Like{Col: "name", Pattern: "a%"}}},
		Or{Preds: []Pred{Cmp{Col: "n", Op: Eq, Val: table.IntVal(2)}, IsNull{Col: "code"}}},
		Not{Pred: Like{Col: "name", Pattern: "%b"}},
		And{Preds: []Pred{
			Or{Preds: []Pred{IsNull{Col: "n"}, Cmp{Col: "n", Op: Gt, Val: table.IntVal(0)}}},
			Not{Pred: Cmp{Col: "code", Op: Eq, Val: table.StrVal("xy")}},
		}},
	)
	return preds
}

// TestBatchPredMatchesEval is the compiler's semantic parity gate: for every
// predicate shape and every row, the vectorized filter and the scalar EvalRow
// must agree exactly with Pred.Eval.
func TestBatchPredMatchesEval(t *testing.T) {
	s := batchTestSchema(t)
	rows := batchTestRows(t, s)
	for _, p := range batchTestPreds() {
		bp := Compile(s, p)
		if bp == nil {
			t.Fatalf("%s: compiled to nil", p)
		}
		var want []int32
		for i, row := range rows {
			scalar := p.Eval(table.Record{Schema: s, Data: row})
			if got := bp.EvalRow(row); got != scalar {
				t.Fatalf("%s: EvalRow row %d = %v, scalar Eval = %v", p, i, got, scalar)
			}
			if scalar {
				want = append(want, int32(i))
			}
		}
		sel := make([]int32, len(rows))
		for i := range sel {
			sel[i] = int32(i)
		}
		got := bp.Filter(rows, sel)
		if len(got) != len(want) {
			t.Fatalf("%s: Filter kept %d rows, scalar kept %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: Filter[%d] = %d, want %d", p, i, got[i], want[i])
			}
		}
	}
}

// TestCompileNilPred documents the select-all contract.
func TestCompileNilPred(t *testing.T) {
	if Compile(batchTestSchema(t), nil) != nil {
		t.Fatal("nil predicate must compile to nil")
	}
}
