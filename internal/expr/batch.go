package expr

import (
	"bytes"
	"encoding/binary"

	"hybridndp/internal/table"
)

// BatchPred is a predicate compiled against one schema for vectorized
// evaluation: leaves carry pre-resolved column offsets and null-bitmap masks,
// so filtering a batch reads raw row bytes directly instead of decoding a
// Value per (row, term). The compiled form is exactly equivalent to calling
// Pred.Eval on each record (TestBatchPredMatchesEval), including the
// edge semantics: comparisons against NULL or a type-mismatched constant are
// false, unknown columns read as NULL (which makes IS NULL on an unknown
// column true), and CHAR payloads compare NUL-trimmed.
type BatchPred struct {
	node bnode
}

// bnode is one compiled predicate node.
type bnode interface {
	// filter keeps only the matching row indices of sel, in ascending order,
	// reusing sel's storage. Conjunctions chain filters, so each term only
	// visits the survivors of the previous one — rejected rows are never
	// revisited, let alone materialized.
	filter(rows [][]byte, sel []int32) []int32
	// evalRow reports whether one row matches (the scalar path used by OR/NOT
	// and by per-record consumers like the indexed join's residual filter).
	evalRow(row []byte) bool
}

// Compile compiles p for batch evaluation over rows of schema s. A nil
// predicate compiles to nil (callers treat that as select-all).
func Compile(s *table.Schema, p Pred) *BatchPred {
	if p == nil {
		return nil
	}
	return &BatchPred{node: compileNode(s, p)}
}

// Filter refines the selection vector in place: the returned slice (reusing
// sel's storage) holds exactly the indices whose rows match, in their original
// order.
func (bp *BatchPred) Filter(rows [][]byte, sel []int32) []int32 {
	return bp.node.filter(rows, sel)
}

// EvalRow evaluates the compiled predicate against a single raw row.
func (bp *BatchPred) EvalRow(row []byte) bool { return bp.node.evalRow(row) }

func compileNode(s *table.Schema, p Pred) bnode {
	switch q := p.(type) {
	case Cmp:
		return compileCmp(s, q)
	case Between:
		i := s.ColumnIndex(q.Col)
		if i < 0 || s.Columns[i].Type != table.Int32 {
			return constNode{false}
		}
		nb, nm := s.NullBit(i)
		return &betweenNode{off: s.ColumnOffset(i), nullB: nb, nullM: nm, lo: q.Lo, hi: q.Hi}
	case In:
		return compileIn(s, q)
	case Like:
		i := s.ColumnIndex(q.Col)
		if i < 0 || s.Columns[i].Type == table.Int32 {
			// Like.Eval is false on NULL and on integer values even under NOT
			// LIKE (three-valued logic collapsed, as the scalar path has it).
			return constNode{false}
		}
		nb, nm := s.NullBit(i)
		return &likeNode{off: s.ColumnOffset(i), size: s.Columns[i].Size,
			nullB: nb, nullM: nm, pattern: q.Pattern, not: q.Not}
	case IsNull:
		i := s.ColumnIndex(q.Col)
		if i < 0 {
			// An unknown column reads as NULL, so IS NULL is constant true and
			// IS NOT NULL constant false.
			return constNode{!q.Not}
		}
		nb, nm := s.NullBit(i)
		return &isNullNode{nullB: nb, nullM: nm, not: q.Not}
	case And:
		kids := make([]bnode, len(q.Preds))
		for i, sub := range q.Preds {
			kids[i] = compileNode(s, sub)
		}
		return &andNode{kids: kids}
	case Or:
		kids := make([]bnode, len(q.Preds))
		for i, sub := range q.Preds {
			kids[i] = compileNode(s, sub)
		}
		return &orNode{kids: kids}
	case Not:
		return &notNode{kid: compileNode(s, q.Pred)}
	default:
		// Unknown predicate implementations fall back to the scalar evaluator.
		return &predNode{s: s, p: p}
	}
}

func compileCmp(s *table.Schema, q Cmp) bnode {
	i := s.ColumnIndex(q.Col)
	if i < 0 || q.Val.Null {
		return constNode{false}
	}
	col := s.Columns[i]
	nb, nm := s.NullBit(i)
	if col.Type == table.Int32 {
		if !q.Val.IsI {
			return constNode{false} // type mismatch never matches
		}
		return &intCmpNode{off: s.ColumnOffset(i), nullB: nb, nullM: nm, op: q.Op, val: q.Val.Int}
	}
	if q.Val.IsI {
		return constNode{false}
	}
	return &strCmpNode{off: s.ColumnOffset(i), size: col.Size, nullB: nb, nullM: nm,
		op: q.Op, val: []byte(q.Val.Str)}
}

func compileIn(s *table.Schema, q In) bnode {
	i := s.ColumnIndex(q.Col)
	if i < 0 {
		return constNode{false}
	}
	col := s.Columns[i]
	nb, nm := s.NullBit(i)
	if col.Type == table.Int32 {
		var vals []int32
		for _, c := range q.Vals {
			if c.IsI && !c.Null {
				vals = append(vals, c.Int)
			}
		}
		if len(vals) == 0 {
			return constNode{false}
		}
		n := &inIntNode{off: s.ColumnOffset(i), nullB: nb, nullM: nm, vals: vals}
		if len(vals) > smallInList {
			n.set = make(map[int32]struct{}, len(vals))
			for _, v := range vals {
				n.set[v] = struct{}{}
			}
		}
		return n
	}
	var vals [][]byte
	for _, c := range q.Vals {
		if !c.IsI && !c.Null {
			vals = append(vals, []byte(c.Str))
		}
	}
	if len(vals) == 0 {
		return constNode{false}
	}
	return &inStrNode{off: s.ColumnOffset(i), size: col.Size, nullB: nb, nullM: nm, vals: vals}
}

// smallInList is the membership-list length up to which a linear scan beats a
// map probe.
const smallInList = 8

// filterScalar implements filter for nodes whose batch form is just the
// per-row evaluation (OR, NOT, fallbacks).
func filterScalar(n bnode, rows [][]byte, sel []int32) []int32 {
	out := sel[:0]
	for _, i := range sel {
		if n.evalRow(rows[i]) {
			out = append(out, i)
		}
	}
	return out
}

// trimNul strips the CHAR padding, yielding the stored payload bytes — the
// byte-level twin of the TrimRight decode in Record.Get.
func trimNul(b []byte) []byte {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return b[:end]
}

// cmpMatches applies a comparison operator to a three-way compare result.
func cmpMatches(op CmpOp, c int) bool {
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// constNode is a predicate folded to a constant at compile time (unknown
// columns, NULL or type-mismatched constants).
type constNode struct{ v bool }

func (n constNode) filter(rows [][]byte, sel []int32) []int32 {
	if n.v {
		return sel
	}
	return sel[:0]
}

func (n constNode) evalRow([]byte) bool { return n.v }

type intCmpNode struct {
	off   int
	nullB int
	nullM byte
	op    CmpOp
	val   int32
}

func (n *intCmpNode) evalRow(row []byte) bool {
	if row[n.nullB]&n.nullM != 0 {
		return false
	}
	v := int32(binary.LittleEndian.Uint32(row[n.off:]))
	c := 0
	switch {
	case v < n.val:
		c = -1
	case v > n.val:
		c = 1
	}
	return cmpMatches(n.op, c)
}

func (n *intCmpNode) filter(rows [][]byte, sel []int32) []int32 {
	out := sel[:0]
	if n.op == Eq {
		// The dominant shape gets a branch-lean loop with the operator
		// dispatch hoisted out.
		for _, i := range sel {
			row := rows[i]
			if row[n.nullB]&n.nullM == 0 && int32(binary.LittleEndian.Uint32(row[n.off:])) == n.val {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range sel {
		if n.evalRow(rows[i]) {
			out = append(out, i)
		}
	}
	return out
}

type strCmpNode struct {
	off   int
	size  int
	nullB int
	nullM byte
	op    CmpOp
	val   []byte
}

func (n *strCmpNode) evalRow(row []byte) bool {
	if row[n.nullB]&n.nullM != 0 {
		return false
	}
	raw := trimNul(row[n.off : n.off+n.size])
	return cmpMatches(n.op, bytes.Compare(raw, n.val))
}

func (n *strCmpNode) filter(rows [][]byte, sel []int32) []int32 {
	out := sel[:0]
	switch n.op {
	case Eq:
		for _, i := range sel {
			row := rows[i]
			if row[n.nullB]&n.nullM == 0 && bytes.Equal(trimNul(row[n.off:n.off+n.size]), n.val) {
				out = append(out, i)
			}
		}
	case Ne:
		for _, i := range sel {
			row := rows[i]
			if row[n.nullB]&n.nullM == 0 && !bytes.Equal(trimNul(row[n.off:n.off+n.size]), n.val) {
				out = append(out, i)
			}
		}
	default:
		return filterScalar(n, rows, sel)
	}
	return out
}

type betweenNode struct {
	off    int
	nullB  int
	nullM  byte
	lo, hi int32
}

func (n *betweenNode) evalRow(row []byte) bool {
	if row[n.nullB]&n.nullM != 0 {
		return false
	}
	v := int32(binary.LittleEndian.Uint32(row[n.off:]))
	return v >= n.lo && v <= n.hi
}

func (n *betweenNode) filter(rows [][]byte, sel []int32) []int32 {
	out := sel[:0]
	for _, i := range sel {
		row := rows[i]
		if row[n.nullB]&n.nullM != 0 {
			continue
		}
		v := int32(binary.LittleEndian.Uint32(row[n.off:]))
		if v >= n.lo && v <= n.hi {
			out = append(out, i)
		}
	}
	return out
}

type inIntNode struct {
	off   int
	nullB int
	nullM byte
	vals  []int32            // linear scan for short lists
	set   map[int32]struct{} // non-nil above smallInList
}

func (n *inIntNode) evalRow(row []byte) bool {
	if row[n.nullB]&n.nullM != 0 {
		return false
	}
	v := int32(binary.LittleEndian.Uint32(row[n.off:]))
	if n.set != nil {
		_, ok := n.set[v]
		return ok
	}
	for _, c := range n.vals {
		if v == c {
			return true
		}
	}
	return false
}

func (n *inIntNode) filter(rows [][]byte, sel []int32) []int32 {
	return filterScalar(n, rows, sel)
}

type inStrNode struct {
	off   int
	size  int
	nullB int
	nullM byte
	vals  [][]byte
}

func (n *inStrNode) evalRow(row []byte) bool {
	if row[n.nullB]&n.nullM != 0 {
		return false
	}
	raw := trimNul(row[n.off : n.off+n.size])
	for _, c := range n.vals {
		if bytes.Equal(raw, c) {
			return true
		}
	}
	return false
}

func (n *inStrNode) filter(rows [][]byte, sel []int32) []int32 {
	return filterScalar(n, rows, sel)
}

type likeNode struct {
	off     int
	size    int
	nullB   int
	nullM   byte
	pattern string
	not     bool
}

func (n *likeNode) evalRow(row []byte) bool {
	if row[n.nullB]&n.nullM != 0 {
		return false
	}
	m := likeMatchBytes(n.pattern, row[n.off:n.off+n.size])
	return m != n.not
}

func (n *likeNode) filter(rows [][]byte, sel []int32) []int32 {
	return filterScalar(n, rows, sel)
}

// likeMatchBytes is likeMatch over the raw NUL-padded CHAR payload, trimming
// the padding without building a string.
func likeMatchBytes(pattern string, raw []byte) bool {
	s := trimNul(raw)
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

type isNullNode struct {
	nullB int
	nullM byte
	not   bool
}

func (n *isNullNode) evalRow(row []byte) bool {
	null := row[n.nullB]&n.nullM != 0
	return null != n.not
}

func (n *isNullNode) filter(rows [][]byte, sel []int32) []int32 {
	out := sel[:0]
	for _, i := range sel {
		if (rows[i][n.nullB]&n.nullM != 0) != n.not {
			out = append(out, i)
		}
	}
	return out
}

type andNode struct{ kids []bnode }

func (n *andNode) filter(rows [][]byte, sel []int32) []int32 {
	// Sequential selection-vector refinement: each term filters only the
	// survivors of the previous one.
	for _, k := range n.kids {
		sel = k.filter(rows, sel)
		if len(sel) == 0 {
			break
		}
	}
	return sel
}

func (n *andNode) evalRow(row []byte) bool {
	for _, k := range n.kids {
		if !k.evalRow(row) {
			return false
		}
	}
	return true
}

type orNode struct{ kids []bnode }

func (n *orNode) filter(rows [][]byte, sel []int32) []int32 {
	return filterScalar(n, rows, sel)
}

func (n *orNode) evalRow(row []byte) bool {
	for _, k := range n.kids {
		if k.evalRow(row) {
			return true
		}
	}
	return false
}

type notNode struct{ kid bnode }

func (n *notNode) filter(rows [][]byte, sel []int32) []int32 {
	return filterScalar(n, rows, sel)
}

func (n *notNode) evalRow(row []byte) bool { return !n.kid.evalRow(row) }

// predNode is the scalar fallback for predicate implementations the compiler
// does not know.
type predNode struct {
	s *table.Schema
	p Pred
}

func (n *predNode) filter(rows [][]byte, sel []int32) []int32 {
	return filterScalar(n, rows, sel)
}

func (n *predNode) evalRow(row []byte) bool {
	return n.p.Eval(table.Record{Schema: n.s, Data: row})
}
