package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"hybridndp/internal/table"
)

var testSchema = table.MustSchema("t", []table.Column{
	{Name: "id", Type: table.Int32, Size: 4},
	{Name: "note", Type: table.Char, Size: 40, Nullable: true},
	{Name: "year", Type: table.Int32, Size: 4, Nullable: true},
	{Name: "kind", Type: table.Char, Size: 16},
}, "id")

func rec(t *testing.T, id int32, note table.Value, year table.Value, kind string) table.Record {
	t.Helper()
	row, err := testSchema.EncodeRow([]table.Value{table.IntVal(id), note, year, table.StrVal(kind)})
	if err != nil {
		t.Fatal(err)
	}
	return table.Record{Schema: testSchema, Data: row}
}

func TestCmpOperators(t *testing.T) {
	r := rec(t, 5, table.StrVal("(presents)"), table.IntVal(2001), "movie")
	cases := []struct {
		p    Pred
		want bool
	}{
		{Cmp{"id", Eq, table.IntVal(5)}, true},
		{Cmp{"id", Eq, table.IntVal(6)}, false},
		{Cmp{"id", Ne, table.IntVal(6)}, true},
		{Cmp{"id", Lt, table.IntVal(6)}, true},
		{Cmp{"id", Le, table.IntVal(5)}, true},
		{Cmp{"id", Gt, table.IntVal(5)}, false},
		{Cmp{"id", Ge, table.IntVal(5)}, true},
		{Cmp{"kind", Eq, table.StrVal("movie")}, true},
		{Cmp{"kind", Lt, table.StrVal("zzz")}, true},
		{Cmp{"kind", Gt, table.StrVal("zzz")}, false},
		// Type mismatch never matches.
		{Cmp{"id", Eq, table.StrVal("5")}, false},
		{Cmp{"kind", Eq, table.IntVal(0)}, false},
	}
	for i, c := range cases {
		if got := c.p.Eval(r); got != c.want {
			t.Errorf("case %d (%s): got %v", i, c.p, got)
		}
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	r := rec(t, 1, table.NullVal(), table.NullVal(), "x")
	for _, p := range []Pred{
		Cmp{"note", Eq, table.StrVal("a")},
		Cmp{"year", Lt, table.IntVal(3000)},
		Between{"year", 0, 3000},
		In{"note", []table.Value{table.StrVal("a")}},
		Like{Col: "note", Pattern: "%"},
	} {
		if p.Eval(r) {
			t.Errorf("%s must be false on NULL", p)
		}
	}
	if !(IsNull{Col: "note"}).Eval(r) {
		t.Fatal("IS NULL must match")
	}
	if (IsNull{Col: "note", Not: true}).Eval(r) {
		t.Fatal("IS NOT NULL must not match")
	}
	if (IsNull{Col: "kind"}).Eval(r) {
		t.Fatal("non-null column IS NULL must be false")
	}
}

func TestBetweenAndIn(t *testing.T) {
	r := rec(t, 1, table.NullVal(), table.IntVal(1995), "movie")
	if !(Between{"year", 1990, 2000}).Eval(r) {
		t.Fatal("between should match")
	}
	if (Between{"year", 1996, 2000}).Eval(r) {
		t.Fatal("between should not match")
	}
	if !(Between{"year", 1995, 1995}).Eval(r) {
		t.Fatal("between bounds are inclusive")
	}
	in := In{"kind", []table.Value{table.StrVal("episode"), table.StrVal("movie")}}
	if !in.Eval(r) {
		t.Fatal("IN should match")
	}
	if (In{"kind", []table.Value{table.StrVal("x")}}).Eval(r) {
		t.Fatal("IN should not match")
	}
	if in.Terms() != 2 {
		t.Fatalf("IN terms = %d", in.Terms())
	}
	iin := In{"year", []table.Value{table.IntVal(1995)}}
	if !iin.Eval(r) {
		t.Fatal("int IN should match")
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%(co-production)%", "note (co-production) 2004", true},
		{"%(co-production)%", "note (presents)", false},
		{"B%", "Bob", true},
		{"B%", "bob", false},
		{"%ing", "running", true},
		{"%ing", "ringer", false},
		{"%a%b%", "xaxbx", true},
		{"%a%b%", "xbxax", false},
		{"__", "ab", true},
		{"__", "abc", false},
		{"%%", "x", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestLikePredAndNot(t *testing.T) {
	r := rec(t, 1, table.StrVal("(as Metro-Goldwyn-Mayer Pictures)"), table.NullVal(), "x")
	p := Like{Col: "note", Pattern: "%(as Metro-Goldwyn-Mayer Pictures)%"}
	if !p.Eval(r) {
		t.Fatal("LIKE should match")
	}
	np := Like{Col: "note", Pattern: "%(as Metro-Goldwyn-Mayer Pictures)%", Not: true}
	if np.Eval(r) {
		t.Fatal("NOT LIKE should not match")
	}
	// NOT LIKE on NULL is false, not true (SQL semantics).
	rn := rec(t, 1, table.NullVal(), table.NullVal(), "x")
	if np.Eval(rn) {
		t.Fatal("NOT LIKE on NULL must be false")
	}
}

func TestLikeContainsProperty(t *testing.T) {
	// %s% matches exactly when s is a substring (no wildcards inside).
	f := func(hay, needle string) bool {
		if strings.ContainsAny(needle, "%_") || strings.ContainsAny(hay, "%_") {
			return true
		}
		return likeMatch("%"+needle+"%", hay) == strings.Contains(hay, needle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBooleanCombinators(t *testing.T) {
	r := rec(t, 5, table.StrVal("n"), table.IntVal(2000), "movie")
	tr := Cmp{"id", Eq, table.IntVal(5)}
	fa := Cmp{"id", Eq, table.IntVal(6)}
	if !(And{[]Pred{tr, tr}}).Eval(r) || (And{[]Pred{tr, fa}}).Eval(r) {
		t.Fatal("AND broken")
	}
	if !(Or{[]Pred{fa, tr}}).Eval(r) || (Or{[]Pred{fa, fa}}).Eval(r) {
		t.Fatal("OR broken")
	}
	if (Not{tr}).Eval(r) || !(Not{fa}).Eval(r) {
		t.Fatal("NOT broken")
	}
	and := And{[]Pred{tr, fa, Between{"year", 0, 1}}}
	if and.Terms() != 4 {
		t.Fatalf("AND terms = %d, want 4", and.Terms())
	}
	cols := and.Columns()
	if len(cols) != 2 { // id (deduped) + year
		t.Fatalf("AND columns = %v", cols)
	}
}

func TestEqColExtraction(t *testing.T) {
	p := And{[]Pred{
		Like{Col: "note", Pattern: "%x%"},
		Cmp{"kind", Eq, table.StrVal("movie")},
	}}
	v, ok := EqCol(p, "kind")
	if !ok || v.Str != "movie" {
		t.Fatalf("EqCol = %v, %v", v, ok)
	}
	if _, ok := EqCol(p, "note"); ok {
		t.Fatal("LIKE is not an equality")
	}
	if _, ok := EqCol(Cmp{"kind", Ne, table.StrVal("x")}, "kind"); ok {
		t.Fatal("Ne is not an equality")
	}
	// Direct (non-conjunction) form.
	if v, ok := EqCol(Cmp{"kind", Eq, table.StrVal("m")}, "kind"); !ok || v.Str != "m" {
		t.Fatal("direct EqCol broken")
	}
}

func TestStringRendering(t *testing.T) {
	p := And{[]Pred{
		Cmp{"kind", Eq, table.StrVal("movie")},
		Or{[]Pred{Like{Col: "note", Pattern: "a%"}, IsNull{Col: "note"}}},
		Not{Between{"year", 1990, 2000}},
	}}
	s := p.String()
	for _, frag := range []string{"kind = 'movie'", "note LIKE 'a%'", "note IS NULL", "BETWEEN 1990 AND 2000", "NOT ("} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendering %q missing %q", s, frag)
		}
	}
}
