// Package core is the hybridNDP controller — the paper's primary
// contribution assembled into one component: given a query it computes the
// QEP split points through the cost model, decides host-only / full NDP /
// hybrid-Hk automatically (no hard-coding, no optimizer hints), executes the
// choice through the cooperative executor, and records estimate-vs-measured
// feedback. The feedback log powers the decision-quality analysis of paper
// Exp 3 and an optional calibration loop that nudges the row-evaluation-cost
// parameter (usr_rec, Table 1) toward observed reality.
package core

import (
	"fmt"
	"sort"
	"sync"

	"hybridndp/internal/coop"
	"hybridndp/internal/cost"
	"hybridndp/internal/hw"
	"hybridndp/internal/kv"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/query"
	"hybridndp/internal/table"
	"hybridndp/internal/vclock"
)

// Controller drives automated offloading decisions and their execution.
type Controller struct {
	Opt  *optimizer.Optimizer
	Exec *coop.Executor

	// Feedback enables the calibration loop: after every run, the cost
	// model's usr_rec parameter is nudged by the measured/estimated ratio
	// (bounded, exponentially smoothed), so systematic over- or
	// under-estimation decays across a session.
	Feedback bool

	mu   sync.Mutex
	runs []RunRecord // guarded by mu
}

// New assembles a controller over a catalog.
func New(cat *table.Catalog, db *kv.DB, m hw.Model) *Controller {
	return &Controller{
		Opt:  optimizer.New(cat, m),
		Exec: coop.NewExecutor(cat, db, m),
	}
}

// RunRecord is one executed decision with its estimate-vs-measured outcome.
type RunRecord struct {
	Query     string
	Strategy  coop.Strategy
	Estimated float64 // cost-model estimate for the chosen strategy, virtual ns
	Measured  vclock.Duration
	Reason    string
}

// Ratio is measured/estimated (1 = perfect).
func (r RunRecord) Ratio() float64 {
	if r.Estimated <= 0 {
		return 1
	}
	return float64(r.Measured) / r.Estimated
}

// strategyOf converts a decision into the executable strategy.
func strategyOf(d *optimizer.Decision) coop.Strategy {
	switch {
	case d.Hybrid:
		split := d.Split
		if split == 0 {
			split = -1
		}
		return coop.Strategy{Kind: coop.Hybrid, Split: split}
	case d.NDP:
		return coop.Strategy{Kind: coop.NDPOnly}
	default:
		return coop.Strategy{Kind: coop.HostNative}
	}
}

// estimateFor reads the cost model's estimate for the chosen strategy out of
// the decision's cost picture.
func estimateFor(d *optimizer.Decision) float64 {
	sc := d.Costs
	switch {
	case d.Hybrid:
		if d.Split >= 0 && d.Split < len(sc.HybridEst) {
			return sc.HybridEst[d.Split]
		}
		return sc.HybridEst[0]
	case d.NDP:
		return sc.NDPTotal
	default:
		return sc.HostTotal
	}
}

// Run decides and executes one query, recording the outcome.
func (c *Controller) Run(q *query.Query) (*coop.Report, *optimizer.Decision, error) {
	d, err := c.Opt.Decide(q)
	if err != nil {
		return nil, nil, err
	}
	st := strategyOf(d)
	rep, err := c.Exec.Run(d.Plan, st)
	if err != nil && st.Kind != coop.HostNative {
		// Device-side failures (e.g. memory plan rejected at execution time)
		// fall back to the traditional host-only strategy, as the paper's
		// preconditions mandate.
		st = coop.Strategy{Kind: coop.HostNative}
		rep, err = c.Exec.Run(d.Plan, st)
	}
	if err != nil {
		return nil, nil, err
	}
	rec := RunRecord{
		Query:     q.Name,
		Strategy:  st,
		Estimated: estimateFor(d),
		Measured:  rep.Elapsed,
		Reason:    d.Reason,
	}
	c.mu.Lock()
	c.runs = append(c.runs, rec)
	c.mu.Unlock()
	if c.Feedback {
		c.applyFeedback(rec)
	}
	return rep, d, nil
}

// feedback smoothing: usr_rec moves at most ±20% per run, smoothed by 1/4.
const (
	feedbackGainCap = 0.2
	feedbackSmooth  = 0.25
)

// applyFeedback nudges the cost model's row-evaluation cost toward the
// observed estimate error. The update goes through the estimator's atomic
// parameter hook so concurrent runs neither race nor lose adjustments.
func (c *Controller) applyFeedback(rec RunRecord) {
	ratio := rec.Ratio()
	gain := (ratio - 1) * feedbackSmooth
	if gain > feedbackGainCap {
		gain = feedbackGainCap
	}
	if gain < -feedbackGainCap {
		gain = -feedbackGainCap
	}
	c.Opt.Est.UpdateParams(func(p cost.Params) cost.Params {
		p.UsrRec *= 1 + gain
		if p.UsrRec < 1 {
			p.UsrRec = 1
		}
		return p
	})
}

// Runs returns a copy of the recorded run log.
func (c *Controller) Runs() []RunRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RunRecord(nil), c.runs...)
}

// QualityReport summarizes estimate accuracy over the recorded runs (the
// session-level analogue of paper Exp 3).
type QualityReport struct {
	Runs        int
	MedianRatio float64 // measured/estimated, 1 = perfect
	P90Ratio    float64
	ByStrategy  map[string]int
}

// Quality computes the report.
func (c *Controller) Quality() QualityReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	qr := QualityReport{Runs: len(c.runs), ByStrategy: map[string]int{}}
	if len(c.runs) == 0 {
		return qr
	}
	ratios := make([]float64, 0, len(c.runs))
	for _, r := range c.runs {
		ratios = append(ratios, r.Ratio())
		qr.ByStrategy[r.Strategy.String()]++
	}
	sort.Float64s(ratios)
	qr.MedianRatio = ratios[len(ratios)/2]
	qr.P90Ratio = ratios[len(ratios)*9/10]
	return qr
}

func (qr QualityReport) String() string {
	return fmt.Sprintf("runs=%d median(measured/est)=%.2f p90=%.2f strategies=%v",
		qr.Runs, qr.MedianRatio, qr.P90Ratio, qr.ByStrategy)
}
