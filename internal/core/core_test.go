package core_test

import (
	"math"
	"sync"
	"testing"

	"hybridndp/internal/core"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
)

var (
	dsOnce sync.Once
	ds     *job.Dataset
	dsErr  error
)

func controller(t *testing.T) *core.Controller {
	t.Helper()
	dsOnce.Do(func() { ds, dsErr = job.Load(0.01, hw.Cosmos()) })
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return core.New(ds.Cat, ds.DB, ds.Model)
}

func TestRunRecordsOutcome(t *testing.T) {
	c := controller(t)
	rep, d, err := c.Run(job.QueryByName("1a"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.RowCount != 1 || d.Reason == "" {
		t.Fatal("run incomplete")
	}
	runs := c.Runs()
	if len(runs) != 1 {
		t.Fatalf("recorded %d runs", len(runs))
	}
	r := runs[0]
	if r.Query != "1a" || r.Estimated <= 0 || r.Measured <= 0 {
		t.Fatalf("record incomplete: %+v", r)
	}
	if r.Strategy.String() != d.StrategyLabel() && !(d.StrategyLabel() == "host" && r.Strategy.Kind == 1) {
		// Fallback may downgrade the strategy; reason stays.
		t.Logf("executed %v for decision %s", r.Strategy, d.StrategyLabel())
	}
	if r.Ratio() <= 0 {
		t.Fatal("ratio must be positive")
	}
}

func TestQualityReport(t *testing.T) {
	c := controller(t)
	for _, name := range []string{"1a", "2b", "4b", "32b", "17b"} {
		if _, _, err := c.Run(job.QueryByName(name)); err != nil {
			t.Fatal(err)
		}
	}
	qr := c.Quality()
	if qr.Runs != 5 {
		t.Fatalf("Runs = %d", qr.Runs)
	}
	if qr.MedianRatio <= 0 || qr.P90Ratio < qr.MedianRatio {
		t.Fatalf("degenerate ratios: %+v", qr)
	}
	total := 0
	for _, n := range qr.ByStrategy {
		total += n
	}
	if total != 5 {
		t.Fatalf("strategy histogram covers %d runs", total)
	}
	if qr.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestEmptyQuality(t *testing.T) {
	c := controller(t)
	qr := c.Quality()
	if qr.Runs != 0 || qr.MedianRatio != 0 {
		t.Fatalf("fresh controller reports %+v", qr)
	}
}

func TestFeedbackNudgesUsrRec(t *testing.T) {
	c := controller(t)
	c.Feedback = true
	before := c.Opt.Est.Params().UsrRec
	for i := 0; i < 3; i++ {
		if _, _, err := c.Run(job.QueryByName("8c")); err != nil {
			t.Fatal(err)
		}
	}
	after := c.Opt.Est.Params().UsrRec
	if after == before {
		t.Fatal("feedback never adjusted usr_rec")
	}
	// The adjustment is bounded: three runs move at most (1.2)^3.
	if after > before*math.Pow(1+0.2, 3)+1e-9 || after < before*math.Pow(1-0.2, 3)-1e-9 {
		t.Fatalf("usr_rec moved out of bounds: %.1f → %.1f", before, after)
	}
}

func TestFeedbackImprovesEstimateRatio(t *testing.T) {
	// Running the same query repeatedly with feedback should move the
	// measured/estimated ratio toward 1 relative to the first run.
	c := controller(t)
	c.Feedback = true
	var first, last float64
	for i := 0; i < 8; i++ {
		if _, _, err := c.Run(job.QueryByName("6f")); err != nil {
			t.Fatal(err)
		}
		runs := c.Runs()
		r := runs[len(runs)-1].Ratio()
		if i == 0 {
			first = r
		}
		last = r
	}
	if math.Abs(last-1) > math.Abs(first-1)+0.05 {
		t.Fatalf("feedback made estimates worse: first ratio %.2f, last %.2f", first, last)
	}
}

// TestControllerConcurrentRunRace hammers one controller from several
// goroutines with the calibration feedback loop enabled — under -race this
// verifies that Controller.Run, the shared cost-model parameters and the
// executor's run path are safe for the concurrent scheduler to drive.
func TestControllerConcurrentRunRace(t *testing.T) {
	c := controller(t)
	c.Feedback = true
	names := []string{"1a", "6f", "8c", "17b", "32b"}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	const goroutines, perG = 4, 5
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, _, err := c.Run(job.QueryByName(names[(g+i)%len(names)])); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(c.Runs()); got != goroutines*perG {
		t.Fatalf("recorded %d runs, want %d", got, goroutines*perG)
	}
	if q := c.Quality(); q.Runs != goroutines*perG {
		t.Fatalf("quality over %d runs, want %d", q.Runs, goroutines*perG)
	}
}
