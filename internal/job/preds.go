package job

import (
	"fmt"
	"strings"

	"hybridndp/internal/expr"
	"hybridndp/internal/query"
	"hybridndp/internal/table"
)

// Predicate construction helpers for the query definitions.

func eqs(col, v string) expr.Pred { return expr.Cmp{Col: col, Op: expr.Eq, Val: table.StrVal(v)} }
func eqi(col string, v int32) expr.Pred {
	return expr.Cmp{Col: col, Op: expr.Eq, Val: table.IntVal(v)}
}
func gts(col, v string) expr.Pred { return expr.Cmp{Col: col, Op: expr.Gt, Val: table.StrVal(v)} }
func lts(col, v string) expr.Pred { return expr.Cmp{Col: col, Op: expr.Lt, Val: table.StrVal(v)} }
func gti(col string, v int32) expr.Pred {
	return expr.Cmp{Col: col, Op: expr.Gt, Val: table.IntVal(v)}
}
func gei(col string, v int32) expr.Pred {
	return expr.Cmp{Col: col, Op: expr.Ge, Val: table.IntVal(v)}
}
func lei(col string, v int32) expr.Pred {
	return expr.Cmp{Col: col, Op: expr.Le, Val: table.IntVal(v)}
}
func lti(col string, v int32) expr.Pred {
	return expr.Cmp{Col: col, Op: expr.Lt, Val: table.IntVal(v)}
}
func between(col string, lo, hi int32) expr.Pred { return expr.Between{Col: col, Lo: lo, Hi: hi} }
func like(col, pat string) expr.Pred             { return expr.Like{Col: col, Pattern: pat} }
func notlike(col, pat string) expr.Pred          { return expr.Like{Col: col, Pattern: pat, Not: true} }
func isnull(col string) expr.Pred                { return expr.IsNull{Col: col} }
func notnull(col string) expr.Pred               { return expr.IsNull{Col: col, Not: true} }
func and(ps ...expr.Pred) expr.Pred              { return expr.And{Preds: ps} }
func or(ps ...expr.Pred) expr.Pred               { return expr.Or{Preds: ps} }
func ins(col string, vs ...string) expr.Pred {
	vals := make([]table.Value, len(vs))
	for i, v := range vs {
		vals[i] = table.StrVal(v)
	}
	return expr.In{Col: col, Vals: vals}
}

// qb is a tiny builder for query definitions.
type qb struct {
	q *query.Query
}

func nq(name string) *qb {
	return &qb{q: &query.Query{Name: name, Filters: map[string]expr.Pred{}}}
}

// t adds tables from "alias:table" specs.
func (b *qb) t(specs ...string) *qb {
	for _, s := range specs {
		parts := strings.SplitN(s, ":", 2)
		if len(parts) != 2 {
			panic(fmt.Sprintf("job: bad table spec %q", s))
		}
		b.q.Tables = append(b.q.Tables, query.TableRef{Alias: parts[0], Table: parts[1]})
	}
	return b
}

// j adds equality join conditions from "a.col=b.col" specs.
func (b *qb) j(conds ...string) *qb {
	for _, s := range conds {
		sides := strings.SplitN(s, "=", 2)
		if len(sides) != 2 {
			panic(fmt.Sprintf("job: bad join spec %q", s))
		}
		l := strings.SplitN(strings.TrimSpace(sides[0]), ".", 2)
		r := strings.SplitN(strings.TrimSpace(sides[1]), ".", 2)
		if len(l) != 2 || len(r) != 2 {
			panic(fmt.Sprintf("job: bad join spec %q", s))
		}
		b.q.Joins = append(b.q.Joins, query.JoinCond{
			LeftAlias: l[0], LeftCol: l[1], RightAlias: r[0], RightCol: r[1],
		})
	}
	return b
}

// f sets the local predicate for alias (merging with AND if already set).
func (b *qb) f(alias string, p expr.Pred) *qb {
	if old, ok := b.q.Filters[alias]; ok {
		p = and(old, p)
	}
	b.q.Filters[alias] = p
	return b
}

func colref(s string) query.ColRef {
	parts := strings.SplitN(s, ".", 2)
	if len(parts) != 2 {
		panic(fmt.Sprintf("job: bad column ref %q", s))
	}
	return query.ColRef{Alias: parts[0], Col: parts[1]}
}

// minOf adds MIN aggregates over "alias.col" refs (the standard JOB shape).
func (b *qb) minOf(cols ...string) *qb {
	for _, c := range cols {
		b.q.Aggregates = append(b.q.Aggregates, query.Aggregate{
			Func: query.Min, Arg: colref(c), As: "min_" + strings.ReplaceAll(c, ".", "_"),
		})
	}
	return b
}

// count adds COUNT(*).
func (b *qb) count() *qb {
	b.q.Aggregates = append(b.q.Aggregates, query.Aggregate{Func: query.Count, Star: true, As: "cnt"})
	return b
}

// out adds plain projection columns ("alias.col").
func (b *qb) out(cols ...string) *qb {
	for _, c := range cols {
		b.q.Output = append(b.q.Output, colref(c))
	}
	return b
}

// groupBy adds grouping columns.
func (b *qb) groupBy(cols ...string) *qb {
	for _, c := range cols {
		b.q.GroupBy = append(b.q.GroupBy, colref(c))
	}
	return b
}

func (b *qb) build() *query.Query { return b.q }
