package job

import (
	"fmt"
	"sort"

	"hybridndp/internal/expr"
	"hybridndp/internal/query"
	"hybridndp/internal/table"
)

// Queries returns all 113 JOB queries (33 groups, variants a..f), ported to
// the synthetic dataset's value domains. Structure (tables and join graph)
// follows the original benchmark; predicate constants are adapted so the
// selectivity character (highly selective dimension filters, moderate fact
// filters, LIKE patterns over notes and names) carries over.
func Queries() []*query.Query {
	var qs []*query.Query
	add := func(more ...*query.Query) { qs = append(qs, more...) }
	add(group1()...)
	add(group2()...)
	add(group3()...)
	add(group4()...)
	add(group5()...)
	add(group6()...)
	add(group7()...)
	add(group8()...)
	add(group9()...)
	add(group10()...)
	add(group11()...)
	add(group12()...)
	add(group13()...)
	add(group14()...)
	add(group15()...)
	add(group16()...)
	add(group17()...)
	add(group18()...)
	add(group19()...)
	add(group20()...)
	add(group21()...)
	add(group22()...)
	add(group23()...)
	add(group24()...)
	add(group25()...)
	add(group26()...)
	add(group27()...)
	add(group28()...)
	add(group29()...)
	add(group30()...)
	add(group31()...)
	add(group32()...)
	add(group33()...)
	return qs
}

// QueryByName returns one query ("8c", "17b", ...), or nil.
func QueryByName(name string) *query.Query {
	for _, q := range Queries() {
		if q.Name == name {
			return q
		}
	}
	return nil
}

// Groups returns the group number → variant letters map, in group order.
func Groups() ([]int, map[int][]string) {
	byGroup := map[int][]string{}
	for _, q := range Queries() {
		var g int
		var v string
		fmt.Sscanf(q.Name, "%d%s", &g, &v)
		byGroup[g] = append(byGroup[g], v)
	}
	var order []int
	for g := range byGroup {
		order = append(order, g)
	}
	sort.Ints(order)
	return order, byGroup
}

func group1() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("ct:company_type", "it:info_type", "mi_idx:movie_info_idx", "t:title", "mc:movie_companies").
			j("ct.id=mc.company_type_id", "t.id=mc.movie_id", "t.id=mi_idx.movie_id",
				"mc.movie_id=mi_idx.movie_id", "it.id=mi_idx.info_type_id").
			f("ct", eqs("kind", "production companies")).
			minOf("mc.note", "t.title", "t.production_year")
	}
	a := base("1a").
		f("it", eqs("info", "top_250_rank")).
		f("mc", and(notlike("note", "%(as Metro-Goldwyn-Mayer Pictures)%"),
			or(like("note", "%(co-production)%"), like("note", "%(presents)%")))).
		build()
	b := base("1b").
		f("it", eqs("info", "bottom_10_rank")).
		f("mc", notlike("note", "%(as Metro-Goldwyn-Mayer Pictures)%")).
		f("t", between("production_year", 2005, 2010)).
		build()
	c := base("1c").
		f("it", eqs("info", "top_250_rank")).
		f("mc", like("note", "%(co-production)%")).
		f("t", gti("production_year", 2010)).
		build()
	d := base("1d").
		f("it", eqs("info", "bottom_10_rank")).
		f("mc", notlike("note", "%(as Metro-Goldwyn-Mayer Pictures)%")).
		build()
	return []*query.Query{a, b, c, d}
}

func group2() []*query.Query {
	base := func(name, country string) *query.Query {
		return nq(name).
			t("cn:company_name", "k:keyword", "mc:movie_companies", "mk:movie_keyword", "t:title").
			j("cn.id=mc.company_id", "mc.movie_id=t.id", "t.id=mk.movie_id",
				"mk.keyword_id=k.id", "mc.movie_id=mk.movie_id").
			f("cn", eqs("country_code", country)).
			f("k", eqs("keyword", "character-name-in-title")).
			minOf("t.title").
			build()
	}
	return []*query.Query{
		base("2a", "[de]"), base("2b", "[se]"), base("2c", "[jp]"), base("2d", "[us]"),
	}
}

func group3() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("k:keyword", "mi:movie_info", "mk:movie_keyword", "t:title").
			j("t.id=mi.movie_id", "t.id=mk.movie_id", "mk.movie_id=mi.movie_id", "k.id=mk.keyword_id").
			f("k", like("keyword", "%sequel%")).
			minOf("t.title")
	}
	a := base("3a").
		f("mi", ins("info", "Sweden", "Germany", "Denmark", "Japan")).
		f("t", gti("production_year", 2005)).build()
	b := base("3b").
		f("mi", ins("info", "Germany", "Sweden")).
		f("t", gti("production_year", 2010)).build()
	c := base("3c").
		f("mi", ins("info", "Sweden", "Germany", "Denmark", "Japan", "Italy", "USA")).
		f("t", gti("production_year", 1990)).build()
	return []*query.Query{a, b, c}
}

func group4() []*query.Query {
	base := func(name, rating string, year int32) *query.Query {
		return nq(name).
			t("it:info_type", "k:keyword", "mi_idx:movie_info_idx", "mk:movie_keyword", "t:title").
			j("t.id=mi_idx.movie_id", "t.id=mk.movie_id", "mk.movie_id=mi_idx.movie_id",
				"k.id=mk.keyword_id", "it.id=mi_idx.info_type_id").
			f("it", eqs("info", "rating")).
			f("k", like("keyword", "%sequel%")).
			f("mi_idx", gts("info", rating)).
			f("t", gti("production_year", year)).
			minOf("mi_idx.info", "t.title").
			build()
	}
	return []*query.Query{
		base("4a", "5.0", 2005), base("4b", "9.0", 2010), base("4c", "2.0", 1990),
	}
}

func group5() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("ct:company_type", "it:info_type", "mc:movie_companies", "mi:movie_info", "t:title").
			j("ct.id=mc.company_type_id", "t.id=mc.movie_id", "t.id=mi.movie_id",
				"mc.movie_id=mi.movie_id", "it.id=mi.info_type_id").
			minOf("t.title")
	}
	a := base("5a").
		f("ct", eqs("kind", "production companies")).
		f("mc", like("note", "%(theatrical)%")).
		f("mi", ins("info", "Drama", "Horror")).
		f("t", gti("production_year", 2005)).build()
	b := base("5b").
		f("ct", eqs("kind", "production companies")).
		f("mc", like("note", "%(VHS)%")).
		f("mi", ins("info", "Horror", "Sci-Fi")).
		f("t", gti("production_year", 2010)).build()
	c := base("5c").
		f("ct", eqs("kind", "production companies")).
		f("mc", notlike("note", "%(TV)%")).
		f("mi", ins("info", "Drama", "Horror", "Comedy", "Action")).
		f("t", gti("production_year", 1990)).build()
	return []*query.Query{a, b, c}
}

func group6() []*query.Query {
	base := func(name, kw, nameLike string, year int32) *query.Query {
		b := nq(name).
			t("ci:cast_info", "k:keyword", "mk:movie_keyword", "n:name", "t:title").
			j("k.id=mk.keyword_id", "t.id=mk.movie_id", "t.id=ci.movie_id",
				"ci.movie_id=mk.movie_id", "n.id=ci.person_id").
			f("k", eqs("keyword", kw)).
			minOf("k.keyword", "n.name", "t.title")
		if nameLike != "" {
			b.f("n", like("name", nameLike))
		}
		if year > 0 {
			b.f("t", gti("production_year", year))
		}
		return b.build()
	}
	return []*query.Query{
		base("6a", "marvel-cinematic-universe", "%Sam%", 2010),
		base("6b", "superhero", "%Tim%", 2014),
		base("6c", "marvel-cinematic-universe", "", 2014),
		base("6d", "superhero", "%Bob%", 2000),
		base("6e", "marvel-cinematic-universe", "%Sam%", 0),
		base("6f", "sequel", "", 1990),
	}
}

func group7() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("an:aka_name", "ci:cast_info", "it:info_type", "lt:link_type",
				"ml:movie_link", "n:name", "pi:person_info", "t:title").
			j("an.person_id=n.id", "n.id=pi.person_id", "ci.person_id=n.id",
				"t.id=ci.movie_id", "ml.linked_movie_id=t.id", "lt.id=ml.link_type_id",
				"it.id=pi.info_type_id", "pi.person_id=an.person_id",
				"an.person_id=ci.person_id", "ci.movie_id=ml.linked_movie_id").
			f("it", eqs("info", "mini biography")).
			minOf("n.name", "t.title")
	}
	a := base("7a").
		f("lt", eqs("link", "features")).
		f("n", and(like("name_pcode_cf", "B%"), eqs("gender", "m"))).
		f("pi", eqs("note", "Volker Boehm")).
		f("t", between("production_year", 1980, 1995)).build()
	b := base("7b").
		f("lt", eqs("link", "features")).
		f("n", and(like("name_pcode_cf", "D%"), eqs("gender", "m"))).
		f("pi", eqs("note", "Volker Boehm")).
		f("t", between("production_year", 1980, 1984)).build()
	c := base("7c").
		f("lt", ins("link", "references", "referenced in", "features", "featured in")).
		f("n", or(like("name_pcode_cf", "A%"), like("name_pcode_cf", "B%"), like("name_pcode_cf", "C%"))).
		f("pi", notnull("note")).
		f("t", between("production_year", 1980, 2010)).build()
	return []*query.Query{a, b, c}
}

func group8() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("a1:aka_name", "ci:cast_info", "cn:company_name", "mc:movie_companies",
				"n1:name", "rt:role_type", "t:title").
			j("a1.person_id=n1.id", "n1.id=ci.person_id", "ci.movie_id=t.id",
				"t.id=mc.movie_id", "mc.company_id=cn.id", "ci.role_id=rt.id",
				"a1.person_id=ci.person_id", "ci.movie_id=mc.movie_id").
			minOf("a1.name", "t.title")
	}
	a := base("8a").
		f("ci", eqs("note", "(voice: English version)")).
		f("cn", eqs("country_code", "[jp]")).
		f("mc", like("note", "%(worldwide)%")).
		f("n1", like("name", "%Kim%")).
		f("rt", eqs("role", "actress")).build()
	b := base("8b").
		f("ci", eqs("note", "(voice: English version)")).
		f("cn", eqs("country_code", "[jp]")).
		f("mc", like("note", "%(worldwide)%")).
		f("n1", like("name", "%Yo%")).
		f("rt", eqs("role", "actress")).
		f("t", between("production_year", 2006, 2007)).build()
	c := base("8c").
		f("cn", eqs("country_code", "[us]")).
		f("rt", eqs("role", "writer")).build()
	d := base("8d").
		f("cn", eqs("country_code", "[us]")).
		f("rt", eqs("role", "costume designer")).build()
	return []*query.Query{a, b, c, d}
}

func group9() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("an:aka_name", "chn:char_name", "ci:cast_info", "cn:company_name",
				"mc:movie_companies", "n:name", "rt:role_type", "t:title").
			j("ci.movie_id=t.id", "t.id=mc.movie_id", "ci.movie_id=mc.movie_id",
				"mc.company_id=cn.id", "ci.role_id=rt.id", "n.id=ci.person_id",
				"chn.id=ci.person_role_id", "an.person_id=n.id", "an.person_id=ci.person_id").
			f("cn", eqs("country_code", "[us]")).
			f("rt", eqs("role", "actress")).
			minOf("an.name", "chn.name", "t.title")
	}
	a := base("9a").
		f("ci", ins("note", "(voice)", "(voice) (uncredited)", "(voice: English version)")).
		f("mc", like("note", "%(USA)%")).
		f("n", and(eqs("gender", "f"), like("name", "%Ann%"))).
		f("t", between("production_year", 2005, 2015)).build()
	b := base("9b").
		f("ci", eqs("note", "(voice)")).
		f("mc", like("note", "%(200%)%")).
		f("n", and(eqs("gender", "f"), like("name", "%Ann%"))).
		f("t", between("production_year", 2007, 2010)).build()
	c := base("9c").
		f("ci", ins("note", "(voice)", "(voice) (uncredited)", "(voice: English version)")).
		f("n", like("name", "%An%")).build()
	d := base("9d").
		f("ci", ins("note", "(voice)", "(voice) (uncredited)", "(voice: English version)")).
		f("n", eqs("gender", "f")).build()
	return []*query.Query{a, b, c, d}
}

func group10() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("chn:char_name", "ci:cast_info", "cn:company_name", "ct:company_type",
				"mc:movie_companies", "rt:role_type", "t:title").
			j("t.id=mc.movie_id", "t.id=ci.movie_id", "ci.movie_id=mc.movie_id",
				"mc.company_type_id=ct.id", "mc.company_id=cn.id",
				"ci.person_role_id=chn.id", "ci.role_id=rt.id").
			minOf("chn.name", "t.title")
	}
	a := base("10a").
		f("ci", like("note", "%(voice)%")).
		f("cn", eqs("country_code", "[it]")).
		f("rt", eqs("role", "actor")).
		f("t", gti("production_year", 2005)).build()
	b := base("10b").
		f("ci", like("note", "%(producer)%")).
		f("cn", eqs("country_code", "[it]")).
		f("rt", eqs("role", "producer")).
		f("t", gti("production_year", 2010)).build()
	c := base("10c").
		f("ci", like("note", "%(producer)%")).
		f("cn", eqs("country_code", "[us]")).
		f("t", gti("production_year", 1990)).build()
	return []*query.Query{a, b, c}
}

func group11() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cn:company_name", "ct:company_type", "k:keyword", "lt:link_type",
				"mc:movie_companies", "mk:movie_keyword", "ml:movie_link", "t:title").
			j("t.id=ml.movie_id", "t.id=mk.movie_id", "mk.movie_id=ml.movie_id",
				"k.id=mk.keyword_id", "t.id=mc.movie_id", "mc.movie_id=ml.movie_id",
				"mc.movie_id=mk.movie_id", "ct.id=mc.company_type_id",
				"lt.id=ml.link_type_id", "cn.id=mc.company_id").
			f("ct", eqs("kind", "production companies")).
			minOf("cn.name", "lt.link", "t.title")
	}
	a := base("11a").
		f("cn", and(expr11NotPL(), or(like("name", "%Film%"), like("name", "%Warner%")))).
		f("k", eqs("keyword", "sequel")).
		f("lt", like("link", "%follow%")).
		f("mc", isnull("note")).
		f("t", between("production_year", 1950, 2000)).build()
	b := base("11b").
		f("cn", expr11NotPL()).
		f("k", eqs("keyword", "sequel")).
		f("lt", like("link", "%follows%")).
		f("mc", isnull("note")).
		f("t", eqi("production_year", 1998)).build()
	c := base("11c").
		f("cn", and(expr11NotPL(), or(like("name", "Film%"), like("name", "Warner%")))).
		f("k", eqs("keyword", "sequel")).
		f("lt", like("link", "%follow%")).
		f("mc", isnull("note")).
		f("t", gti("production_year", 1950)).build()
	d := base("11d").
		f("cn", expr11NotPL()).
		f("k", eqs("keyword", "sequel")).
		f("lt", like("link", "%follow%")).
		f("mc", isnull("note")).
		f("t", gti("production_year", 1950)).build()
	return []*query.Query{a, b, c, d}
}

func group12() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cn:company_name", "ct:company_type", "it1:info_type", "it2:info_type",
				"mc:movie_companies", "mi:movie_info", "mi_idx:movie_info_idx", "t:title").
			j("t.id=mi.movie_id", "t.id=mi_idx.movie_id", "mi.info_type_id=it1.id",
				"mi_idx.info_type_id=it2.id", "t.id=mc.movie_id", "ct.id=mc.company_type_id",
				"cn.id=mc.company_id", "mc.movie_id=mi.movie_id",
				"mc.movie_id=mi_idx.movie_id", "mi.movie_id=mi_idx.movie_id").
			f("cn", eqs("country_code", "[us]")).
			f("ct", eqs("kind", "production companies")).
			f("it1", eqs("info", "genres")).
			f("it2", eqs("info", "rating")).
			minOf("cn.name", "mi_idx.info", "t.title")
	}
	a := base("12a").
		f("mi", ins("info", "Drama", "Horror")).
		f("mi_idx", gts("info", "8.0")).
		f("t", between("production_year", 2005, 2008)).build()
	b := base("12b").
		f("mi", ins("info", "Drama", "Horror", "Western", "Family")).
		f("mi_idx", gts("info", "7.0")).
		f("t", between("production_year", 2000, 2010)).build()
	c := base("12c").
		f("mi", ins("info", "Drama", "Horror", "Comedy", "Action", "Crime")).
		f("mi_idx", gts("info", "1.0")).
		f("t", gti("production_year", 2000)).build()
	return []*query.Query{a, b, c}
}

func group13() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cn:company_name", "ct:company_type", "it1:info_type", "it2:info_type",
				"kt:kind_type", "mc:movie_companies", "mi:movie_info",
				"mi_idx:movie_info_idx", "t:title").
			j("mi.movie_id=t.id", "it2.id=mi.info_type_id", "kt.id=t.kind_id",
				"mc.movie_id=t.id", "cn.id=mc.company_id", "ct.id=mc.company_type_id",
				"mi_idx.movie_id=t.id", "it1.id=mi_idx.info_type_id",
				"mi.movie_id=mi_idx.movie_id", "mi.movie_id=mc.movie_id",
				"mi_idx.movie_id=mc.movie_id").
			f("ct", eqs("kind", "production companies")).
			f("it1", eqs("info", "rating")).
			f("it2", eqs("info", "release dates")).
			f("kt", eqs("kind", "movie")).
			minOf("mi.info", "mi_idx.info", "t.title")
	}
	a := base("13a").
		f("cn", eqs("country_code", "[de]")).build()
	b := base("13b").
		f("cn", eqs("country_code", "[us]")).
		f("t", like("title", "%Champion%")).build()
	c := base("13c").
		f("cn", eqs("country_code", "[us]")).
		f("t", or(like("title", "Champion%"), like("title", "Money%"))).build()
	d := base("13d").
		f("cn", eqs("country_code", "[us]")).build()
	return []*query.Query{a, b, c, d}
}

func group14() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("it1:info_type", "it2:info_type", "k:keyword", "kt:kind_type",
				"mi:movie_info", "mi_idx:movie_info_idx", "mk:movie_keyword", "t:title").
			j("t.id=mi.movie_id", "t.id=mk.movie_id", "t.id=mi_idx.movie_id",
				"mk.movie_id=mi.movie_id", "mk.movie_id=mi_idx.movie_id",
				"mi.movie_id=mi_idx.movie_id", "k.id=mk.keyword_id",
				"it1.id=mi.info_type_id", "it2.id=mi_idx.info_type_id", "kt.id=t.kind_id").
			f("it1", eqs("info", "countries")).
			f("it2", eqs("info", "rating")).
			f("kt", eqs("kind", "movie")).
			minOf("mi_idx.info", "t.title")
	}
	a := base("14a").
		f("k", ins("keyword", "murder", "blood", "violence")).
		f("mi", ins("info", "Sweden", "Germany", "USA")).
		f("mi_idx", lts("info", "8.5")).
		f("t", gti("production_year", 2010)).build()
	b := base("14b").
		f("k", ins("keyword", "murder", "blood")).
		f("mi", ins("info", "Sweden", "Germany")).
		f("mi_idx", gts("info", "6.0")).
		f("t", and(gti("production_year", 2010), or(like("title", "%Dark%"), like("title", "%Night%")))).build()
	c := base("14c").
		f("k", ins("keyword", "murder", "blood", "violence", "revenge")).
		f("mi", ins("info", "Sweden", "Germany", "USA", "Japan", "Italy")).
		f("mi_idx", lts("info", "8.5")).
		f("t", gti("production_year", 2005)).build()
	return []*query.Query{a, b, c}
}

func group15() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("at:aka_title", "cn:company_name", "ct:company_type", "it1:info_type",
				"k:keyword", "mc:movie_companies", "mi:movie_info", "mk:movie_keyword", "t:title").
			j("t.id=at.movie_id", "t.id=mi.movie_id", "t.id=mk.movie_id", "t.id=mc.movie_id",
				"mk.movie_id=mi.movie_id", "mk.movie_id=mc.movie_id", "mi.movie_id=mc.movie_id",
				"k.id=mk.keyword_id", "it1.id=mi.info_type_id", "cn.id=mc.company_id",
				"ct.id=mc.company_type_id", "at.movie_id=mi.movie_id").
			f("cn", eqs("country_code", "[us]")).
			f("it1", eqs("info", "release dates")).
			minOf("mi.info", "t.title")
	}
	a := base("15a").
		f("mc", like("note", "%(200%)%")).
		f("mi", like("info", "USA:%")).
		f("t", gti("production_year", 2000)).build()
	b := base("15b").
		f("mc", like("note", "%(worldwide)%")).
		f("mi", like("info", "USA:%")).
		f("t", gti("production_year", 2000)).build()
	c := base("15c").
		f("mi", like("info", "USA:%")).
		f("t", gti("production_year", 1990)).build()
	d := base("15d").
		f("mi", like("info", "%:2%")).
		f("t", gti("production_year", 1990)).build()
	return []*query.Query{a, b, c, d}
}

func group16() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("an:aka_name", "ci:cast_info", "cn:company_name", "k:keyword",
				"mc:movie_companies", "mk:movie_keyword", "n:name", "t:title").
			j("an.person_id=n.id", "n.id=ci.person_id", "ci.movie_id=t.id",
				"t.id=mk.movie_id", "mk.keyword_id=k.id", "t.id=mc.movie_id",
				"mc.company_id=cn.id", "ci.movie_id=mc.movie_id", "ci.movie_id=mk.movie_id",
				"mc.movie_id=mk.movie_id").
			f("cn", eqs("country_code", "[us]")).
			f("k", eqs("keyword", "character-name-in-title")).
			minOf("an.name", "t.title")
	}
	a := base("16a").
		f("t", between("episode_nr", 50, 99)).build()
	b := base("16b").build()
	c := base("16c").
		f("t", lti("episode_nr", 100)).build()
	d := base("16d").
		f("t", gei("episode_nr", 5)).build()
	return []*query.Query{a, b, c, d}
}

func group17() []*query.Query {
	base := func(name, nameLike string) *query.Query {
		b := nq(name).
			t("ci:cast_info", "cn:company_name", "k:keyword", "mc:movie_companies",
				"mk:movie_keyword", "n:name", "t:title").
			j("n.id=ci.person_id", "ci.movie_id=t.id", "t.id=mk.movie_id",
				"mk.keyword_id=k.id", "t.id=mc.movie_id", "mc.company_id=cn.id",
				"ci.movie_id=mc.movie_id", "ci.movie_id=mk.movie_id", "mc.movie_id=mk.movie_id").
			f("cn", eqs("country_code", "[us]")).
			f("k", eqs("keyword", "character-name-in-title")).
			minOf("n.name", "n.name")
		if nameLike != "" {
			b.f("n", like("name", nameLike))
		}
		return b.build()
	}
	return []*query.Query{
		base("17a", "B%"), base("17b", "Z%"), base("17c", "X%"),
		base("17d", "%Bob%"), base("17e", "%Tim%"), base("17f", "%Kim%"),
	}
}

func group18() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("ci:cast_info", "it1:info_type", "it2:info_type", "mi:movie_info",
				"mi_idx:movie_info_idx", "n:name", "t:title").
			j("t.id=mi.movie_id", "t.id=mi_idx.movie_id", "t.id=ci.movie_id",
				"ci.movie_id=mi.movie_id", "ci.movie_id=mi_idx.movie_id",
				"mi.movie_id=mi_idx.movie_id", "n.id=ci.person_id",
				"it1.id=mi.info_type_id", "it2.id=mi_idx.info_type_id").
			f("it1", eqs("info", "budget")).
			f("it2", eqs("info", "votes")).
			minOf("mi.info", "mi_idx.info", "t.title")
	}
	a := base("18a").
		f("ci", ins("note", "(producer)", "(executive producer)")).
		f("n", and(eqs("gender", "m"), like("name", "%Tim%"))).build()
	b := base("18b").
		f("ci", ins("note", "(producer)", "(executive producer)", "(writer)")).
		f("n", eqs("gender", "f")).
		f("t", gti("production_year", 2010)).build()
	c := base("18c").
		f("ci", ins("note", "(writer)", "(head writer)")).
		f("n", eqs("gender", "m")).build()
	return []*query.Query{a, b, c}
}

func group19() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("an:aka_name", "chn:char_name", "ci:cast_info", "cn:company_name",
				"it:info_type", "mc:movie_companies", "mi:movie_info", "n:name",
				"rt:role_type", "t:title").
			j("t.id=mi.movie_id", "t.id=mc.movie_id", "t.id=ci.movie_id",
				"mc.movie_id=ci.movie_id", "mc.movie_id=mi.movie_id", "mi.movie_id=ci.movie_id",
				"cn.id=mc.company_id", "it.id=mi.info_type_id", "n.id=ci.person_id",
				"rt.id=ci.role_id", "n.id=an.person_id", "ci.person_id=an.person_id",
				"chn.id=ci.person_role_id").
			f("cn", eqs("country_code", "[us]")).
			f("it", eqs("info", "release dates")).
			f("rt", eqs("role", "actress")).
			minOf("n.name", "t.title")
	}
	a := base("19a").
		f("ci", eqs("note", "(voice)")).
		f("mc", like("note", "%(USA)%")).
		f("mi", like("info", "USA:%")).
		f("n", and(eqs("gender", "f"), like("name", "%Ann%"))).
		f("t", between("production_year", 2000, 2010)).build()
	b := base("19b").
		f("ci", eqs("note", "(voice)")).
		f("mc", like("note", "%(200%)%")).
		f("mi", like("info", "USA:2%")).
		f("n", and(eqs("gender", "f"), like("name", "%An%"))).
		f("t", eqi("production_year", 2006)).build()
	c := base("19c").
		f("ci", ins("note", "(voice)", "(voice: English version)", "(voice) (uncredited)")).
		f("n", and(eqs("gender", "f"), like("name", "%An%"))).
		f("t", between("production_year", 2000, 2019)).build()
	d := base("19d").
		f("ci", ins("note", "(voice)", "(voice: English version)", "(voice) (uncredited)")).
		f("n", eqs("gender", "f")).
		f("t", between("production_year", 2000, 2019)).build()
	return []*query.Query{a, b, c, d}
}

func group20() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cct1:comp_cast_type", "cct2:comp_cast_type", "chn:char_name",
				"ci:cast_info", "cc:complete_cast", "k:keyword", "kt:kind_type",
				"mk:movie_keyword", "n:name", "t:title").
			j("kt.id=t.kind_id", "t.id=mk.movie_id", "t.id=ci.movie_id", "t.id=cc.movie_id",
				"mk.movie_id=ci.movie_id", "mk.movie_id=cc.movie_id", "ci.movie_id=cc.movie_id",
				"chn.id=ci.person_role_id", "n.id=ci.person_id", "k.id=mk.keyword_id",
				"cct1.id=cc.subject_id", "cct2.id=cc.status_id").
			f("cct1", eqs("kind", "cast")).
			f("kt", eqs("kind", "movie")).
			minOf("t.title")
	}
	a := base("20a").
		f("cct2", like("kind", "%complete%")).
		f("k", ins("keyword", "superhero", "sequel", "marvel-cinematic-universe", "based-on-comic")).
		f("t", gti("production_year", 1950)).build()
	b := base("20b").
		f("cct2", like("kind", "%complete%")).
		f("k", ins("keyword", "superhero", "sequel")).
		f("n", like("name", "%Sam%")).
		f("t", gti("production_year", 2000)).build()
	c := base("20c").
		f("cct2", eqs("kind", "complete+verified")).
		f("k", ins("keyword", "superhero", "sequel", "based-on-comic", "fight")).
		f("t", gti("production_year", 1990)).build()
	return []*query.Query{a, b, c}
}

func group21() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cn:company_name", "ct:company_type", "k:keyword", "lt:link_type",
				"mc:movie_companies", "mi:movie_info", "mk:movie_keyword",
				"ml:movie_link", "t:title").
			j("lt.id=ml.link_type_id", "ml.movie_id=t.id", "t.id=mk.movie_id",
				"mk.keyword_id=k.id", "t.id=mc.movie_id", "mc.company_type_id=ct.id",
				"mc.company_id=cn.id", "mi.movie_id=t.id", "ml.movie_id=mk.movie_id",
				"ml.movie_id=mc.movie_id", "mk.movie_id=mc.movie_id",
				"ml.movie_id=mi.movie_id", "mk.movie_id=mi.movie_id", "mc.movie_id=mi.movie_id").
			f("ct", eqs("kind", "production companies")).
			f("k", eqs("keyword", "sequel")).
			f("lt", like("link", "%follow%")).
			f("mc", isnull("note")).
			minOf("cn.name", "lt.link", "t.title")
	}
	a := base("21a").
		f("cn", or(like("name", "%Film%"), like("name", "%Warner%"))).
		f("mi", ins("info", "Sweden", "Germany", "USA")).
		f("t", between("production_year", 1950, 2000)).build()
	b := base("21b").
		f("cn", or(like("name", "%Film%"), like("name", "%Warner%"))).
		f("mi", ins("info", "Germany", "Sweden")).
		f("t", between("production_year", 2000, 2010)).build()
	c := base("21c").
		f("cn", or(like("name", "%Film%"), like("name", "%Warner%"))).
		f("mi", ins("info", "Sweden", "Germany", "USA", "Japan", "Italy")).
		f("t", between("production_year", 1950, 2010)).build()
	return []*query.Query{a, b, c}
}

func group22() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cn:company_name", "ct:company_type", "it1:info_type", "it2:info_type",
				"k:keyword", "kt:kind_type", "mc:movie_companies", "mi:movie_info",
				"mi_idx:movie_info_idx", "mk:movie_keyword", "t:title").
			j("kt.id=t.kind_id", "t.id=mi.movie_id", "t.id=mk.movie_id",
				"t.id=mi_idx.movie_id", "t.id=mc.movie_id", "mk.movie_id=mi.movie_id",
				"mk.movie_id=mi_idx.movie_id", "mk.movie_id=mc.movie_id",
				"mi.movie_id=mi_idx.movie_id", "mi.movie_id=mc.movie_id",
				"mc.movie_id=mi_idx.movie_id", "k.id=mk.keyword_id",
				"it1.id=mi.info_type_id", "it2.id=mi_idx.info_type_id",
				"ct.id=mc.company_type_id", "cn.id=mc.company_id").
			f("it1", eqs("info", "countries")).
			f("it2", eqs("info", "rating")).
			f("k", ins("keyword", "murder", "blood", "violence", "revenge")).
			minOf("cn.name", "mi_idx.info", "t.title")
	}
	a := base("22a").
		f("cn", eqs("country_code", "[de]")).
		f("kt", ins("kind", "movie", "episode")).
		f("mi", ins("info", "Germany", "Sweden")).
		f("mi_idx", lts("info", "7.0")).
		f("t", gti("production_year", 2008)).build()
	b := base("22b").
		f("cn", eqs("country_code", "[se]")).
		f("kt", ins("kind", "movie", "episode")).
		f("mi", ins("info", "Germany", "Sweden")).
		f("mi_idx", lts("info", "7.0")).
		f("t", gti("production_year", 2009)).build()
	c := base("22c").
		f("cn", eqs("country_code", "[us]")).
		f("kt", ins("kind", "movie", "episode")).
		f("mi", ins("info", "Sweden", "Germany", "USA", "Japan")).
		f("mi_idx", lts("info", "8.5")).
		f("t", gti("production_year", 2005)).build()
	d := base("22d").
		f("cn", eqs("country_code", "[us]")).
		f("kt", ins("kind", "movie", "episode")).
		f("mi", ins("info", "Sweden", "Germany", "USA", "Japan", "Italy")).
		f("mi_idx", lts("info", "8.5")).
		f("t", gti("production_year", 1990)).build()
	return []*query.Query{a, b, c, d}
}

func group23() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cct1:comp_cast_type", "cc:complete_cast", "cn:company_name",
				"ct:company_type", "it1:info_type", "k:keyword", "kt:kind_type",
				"mc:movie_companies", "mi:movie_info", "mk:movie_keyword", "t:title").
			j("kt.id=t.kind_id", "t.id=mi.movie_id", "t.id=mk.movie_id", "t.id=mc.movie_id",
				"t.id=cc.movie_id", "mk.movie_id=mi.movie_id", "mk.movie_id=mc.movie_id",
				"mk.movie_id=cc.movie_id", "mi.movie_id=mc.movie_id", "mi.movie_id=cc.movie_id",
				"mc.movie_id=cc.movie_id", "k.id=mk.keyword_id", "it1.id=mi.info_type_id",
				"cn.id=mc.company_id", "ct.id=mc.company_type_id", "cct1.id=cc.status_id").
			f("cct1", eqs("kind", "complete+verified")).
			f("cn", eqs("country_code", "[us]")).
			f("it1", eqs("info", "release dates")).
			f("kt", eqs("kind", "movie")).
			minOf("kt.kind", "t.title")
	}
	a := base("23a").
		f("mi", like("info", "USA:%")).
		f("t", gti("production_year", 2000)).build()
	b := base("23b").
		f("k", ins("keyword", "murder", "violence", "blood")).
		f("mi", like("info", "USA:%")).
		f("t", gti("production_year", 2000)).build()
	c := base("23c").
		f("mi", like("info", "USA:%")).
		f("t", gti("production_year", 1990)).build()
	return []*query.Query{a, b, c}
}

func group24() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("an:aka_name", "chn:char_name", "ci:cast_info", "cn:company_name",
				"it:info_type", "k:keyword", "mc:movie_companies", "mi:movie_info",
				"mk:movie_keyword", "n:name", "rt:role_type", "t:title").
			j("t.id=mi.movie_id", "t.id=mc.movie_id", "t.id=ci.movie_id", "t.id=mk.movie_id",
				"mc.movie_id=ci.movie_id", "mc.movie_id=mi.movie_id", "mc.movie_id=mk.movie_id",
				"mi.movie_id=ci.movie_id", "mi.movie_id=mk.movie_id", "ci.movie_id=mk.movie_id",
				"cn.id=mc.company_id", "it.id=mi.info_type_id", "n.id=ci.person_id",
				"rt.id=ci.role_id", "n.id=an.person_id", "ci.person_id=an.person_id",
				"chn.id=ci.person_role_id", "k.id=mk.keyword_id").
			f("cn", eqs("country_code", "[us]")).
			f("it", eqs("info", "release dates")).
			f("rt", eqs("role", "actress")).
			f("n", eqs("gender", "f")).
			minOf("chn.name", "n.name", "t.title")
	}
	a := base("24a").
		f("ci", ins("note", "(voice)", "(voice: English version)", "(voice) (uncredited)")).
		f("k", ins("keyword", "hero", "martial-arts", "superhero")).
		f("mi", like("info", "USA:%")).
		f("t", gti("production_year", 2010)).build()
	b := base("24b").
		f("ci", ins("note", "(voice)", "(voice: English version)", "(voice) (uncredited)")).
		f("k", eqs("keyword", "hero")).
		f("mi", like("info", "USA:%")).
		f("t", gti("production_year", 2014)).build()
	return []*query.Query{a, b}
}

func group25() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("ci:cast_info", "it1:info_type", "it2:info_type", "k:keyword",
				"mi:movie_info", "mi_idx:movie_info_idx", "mk:movie_keyword",
				"n:name", "t:title").
			j("t.id=mi.movie_id", "t.id=mi_idx.movie_id", "t.id=ci.movie_id",
				"t.id=mk.movie_id", "ci.movie_id=mi.movie_id", "ci.movie_id=mi_idx.movie_id",
				"ci.movie_id=mk.movie_id", "mi.movie_id=mi_idx.movie_id",
				"mi.movie_id=mk.movie_id", "mi_idx.movie_id=mk.movie_id",
				"n.id=ci.person_id", "it1.id=mi.info_type_id", "it2.id=mi_idx.info_type_id",
				"k.id=mk.keyword_id").
			f("it1", eqs("info", "genres")).
			f("it2", eqs("info", "votes")).
			f("n", eqs("gender", "m")).
			minOf("mi.info", "mi_idx.info", "n.name", "t.title")
	}
	a := base("25a").
		f("ci", ins("note", "(writer)", "(head writer)")).
		f("k", ins("keyword", "murder", "blood", "violence")).
		f("mi", eqs("info", "Horror")).build()
	b := base("25b").
		f("ci", ins("note", "(writer)", "(head writer)")).
		f("k", eqs("keyword", "murder")).
		f("mi", eqs("info", "Horror")).
		f("t", gti("production_year", 2010)).build()
	c := base("25c").
		f("ci", ins("note", "(writer)", "(head writer)", "(producer)")).
		f("k", ins("keyword", "murder", "blood", "violence", "revenge", "fight")).
		f("mi", ins("info", "Horror", "Action", "Thriller")).build()
	return []*query.Query{a, b, c}
}

func group26() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cct1:comp_cast_type", "chn:char_name", "ci:cast_info",
				"cc:complete_cast", "it2:info_type", "k:keyword", "kt:kind_type",
				"mi_idx:movie_info_idx", "mk:movie_keyword", "n:name", "t:title").
			j("kt.id=t.kind_id", "t.id=mk.movie_id", "t.id=ci.movie_id", "t.id=cc.movie_id",
				"t.id=mi_idx.movie_id", "mk.movie_id=ci.movie_id", "mk.movie_id=cc.movie_id",
				"mk.movie_id=mi_idx.movie_id", "ci.movie_id=cc.movie_id",
				"ci.movie_id=mi_idx.movie_id", "cc.movie_id=mi_idx.movie_id",
				"chn.id=ci.person_role_id", "n.id=ci.person_id", "k.id=mk.keyword_id",
				"it2.id=mi_idx.info_type_id", "cct1.id=cc.subject_id").
			f("cct1", eqs("kind", "cast")).
			f("it2", eqs("info", "rating")).
			f("kt", eqs("kind", "movie")).
			minOf("chn.name", "mi_idx.info", "n.name", "t.title")
	}
	a := base("26a").
		f("k", ins("keyword", "superhero", "fight", "martial-arts")).
		f("mi_idx", gts("info", "7.0")).
		f("t", gti("production_year", 2000)).build()
	b := base("26b").
		f("k", ins("keyword", "superhero", "fight")).
		f("mi_idx", gts("info", "8.0")).
		f("t", gti("production_year", 2005)).build()
	c := base("26c").
		f("k", ins("keyword", "superhero", "fight", "martial-arts", "hero", "based-on-comic")).
		f("t", gti("production_year", 2000)).build()
	return []*query.Query{a, b, c}
}

func group27() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cct1:comp_cast_type", "cct2:comp_cast_type", "cn:company_name",
				"ct:company_type", "cc:complete_cast", "k:keyword", "lt:link_type",
				"mc:movie_companies", "mi:movie_info", "mk:movie_keyword",
				"ml:movie_link", "t:title").
			j("lt.id=ml.link_type_id", "ml.movie_id=t.id", "t.id=mk.movie_id",
				"mk.keyword_id=k.id", "t.id=mc.movie_id", "mc.company_type_id=ct.id",
				"mc.company_id=cn.id", "mi.movie_id=t.id", "t.id=cc.movie_id",
				"cct1.id=cc.subject_id", "cct2.id=cc.status_id",
				"ml.movie_id=mk.movie_id", "ml.movie_id=mc.movie_id",
				"mk.movie_id=mc.movie_id", "ml.movie_id=mi.movie_id",
				"mk.movie_id=mi.movie_id", "mc.movie_id=mi.movie_id",
				"ml.movie_id=cc.movie_id", "mk.movie_id=cc.movie_id",
				"mc.movie_id=cc.movie_id", "mi.movie_id=cc.movie_id").
			f("cct1", ins("kind", "cast", "crew")).
			f("cct2", eqs("kind", "complete")).
			f("ct", eqs("kind", "production companies")).
			f("k", eqs("keyword", "sequel")).
			f("lt", like("link", "%follow%")).
			f("mc", isnull("note")).
			minOf("cn.name", "lt.link", "t.title")
	}
	a := base("27a").
		f("cn", or(like("name", "%Film%"), like("name", "%Warner%"))).
		f("mi", ins("info", "Sweden", "Germany", "USA")).
		f("t", between("production_year", 1950, 2000)).build()
	b := base("27b").
		f("cn", or(like("name", "%Film%"), like("name", "%Warner%"))).
		f("mi", ins("info", "Germany", "Sweden")).
		f("t", eqi("production_year", 1998)).build()
	c := base("27c").
		f("cn", or(like("name", "%Film%"), like("name", "%Warner%"))).
		f("mi", ins("info", "Sweden", "Germany", "USA", "Japan", "Italy")).
		f("t", between("production_year", 1950, 2010)).build()
	return []*query.Query{a, b, c}
}

func group28() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cct1:comp_cast_type", "cct2:comp_cast_type", "cn:company_name",
				"ct:company_type", "cc:complete_cast", "it1:info_type", "it2:info_type",
				"k:keyword", "kt:kind_type", "mc:movie_companies", "mi:movie_info",
				"mi_idx:movie_info_idx", "mk:movie_keyword", "t:title").
			j("kt.id=t.kind_id", "t.id=mi.movie_id", "t.id=mk.movie_id",
				"t.id=mi_idx.movie_id", "t.id=mc.movie_id", "t.id=cc.movie_id",
				"mk.movie_id=mi.movie_id", "mk.movie_id=mi_idx.movie_id",
				"mk.movie_id=mc.movie_id", "mk.movie_id=cc.movie_id",
				"mi.movie_id=mi_idx.movie_id", "mi.movie_id=mc.movie_id",
				"mi.movie_id=cc.movie_id", "mc.movie_id=mi_idx.movie_id",
				"mc.movie_id=cc.movie_id", "mi_idx.movie_id=cc.movie_id",
				"k.id=mk.keyword_id", "it1.id=mi.info_type_id",
				"it2.id=mi_idx.info_type_id", "ct.id=mc.company_type_id",
				"cn.id=mc.company_id", "cct1.id=cc.subject_id", "cct2.id=cc.status_id").
			f("cct1", eqs("kind", "crew")).
			f("it1", eqs("info", "countries")).
			f("it2", eqs("info", "rating")).
			f("k", ins("keyword", "murder", "blood", "violence", "revenge")).
			minOf("cn.name", "mi_idx.info", "t.title")
	}
	a := base("28a").
		f("cct2", expr28NotVerified()).
		f("cn", expr11NotPL()).
		f("kt", ins("kind", "movie", "episode")).
		f("mi", ins("info", "Sweden", "Germany", "USA")).
		f("mi_idx", lts("info", "8.5")).
		f("t", gti("production_year", 2000)).build()
	b := base("28b").
		f("cct2", expr28NotVerified()).
		f("cn", expr11NotPL()).
		f("kt", ins("kind", "movie", "episode")).
		f("mi", ins("info", "Sweden", "Germany")).
		f("mi_idx", gts("info", "6.5")).
		f("t", gti("production_year", 2005)).build()
	c := base("28c").
		f("cct2", eqs("kind", "complete")).
		f("cn", expr11NotPL()).
		f("kt", ins("kind", "movie", "episode")).
		f("mi", ins("info", "Sweden", "Germany", "USA", "Japan", "Italy")).
		f("mi_idx", lts("info", "8.5")).
		f("t", gti("production_year", 1990)).build()
	return []*query.Query{a, b, c}
}

func group29() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("an:aka_name", "cct1:comp_cast_type", "cct2:comp_cast_type",
				"chn:char_name", "ci:cast_info", "cc:complete_cast", "it:info_type",
				"it3:info_type", "k:keyword", "mc:movie_companies", "mi:movie_info",
				"mk:movie_keyword", "n:name", "pi:person_info", "rt:role_type", "t:title").
			j("t.id=mi.movie_id", "t.id=mc.movie_id", "t.id=ci.movie_id",
				"t.id=mk.movie_id", "t.id=cc.movie_id", "mc.movie_id=ci.movie_id",
				"mc.movie_id=mi.movie_id", "mc.movie_id=mk.movie_id", "mc.movie_id=cc.movie_id",
				"mi.movie_id=ci.movie_id", "mi.movie_id=mk.movie_id", "mi.movie_id=cc.movie_id",
				"ci.movie_id=mk.movie_id", "ci.movie_id=cc.movie_id", "mk.movie_id=cc.movie_id",
				"it.id=mi.info_type_id", "n.id=ci.person_id", "rt.id=ci.role_id",
				"n.id=an.person_id", "ci.person_id=an.person_id", "chn.id=ci.person_role_id",
				"n.id=pi.person_id", "ci.person_id=pi.person_id", "it3.id=pi.info_type_id",
				"k.id=mk.keyword_id", "cct1.id=cc.subject_id", "cct2.id=cc.status_id").
			f("cct1", eqs("kind", "cast")).
			f("cct2", eqs("kind", "complete+verified")).
			f("it", eqs("info", "release dates")).
			f("it3", eqs("info", "trivia")).
			f("k", eqs("keyword", "hero")).
			f("n", eqs("gender", "f")).
			f("rt", eqs("role", "actress")).
			minOf("chn.name", "n.name", "t.title")
	}
	a := base("29a").
		f("ci", eqs("note", "(voice)")).
		f("mi", like("info", "USA:%")).
		f("t", between("production_year", 2000, 2010)).build()
	b := base("29b").
		f("ci", eqs("note", "(voice)")).
		f("mi", like("info", "USA:2%")).
		f("t", eqi("production_year", 2014)).build()
	c := base("29c").
		f("ci", ins("note", "(voice)", "(voice: English version)", "(voice) (uncredited)")).
		f("t", between("production_year", 2000, 2019)).build()
	return []*query.Query{a, b, c}
}

func group30() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cct1:comp_cast_type", "cct2:comp_cast_type", "ci:cast_info",
				"cc:complete_cast", "it1:info_type", "it2:info_type", "k:keyword",
				"mi:movie_info", "mi_idx:movie_info_idx", "mk:movie_keyword",
				"n:name", "t:title").
			j("t.id=mi.movie_id", "t.id=mi_idx.movie_id", "t.id=ci.movie_id",
				"t.id=mk.movie_id", "t.id=cc.movie_id", "ci.movie_id=mi.movie_id",
				"ci.movie_id=mi_idx.movie_id", "ci.movie_id=mk.movie_id",
				"ci.movie_id=cc.movie_id", "mi.movie_id=mi_idx.movie_id",
				"mi.movie_id=mk.movie_id", "mi.movie_id=cc.movie_id",
				"mi_idx.movie_id=mk.movie_id", "mi_idx.movie_id=cc.movie_id",
				"mk.movie_id=cc.movie_id", "n.id=ci.person_id",
				"it1.id=mi.info_type_id", "it2.id=mi_idx.info_type_id",
				"k.id=mk.keyword_id", "cct1.id=cc.subject_id", "cct2.id=cc.status_id").
			f("cct1", ins("kind", "cast", "crew")).
			f("cct2", eqs("kind", "complete+verified")).
			f("it1", eqs("info", "genres")).
			f("it2", eqs("info", "votes")).
			f("n", eqs("gender", "m")).
			minOf("mi.info", "mi_idx.info", "n.name", "t.title")
	}
	a := base("30a").
		f("ci", ins("note", "(writer)", "(head writer)")).
		f("k", ins("keyword", "murder", "violence", "blood")).
		f("mi", ins("info", "Horror", "Thriller")).
		f("t", gti("production_year", 2000)).build()
	b := base("30b").
		f("ci", ins("note", "(writer)", "(head writer)")).
		f("k", ins("keyword", "murder", "violence")).
		f("mi", eqs("info", "Horror")).
		f("t", gti("production_year", 2010)).build()
	c := base("30c").
		f("ci", ins("note", "(writer)", "(head writer)", "(producer)")).
		f("k", ins("keyword", "murder", "violence", "blood", "revenge", "fight")).
		f("mi", ins("info", "Horror", "Action", "Thriller")).build()
	return []*query.Query{a, b, c}
}

func group31() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("ci:cast_info", "cn:company_name", "it1:info_type", "it2:info_type",
				"k:keyword", "mc:movie_companies", "mi:movie_info",
				"mi_idx:movie_info_idx", "mk:movie_keyword", "n:name", "t:title").
			j("t.id=mi.movie_id", "t.id=mi_idx.movie_id", "t.id=ci.movie_id",
				"t.id=mk.movie_id", "t.id=mc.movie_id", "ci.movie_id=mi.movie_id",
				"ci.movie_id=mi_idx.movie_id", "ci.movie_id=mk.movie_id",
				"ci.movie_id=mc.movie_id", "mi.movie_id=mi_idx.movie_id",
				"mi.movie_id=mk.movie_id", "mi.movie_id=mc.movie_id",
				"mi_idx.movie_id=mk.movie_id", "mi_idx.movie_id=mc.movie_id",
				"mk.movie_id=mc.movie_id", "n.id=ci.person_id",
				"it1.id=mi.info_type_id", "it2.id=mi_idx.info_type_id",
				"k.id=mk.keyword_id", "cn.id=mc.company_id").
			f("it1", eqs("info", "genres")).
			f("it2", eqs("info", "votes")).
			minOf("mi.info", "mi_idx.info", "n.name", "t.title")
	}
	a := base("31a").
		f("ci", ins("note", "(writer)", "(head writer)")).
		f("cn", like("name", "Film%")).
		f("k", ins("keyword", "murder", "violence", "blood")).
		f("mi", ins("info", "Horror", "Thriller")).
		f("n", eqs("gender", "m")).build()
	b := base("31b").
		f("ci", ins("note", "(writer)", "(head writer)")).
		f("cn", like("name", "Film%")).
		f("k", eqs("keyword", "murder")).
		f("mi", eqs("info", "Horror")).
		f("n", eqs("gender", "m")).
		f("t", gti("production_year", 2000)).build()
	c := base("31c").
		f("ci", ins("note", "(writer)", "(head writer)", "(producer)")).
		f("cn", expr11NotPL()).
		f("k", ins("keyword", "murder", "violence", "blood", "revenge", "fight")).
		f("mi", ins("info", "Horror", "Action", "Thriller")).build()
	return []*query.Query{a, b, c}
}

func group32() []*query.Query {
	base := func(name, kw string) *query.Query {
		return nq(name).
			t("k:keyword", "lt:link_type", "mk:movie_keyword", "ml:movie_link",
				"t1:title", "t2:title").
			j("mk.keyword_id=k.id", "t1.id=ml.movie_id", "t2.id=ml.linked_movie_id",
				"ml.link_type_id=lt.id", "mk.movie_id=t1.id").
			f("k", eqs("keyword", kw)).
			minOf("lt.link", "t1.title", "t2.title").
			build()
	}
	return []*query.Query{
		base("32a", "10,000-mile-club"),
		base("32b", "character-name-in-title"),
	}
}

func group33() []*query.Query {
	base := func(name string) *qb {
		return nq(name).
			t("cn1:company_name", "cn2:company_name", "it1:info_type", "it2:info_type",
				"kt1:kind_type", "kt2:kind_type", "lt:link_type", "mc1:movie_companies",
				"mc2:movie_companies", "mi_idx1:movie_info_idx", "mi_idx2:movie_info_idx",
				"t1:title", "t2:title").
			j("lt.id=ml.link_type_id", "t1.id=ml.movie_id", "t2.id=ml.linked_movie_id",
				"it1.id=mi_idx1.info_type_id", "t1.id=mi_idx1.movie_id",
				"kt1.id=t1.kind_id", "cn1.id=mc1.company_id", "t1.id=mc1.movie_id",
				"ml.movie_id=mi_idx1.movie_id", "ml.movie_id=mc1.movie_id",
				"mi_idx1.movie_id=mc1.movie_id", "it2.id=mi_idx2.info_type_id",
				"t2.id=mi_idx2.movie_id", "kt2.id=t2.kind_id", "cn2.id=mc2.company_id",
				"t2.id=mc2.movie_id", "ml.linked_movie_id=mi_idx2.movie_id",
				"ml.linked_movie_id=mc2.movie_id", "mi_idx2.movie_id=mc2.movie_id").
			t("ml:movie_link").
			f("it1", eqs("info", "rating")).
			f("it2", eqs("info", "rating")).
			f("kt1", ins("kind", "tv series")).
			f("kt2", ins("kind", "tv series")).
			minOf("cn1.name", "cn2.name", "mi_idx1.info", "mi_idx2.info", "t1.title", "t2.title")
	}
	a := base("33a").
		f("cn1", eqs("country_code", "[us]")).
		f("lt", ins("link", "sequel", "follows", "followed by")).
		f("mi_idx2", lts("info", "3.0")).
		f("t2", between("production_year", 2005, 2008)).build()
	b := base("33b").
		f("cn1", eqs("country_code", "[it]")).
		f("lt", like("link", "%follow%")).
		f("mi_idx2", lts("info", "3.0")).
		f("t2", eqi("production_year", 2007)).build()
	c := base("33c").
		f("cn1", expr11NotPL()).
		f("lt", ins("link", "sequel", "follows", "followed by")).
		f("mi_idx2", lts("info", "3.5")).
		f("t2", between("production_year", 2000, 2010)).build()
	return []*query.Query{a, b, c}
}

// expr11NotPL is the recurring cn.country_code <> '[pl]' predicate of JOB.
func expr11NotPL() expr.Pred {
	return expr.Cmp{Col: "country_code", Op: expr.Ne, Val: table.StrVal("[pl]")}
}

// expr28NotVerified is cct2.kind <> 'complete+verified'.
func expr28NotVerified() expr.Pred {
	return expr.Cmp{Col: "kind", Op: expr.Ne, Val: table.StrVal("complete+verified")}
}
