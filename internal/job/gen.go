package job

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
	"hybridndp/internal/kv"
	"hybridndp/internal/lsm"
	"hybridndp/internal/table"
)

// Base row counts, proportional to the IMDB dataset of the paper (≈74 M rows
// over 21 tables; the largest tables hold about half the records). Scale 1.0
// yields ≈3.9 M rows; the paper's full volume corresponds to scale ≈19.
var baseCounts = map[string]int{
	"title":           250_000,
	"cast_info":       1_000_000,
	"movie_info":      600_000,
	"movie_keyword":   450_000,
	"name":            400_000,
	"char_name":       300_000,
	"person_info":     300_000,
	"movie_companies": 260_000,
	"movie_info_idx":  140_000,
	"aka_name":        90_000,
	"aka_title":       36_000,
	"company_name":    23_500,
	"complete_cast":   13_500,
	"keyword":         13_400,
	"movie_link":      3_000,
}

// Dataset is a loaded JOB database.
type Dataset struct {
	DB     *kv.DB
	Cat    *table.Catalog
	Model  hw.Model
	Flash  *flash.Flash
	Scale  float64
	Counts map[string]int
}

// DefaultSeed is the generation seed behind Load; every dataset loaded with
// it (at one scale) is bit-for-bit identical.
const DefaultSeed int64 = 20250325

// Load generates the full JOB dataset at the given scale into a fresh nKV
// instance over simulated flash, flushes it and collects statistics. The
// generation is deterministic for a given scale.
func Load(scale float64, m hw.Model) (*Dataset, error) {
	return LoadSeeded(scale, m, DefaultSeed)
}

// LoadSeeded is Load with an explicit generation seed, threaded through both
// the row generator and the LSM memtable height RNGs. Seed 0 means
// DefaultSeed.
func LoadSeeded(scale float64, m hw.Model, seed int64) (*Dataset, error) {
	if scale <= 0 {
		scale = 0.02
	}
	if seed == 0 {
		seed = DefaultSeed
	}
	fl := flash.New(m, 0)
	lsmCfg := lsm.DefaultConfig()
	lsmCfg.Seed = seed
	db := kv.Open(fl, m, lsmCfg)
	cat := table.NewCatalog(db)
	for _, s := range Schemas() {
		if _, err := cat.CreateTable(s); err != nil {
			return nil, err
		}
	}
	ds := &Dataset{DB: db, Cat: cat, Model: m, Flash: fl, Scale: scale, Counts: map[string]int{}}
	g := &gen{ds: ds, rng: rand.New(rand.NewSource(seed)), bufIdx: map[string]int{}}
	if err := g.run(); err != nil {
		return nil, err
	}
	if err := db.FlushAll(); err != nil {
		return nil, err
	}
	// Scale the device memory reservations (and shared-buffer slot) with the
	// generated dataset so the paper's memory-pressure ratios hold: 17 MB
	// selection and 7 MB join buffers against a 16 GB dataset become
	// proportionally smaller buffers against our scaled-down data. Without
	// this, small test datasets would fit entirely into the device buffers
	// and whole-plan offloading would never hit the wall the paper reports.
	const paperDatasetBytes = 16 << 30
	f := float64(fl.Used()) / float64(paperDatasetBytes)
	if f > 1 {
		f = 1
	}
	scaleB := func(b int64, floor int64) int64 {
		s := int64(float64(b) * f)
		if s < floor {
			s = floor
		}
		return s
	}
	ds.Model.SelBufBytes = scaleB(m.SelBufBytes, 64<<10)
	ds.Model.JoinBufBytes = scaleB(m.JoinBufBytes, 32<<10)
	ds.Model.DeviceNDPBudget = scaleB(m.DeviceNDPBudget, 2<<20)
	ds.Model.SharedBufferSlot = scaleB(m.SharedBufferSlot, 8<<10)
	// Pre-collect statistics so planning does not pay a first-use penalty.
	for _, name := range cat.Tables() {
		t, err := cat.Table(name)
		if err != nil {
			return nil, err
		}
		t.CollectStats()
	}
	return ds, nil
}

type gen struct {
	ds  *Dataset
	rng *rand.Rand

	// Generation is two-phase: phase 1 draws every random value from the
	// single rng stream in the exact order the sequential loader used and
	// buffers the rows per table; phase 2 inserts the buffered tables across
	// worker goroutines. Tables are independent — each owns its LSM trees,
	// and memtable skiplist RNGs derive per-tree from the base seed — so the
	// loaded contents are bit-for-bit identical to a sequential load
	// regardless of worker interleaving; only wall-clock time changes.
	buf    []*tableBuf
	bufIdx map[string]int // table name → position in buf
}

// tableBuf holds one table's generated rows awaiting insertion.
type tableBuf struct {
	name string
	rows [][]table.Value
}

func (g *gen) n(tbl string) int {
	base := baseCounts[tbl]
	n := int(float64(base) * g.ds.Scale)
	if n < 64 {
		n = 64
	}
	return n
}

// zipfID draws a 1-based id from [1,n] skewed toward low ids, modelling the
// popularity skew of IMDB foreign keys.
func (g *gen) zipfID(n int) int32 {
	u := g.rng.Float64()
	return 1 + int32(math.Pow(u, 1.7)*float64(n-1))
}

func (g *gen) uniformID(n int) int32 { return 1 + int32(g.rng.Intn(n)) }

// insert buffers one generated row; the actual encoding and LSM insertion
// happens in insertTables, in parallel across tables.
func (g *gen) insert(tbl string, vals ...table.Value) error {
	i, ok := g.bufIdx[tbl]
	if !ok {
		i = len(g.buf)
		g.bufIdx[tbl] = i
		g.buf = append(g.buf, &tableBuf{name: tbl})
	}
	g.buf[i].rows = append(g.buf[i].rows, vals)
	return nil
}

// insertTables drains the buffered tables across min(GOMAXPROCS, tables)
// worker goroutines, largest table first so the long poles start early. Rows
// within a table insert in generation order; interleaving across tables only
// reorders the shared flash FileID sequence, which nothing virtual-time
// visible observes (FlushAll already flushes families in map order).
func (g *gen) insertTables() error {
	order := make([]int, len(g.buf))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(g.buf[order[a]].rows) > len(g.buf[order[b]].rows)
	})
	workers := runtime.GOMAXPROCS(0)
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, len(order))
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(order) {
					return
				}
				errs[i] = g.insertTable(g.buf[order[i]])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) insertTable(b *tableBuf) error {
	t, err := g.ds.Cat.Table(b.name)
	if err != nil {
		return err
	}
	for _, vals := range b.rows {
		if err := t.Insert(vals); err != nil {
			return fmt.Errorf("job: inserting into %s: %v", b.name, err)
		}
	}
	b.rows = nil
	return nil
}

func iv(v int32) table.Value  { return table.IntVal(v) }
func sv(s string) table.Value { return table.StrVal(s) }
func nv() table.Value         { return table.NullVal() }

func (g *gen) run() error {
	if err := g.dims(); err != nil {
		return err
	}
	steps := []func() error{
		g.titles, g.names, g.charNames, g.companyNames, g.keywords,
		g.movieCompanies, g.movieInfo, g.movieInfoIdx, g.movieKeyword,
		g.castInfo, g.personInfo, g.akaNames, g.akaTitles,
		g.completeCast, g.movieLinks,
	}
	for _, s := range steps {
		if err := s(); err != nil {
			return err
		}
	}
	if err := g.insertTables(); err != nil {
		return err
	}
	for tbl := range baseCounts {
		t, err := g.ds.Cat.Table(tbl)
		if err != nil {
			return err
		}
		g.ds.Counts[tbl] = int(t.RowCount())
	}
	return nil
}

func (g *gen) dims() error {
	for i, k := range CompanyTypes {
		if err := g.insert("company_type", iv(int32(i+1)), sv(k)); err != nil {
			return err
		}
	}
	for i, k := range KindTypes {
		if err := g.insert("kind_type", iv(int32(i+1)), sv(k)); err != nil {
			return err
		}
	}
	for i, k := range LinkTypes {
		if err := g.insert("link_type", iv(int32(i+1)), sv(k)); err != nil {
			return err
		}
	}
	for i, k := range RoleTypes {
		if err := g.insert("role_type", iv(int32(i+1)), sv(k)); err != nil {
			return err
		}
	}
	for i, k := range CompCastTypes {
		if err := g.insert("comp_cast_type", iv(int32(i+1)), sv(k)); err != nil {
			return err
		}
	}
	for i := 1; i <= NumInfoTypes; i++ {
		name := fmt.Sprintf("info_%03d", i)
		if i <= len(InfoTypes) {
			name = InfoTypes[i-1]
		}
		if err := g.insert("info_type", iv(int32(i)), sv(name)); err != nil {
			return err
		}
	}
	return nil
}

var titleWords = []string{
	"Champion", "Money", "Freddy", "Jason", "Kung Fu", "Panda",
	"Dark", "Night", "Star", "Gold", "Dragon", "Shadow",
}

func (g *gen) titles() error {
	n := g.n("title")
	for i := 1; i <= n; i++ {
		title := fmt.Sprintf("movie %07d", i)
		if g.rng.Intn(10) == 0 {
			title = fmt.Sprintf("%s %07d", titleWords[g.rng.Intn(len(titleWords))], i)
		}
		// kind skew: most titles are movies or episodes.
		kind := int32(1)
		switch r := g.rng.Intn(100); {
		case r < 55:
			kind = 1 // movie
		case r < 70:
			kind = 6 // episode
		case r < 80:
			kind = 4 // tv series
		default:
			kind = g.uniformID(len(KindTypes))
		}
		// production year skewed toward recent decades.
		year := table.Value(nv())
		if g.rng.Intn(20) != 0 {
			y := 2019 - int32(math.Pow(g.rng.Float64(), 2.5)*120)
			year = iv(y)
		}
		var episode table.Value = nv()
		if kind == 6 {
			episode = iv(int32(g.rng.Intn(500)))
		}
		if err := g.insert("title", iv(int32(i)), sv(title), iv(kind), year, episode); err != nil {
			return err
		}
	}
	return nil
}

var nameWords = []string{"Tim", "Bob", "Ann", "Eva", "Max", "Lee", "Kim", "Sam"}

func (g *gen) names() error {
	n := g.n("name")
	for i := 1; i <= n; i++ {
		letter := string(rune('A' + g.rng.Intn(26)))
		nm := fmt.Sprintf("%s name %06d", letter, i)
		if g.rng.Intn(20) == 0 {
			nm = fmt.Sprintf("%s %s %06d", letter, nameWords[g.rng.Intn(len(nameWords))], i)
		}
		var gender table.Value
		switch r := g.rng.Intn(100); {
		case r < 45:
			gender = sv("m")
		case r < 80:
			gender = sv("f")
		default:
			gender = nv()
		}
		pcode := table.Value(nv())
		if g.rng.Intn(3) != 0 {
			pcode = sv(fmt.Sprintf("%c%d", letter[0], g.rng.Intn(1000)))
		}
		if err := g.insert("name", iv(int32(i)), sv(nm), gender, pcode); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) charNames() error {
	n := g.n("char_name")
	for i := 1; i <= n; i++ {
		if err := g.insert("char_name", iv(int32(i)), sv(fmt.Sprintf("character %06d", i))); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) companyNames() error {
	n := g.n("company_name")
	for i := 1; i <= n; i++ {
		nm := fmt.Sprintf("company %05d", i)
		switch g.rng.Intn(20) {
		case 0:
			nm = fmt.Sprintf("Warner company %05d", i)
		case 1:
			nm = fmt.Sprintf("Film studio %05d", i)
		case 2:
			nm = fmt.Sprintf("Polygram %05d", i)
		}
		// Country skew: US-heavy, as in IMDB.
		var cc table.Value
		switch r := g.rng.Intn(100); {
		case r < 40:
			cc = sv("[us]")
		case r < 92:
			cc = sv(CountryCodes[1+g.rng.Intn(len(CountryCodes)-1)])
		default:
			cc = nv()
		}
		if err := g.insert("company_name", iv(int32(i)), sv(nm), cc); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) keywords() error {
	n := g.n("keyword")
	for i := 1; i <= n; i++ {
		kw := fmt.Sprintf("kw %05d", i)
		if i <= len(NamedKeywords) {
			kw = NamedKeywords[i-1]
		}
		if err := g.insert("keyword", iv(int32(i)), sv(kw)); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) movieCompanies() error {
	n := g.n("movie_companies")
	nTitle := g.n("title")
	nComp := g.n("company_name")
	for i := 1; i <= n; i++ {
		var note table.Value
		switch r := g.rng.Intn(100); {
		case r < 30:
			note = nv()
		case r < 45:
			note = sv(CompanyNotes[g.rng.Intn(3)]) // the three hot patterns
		default:
			note = sv(CompanyNotes[g.rng.Intn(len(CompanyNotes))])
		}
		ctype := int32(1)
		if g.rng.Intn(100) < 45 {
			ctype = 2 // distributors
		} else if g.rng.Intn(10) == 0 {
			ctype = g.uniformID(len(CompanyTypes))
		}
		if err := g.insert("movie_companies", iv(int32(i)),
			iv(g.zipfID(nTitle)), iv(g.zipfID(nComp)), iv(ctype), note); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) movieInfo() error {
	n := g.n("movie_info")
	nTitle := g.n("title")
	for i := 1; i <= n; i++ {
		var itID int32
		var info string
		switch r := g.rng.Intn(100); {
		case r < 25:
			itID = InfoTypeID("genres")
			info = Genres[g.rng.Intn(len(Genres))]
		case r < 45:
			itID = InfoTypeID("languages")
			info = Languages[g.rng.Intn(len(Languages))]
		case r < 65:
			itID = InfoTypeID("release dates")
			info = fmt.Sprintf("%s:%d", Countries[g.rng.Intn(len(Countries))], 1950+g.rng.Intn(70))
		case r < 75:
			itID = InfoTypeID("budget")
			info = fmt.Sprintf("$%d", 1000*(1+g.rng.Intn(200000)))
		case r < 85:
			itID = InfoTypeID("countries")
			info = Countries[g.rng.Intn(len(Countries))]
		default:
			itID = int32(13 + g.rng.Intn(NumInfoTypes-13))
			info = fmt.Sprintf("val %05d", g.rng.Intn(10000))
		}
		var note table.Value = nv()
		if g.rng.Intn(4) == 0 {
			note = sv(fmt.Sprintf("note %04d", g.rng.Intn(1000)))
		}
		if err := g.insert("movie_info", iv(int32(i)),
			iv(g.zipfID(nTitle)), iv(itID), sv(info), note); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) movieInfoIdx() error {
	n := g.n("movie_info_idx")
	nTitle := g.n("title")
	i := 1
	// Exactly 250 top-250 and 10 bottom-10 entries (scaled floor of 10).
	top := 250
	if top > nTitle {
		top = nTitle
	}
	for r := 1; r <= top && i <= n; r++ {
		if err := g.insert("movie_info_idx", iv(int32(i)),
			iv(int32(r)), iv(InfoTypeID("top_250_rank")), sv(fmt.Sprintf("%d", r))); err != nil {
			return err
		}
		i++
	}
	for r := 1; r <= 10 && i <= n; r++ {
		if err := g.insert("movie_info_idx", iv(int32(i)),
			iv(g.uniformID(nTitle)), iv(InfoTypeID("bottom_10_rank")), sv(fmt.Sprintf("%d", r))); err != nil {
			return err
		}
		i++
	}
	for ; i <= n; i++ {
		var itID int32
		var info string
		if g.rng.Intn(2) == 0 {
			itID = InfoTypeID("rating")
			info = fmt.Sprintf("%d.%d", 1+g.rng.Intn(9), g.rng.Intn(10))
		} else {
			itID = InfoTypeID("votes")
			info = fmt.Sprintf("%d", 5+g.rng.Intn(500000))
		}
		if err := g.insert("movie_info_idx", iv(int32(i)),
			iv(g.zipfID(nTitle)), iv(itID), sv(info)); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) movieKeyword() error {
	n := g.n("movie_keyword")
	nTitle := g.n("title")
	nKw := g.n("keyword")
	for i := 1; i <= n; i++ {
		if err := g.insert("movie_keyword", iv(int32(i)),
			iv(g.zipfID(nTitle)), iv(g.zipfID(nKw))); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) castInfo() error {
	n := g.n("cast_info")
	nTitle := g.n("title")
	nName := g.n("name")
	nChar := g.n("char_name")
	for i := 1; i <= n; i++ {
		var note table.Value
		switch r := g.rng.Intn(100); {
		case r < 45:
			note = nv()
		case r < 65:
			note = sv(CastNotes[g.rng.Intn(3)])
		default:
			note = sv(CastNotes[g.rng.Intn(len(CastNotes))])
		}
		var prole table.Value = nv()
		if g.rng.Intn(3) == 0 {
			prole = iv(g.zipfID(nChar))
		}
		var order table.Value = nv()
		if g.rng.Intn(2) == 0 {
			order = iv(int32(1 + g.rng.Intn(50)))
		}
		role := g.uniformID(len(RoleTypes))
		if g.rng.Intn(100) < 55 { // actors/actresses dominate
			role = int32(1 + g.rng.Intn(2))
		}
		if err := g.insert("cast_info", iv(int32(i)),
			iv(g.zipfID(nName)), iv(g.zipfID(nTitle)), prole, note, order, iv(role)); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) personInfo() error {
	n := g.n("person_info")
	nName := g.n("name")
	for i := 1; i <= n; i++ {
		itID := InfoTypeID("mini biography")
		if g.rng.Intn(3) != 0 {
			itID = int32(7 + g.rng.Intn(3)) // bio, trivia, height
		}
		var note table.Value = nv()
		if g.rng.Intn(5) == 0 {
			note = sv("Volker Boehm")
		}
		if err := g.insert("person_info", iv(int32(i)),
			iv(g.zipfID(nName)), iv(itID), sv(fmt.Sprintf("pi %05d", g.rng.Intn(100000))), note); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) akaNames() error {
	n := g.n("aka_name")
	nName := g.n("name")
	for i := 1; i <= n; i++ {
		if err := g.insert("aka_name", iv(int32(i)),
			iv(g.zipfID(nName)), sv(fmt.Sprintf("aka %06d", i))); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) akaTitles() error {
	n := g.n("aka_title")
	nTitle := g.n("title")
	for i := 1; i <= n; i++ {
		if err := g.insert("aka_title", iv(int32(i)),
			iv(g.zipfID(nTitle)), sv(fmt.Sprintf("aka title %06d", i)), iv(g.uniformID(len(KindTypes)))); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) completeCast() error {
	n := g.n("complete_cast")
	nTitle := g.n("title")
	for i := 1; i <= n; i++ {
		if err := g.insert("complete_cast", iv(int32(i)),
			iv(g.zipfID(nTitle)), iv(int32(1+g.rng.Intn(2))), iv(int32(3+g.rng.Intn(2)))); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) movieLinks() error {
	n := g.n("movie_link")
	nTitle := g.n("title")
	// Linked movies are the popular ones (sequels, remakes of hits): draw
	// from the hottest 2% of titles. This reproduces the paper's Exp 4
	// characteristic where joining movie_link against movie_keyword fans out
	// massively (≈8.5 M results from a 4.5 M-row probe side).
	hot := nTitle / 50
	if hot < 8 {
		hot = 8
	}
	for i := 1; i <= n; i++ {
		if err := g.insert("movie_link", iv(int32(i)),
			iv(g.zipfID(hot)), iv(g.zipfID(hot)), iv(g.uniformID(len(LinkTypes)))); err != nil {
			return err
		}
	}
	return nil
}
