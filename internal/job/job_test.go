package job

import (
	"testing"

	"hybridndp/internal/hw"
)

func TestQueryCountIs113(t *testing.T) {
	qs := Queries()
	if len(qs) != 113 {
		t.Fatalf("JOB has 113 queries, got %d", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if seen[q.Name] {
			t.Fatalf("duplicate query name %q", q.Name)
		}
		seen[q.Name] = true
	}
	order, byGroup := Groups()
	if len(order) != 33 {
		t.Fatalf("JOB has 33 groups, got %d", len(order))
	}
	total := 0
	for _, g := range order {
		total += len(byGroup[g])
	}
	if total != 113 {
		t.Fatalf("groups cover %d queries", total)
	}
}

func TestLoadTinyAndValidateAllQueries(t *testing.T) {
	ds, err := Load(0.004, hw.Cosmos())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Counts["title"] == 0 || ds.Counts["cast_info"] == 0 {
		t.Fatalf("counts missing: %+v", ds.Counts)
	}
	for _, q := range Queries() {
		if err := q.Validate(ds.Cat); err != nil {
			t.Errorf("query %s invalid: %v", q.Name, err)
		}
	}
	for _, full := range []bool{true, false} {
		q := Listing2(1000, full)
		if err := q.Validate(ds.Cat); err != nil {
			t.Errorf("listing2 full=%v invalid: %v", full, err)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, err := Load(0.002, hw.Cosmos())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(0.002, hw.Cosmos())
	if err != nil {
		t.Fatal(err)
	}
	for tbl, n := range a.Counts {
		if b.Counts[tbl] != n {
			t.Fatalf("non-deterministic counts for %s: %d vs %d", tbl, n, b.Counts[tbl])
		}
	}
	// Same sampled content.
	ta, _ := a.Cat.Table("title")
	tb, _ := b.Cat.Table("title")
	sa := ta.CollectStats()
	sb := tb.CollectStats()
	if len(sa.Sample) != len(sb.Sample) {
		t.Fatal("sample sizes differ")
	}
	for i := range sa.Sample {
		if sa.Sample[i].GetByName("title").Str != sb.Sample[i].GetByName("title").Str {
			t.Fatal("sampled titles differ between identical loads")
		}
	}
}

func TestInfoTypeDomains(t *testing.T) {
	if InfoTypeID("top_250_rank") < 0 || InfoTypeID("rating") < 0 {
		t.Fatal("named info types missing")
	}
	if InfoTypeID("nope") != -1 {
		t.Fatal("unknown info type should be -1")
	}
}
