// Package job ports the Join-Order Benchmark (Leis et al., VLDB 2015) to the
// hybridNDP reproduction: the 21-table IMDB schema with the paper's
// fixed-width record adaptation (4-byte integers, padded/trimmed CHAR
// fields), a deterministic synthetic data generator preserving the relative
// table sizes and foreign-key skew of the original dataset, and all 113
// benchmark queries (33 groups with their a..f variants).
package job

import "hybridndp/internal/table"

func col(name string, t table.ColType, size int, nullable bool) table.Column {
	return table.Column{Name: name, Type: t, Size: size, Nullable: nullable}
}

func ic(name string) table.Column         { return col(name, table.Int32, 4, false) }
func icn(name string) table.Column        { return col(name, table.Int32, 4, true) }
func cc(name string, n int) table.Column  { return col(name, table.Char, n, false) }
func ccn(name string, n int) table.Column { return col(name, table.Char, n, true) }

func idx(col string) table.SecondaryIndex {
	return table.SecondaryIndex{Name: "idx_" + col, Column: col}
}

// Schemas returns the 21 JOB table schemas. Fact tables carry secondary
// indices on their foreign keys, as in the paper's setup ("most of the
// tables have multiple secondary indices").
func Schemas() []*table.Schema {
	return []*table.Schema{
		table.MustSchema("aka_name", []table.Column{
			ic("id"), ic("person_id"), cc("name", 24),
		}, "id", idx("person_id")),

		table.MustSchema("aka_title", []table.Column{
			ic("id"), ic("movie_id"), cc("title", 24), ic("kind_id"),
		}, "id", idx("movie_id")),

		table.MustSchema("cast_info", []table.Column{
			ic("id"), ic("person_id"), ic("movie_id"), icn("person_role_id"),
			ccn("note", 24), icn("nr_order"), ic("role_id"),
		}, "id", idx("person_id"), idx("movie_id"), idx("role_id"), idx("person_role_id")),

		table.MustSchema("char_name", []table.Column{
			ic("id"), cc("name", 24),
		}, "id"),

		table.MustSchema("comp_cast_type", []table.Column{
			ic("id"), cc("kind", 20),
		}, "id"),

		table.MustSchema("company_name", []table.Column{
			ic("id"), cc("name", 24), ccn("country_code", 8),
		}, "id", idx("country_code")),

		table.MustSchema("company_type", []table.Column{
			ic("id"), cc("kind", 28),
		}, "id"),

		table.MustSchema("complete_cast", []table.Column{
			ic("id"), ic("movie_id"), ic("subject_id"), ic("status_id"),
		}, "id", idx("movie_id"), idx("subject_id"), idx("status_id")),

		table.MustSchema("info_type", []table.Column{
			ic("id"), cc("info", 16),
		}, "id"),

		table.MustSchema("keyword", []table.Column{
			ic("id"), cc("keyword", 28),
		}, "id", idx("keyword")),

		table.MustSchema("kind_type", []table.Column{
			ic("id"), cc("kind", 16),
		}, "id"),

		table.MustSchema("link_type", []table.Column{
			ic("id"), cc("link", 16),
		}, "id"),

		table.MustSchema("movie_companies", []table.Column{
			ic("id"), ic("movie_id"), ic("company_id"), ic("company_type_id"),
			ccn("note", 40),
		}, "id", idx("movie_id"), idx("company_id"), idx("company_type_id")),

		table.MustSchema("movie_info", []table.Column{
			ic("id"), ic("movie_id"), ic("info_type_id"), cc("info", 16),
			ccn("note", 16),
		}, "id", idx("movie_id"), idx("info_type_id")),

		table.MustSchema("movie_info_idx", []table.Column{
			ic("id"), ic("movie_id"), ic("info_type_id"), cc("info", 8),
		}, "id", idx("movie_id"), idx("info_type_id")),

		table.MustSchema("movie_keyword", []table.Column{
			ic("id"), ic("movie_id"), ic("keyword_id"),
		}, "id", idx("movie_id"), idx("keyword_id")),

		table.MustSchema("movie_link", []table.Column{
			ic("id"), ic("movie_id"), ic("linked_movie_id"), ic("link_type_id"),
		}, "id", idx("movie_id"), idx("linked_movie_id"), idx("link_type_id")),

		table.MustSchema("name", []table.Column{
			ic("id"), cc("name", 24), ccn("gender", 4), ccn("name_pcode_cf", 8),
		}, "id", idx("gender")),

		table.MustSchema("person_info", []table.Column{
			ic("id"), ic("person_id"), ic("info_type_id"), cc("info", 16),
			ccn("note", 16),
		}, "id", idx("person_id"), idx("info_type_id")),

		table.MustSchema("role_type", []table.Column{
			ic("id"), cc("role", 20),
		}, "id"),

		table.MustSchema("title", []table.Column{
			ic("id"), cc("title", 24), ic("kind_id"), icn("production_year"),
			icn("episode_nr"),
		}, "id", idx("kind_id"), idx("production_year")),
	}
}

// Dimension value domains shared by the generator and the queries.
var (
	CompanyTypes = []string{
		"production companies", "distributors",
		"special effects companies", "miscellaneous companies",
	}
	KindTypes = []string{
		"movie", "tv movie", "video movie", "tv series",
		"video game", "episode", "tv mini series",
	}
	LinkTypes = []string{
		"follows", "followed by", "remake of", "remade as",
		"references", "referenced in", "spoofs", "spoofed in",
		"features", "featured in", "spin off from", "spin off",
		"version of", "similar to", "edited into", "edited from",
		"alternate language version of", "unknown link",
	}
	RoleTypes = []string{
		"actor", "actress", "producer", "writer", "cinematographer",
		"composer", "costume designer", "director", "editor", "guest",
		"miscellaneous crew", "production designer",
	}
	CompCastTypes = []string{"cast", "crew", "complete", "complete+verified"}

	// InfoTypes holds the first (named) info types; ids are 1-based. The
	// underscored spellings follow the paper's JOB adaptation (Listing 1).
	InfoTypes = []string{
		"genres", "languages", "release dates", "budget", "rating",
		"votes", "mini biography", "trivia", "height", "top_250_rank",
		"bottom_10_rank", "countries",
	}
	NumInfoTypes = 113

	Genres = []string{
		"Drama", "Comedy", "Documentary", "Horror", "Action",
		"Thriller", "Romance", "Sci-Fi", "Adventure", "Crime",
	}
	Languages = []string{
		"English", "German", "French", "Spanish", "Japanese",
		"Italian", "Swedish", "Danish", "Portuguese",
	}
	Countries = []string{
		"USA", "Germany", "France", "Spain", "Japan",
		"Italy", "Sweden", "Denmark", "UK",
	}
	CountryCodes = []string{
		"[us]", "[de]", "[fr]", "[es]", "[jp]", "[it]", "[se]", "[dk]", "[gb]",
	}
	// NamedKeywords are the low-id hot keywords queries reference.
	NamedKeywords = []string{
		"character-name-in-title", "superhero", "sequel", "based-on-novel",
		"murder", "blood", "violence", "marvel-cinematic-universe",
		"based-on-comic", "revenge", "magnet", "internet",
		"10,000-mile-club", "hero", "martial-arts", "fight",
	}
	// CastNotes is the note domain of cast_info.
	CastNotes = []string{
		"(voice)", "(uncredited)", "(producer)", "(executive producer)",
		"(voice) (uncredited)", "(writer)", "(head writer)",
		"(voice: English version)", "(archive footage)", "(as himself)",
	}
	// CompanyNotes is the note domain of movie_companies.
	CompanyNotes = []string{
		"(co-production)", "(presents)", "(as Metro-Goldwyn-Mayer Pictures)",
		"(VHS)", "(USA)", "(worldwide)", "(2006) (USA) (DVD)",
		"(2013) (worldwide) (TV)", "(theatrical)", "(video)",
	}
)

// InfoTypeID returns the 1-based id of a named info type, or -1.
func InfoTypeID(name string) int32 {
	for i, n := range InfoTypes {
		if n == name {
			return int32(i + 1)
		}
	}
	return -1
}
