package job

import (
	"hybridndp/internal/query"
)

// ExtensionQueries exercises operations nKV supports in-situ but JOB itself
// never uses: GROUP BY with COUNT/SUM/AVG aggregation pipelines (paper §2.1
// lists GROUP BY and aggregation functions among the offloadable operation
// types). They extend the benchmark the way the paper's "complete NDP
// pipelines" claim implies.
func ExtensionQueries() []*query.Query {
	perKind := nq("ext-movies-per-kind").
		t("t:title", "kt:kind_type").
		j("kt.id=t.kind_id").
		f("t", gti("production_year", 1990)).
		groupBy("kt.kind").
		count().
		build()

	companiesPerCountry := nq("ext-companies-per-country").
		t("cn:company_name", "mc:movie_companies").
		j("cn.id=mc.company_id").
		f("cn", notnull("country_code")).
		groupBy("cn.country_code").
		count().
		build()

	rolesPerType := nq("ext-roles").
		t("rt:role_type", "ci:cast_info", "n:name").
		j("rt.id=ci.role_id", "n.id=ci.person_id").
		f("n", eqs("gender", "f")).
		groupBy("rt.role").
		count().
		build()

	return []*query.Query{perKind, companiesPerCountry, rolesPerType}
}

// Listing2 is the Exp 4 query of the paper: two tables joined on non-indexed
// columns, shrunk through a primary-key range (Listing 2):
//
//	SELECT * FROM movie_keyword, movie_link
//	WHERE movie_link.id <= <maxID> AND
//	      movie_keyword.movie_id = movie_link.movie_id;
//
// The join columns are movie_id on both sides; fullProjection selects * while
// the limited variant projects only the ids (Exp 4/5 run both).
func Listing2(maxLinkID int32, fullProjection bool) *query.Query {
	b := nq("listing2").
		t("mk:movie_keyword", "ml:movie_link").
		j("mk.movie_id=ml.movie_id").
		f("ml", lei("id", maxLinkID))
	if !fullProjection {
		b.out("mk.id", "ml.id")
	}
	q := b.build()
	if fullProjection {
		q.Name = "listing2-full"
	} else {
		q.Name = "listing2-limited"
	}
	return q
}
