package job_test

import (
	"sync"
	"testing"

	"hybridndp/internal/coop"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/table"
)

var (
	dsOnce sync.Once
	ds     *job.Dataset
	dsErr  error
)

func env(t *testing.T) (*optimizer.Optimizer, *coop.Executor) {
	t.Helper()
	dsOnce.Do(func() { ds, dsErr = job.Load(0.02, hw.Cosmos()) })
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return optimizer.New(ds.Cat, ds.Model), coop.NewExecutor(ds.Cat, ds.DB, ds.Model)
}

// TestMarqueeQueriesMatchData verifies the generator's value domains align
// with the query predicates: the paper's featured queries must find rows
// (a MIN() aggregate over zero tuples returns NULL).
func TestMarqueeQueriesMatchData(t *testing.T) {
	opt, ex := env(t)
	for _, name := range []string{"1a", "2d", "3a", "6f", "8c", "8d", "10c",
		"13d", "14c", "16b", "17a", "17b", "19d", "26c", "32b"} {
		q := job.QueryByName(name)
		p, err := opt.BuildPlan(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, err := ex.Run(p, coop.Strategy{Kind: coop.HostNative})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Result.RowCount != 1 {
			t.Fatalf("%s: %d result rows", name, rep.Result.RowCount)
		}
		if rep.Result.Rows[0][0].Null {
			t.Errorf("%s: empty result — predicates do not match the generated data", name)
		}
	}
}

// TestQueryCoverageAcrossJoinCounts ensures the workload exercises the full
// breadth the paper relies on: from 4-5 table queries to the 16-table Q29.
func TestQueryCoverageAcrossJoinCounts(t *testing.T) {
	opt, _ := env(t)
	sizes := map[int]bool{}
	for _, q := range job.Queries() {
		p, err := opt.BuildPlan(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		sizes[p.NumTables()] = true
	}
	for _, want := range []int{4, 5, 7, 8, 10, 16} {
		if !sizes[want] {
			t.Errorf("no query with %d tables", want)
		}
	}
}

// TestExtensionGroupByAcrossStrategies runs the GROUP BY extension queries
// under every strategy: group counts and per-group values must agree whether
// grouping happens on the host or in-situ on the device.
func TestExtensionGroupByAcrossStrategies(t *testing.T) {
	opt, ex := env(t)
	for _, q := range job.ExtensionQueries() {
		if err := q.Validate(ds.Cat); err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		p, err := opt.BuildPlan(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		host, err := ex.Run(p, coop.Strategy{Kind: coop.HostNative})
		if err != nil {
			t.Fatalf("%s host: %v", q.Name, err)
		}
		if host.Result.RowCount < 2 {
			t.Fatalf("%s: only %d groups — degenerate grouping", q.Name, host.Result.RowCount)
		}
		hostGroups := groupMap(host)
		strategies := []coop.Strategy{{Kind: coop.NDPOnly}, {Kind: coop.Hybrid, Split: -1}}
		for k := 1; k <= len(p.Steps); k++ {
			strategies = append(strategies, coop.Strategy{Kind: coop.Hybrid, Split: k})
		}
		for _, st := range strategies {
			rep, err := ex.Run(p, st)
			if err != nil {
				t.Fatalf("%s %v: %v", q.Name, st, err)
			}
			got := groupMap(rep)
			if len(got) != len(hostGroups) {
				t.Fatalf("%s %v: %d groups, host has %d", q.Name, st, len(got), len(hostGroups))
			}
			for g, v := range hostGroups {
				if got[g] != v {
					t.Fatalf("%s %v: group %q = %q, host says %q", q.Name, st, g, got[g], v)
				}
			}
		}
	}
}

func groupMap(rep *coop.Report) map[string]string {
	out := map[string]string{}
	for _, row := range rep.Result.Rows {
		out[row[0].String()] = row[1].String()
	}
	return out
}

// TestSelectivitySpread checks the generator produces both highly selective
// dimension filters and broad fact filters, the tension split decisions
// depend on.
func TestSelectivitySpread(t *testing.T) {
	_, _ = env(t)
	kw, err := ds.Cat.Table("keyword")
	if err != nil {
		t.Fatal(err)
	}
	st := kw.CollectStats()
	// A named hot keyword is rare among all keywords.
	if s := st.EqSelectivity("keyword"); s > 0.05 {
		t.Fatalf("keyword equality selectivity %.4f too high", s)
	}
	ci, _ := ds.Cat.Table("cast_info")
	cst := ci.CollectStats()
	actorSel := cst.SelectivityOf(func(r table.Record) bool {
		v := r.GetByName("role_id")
		return !v.Null && (v.Int == 1 || v.Int == 2)
	})
	if actorSel < 0.3 {
		t.Fatalf("actor/actress share %.2f — fact filters should be broad", actorSel)
	}
}
