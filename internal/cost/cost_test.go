package cost_test

import (
	"math"
	"sync"
	"testing"

	"hybridndp/internal/cost"
	"hybridndp/internal/exec"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/optimizer"
)

var (
	dsOnce sync.Once
	ds     *job.Dataset
	dsErr  error
)

func testEnv(t *testing.T) (*job.Dataset, *cost.Estimator, *optimizer.Optimizer) {
	t.Helper()
	dsOnce.Do(func() {
		ds, dsErr = job.Load(0.01, hw.Cosmos())
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	est := cost.NewEstimator(ds.Cat, ds.Model, cost.DefaultParams())
	return ds, est, optimizer.New(ds.Cat, ds.Model)
}

func TestAccessCostDeviceCheaperScanPricierCPU(t *testing.T) {
	_, est, opt := testEnv(t)
	p, err := opt.BuildPlan(job.QueryByName("8c"))
	if err != nil {
		t.Fatal(err)
	}
	// Find the cast_info access (big, unfiltered): device scan term must be
	// cheaper (internal bandwidth), CPU term pricier (weak core).
	for _, st := range p.Steps {
		if st.Right.Ref.Table != "cast_info" {
			continue
		}
		h, err := est.AccessCost(st.Right, cost.Host)
		if err != nil {
			t.Fatal(err)
		}
		d, err := est.AccessCost(st.Right, cost.Device)
		if err != nil {
			t.Fatal(err)
		}
		if d.Scan >= h.Scan {
			t.Fatalf("device scan (%.0f) must be cheaper than host (%.0f)", d.Scan, h.Scan)
		}
		if d.CPU <= h.CPU {
			t.Fatalf("device CPU (%.0f) must be pricier than host (%.0f)", d.CPU, h.CPU)
		}
		return
	}
	t.Fatal("8c plan has no cast_info step")
}

func TestTransferCostMonotone(t *testing.T) {
	_, est, _ := testEnv(t)
	small := est.TransferCost(1000, 16)
	big := est.TransferCost(100000, 16)
	if small <= 0 || big <= small {
		t.Fatalf("transfer costs not monotone: %f vs %f", small, big)
	}
	if est.TransferCost(0, 16) != 0 {
		t.Fatal("zero rows must be free")
	}
}

func TestJoinOutRowsDeduplicatesTransitiveConds(t *testing.T) {
	_, est, opt := testEnv(t)
	p, err := opt.BuildPlan(job.QueryByName("17b"))
	if err != nil {
		t.Fatal(err)
	}
	// Find a step with multiple conditions on the same right column.
	for _, st := range p.Steps {
		cols := map[string]int{}
		for _, c := range st.Conds {
			cols[c.RightCol]++
		}
		for col, n := range cols {
			if n < 2 {
				continue
			}
			// Estimate with duplicates must equal the estimate with one.
			dedup := st
			dedup.Conds = nil
			seen := map[string]bool{}
			for _, c := range st.Conds {
				if !seen[c.RightCol] {
					seen[c.RightCol] = true
					dedup.Conds = append(dedup.Conds, c)
				}
			}
			a := est.JoinOutRows(st, 1000, 5000)
			b := est.JoinOutRows(dedup, 1000, 5000)
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("transitive %s conds changed the estimate: %f vs %f", col, a, b)
			}
			return
		}
	}
	t.Skip("no step with transitive conditions in this plan")
}

func TestPlanCostsStructure(t *testing.T) {
	_, est, opt := testEnv(t)
	for _, name := range []string{"1a", "8c", "32b"} {
		p, err := opt.BuildPlan(job.QueryByName(name))
		if err != nil {
			t.Fatal(err)
		}
		sc, err := est.PlanCosts(p)
		if err != nil {
			t.Fatal(err)
		}
		n := p.NumTables()
		if len(sc.CNode) != n || len(sc.HybridEst) != n || len(sc.Rows) != n {
			t.Fatalf("%s: wrong split vector lengths", name)
		}
		// Cumulative from H1 upward (H0 is the first node by definition).
		for k := 2; k < n; k++ {
			if sc.CNode[k] < sc.CNode[k-1] {
				t.Fatalf("%s: c_node not cumulative at H%d", name, k)
			}
		}
		if sc.CTarget <= 0 || sc.CTarget >= sc.CNode[n-1] {
			t.Fatalf("%s: c_target %.0f outside (0, c_total=%.0f)", name, sc.CTarget, sc.CNode[n-1])
		}
		if sc.BestSplit < 0 || sc.BestSplit >= n {
			t.Fatalf("%s: best split H%d out of range", name, sc.BestSplit)
		}
		// The chosen split is the closest to c_target.
		for k := range sc.CNode {
			if math.Abs(sc.CNode[k]-sc.CTarget) < math.Abs(sc.CNode[sc.BestSplit]-sc.CTarget)-1e-9 {
				t.Fatalf("%s: H%d closer to target than chosen H%d", name, k, sc.BestSplit)
			}
		}
		if sc.HostTotal <= 0 || sc.NDPTotal <= 0 {
			t.Fatalf("%s: degenerate totals", name)
		}
		if sc.String() == "" {
			t.Fatal("empty rendering")
		}
	}
}

func TestSplitTargetCPUOnlyAblation(t *testing.T) {
	_, est, opt := testEnv(t)
	p, err := opt.BuildPlan(job.QueryByName("8c"))
	if err != nil {
		t.Fatal(err)
	}
	both, err := est.PlanCosts(p)
	if err != nil {
		t.Fatal(err)
	}
	est.TargetCPUOnly = true
	defer func() { est.TargetCPUOnly = false }()
	cpuOnly, err := est.PlanCosts(p)
	if err != nil {
		t.Fatal(err)
	}
	// eq. 12: (cpu+mem)/200 vs cpu/100 — with mem% < cpu% the CPU-only
	// target is higher.
	if both.SplitMem >= both.SplitCPU {
		t.Skip("memory ratio unexpectedly dominates")
	}
	if cpuOnly.CTarget <= both.CTarget {
		t.Fatalf("cpu-only target %.0f should exceed combined %.0f", cpuOnly.CTarget, both.CTarget)
	}
}

func TestFullNDPCostExceedsHostForDeepPlans(t *testing.T) {
	// The cost model must reproduce the paper's core claim: whole-plan
	// offloading of a deep join query is estimated as more expensive than
	// host-only execution.
	_, est, opt := testEnv(t)
	p, err := opt.BuildPlan(job.QueryByName("8c"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := est.PlanCosts(p)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NDPTotal <= sc.HostTotal {
		t.Fatalf("full NDP (%.0f) should be estimated costlier than host (%.0f) on Q8.c",
			sc.NDPTotal, sc.HostTotal)
	}
}

func TestStepCostBufferPassPenalty(t *testing.T) {
	_, est, opt := testEnv(t)
	p, err := opt.BuildPlan(job.QueryByName("17b"))
	if err != nil {
		t.Fatal(err)
	}
	// Force a BNL step and inflate the left side: device scan cost grows
	// once the estimated outer volume exceeds the join buffer.
	var step exec.JoinStep
	found := false
	for _, st := range p.Steps {
		if st.Type == exec.BNL && st.Right.Ref.Table == "cast_info" {
			step, found = st, true
		}
	}
	if !found {
		t.Skip("no BNL cast_info step")
	}
	small, _, err := est.StepCost(step, 10, cost.Device)
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := est.StepCost(step, 5_000_000, cost.Device)
	if err != nil {
		t.Fatal(err)
	}
	if big.Scan <= small.Scan {
		t.Fatalf("huge outer should multiply device scan cost (%.0f vs %.0f)", big.Scan, small.Scan)
	}
}

func TestDefaultParams(t *testing.T) {
	if cost.DefaultParams().UsrRec <= 0 {
		t.Fatal("usr_rec must be positive")
	}
	if cost.Host.String() != "host" || cost.Device.String() != "device" {
		t.Fatal("side rendering")
	}
	nc := cost.NodeCost{Scan: 1, CPU: 2, Trans: 3}
	if nc.Total() != 6 {
		t.Fatal("NodeCost.Total")
	}
}
