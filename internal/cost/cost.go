// Package cost implements the hybridNDP cost model (paper §3): per-table
// scan/CPU/transfer costs (eq. 1–6), join cost accumulation (eq. 7–8), and
// the split-point calculation against the hardware-model-derived target cost
// (eq. 9–12). Costs are expressed in virtual nanoseconds — the same unit the
// execution engines charge — so estimates and measurements are directly
// comparable and "cost units" have a physical meaning.
package cost

import (
	"fmt"
	"math"
	"sync"

	"hybridndp/internal/exec"
	"hybridndp/internal/hw"
	"hybridndp/internal/lsm"
	"hybridndp/internal/table"
)

// Side selects whose rates price an operation.
type Side int

// Execution sides.
const (
	Host Side = iota
	Device
)

func (s Side) String() string {
	if s == Device {
		return "device"
	}
	return "host"
}

// Params are the user/configuration variables of Table 1.
type Params struct {
	// UsrRec is the row evaluation cost (usr_rec) in ns per record per
	// predicate term, host-side baseline.
	UsrRec float64
}

// DefaultParams mirrors the engine's calibration.
func DefaultParams() Params { return Params{UsrRec: 40} }

// Estimator prices plans from statistics and the hardware model. Estimators
// are safe for concurrent use: the mutable parameter set (which the
// controller's calibration feedback adjusts between runs) is guarded by a
// mutex and accessed through Params/SetParams/UpdateParams.
type Estimator struct {
	Cat   *table.Catalog
	Model hw.Model

	// TargetCPUOnly drops the memory term from the split target (eq. 12),
	// for the split-target ablation benchmark.
	TargetCPUOnly bool

	mu     sync.RWMutex
	params Params // guarded by mu

	hostR hw.Rates
	devR  hw.Rates
}

// NewEstimator builds an estimator over the catalog and hardware model.
func NewEstimator(cat *table.Catalog, m hw.Model, p Params) *Estimator {
	return &Estimator{Cat: cat, Model: m, params: p, hostR: hw.HostRates(m), devR: hw.DeviceRates(m)}
}

// Params returns the current parameter set.
func (e *Estimator) Params() Params {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.params
}

// SetParams replaces the parameter set.
func (e *Estimator) SetParams(p Params) {
	e.mu.Lock()
	e.params = p
	e.mu.Unlock()
}

// UpdateParams applies f to the parameter set atomically, so concurrent
// calibration-feedback updates do not lose each other's adjustments.
func (e *Estimator) UpdateParams(f func(Params) Params) {
	e.mu.Lock()
	e.params = f(e.params)
	e.mu.Unlock()
}

// usrRec reads the row-evaluation-cost parameter under the lock.
func (e *Estimator) usrRec() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.params.UsrRec
}

func (e *Estimator) rates(s Side) hw.Rates {
	if s == Device {
		return e.devR
	}
	return e.hostR
}

// cpuFactor scales record-at-a-time work for the side, mirroring the
// engines' effective device CPU penalty.
func (e *Estimator) cpuFactor(s Side) float64 {
	if s == Device {
		return e.Model.DeviceCPUPenalty()
	}
	return 1
}

// NodeCost decomposes the estimated cost of one plan node (eq. 1):
// c_total = c_scan + c_cpu + c_trans.
type NodeCost struct {
	Alias string
	Scan  float64 // c_scan = tbl_sea + calc_frt (eq. 2)
	CPU   float64 // c_cpu (eq. 3) plus join work when the node is a join step
	Trans float64 // c_trans (eq. 4/7)
}

// Total is c_scan + c_cpu + c_trans.
func (n NodeCost) Total() float64 { return n.Scan + n.CPU + n.Trans }

// AccessCost prices one base-table access path on the given side: scanning
// the table's pages from flash (or seeking through an index), evaluating the
// local predicate on every record, and copying survivors to the selection
// cache. Transfer is not included here — it depends on where the plan is cut.
func (e *Estimator) AccessCost(ap exec.AccessPath, s Side) (NodeCost, error) {
	t, err := e.Cat.Table(ap.Ref.Table)
	if err != nil {
		return NodeCost{}, err
	}
	st := t.CollectStats()
	r := e.rates(s)
	rows := float64(st.RowCount)
	matched := ap.EstRows
	if matched <= 0 {
		matched = rows * math.Max(ap.EstSel, 1e-6)
	}
	pb := float64(projWidthOf(t.Schema, ap.Proj))
	nc := NodeCost{Alias: ap.Ref.Alias}

	if ap.UseFilterIndex {
		// Index equality access: one secondary range seek plus one primary
		// lookup per match. The block cache bounds distinct flash reads by
		// the table's data-block count; the CPU seek work stays per lookup.
		pageCost := float64(r.FlashPageLatNs) + float64(lsm.TargetBlockBytes)*r.FlashNsPerByte
		pages := float64(st.TotalBytes())/float64(lsm.TargetBlockBytes) + 1
		flashLookups := math.Min(matched, pages)
		nc.Scan = flashLookups * pageCost * r.StackOverhead
		nc.CPU = matched * (e.usrRec()*e.cpuFactor(s) + float64(r.SeekNsPerLevel)*12)
	} else {
		bytes := rows * float64(st.RowBytes)
		pages := bytes / float64(r.FlashPageBytes)
		// tbl_sea: storage-engine access cost (streaming the pages).
		sea := bytes * r.FlashNsPerByte * r.StackOverhead
		// calc_frt: per-page flash overhead weighted by the flash clock
		// ratio of the side (host_hw_FCF vs ndp_hw_FCF).
		frt := pages * float64(r.FlashPageLatNs) * 0.02 * r.StackOverhead
		nc.Scan = sea + frt
		terms := 1.0
		if ap.Filter != nil {
			terms = float64(ap.Filter.Terms())
		}
		// eq. 3: tbl_ren · usr_rec · node_pbn · calc_pcf — per-record
		// evaluation scaled by the projection cost impact factor.
		pcf := e.cpuFactor(s) * (0.5 + 0.5*pb/float64(st.RowBytes))
		nc.CPU = rows*e.usrRec()*terms*e.cpuFactor(s) + matched*pb*r.MemcpyNsPerByte*1.0*pcf/e.cpuFactor(s)
	}
	return nc, nil
}

// TransferCost prices shipping rows of width pbn over the interconnect
// (eq. 4 and 7): volume divided into blocks, each priced by cf_pcie.
func (e *Estimator) TransferCost(rows, pbn float64) float64 {
	if rows <= 0 {
		return 0
	}
	pc := hw.CFPCIe(e.Model.PCIeVersion, e.Model.PCIeLanes)
	vol := int64(rows * pbn)
	return float64(pc.Transfer(vol, e.Model.SharedBufferSlot))
}

// StepCost prices one join step on the given side given the estimated left
// cardinality, returning the node cost (access of the right side plus the
// join work) and the estimated output cardinality.
func (e *Estimator) StepCost(step exec.JoinStep, leftRows float64, s Side) (NodeCost, float64, error) {
	rt, err := e.Cat.Table(step.Right.Ref.Table)
	if err != nil {
		return NodeCost{}, 0, err
	}
	st := rt.CollectStats()
	r := e.rates(s)
	rightMatched := step.Right.EstRows
	if rightMatched <= 0 {
		rightMatched = float64(st.RowCount) * math.Max(step.Right.EstSel, 1e-6)
	}
	outRows := step.EstRows
	if outRows <= 0 {
		outRows = e.JoinOutRows(step, leftRows, rightMatched)
	}

	var nc NodeCost
	switch step.Type {
	case exec.BNLI:
		// Per-probe index access: secondary seek, then one primary lookup
		// per *match* (every matching record is fetched through the primary
		// LSM tree — Fig. 9). Distinct flash block reads are bounded by the
		// right table's block count (the block cache absorbs repeats); CPU
		// seek work stays per probe and per fetch.
		pageCost := float64(r.FlashPageLatNs) + float64(lsm.TargetBlockBytes)*r.FlashNsPerByte
		pages := float64(st.TotalBytes())/float64(lsm.TargetBlockBytes) + 1
		seeks := 1.0
		if !step.RightIndexIsPK {
			seeks = 2 // secondary→primary two-stage seek (Fig. 9)
		}
		flashLookups := math.Min(leftRows*seeks+outRows, pages*(1+seeks))
		nc.Alias = step.Right.Ref.Alias
		nc.Scan = flashLookups * pageCost * r.StackOverhead
		nc.CPU = leftRows*(float64(r.HashProbeNsRec)+float64(r.SeekNsPerLevel)*12*seeks) +
			outRows*(e.usrRec()*e.cpuFactor(s)+float64(r.SeekNsPerLevel)*12)
	default: // BNL / NLJ / GHJ price as buffered join
		acc, err := e.AccessCost(step.Right, s)
		if err != nil {
			return NodeCost{}, 0, err
		}
		nc = acc
		build := rightMatched * float64(r.HashBuildNsRec)
		probe := leftRows * float64(r.HashProbeNsRec)
		nc.CPU += build + probe
		// Bounded device join buffer: extra inner passes (hw_MSJ).
		if s == Device {
			innerBytes := rightMatched * float64(projWidthOf(rt.Schema, step.Right.Proj))
			leftBytes := leftRows * 64 // pointer-cache resident outer estimate
			if innerBytes > float64(e.Model.JoinBufBytes) && leftBytes > float64(e.Model.JoinBufBytes) {
				passes := math.Ceil(leftBytes / float64(e.Model.JoinBufBytes))
				nc.Scan *= passes
			}
		}
	}
	// node_brc: buffer management of the produced tuples (eq. 8).
	nc.CPU += outRows * float64(r.RowOverheadNs)
	return nc, outRows, nil
}

// DerefCost estimates the device pointer-cache dereferencing penalty for
// outRows tuples spanning positions tables of total width tupleBytes
// (charged only when the device runs in pointer format, i.e. >2 tables).
func (e *Estimator) DerefCost(outRows float64, positions int, tupleBytes float64) float64 {
	r := e.devR
	return outRows*float64(positions)*3*r.SeekNsPerLevel + outRows*tupleBytes*r.MemcpyNsPerByte
}

// JoinOutRows estimates join output cardinality with the classic 1/ndv
// equality-join selectivity. Conditions binding the same right-side column
// (transitive equalities JOB queries spell out, e.g. three movie_id
// equalities) are counted once — treating them as independent would collapse
// the estimate by orders of magnitude.
func (e *Estimator) JoinOutRows(step exec.JoinStep, leftRows, rightRows float64) float64 {
	rt, err := e.Cat.Table(step.Right.Ref.Table)
	if err != nil {
		return leftRows
	}
	st := rt.CollectStats()
	sel := 1.0
	seen := map[string]bool{}
	for _, c := range step.Conds {
		if seen[c.RightCol] {
			continue
		}
		seen[c.RightCol] = true
		d := float64(st.NDV[c.RightCol])
		if d < 1 {
			d = 1
		}
		sel /= d
	}
	out := leftRows * rightRows * sel
	if out < 0.1 {
		out = 0.1
	}
	return out
}

// projWidthOf mirrors exec's projected-width computation.
func projWidthOf(s *table.Schema, proj []string) int64 {
	if len(proj) == 0 {
		return int64(s.RowBytes())
	}
	var w int64
	for _, c := range proj {
		w += int64(s.ColumnStoredBytes(c))
	}
	if w == 0 {
		w = 4
	}
	return w
}

// SplitCosts is the full cost picture of one plan: host-only and NDP-only
// totals, the cumulative device cost at every split point H0..Hn, the target
// cost, and the estimated end-to-end cost of every hybrid alternative.
type SplitCosts struct {
	HostTotal float64 // c_total of the host-only QEP (eq. 8)
	NDPTotal  float64 // c_total of the full-NDP QEP
	CTarget   float64 // eq. 12
	SplitCPU  float64 // eq. 9
	SplitMem  float64 // eq. 11

	// CNode[k] is the cumulative device-side cost at split point Hk
	// (Fig. 5's y-axis).
	CNode []float64
	// HybridEst[k] estimates the end-to-end runtime of hybrid split Hk,
	// accounting for overlap: max(device part, host part) + transfer.
	HybridEst []float64
	// Rows[k] is the estimated cardinality entering the host at split Hk.
	Rows []float64
	// DevPart[k], HostPart[k] and Trans[k] decompose HybridEst[k] =
	// max(DevPart[k], HostPart[k]) + Trans[k]. The concurrent scheduler uses
	// them to re-cost splits under load: device backlog inflates DevPart,
	// host backlog inflates HostPart, and the cheapest loaded alternative
	// wins (c_target under contention, DESIGN.md "Concurrent serving").
	// Note DevPart[0] prices the full H0 leaf offload, which is more work
	// than the cumulative curve point CNode[0].
	DevPart  []float64
	HostPart []float64
	Trans    []float64

	// BestSplit is the Hk whose CNode is closest to CTarget (Fig. 5 step 3).
	BestSplit int
}

// PlanCosts prices the plan for all execution alternatives.
func (e *Estimator) PlanCosts(p *exec.Plan) (*SplitCosts, error) {
	return e.planCosts(p, 1)
}

// ShardPlanCosts prices the plan for one driving-table shard holding
// drivingFrac of the driving table's rows (fleet execution): the driving
// node's access cost and initial cardinality scale with the fraction, while
// the inner tables stay full-size — they are broadcast to every shard. The
// curve is deliberately non-uniform in the fraction: join-side scan costs do
// not shrink with the shard, so small shards see a flatter c_node curve and
// may pick a different split than the global plan.
func (e *Estimator) ShardPlanCosts(p *exec.Plan, drivingFrac float64) (*SplitCosts, error) {
	if drivingFrac <= 0 {
		drivingFrac = 1e-6
	}
	if drivingFrac > 1 {
		drivingFrac = 1
	}
	return e.planCosts(p, drivingFrac)
}

// planCosts is PlanCosts with the driving node scaled to drivingFrac.
func (e *Estimator) planCosts(p *exec.Plan, drivingFrac float64) (*SplitCosts, error) {
	n := p.NumTables()
	sc := &SplitCosts{}

	// Width of a tuple with the first k+1 tables populated.
	widths := make([]float64, n)
	{
		t, _ := e.Cat.Table(p.Driving.Ref.Table)
		widths[0] = float64(projWidthOf(t.Schema, p.Driving.Proj))
		for i, st := range p.Steps {
			rt, _ := e.Cat.Table(st.Right.Ref.Table)
			widths[i+1] = widths[i] + float64(projWidthOf(rt.Schema, st.Right.Proj))
		}
	}

	// Per-side chain costs with cardinality propagation. The device chain
	// additionally pays the pointer-cache dereferencing penalty on deep
	// plans (>2 tables switch to pointer format, paper §4.2).
	type chain struct {
		nodes []NodeCost
		rows  []float64 // rows after position i
	}
	build := func(s Side) (chain, error) {
		var ch chain
		acc, err := e.AccessCost(p.Driving, s)
		if err != nil {
			return ch, err
		}
		acc = scaleNode(acc, drivingFrac)
		rows := p.Driving.EstRows
		if rows <= 0 {
			t, _ := e.Cat.Table(p.Driving.Ref.Table)
			rows = float64(t.CollectStats().RowCount) * math.Max(p.Driving.EstSel, 1e-6)
		}
		rows *= drivingFrac
		ch.nodes = append(ch.nodes, acc)
		ch.rows = append(ch.rows, rows)
		for i, st := range p.Steps {
			nc, out, err := e.StepCost(st, rows, s)
			if err != nil {
				return ch, err
			}
			if s == Device && n > 2 {
				nc.CPU += e.DerefCost(out, i+2, widths[i+1])
			}
			ch.nodes = append(ch.nodes, nc)
			ch.rows = append(ch.rows, out)
			rows = out
		}
		return ch, nil
	}
	hostCh, err := build(Host)
	if err != nil {
		return nil, err
	}
	devCh, err := build(Device)
	if err != nil {
		return nil, err
	}

	finalRows := hostCh.rows[n-1]
	resultWidth := widths[n-1]

	// Host-only total (eq. 8 accumulated): all nodes at host rates, no
	// interconnect transfer beyond the flash path.
	for _, nc := range hostCh.nodes {
		sc.HostTotal += nc.Total()
	}
	// Group/aggregate cost on top.
	groupCost := func(rows float64, s Side) float64 {
		if len(p.Aggregates) == 0 && len(p.GroupBy) == 0 {
			return 0
		}
		return rows * float64(e.rates(s).GroupNsRec)
	}
	sc.HostTotal += groupCost(finalRows, Host)

	// NDP-only: all nodes at device rates plus final result transfer.
	for _, nc := range devCh.nodes {
		sc.NDPTotal += nc.Total()
	}
	sc.NDPTotal += groupCost(devCh.rows[n-1], Device) + e.TransferCost(devCh.rows[n-1], resultWidth)

	// Split points. H0: device runs every leaf selection; host joins.
	// Hk (k≥1): device runs leaves 0..k and joins 1..k; host reads the rest.
	sc.CNode = make([]float64, n)
	sc.HybridEst = make([]float64, n)
	sc.Rows = make([]float64, n)
	sc.DevPart = make([]float64, n)
	sc.HostPart = make([]float64, n)
	sc.Trans = make([]float64, n)

	// H0 device part: all leaf selections at device rates.
	var h0dev float64
	leafTrans := 0.0
	{
		acc, _ := e.AccessCost(p.Driving, Device)
		h0dev += scaleNode(acc, drivingFrac).Total()
		leafTrans += e.TransferCost(devCh.rows[0], widths[0])
		for _, st := range p.Steps {
			acc, err := e.AccessCost(st.Right, Device)
			if err != nil {
				return nil, err
			}
			h0dev += acc.Total()
			rm := st.Right.EstRows
			rt, _ := e.Cat.Table(st.Right.Ref.Table)
			if rm <= 0 {
				rm = float64(rt.CollectStats().RowCount) * math.Max(st.Right.EstSel, 1e-6)
			}
			leafTrans += e.TransferCost(rm, float64(projWidthOf(rt.Schema, st.Right.Proj)))
		}
	}
	// Fig. 5's cumulative curve: c_node(H0) is the first (cheapest) table's
	// device cost; each further split point adds the next node. The H0
	// *execution* offloads every leaf (§3.4), which HybridEst[0] prices via
	// h0dev, but the split-point curve stays cumulative in plan order.
	sc.CNode[0] = devCh.nodes[0].Total()
	sc.Rows[0] = devCh.rows[0]
	// H0 host part: all joins at host rates over device-filtered inputs.
	{
		hostJoin := 0.0
		rows := devCh.rows[0]
		for _, st := range p.Steps {
			nc, out, err := e.StepCost(st, rows, Host)
			if err != nil {
				return nil, err
			}
			// The right side was already filtered on device; drop the scan
			// component, keep the join CPU.
			hostJoin += nc.CPU
			rows = out
		}
		hostJoin += groupCost(rows, Host)
		sc.DevPart[0] = h0dev
		sc.HostPart[0] = hostJoin
		sc.Trans[0] = leafTrans
		sc.HybridEst[0] = math.Max(h0dev, hostJoin) + leafTrans
	}

	// Hk for k ≥ 1.
	for k := 1; k < n; k++ {
		var devPart float64
		for i := 0; i <= k; i++ {
			devPart += devCh.nodes[i].Total()
		}
		sc.CNode[k] = devPart
		sc.Rows[k] = devCh.rows[k]
		trans := e.TransferCost(devCh.rows[k], widths[k])

		var hostPart float64
		rows := devCh.rows[k]
		for i := k + 1; i < n; i++ {
			nc, out, err := e.StepCost(p.Steps[i-1], rows, Host)
			if err != nil {
				return nil, err
			}
			hostPart += nc.Total()
			rows = out
		}
		hostPart += groupCost(rows, Host)
		sc.DevPart[k] = devPart
		sc.HostPart[k] = hostPart
		sc.Trans[k] = trans
		sc.HybridEst[k] = math.Max(devPart, hostPart) + trans
	}

	// Target cost, eq. 9–12.
	m := e.Model
	sc.SplitCPU = 100 * (m.DeviceFlashClockMHz * m.FlashWeight) / (m.HostFlashClockMHz * m.FlashWeight)
	splitDev := float64(int64(n)*m.SelBufBytes + int64(n-1)*m.JoinBufBytes)
	sc.SplitMem = 100 * (splitDev * m.DeviceMemWeight) / (float64(m.HostMemBytes) * m.DeviceMemWeight)
	cTotal := sc.CNode[n-1]
	if e.TargetCPUOnly {
		sc.CTarget = cTotal * sc.SplitCPU / 100
	} else {
		sc.CTarget = cTotal * (sc.SplitCPU + sc.SplitMem) / (2 * 100)
	}

	// Fig. 5 step 3: the split with the smallest |c_node − c_target|.
	best := 0
	bestDist := math.Abs(sc.CNode[0] - sc.CTarget)
	for k := 1; k < n; k++ {
		if d := math.Abs(sc.CNode[k] - sc.CTarget); d < bestDist {
			best, bestDist = k, d
		}
	}
	sc.BestSplit = best
	return sc, nil
}

// scaleNode scales every component of a node cost (a fractional table scan
// reads a fraction of the pages and evaluates a fraction of the records).
func scaleNode(nc NodeCost, f float64) NodeCost {
	if f == 1 {
		return nc
	}
	nc.Scan *= f
	nc.CPU *= f
	nc.Trans *= f
	return nc
}

// String renders the cost picture.
func (sc *SplitCosts) String() string {
	s := fmt.Sprintf("host=%.0f ndp=%.0f target=%.0f (cpu%%=%.1f mem%%=%.1f) best=H%d\n",
		sc.HostTotal, sc.NDPTotal, sc.CTarget, sc.SplitCPU, sc.SplitMem, sc.BestSplit)
	for k := range sc.CNode {
		s += fmt.Sprintf("  H%d: c_node=%.0f hybrid_est=%.0f rows=%.0f\n", k, sc.CNode[k], sc.HybridEst[k], sc.Rows[k])
	}
	return s
}
