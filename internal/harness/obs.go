package harness

import (
	"fmt"
	"io"

	"hybridndp/internal/coop"
	"hybridndp/internal/job"
	"hybridndp/internal/obs"
	"hybridndp/internal/query"
)

// TraceReport bundles one traced execution: the run report, its span trace and
// the paper-phase profile derived from the timeline accounts.
type TraceReport struct {
	Report  *coop.Report
	Trace   *obs.Trace
	Profile *obs.QueryProfile
}

// RunTraced plans the query and executes it under the strategy with span
// tracing enabled. The profile is checked against the trace's own invariant
// (phases partition the virtual runtime) by the caller via Profile.Reconciles.
func (h *H) RunTraced(q *query.Query, s coop.Strategy) (*TraceReport, error) {
	p, err := h.Opt.BuildPlan(q)
	if err != nil {
		return nil, err
	}
	tr := obs.NewTrace(q.Name)
	rep, err := h.Exec.RunTraced(p, s, tr)
	if err != nil {
		return nil, err
	}
	return &TraceReport{Report: rep, Trace: tr, Profile: rep.Profile()}, nil
}

// TraceDecided runs the named JOB query under the optimizer's decided
// strategy with tracing. It is the backing of `jobbench -trace`.
func (h *H) TraceDecided(name string) (*TraceReport, error) {
	return h.TraceQuery(name, "")
}

// TraceQuery runs the named JOB query under the given strategy label
// (native, block, ndp, H0, H1, ...) with tracing; an empty label uses the
// optimizer's decided strategy.
func (h *H) TraceQuery(name, label string) (*TraceReport, error) {
	q := job.QueryByName(name)
	if q == nil {
		return nil, fmt.Errorf("harness: unknown JOB query %q", name)
	}
	if label != "" {
		s, err := ParseStrategy(label)
		if err != nil {
			return nil, err
		}
		return h.RunTraced(q, s)
	}
	d, err := h.Opt.Decide(q)
	if err != nil {
		return nil, err
	}
	return h.RunTraced(q, strategyOf(d.Hybrid, d.NDP, d.Split))
}

// ParseStrategy parses a strategy label as printed by coop.Strategy.String:
// "native", "block", "ndp", or a hybrid split "H0".."Hn".
func ParseStrategy(label string) (coop.Strategy, error) {
	switch label {
	case "native":
		return coop.Strategy{Kind: coop.HostNative}, nil
	case "block":
		return coop.Strategy{Kind: coop.BlockOnly}, nil
	case "ndp":
		return coop.Strategy{Kind: coop.NDPOnly}, nil
	}
	var k int
	if n, err := fmt.Sscanf(label, "H%d", &k); err == nil && n == 1 && k >= 0 {
		if k == 0 {
			k = -1
		}
		return coop.Strategy{Kind: coop.Hybrid, Split: k}, nil
	}
	return coop.Strategy{}, fmt.Errorf("harness: unknown strategy label %q", label)
}

// strategyOf converts the optimizer's decision flags into a strategy (the
// same mapping core and sched use; duplicated to keep harness free of those
// imports).
func strategyOf(hybrid, ndp bool, split int) coop.Strategy {
	switch {
	case hybrid:
		if split == 0 {
			split = -1
		}
		return coop.Strategy{Kind: coop.Hybrid, Split: split}
	case ndp:
		return coop.Strategy{Kind: coop.NDPOnly}
	default:
		return coop.Strategy{Kind: coop.HostNative}
	}
}

// BindMetrics attaches a registry to the harness's executor so every
// subsequent run records into it, and publishes the dataset's storage-level
// gauges. Returns the registry for chaining.
func (h *H) BindMetrics(reg *obs.Registry) *obs.Registry {
	h.Exec.Metrics = reg
	h.PublishStorage(reg)
	return reg
}

// PublishStorage mirrors the dataset's flash-module counters into gauges
// (cumulative device-internal I/O volume — the bytes the NDP path never moves
// across the interconnect).
func (h *H) PublishStorage(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := h.DS.DB.Flash().Stats()
	reg.Gauge("flash.bytes_read").SetInt(st.BytesRead)
	reg.Gauge("flash.bytes_written").SetInt(st.BytesWritten)
	reg.Gauge("flash.page_reads").SetInt(st.PageReads)
	reg.Gauge("flash.random_reads").SetInt(st.RandomReads)
	reg.Gauge("flash.files_live").SetInt(int64(st.FilesLive))
}

// ProfileWorkload runs every given query under its decided strategy with
// tracing and returns the per-query profiles plus the workload-level merge
// (where the mix's virtual time goes, in the paper's phase structure). A nil
// query list means all JOB queries.
func (h *H) ProfileWorkload(qs []*query.Query) ([]*obs.QueryProfile, *obs.QueryProfile, error) {
	if qs == nil {
		qs = job.Queries()
	}
	profiles := make([]*obs.QueryProfile, 0, len(qs))
	for _, q := range qs {
		tr, err := h.TraceDecided(q.Name)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", q.Name, err)
		}
		profiles = append(profiles, tr.Profile)
	}
	return profiles, obs.MergeProfiles(profiles), nil
}

// WriteTrace writes the trace report as Chrome trace_event JSON followed by
// the flame and phase-profile text renderings on out.
func (tr *TraceReport) WriteTrace(jsonW, out io.Writer) error {
	if err := tr.Trace.WriteChromeTrace(jsonW, 1); err != nil {
		return err
	}
	if err := tr.Trace.WriteFlame(out); err != nil {
		return err
	}
	if err := tr.Profile.WriteText(out); err != nil {
		return err
	}
	if !tr.Profile.Reconciles() {
		return fmt.Errorf("harness: profile does not reconcile with the virtual runtime")
	}
	return nil
}
