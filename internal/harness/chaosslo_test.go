package harness

import (
	"strings"
	"testing"
)

// TestChaosSLODeterministic runs the chaos-SLO sweep twice at different
// measurement worker counts and requires byte-identical tables and metrics
// dumps — the fault injector, hedging and the open-loop replay are all
// functions of (dataset seed, fault seed, arrival seed), never of wall-clock
// interleaving. The same runs must show the separation the sweep exists to
// prove (Gate passes), with hedges actually firing during measurement.
func TestChaosSLODeterministic(t *testing.T) {
	h := testHarness(t)
	a, err := h.ChaosSLOSweep(nil, ChaosSLOOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.ChaosSLOSweep(nil, ChaosSLOOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Table != b.Table {
		t.Fatalf("chaos-SLO table differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", a.Table, b.Table)
	}
	for i := range a.Dumps {
		if a.Dumps[i] != b.Dumps[i] {
			t.Fatalf("metrics dump %s differs across worker counts", a.Labels[i])
		}
	}
	if err := a.Gate(); err != nil {
		t.Fatalf("chaos separation gate failed: %v\n%s", err, a.Table)
	}
	if !strings.Contains(a.Table, "gate: PASS") {
		t.Fatal("rendered table does not carry the gate verdict")
	}
	// The hedged rows must differ from the unhedged ones — if the hedged
	// cost table were identical, the sweep would be comparing a policy to
	// itself and the gate would be vacuous.
	if WorstP99(a.Results[ChaosAdaptiveHedge]) == WorstP99(a.Results[ChaosAdaptive]) &&
		MissRate(a.Results[ChaosAdaptiveHedge]) == MissRate(a.Results[ChaosAdaptive]) {
		t.Fatal("hedged and unhedged adaptive runs are indistinguishable")
	}
	// Request conservation holds per run (completed + sheds == offered).
	for i, res := range a.Results {
		if res.Completed+res.QuotaRejected+res.QueueRejected+res.DeadlineRejected != res.Requests {
			t.Fatalf("%s: request conservation violated: %+v", a.Labels[i], res)
		}
	}
}
