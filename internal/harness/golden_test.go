package harness

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"testing"

	"hybridndp/internal/job"
	"hybridndp/internal/vclock"
)

// raceEnabled reports whether this test binary was built with the race
// detector, read from the binary's build settings (the build-tag const idiom
// would leave two same-named declarations that the in-tree analysis loader,
// which ignores build constraints, refuses to load).
var raceEnabled = func() bool {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return false
	}
	for _, s := range bi.Settings {
		if s.Key == "-race" {
			return s.Value == "true"
		}
	}
	return false
}()

// update regenerates the golden files under testdata/ from the current engine:
//
//	go test ./internal/harness/ -run TestBatchedMatchesGoldens -update
//
// The committed goldens were captured from the volcano (pre-batching) engine,
// so they pin the exact virtual-time bytes the vectorized engine must
// reproduce at every batch size.
var update = flag.Bool("update", false, "rewrite the golden files under testdata/ from the current engine")

// goldenBatchSizes are the columnar batch row capacities the golden suite
// replays: 1 is the tuple-at-a-time degenerate case, 7 is odd and never
// divides a scan or join input evenly (exercising ragged final batches), 1024
// is the default.
var goldenBatchSizes = []int{1, 7, 1024}

// goldenSurfaces are the determinism surfaces the suite pins: the optimizer
// plan dump, the full 113-query strategy sweep (elapsed virtual times as exact
// float64 bits), the committed figure/table renderings, a traced execution's
// Chrome JSON + flame + profile, the fleet scale-out table with its
// fingerprint match marks, and the serving SLO table with per-policy metrics
// dumps.
var goldenSurfaces = []struct {
	name string
	run  func(h *H) (string, error)
}{
	{"plans.golden", captureGoldenPlans},
	{"sweep.golden", captureGoldenSweep},
	{"figs.golden", captureGoldenFigs},
	{"trace.golden", captureGoldenTrace},
	{"fleet.golden", captureGoldenFleet},
	{"slo.golden", captureGoldenSLO},
}

func captureGoldenPlans(h *H) (string, error) {
	var buf bytes.Buffer
	if err := h.Plans(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

func captureGoldenSweep(h *H) (string, error) {
	qs := job.Queries()
	res := h.SweepParallel(qs)
	var buf bytes.Buffer
	for i, q := range qs {
		if res[i].Err != nil {
			return "", fmt.Errorf("%s: %w", q.Name, res[i].Err)
		}
		for _, m := range res[i].Msr {
			if m.Err != nil {
				return "", fmt.Errorf("%s %s: %w", q.Name, m.Strategy, m.Err)
			}
			// Elapsed virtual times print as raw float64 bits: byte-identity
			// is the contract, not approximate equality.
			fmt.Fprintf(&buf, "%s %s elapsed=%016x rows=%d batches=%d\n",
				q.Name, m.Strategy, math.Float64bits(float64(m.Elapsed)), m.Rows, m.Batches)
		}
	}
	return buf.String(), nil
}

func captureGoldenFigs(h *H) (string, error) {
	var buf bytes.Buffer
	if _, err := h.Fig2(&buf); err != nil {
		return "", err
	}
	if _, err := h.Fig11(&buf); err != nil {
		return "", err
	}
	if _, err := h.Table3(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

func captureGoldenTrace(h *H) (string, error) {
	tr, err := h.TraceQuery("8d", "H1")
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf, &buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

func captureGoldenFleet(h *H) (string, error) {
	var buf bytes.Buffer
	if _, err := h.FleetSweep(&buf, []int{1, 4}, "range"); err != nil {
		return "", err
	}
	return buf.String(), nil
}

func captureGoldenSLO(h *H) (string, error) {
	var buf bytes.Buffer
	rep, err := h.SLOSweep(&buf, SLOOptions{
		Horizon: 300 * vclock.Millisecond,
		Seed:    3,
		Workers: 4,
	})
	if err != nil {
		return "", err
	}
	buf.WriteString("\n-- policy dumps --\n")
	for _, d := range rep.Dumps {
		buf.WriteString(d)
		buf.WriteByte('\n')
	}
	return buf.String(), nil
}

// goldenHarness builds a fresh harness over the shared test dataset so batch
// size and worker knobs never leak into the other tests' shared instance.
func goldenHarness(t *testing.T, batchSize int) *H {
	t.Helper()
	h := FromDataset(testHarness(t).DS)
	h.Workers = 4
	h.SetBatchSize(batchSize)
	return h
}

// TestBatchedMatchesGoldens is the byte-identity gate of the vectorized
// engine: every determinism surface must reproduce the committed pre-change
// goldens exactly, at batch size 1 (which must degenerate to tuple-at-a-time
// behavior), at a ragged odd size, and at the default. Under -race only the
// ragged size runs (the full matrix is wall-clock heavy and adds no extra
// synchronization coverage).
func TestBatchedMatchesGoldens(t *testing.T) {
	if *update {
		h := goldenHarness(t, 0)
		for _, sf := range goldenSurfaces {
			got, err := sf.run(h)
			if err != nil {
				t.Fatalf("update %s: %v", sf.name, err)
			}
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join("testdata", sf.name), []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	sizes := goldenBatchSizes
	if raceEnabled {
		sizes = []int{7}
	}
	for _, bs := range sizes {
		bs := bs
		t.Run(fmt.Sprintf("batch=%d", bs), func(t *testing.T) {
			h := goldenHarness(t, bs)
			for _, sf := range goldenSurfaces {
				got, err := sf.run(h)
				if err != nil {
					t.Fatalf("%s: %v", sf.name, err)
				}
				want, err := os.ReadFile(filepath.Join("testdata", sf.name))
				if err != nil {
					t.Fatalf("%s: %v (run with -update to generate)", sf.name, err)
				}
				if got != string(want) {
					t.Errorf("%s: output differs from golden at batch size %d:\n%s",
						sf.name, bs, firstDiff(string(want), got))
				}
			}
		})
	}
}

// TestBatchedSweepWorkerInvariance re-checks the parallel sweep's
// byte-identity under a non-default batch size: a ragged batch must not
// introduce any worker-count or interleaving dependence. Kept small enough to
// run under -race (see ci.yml's dedicated race step).
func TestBatchedSweepWorkerInvariance(t *testing.T) {
	qs := job.Queries()[:10]
	var base []SweepResult
	for _, workers := range []int{1, 4} {
		h := goldenHarness(t, 7)
		h.Workers = workers
		res := h.SweepParallel(qs)
		if base == nil {
			base = res
			continue
		}
		for i := range res {
			if res[i].Err != nil || base[i].Err != nil {
				t.Fatalf("%s: errs %v / %v", qs[i].Name, base[i].Err, res[i].Err)
			}
			if len(res[i].Msr) != len(base[i].Msr) {
				t.Fatalf("%s: measurement count differs across worker counts", qs[i].Name)
			}
			for j, m := range res[i].Msr {
				b := base[i].Msr[j]
				if m.Elapsed != b.Elapsed || m.Rows != b.Rows || m.Batches != b.Batches {
					t.Fatalf("%s %s: workers=%d diverges from workers=1: %v/%d/%d vs %v/%d/%d",
						qs[i].Name, m.Strategy, workers, m.Elapsed, m.Rows, m.Batches, b.Elapsed, b.Rows, b.Batches)
				}
			}
		}
	}
}

// firstDiff renders the first differing line with context.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  golden: %q\n  got:    %q", i+1, w, g)
		}
	}
	return fmt.Sprintf("lengths differ: golden %d bytes, got %d bytes", len(want), len(got))
}
