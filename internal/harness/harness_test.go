package harness

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"hybridndp/internal/coop"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
)

var (
	hOnce sync.Once
	hInst *H
	hErr  error
)

// testHarness shares one small dataset across harness tests. The scale is
// deliberately tiny: these tests assert mechanics and output structure, not
// the calibrated shapes (those are checked at bench scale).
func testHarness(t *testing.T) *H {
	t.Helper()
	hOnce.Do(func() { hInst, hErr = New(0.01, hw.Cosmos()) })
	if hErr != nil {
		t.Fatal(hErr)
	}
	return hInst
}

func TestSweepStrategiesCoversAll(t *testing.T) {
	h := testHarness(t)
	msr, p, err := h.SweepStrategies(job.QueryByName("8c"))
	if err != nil {
		t.Fatal(err)
	}
	// block + native + H0..Hn + ndp.
	want := 2 + 1 + len(p.Steps) + 1
	if len(msr) != want {
		t.Fatalf("sweep produced %d measurements, want %d", len(msr), want)
	}
	for _, m := range msr {
		if m.Err != nil {
			t.Fatalf("%v failed: %v", m.Strategy, m.Err)
		}
		if m.Elapsed <= 0 {
			t.Fatalf("%v reported no time", m.Strategy)
		}
	}
	if _, ok := ByKind(msr, coop.BlockOnly); !ok {
		t.Fatal("block measurement missing")
	}
	if _, ok := BestHybrid(msr); !ok {
		t.Fatal("no hybrid measurement")
	}
	if best, ok := Best(msr); !ok || best.Elapsed <= 0 {
		t.Fatal("Best broken")
	}
}

func TestFig2Output(t *testing.T) {
	h := testHarness(t)
	var buf bytes.Buffer
	msr, err := h.Fig2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(msr) < 3 {
		t.Fatalf("Fig2 kept %d series", len(msr))
	}
	out := buf.String()
	for _, frag := range []string{"host-only", "full NDP", "H0"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig2 output missing %q", frag)
		}
	}
}

func TestFig11AndTable3(t *testing.T) {
	h := testHarness(t)
	var buf bytes.Buffer
	rows, err := h.Fig11(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 queries × 4 stacks
		t.Fatalf("Fig11 rows = %d", len(rows))
	}
	t3, err := h.Table3(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3) < 2 {
		t.Fatalf("Table3 rows = %d", len(t3))
	}
	for _, r := range t3 {
		if r.Time <= 0 {
			t.Fatalf("split %s has no time", r.Split)
		}
	}
}

func TestFig14Fig15ResultsAgree(t *testing.T) {
	h := testHarness(t)
	var buf bytes.Buffer
	f14, err := h.Fig14(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f14) != 6 { // 2 projections × 3 stacks
		t.Fatalf("Fig14 rows = %d", len(f14))
	}
	var refRows int64 = -1
	for _, r := range f14 {
		if refRows < 0 {
			refRows = r.Rows
		} else if r.Rows != refRows {
			t.Fatalf("Fig14 stacks disagree on rows: %d vs %d", r.Rows, refRows)
		}
	}
	f15, err := h.Fig15(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f15) != 6 {
		t.Fatalf("Fig15 rows = %d", len(f15))
	}
}

func TestFig16AndFig17(t *testing.T) {
	h := testHarness(t)
	var buf bytes.Buffer
	msr, err := h.Fig16(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(msr) < 4 {
		t.Fatalf("Fig16 series = %d", len(msr))
	}
	res, err := h.Fig17Table4(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Batches == 0 || len(res.DevBreakdown) == 0 || len(res.HostBreakdown) == 0 {
		t.Fatal("Fig17 result incomplete")
	}
	total := 0.0
	for _, p := range res.HostBreakdown {
		total += p.Percent
	}
	if total < 99 || total > 101 {
		t.Fatalf("host breakdown sums to %.1f%%", total)
	}
}

func TestCalibrationReportsRatio(t *testing.T) {
	h := testHarness(t)
	var buf bytes.Buffer
	res := h.Calibration(&buf)
	if r := res.Model.ComputeRatio(); r < 30 || r > 33 {
		t.Fatalf("calibration ratio %.1f", r)
	}
	if !strings.Contains(buf.String(), "compute ratio") {
		t.Fatal("calibration output missing the ratio line")
	}
}

func TestWithModelIsolatesChanges(t *testing.T) {
	h := testHarness(t)
	m := h.DS.Model
	m.PCIeVersion = 4
	hv := h.WithModel(m)
	if hv.Exec.Model.PCIeVersion != 4 {
		t.Fatal("WithModel did not apply")
	}
	if h.Exec.Model.PCIeVersion == 4 {
		t.Fatal("WithModel mutated the original harness")
	}
	// The variant still executes.
	if _, _, err := hv.SweepStrategies(job.QueryByName("32b")); err != nil {
		t.Fatal(err)
	}
}
