package harness

import (
	"fmt"
	"io"

	"hybridndp/internal/coop"
	"hybridndp/internal/fault"
	"hybridndp/internal/job"
	"hybridndp/internal/query"
	"hybridndp/internal/vclock"
)

// ChaosRow is one query's outcome in a fault-injected sweep: the decided
// strategy ran under the fault plan, and its result is checked against a
// fault-free host-native execution of the same plan.
type ChaosRow struct {
	Query    string
	Strategy string
	// Retries / FellBack mirror the report's recovery outcome.
	Retries  int
	FellBack bool
	Rows     int64 // row count under faults
	BaseRows int64 // fault-free host-native row count
	Elapsed  vclock.Duration
	Err      error
}

// Match reports whether the chaos run reproduced the baseline's row count.
func (r ChaosRow) Match() bool { return r.Err == nil && r.Rows == r.BaseRows }

// ChaosResult aggregates a chaos sweep.
type ChaosResult struct {
	Rows       []ChaosRow
	Errors     int
	Mismatches int
	Retries    int
	Fallbacks  int
}

// Clean reports a sweep with zero query errors and zero result mismatches —
// the recovery path's correctness gate: whatever the fault plan does to the
// device, every query must still return the host-native answer.
func (r *ChaosResult) Clean() bool { return r.Errors == 0 && r.Mismatches == 0 }

// ChaosSweep executes every JOB query under its optimizer-decided strategy
// with the fault plan active and verifies each result against a fault-free
// host-native baseline. The sweep is deterministic for a given dataset seed
// and fault spec — injectors are keyed per query+strategy, so worker count
// and interleaving cannot perturb any run's fault episode — and the printed
// table is byte-identical across repetitions.
func (h *H) ChaosSweep(w io.Writer, plan *fault.Plan) *ChaosResult {
	qs := job.Queries()
	rows := make([]ChaosRow, len(qs))
	prevFaults, prevRetries := h.Exec.Faults, h.Exec.MaxRetries
	h.Exec.Faults = plan
	defer func() { h.Exec.Faults, h.Exec.MaxRetries = prevFaults, prevRetries }()
	h.forEach(len(qs), func(i int) {
		rows[i] = h.chaosOne(qs[i])
	})

	res := &ChaosResult{Rows: rows}
	header(w, fmt.Sprintf("Chaos sweep (faults: %s)", plan.String()))
	for _, r := range rows {
		if r.Err != nil {
			res.Errors++
			fmt.Fprintf(w, "%-5s %-7s ERROR %v\n", r.Query, r.Strategy, r.Err)
			continue
		}
		res.Retries += r.Retries
		mark := ""
		if r.FellBack {
			res.Fallbacks++
			mark = " fallback=host"
		}
		if !r.Match() {
			res.Mismatches++
			mark += fmt.Sprintf(" MISMATCH base=%d", r.BaseRows)
		}
		fmt.Fprintf(w, "%-5s %-7s %s rows=%-8d retries=%d%s\n",
			r.Query, r.Strategy, ms(r.Elapsed), r.Rows, r.Retries, mark)
	}
	fmt.Fprintf(w, "\n%d queries: %d errors, %d mismatches, %d retries, %d host fallbacks\n",
		len(rows), res.Errors, res.Mismatches, res.Retries, res.Fallbacks)
	return res
}

// chaosOne runs one query's baseline and chaos execution.
func (h *H) chaosOne(q *query.Query) ChaosRow {
	row := ChaosRow{Query: q.Name}
	d, err := h.Opt.Decide(q)
	if err != nil {
		row.Err = err
		return row
	}
	s := strategyOf(d.Hybrid, d.NDP, d.Split)
	row.Strategy = s.String()
	// The host-native path never consults the fault plan (the device is the
	// unreliable component), so the baseline is fault-free by construction.
	base, err := h.Exec.Run(d.Plan, coop.Strategy{Kind: coop.HostNative})
	if err != nil {
		row.Err = fmt.Errorf("baseline: %w", err)
		return row
	}
	row.BaseRows = base.Result.RowCount
	rep, err := h.Exec.Run(d.Plan, s)
	if err != nil {
		row.Err = err
		return row
	}
	row.Rows = rep.Result.RowCount
	row.Retries = rep.FaultRetries
	row.FellBack = rep.FellBack
	row.Elapsed = rep.Elapsed
	return row
}
