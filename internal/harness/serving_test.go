package harness

import (
	"bytes"
	"testing"
	"time"

	"hybridndp/internal/sched"
)

// TestServingSweepAdaptiveWins is the acceptance check of the concurrent
// scheduler: under load (concurrency ≥ 16) the adaptive policy must beat both
// forced baselines on virtual throughput, every submitted query must complete
// (no starvation), and the admission wait must stay bounded.
func TestServingSweepAdaptiveWins(t *testing.T) {
	if testing.Short() {
		t.Skip("serving sweep replays the JOB mix three ways")
	}
	h := testHarness(t)
	var buf bytes.Buffer
	rows, err := h.ServingSweep(&buf, []int{16})
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	byPolicy := map[sched.Policy]ServingRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	host, ndp, ad := byPolicy[sched.ForceHost], byPolicy[sched.ForceNDP], byPolicy[sched.Adaptive]
	want := int64(len(ServingMix(3)))
	for _, r := range []ServingRow{host, ndp, ad} {
		if r.Completed != want || r.Errors != 0 {
			t.Fatalf("%v completed %d/%d with %d errors\n%s",
				r.Policy, r.Completed, want, r.Errors, buf.String())
		}
		if r.QueueWaitMax > time.Minute {
			t.Fatalf("%v queue wait unbounded: %v", r.Policy, r.QueueWaitMax)
		}
	}
	if ad.Throughput <= host.Throughput {
		t.Fatalf("adaptive (%.2f q/s) does not beat always-host (%.2f q/s)\n%s",
			ad.Throughput, host.Throughput, buf.String())
	}
	if ad.Throughput <= ndp.Throughput {
		t.Fatalf("adaptive (%.2f q/s) does not beat always-NDP (%.2f q/s)\n%s",
			ad.Throughput, ndp.Throughput, buf.String())
	}
	// The win must come from cooperation: the adaptive run uses both pools.
	if ad.DeviceBusy <= 0 || ad.HostBusy <= 0 {
		t.Fatalf("adaptive run left a pool idle: dev=%v host=%v", ad.DeviceBusy, ad.HostBusy)
	}
	if ad.Degraded == 0 {
		t.Fatal("adaptive run under load never degraded a query")
	}
}
