// Package harness regenerates every table and figure of the paper's
// evaluation (§5). Each Fig*/Table* function runs the corresponding
// experiment against a loaded JOB dataset and returns structured results
// plus a formatted text block with the same rows/series the paper reports.
// bench_test.go and cmd/jobbench are thin wrappers over this package.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hybridndp/internal/coop"
	"hybridndp/internal/exec"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/query"
	"hybridndp/internal/vclock"
)

// H bundles a loaded dataset with its optimizer and executor.
type H struct {
	DS   *job.Dataset
	Opt  *optimizer.Optimizer
	Exec *coop.Executor

	// Workers sets the wall-clock parallelism of the sweep experiments and
	// the -plans dump (0 or 1 = sequential). Parallel runs are byte-identical
	// to sequential ones: every query executes on fresh per-run engines,
	// caches and vclock timelines, and results merge in query order.
	Workers int

	// BatchSize sets the columnar batch row capacity of every executor the
	// harness builds (0 = exec.DefaultBatchSize). Virtual-time results are
	// byte-identical at every size (TestBatchedMatchesGoldens); the knob only
	// changes wall-clock speed. Set it through SetBatchSize so the already-
	// constructed cooperative executor picks it up too.
	BatchSize int
}

// SetBatchSize applies a columnar batch row capacity to this harness and its
// executors (0 = exec.DefaultBatchSize).
func (h *H) SetBatchSize(n int) {
	h.BatchSize = n
	h.Exec.BatchSize = n
}

// New loads the JOB dataset at the given scale and assembles the harness.
func New(scale float64, m hw.Model) (*H, error) {
	return NewSeeded(scale, m, job.DefaultSeed)
}

// NewSeeded is New with an explicit dataset generation seed (0 means
// job.DefaultSeed).
func NewSeeded(scale float64, m hw.Model, seed int64) (*H, error) {
	ds, err := job.LoadSeeded(scale, m, seed)
	if err != nil {
		return nil, err
	}
	return FromDataset(ds), nil
}

// FromDataset assembles a harness over an already-loaded dataset.
func FromDataset(ds *job.Dataset) *H {
	return &H{
		DS:   ds,
		Opt:  optimizer.New(ds.Cat, ds.Model),
		Exec: coop.NewExecutor(ds.Cat, ds.DB, ds.Model),
	}
}

// WithModel returns a harness sharing this one's dataset but planning and
// executing under a modified hardware model — the ablation hook (compute
// ratio, PCIe generation, slot count sweeps).
func (h *H) WithModel(m hw.Model) *H {
	h2 := &H{
		DS:      h.DS,
		Opt:     optimizer.New(h.DS.Cat, m),
		Exec:    coop.NewExecutor(h.DS.Cat, h.DS.DB, m),
		Workers: h.Workers,
	}
	h2.SetBatchSize(h.BatchSize)
	return h2
}

// Run plans a query and executes it under the strategy.
func (h *H) Run(q *query.Query, s coop.Strategy) (*coop.Report, error) {
	p, err := h.Opt.BuildPlan(q)
	if err != nil {
		return nil, err
	}
	return h.Exec.Run(p, s)
}

// Measurement is one (strategy, time) sample.
type Measurement struct {
	Strategy coop.Strategy
	Elapsed  vclock.Duration
	Rows     int64
	Batches  int
	Err      error
}

// Plans serializes the optimizer's decision for every JOB query: the chosen
// strategy, split point, reason and the full plan tree. Two runs over
// identically seeded datasets must produce byte-identical output — this is
// the determinism surface `cmd/jobbench -plans` exposes for diffing. With
// Workers > 1 the decisions compute in parallel but print in query order, so
// the dump stays byte-identical.
func (h *H) Plans(w io.Writer) error {
	qs := job.Queries()
	type decided struct {
		d   *optimizer.Decision
		err error
	}
	out := make([]decided, len(qs))
	h.forEach(len(qs), func(i int) {
		out[i].d, out[i].err = h.Opt.Decide(qs[i])
	})
	for i, q := range qs {
		if out[i].err != nil {
			return fmt.Errorf("%s: %w", q.Name, out[i].err)
		}
		d := out[i].d
		fmt.Fprintf(w, "%s %s split=%d reason=%q\n%s\n\n", q.Name, d.StrategyLabel(), d.Split, d.Reason, d.Plan)
	}
	return nil
}

// forEach runs fn(0..n-1) across min(h.Workers, n) goroutines (inline when
// sequential). Each index is claimed exactly once; callers write to disjoint
// pre-sized slots, so no further synchronization is needed.
func (h *H) forEach(n int, fn func(i int)) {
	workers := h.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SweepResult is one query's full strategy sweep.
type SweepResult struct {
	Msr  []Measurement
	Plan *exec.Plan
	Err  error
}

// SweepParallel runs SweepStrategies for every query across h.Workers
// goroutines and merges the results in query order. Every strategy execution
// uses fresh per-run engines, block caches and timelines, so the merged
// measurements are byte-identical to a sequential sweep regardless of worker
// count or interleaving (TestParallelSweepMatchesSequential enforces this) —
// only wall-clock time changes.
func (h *H) SweepParallel(qs []*query.Query) []SweepResult {
	out := make([]SweepResult, len(qs))
	h.forEach(len(qs), func(i int) {
		out[i].Msr, out[i].Plan, out[i].Err = h.SweepStrategies(qs[i])
	})
	return out
}

// SweepStrategies runs the query under block, native, every hybrid split and
// full NDP, in that order.
func (h *H) SweepStrategies(q *query.Query) ([]Measurement, *exec.Plan, error) {
	p, err := h.Opt.BuildPlan(q)
	if err != nil {
		return nil, nil, err
	}
	strategies := []coop.Strategy{{Kind: coop.BlockOnly}, {Kind: coop.HostNative}}
	if len(p.Steps) > 0 {
		strategies = append(strategies, coop.Strategy{Kind: coop.Hybrid, Split: -1})
		for k := 1; k <= len(p.Steps); k++ {
			strategies = append(strategies, coop.Strategy{Kind: coop.Hybrid, Split: k})
		}
	}
	strategies = append(strategies, coop.Strategy{Kind: coop.NDPOnly})

	var out []Measurement
	for _, st := range strategies {
		rep, err := h.Exec.Run(p, st)
		m := Measurement{Strategy: st, Err: err}
		if err == nil {
			m.Elapsed = rep.Elapsed
			m.Rows = rep.Result.RowCount
			m.Batches = rep.Batches
		}
		out = append(out, m)
	}
	return out, p, nil
}

// BestHybrid returns the fastest successful hybrid measurement, if any.
func BestHybrid(ms []Measurement) (Measurement, bool) {
	var best Measurement
	found := false
	for _, m := range ms {
		if m.Err != nil || m.Strategy.Kind != coop.Hybrid {
			continue
		}
		if !found || m.Elapsed < best.Elapsed {
			best, found = m, true
		}
	}
	return best, found
}

// ByKind returns the measurement for a non-hybrid strategy kind.
func ByKind(ms []Measurement, k coop.Kind) (Measurement, bool) {
	for _, m := range ms {
		if m.Strategy.Kind == k && m.Err == nil {
			return m, true
		}
	}
	return Measurement{}, false
}

// Best returns the fastest successful measurement overall.
func Best(ms []Measurement) (Measurement, bool) {
	var best Measurement
	found := false
	for _, m := range ms {
		if m.Err != nil {
			continue
		}
		if !found || m.Elapsed < best.Elapsed {
			best, found = m, true
		}
	}
	return best, found
}

func ms(d vclock.Duration) string { return fmt.Sprintf("%9.2fms", d.Milliseconds()) }

// forceJoinTypes returns a copy of the plan with every join step's algorithm
// overridden (Exp 4/5 force BNL vs BNLI).
func forceJoinTypes(p *exec.Plan, jt exec.JoinType) *exec.Plan {
	p2 := *p
	p2.Steps = append([]exec.JoinStep(nil), p.Steps...)
	for i := range p2.Steps {
		st := &p2.Steps[i]
		if jt == exec.BNLI {
			if ok := forceIndexed(st); !ok {
				st.Type = exec.BNL
			}
		} else {
			st.Type = jt
		}
	}
	return &p2
}

// forceIndexed rewires a step to BNLI if any join condition has an index.
func forceIndexed(st *exec.JoinStep) bool {
	if st.Type == exec.BNLI {
		return true
	}
	// The optimizer stores the right access path; conds carry the columns.
	// The executor resolves PK joins directly; secondary joins need the
	// index name, which follows the idx_<col> convention of the JOB schema.
	for i, c := range st.Conds {
		if c.RightCol == "id" { // JOB primary keys are all "id"
			st.Type = exec.BNLI
			st.RightIndexIsPK = true
			st.Conds[0], st.Conds[i] = st.Conds[i], st.Conds[0]
			return true
		}
	}
	for i, c := range st.Conds {
		switch c.RightCol {
		case "movie_id", "person_id", "keyword_id", "company_id", "role_id",
			"kind_id", "info_type_id", "company_type_id", "link_type_id",
			"linked_movie_id", "person_role_id", "subject_id", "status_id",
			"production_year", "country_code", "gender", "keyword":
			st.Type = exec.BNLI
			st.RightIndexIsPK = false
			st.RightIndex = "idx_" + c.RightCol
			st.Conds[0], st.Conds[i] = st.Conds[i], st.Conds[0]
			return true
		}
	}
	return false
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// sortedKeys returns map keys in sorted order.
func sortedKeys[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
