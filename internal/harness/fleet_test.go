package harness

import (
	"bytes"
	"testing"

	"hybridndp/internal/hw"
	"hybridndp/internal/job"
)

// TestFleetMatchesSingleDevice is the fleet's end-to-end correctness gate:
// every JOB query's scatter-gather result at every swept fleet size must be
// byte-identical (fingerprint) to a single-device cooperative execution of
// the optimizer-decided strategy.
func TestFleetMatchesSingleDevice(t *testing.T) {
	h := testHarness(t)
	var buf bytes.Buffer
	res, err := h.FleetSweep(&buf, []int{1, 4}, "range")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(job.Queries()) {
		t.Fatalf("sweep covered %d queries, want %d", len(res.Rows), len(job.Queries()))
	}
	if !res.Clean() {
		t.Fatalf("fleet sweep not clean (%d errors, %d mismatches):\n%s",
			res.Errors, res.Mismatches, buf.String())
	}
}

// TestFleetSweepDeterministic requires the sweep table to be byte-identical
// across worker counts and across a freshly loaded identically-seeded
// dataset: fleet placement and split planning derive only from dataset
// statistics, and the gather merges in partition order, so neither goroutine
// interleaving nor process history may perturb a single byte.
func TestFleetSweepDeterministic(t *testing.T) {
	h := testHarness(t)
	counts := []int{1, 2, 4}

	seq := *h
	seq.Workers = 1
	par := *h
	par.Workers = 8

	var bseq, bpar bytes.Buffer
	if _, err := seq.FleetSweep(&bseq, counts, "stripe"); err != nil {
		t.Fatal(err)
	}
	if _, err := par.FleetSweep(&bpar, counts, "stripe"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bseq.Bytes(), bpar.Bytes()) {
		t.Fatalf("fleet sweep differs between 1 and 8 workers:\n--- seq:\n%s\n--- par:\n%s",
			bseq.String(), bpar.String())
	}

	fresh, err := NewSeeded(0.01, hw.Cosmos(), job.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Workers = 4
	var brepeat bytes.Buffer
	if _, err := fresh.FleetSweep(&brepeat, counts, "stripe"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bseq.Bytes(), brepeat.Bytes()) {
		t.Fatalf("fleet sweep differs across freshly loaded datasets:\n--- first:\n%s\n--- repeat:\n%s",
			bseq.String(), brepeat.String())
	}
}
