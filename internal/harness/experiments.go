package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"hybridndp/internal/coop"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/vclock"
)

// Fig2 reproduces the introductory experiment (paper Fig. 2): JOB Q8.c under
// host-only, the obvious leaf offload H0, the non-obvious interior split,
// and full NDP. Expected shape: full NDP worst, an interior split best.
func (h *H) Fig2(w io.Writer) ([]Measurement, error) {
	msr, _, err := h.SweepStrategies(job.QueryByName("8c"))
	if err != nil {
		return nil, err
	}
	header(w, "Fig 2 — introductory experiment, JOB Q8.c")
	var keep []Measurement
	bestHybrid, _ := BestHybrid(msr)
	for _, m := range msr {
		label := m.Strategy.String()
		switch {
		case m.Strategy.Kind == coop.HostNative:
			label = "host-only"
		case m.Strategy.Kind == coop.NDPOnly:
			label = "full NDP"
		case m.Strategy.Kind == coop.Hybrid && m.Strategy.Split == -1:
			label = "H0"
		case m.Strategy == bestHybrid.Strategy:
			label = m.Strategy.String() + " (best split)"
		case m.Strategy.Kind == coop.BlockOnly:
			continue
		default:
			continue
		}
		fmt.Fprintf(w, "  %-18s %s\n", label, ms(m.Elapsed))
		keep = append(keep, m)
	}
	return keep, nil
}

// Fig11Row is one stack bar of Exp 1.
type Fig11Row struct {
	Query  string
	Stack  string
	Time   vclock.Duration
	Hybrid coop.Strategy
}

// Fig11 reproduces Exp 1: Q8.c, Q17.b, Q32.b on BLK, NATIVE, NDP and
// hybridNDP (best split). Expected: hybridNDP outperforms every baseline;
// full NDP is sub-optimal for 8c/32b.
func (h *H) Fig11(w io.Writer) ([]Fig11Row, error) {
	header(w, "Fig 11 — Exp 1: stacks on Q8.c, Q17.b, Q32.b")
	var rows []Fig11Row
	for _, name := range []string{"8c", "17b", "32b"} {
		msr, _, err := h.SweepStrategies(job.QueryByName(name))
		if err != nil {
			return nil, err
		}
		blk, _ := ByKind(msr, coop.BlockOnly)
		nat, _ := ByKind(msr, coop.HostNative)
		ndp, _ := ByKind(msr, coop.NDPOnly)
		hyb, ok := BestHybrid(msr)
		if !ok {
			return nil, fmt.Errorf("no hybrid measurement for %s", name)
		}
		rows = append(rows,
			Fig11Row{name, "BLK", blk.Elapsed, coop.Strategy{}},
			Fig11Row{name, "NATIVE", nat.Elapsed, coop.Strategy{}},
			Fig11Row{name, "NDP", ndp.Elapsed, coop.Strategy{}},
			Fig11Row{name, "hybridNDP", hyb.Elapsed, hyb.Strategy},
		)
		fmt.Fprintf(w, "  Q%-4s BLK %s  NATIVE %s  NDP %s  hybridNDP %s (%s)\n",
			name, ms(blk.Elapsed), ms(nat.Elapsed), ms(ndp.Elapsed), ms(hyb.Elapsed), hyb.Strategy)
	}
	return rows, nil
}

// Table3Row correlates intermediate-result volume and execution time for one
// split of Q17.b (paper Table 3).
type Table3Row struct {
	Split        string
	Intermediate int64 // rows crossing the interconnect
	Bytes        int64
	Time         vclock.Duration
}

// Table3 reproduces the Exp 1 correlation table for JOB Q17.b.
func (h *H) Table3(w io.Writer) ([]Table3Row, error) {
	q := job.QueryByName("17b")
	p, err := h.Opt.BuildPlan(q)
	if err != nil {
		return nil, err
	}
	header(w, "Table 3 — Q17.b: intermediate results vs execution time")
	var rows []Table3Row
	splits := []int{-1}
	for k := 1; k <= len(p.Steps); k++ {
		splits = append(splits, k)
	}
	for _, k := range splits {
		rep, err := h.Exec.Run(p, coop.Strategy{Kind: coop.Hybrid, Split: k})
		if err != nil {
			return nil, err
		}
		var interRows int64
		for _, ev := range rep.Timeline {
			interRows += int64(ev.Rows)
		}
		r := Table3Row{
			Split:        rep.Strategy.String(),
			Intermediate: interRows,
			Bytes:        rep.TransferredBytes,
			Time:         rep.Elapsed,
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "  %-4s intermediate=%9d rows %10d B  time=%s\n",
			r.Split, r.Intermediate, r.Bytes, ms(r.Time))
	}
	return rows, nil
}

// Fig12Row is one query of the full JOB sweep (Exp 2).
type Fig12Row struct {
	Query       string
	Block       vclock.Duration
	BestHybrid  vclock.Duration
	BestSplit   string
	NDP         vclock.Duration
	Improvement float64 // percent vs block; positive = hybrid faster
	Class       string  // "win", "par", "loss"
	BestOverall string  // strategy label of the fastest execution
}

// onParTolerance classifies |improvement| below this percentage as "on par".
const onParTolerance = 5.0

// Fig12 reproduces Exp 2: all 113 JOB queries under host-only, every hybrid
// split and full NDP. Expected: hybridNDP wins or ties roughly half the
// queries; full NDP is the best choice only in a small fraction.
func (h *H) Fig12(w io.Writer) ([]Fig12Row, error) {
	qs := job.Queries()
	header(w, "Fig 12 — Exp 2: full JOB sweep (improvement vs host-only/BLK, %)")
	var rows []Fig12Row
	wins, pars := 0, 0
	ndpBest, h0Best := 0, 0
	sweeps := h.SweepParallel(qs)
	for qi, q := range qs {
		msr, err := sweeps[qi].Msr, sweeps[qi].Err
		if err != nil {
			return nil, err
		}
		blk, okB := ByKind(msr, coop.BlockOnly)
		hyb, okH := BestHybrid(msr)
		ndp, _ := ByKind(msr, coop.NDPOnly)
		if !okB || !okH {
			continue
		}
		impr := 100 * (float64(blk.Elapsed) - float64(hyb.Elapsed)) / float64(blk.Elapsed)
		class := "loss"
		switch {
		case impr > onParTolerance:
			class = "win"
			wins++
		case impr >= -onParTolerance:
			class = "par"
			pars++
		}
		best, _ := Best(msr)
		switch {
		case best.Strategy.Kind == coop.NDPOnly:
			ndpBest++
		case best.Strategy.Kind == coop.Hybrid && best.Strategy.Split == -1:
			h0Best++
		}
		rows = append(rows, Fig12Row{
			Query: q.Name, Block: blk.Elapsed, BestHybrid: hyb.Elapsed,
			BestSplit: hyb.Strategy.String(), NDP: ndp.Elapsed,
			Improvement: impr, Class: class, BestOverall: best.Strategy.String(),
		})
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-5s blk=%s hybrid=%s (%s) ndp=%s  %+6.1f%% [%s]\n",
			r.Query, ms(r.Block), ms(r.BestHybrid), r.BestSplit, ms(r.NDP), r.Improvement, r.Class)
	}
	n := len(rows)
	fmt.Fprintf(w, "  => hybrid wins %d/%d (%.1f%%), on par %d (%.1f%%), win+par %.1f%% (paper: ~47%%)\n",
		wins, n, pct(wins, n), pars, pct(pars, n), pct(wins+pars, n))
	fmt.Fprintf(w, "  => full-NDP best in %.1f%% (paper: 1.7%%), leaf-only H0 best in %.1f%% (paper: 7%%)\n",
		pct(ndpBest, n), pct(h0Best, n))
	return rows, nil
}

func pct(a, n int) float64 {
	if n == 0 {
		return 0
	}
	return 100 * float64(a) / float64(n)
}

// Fig13Row is the optimizer-decision quality for one query (Exp 3).
type Fig13Row struct {
	Query    string
	Decision string
	Oracle   string
	// Class: "best" (decision matches the measured optimum), "acceptable"
	// (within 10% of the optimum), "miss".
	Class string
}

// Fig13 reproduces Exp 3: the cost model's decisions against the Exp 2
// oracle. Expected: best ≈ 20%, acceptable ≈ 12%, suitable total ≈ 32%.
func (h *H) Fig13(w io.Writer) ([]Fig13Row, error) {
	header(w, "Fig 13 — Exp 3: optimizer decision quality")
	var rows []Fig13Row
	best, acceptable := 0, 0
	qs := job.Queries()
	// Re-measure every strategy against the oracle; the sweeps dominate the
	// wall-clock cost and parallelize across queries.
	sweeps := h.SweepParallel(qs)
	for qi, q := range qs {
		d, err := h.Opt.Decide(q)
		if err != nil {
			return nil, err
		}
		msr, err := sweeps[qi].Msr, sweeps[qi].Err
		if err != nil {
			return nil, err
		}
		opt, ok := Best(msr)
		if !ok {
			continue
		}
		var decided Measurement
		found := false
		wantKind := coop.HostNative
		wantSplit := 0
		switch {
		case d.Hybrid:
			wantKind = coop.Hybrid
			wantSplit = d.Split
			if wantSplit == 0 {
				wantSplit = -1
			}
		case d.NDP:
			wantKind = coop.NDPOnly
		}
		for _, m := range msr {
			if m.Err == nil && m.Strategy.Kind == wantKind &&
				(wantKind != coop.Hybrid || m.Strategy.Split == wantSplit) {
				decided, found = m, true
			}
		}
		if !found {
			continue
		}
		class := "miss"
		switch {
		case decided.Strategy == opt.Strategy:
			class = "best"
			best++
		case float64(decided.Elapsed) <= 1.10*float64(opt.Elapsed):
			class = "acceptable"
			acceptable++
		}
		rows = append(rows, Fig13Row{
			Query: q.Name, Decision: d.StrategyLabel(),
			Oracle: opt.Strategy.String(), Class: class,
		})
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-5s decided=%-6s oracle=%-6s [%s]\n", r.Query, r.Decision, r.Oracle, r.Class)
	}
	n := len(rows)
	fmt.Fprintf(w, "  => best %.1f%% (paper: 20.35%%), acceptable %.1f%% (paper: 11.50%%), suitable %.1f%% (paper: 31.8%%)\n",
		pct(best, n), pct(acceptable, n), pct(best+acceptable, n))
	return rows, nil
}

// Fig14Row is one bar of Exp 4 (non-indexed 2-table join).
type Fig14Row struct {
	Projection string
	Stack      string
	Time       vclock.Duration
	Rows       int64
}

// listing2MaxID scales the paper's movie_link.id <= 10000 predicate (over
// ~30k rows) to the generated table size: one third of the table.
func (h *H) listing2MaxID() int32 {
	return int32(h.DS.Counts["movie_link"] / 3)
}

// Fig14 reproduces Exp 4: the Listing 2 query (2-table join on non-indexed
// columns, BNL forced) on BLK, NATIVE and NDP, for limited and full
// projection. Expected: NDP outperforms the baselines in both cases.
func (h *H) Fig14(w io.Writer) ([]Fig14Row, error) {
	header(w, "Fig 14 — Exp 4: non-indexed 2-table join (BNL on device)")
	var rows []Fig14Row
	for _, full := range []bool{false, true} {
		label := "limited"
		if full {
			label = "full"
		}
		q := job.Listing2(h.listing2MaxID(), full)
		p, err := h.Opt.BuildPlan(q)
		if err != nil {
			return nil, err
		}
		p = forceJoinTypes(p, 0 /* BNL */)
		for _, st := range []coop.Strategy{
			{Kind: coop.BlockOnly}, {Kind: coop.HostNative}, {Kind: coop.NDPOnly},
		} {
			rep, err := h.Exec.Run(p, st)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig14Row{label, st.String(), rep.Elapsed, rep.Result.RowCount})
			fmt.Fprintf(w, "  %-8s %-7s %s  (%d rows)\n", label, st, ms(rep.Elapsed), rep.Result.RowCount)
		}
	}
	return rows, nil
}

// Fig15Row is one bar of Exp 5 (in-situ index processing).
type Fig15Row struct {
	Projection string
	Variant    string // "host", "NDP BNL", "NDP BNLI"
	Time       vclock.Duration
}

// Fig15 reproduces Exp 5: the same query with the device join forced to BNL
// vs BNLI (on-device secondary-index processing), against the host engine.
// Expected: BNL is the device bottleneck; BNLI competes with the host.
func (h *H) Fig15(w io.Writer) ([]Fig15Row, error) {
	header(w, "Fig 15 — Exp 5: in-situ secondary-index processing")
	var rows []Fig15Row
	for _, full := range []bool{false, true} {
		label := "limited"
		if full {
			label = "full"
		}
		q := job.Listing2(h.listing2MaxID(), full)
		p, err := h.Opt.BuildPlan(q)
		if err != nil {
			return nil, err
		}
		// Exp 5 grants secondary indices to everyone: the host bar runs its
		// natural (indexed) plan, while the device compares scan-based BNL
		// against in-situ BNLI.
		host, err := h.Exec.Run(forceJoinTypes(p, 1), coop.Strategy{Kind: coop.HostNative})
		if err != nil {
			return nil, err
		}
		bnl, err := h.Exec.Run(forceJoinTypes(p, 0), coop.Strategy{Kind: coop.NDPOnly})
		if err != nil {
			return nil, err
		}
		bnliPlan := forceJoinTypes(p, 1 /* BNLI */)
		bnli, err := h.Exec.Run(bnliPlan, coop.Strategy{Kind: coop.NDPOnly})
		if err != nil {
			return nil, err
		}
		if bnl.Result.RowCount != bnli.Result.RowCount || host.Result.RowCount != bnl.Result.RowCount {
			return nil, fmt.Errorf("fig15: result mismatch host=%d bnl=%d bnli=%d",
				host.Result.RowCount, bnl.Result.RowCount, bnli.Result.RowCount)
		}
		rows = append(rows,
			Fig15Row{label, "host", host.Elapsed},
			Fig15Row{label, "NDP BNL", bnl.Elapsed},
			Fig15Row{label, "NDP BNLI", bnli.Elapsed},
		)
		fmt.Fprintf(w, "  %-8s host %s  NDP-BNL %s  NDP-BNLI %s\n",
			label, ms(host.Elapsed), ms(bnl.Elapsed), ms(bnli.Elapsed))
	}
	return rows, nil
}

// Fig16 reproduces Exp 6: Q8.c forced through every split position
// (block-only, H0..Hn, NDP-only). Expected: a U-shape with an interior
// optimum (paper: H3 of 9 options).
func (h *H) Fig16(w io.Writer) ([]Measurement, error) {
	msr, p, err := h.SweepStrategies(job.QueryByName("8c"))
	if err != nil {
		return nil, err
	}
	header(w, fmt.Sprintf("Fig 16 — Exp 6: Q8.c split sweep (%d tables)", p.NumTables()))
	var out []Measurement
	for _, m := range msr {
		if m.Strategy.Kind == coop.HostNative {
			continue // the paper's figure shows block, H0..H6, NDP
		}
		fmt.Fprintf(w, "  %-7s %s\n", m.Strategy, ms(m.Elapsed))
		out = append(out, m)
	}
	if best, ok := Best(out); ok {
		fmt.Fprintf(w, "  => best: %s\n", best.Strategy)
	}
	return out, nil
}

// Fig17Result captures the co-processing timeline of Q8.d (Exp 6).
type Fig17Result struct {
	Split          coop.Strategy
	Report         *coop.Report
	HostBreakdown  []phase
	DevBreakdown   []phase
	HostWaitPct    float64
	DeviceTotalPct float64
}

type phase struct {
	Name    string
	Dur     vclock.Duration
	Percent float64
}

// Fig17Table4 reproduces the detailed Q8.d co-processing analysis: the
// paper's Fig. 17 batch timeline plus Table 4's host stage / device
// operation breakdowns. Expected: a visible initial host wait, near-zero
// further waits, and a device breakdown dominated by memcmp.
func (h *H) Fig17Table4(w io.Writer) (*Fig17Result, error) {
	q := job.QueryByName("8d")
	p, err := h.Opt.BuildPlan(q)
	if err != nil {
		return nil, err
	}
	// The paper analyses Q8.d at split H2 (its optimal co-processing point).
	strat := coop.Strategy{Kind: coop.Hybrid, Split: 2}
	if len(p.Steps) < 2 {
		strat.Split = len(p.Steps)
	}
	rep, err := h.Exec.Run(p, strat)
	if err != nil {
		return nil, err
	}
	res := &Fig17Result{Split: strat, Report: rep}

	header(w, fmt.Sprintf("Fig 17 / Table 4 — Exp 6: Q8.d co-processing at %s", strat))
	fmt.Fprintf(w, "  batch timeline (device ready → host fetched → host done):\n")
	for _, ev := range rep.Timeline {
		fmt.Fprintf(w, "    batch %2d: ready=%9.2fms fetched=%9.2fms done=%9.2fms rows=%d\n",
			ev.Idx, float64(ev.DeviceReady)/1e6, float64(ev.HostFetched)/1e6, float64(ev.HostDone)/1e6, ev.Rows)
	}

	hostStages := []struct{ label, cat string }{
		{"NDP setup (command)", hw.CatNDPSetup},
		{"Wait (initial device exec.)", hw.CatWaitInitial},
		{"Wait (2nd..nth device exec.)", hw.CatWaitFetch},
		{"Result transfer", hw.CatTransfer},
	}
	var hostTotal vclock.Duration
	for _, d := range rep.HostAccount {
		hostTotal += d
	}
	fmt.Fprintf(w, "  host stages:\n")
	var processing vclock.Duration = hostTotal
	for _, st := range hostStages {
		d := rep.HostAccount[st.cat]
		processing -= d
		pctv := 100 * float64(d) / math.Max(float64(hostTotal), 1)
		res.HostBreakdown = append(res.HostBreakdown, phase{st.label, d, pctv})
		fmt.Fprintf(w, "    %-30s %s  %5.2f%%\n", st.label, ms(d), pctv)
	}
	pctv := 100 * float64(processing) / math.Max(float64(hostTotal), 1)
	res.HostBreakdown = append(res.HostBreakdown, phase{"Processing", processing, pctv})
	fmt.Fprintf(w, "    %-30s %s  %5.2f%%\n", "Processing", ms(processing), pctv)
	res.HostWaitPct = 100 * float64(rep.HostAccount[hw.CatWaitInitial]+rep.HostAccount[hw.CatWaitFetch]) /
		math.Max(float64(hostTotal), 1)

	fmt.Fprintf(w, "  device operations:\n")
	var devTotal vclock.Duration
	for _, d := range rep.DeviceAccount {
		devTotal += d
	}
	type kv struct {
		k string
		v vclock.Duration
	}
	var devs []kv
	for k, v := range rep.DeviceAccount {
		devs = append(devs, kv{k, v})
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i].v > devs[j].v })
	for _, e := range devs {
		pctv := 100 * float64(e.v) / math.Max(float64(devTotal), 1)
		res.DevBreakdown = append(res.DevBreakdown, phase{e.k, e.v, pctv})
		fmt.Fprintf(w, "    %-30s %s  %5.2f%%\n", e.k, ms(e.v), pctv)
	}
	return res, nil
}

// Calibration runs the hardware profiler and reports the CoreMark-equivalent
// host/device compute ratio (paper §5: 92343 vs 2964 it/s ≈ 31×).
func (h *H) Calibration(w io.Writer) hw.ProfileResult {
	p := hw.Profiler{Base: h.DS.Model, Quick: true}
	res := p.Run()
	header(w, "Setup — profiler calibration")
	res.Report(w)
	fmt.Fprintf(w, "  compute ratio host/device: %.1f (paper: %.1f)\n",
		res.Model.ComputeRatio(), 92343.0/2964.0)
	return res
}
