package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"hybridndp/internal/job"
	"hybridndp/internal/query"
	"hybridndp/internal/sched"
	"hybridndp/internal/vclock"
)

// ServingRow is one (policy, concurrency) cell of the serving experiment.
type ServingRow struct {
	Policy      sched.Policy
	Concurrency int
	Completed   int64
	Degraded    int64
	Errors      int64
	// Makespan and Throughput are virtual-time figures (see sched.Stats):
	// the busiest resource pool bounds the makespan, so the numbers are
	// deterministic and independent of the machine running the simulation.
	Makespan   vclock.Duration
	Throughput float64
	HostBusy   vclock.Duration
	DeviceBusy vclock.Duration
	// QueueWaitMax is the longest wall-clock admission wait of any completed
	// query — the starvation bound (aging keeps it finite for every class).
	QueueWaitMax time.Duration
}

// ServingMix is the default workload of the serving experiment: every JOB
// query in the suite, repeated so the fleet sees sustained load.
func ServingMix(repeat int) []*query.Query {
	if repeat < 1 {
		repeat = 1
	}
	qs := job.Queries()
	out := make([]*query.Query, 0, repeat*len(qs))
	for r := 0; r < repeat; r++ {
		out = append(out, qs...)
	}
	return out
}

// ServingSweep is the throughput-vs-concurrency experiment of the concurrent
// scheduler: the same JOB mix is replayed through the adaptive policy and the
// two forced baselines at each concurrency level. The always-host baseline
// leaves the device idle and queues on the host's CPU lanes; the always-NDP
// baseline serializes on the device's single command slot; the adaptive
// policy re-costs splits under load and degrades saturated queries toward the
// host, keeping both pools busy — at high concurrency it beats both.
func (h *H) ServingSweep(w io.Writer, levels []int) ([]ServingRow, error) {
	if len(levels) == 0 {
		levels = []int{1, 4, 16, 64}
	}
	mix := ServingMix(3)
	header(w, "Serving — throughput vs concurrency, JOB mix")
	fmt.Fprintf(w, "  %-9s %-6s %10s %9s %9s %12s %14s\n",
		"policy", "conc", "completed", "degraded", "makespan", "throughput", "dev/host busy")
	var rows []ServingRow
	for _, c := range levels {
		for _, pol := range []sched.Policy{sched.ForceHost, sched.ForceNDP, sched.Adaptive} {
			st, err := h.serveOnce(pol, c, mix)
			if err != nil {
				return nil, err
			}
			row := ServingRow{
				Policy:       pol,
				Concurrency:  c,
				Completed:    st.Completed,
				Degraded:     st.Degraded,
				Errors:       st.Errors,
				Makespan:     st.Makespan(),
				Throughput:   st.Throughput(),
				HostBusy:     st.HostBusy,
				DeviceBusy:   st.DeviceBusy,
				QueueWaitMax: st.QueueWaitMax,
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "  %-9s %-6d %10d %9d %s %9.2f q/s %s /%s\n",
				pol, c, row.Completed, row.Degraded, ms(row.Makespan), row.Throughput,
				ms(row.DeviceBusy), ms(row.HostBusy))
		}
	}
	return rows, nil
}

// serveOnce replays the mix through one scheduler configuration and returns
// its drained stats.
func (h *H) serveOnce(pol sched.Policy, workers int, mix []*query.Query) (sched.Stats, error) {
	cfg := sched.DefaultConfig()
	cfg.Policy = pol
	cfg.Workers = workers
	cfg.QueueDepth = 2 * len(mix)
	s := sched.New(h.Opt, h.Exec, h.DS.Model, cfg)
	for i, q := range mix {
		if _, err := s.Submit(context.Background(), q, sched.Priority(i%3)); err != nil {
			s.Close()
			return sched.Stats{}, fmt.Errorf("serving submit %s: %w", q.Name, err)
		}
	}
	s.Close()
	st := s.Stats()
	if st.Errors > 0 {
		return st, fmt.Errorf("serving run under %v/%d: %d queries failed", pol, workers, st.Errors)
	}
	return st, nil
}
