package harness

import (
	"bytes"
	"reflect"
	"testing"

	"hybridndp/internal/job"
)

// TestParallelSweepMatchesSequential is the parallel-runner counterpart of
// the optimizer's TestDecisionsAreDeterministic: a SweepParallel run with
// several workers must produce measurement-for-measurement identical results
// to a sequential sweep, and the Plans dump must stay byte-identical. Every
// strategy execution uses fresh per-run engines and timelines, so worker
// interleaving may only change wall-clock time, never a virtual-time number.
func TestParallelSweepMatchesSequential(t *testing.T) {
	h := testHarness(t)
	qs := job.Queries()[:8]

	seq := *h
	seq.Workers = 1
	par := *h
	par.Workers = 4

	want := seq.SweepParallel(qs)
	got := par.SweepParallel(qs)
	if len(want) != len(got) {
		t.Fatalf("result count: sequential %d, parallel %d", len(want), len(got))
	}
	for i := range want {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("%s: sweep errors: sequential %v, parallel %v", qs[i].Name, want[i].Err, got[i].Err)
		}
		if !reflect.DeepEqual(want[i].Msr, got[i].Msr) {
			t.Fatalf("%s: measurements diverge between sequential and parallel sweeps:\nseq: %+v\npar: %+v",
				qs[i].Name, want[i].Msr, got[i].Msr)
		}
	}

	var bseq, bpar bytes.Buffer
	if err := seq.Plans(&bseq); err != nil {
		t.Fatal(err)
	}
	if err := par.Plans(&bpar); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bseq.Bytes(), bpar.Bytes()) {
		t.Fatal("Plans dump differs between sequential and parallel runs")
	}
}
