package harness

import (
	"bytes"
	"strings"
	"testing"

	"hybridndp/internal/job"
	"hybridndp/internal/sched"
	"hybridndp/internal/vclock"
)

// TestServeDeterministic is the serving determinism contract: for each seed,
// the rendered SLO table and every per-policy metrics dump are byte-identical
// no matter how many wall-clock workers measure the cost table. This test
// also runs under -race in CI.
func TestServeDeterministic(t *testing.T) {
	h := testHarness(t)
	qs := job.Queries()[:24]
	for _, seed := range []int64{3, 9} {
		type snap struct {
			table string
			dumps []string
		}
		var base *snap
		for _, workers := range []int{1, 4} {
			var buf bytes.Buffer
			rep, err := h.SLOSweep(&buf, SLOOptions{
				Queries: qs,
				Horizon: 300 * vclock.Millisecond,
				Seed:    seed,
				Workers: workers,
			})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if rep.Table != buf.String() {
				t.Fatal("report table and writer output diverge")
			}
			if len(rep.Results) != 3 || len(rep.Dumps) != 3 {
				t.Fatalf("want 3 policies, got %d results / %d dumps", len(rep.Results), len(rep.Dumps))
			}
			cur := &snap{table: rep.Table, dumps: rep.Dumps}
			if base == nil {
				base = cur
				continue
			}
			if cur.table != base.table {
				t.Fatalf("seed %d: SLO table differs across worker counts:\n--- workers=1\n%s\n--- workers=%d\n%s",
					seed, base.table, workers, cur.table)
			}
			for i := range cur.dumps {
				if cur.dumps[i] != base.dumps[i] {
					t.Fatalf("seed %d: policy %d metrics dump differs across worker counts", seed, i)
				}
			}
		}
		if base.table == "" || !strings.Contains(base.table, "gold") {
			t.Fatalf("table missing tenant rows:\n%s", base.table)
		}
	}
}

// TestSLOSweepOverloadSeparation is the serving acceptance scenario: under
// the calibrated overload the adaptive policy must beat BOTH forced baselines
// on aggregate SLO miss rate — force-host leaves the device idle, force-ndp
// serializes on the device command slot, adaptive spreads across both pools.
func TestSLOSweepOverloadSeparation(t *testing.T) {
	h := testHarness(t)
	rep, err := h.SLOSweep(nil, SLOOptions{Seed: 5, Horizon: 500 * vclock.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RatePerTenant <= 0 {
		t.Fatal("default scenario should calibrate an overload rate")
	}
	byPolicy := map[sched.Policy]*float64{}
	for _, res := range rep.Results {
		m := MissRate(res)
		byPolicy[res.Policy] = &m
		if res.Completed == 0 {
			t.Fatalf("%v completed nothing", res.Policy)
		}
	}
	adaptive, host, ndp := *byPolicy[sched.Adaptive], *byPolicy[sched.ForceHost], *byPolicy[sched.ForceNDP]
	if adaptive >= host {
		t.Fatalf("adaptive miss rate %.3f not better than force-host %.3f\n%s", adaptive, host, rep.Table)
	}
	if adaptive >= ndp {
		t.Fatalf("adaptive miss rate %.3f not better than force-ndp %.3f\n%s", adaptive, ndp, rep.Table)
	}
}
