package harness

import (
	"fmt"
	"io"
	"strings"

	"hybridndp/internal/fault"
	"hybridndp/internal/fleet"
	"hybridndp/internal/job"
	"hybridndp/internal/obs"
	"hybridndp/internal/query"
	"hybridndp/internal/sched"
	"hybridndp/internal/serve"
	"hybridndp/internal/vclock"
)

// ChaosSLOOptions configures the chaos-driven serving-SLO experiment.
type ChaosSLOOptions struct {
	// Faults is the active fault spec (default "dev1:dev.stall=2ms,seed=1" —
	// one slow fleet member, the scenario hedging exists for).
	Faults string
	// Devices is the fleet size (default 4, range-partitioned).
	Devices int
	// Tenants defaults to two tenants (gold/bronze weights 3/1, 5/20ms SLOs).
	Tenants []serve.TenantConfig
	// Arrival defaults to a stationary Poisson process calibrated at
	// OverloadFactor × measured host-only capacity split across tenants.
	Arrival serve.ArrivalSpec
	// OverloadFactor scales the calibrated rate (default 2.5 — deep overload,
	// so host-only genuinely saturates and offload capacity decides the tail;
	// the plain SLO sweep's mild 1.25 leaves the host pool able to absorb the
	// whole stream and every policy ties).
	OverloadFactor float64
	// Horizon is the arrival window (default 1 virtual second).
	Horizon vclock.Duration
	// Seed drives arrival generation (default 1).
	Seed int64
	// Workers bounds wall-clock parallelism of the cost measurements only
	// (default 8); tables are byte-identical for any value.
	Workers int
	// Queries defaults to the full JOB suite.
	Queries []*query.Query
	// UseDeadlines turns on deadline shedding (arrival + tenant SLO) in every
	// serving run.
	UseDeadlines bool
}

// chaosCombos is the fixed run order: three no-hedge rows off the plain
// chaos table, then the hedged device policies off the hedged table.
var chaosCombos = []struct {
	Label  string
	Policy sched.Policy
	Hedged bool
}{
	{"force-host", sched.ForceHost, false},
	{"force-ndp", sched.ForceNDP, false},
	{"adaptive", sched.Adaptive, false},
	{"ndp+hedge", sched.ForceNDP, true},
	{"adaptive+hedge", sched.Adaptive, true},
}

// Indexes into ChaosSLOReport.Results, per chaosCombos order.
const (
	ChaosForceHost = iota
	ChaosForceNDP
	ChaosAdaptive
	ChaosNDPHedge
	ChaosAdaptiveHedge
)

// ChaosSLOReport is the chaos sweep's outcome: one serving run per
// policy×hedge combo over the identical arrival stream, plus the byte-stable
// rendered table and per-run metrics dumps.
type ChaosSLOReport struct {
	Labels        []string
	Results       []*serve.Result
	Dumps         []string
	Table         string
	RatePerTenant float64
}

// WorstP99 is a run's worst per-tenant p99 — the sweep's tail measure.
func WorstP99(res *serve.Result) vclock.Duration {
	var worst vclock.Duration
	for _, tr := range res.Tenants {
		if tr.P99 > worst {
			worst = tr.P99
		}
	}
	return worst
}

// Gate checks the chaos separation this sweep exists to prove: with one
// fleet member stalled, adaptive placement with hedged shard execution must
// hold a strictly lower worst-tenant p99 AND a strictly lower SLO-miss rate
// than both the force-host baseline and unhedged adaptive. A nil return is a
// pass; the error names the first violated comparison.
func (r *ChaosSLOReport) Gate() error {
	ah := r.Results[ChaosAdaptiveHedge]
	for _, base := range []int{ChaosForceHost, ChaosAdaptive} {
		b := r.Results[base]
		if WorstP99(ah) >= WorstP99(b) {
			return fmt.Errorf("chaos-slo gate: %s p99 %v not below %s p99 %v",
				r.Labels[ChaosAdaptiveHedge], WorstP99(ah), r.Labels[base], WorstP99(b))
		}
		if MissRate(ah) >= MissRate(b) {
			return fmt.Errorf("chaos-slo gate: %s miss rate %.4f not below %s %.4f",
				r.Labels[ChaosAdaptiveHedge], MissRate(ah), r.Labels[base], MissRate(b))
		}
	}
	return nil
}

// ChaosSLOSweep is the end-to-end robustness experiment: measure the
// workload's cost table through a fleet with an active fault plan — once
// unhedged, once with hedged shard execution — then play the identical
// open-loop multi-tenant arrival stream through the serve layer under five
// policy×hedge combos and account per-tenant tail latency against the SLOs.
//
// Chaos reaches serving through the measurement: the per-device stall
// inflates every device-path service time the open-loop simulation replays,
// and hedging caps that inflation at roughly the shard's host-backup cost.
// Under the calibrated overload, force-host queues on saturated host lanes,
// unhedged adaptive offloads into stall-inflated device paths, and hedged
// adaptive offloads into capped ones — the separation Gate enforces. Every
// fleet execution is fingerprint-checked against host-native inside
// MeasureFleet, so the table doubles as a correctness gate under faults.
//
// Everything after the measurements is a single-threaded virtual-time
// simulation; the rendered table and per-run dumps are byte-identical for
// any worker count.
func (h *H) ChaosSLOSweep(w io.Writer, opt ChaosSLOOptions) (*ChaosSLOReport, error) {
	spec := opt.Faults
	if spec == "" {
		spec = "dev1:dev.stall=2ms,seed=1"
	}
	pl, err := fault.Parse(spec)
	if err != nil {
		return nil, err
	}
	devices := opt.Devices
	if devices <= 0 {
		devices = 4
	}
	queries := opt.Queries
	if len(queries) == 0 {
		queries = job.Queries()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 8
	}
	desc, err := fleet.Build(h.DS.Cat, devices, fleet.SchemeRange)
	if err != nil {
		return nil, err
	}
	newFX := func(hedged bool) *fleet.Executor {
		fx := fleet.NewExecutor(h.DS.Cat, h.DS.DB, h.DS.Model, desc)
		fx.BatchSize = h.BatchSize
		fx.Faults = pl
		if hedged {
			fx.Hedge = fleet.HedgeConfig{Enabled: true}
		}
		return fx
	}
	ctPlain, err := serve.MeasureFleet(h.DS, queries, newFX(false), workers)
	if err != nil {
		return nil, err
	}
	ctHedge, err := serve.MeasureFleet(h.DS, queries, newFX(true), workers)
	if err != nil {
		return nil, err
	}

	tenants := opt.Tenants
	if len(tenants) == 0 {
		tenants = []serve.TenantConfig{
			{Name: "gold", Weight: 3, SLO: 5 * vclock.Millisecond, Skew: 1.3},
			{Name: "bronze", Weight: 1, SLO: 20 * vclock.Millisecond, Skew: 1.3},
		}
	}
	arrival := opt.Arrival
	if arrival.Kind == "" {
		arrival = serve.DefaultArrival()
	}
	report := &ChaosSLOReport{}
	if arrival.Kind != "trace" && arrival.Rate <= 0 && !anyTenantRate(tenants) {
		factor := opt.OverloadFactor
		if factor <= 0 {
			factor = 2.5
		}
		// Both tables share the host column (the fallback lane never runs
		// through the fleet), so calibration off either is identical.
		arrival.Rate = factor * ctPlain.HostCapacityQPS(h.DS.Model.HostCores) / float64(len(tenants))
		report.RatePerTenant = arrival.Rate
	}

	var sb strings.Builder
	header(&sb, "Chaos SLO — open-loop serving under injected faults")
	fmt.Fprintf(&sb, "  faults %s   fleet %d-dev range   arrival %s   horizon %s   seed %d   tenants %d\n\n",
		pl, devices, arrival, vclock.Duration(nz(float64(opt.Horizon), float64(vclock.Second))), nzi(opt.Seed, 1), len(tenants))
	for _, combo := range chaosCombos {
		ct := ctPlain
		if combo.Hedged {
			ct = ctHedge
		}
		reg := obs.NewRegistry()
		srv, err := serve.New(h.DS, ct, serve.Config{
			Tenants:      tenants,
			Arrival:      arrival,
			Policy:       combo.Policy,
			Horizon:      opt.Horizon,
			Seed:         opt.Seed,
			Metrics:      reg,
			Queries:      queries,
			UseDeadlines: opt.UseDeadlines,
		})
		if err != nil {
			return nil, err
		}
		res, err := srv.Run()
		if err != nil {
			return nil, err
		}
		report.Labels = append(report.Labels, combo.Label)
		report.Results = append(report.Results, res)
		report.Dumps = append(report.Dumps, reg.Dump())
		fmt.Fprintf(&sb, "  %-14s completed %d/%d   throughput %8.2f q/s   makespan %s   worst-p99 %s   miss %5.1f%%\n",
			combo.Label, res.Completed, res.Requests, res.ThroughputQPS, ms(res.Makespan),
			ms(WorstP99(res)), 100*MissRate(res))
		for _, tr := range res.Tenants {
			fmt.Fprintf(&sb, "    %-8s w%-2d req %5d done %5d quota %4d qfull %4d dl %4d   p50 %s p95 %s p99 %s   miss %4d (%5.1f%%)\n",
				tr.Name, tr.Weight, tr.Requests, tr.Completed, tr.QuotaRejected, tr.QueueRejected, tr.DeadlineRejected,
				ms(tr.P50), ms(tr.P95), ms(tr.P99), tr.SLOMissed, 100*tr.MissRate)
		}
		sb.WriteByte('\n')
	}
	if err := report.Gate(); err == nil {
		sb.WriteString("  gate: PASS (adaptive+hedge beats force-host and unhedged adaptive on worst-p99 and miss rate)\n")
	} else {
		fmt.Fprintf(&sb, "  gate: FAIL — %v\n", err)
	}
	report.Table = sb.String()
	if w != nil {
		if _, err := io.WriteString(w, report.Table); err != nil {
			return nil, err
		}
	}
	return report, nil
}
