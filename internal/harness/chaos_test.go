package harness

import (
	"bytes"
	"strings"
	"testing"

	"hybridndp/internal/fault"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/obs"
)

// TestChaosSweepFullCrashMatchesHost is the headline robustness gate: with a
// device that crashes every single command, the full JOB sweep must still
// answer every query — retries exhaust, the executor falls back to the host —
// and every answer must equal the fault-free host-native result.
func TestChaosSweepFullCrashMatchesHost(t *testing.T) {
	h := testHarness(t)
	plan, err := fault.Parse("dev.crash=1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res := h.ChaosSweep(&buf, plan)
	if !res.Clean() {
		t.Fatalf("full-crash sweep not clean (%d errors, %d mismatches):\n%s",
			res.Errors, res.Mismatches, buf.String())
	}
	if res.Fallbacks == 0 {
		t.Fatal("100% crash plan produced no host fallbacks")
	}
	for _, r := range res.Rows {
		deviceBound := r.Strategy != "native"
		if deviceBound && !r.FellBack {
			t.Fatalf("%s (%s): device-bound query survived a 100%% crash device without falling back", r.Query, r.Strategy)
		}
		if !deviceBound && (r.FellBack || r.Retries != 0) {
			t.Fatalf("%s: host-native query saw fault recovery (retries=%d fellback=%v)", r.Query, r.Retries, r.FellBack)
		}
		if r.Rows != r.BaseRows {
			t.Fatalf("%s: recovered rows %d != host-native %d", r.Query, r.Rows, r.BaseRows)
		}
	}
	// The sweep must leave the executor fault-free for later tests.
	if h.Exec.Faults != nil {
		t.Fatal("ChaosSweep leaked the fault plan into the executor")
	}
}

// TestChaosSweepDeterministic pins the chaos sweep's reproducibility contract:
// the same dataset seed and fault spec produce a byte-identical sweep table —
// independent of the wall-clock worker count, because injectors are keyed per
// query+strategy, not per draw order — and repeating the run reproduces the
// metrics dump byte for byte. (The dump comparison holds the worker count
// fixed: histogram sums are float accumulations, so only the summation order,
// not any recorded value, may differ across worker counts.)
func TestChaosSweepDeterministic(t *testing.T) {
	spec := "flash.read.err=0.05,dev.crash@batch=3,slot.corrupt=0.02,dev.stall=1ms,seed=11"
	plan, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (string, string) {
		t.Helper()
		h, err := NewSeeded(0.01, hw.Cosmos(), job.DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		h.Workers = workers
		reg := h.BindMetrics(obs.NewRegistry())
		var buf bytes.Buffer
		res := h.ChaosSweep(&buf, plan)
		if !res.Clean() {
			t.Fatalf("chaos sweep (workers=%d) not clean:\n%s", workers, buf.String())
		}
		h.PublishStorage(reg)
		return buf.String(), reg.Dump()
	}
	out1, dump1 := run(1)
	out2, dump2 := run(1)
	out4, _ := run(4)
	if out1 != out2 {
		t.Errorf("chaos sweep output differs between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", out1, out2)
	}
	if dump1 != dump2 {
		t.Errorf("metrics dump differs between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", dump1, dump2)
	}
	if out1 != out4 {
		t.Errorf("chaos sweep output depends on the worker count:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", out1, out4)
	}
	if !strings.Contains(dump1, "coop.fault.injected") {
		t.Fatalf("metrics dump records no injected faults:\n%s", dump1)
	}
}

// TestChaosTraceDeterministic pins the traced recovery path: tracing the same
// query under the same fault spec twice yields byte-identical Chrome trace
// JSON (and text report), and the trace contains the retry and host-fallback
// spans that tracecheck -chaos gates on.
func TestChaosTraceDeterministic(t *testing.T) {
	h := testHarness(t)
	plan, err := fault.Parse("dev.crash=1,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	prev := h.Exec.Faults
	h.Exec.Faults = plan
	defer func() { h.Exec.Faults = prev }()
	run := func() (string, string) {
		t.Helper()
		tr, err := h.TraceQuery("8d", "H1")
		if err != nil {
			t.Fatal(err)
		}
		var js, txt bytes.Buffer
		if err := tr.WriteTrace(&js, &txt); err != nil {
			t.Fatal(err)
		}
		return js.String(), txt.String()
	}
	js1, txt1 := run()
	js2, txt2 := run()
	if js1 != js2 {
		t.Error("chaos trace JSON differs between identical runs")
	}
	if txt1 != txt2 {
		t.Error("chaos trace text report differs between identical runs")
	}
	for _, span := range []string{"coop.retry", "coop.fallback.host"} {
		if !strings.Contains(js1, span) {
			t.Errorf("chaos trace missing %s span", span)
		}
	}
}
