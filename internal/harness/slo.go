package harness

import (
	"fmt"
	"io"
	"strings"

	"hybridndp/internal/job"
	"hybridndp/internal/obs"
	"hybridndp/internal/query"
	"hybridndp/internal/sched"
	"hybridndp/internal/serve"
	"hybridndp/internal/vclock"
)

// SLOOptions configures the open-loop serving-SLO experiment.
type SLOOptions struct {
	// Tenants defaults to three tenants (gold/silver/bronze weights 4/2/1)
	// with 5/10/20ms objectives.
	Tenants []serve.TenantConfig
	// Arrival defaults to a stationary Poisson process; when neither the spec
	// nor any tenant carries a rate, the sweep calibrates one at
	// OverloadFactor × the measured host-only capacity split evenly across
	// tenants, so the default scenario is a genuine overload.
	Arrival serve.ArrivalSpec
	// OverloadFactor scales the calibrated rate (default 1.25).
	OverloadFactor float64
	// Horizon is the arrival window (default 1 virtual second).
	Horizon vclock.Duration
	// Seed drives arrival generation (default 1).
	Seed int64
	// Workers bounds the wall-clock parallelism of the cost measurement only
	// (default 8); results are byte-identical for any value.
	Workers int
	// Queries defaults to the full JOB suite.
	Queries []*query.Query
	// QueueDepth and Quantum pass through to serve.Config when > 0.
	QueueDepth int
	Quantum    vclock.Duration
	// UseDeadlines turns on deadline shedding (arrival + tenant SLO) in every
	// serving run.
	UseDeadlines bool
}

// SLOReport is the sweep's outcome: one serving run per policy over the
// identical arrival stream, plus the byte-stable rendered table and each
// policy's metrics dump (for determinism comparisons and -metrics output).
type SLOReport struct {
	Results []*serve.Result
	Dumps   []string
	Table   string
	// RatePerTenant is the effective default per-tenant rate (after
	// calibration, 0 when every tenant carries its own rate).
	RatePerTenant float64
}

// sloPolicies is the fixed policy order of the sweep (baselines first, the
// hybridNDP serving mode last).
var sloPolicies = []sched.Policy{sched.ForceHost, sched.ForceNDP, sched.Adaptive}

// SLOSweep is the serving-front-door experiment: measure the workload's cost
// table once (parallel, memoized), then play the identical open-loop
// multi-tenant arrival stream through the serve layer under force-host,
// force-ndp and adaptive placement, and account per-tenant tail latency
// against the SLOs. Under the default calibrated overload the forced
// baselines leave one pool idle and queue; adaptive spills across both pools
// and holds the tails down — the separation the table makes visible.
//
// Everything after Measure is a single-threaded virtual-time simulation, so
// the table and the per-policy dumps are byte-identical for any worker count.
func (h *H) SLOSweep(w io.Writer, opt SLOOptions) (*SLOReport, error) {
	queries := opt.Queries
	if len(queries) == 0 {
		queries = job.Queries()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 8
	}
	ct, err := serve.MeasureBatched(h.DS, queries, workers, h.BatchSize)
	if err != nil {
		return nil, err
	}
	tenants := opt.Tenants
	if len(tenants) == 0 {
		tenants = []serve.TenantConfig{
			{Name: "gold", Weight: 4, SLO: 5 * vclock.Millisecond, Skew: 1.3},
			{Name: "silver", Weight: 2, SLO: 10 * vclock.Millisecond, Skew: 1.3},
			{Name: "bronze", Weight: 1, SLO: 20 * vclock.Millisecond, Skew: 1.3},
		}
	}
	arrival := opt.Arrival
	if arrival.Kind == "" {
		arrival = serve.DefaultArrival()
	}
	report := &SLOReport{}
	if arrival.Kind != "trace" && arrival.Rate <= 0 && !anyTenantRate(tenants) {
		factor := opt.OverloadFactor
		if factor <= 0 {
			factor = 1.25
		}
		arrival.Rate = factor * ct.HostCapacityQPS(h.DS.Model.HostCores) / float64(len(tenants))
		report.RatePerTenant = arrival.Rate
	}

	var sb strings.Builder
	header(&sb, "Serving SLO — open-loop multi-tenant, JOB front door")
	fmt.Fprintf(&sb, "  arrival %s   horizon %s   seed %d   tenants %d\n\n",
		arrival, vclock.Duration(nz(float64(opt.Horizon), float64(vclock.Second))), nzi(opt.Seed, 1), len(tenants))
	for _, pol := range sloPolicies {
		reg := obs.NewRegistry()
		srv, err := serve.New(h.DS, ct, serve.Config{
			Tenants:      tenants,
			Arrival:      arrival,
			Policy:       pol,
			QueueDepth:   opt.QueueDepth,
			Quantum:      opt.Quantum,
			Horizon:      opt.Horizon,
			Seed:         opt.Seed,
			Metrics:      reg,
			Queries:      queries,
			UseDeadlines: opt.UseDeadlines,
		})
		if err != nil {
			return nil, err
		}
		res, err := srv.Run()
		if err != nil {
			return nil, err
		}
		report.Results = append(report.Results, res)
		report.Dumps = append(report.Dumps, reg.Dump())
		fmt.Fprintf(&sb, "  %-9s completed %d/%d   throughput %8.2f q/s   makespan %s   cache h/m/e %d/%d/%d\n",
			pol, res.Completed, res.Requests, res.ThroughputQPS, ms(res.Makespan),
			res.CacheHits, res.CacheMisses, res.CacheEvictions)
		for _, tr := range res.Tenants {
			fmt.Fprintf(&sb, "    %-8s w%-2d req %5d done %5d quota %4d qfull %4d   p50 %s p95 %s p99 %s   miss %4d (%5.1f%%)\n",
				tr.Name, tr.Weight, tr.Requests, tr.Completed, tr.QuotaRejected, tr.QueueRejected,
				ms(tr.P50), ms(tr.P95), ms(tr.P99), tr.SLOMissed, 100*tr.MissRate)
		}
		sb.WriteByte('\n')
	}
	report.Table = sb.String()
	if w != nil {
		if _, err := io.WriteString(w, report.Table); err != nil {
			return nil, err
		}
	}
	return report, nil
}

// MissRate aggregates one run's SLO misses over its completions.
func MissRate(res *serve.Result) float64 {
	var missed, done int
	for _, tr := range res.Tenants {
		missed += tr.SLOMissed
		done += tr.Completed
	}
	if done == 0 {
		return 0
	}
	return float64(missed) / float64(done)
}

func anyTenantRate(tenants []serve.TenantConfig) bool {
	for _, tc := range tenants {
		if tc.RateQPS > 0 {
			return true
		}
	}
	return false
}

func nz(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}

func nzi(v, def int64) int64 {
	if v != 0 {
		return v
	}
	return def
}
