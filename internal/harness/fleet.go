package harness

import (
	"fmt"
	"io"
	"math"

	"hybridndp/internal/fleet"
	"hybridndp/internal/job"
	"hybridndp/internal/query"
	"hybridndp/internal/vclock"
)

// FleetCell is one query's execution at one fleet size.
type FleetCell struct {
	Mode    string // assignment label ("host", "H0", "H2", "ndp", ...)
	Elapsed vclock.Duration
	Match   bool // result fingerprint equals the single-device baseline
	Err     error
}

// FleetRow is one query across the swept fleet sizes.
type FleetRow struct {
	Query    string
	Strategy string // single-device optimizer decision
	BaseFP   string // baseline result fingerprint
	BaseRows int64
	Cells    []FleetCell // indexed like FleetResult.Counts
	Err      error
}

// FleetResult aggregates a fleet scale-out sweep.
type FleetResult struct {
	Counts     []int
	Spec       string
	Rows       []FleetRow
	Errors     int
	Mismatches int
	// Speedup holds the geometric-mean elapsed speedup of each fleet size
	// over the first count, across device-mode (non-host) queries.
	Speedup []float64
}

// Clean reports a sweep with zero errors and zero result mismatches — the
// fleet's correctness gate: every query at every fleet size must return the
// single-device answer byte for byte.
func (r *FleetResult) Clean() bool { return r.Errors == 0 && r.Mismatches == 0 }

// FleetSweep regenerates the Fig. 12-style scale-out experiment with device
// count as the x-axis: every JOB query executes through scatter-gather fleet
// execution at each fleet size, and every result is fingerprint-checked
// against a single-device cooperative execution of the optimizer's decided
// strategy. Descriptors and split points derive only from the dataset's
// statistics, and the merge consumes shards in partition order, so the sweep
// table is byte-identical across worker counts, interleavings and repeated
// seeded runs.
func (h *H) FleetSweep(w io.Writer, counts []int, spec string) (*FleetResult, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	execs := make([]*fleet.Executor, len(counts))
	for i, n := range counts {
		desc, err := fleet.Build(h.DS.Cat, n, spec)
		if err != nil {
			return nil, err
		}
		if err := desc.Validate(h.DS.Cat); err != nil {
			return nil, fmt.Errorf("fleet descriptor (devices=%d): %w", n, err)
		}
		execs[i] = fleet.NewExecutor(h.DS.Cat, h.DS.DB, h.DS.Model, desc)
		execs[i].BatchSize = h.BatchSize
	}

	qs := job.Queries()
	rows := make([]FleetRow, len(qs))
	h.forEach(len(qs), func(i int) {
		rows[i] = h.fleetOne(qs[i], counts, execs)
	})

	res := &FleetResult{Counts: counts, Spec: spec, Rows: rows}
	header(w, fmt.Sprintf("Fleet scale-out sweep (spec=%s, devices %v)", spec, counts))
	fmt.Fprintf(w, "%-5s %-7s", "query", "strat")
	for _, n := range counts {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("%d-dev", n))
	}
	fmt.Fprintln(w)
	logSum := make([]float64, len(counts))
	nDev := 0
	for _, r := range rows {
		if r.Err != nil {
			res.Errors++
			fmt.Fprintf(w, "%-5s %-7s ERROR %v\n", r.Query, r.Strategy, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-5s %-7s", r.Query, r.Strategy)
		rowOK := true
		for _, c := range r.Cells {
			if c.Err != nil {
				res.Errors++
				rowOK = false
				fmt.Fprintf(w, " %12s", "ERROR")
				continue
			}
			mark := ""
			if !c.Match {
				res.Mismatches++
				rowOK = false
				mark = "!"
			}
			fmt.Fprintf(w, " %11.2f%s", c.Elapsed.Milliseconds(), markOr(mark, " "))
		}
		if rowOK && r.Strategy != "host" {
			nDev++
			for i, c := range r.Cells {
				logSum[i] += math.Log(float64(r.Cells[0].Elapsed) / float64(c.Elapsed))
			}
		}
		fmt.Fprintln(w)
	}
	res.Speedup = make([]float64, len(counts))
	for i := range counts {
		if nDev > 0 {
			res.Speedup[i] = math.Exp(logSum[i] / float64(nDev))
		} else {
			res.Speedup[i] = 1
		}
	}
	fmt.Fprintf(w, "\ngeomean speedup vs %d-dev (device-mode queries):", counts[0])
	for i, n := range counts {
		fmt.Fprintf(w, " %d-dev=%.2fx", n, res.Speedup[i])
	}
	fmt.Fprintf(w, "\n%d queries: %d errors, %d result mismatches\n", len(rows), res.Errors, res.Mismatches)
	return res, nil
}

// markOr returns mark when non-empty, else the fallback.
func markOr(mark, fallback string) string {
	if mark != "" {
		return mark
	}
	return fallback
}

// fleetOne runs one query's single-device baseline and every fleet size.
func (h *H) fleetOne(q *query.Query, counts []int, execs []*fleet.Executor) FleetRow {
	row := FleetRow{Query: q.Name}
	d, err := h.Opt.Decide(q)
	if err != nil {
		row.Err = err
		return row
	}
	row.Strategy = d.StrategyLabel()
	base, err := h.Exec.Run(d.Plan, strategyOf(d.Hybrid, d.NDP, d.Split))
	if err != nil {
		row.Err = fmt.Errorf("baseline: %w", err)
		return row
	}
	row.BaseFP = fleet.Fingerprint(base.Result)
	row.BaseRows = base.Result.RowCount
	row.Cells = make([]FleetCell, len(counts))
	for i, x := range execs {
		cell := &row.Cells[i]
		a, err := fleet.PlanShards(h.Opt, x.Desc, d)
		if err != nil {
			cell.Err = err
			continue
		}
		cell.Mode = a.Label()
		rep, err := x.Run(a)
		if err != nil {
			cell.Err = err
			continue
		}
		cell.Elapsed = rep.Elapsed
		cell.Match = fleet.Fingerprint(rep.Result) == row.BaseFP
	}
	return row
}
