package hw

import (
	"bytes"
	"strings"
	"testing"

	"hybridndp/internal/vclock"
)

func TestCosmosModelValid(t *testing.T) {
	m := Cosmos()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := m.ComputeRatio(); r < 30 || r > 33 {
		t.Fatalf("CoreMark ratio %.1f, paper says ≈31.2", r)
	}
	if m.MemRatio() <= 1 {
		t.Fatal("host memory bandwidth must exceed the device's")
	}
	if m.DeviceFlashGBps <= m.HostFlashGBps {
		t.Fatal("internal flash bandwidth must exceed the external path (the NDP premise)")
	}
	if p := m.DeviceCPUPenalty(); p < 1 || p > 4 {
		t.Fatalf("device CPU penalty %.2f outside the calibrated band", p)
	}
}

func TestValidateRejectsBrokenModels(t *testing.T) {
	cases := []func(*Model){
		func(m *Model) { m.HostCoreMark = 0 },
		func(m *Model) { m.PCIeLanes = 0 },
		func(m *Model) { m.PCIeVersion = 9 },
		func(m *Model) { m.FlashPageBytes = 0 },
		func(m *Model) { m.JoinBufBytes = 0 },
		func(m *Model) { m.DeviceNDPBudget = m.DeviceMemBytes + 1 },
		func(m *Model) { m.SharedSlots = 0 },
		func(m *Model) { m.HostFlashGBps = 0 },
	}
	for i, mut := range cases {
		m := Cosmos()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: broken model passed validation", i)
		}
	}
}

func TestDeviceRatesSlowerPerRecordCheaperFlash(t *testing.T) {
	m := Cosmos()
	h, d := HostRates(m), DeviceRates(m)
	if d.EvalNsPerTerm <= h.EvalNsPerTerm {
		t.Fatal("device record evaluation must be slower than host")
	}
	if d.HashBuildNsRec <= h.HashBuildNsRec || d.HashProbeNsRec <= h.HashProbeNsRec {
		t.Fatal("device hashing must be slower than host")
	}
	if d.FlashNsPerByte >= h.FlashNsPerByte {
		t.Fatal("device flash streaming must be cheaper than the host path")
	}
	if !d.OnDevice || h.OnDevice {
		t.Fatal("OnDevice flags wrong")
	}
}

func TestBlockStackTax(t *testing.T) {
	m := Cosmos()
	n, b := HostRates(m), BlockStackRates(m)
	if b.StackOverhead <= n.StackOverhead {
		t.Fatal("BLK stack must carry the abstraction tax")
	}
	tlN, tlB := vclock.NewTimeline("n"), vclock.NewTimeline("b")
	n.FlashRead(tlN, 1<<20, 4)
	b.FlashRead(tlB, 1<<20, 4)
	if tlB.Now() <= tlN.Now() {
		t.Fatal("BLK flash reads must cost more than native")
	}
}

func TestCFPCIeGenerationsMonotone(t *testing.T) {
	prev := 0.0
	for gen := 1; gen <= 6; gen++ {
		c := CFPCIe(gen, 8)
		bw := c.BandwidthGBps()
		if bw <= prev {
			t.Fatalf("gen %d bandwidth %.2f not above gen %d's %.2f", gen, bw, gen-1, prev)
		}
		prev = bw
	}
	// Lanes scale bandwidth.
	if CFPCIe(2, 16).BandwidthGBps() <= CFPCIe(2, 8).BandwidthGBps() {
		t.Fatal("doubling lanes must increase bandwidth")
	}
	// Unknown generation falls back rather than exploding.
	if CFPCIe(99, 8).BandwidthGBps() != CFPCIe(2, 8).BandwidthGBps() {
		t.Fatal("unknown generation should fall back to gen 2")
	}
	if CFPCIe(2, 0).BandwidthGBps() <= 0 {
		t.Fatal("zero lanes should clamp to one")
	}
}

func TestTransferBlocksChargeCommands(t *testing.T) {
	c := CFPCIe(2, 8)
	one := c.Transfer(1<<20, 1<<20)
	many := c.Transfer(1<<20, 4<<10) // 256 commands
	if many <= one {
		t.Fatal("more blocks must cost more (per-command overhead)")
	}
	if c.Transfer(0, 4<<10) != 0 {
		t.Fatal("zero-byte transfer must be free")
	}
	// Default block size applies when none given.
	if c.Transfer(1<<20, 0) <= 0 {
		t.Fatal("default block size broken")
	}
}

func TestRatesChargeCategories(t *testing.T) {
	m := Cosmos()
	r := HostRates(m)
	tl := vclock.NewTimeline("x")
	r.Eval(tl, 100, 2)
	r.Memcmp(tl, 1000, 10)
	r.Memcpy(tl, 1000)
	r.HashBuild(tl, 10)
	r.HashProbe(tl, 10)
	r.SeekIndex(tl, 5)
	r.SeekData(tl, 5)
	r.Group(tl, 10)
	r.RowOverhead(tl, 10, "")
	r.Transfer(tl, 1000, 100)
	r.Deref(tl, 10, 3, 100)
	for _, cat := range []string{CatEval, CatMemcmp, CatCompareKeys, CatMemcpy,
		CatHashBuild, CatHashProbe, CatSeekIndex, CatSeekData, CatGroup, CatSelection, CatTransfer, CatBufferManage} {
		if tl.Booked(cat) <= 0 {
			t.Errorf("category %q not charged", cat)
		}
	}
	// Zero/negative inputs are no-ops.
	before := tl.Now()
	r.Eval(tl, 0, 2)
	r.Memcpy(tl, 0)
	r.HashBuild(tl, 0)
	r.Deref(tl, 0, 3, 0)
	if tl.Now() != before {
		t.Fatal("zero work charged time")
	}
}

func TestProfilerDerivesModel(t *testing.T) {
	p := Profiler{Base: Cosmos(), Quick: true}
	res := p.Run()
	if len(res.MemcpyGBps) == 0 || res.FloatOpsPerSec <= 0 {
		t.Fatal("profiler measured nothing")
	}
	if err := res.Model.Validate(); err != nil {
		t.Fatalf("derived model invalid: %v", err)
	}
	// The derived model preserves the CoreMark calibration.
	if res.Model.ComputeRatio() != Cosmos().ComputeRatio() {
		t.Fatal("profiler must not alter the CoreMark calibration")
	}
	var buf bytes.Buffer
	if err := res.WriteParameterFile(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ndp_hw_fcf", "hw_mss", "hw_msj", "hw_ipl", "hw_ipv"} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("parameter file missing %s", key)
		}
	}
	buf.Reset()
	if err := res.Report(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "memcpy") {
		t.Fatal("report missing measurements")
	}
}
