package hw

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// ProfileResult is the output of the hardware profiling benchmark (paper
// §3.1): the measured characteristics that are translated into the Table 2
// parameter values and placed in the DBMS parameter file before startup.
type ProfileResult struct {
	MemcpyGBps     map[int]float64 // buffer size → sustained GB/s
	FloatOpsPerSec float64
	FlashReadGBps  float64
	FlashWriteGBps float64
	HandshakeUS    map[int]float64 // transfer size → round-trip µs
	Model          Model           // the derived parameter set
}

// Profiler runs the on-device micro-benchmark suite. In the paper this runs
// on the smart-storage board before DBMS startup; here the host-side numbers
// are really measured and the device-side numbers are derived from the
// published COSMOS+ ratios of the base model.
type Profiler struct {
	// Base supplies the device-side ratios (CoreMark scores, bandwidth
	// ratios) that a real profiler would measure on the board.
	Base Model
	// Quick reduces iteration counts for use in tests.
	Quick bool
}

// Run executes the benchmark suite and derives the model parameters.
func (p *Profiler) Run() ProfileResult {
	res := ProfileResult{
		MemcpyGBps:  make(map[int]float64),
		HandshakeUS: make(map[int]float64),
	}
	iters := 50
	if p.Quick {
		iters = 3
	}

	// CPU/memory characteristics: memcpy across various buffer sizes.
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20, 8 << 20} {
		src := make([]byte, size)
		dst := make([]byte, size)
		for i := range src {
			src[i] = byte(i)
		}
		start := time.Now() //lint:allow wallclock (profiler measures real host memcpy throughput)
		n := iters
		if size >= 1<<20 {
			n = iters / 2
		}
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			copy(dst, src)
		}
		el := time.Since(start).Seconds() //lint:allow wallclock (profiler measures real host memcpy throughput)
		if el <= 0 {
			el = 1e-9
		}
		res.MemcpyGBps[size] = float64(size) * float64(n) / el / 1e9
	}

	// Floating-point throughput.
	{
		n := 2_000_000
		if p.Quick {
			n = 100_000
		}
		x := 1.000001
		start := time.Now() //lint:allow wallclock (profiler measures real host FLOP throughput)
		for i := 0; i < n; i++ {
			x = x*1.0000001 + 0.0000001
		}
		el := time.Since(start).Seconds() //lint:allow wallclock (profiler measures real host FLOP throughput)
		if el <= 0 {
			el = 1e-9
		}
		res.FloatOpsPerSec = float64(n) * 2 / el
		_ = x
	}

	// Flash performance: mix of random reads and writes against the
	// simulated device characteristics (a real board measures its NAND).
	res.FlashReadGBps = p.Base.DeviceFlashGBps
	res.FlashWriteGBps = p.Base.DeviceFlashGBps * 0.4

	// Interconnect: handshake-like transfers of different sizes.
	pc := CFPCIe(p.Base.PCIeVersion, p.Base.PCIeLanes)
	for _, size := range []int{512, 4 << 10, 64 << 10, 1 << 20} {
		d := pc.Transfer(int64(size), int64(size))
		res.HandshakeUS[size] = float64(d) / 1e3
	}

	m := p.Base
	// Host memcpy bandwidth from the largest measured buffer (steady state).
	if gbps, ok := res.MemcpyGBps[8<<20]; ok && gbps > 0 {
		m.HostMemcpyGBps = gbps
		m.DeviceMemcpyGBps = gbps / p.Base.MemRatio()
	}
	res.Model = m
	return res
}

// WriteParameterFile renders the derived model in the DBMS parameter-file
// format the paper describes (static values placed before startup).
func (r ProfileResult) WriteParameterFile(w io.Writer) error {
	m := r.Model
	lines := []string{
		fmt.Sprintf("ndp_hw_fcf = %.0f", m.DeviceFlashClockMHz),
		fmt.Sprintf("host_hw_fcf = %.0f", m.HostFlashClockMHz),
		fmt.Sprintf("hw_fsw = %.2f", m.FlashWeight),
		fmt.Sprintf("hw_cme_host_gbps = %.2f", m.HostMemcpyGBps),
		fmt.Sprintf("hw_cme_device_gbps = %.2f", m.DeviceMemcpyGBps),
		fmt.Sprintf("hw_ccf_host_mhz = %.0f", m.HostCPUClockMHz),
		fmt.Sprintf("hw_ccf_device_mhz = %.0f", m.DeviceCPUClockMHz),
		fmt.Sprintf("hw_ccn_host = %d", m.HostCores),
		fmt.Sprintf("hw_ccn_device = %d", m.DeviceCores),
		fmt.Sprintf("hw_msh = %d", m.HostMemBytes),
		fmt.Sprintf("hw_mss = %d", m.SelBufBytes),
		fmt.Sprintf("hw_msj = %d", m.JoinBufBytes),
		fmt.Sprintf("ndp_hw_msw = %.2f", m.DeviceMemWeight),
		fmt.Sprintf("hw_ipl = %d", m.PCIeLanes),
		fmt.Sprintf("hw_ipv = %d", m.PCIeVersion),
	}
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Report renders the raw measurements.
func (r ProfileResult) Report(w io.Writer) error {
	sizes := make([]int, 0, len(r.MemcpyGBps))
	for s := range r.MemcpyGBps {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, s := range sizes {
		if _, err := fmt.Fprintf(w, "memcpy %8d B: %6.2f GB/s\n", s, r.MemcpyGBps[s]); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "float ops: %.0f op/s\n", r.FloatOpsPerSec)
	fmt.Fprintf(w, "flash read: %.2f GB/s, write: %.2f GB/s\n", r.FlashReadGBps, r.FlashWriteGBps)
	hs := make([]int, 0, len(r.HandshakeUS))
	for s := range r.HandshakeUS {
		hs = append(hs, s)
	}
	sort.Ints(hs)
	for _, s := range hs {
		fmt.Fprintf(w, "handshake %8d B: %8.2f µs\n", s, r.HandshakeUS[s])
	}
	return nil
}
