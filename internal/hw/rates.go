package hw

import "hybridndp/internal/vclock"

// Cost-account categories. The device-side names follow the operation
// breakdown of paper Table 4.
const (
	CatMemcmp       = "memcmp"
	CatCompareKeys  = "compare internal keys"
	CatSeekIndex    = "seek index block"
	CatSeekData     = "seek data block"
	CatSelection    = "selection processing"
	CatFlashLoad    = "flash load"
	CatMemcpy       = "memcpy"
	CatEval         = "record evaluation"
	CatHashBuild    = "hash build"
	CatHashProbe    = "hash probe"
	CatGroup        = "grouping"
	CatTransfer     = "result transfer"
	CatNDPSetup     = "NDP setup (command)"
	CatWaitInitial  = "wait (initial device exec.)"
	CatWaitFetch    = "wait (further device exec.)"
	CatWaitSlots    = "wait (host fetch / free slot)"
	CatHostProcess  = "processing"
	CatBufferManage = "buffer management"

	// Fault-injection categories (chaos runs only; see internal/fault). All
	// three book zero time on fault-free runs, so profiles stay unchanged.
	CatFaultStall = "fault (device stall)"
	CatFaultWait  = "fault (host wait for failure)"
	CatBackoff    = "fault (retry backoff)"

	// CatHedgeWait floors a hedged shard's host backup at the hedge launch
	// instant (fleet hedging; zero on hedge-free runs).
	CatHedgeWait = "hedge (host backup floor)"
)

// Baseline host-side primitive costs. These are the single calibration point
// of the simulator; every device-side cost is derived from them through the
// measured CoreMark and memcpy ratios of the hardware model, so the *shape*
// of all results depends only on the published ratios.
const (
	hostEvalNsPerTerm   = 40.0  // evaluate one predicate term on one record
	hostHashBuildNsRec  = 60.0  // insert one record into an in-buffer hash table
	hostHashProbeNsRec  = 40.0  // probe one record against a hash table
	hostSeekNsPerLevel  = 120.0 // one binary-search level in an index block
	hostGroupNsRec      = 70.0  // hash-group one record
	hostCompareNsPerKey = 25.0  // fixed per-comparison overhead besides byte memcmp
	hostRowOverheadNs   = 15.0  // per-record pipeline bookkeeping (volcano next())
)

// Rates is the per-primitive virtual cost table of one engine. All execution
// operators price their work exclusively through a Rates value, so host and
// device engines share operator code and differ only in the table they carry.
type Rates struct {
	EvalNsPerTerm   float64 // predicate evaluation per record per term
	MemcmpNsPerByte float64
	MemcpyNsPerByte float64
	HashBuildNsRec  float64
	HashProbeNsRec  float64
	SeekNsPerLevel  float64
	GroupNsRec      float64
	CompareNsPerKey float64
	RowOverheadNs   float64

	FlashNsPerByte  float64 // sequential flash streaming
	FlashPageLatNs  float64 // fixed per-page latency
	FlashPageBytes  int64
	StackOverhead   float64 // multiplier ≥ 1 on the flash path (BLK stack abstraction tax)
	Interconnect    PCIeCost
	OnDevice        bool // true for the device-side table
	ParallelFactor  float64
	ComputeRatioVal float64
}

// HostRates derives the host engine's cost table from the hardware model.
func HostRates(m Model) Rates {
	memNs := 1.0 / m.HostMemcpyGBps // GB/s → ns per byte
	return Rates{
		EvalNsPerTerm:   hostEvalNsPerTerm,
		MemcmpNsPerByte: memNs,
		MemcpyNsPerByte: memNs,
		HashBuildNsRec:  hostHashBuildNsRec,
		HashProbeNsRec:  hostHashProbeNsRec,
		SeekNsPerLevel:  hostSeekNsPerLevel,
		GroupNsRec:      hostGroupNsRec,
		CompareNsPerKey: hostCompareNsPerKey,
		RowOverheadNs:   hostRowOverheadNs,

		FlashNsPerByte: 1.0 / m.HostFlashGBps,
		FlashPageLatNs: m.FlashReadLatencyUS * 1000 * 1.2, // host path adds protocol latency
		FlashPageBytes: m.FlashPageBytes,
		StackOverhead:  1.0,
		Interconnect:   CFPCIe(m.PCIeVersion, m.PCIeLanes),
		OnDevice:       false,
		ParallelFactor: 1.0,

		ComputeRatioVal: 1.0,
	}
}

// BlockStackRates derives the BLK baseline's table: the host table with the
// file-system abstraction tax on the flash path.
func BlockStackRates(m Model) Rates {
	r := HostRates(m)
	r.StackOverhead = 1.0 + m.BlockStackOverheadPct/100.0
	return r
}

// DeviceRates derives the NDP engine's cost table. Record-at-a-time
// primitives scale with the effective device CPU penalty (the data-path
// ratio discounted by the lean-pipeline factor — see Model.DeviceCPUPenalty),
// memory streaming with the memcpy bandwidth ratio, and the flash path uses
// the superior internal bandwidth with no interconnect in the way.
func DeviceRates(m Model) Rates {
	dcr := m.DeviceCPUPenalty()
	memNs := 1.0 / m.DeviceMemcpyGBps
	return Rates{
		EvalNsPerTerm:   hostEvalNsPerTerm * dcr,
		MemcmpNsPerByte: memNs,
		MemcpyNsPerByte: memNs,
		HashBuildNsRec:  hostHashBuildNsRec * dcr,
		HashProbeNsRec:  hostHashProbeNsRec * dcr,
		SeekNsPerLevel:  hostSeekNsPerLevel * dcr,
		GroupNsRec:      hostGroupNsRec * dcr,
		CompareNsPerKey: hostCompareNsPerKey * dcr,
		RowOverheadNs:   hostRowOverheadNs * dcr,

		FlashNsPerByte: 1.0 / m.DeviceFlashGBps,
		FlashPageLatNs: m.FlashReadLatencyUS * 1000,
		FlashPageBytes: m.FlashPageBytes,
		StackOverhead:  1.0,
		Interconnect:   CFPCIe(m.PCIeVersion, m.PCIeLanes),
		OnDevice:       true,
		ParallelFactor: 1.0,

		ComputeRatioVal: dcr,
	}
}

// Eval charges evaluating terms predicate terms over n records.
func (r Rates) Eval(tl *vclock.Timeline, n, terms int) {
	if n <= 0 || terms <= 0 {
		return
	}
	tl.Charge(CatEval, vclock.Duration(float64(n)*float64(terms)*r.EvalNsPerTerm))
}

// Memcmp charges comparing n bytes plus the per-comparison overhead for cmp
// individual comparisons.
func (r Rates) Memcmp(tl *vclock.Timeline, bytes int64, cmps int) {
	if bytes > 0 {
		tl.Charge(CatMemcmp, vclock.Duration(float64(bytes)*r.MemcmpNsPerByte))
	}
	if cmps > 0 {
		tl.Charge(CatCompareKeys, vclock.Duration(float64(cmps)*r.CompareNsPerKey))
	}
}

// Memcpy charges copying n bytes.
func (r Rates) Memcpy(tl *vclock.Timeline, bytes int64) {
	if bytes <= 0 {
		return
	}
	tl.Charge(CatMemcpy, vclock.Duration(float64(bytes)*r.MemcpyNsPerByte))
}

// HashBuild charges inserting n records into an in-buffer hash table.
func (r Rates) HashBuild(tl *vclock.Timeline, n int) {
	if n <= 0 {
		return
	}
	tl.Charge(CatHashBuild, vclock.Duration(float64(n)*r.HashBuildNsRec))
}

// HashProbe charges probing n records.
func (r Rates) HashProbe(tl *vclock.Timeline, n int) {
	if n <= 0 {
		return
	}
	tl.Charge(CatHashProbe, vclock.Duration(float64(n)*r.HashProbeNsRec))
}

// SeekIndex charges one sparse-index binary search of the given depth.
func (r Rates) SeekIndex(tl *vclock.Timeline, levels int) {
	if levels <= 0 {
		levels = 1
	}
	tl.Charge(CatSeekIndex, vclock.Duration(float64(levels)*r.SeekNsPerLevel))
}

// SeekData charges locating a record inside a data block.
func (r Rates) SeekData(tl *vclock.Timeline, levels int) {
	if levels <= 0 {
		levels = 1
	}
	tl.Charge(CatSeekData, vclock.Duration(float64(levels)*r.SeekNsPerLevel))
}

// Group charges hash-grouping n records.
func (r Rates) Group(tl *vclock.Timeline, n int) {
	if n <= 0 {
		return
	}
	tl.Charge(CatGroup, vclock.Duration(float64(n)*r.GroupNsRec))
}

// RowOverhead charges the volcano per-record bookkeeping for n records under
// the given category (defaults to selection processing).
func (r Rates) RowOverhead(tl *vclock.Timeline, n int, category string) {
	if n <= 0 {
		return
	}
	if category == "" {
		category = CatSelection
	}
	tl.Charge(category, vclock.Duration(float64(n)*r.RowOverheadNs))
}

// Deref charges pointer-cache dereferencing (paper §4.2): with more than two
// tables the device stores intermediate results as pointers, so every
// produced tuple's positions must be resolved against the underlying caches
// whenever the tuple moves up the pipeline. This is the device's overload
// mechanism on deep offloaded plans — the cost grows with both the
// intermediate cardinality and the pipeline depth.
func (r Rates) Deref(tl *vclock.Timeline, n, positions int, bytes int64) {
	if n <= 0 || positions <= 0 {
		return
	}
	// Each position resolves through the operation hierarchy's cache levels
	// (selection cache → join cache → shared buffer), ~3 hops per pointer.
	d := float64(n)*float64(positions)*3*r.SeekNsPerLevel + float64(bytes)*r.MemcpyNsPerByte
	tl.Charge(CatBufferManage, vclock.Duration(d))
}

// FlashRead charges streaming pages of flash plus per-page latency. Sequential
// streaming amortizes the page latency over the channel pipeline, so only a
// fraction of the nominal latency is charged per page beyond the first.
func (r Rates) FlashRead(tl *vclock.Timeline, bytes int64, randomPages int) {
	if bytes <= 0 && randomPages <= 0 {
		return
	}
	stream := float64(bytes) * r.FlashNsPerByte * r.StackOverhead
	lat := float64(randomPages) * r.FlashPageLatNs * r.StackOverhead
	tl.Charge(CatFlashLoad, vclock.Duration(stream+lat))
}

// Transfer charges moving bytes over the interconnect in blocks.
func (r Rates) Transfer(tl *vclock.Timeline, bytes, blockBytes int64) {
	if bytes <= 0 {
		return
	}
	tl.Charge(CatTransfer, r.Interconnect.Transfer(bytes, blockBytes)*vclock.Duration(r.StackOverhead))
}
