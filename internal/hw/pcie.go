package hw

import "hybridndp/internal/vclock"

// PCIe line parameters per generation: transfer rate in GT/s per lane and the
// line-encoding efficiency (8b/10b for gen 1-2, 128b/130b from gen 3 on).
type pcieGen struct {
	gtps       float64
	efficiency float64
}

var pcieGens = map[int]pcieGen{
	1: {2.5, 8.0 / 10.0},
	2: {5.0, 8.0 / 10.0},
	3: {8.0, 128.0 / 130.0},
	4: {16.0, 128.0 / 130.0},
	5: {32.0, 128.0 / 130.0},
	6: {64.0, 242.0 / 256.0}, // FLIT mode approximation
}

// pcieProtocolEfficiency accounts for TLP header, DLLP and flow-control
// overhead plus the NVMe command/result-slot polling protocol the NDP result
// path shares with the host's flash read path. The effective external
// bandwidth it yields (≈0.8 GB/s for PCIe 2.0 x8) deliberately lands near
// the host flash path's effective bandwidth: both cross the same stack.
const pcieProtocolEfficiency = 0.3

// PCIeCost is the cf_pcie cost function of the paper (eq. 4, 7): it prices a
// transfer over the host/device interconnect from the PCIe version and lane
// count. PerByte is the streaming cost, PerCommand the fixed round-trip
// overhead of one NDP command / DMA descriptor handshake.
type PCIeCost struct {
	PerByte    vclock.Duration
	PerCommand vclock.Duration
}

// CFPCIe computes the PCIe cost function for a version/lane pair. Unknown
// versions fall back to gen 2 (the paper's platform).
func CFPCIe(version, lanes int) PCIeCost {
	gen, ok := pcieGens[version]
	if !ok {
		gen = pcieGens[2]
	}
	if lanes <= 0 {
		lanes = 1
	}
	// GT/s per lane × lanes × encoding × protocol efficiency → usable GB/s.
	gbps := gen.gtps * float64(lanes) / 8.0 * gen.efficiency * pcieProtocolEfficiency
	bytesPerNs := gbps // GB/s == bytes/ns
	return PCIeCost{
		PerByte:    vclock.Duration(1.0 / bytesPerNs),
		PerCommand: 4 * vclock.Microsecond,
	}
}

// Transfer prices moving n bytes split into blocks of blockBytes over the
// link (paper eq. 4: transfer volume divided in blocks times cf_pcie).
func (c PCIeCost) Transfer(n, blockBytes int64) vclock.Duration {
	if n <= 0 {
		return 0
	}
	if blockBytes <= 0 {
		blockBytes = 64 * KB
	}
	blocks := (n + blockBytes - 1) / blockBytes
	return vclock.Duration(float64(n))*c.PerByte + vclock.Duration(blocks)*c.PerCommand
}

// BandwidthGBps reports the effective usable bandwidth of the link.
func (c PCIeCost) BandwidthGBps() float64 { return 1.0 / float64(c.PerByte) }
