// Package hw implements the abstract hardware model of hybridNDP (paper §3.1,
// Table 2): flash, CPU, memory and interconnect characteristics of the host
// and the smart-storage device, the PCIe cost function cf_pcie, the profiler
// micro-benchmark that fills the parameter set, and the per-primitive rate
// tables the execution engines charge virtual time against.
package hw

import (
	"fmt"
	"math"
)

// Model is the abstract hardware model of paper Table 2. One Model describes
// the whole host+device pair; host_* and device_* prefixed fields correspond
// to the host_hw / ndp_hw parameter split of the paper.
type Model struct {
	// FLASH
	DeviceFlashClockMHz float64 // ndp_hw_FCF: flash interface clock as seen on device
	HostFlashClockMHz   float64 // host_hw_FCF: effective flash clock as seen from host
	FlashWeight         float64 // hw_FSW: flash weighting for the hybrid-index calculation

	// CPU
	HostMemcpyGBps    float64 // hw_CME (host side): sustained memcpy bandwidth
	DeviceMemcpyGBps  float64 // hw_CME (device side)
	HostCPUClockMHz   float64 // hw_CCF host
	DeviceCPUClockMHz float64 // hw_CCF device
	HostCores         int     // hw_CCN host
	DeviceCores       int     // hw_CCN device (cores usable in total; 1 is NDP-dedicated)
	HostCoreMark      float64 // CoreMark it/s, host (calibration, paper: 92343)
	DeviceCoreMark    float64 // CoreMark it/s, single NDP ARM core (paper: 2964)

	// MEMORY
	HostMemBytes     int64   // hw_MSH: host memory size
	DeviceMemBytes   int64   // total device DRAM (paper: 1 GB)
	SelBufBytes      int64   // hw_MSS: on-device buffer per selection (paper: 17 MB)
	JoinBufBytes     int64   // hw_MSJ: on-device buffer per join (paper: 7 MB)
	DeviceMemWeight  float64 // ndp_hw_MSW: memory weighting for hybrid-index calculation
	DeviceNDPBudget  int64   // usable NDP buffer memory after reservations (paper: ~400 MB)
	SharedBufferSlot int64   // size of one shared result-buffer slot
	SharedSlots      int     // number of shared result-buffer slots

	// INTERCONNECT
	PCIeLanes   int // hw_IPL
	PCIeVersion int // hw_IPV

	// FLASH GEOMETRY
	FlashPageBytes        int64   // flash page size
	DeviceFlashGBps       float64 // internal (on-device) sequential flash bandwidth
	HostFlashGBps         float64 // external effective flash bandwidth incl. protocol
	FlashReadLatencyUS    float64 // per-page read latency, device side
	BlockStackOverheadPct float64 // extra host path overhead of the BLK (ext4) stack, percent

	// CACHES — sized as fractions of the stored dataset so the paper's
	// memory-pressure ratios (16 GB data vs 4 GB host RAM; 520 MB device
	// temporary storage) hold at any generator scale.
	HostCacheFraction   float64 // host block cache, as in MyRocks/RocksDB
	DeviceCacheFraction float64 // on-device data-block buffer share
}

const (
	// KB, MB, GB in bytes.
	KB = int64(1) << 10
	MB = int64(1) << 20
	GB = int64(1) << 30
)

// Cosmos returns the hardware model of the paper's experimental platform: a
// 4-core 3.4 GHz i5 host with 4 GB RAM against a COSMOS+ board (2×ARM A9
// @667 MHz, 1 GB DRAM, PCIe 2.0 x8, MLC-in-SLC-mode flash). The CoreMark
// scores are the paper's measured values.
func Cosmos() Model {
	return Model{
		// The FCF pair feeds the split_cpu ratio (eq. 9): the effective
		// clock at which each side chews through flash-resident data.
		DeviceFlashClockMHz: 100,
		HostFlashClockMHz:   250,
		FlashWeight:         1.0,

		HostMemcpyGBps:    10.0,
		DeviceMemcpyGBps:  1.6,
		HostCPUClockMHz:   3400,
		DeviceCPUClockMHz: 667,
		HostCores:         4,
		DeviceCores:       2,
		HostCoreMark:      92343,
		DeviceCoreMark:    2964,

		HostMemBytes:     4 * GB,
		DeviceMemBytes:   1 * GB,
		SelBufBytes:      17 * MB,
		JoinBufBytes:     7 * MB,
		DeviceMemWeight:  1.0,
		DeviceNDPBudget:  410 * MB,
		SharedBufferSlot: 512 * KB,
		SharedSlots:      4,

		PCIeLanes:   8,
		PCIeVersion: 2,

		FlashPageBytes:        16 * KB,
		DeviceFlashGBps:       3.2,
		HostFlashGBps:         0.6,
		FlashReadLatencyUS:    60,
		BlockStackOverheadPct: 25,

		HostCacheFraction:   0.25,
		DeviceCacheFraction: 0.03,
	}
}

// Validate reports whether the model is internally consistent.
func (m Model) Validate() error {
	switch {
	case m.HostCoreMark <= 0 || m.DeviceCoreMark <= 0:
		return fmt.Errorf("hw: CoreMark scores must be positive (host=%v device=%v)", m.HostCoreMark, m.DeviceCoreMark)
	case m.PCIeLanes <= 0:
		return fmt.Errorf("hw: PCIe lane count must be positive (got %d)", m.PCIeLanes)
	case m.PCIeVersion < 1 || m.PCIeVersion > 6:
		return fmt.Errorf("hw: PCIe version %d out of range [1,6]", m.PCIeVersion)
	case m.FlashPageBytes <= 0:
		return fmt.Errorf("hw: flash page size must be positive (got %d)", m.FlashPageBytes)
	case m.SelBufBytes <= 0 || m.JoinBufBytes <= 0:
		return fmt.Errorf("hw: device buffer sizes must be positive")
	case m.DeviceNDPBudget > m.DeviceMemBytes:
		return fmt.Errorf("hw: NDP budget %d exceeds device memory %d", m.DeviceNDPBudget, m.DeviceMemBytes)
	case m.SharedSlots <= 0 || m.SharedBufferSlot <= 0:
		return fmt.Errorf("hw: shared buffer configuration must be positive")
	case m.DeviceFlashGBps <= 0 || m.HostFlashGBps <= 0 || m.HostMemcpyGBps <= 0 || m.DeviceMemcpyGBps <= 0:
		return fmt.Errorf("hw: bandwidths must be positive")
	}
	return nil
}

// ComputeRatio is the host/device single-core compute performance ratio
// (paper: 92343/2964 ≈ 31×).
func (m Model) ComputeRatio() float64 { return m.HostCoreMark / m.DeviceCoreMark }

// MemRatio is the host/device memory-bandwidth ratio, used for memory-bound
// primitives such as memcmp/memcpy where the penalty is much smaller than the
// raw compute ratio.
func (m Model) MemRatio() float64 { return m.HostMemcpyGBps / m.DeviceMemcpyGBps }

// NDPLeanFactor models that the offloaded NDP pipeline is lean, hand-written
// code over raw records, while the host engine pays the full SQL-layer
// per-record overhead (handler API, interpreted row format, MVCC checks).
// This is what lets a 667 MHz ARM core stay roughly competitive per record
// with a 3.4 GHz host running MySQL — the effect the paper's Exp 4
// demonstrates. Full NDP still loses on large plans through the pointer-cache
// dereferencing of deep pipelines (§4.2) and the bounded device buffers,
// which is the paper's stated failure mode for whole-plan offloading.
// BenchmarkAblationLeanFactor sweeps this constant.
const NDPLeanFactor = 10.7

// DataPathRatio is the raw host/device penalty of record-at-a-time work:
// such loops are part compute-bound, part memory-bound, so the geometric
// mean of the CoreMark and memory-bandwidth ratios is used.
func (m Model) DataPathRatio() float64 {
	return math.Sqrt(m.ComputeRatio() * m.MemRatio())
}

// DeviceCPUPenalty is the effective per-record slowdown of the on-device
// engine relative to the host engine: the raw data-path ratio discounted by
// the lean-pipeline factor (≈1.3× with the paper's COSMOS+ numbers).
func (m Model) DeviceCPUPenalty() float64 {
	return m.DataPathRatio() / NDPLeanFactor
}
