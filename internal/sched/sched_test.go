package sched

import (
	"context"
	"sync"
	"testing"
	"time"

	"hybridndp/internal/clock"
	"hybridndp/internal/coop"
	"hybridndp/internal/device"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/query"
)

var (
	dsOnce sync.Once
	dsInst *job.Dataset
	dsErr  error
)

// fixture loads one small shared JOB instance for all scheduler tests and
// assembles a fresh planner+executor pair over it.
func fixture(t *testing.T) (*optimizer.Optimizer, *coop.Executor, hw.Model) {
	t.Helper()
	dsOnce.Do(func() {
		dsInst, dsErr = job.Load(0.01, hw.Cosmos())
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return optimizer.New(dsInst.Cat, dsInst.Model),
		coop.NewExecutor(dsInst.Cat, dsInst.DB, dsInst.Model),
		dsInst.Model
}

// ndpFeasibleQuery finds a JOB query whose full plan fits the device memory
// budget (so forced-NDP admission actually contends for the command slot).
func ndpFeasibleQuery(t *testing.T, opt *optimizer.Optimizer, m hw.Model) *query.Query {
	t.Helper()
	for _, q := range job.Queries() {
		p, err := opt.BuildPlan(q)
		if err != nil {
			continue
		}
		if device.PlanMemory(m, p, len(p.Steps)).Fits() {
			return q
		}
	}
	t.Skip("no fully NDP-feasible query at this scale")
	return nil
}

// deviceBoundQuery finds a JOB query whose unloaded decision uses the device.
func deviceBoundQuery(t *testing.T, opt *optimizer.Optimizer) *query.Query {
	t.Helper()
	for _, q := range job.Queries() {
		d, err := opt.Decide(q)
		if err != nil {
			continue
		}
		if strategyOf(d).Kind != coop.HostNative {
			return q
		}
	}
	t.Skip("no device-bound decision at this scale")
	return nil
}

func TestSchedulerDrainCompletesAll(t *testing.T) {
	opt, exec, m := fixture(t)
	s := New(opt, exec, m, DefaultConfig())
	queries := job.Queries()
	tickets := make([]*Ticket, 0, len(queries))
	for i, q := range queries {
		tk, err := s.Submit(context.Background(), q, Priority(i%numPriorities))
		if err != nil {
			t.Fatalf("submit %s: %v", q.Name, err)
		}
		tickets = append(tickets, tk)
	}
	s.Close()
	for _, tk := range tickets {
		o := tk.Outcome()
		if o == nil {
			t.Fatalf("ticket unresolved after drain")
		}
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Query, o.Err)
		}
		if o.Chosen == "" || o.Unloaded == "" {
			t.Fatalf("%s: outcome lacks strategies: %+v", o.Query, o)
		}
	}
	st := s.Stats()
	if st.Submitted != int64(len(queries)) || st.Completed != st.Submitted || st.Errors != 0 {
		t.Fatalf("inconsistent stats after drain: %+v", st)
	}
	if st.Throughput() <= 0 {
		t.Fatalf("non-positive virtual throughput: %v", st)
	}
	if _, err := s.Submit(context.Background(), queries[0], Normal); err != ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
}

// TestSchedulerRaceStress hammers one scheduler from many goroutines; run
// with -race it verifies the concurrent-serving path end to end (satellite:
// controller/executor safety under concurrent Run).
func TestSchedulerRaceStress(t *testing.T) {
	opt, exec, m := fixture(t)
	cfg := DefaultConfig()
	cfg.Devices = 2
	cfg.QueueDepth = 128
	s := New(opt, exec, m, cfg)
	names := []string{"1a", "6f", "8c", "17b", "32b"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := job.QueryByName(names[(g+i)%len(names)])
				tk, err := s.Submit(context.Background(), q, Priority(i%numPriorities))
				if err != nil {
					errs <- err
					return
				}
				o, err := tk.Wait(context.Background())
				if err != nil {
					errs <- err
					return
				}
				if o.Err != nil {
					errs <- o.Err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s.Close()
	st := s.Stats()
	if st.Completed != 24 || st.Errors != 0 {
		t.Fatalf("stress stats: %+v", st)
	}
}

// TestAdaptiveDegradesWhenSaturated pins the degradation policy: with every
// device slot held, a query whose unloaded decision is device-bound must
// still complete — routed to the host instead of queueing behind the fleet —
// and be reported as degraded.
func TestAdaptiveDegradesWhenSaturated(t *testing.T) {
	opt, exec, m := fixture(t)
	q := deviceBoundQuery(t, opt)
	s := New(opt, exec, m, DefaultConfig())
	defer s.Close()

	// Hold the fleet's only command slot so every TryAcquire fails. The
	// claim books no estimated work, so releasing it later restores an
	// attractive (unloaded) device.
	block := Claim{MemBytes: 0, BufSlots: 0, EstDeviceNs: 0}
	dev, ok := s.ledger.TryAcquire(block)
	if !ok {
		t.Fatal("could not saturate fresh ledger")
	}
	tk, err := s.Submit(context.Background(), q, High)
	if err != nil {
		t.Fatal(err)
	}
	o, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if o.Err != nil {
		t.Fatalf("degraded query failed: %v", o.Err)
	}
	if o.Device != -1 {
		t.Fatalf("saturated fleet still placed query on device %d", o.Device)
	}
	if !o.Degraded {
		t.Fatalf("device-bound query (%s unloaded) not marked degraded: chose %s", o.Unloaded, o.Chosen)
	}
	s.ledger.Release(dev, block)

	// With the slot free again the same query must land on the device.
	tk2, err := s.Submit(context.Background(), q, High)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := tk2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if o2.Err != nil {
		t.Fatal(o2.Err)
	}
	if o2.Device < 0 {
		t.Fatalf("idle fleet refused device-bound query: chose %s", o2.Chosen)
	}
}

// TestForceNDPBackpressure exercises the bounded queue and the blocking
// admission path: with the device held, a forced-NDP worker blocks in
// Acquire, the queue fills, TrySubmit reports backpressure and a
// deadline-bound Submit gives up; releasing the device drains everything.
func TestForceNDPBackpressure(t *testing.T) {
	opt, exec, m := fixture(t)
	q := ndpFeasibleQuery(t, opt, m)
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 2
	cfg.Policy = ForceNDP
	s := New(opt, exec, m, cfg)

	block := Claim{EstDeviceNs: 1e12}
	dev, ok := s.ledger.TryAcquire(block)
	if !ok {
		t.Fatal("could not saturate fresh ledger")
	}
	t1, err := s.Submit(context.Background(), q, Normal)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker has popped t1 and is blocked in Acquire.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		queued := s.queued
		s.mu.Unlock()
		if queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocked query")
		}
		time.Sleep(time.Millisecond)
	}
	// Fill the bounded queue behind the blocked worker.
	t2, err := s.TrySubmit(q, Normal)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := s.TrySubmit(q, Batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TrySubmit(q, High); err != ErrQueueFull {
		t.Fatalf("overfull TrySubmit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.Submit(ctx, q, High); err != context.DeadlineExceeded {
		t.Fatalf("deadline-bound Submit on full queue: %v", err)
	}
	// Free the device: the blocked worker acquires, runs, and drains t2/t3.
	s.ledger.Release(dev, block)
	for _, tk := range []*Ticket{t1, t2, t3} {
		o, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		if o.Device < 0 {
			t.Fatalf("forced NDP ran off-device: %s", o.Chosen)
		}
	}
	s.Close()
	st := s.Stats()
	if st.Completed != 3 {
		t.Fatalf("completed = %d, want 3 (%v)", st.Completed, st)
	}
	if st.Rejected == 0 {
		t.Fatalf("backpressure not counted: %+v", st)
	}
}

// TestPopAgingPreventsStarvation drives the priority queue directly: under a
// continuous high-priority stream, every fourth dispatch must still take the
// oldest waiting ticket, so the batch class advances.
func TestPopAgingPreventsStarvation(t *testing.T) {
	s := &Scheduler{cfg: DefaultConfig().withDefaults()}
	base := time.Now().Add(-time.Minute)
	enq := func(p Priority, age time.Duration) *Ticket {
		tk := &Ticket{priority: p, submitted: base.Add(age)}
		s.queues[p] = append(s.queues[p], tk)
		s.queued++
		return tk
	}
	batch := enq(Batch, 0) // oldest ticket overall
	for i := 0; i < 8; i++ {
		enq(High, time.Duration(i+1)*time.Second)
	}
	var batchAt int
	for i := 1; s.queued > 0; i++ {
		tk := s.popLocked()
		if tk == batch {
			batchAt = i
		}
	}
	if batchAt == 0 || batchAt > 4 {
		t.Fatalf("batch ticket dispatched at pop %d; aging should bound it to 4", batchAt)
	}
}

// TestLedgerAccounting covers the resource arithmetic without a dataset.
func TestLedgerAccounting(t *testing.T) {
	m := hw.Cosmos()
	l := NewLedger(m, 2, 1, 4)
	c := Claim{MemBytes: m.DeviceNDPBudget / 2, BufSlots: 1, EstDeviceNs: 100}
	d0, ok := l.TryAcquire(c)
	if !ok {
		t.Fatal("first acquire failed")
	}
	d1, ok := l.TryAcquire(c)
	if !ok || d1 == d0 {
		t.Fatalf("second acquire should land on the other device (got %d after %d, ok=%v)", d1, d0, ok)
	}
	if _, ok := l.TryAcquire(c); ok {
		t.Fatal("both command slots held, third acquire must fail")
	}
	ld := l.Snapshot()
	if ld.CmdFree != 0 || ld.Devices != 2 || ld.DeviceAssignedNs != 100 {
		t.Fatalf("snapshot under load: %+v", ld)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx, c); err != context.DeadlineExceeded {
		t.Fatalf("blocked Acquire must honor ctx: %v", err)
	}
	l.Release(d0, c)
	l.Release(d1, c)
	ld = l.Snapshot()
	// Resources return; the assigned-work counter is monotone by design.
	if ld.CmdFree != 2 || ld.DeviceAssignedNs != 100 || ld.MemFree != 2*m.DeviceNDPBudget {
		t.Fatalf("snapshot after release: %+v", ld)
	}
	// Oversized claims must never be admitted.
	if _, ok := l.TryAcquire(Claim{MemBytes: m.DeviceNDPBudget + 1}); ok {
		t.Fatal("claim larger than the NDP budget admitted")
	}
}

// TestAgingUsesInjectedClock pins priority aging to the injected clock rather
// than the wall: every ticket is stamped from a clock.Fake, the fake is
// advanced between submissions so the starved batch ticket is strictly the
// oldest, and the fourth dispatch (the aging slot) must promote it past the
// steady high-priority stream. With a wall clock this ordering would ride on
// scheduler timing; with the fake it is exact.
func TestAgingUsesInjectedClock(t *testing.T) {
	fake := clock.NewFake()
	cfg := DefaultConfig()
	cfg.Clock = fake
	s := &Scheduler{cfg: cfg.withDefaults()}
	enq := func(p Priority) *Ticket {
		tk := &Ticket{priority: p, submitted: s.cfg.Clock.Now()}
		s.queues[p] = append(s.queues[p], tk)
		s.queued++
		return tk
	}
	batch := enq(Batch)
	for i := 0; i < 8; i++ {
		fake.Advance(time.Second) // every High arrival is strictly younger
		enq(High)
	}
	var batchAt int
	for i := 1; s.queued > 0; i++ {
		if s.popLocked() == batch {
			batchAt = i
		}
	}
	if batchAt != 4 {
		t.Fatalf("batch ticket dispatched at pop %d; the aging dispatch (every 4th) must take the fake-clock-oldest ticket", batchAt)
	}
	// The queue-wait measurement must come from the injected clock too.
	if wait := s.cfg.Clock.Since(batch.submitted); wait != 8*time.Second {
		t.Fatalf("fake-clock queue wait = %v, want 8s", wait)
	}
}
