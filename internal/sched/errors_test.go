package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"hybridndp/internal/clock"
	"hybridndp/internal/job"
)

// TestAdmissionErrorContract pins the typed admission errors callers key on:
// TrySubmit distinguishes queue-full from closed, and an in-queue expiry
// surfaces as ErrExpired on the outcome (errors.Is through wrapping).
func TestAdmissionErrorContract(t *testing.T) {
	opt, exec, m := fixture(t)
	q := job.Queries()[0]

	// Queue-full: one worker, depth 1, workers blocked by queued load.
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s := New(opt, exec, m, cfg)
	var sawFull bool
	for i := 0; i < 50 && !sawFull; i++ {
		if _, err := s.TrySubmit(q, Normal); err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("TrySubmit error = %v, want ErrQueueFull", err)
			}
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("never saw ErrQueueFull with depth-1 queue")
	}
	s.Close()
	if _, err := s.TrySubmit(q, Normal); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Submit(context.Background(), q, Normal); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}

	// Expiry: a fake clock jumps past QueryTimeout while the ticket queues.
	fc := clock.NewFake()
	cfg = DefaultConfig()
	cfg.Workers = 1
	cfg.Clock = fc
	cfg.QueryTimeout = time.Millisecond
	s2 := New(opt, exec, m, cfg)
	// Stack up tickets, then advance the clock so queued ones expire.
	tickets := make([]*Ticket, 0, 8)
	for i := 0; i < 8; i++ {
		tk, err := s2.Submit(context.Background(), q, Normal)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	fc.Advance(time.Second)
	s2.Close()
	var sawExpired bool
	for _, tk := range tickets {
		o := tk.Outcome()
		if o == nil {
			t.Fatal("ticket unresolved after Close")
		}
		if o.Err != nil {
			if !errors.Is(o.Err, ErrExpired) {
				t.Fatalf("outcome err = %v, want ErrExpired", o.Err)
			}
			sawExpired = true
		}
	}
	if !sawExpired {
		t.Fatal("no ticket expired despite clock jump past QueryTimeout")
	}

	// Cancelled context while queued also reads as ErrExpired.
	cfg = DefaultConfig()
	cfg.Workers = 1
	s3 := New(opt, exec, m, cfg)
	defer s3.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tk, err := s3.Submit(ctx, q, Normal)
	if err != nil {
		// Submit itself may observe the cancelled context first; that path
		// returns the context error, not ErrExpired.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit with cancelled ctx = %v", err)
		}
		return
	}
	o, werr := tk.Wait(context.Background())
	if werr != nil {
		t.Fatal(werr)
	}
	if o.Err != nil && !errors.Is(o.Err, ErrExpired) {
		t.Fatalf("outcome err = %v, want ErrExpired", o.Err)
	}

	// Per-ticket wall deadline: expiry works with no scheduler-wide
	// QueryTimeout at all, and still reads as ErrExpired (never as
	// ErrQueueFull or ErrClosed).
	fc2 := clock.NewFake()
	cfg = DefaultConfig()
	cfg.Workers = 1
	cfg.Clock = fc2
	s4 := New(opt, exec, m, cfg)
	tickets = tickets[:0]
	for i := 0; i < 8; i++ {
		tk, err := s4.SubmitDeadline(context.Background(), q, Normal, Deadline{Wall: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	fc2.Advance(time.Second)
	s4.Close()
	sawExpired = false
	for _, tk := range tickets {
		o := tk.Outcome()
		if o == nil {
			t.Fatal("deadline ticket unresolved after Close")
		}
		if o.Err != nil {
			if !errors.Is(o.Err, ErrExpired) ||
				errors.Is(o.Err, ErrQueueFull) || errors.Is(o.Err, ErrClosed) {
				t.Fatalf("outcome err = %v, want exactly ErrExpired", o.Err)
			}
			sawExpired = true
		}
	}
	if !sawExpired {
		t.Fatal("no ticket expired despite clock jump past its wall deadline")
	}
}

// TestAgingScanExpiresQueuedTickets pins the expiry sweep: a ticket whose
// wall deadline passed while queued is rejected during the every-fourth-pop
// aging scan — freeing its bounded-queue slot — instead of lingering until a
// worker pops it. The queue is driven directly with a fake clock so the
// sweep's behavior is deterministic.
func TestAgingScanExpiresQueuedTickets(t *testing.T) {
	fc := clock.NewFake()
	cfg := DefaultConfig()
	cfg.Clock = fc
	s := &Scheduler{cfg: cfg.withDefaults(), stats: newCollector(1, 1)}
	s.notEmpty = sync.NewCond(&s.mu)
	s.notFull = sync.NewCond(&s.mu)
	q := job.Queries()[0]
	enq := func(dl Deadline) *Ticket {
		tk := &Ticket{query: q, priority: Normal, ctx: context.Background(),
			submitted: fc.Now(), deadline: dl, done: make(chan struct{})}
		s.queues[Normal] = append(s.queues[Normal], tk)
		s.queued++
		return tk
	}
	dead1 := enq(Deadline{Wall: time.Millisecond})
	alive := enq(Deadline{})
	dead2 := enq(Deadline{Wall: 2 * time.Millisecond})
	fc.Advance(10 * time.Millisecond)

	// The next pop is the fourth dispatch: the sweep must reject both
	// deadline-dead tickets in place and the aged pick returns the survivor.
	s.popCount = 3
	if got := s.popLocked(); got != alive {
		t.Fatalf("aged pop returned %+v, want the deadline-free ticket", got)
	}
	for i, tk := range []*Ticket{dead1, dead2} {
		o := tk.Outcome()
		if o == nil {
			t.Fatalf("expired ticket %d not resolved by the aging scan", i)
		}
		if !errors.Is(o.Err, ErrExpired) {
			t.Fatalf("expired ticket %d err = %v, want ErrExpired", i, o.Err)
		}
	}
	if s.queued != 0 {
		t.Fatalf("queued = %d after sweep+pop, want 0", s.queued)
	}
	if st := s.stats.snapshot(); st.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", st.Rejected)
	}
}
