package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"hybridndp/internal/clock"
	"hybridndp/internal/job"
)

// TestAdmissionErrorContract pins the typed admission errors callers key on:
// TrySubmit distinguishes queue-full from closed, and an in-queue expiry
// surfaces as ErrExpired on the outcome (errors.Is through wrapping).
func TestAdmissionErrorContract(t *testing.T) {
	opt, exec, m := fixture(t)
	q := job.Queries()[0]

	// Queue-full: one worker, depth 1, workers blocked by queued load.
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s := New(opt, exec, m, cfg)
	var sawFull bool
	for i := 0; i < 50 && !sawFull; i++ {
		if _, err := s.TrySubmit(q, Normal); err != nil {
			if !errors.Is(err, ErrQueueFull) {
				t.Fatalf("TrySubmit error = %v, want ErrQueueFull", err)
			}
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("never saw ErrQueueFull with depth-1 queue")
	}
	s.Close()
	if _, err := s.TrySubmit(q, Normal); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Submit(context.Background(), q, Normal); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}

	// Expiry: a fake clock jumps past QueryTimeout while the ticket queues.
	fc := clock.NewFake()
	cfg = DefaultConfig()
	cfg.Workers = 1
	cfg.Clock = fc
	cfg.QueryTimeout = time.Millisecond
	s2 := New(opt, exec, m, cfg)
	// Stack up tickets, then advance the clock so queued ones expire.
	tickets := make([]*Ticket, 0, 8)
	for i := 0; i < 8; i++ {
		tk, err := s2.Submit(context.Background(), q, Normal)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	fc.Advance(time.Second)
	s2.Close()
	var sawExpired bool
	for _, tk := range tickets {
		o := tk.Outcome()
		if o == nil {
			t.Fatal("ticket unresolved after Close")
		}
		if o.Err != nil {
			if !errors.Is(o.Err, ErrExpired) {
				t.Fatalf("outcome err = %v, want ErrExpired", o.Err)
			}
			sawExpired = true
		}
	}
	if !sawExpired {
		t.Fatal("no ticket expired despite clock jump past QueryTimeout")
	}

	// Cancelled context while queued also reads as ErrExpired.
	cfg = DefaultConfig()
	cfg.Workers = 1
	s3 := New(opt, exec, m, cfg)
	defer s3.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tk, err := s3.Submit(ctx, q, Normal)
	if err != nil {
		// Submit itself may observe the cancelled context first; that path
		// returns the context error, not ErrExpired.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit with cancelled ctx = %v", err)
		}
		return
	}
	o, werr := tk.Wait(context.Background())
	if werr != nil {
		t.Fatal(werr)
	}
	if o.Err != nil && !errors.Is(o.Err, ErrExpired) {
		t.Fatalf("outcome err = %v, want ErrExpired", o.Err)
	}
}
