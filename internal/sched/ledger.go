package sched

import (
	"context"
	"fmt"
	"sync"

	"hybridndp/internal/device"
	"hybridndp/internal/hw"
	"hybridndp/internal/obs"
)

// Claim is the device-resource footprint of one admitted query: what the
// admission controller reserves on a device before the NDP command is issued
// and returns when the query completes.
type Claim struct {
	// MemBytes is the device DRAM reservation of the offloaded partial plan
	// (device.PlanMemory: selection/join buffers within the NDP budget).
	MemBytes int64
	// BufSlots is the number of shared result-buffer slots held while the
	// command is in flight (one: the pipeline drains slot by slot, but a
	// command must own at least one slot to make progress).
	BufSlots int
	// EstDeviceNs is the cost model's estimate of the device-side work in
	// virtual ns. It feeds the assigned-work counter that the degradation
	// policy consults.
	EstDeviceNs float64
}

// devState is one device's free resources plus the cumulative virtual work
// ever assigned to it. Each in-flight NDP command additionally occupies one
// of the device's command slots — the COSMOS+ board has a single dedicated
// execution core, so the default is one command at a time per device.
//
// assigned is deliberately monotone: execution is a virtual-time simulation,
// so in-flight claims come and go at wall-clock speed and carry no usable
// load signal. The cumulative counters instead implement greedy
// list-scheduling — a pool is attractive while its assigned work (per lane)
// trails the other pool's, which is exactly the balance that minimizes the
// virtual makespan.
type devState struct {
	cmdFree  int
	memFree  int64
	slotFree int
	assigned float64
	inflight float64 // estimated work of currently admitted commands

	// Circuit breaker (deterministic, count-based — wall clocks would break
	// the virtual-time invariants). consecFails counts consecutive device
	// command failures; at the threshold the breaker opens and admission
	// routes around the device. After probeAfter skipped admissions the
	// breaker goes half-open and admits a single probe command: success
	// closes it, failure re-opens it.
	breaker     breakerState
	consecFails int
	skipped     int  // admissions skipped while open
	probing     bool // a half-open probe command is in flight
}

// breakerState is a device breaker's position.
type breakerState int

// Breaker states: closed (healthy), open (routed around), half-open (probing).
const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Ledger tracks the scarce resources of a smart-storage fleet: per device the
// NDP command slots (execution cores), the DRAM budget left for selection and
// join buffers (hw_MSS/hw_MSJ reservations within the ~400 MB NDP budget),
// and the shared result-buffer slots. The host side is tracked only as
// assigned virtual work — host memory is not the contended resource in the
// paper's setting, host CPU lanes are.
type Ledger struct {
	mu   sync.Mutex
	cond *sync.Cond // set once in NewLedger
	devs []devState // guarded by mu

	hostLanes    int     // immutable after NewLedger
	hostAssigned float64 // guarded by mu

	// Per-device capacities, immutable after NewLedger; used to derive the
	// in-use gauges from the free counters.
	cmdCap  int
	memCap  int64
	slotCap int

	// Breaker tuning, immutable after ConfigureBreaker; threshold 0 disables.
	brkThreshold  int
	brkProbeAfter int

	metrics *obs.Registry // guarded by mu; nil disables the gauges
}

// ConfigureBreaker arms the per-device circuit breakers: a device trips open
// after threshold consecutive command failures and admits a half-open probe
// after probeAfter skipped admissions. threshold <= 0 disables breaking.
func (l *Ledger) ConfigureBreaker(threshold, probeAfter int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if threshold < 0 {
		threshold = 0
	}
	if probeAfter < 1 {
		probeAfter = 1
	}
	l.brkThreshold = threshold
	l.brkProbeAfter = probeAfter
}

// countLocked bumps a ledger counter. Caller holds mu.
func (l *Ledger) countLocked(name string) {
	if l.metrics != nil {
		l.metrics.Counter(name).Inc()
	}
}

// ReportDeviceResult feeds one finished device command into the breaker:
// ok means the command completed on the device (a run that fell back to the
// host counts as a failure). Success resets the failure streak and closes a
// half-open breaker; failure extends the streak and trips (or re-opens) it.
func (l *Ledger) ReportDeviceResult(dev int, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.brkThreshold <= 0 || dev < 0 || dev >= len(l.devs) {
		return
	}
	d := &l.devs[dev]
	d.probing = false
	if ok {
		d.consecFails = 0
		if d.breaker != breakerClosed {
			d.breaker = breakerClosed
			d.skipped = 0
			l.countLocked("sched.breaker.recovered")
		}
	} else {
		d.consecFails++
		switch {
		case d.breaker == breakerHalfOpen:
			// Probe failed: straight back to open.
			d.breaker = breakerOpen
			d.skipped = 0
		case d.breaker == breakerClosed && d.consecFails >= l.brkThreshold:
			d.breaker = breakerOpen
			d.skipped = 0
			l.countLocked("sched.breaker.tripped")
		}
	}
	l.publishDevLocked(dev)
	// A recovered breaker may unblock holdouts; a tripped one must wake
	// blocked acquirers so they can re-evaluate (and bail out).
	l.cond.Broadcast()
}

// NewLedger sizes the ledger from the hardware model: devices × cmdSlots NDP
// command slots, devices × DeviceNDPBudget bytes of reservable device memory,
// devices × SharedSlots buffer slots, and hostLanes host CPU lanes.
func NewLedger(m hw.Model, devices, cmdSlots, hostLanes int) *Ledger {
	if devices < 1 {
		devices = 1
	}
	if cmdSlots < 1 {
		cmdSlots = 1
	}
	if hostLanes < 1 {
		hostLanes = 1
	}
	l := &Ledger{hostLanes: hostLanes, cmdCap: cmdSlots, memCap: m.DeviceNDPBudget, slotCap: m.SharedSlots}
	l.cond = sync.NewCond(&l.mu)
	for i := 0; i < devices; i++ {
		l.devs = append(l.devs, devState{
			cmdFree:  cmdSlots,
			memFree:  m.DeviceNDPBudget,
			slotFree: m.SharedSlots,
		})
	}
	return l
}

// bindMetrics attaches a registry; the ledger then mirrors its read-only load
// snapshot — per-device command/memory/buffer-slot occupancy and the
// assigned-work counters — into gauges on every mutation, replacing the
// log-style string dumps a caller would otherwise scrape from Stats.
func (l *Ledger) bindMetrics(m *obs.Registry) {
	if m == nil {
		return
	}
	l.mu.Lock()
	l.metrics = m
	for i := range l.devs {
		l.publishDevLocked(i)
	}
	l.publishHostLocked()
	l.mu.Unlock()
}

// publishDevLocked mirrors device i's ledger row into gauges. Caller holds mu.
func (l *Ledger) publishDevLocked(i int) {
	if l.metrics == nil {
		return
	}
	d := &l.devs[i]
	p := fmt.Sprintf("sched.ledger.device.%d.", i)
	l.metrics.Gauge(p + "cmd_used").SetInt(int64(l.cmdCap - d.cmdFree))
	l.metrics.Gauge(p + "mem_used_bytes").SetInt(l.memCap - d.memFree)
	l.metrics.Gauge(p + "slots_used").SetInt(int64(l.slotCap - d.slotFree))
	l.metrics.Gauge(p + "assigned_ns").Set(d.assigned)
	l.metrics.Gauge(p + "inflight_ns").Set(d.inflight)
	l.metrics.Gauge(p + "breaker.state").SetInt(int64(d.breaker))
	tripped := 0
	for j := range l.devs {
		if l.devs[j].breaker != breakerClosed {
			tripped++
		}
	}
	l.metrics.Gauge("sched.breaker.state").SetInt(int64(tripped))
}

// publishHostLocked mirrors the host pool's assigned work. Caller holds mu.
func (l *Ledger) publishHostLocked() {
	if l.metrics == nil {
		return
	}
	l.metrics.Gauge("sched.ledger.host.assigned_ns").Set(l.hostAssigned)
	l.metrics.Gauge("sched.ledger.host.lanes").SetInt(int64(l.hostLanes))
}

// tryAcquireLocked picks the least-loaded breaker-admissible device that can
// hold the claim. allOpen reports that every device's breaker is open — no
// admission can succeed until a breaker transitions, so blocking callers must
// bail out instead of waiting for a release that cannot come.
func (l *Ledger) tryAcquireLocked(c Claim) (dev int, ok, allOpen bool) {
	best := -1
	allOpen = true
	for i := range l.devs {
		d := &l.devs[i]
		if l.brkThreshold > 0 {
			if d.breaker == breakerOpen {
				d.skipped++
				if d.skipped >= l.brkProbeAfter {
					// Enough traffic routed around the device: allow a probe.
					d.breaker = breakerHalfOpen
					d.skipped = 0
					l.publishDevLocked(i)
				} else {
					continue
				}
			}
			if d.breaker == breakerHalfOpen && d.probing {
				// One probe at a time; the device is otherwise untrusted.
				allOpen = false
				continue
			}
		}
		allOpen = false
		if d.cmdFree < 1 || d.memFree < c.MemBytes || d.slotFree < c.BufSlots {
			continue
		}
		if best < 0 || d.assigned < l.devs[best].assigned {
			best = i
		}
	}
	if best < 0 {
		return -1, false, allOpen
	}
	d := &l.devs[best]
	if d.breaker == breakerHalfOpen {
		d.probing = true
		l.countLocked("sched.breaker.probe")
	}
	d.cmdFree--
	d.memFree -= c.MemBytes
	d.slotFree -= c.BufSlots
	d.assigned += c.EstDeviceNs
	d.inflight += c.EstDeviceNs
	l.publishDevLocked(best)
	return best, true, false
}

// TryAcquireDevice reserves the claim on one specific device — fleet shard
// admission, where the descriptor pins partitions to devices and there is no
// least-loaded choice to make. Breaker handling matches tryAcquireLocked: an
// open breaker counts the skipped admission and may go half-open, a
// half-open breaker admits a single probe at a time. A denial is the fleet
// executor's signal to degrade that shard to host execution.
func (l *Ledger) TryAcquireDevice(dev int, c Claim) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if dev < 0 || dev >= len(l.devs) {
		return false
	}
	d := &l.devs[dev]
	if l.brkThreshold > 0 {
		if d.breaker == breakerOpen {
			d.skipped++
			if d.skipped >= l.brkProbeAfter {
				d.breaker = breakerHalfOpen
				d.skipped = 0
				l.publishDevLocked(dev)
			} else {
				return false
			}
		}
		if d.breaker == breakerHalfOpen && d.probing {
			return false
		}
	}
	if d.cmdFree < 1 || d.memFree < c.MemBytes || d.slotFree < c.BufSlots {
		return false
	}
	if d.breaker == breakerHalfOpen {
		d.probing = true
		l.countLocked("sched.breaker.probe")
	}
	d.cmdFree--
	d.memFree -= c.MemBytes
	d.slotFree -= c.BufSlots
	d.assigned += c.EstDeviceNs
	d.inflight += c.EstDeviceNs
	l.publishDevLocked(dev)
	return true
}

// TryAcquire reserves the claim on the least-loaded device that fits it,
// without blocking. It returns the device index, or ok=false when every
// device is saturated — the admission controller's signal to degrade.
func (l *Ledger) TryAcquire(c Claim) (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	dev, ok, _ := l.tryAcquireLocked(c)
	return dev, ok
}

// Acquire blocks until the claim fits on some device or ctx is done. Used by
// the forced-NDP policy, which serializes on the device instead of degrading.
// When every device's circuit breaker is open it fails fast with
// device.ErrDeviceBusy — waiting would deadlock, since a fleet with nothing
// in flight never releases anything.
func (l *Ledger) Acquire(ctx context.Context, c Claim) (int, error) {
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return -1, err
		}
		dev, ok, allOpen := l.tryAcquireLocked(c)
		if ok {
			return dev, nil
		}
		if allOpen {
			return -1, fmt.Errorf("sched: every device breaker is open: %w", device.ErrDeviceBusy)
		}
		l.cond.Wait()
	}
}

// Release returns a claim's resources. The assigned-work counter stays: it
// is the monotone load signal, not an in-flight reservation.
func (l *Ledger) Release(dev int, c Claim) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if dev < 0 || dev >= len(l.devs) {
		panic(fmt.Sprintf("sched: release on unknown device %d", dev))
	}
	d := &l.devs[dev]
	d.cmdFree++
	d.memFree += c.MemBytes
	d.slotFree += c.BufSlots
	d.inflight -= c.EstDeviceNs
	if d.inflight < 0 {
		d.inflight = 0
	}
	l.publishDevLocked(dev)
	l.cond.Broadcast()
}

// AdjustDevice corrects a device's assigned-work counter once a command's
// actual simulated busy time is known: the scheduler books the cost model's
// estimate at admission and trues it up after the run, so systematic
// estimation error cannot keep overloading (or starving) the device.
func (l *Ledger) AdjustDevice(dev int, deltaNs float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if dev < 0 || dev >= len(l.devs) {
		return
	}
	d := &l.devs[dev]
	d.assigned += deltaNs
	if d.assigned < 0 {
		d.assigned = 0
	}
	l.publishDevLocked(dev)
}

// AddHost books estimated host-side work (virtual ns) for a dispatched query.
func (l *Ledger) AddHost(estNs float64) {
	l.mu.Lock()
	l.hostAssigned += estNs
	l.publishHostLocked()
	l.mu.Unlock()
}

// AdjustHost corrects the host pool's assigned work with the measured busy
// time (see AdjustDevice).
func (l *Ledger) AdjustHost(deltaNs float64) {
	l.mu.Lock()
	l.hostAssigned += deltaNs
	if l.hostAssigned < 0 {
		l.hostAssigned = 0
	}
	l.publishHostLocked()
	l.mu.Unlock()
}

// AwaitChange blocks until some claim is released (or ctx is done), so a
// caller that decided to hold out for a device slot can re-rank against
// fresh counters instead of spinning.
func (l *Ledger) AwaitChange(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	l.cond.Wait()
	return ctx.Err()
}

// Load is a point-in-time view of the ledger used by the degradation policy
// and surfaced in stats snapshots.
type Load struct {
	// DeviceAssignedNs is the cumulative virtual work assigned to the
	// least-loaded device (the one a new command would land on).
	DeviceAssignedNs float64
	// DeviceInFlightNs is the estimated work of the commands currently
	// admitted on that device — the capacity discount a saturated query
	// would wait behind.
	DeviceInFlightNs float64
	// HostAssignedNs is the cumulative per-lane virtual work assigned to the
	// host pool.
	HostAssignedNs float64
	// CmdFree / MemFree / SlotFree aggregate free resources over the fleet.
	CmdFree  int
	MemFree  int64
	SlotFree int
	Devices  int
	// DevicesHealthy counts devices whose circuit breaker is not open. When
	// zero, device-bound placement is pointless: the adaptive policy must
	// route host-side instead of holding out for a slot.
	DevicesHealthy int
}

// Snapshot captures the current load.
func (l *Ledger) Snapshot() Load {
	l.mu.Lock()
	defer l.mu.Unlock()
	ld := Load{Devices: len(l.devs), HostAssignedNs: l.hostAssigned / float64(l.hostLanes)}
	first := true
	for i := range l.devs {
		d := &l.devs[i]
		ld.CmdFree += d.cmdFree
		ld.MemFree += d.memFree
		ld.SlotFree += d.slotFree
		if d.breaker != breakerOpen {
			ld.DevicesHealthy++
		}
		if first || d.assigned < ld.DeviceAssignedNs {
			ld.DeviceAssignedNs = d.assigned
			ld.DeviceInFlightNs = d.inflight
			first = false
		}
	}
	return ld
}
