package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"hybridndp/internal/clock"
	"hybridndp/internal/coop"
	"hybridndp/internal/fault"
	"hybridndp/internal/job"
	"hybridndp/internal/obs"
)

// TestDeadlinePropagation follows one request deadline through all three
// layers it can die in: the admission queue (wall clock), a cooperative
// retry loop (virtual execution budget) and a fleet gather (per-shard
// degradation). In every case the request either fails with ErrExpired or
// completes with the exact host-native answer — a deadline changes latency
// and placement, never a result.
func TestDeadlinePropagation(t *testing.T) {
	t.Run("queue", func(t *testing.T) {
		opt, exec, m := fixture(t)
		fc := clock.NewFake()
		cfg := DefaultConfig()
		cfg.Workers = 1
		cfg.Clock = fc
		reg := obs.NewRegistry()
		cfg.Metrics = reg
		s := New(opt, exec, m, cfg)
		q := job.Queries()[0]
		tickets := make([]*Ticket, 0, 8)
		for i := 0; i < 8; i++ {
			tk, err := s.SubmitDeadline(context.Background(), q, Normal, Deadline{Wall: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
		fc.Advance(time.Second)
		s.Close()
		expired := 0
		for _, tk := range tickets {
			o := tk.Outcome()
			if o == nil {
				t.Fatal("ticket unresolved after Close")
			}
			if o.Err != nil {
				if !errors.Is(o.Err, ErrExpired) {
					t.Fatalf("queue-dead outcome = %v, want ErrExpired", o.Err)
				}
				expired++
			}
		}
		if expired == 0 {
			t.Fatal("no ticket expired past its wall deadline")
		}
		if reg.Counter("sched.rejected.expired").Value() == 0 {
			t.Fatal("expiry counter never incremented")
		}
	})

	t.Run("mid-retry", func(t *testing.T) {
		opt, _, m := fixture(t)
		q := ndpFeasibleQuery(t, opt, m)
		d, err := opt.Decide(q)
		if err != nil {
			t.Fatal(err)
		}
		base := coop.NewExecutor(dsInst.Cat, dsInst.DB, m)
		hostRep, err := base.Run(d.Plan, coop.Strategy{Kind: coop.HostNative})
		if err != nil {
			t.Fatal(err)
		}
		pl, err := fault.Parse("dev.crash@batch=0,seed=3")
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		x := coop.NewExecutor(dsInst.Cat, dsInst.DB, m)
		x.Faults = pl
		x.Metrics = reg
		// 1ns of execution budget: the very first injected crash lands past
		// the deadline, so the executor must skip its retry/backoff loop and
		// fall back to the host immediately.
		rep, err := x.RunDeadline(d.Plan, coop.Strategy{Kind: coop.NDPOnly}, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.FellBack {
			t.Fatal("deadline-dead retry did not fall back to host")
		}
		if rep.FaultRetries != 0 {
			t.Fatalf("executor retried %d times against a 1ns budget", rep.FaultRetries)
		}
		if got := reg.Counter("coop.deadline.fallback").Value(); got != 1 {
			t.Fatalf("coop.deadline.fallback = %d, want 1", got)
		}
		if reg.Counter("coop.retry").Value() != 0 {
			t.Fatal("retry counter moved despite the deadline guard")
		}
		if rep.Result.RowCount != hostRep.Result.RowCount {
			t.Fatal("deadline fallback changed the result")
		}
	})

	t.Run("mid-gather", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Workers = 1
		reg := obs.NewRegistry()
		cfg.Metrics = reg
		s, _ := fleetFixture(t, cfg)
		defer s.Close()
		q := deviceBoundQuery(t, s.opt)
		tk, err := s.SubmitDeadline(context.Background(), q, Normal, Deadline{Exec: 1})
		if err != nil {
			t.Fatal(err)
		}
		o, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		if !o.Degraded {
			t.Fatal("1ns exec deadline did not degrade the fleet gather")
		}
		if reg.Counter("fleet.deadline.degraded").Value() == 0 {
			t.Fatal("fleet deadline-degradation counter never incremented")
		}
		d, err := s.opt.Decide(q)
		if err != nil {
			t.Fatal(err)
		}
		hostRep, err := s.exec.Run(d.Plan, coop.Strategy{Kind: coop.HostNative})
		if err != nil {
			t.Fatal(err)
		}
		if o.Report == nil || o.Report.Result.RowCount != hostRep.Result.RowCount {
			t.Fatal("deadline-degraded fleet run changed the result")
		}
	})
}
