package sched

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"hybridndp/internal/coop"
	"hybridndp/internal/vclock"
)

// Outcome records how the scheduler handled one query.
type Outcome struct {
	Query    string
	Priority Priority
	// Unloaded is the strategy the optimizer would pick on an idle system;
	// Chosen is what actually ran. They differ when the query was degraded.
	Unloaded string
	Chosen   string
	Degraded bool
	Device   int // device index the query ran on, -1 for host-native
	// QueueWait is the wall time spent in the admission queue.
	QueueWait time.Duration
	// Elapsed is the query's virtual end-to-end runtime.
	Elapsed vclock.Duration
	Err     error
	Report  *coop.Report
}

// Stats is a snapshot of the scheduler's counters, suitable for printing
// after a drain or while serving.
type Stats struct {
	Submitted int64
	Completed int64
	Degraded  int64 // completed with a strategy other than the unloaded choice
	Rejected  int64 // expired in queue (ctx / timeout) or refused at submit
	Errors    int64

	// ByStrategy counts completions per executed strategy. Per-priority
	// completion counts live in the obs registry ("sched.completed.<class>"),
	// not here — the snapshot keeps only what the policies consume.
	ByStrategy map[string]int64

	QueueWaitMax  time.Duration
	QueueWaitMean time.Duration
	// QueueWaitMaxByPriority demonstrates the starvation bound per class.
	QueueWaitMaxByPriority map[string]time.Duration

	// HostBusy / DeviceBusy are the virtual busy times (stalls excluded)
	// accumulated on the host lanes and the device fleet.
	HostBusy   vclock.Duration
	DeviceBusy vclock.Duration
	HostLanes  int
	DevLanes   int
	// MaxElapsed is the longest single-query virtual runtime — the latency
	// critical path, reported alongside the pool-bound Makespan.
	MaxElapsed vclock.Duration
}

// Makespan is the virtual occupancy of the busiest resource pool: the host's
// busy time spread over its CPU lanes, or the device fleet's busy time over
// its command slots, whichever dominates. It is the steady-state bound on
// how fast the admitted work can drain, so Throughput derived from it is
// deterministic and independent of the machine running the simulation.
// (MaxElapsed, the single-query critical path, is reported separately: it
// floors latency, not sustained throughput.)
func (st Stats) Makespan() vclock.Duration {
	lanes := st.HostLanes
	if lanes < 1 {
		lanes = 1
	}
	dl := st.DevLanes
	if dl < 1 {
		dl = 1
	}
	m := vclock.Duration(float64(st.HostBusy) / float64(lanes))
	if d := vclock.Duration(float64(st.DeviceBusy) / float64(dl)); d > m {
		m = d
	}
	return m
}

// Throughput reports completed queries per virtual second of makespan.
func (st Stats) Throughput() float64 {
	mk := st.Makespan().Seconds()
	if mk <= 0 {
		return 0
	}
	return float64(st.Completed) / mk
}

func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "submitted=%d completed=%d degraded=%d rejected=%d errors=%d\n",
		st.Submitted, st.Completed, st.Degraded, st.Rejected, st.Errors)
	fmt.Fprintf(&b, "queue wait: max=%v mean=%v", st.QueueWaitMax.Round(time.Microsecond), st.QueueWaitMean.Round(time.Microsecond))
	if len(st.QueueWaitMaxByPriority) > 0 {
		keys := make([]string, 0, len(st.QueueWaitMaxByPriority))
		for k := range st.QueueWaitMaxByPriority {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " max(%s)=%v", k, st.QueueWaitMaxByPriority[k].Round(time.Microsecond))
		}
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "virtual: host busy=%v (%d lanes) device busy=%v (%d lanes) makespan=%v throughput=%.2f q/s\n",
		st.HostBusy, st.HostLanes, st.DeviceBusy, st.DevLanes, st.Makespan(), st.Throughput())
	if len(st.ByStrategy) > 0 {
		keys := make([]string, 0, len(st.ByStrategy))
		for k := range st.ByStrategy {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("strategies:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, st.ByStrategy[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// collector accumulates the snapshot under its own lock.
type collector struct {
	mu sync.Mutex
	st Stats // guarded by mu

	queueWaitSum time.Duration // guarded by mu
	queueWaitN   int64         // guarded by mu
}

func newCollector(hostLanes, devLanes int) *collector {
	return &collector{st: Stats{
		ByStrategy:             map[string]int64{},
		QueueWaitMaxByPriority: map[string]time.Duration{},
		HostLanes:              hostLanes,
		DevLanes:               devLanes,
	}}
}

func (c *collector) submitted() {
	c.mu.Lock()
	c.st.Submitted++
	c.mu.Unlock()
}

func (c *collector) rejected() {
	c.mu.Lock()
	c.st.Rejected++
	c.mu.Unlock()
}

func (c *collector) record(o *Outcome, hostBusy, devBusy vclock.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &c.st
	if o.Err != nil {
		st.Errors++
		return
	}
	st.Completed++
	if o.Degraded {
		st.Degraded++
	}
	st.ByStrategy[o.Chosen]++
	prio := o.Priority.String()
	if o.QueueWait > st.QueueWaitMax {
		st.QueueWaitMax = o.QueueWait
	}
	if o.QueueWait > st.QueueWaitMaxByPriority[prio] {
		st.QueueWaitMaxByPriority[prio] = o.QueueWait
	}
	c.queueWaitSum += o.QueueWait
	c.queueWaitN++
	st.HostBusy += hostBusy
	st.DeviceBusy += devBusy
	if o.Elapsed > st.MaxElapsed {
		st.MaxElapsed = o.Elapsed
	}
}

func (c *collector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.st
	out.ByStrategy = copyMap(c.st.ByStrategy)
	out.QueueWaitMaxByPriority = copyMap(c.st.QueueWaitMaxByPriority)
	if c.queueWaitN > 0 {
		out.QueueWaitMean = c.queueWaitSum / time.Duration(c.queueWaitN)
	}
	return out
}

func copyMap[V any](m map[string]V) map[string]V {
	out := make(map[string]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
