package sched

import (
	"sort"
	"sync"

	"hybridndp/internal/coop"
	"hybridndp/internal/device"
	"hybridndp/internal/exec"
	"hybridndp/internal/optimizer"
)

// Policy selects how the scheduler places queries.
type Policy int

const (
	// Adaptive is the hybridNDP serving mode: per query the optimizer's
	// unloaded decision is the starting point, but the split is re-costed
	// against the ledger — device backlog inflates the device part, host
	// backlog inflates the host part — and saturated devices degrade the
	// query to a cheaper split or to host-native execution instead of
	// queueing behind the fleet.
	Adaptive Policy = iota
	// ForceHost routes everything host-native (the always-host baseline).
	ForceHost
	// ForceNDP offloads every feasible plan fully, serializing on device
	// command slots (the always-NDP baseline).
	ForceNDP
)

func (p Policy) String() string {
	switch p {
	case Adaptive:
		return "adaptive"
	case ForceHost:
		return "host"
	case ForceNDP:
		return "ndp"
	}
	return "Policy(?)"
}

// candidate is one admissible execution alternative with its cost parts.
type candidate struct {
	strat     coop.Strategy
	claim     Claim
	devNs     float64 // device-side estimated work (corrected)
	rawDevNs  float64 // device-side estimate straight from the cost model
	hostNs    float64 // host-side estimated work (corrected)
	rawHostNs float64 // host-side estimate (host part + transfer) from the model
	transNs   float64 // interconnect transfer estimate (corrected)
	loaded    float64 // end-to-end estimate under the current ledger load
	risky     bool    // device placement lacks per-query evidence (see below)
}

// onDevice reports whether the candidate occupies device resources.
func (c candidate) onDevice() bool { return c.strat.Kind != coop.HostNative }

// strategyOf converts a decision into the executable strategy (mirrors
// core.strategyOf; the packages stay independent).
func strategyOf(d *optimizer.Decision) coop.Strategy {
	switch {
	case d.Hybrid:
		split := d.Split
		if split == 0 {
			split = -1
		}
		return coop.Strategy{Kind: coop.Hybrid, Split: split}
	case d.NDP:
		return coop.Strategy{Kind: coop.NDPOnly}
	default:
		return coop.Strategy{Kind: coop.HostNative}
	}
}

// candidates enumerates every admissible strategy for the decided query with
// its cost decomposition: host-native, every device-memory-feasible hybrid
// split Hk, and full NDP. Host-native is always present, so the admission
// walk below terminates.
//
// Estimates are corrected in two stages: per-query per-pool factors learned
// from this query's previous executions (serving workloads repeat, and
// cardinality misestimates — the dominant error — are query-specific),
// falling back to the fleet-wide device calibration factor for device parts
// of queries never seen on a device. All are observed actual/estimate
// ratios; without them a single join-explosion query mispriced 100× would
// keep being placed onto the slow device pool.
func (s *Scheduler) candidates(d *optimizer.Decision) []candidate {
	sc := d.Costs
	p := d.Plan
	devC := s.calib.deviceFactor()
	hostC := 1.0
	qd, qh := s.hist.factors(queryKey(p))
	if qd > 0 {
		devC = qd
	} else if qh > 0 {
		// The query is known to be mispriced on the host; until a device run
		// proves otherwise, assume the device part is off by at least as much
		// — cardinality errors hit both pools.
		devC = maxF(devC, qh)
	}
	if qh > 0 {
		hostC = qh
	}
	// Device placement is risky until this query has produced evidence: a
	// measured device factor, or a host factor small enough to vouch for the
	// model's cardinalities. One join-explosion query estimated at 1 ms that
	// actually busies the device for seconds would dominate the fleet's
	// makespan — the single host lane it would have occupied is 1/HostCores
	// of the host pool, but the device pool may be a single execution core.
	// The adaptive policy therefore runs first-sight queries host-native and
	// offloads once the measured factors bound the downside; the forced-NDP
	// baseline ignores the flag.
	risky := qd == 0 && (qh == 0 || qh > deviceRiskCap)
	out := []candidate{{
		strat:     coop.Strategy{Kind: coop.HostNative},
		hostNs:    sc.HostTotal * hostC,
		rawHostNs: sc.HostTotal,
	}}
	for k := range sc.CNode {
		splitAfter := k
		if k == 0 {
			splitAfter = -1
		}
		mp := device.PlanMemory(s.model, p, splitAfter)
		if !mp.Fits() {
			continue
		}
		split := k
		if k == 0 {
			split = -1
		}
		devNs := sc.DevPart[k] * devC
		out = append(out, candidate{
			strat:     coop.Strategy{Kind: coop.Hybrid, Split: split},
			claim:     Claim{MemBytes: mp.TotalBytes, BufSlots: 1, EstDeviceNs: devNs},
			devNs:     devNs,
			rawDevNs:  sc.DevPart[k],
			hostNs:    sc.HostPart[k] * hostC,
			rawHostNs: sc.HostPart[k] + sc.Trans[k],
			transNs:   sc.Trans[k] * hostC,
			risky:     risky,
		})
	}
	if mp := device.PlanMemory(s.model, p, len(p.Steps)); mp.Fits() {
		devNs := sc.NDPTotal * devC
		out = append(out, candidate{
			strat:    coop.Strategy{Kind: coop.NDPOnly},
			claim:    Claim{MemBytes: mp.TotalBytes, BufSlots: 1, EstDeviceNs: devNs},
			devNs:    devNs,
			rawDevNs: sc.NDPTotal,
			risky:    risky,
		})
	}
	return out
}

// deviceRiskCap bounds the host-factor a query may have while its device
// factor is unknown and still be considered for offloading: beyond it the
// cardinality estimate is so wrong that the device-side downside is unbounded.
const deviceRiskCap = 10

// calibration tracks the observed ratio between measured device busy time
// and the cost model's estimate as an exponentially weighted moving average.
// It is the scheduler-level analog of the paper's recalibration feedback:
// instead of adjusting a rate parameter, it rescales whole device-side
// estimates so placement decisions stay honest under model error.
type calibration struct {
	mu  sync.Mutex
	dev float64 // EWMA of actual/estimate for device-side work; guarded by mu
}

const (
	calibAlpha = 0.3
	calibMin   = 0.1
	calibMax   = 30
)

func (c *calibration) deviceFactor() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dev == 0 {
		return 1
	}
	return c.dev
}

func (c *calibration) observeDevice(actual, estimate float64) {
	if estimate <= 0 || actual <= 0 {
		return
	}
	r := actual / estimate
	if r < calibMin {
		r = calibMin
	} else if r > calibMax {
		r = calibMax
	}
	c.mu.Lock()
	if c.dev == 0 {
		c.dev = r
	} else {
		c.dev = (1-calibAlpha)*c.dev + calibAlpha*r
	}
	c.mu.Unlock()
}

// queryKey identifies a query across submissions for the per-query history.
func queryKey(p *exec.Plan) string {
	if p.Query != nil && p.Query.Name != "" {
		return p.Query.Name
	}
	return ""
}

// history remembers each query's observed actual/estimate ratios, separately
// per pool. Cardinality misestimates are per-query and can be orders of
// magnitude (a join explosion the optimizer did not predict) — and crucially
// they can hit the two pools differently, so a single shared factor would
// preserve the model's wrong device-vs-host ratio and keep offloading a
// device-hostile query. A host run teaches the host cost, a device run
// teaches the device cost; a repeat submission uses whatever has been
// learned and the model (plus fleet calibration) for the rest.
type history struct {
	mu sync.Mutex
	m  map[string]*qhist // guarded by mu
}

// qhist is one query's learned correction factors (0 = not yet observed).
type qhist struct {
	dev  float64
	host float64
}

const (
	histAlpha = 0.5
	histMin   = 0.01
	histMax   = 1000
)

// factors returns the learned (device, host) corrections, 0 when unseen.
func (h *history) factors(key string) (dev, host float64) {
	if key == "" {
		return 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if q, ok := h.m[key]; ok {
		return q.dev, q.host
	}
	return 0, 0
}

// observe folds a run's measured pool times into the query's factors. A part
// the strategy did not exercise (estimate 0) teaches nothing about that pool.
func (h *history) observe(key string, devActual, devEst, hostActual, hostEst float64) {
	if key == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	q, ok := h.m[key]
	if !ok {
		q = &qhist{}
		h.m[key] = q
	}
	q.dev = fold(q.dev, devActual, devEst)
	q.host = fold(q.host, hostActual, hostEst)
}

func fold(prev, actual, est float64) float64 {
	if est <= 0 || actual <= 0 {
		return prev
	}
	r := actual / est
	if r < histMin {
		r = histMin
	} else if r > histMax {
		r = histMax
	}
	if prev == 0 {
		return r
	}
	return (1-histAlpha)*prev + histAlpha*r
}

// rank computes every candidate's loaded estimate under the current ledger
// state and sorts ascending. The loaded estimate extends the paper's overlap
// model (HybridEst = max(dev, host) + trans) with the contention terms: the
// target device's cumulative assigned work delays the device part, the
// per-lane assigned host work delays the host part. On an idle system the
// terms are zero and the ranking reproduces the optimizer's unloaded choice;
// under load this is greedy list-scheduling across the two pools — a split
// that is optimal on an idle device drifts toward H0, and eventually to
// host-native, as the device pool's assigned work catches up with the
// host's. This is the "c_target under contention" re-costing of DESIGN.md.
func rank(cands []candidate, ld Load) []candidate {
	for i := range cands {
		c := &cands[i]
		// A candidate pays a pool's backlog only on pools it actually uses:
		// a full-NDP run does not wait for the host pool to drain, and a
		// host-native run does not wait for the device.
		var dev, host float64
		if c.onDevice() {
			dev = ld.DeviceAssignedNs + c.devNs
		}
		if c.hostNs > 0 || !c.onDevice() {
			host = ld.HostAssignedNs + c.hostNs
		}
		c.loaded = maxF(dev, host) + c.transNs
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].loaded < cands[j].loaded })
	return cands
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
