package sched

import (
	"hybridndp/internal/coop"
	"hybridndp/internal/fleet"
	"hybridndp/internal/hw"
	"hybridndp/internal/obs"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/vclock"
)

// fleetGate adapts the scheduler's resource ledger and circuit breakers to
// per-shard fleet admission: every device-side shard of a scatter-gather run
// claims its command slot, DRAM reservation and a buffer slot on its pinned
// device, and reports its outcome into that device's breaker. A denied shard
// degrades to host execution inside the fleet run instead of queueing — the
// partial-fleet degradation path.
type fleetGate struct {
	l *Ledger
	m *obs.Registry
}

func (g *fleetGate) AdmitShard(dev int, memBytes int64, estNs float64) (func(ok bool, busyNs float64), bool) {
	c := Claim{MemBytes: memBytes, BufSlots: 1, EstDeviceNs: estNs}
	if !g.l.TryAcquireDevice(dev, c) {
		g.m.Counter("sched.fleet.shard.denied").Inc()
		return nil, false
	}
	g.m.Counter("sched.fleet.shard.admitted").Inc()
	released := false
	return func(ok bool, busyNs float64) {
		if released {
			return
		}
		released = true
		g.l.ReportDeviceResult(dev, ok)
		if ok {
			g.l.AdjustDevice(dev, busyNs-estNs)
		}
		g.l.Release(dev, c)
	}, true
}

// fleetDeviceBusy sums the fleet's device-side busy virtual time (setup
// rendezvous excluded, matching deviceBusy).
func fleetDeviceBusy(r *fleet.Report) vclock.Duration {
	var busy vclock.Duration
	for _, sr := range r.Shards {
		for cat, d := range sr.Account {
			if cat == hw.CatWaitSlots || cat == hw.CatNDPSetup {
				continue
			}
			busy += d
		}
	}
	return busy
}

// processFleet executes one decided query over the sharded fleet: plan the
// per-shard split points, scatter-gather through the fleet executor (shard
// admission runs against this scheduler's ledger via fleetGate), and fall
// back to plain host-native execution if the fleet run fails outright.
func (s *Scheduler) processFleet(t *Ticket, base *Outcome, d *optimizer.Decision) {
	m := s.cfg.Metrics
	tr := s.cfg.Traces.New(t.query.Name)
	s.ledger.AddHost(d.Costs.HostTotal)
	a, err := fleet.PlanShards(s.opt, s.cfg.Fleet.Desc, d)
	var frep *fleet.Report
	if err == nil {
		frep, err = s.cfg.Fleet.RunTraced(a, tr, t.deadline.Exec)
	}
	if err != nil {
		// The cooperative single-device path falls back to the host on device
		// failure; the fleet path keeps the same precondition.
		base.Chosen = coop.Strategy{Kind: coop.HostNative}.String()
		base.Degraded = true
		m.Counter("sched.fallback.host").Inc()
		rep, herr := s.exec.RunTraced(d.Plan, coop.Strategy{Kind: coop.HostNative}, tr)
		if herr != nil {
			base.Err = herr
			s.recordOutcome(base, 0, 0)
			t.finish(*base)
			return
		}
		s.ledger.AdjustHost(float64(hostBusy(rep)) - d.Costs.HostTotal)
		base.Elapsed = rep.Elapsed
		base.Report = rep
		s.recordOutcome(base, hostBusy(rep), 0)
		t.finish(*base)
		return
	}
	base.Chosen = "fleet:" + a.Label()
	base.Degraded = frep.DegradedShards > 0 || frep.DeadlineDegraded > 0
	if base.Degraded {
		m.Counter("sched.fleet.degraded_runs").Inc()
	}
	m.Counter("sched.fleet.runs").Inc()

	// Convert to the cooperative report shape the outcome pipeline consumes.
	var devMax vclock.Duration
	for _, sr := range frep.Shards {
		if sr.Elapsed > devMax {
			devMax = sr.Elapsed
		}
	}
	rep := &coop.Report{
		Query:            frep.Query,
		Strategy:         strategyOf(d),
		Result:           frep.Result,
		Elapsed:          frep.Elapsed,
		DeviceElapsed:    devMax,
		HostAccount:      frep.HostAccount,
		Batches:          frep.Batches,
		TransferredBytes: frep.TransferredBytes,
	}
	s.ledger.AdjustHost(float64(hostBusy(rep)) - d.Costs.HostTotal)
	base.Elapsed = frep.Elapsed
	base.Report = rep
	s.recordOutcome(base, hostBusy(rep), fleetDeviceBusy(frep))
	t.finish(*base)
}
