package sched

import (
	"context"
	"sync"
	"testing"

	"hybridndp/internal/fault"
	"hybridndp/internal/obs"
)

// TestBreakerTripsRoutesAndRecovers walks the circuit breaker through its
// full deterministic lifecycle with a single worker: two consecutive device
// command failures (a 100%-crash fault plan makes the executor fall back to
// the host, which the scheduler reports as a failed device command) trip the
// breaker; the next admission routes around the open device; after the
// configured number of skipped admissions the breaker goes half-open, and the
// probe — the device is healed by then — closes it again.
func TestBreakerTripsRoutesAndRecovers(t *testing.T) {
	opt, exec, m := fixture(t)
	q := ndpFeasibleQuery(t, opt, m)
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Policy = ForceNDP
	cfg.BreakerThreshold = 2
	cfg.BreakerProbeAfter = 2
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	s := New(opt, exec, m, cfg)
	defer s.Close()

	crash, err := fault.Parse("dev.crash=1")
	if err != nil {
		t.Fatal(err)
	}
	exec.Faults = crash
	defer func() { exec.Faults = nil }()

	run := func() *Outcome {
		t.Helper()
		tk, err := s.Submit(context.Background(), q, Normal)
		if err != nil {
			t.Fatal(err)
		}
		o, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if o.Err != nil {
			t.Fatalf("query failed under chaos (recovery must absorb faults): %v", o.Err)
		}
		return o
	}

	// Two failing device commands: each completes (executor host fallback) but
	// counts as a device failure, so the second trips the breaker.
	for i := 0; i < 2; i++ {
		if o := run(); o.Device < 0 {
			t.Fatalf("command %d never reached the device: %+v", i, o)
		} else if o.Report == nil || !o.Report.FellBack {
			t.Fatalf("command %d did not fall back under a 100%% crash device", i)
		}
	}
	if n := reg.Counter("sched.breaker.tripped").Value(); n != 1 {
		t.Fatalf("breaker tripped %d times after two consecutive failures, want 1", n)
	}

	// Open breaker: forced-NDP admission fails fast and routes host-side.
	if o := run(); o.Device != -1 {
		t.Fatalf("open breaker still placed the query on device %d", o.Device)
	}
	if n := reg.Counter("sched.breaker.routed.host").Value(); n != 1 {
		t.Fatalf("host routing counted %d times while open, want 1", n)
	}

	// Device healed: the next admission (the second skip) goes half-open and
	// admits a probe, whose on-device success closes the breaker.
	exec.Faults = nil
	if o := run(); o.Device < 0 {
		t.Fatalf("half-open probe never reached the device: %+v", o)
	} else if o.Report == nil || o.Report.FellBack {
		t.Fatal("healed probe still fell back to the host")
	}
	if n := reg.Counter("sched.breaker.probe").Value(); n != 1 {
		t.Fatalf("probe counted %d times, want 1", n)
	}
	if n := reg.Counter("sched.breaker.recovered").Value(); n != 1 {
		t.Fatalf("recovery counted %d times, want 1", n)
	}

	// Closed again: the follow-up lands on the device without another probe.
	if o := run(); o.Device < 0 {
		t.Fatal("recovered device refused the follow-up command")
	}
	if n := reg.Counter("sched.breaker.probe").Value(); n != 1 {
		t.Fatalf("closed breaker probed again (%d probes)", n)
	}
}

// TestBreakerProbeFailureReopens pins the half-open → open edge: a probe that
// fails (faults still active) must re-open the breaker without counting as a
// second trip, and admission keeps routing host-side afterwards.
func TestBreakerProbeFailureReopens(t *testing.T) {
	opt, exec, m := fixture(t)
	q := ndpFeasibleQuery(t, opt, m)
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Policy = ForceNDP
	cfg.BreakerThreshold = 1
	cfg.BreakerProbeAfter = 1
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	s := New(opt, exec, m, cfg)
	defer s.Close()

	crash, err := fault.Parse("dev.crash=1")
	if err != nil {
		t.Fatal(err)
	}
	exec.Faults = crash
	defer func() { exec.Faults = nil }()

	run := func() *Outcome {
		t.Helper()
		tk, err := s.Submit(context.Background(), q, Normal)
		if err != nil {
			t.Fatal(err)
		}
		o, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		return o
	}

	run() // trip (threshold 1)
	// probeAfter=1: every subsequent admission is a half-open probe, and every
	// probe fails while the crash plan is active — the breaker re-opens each
	// time without re-tripping.
	for i := 0; i < 3; i++ {
		if o := run(); o.Device < 0 || o.Report == nil || !o.Report.FellBack {
			t.Fatalf("probe %d: %+v", i, o)
		}
	}
	if n := reg.Counter("sched.breaker.tripped").Value(); n != 1 {
		t.Fatalf("probe failures re-counted as trips (%d)", n)
	}
	if n := reg.Counter("sched.breaker.probe").Value(); n != 3 {
		t.Fatalf("probe counter = %d, want 3", n)
	}
	if n := reg.Counter("sched.breaker.recovered").Value(); n != 0 {
		t.Fatalf("failed probes recorded a recovery (%d)", n)
	}
}

// TestSchedulerChaosRaceStress hammers one scheduler from many goroutines
// with a 100%-crash device and armed breakers; run with -race it verifies the
// whole recovery stack — executor retries, host fallback, breaker trips,
// fail-fast routing — under real concurrency. Every query must complete.
func TestSchedulerChaosRaceStress(t *testing.T) {
	opt, exec, m := fixture(t)
	q := ndpFeasibleQuery(t, opt, m)
	cfg := DefaultConfig()
	cfg.Devices = 2
	cfg.QueueDepth = 128
	cfg.Policy = ForceNDP
	cfg.BreakerThreshold = 1
	cfg.BreakerProbeAfter = 2
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	crash, err := fault.Parse("dev.crash=1,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	exec.Faults = crash
	defer func() { exec.Faults = nil }()
	s := New(opt, exec, m, cfg)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				tk, err := s.Submit(context.Background(), q, Priority(i%numPriorities))
				if err != nil {
					errs <- err
					return
				}
				o, err := tk.Wait(context.Background())
				if err != nil {
					errs <- err
					return
				}
				if o.Err != nil {
					errs <- o.Err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s.Close()
	st := s.Stats()
	if st.Completed != 24 || st.Errors != 0 {
		t.Fatalf("chaos stress stats: %+v", st)
	}
	if reg.Counter("sched.breaker.tripped").Value() == 0 {
		t.Fatal("a full-crash fleet never tripped a breaker")
	}
}
