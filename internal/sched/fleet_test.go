package sched

import (
	"context"
	"strings"
	"testing"

	"hybridndp/internal/coop"
	"hybridndp/internal/fleet"
	"hybridndp/internal/job"
	"hybridndp/internal/obs"
)

// fleetFixture assembles a scheduler over a 4-device fleet executor whose
// admission gate is wired to the scheduler's ledger.
func fleetFixture(t *testing.T, cfg Config) (*Scheduler, *fleet.Executor) {
	t.Helper()
	opt, exec, m := fixture(t)
	desc, err := fleet.Build(dsInst.Cat, 4, fleet.SchemeRange)
	if err != nil {
		t.Fatal(err)
	}
	if err := desc.Validate(dsInst.Cat); err != nil {
		t.Fatal(err)
	}
	fx := fleet.NewExecutor(dsInst.Cat, dsInst.DB, m, desc)
	cfg.Devices = 4
	cfg.Fleet = fx
	s := New(opt, exec, m, cfg)
	return s, fx
}

// TestFleetSchedulerCompletesAndMatchesHost routes every JOB query through
// sharded fleet execution and checks each result's row count against a plain
// host-native execution — scatter-gather through the scheduler must never
// change an answer.
func TestFleetSchedulerCompletesAndMatchesHost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 4
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	s, fx := fleetFixture(t, cfg)
	defer s.Close()
	if fx.Gate == nil {
		t.Fatal("scheduler did not wire the fleet admission gate")
	}

	queries := job.Queries()
	tickets := make([]*Ticket, 0, len(queries))
	for _, q := range queries {
		tk, err := s.Submit(context.Background(), q, Normal)
		if err != nil {
			t.Fatalf("submit %s: %v", q.Name, err)
		}
		tickets = append(tickets, tk)
	}
	sawFleet := false
	for i, tk := range tickets {
		o, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if o.Err != nil {
			t.Fatalf("%s: %v", queries[i].Name, o.Err)
		}
		if strings.HasPrefix(o.Chosen, "fleet:") && o.Chosen != "fleet:host" {
			sawFleet = true
		}
		d, err := s.opt.Decide(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		base, err := s.exec.Run(d.Plan, coop.Strategy{Kind: coop.HostNative})
		if err != nil {
			t.Fatal(err)
		}
		if o.Report == nil || o.Report.Result.RowCount != base.Result.RowCount {
			t.Fatalf("%s: fleet result diverges from host-native baseline", queries[i].Name)
		}
	}
	if !sawFleet {
		t.Fatal("no query ran device-side fleet execution")
	}
	if reg.Counter("sched.fleet.runs").Value() == 0 {
		t.Fatal("fleet run counter never incremented")
	}
}

// TestFleetBreakerDegradesShards trips one device's circuit breaker and
// requires the next fleet run to degrade that device's shard (partial-fleet
// degradation) while still completing with the correct answer — and to keep
// the breaker fed through the fleet gate's release path.
func TestFleetBreakerDegradesShards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.BreakerThreshold = 2
	cfg.BreakerProbeAfter = 100 // keep the breaker open for the whole test
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	s, _ := fleetFixture(t, cfg)
	defer s.Close()

	q := deviceBoundQuery(t, s.opt)
	// Trip device 1's breaker directly through the ledger, as consecutive
	// shard failures would.
	s.ledger.ReportDeviceResult(1, false)
	s.ledger.ReportDeviceResult(1, false)

	tk, err := s.Submit(context.Background(), q, Normal)
	if err != nil {
		t.Fatal(err)
	}
	o, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	if !strings.HasPrefix(o.Chosen, "fleet:") {
		t.Fatalf("chosen %q, want a fleet strategy", o.Chosen)
	}
	if !o.Degraded {
		t.Fatal("open breaker did not degrade the fleet run")
	}
	if reg.Counter("sched.fleet.shard.denied").Value() == 0 {
		t.Fatal("shard denial counter never incremented")
	}
	d, err := s.opt.Decide(q)
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.exec.Run(d.Plan, coop.Strategy{Kind: coop.HostNative})
	if err != nil {
		t.Fatal(err)
	}
	if o.Report.Result.RowCount != base.Result.RowCount {
		t.Fatal("degraded fleet run changed the result")
	}

	// A healthy device keeps being admitted: the gate's release path reports
	// successes into the breaker, so device 0 stays closed.
	if got := reg.Counter("sched.fleet.shard.admitted").Value(); got == 0 {
		t.Fatal("no shard was admitted on the healthy devices")
	}
}
