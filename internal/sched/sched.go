// Package sched is the concurrent query scheduler of the repro: it admits
// many in-flight queries over a (simulated) smart-storage fleet, arbitrating
// the device's scarce resources — NDP command slots, the DRAM reservation
// budget, shared result-buffer slots — through a ledger with admission
// control. Per query the optimizer's dynamic-offloading decision (paper §3)
// is the starting point, but the scheduler re-costs the split under the
// current load: device backlog inflates the device part of every hybrid
// estimate, host backlog inflates the host part, and a saturated fleet
// degrades queries to cheaper splits or host-native execution instead of
// queueing them forever. This extends the paper's "which split Hk" decision
// to "which split Hk given current device load" — the arbitration problem
// production NDP deployments face (cf. Taurus, PAPERS.md).
package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"hybridndp/internal/clock"
	"hybridndp/internal/coop"
	"hybridndp/internal/device"
	"hybridndp/internal/fleet"
	"hybridndp/internal/hw"
	"hybridndp/internal/obs"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/query"
	"hybridndp/internal/vclock"
)

// Priority classes order the admission queue. Within a class the queue is
// FIFO; across classes higher priorities dispatch first, with aging so Batch
// work is never starved (every fourth dispatch takes the oldest ticket
// regardless of class).
type Priority int

// Priority classes, highest first.
const (
	High Priority = iota
	Normal
	Batch
	numPriorities = 3
)

func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Normal:
		return "normal"
	case Batch:
		return "batch"
	}
	return fmt.Sprintf("Priority(%d)", int(p))
}

// Config sizes the scheduler.
type Config struct {
	// Workers bounds the number of concurrently executing queries.
	Workers int
	// QueueDepth bounds the admission queue across all priority classes;
	// Submit blocks (backpressure) while the queue is full.
	QueueDepth int
	// Devices is the smart-storage fleet size; each device contributes its
	// own command slots, NDP memory budget and shared buffer slots.
	Devices int
	// DeviceCmdSlots is the number of concurrent NDP commands per device.
	// The paper's COSMOS+ board dedicates one core to execution, so the
	// default is 1.
	DeviceCmdSlots int
	// QueryTimeout bounds the wall time a ticket may spend in the admission
	// queue before it is rejected (0 = unbounded).
	QueryTimeout time.Duration
	// BreakerThreshold is the consecutive device-command failure count that
	// trips a device's circuit breaker open (admission then routes around the
	// device). 0 selects the default of 3; negative disables breaking.
	BreakerThreshold int
	// BreakerProbeAfter is the number of skipped admissions after which an
	// open breaker goes half-open and admits a single probe command.
	// 0 selects the default of 8.
	BreakerProbeAfter int
	// Policy selects adaptive serving or one of the forced baselines.
	Policy Policy
	// Fleet, when set, routes every decided query through sharded
	// scatter-gather execution over the fleet executor instead of the
	// single-device cooperative path. New wires the executor's admission
	// gate to this scheduler's ledger, so shard admission shares the same
	// command slots, memory budgets and circuit breakers; a shard denied
	// admission (or behind an open breaker) degrades to host execution
	// inside the run. Policy is ignored while Fleet is set.
	Fleet *fleet.Executor
	// Clock is the wall-time source for ticket timestamps (queue-wait
	// measurement, priority aging, admission timeouts). Nil means the system
	// clock; tests inject clock.NewFake() to make aging deterministic.
	Clock clock.Clock
	// Metrics receives the scheduler's counters, the live ledger gauges
	// (per-device slot/memory occupancy, queue depths) and the calibration
	// true-up histograms. Nil disables metric recording.
	Metrics *obs.Registry
	// Traces, when set, records one obs.Trace per processed query (named
	// after the query), fed through the executor's traced run path.
	Traces *obs.TraceSet
}

// DefaultConfig returns a serving configuration suitable for the Cosmos
// model: a worker pool of 8, a bounded queue of 64, one device.
func DefaultConfig() Config {
	return Config{Workers: 8, QueueDepth: 64, Devices: 1, DeviceCmdSlots: 1, Policy: Adaptive}
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 1
	}
	if c.Devices < 1 {
		c.Devices = 1
	}
	if c.DeviceCmdSlots < 1 {
		c.DeviceCmdSlots = 1
	}
	if c.Clock == nil {
		c.Clock = clock.System()
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerThreshold < 0 {
		c.BreakerThreshold = 0 // disabled
	}
	if c.BreakerProbeAfter < 1 {
		c.BreakerProbeAfter = 8
	}
	return c
}

// Scheduler errors. Admission can fail for exactly three reasons, each with
// its own sentinel so callers can tell backpressure from shutdown from
// expiry (errors.Is works through any wrapping):
//
//   - ErrClosed: the scheduler stopped intake (returned by Submit/TrySubmit).
//   - ErrQueueFull: the bounded admission queue is at QueueDepth (returned by
//     TrySubmit only; Submit blocks instead — that is the backpressure path).
//   - ErrExpired: the ticket was admitted but timed out or was cancelled
//     while queued; it surfaces on the ticket's Outcome.Err, never from
//     Submit/TrySubmit themselves.
//
// Per-tenant quota rejections are deliberately NOT a scheduler concern: the
// serving layer (internal/serve) enforces token-bucket quotas before work
// reaches this queue and reports them as serve.ErrQuotaExceeded, so a
// caller seeing ErrQueueFull knows the shared queue — not their quota — was
// the limit.
var (
	ErrClosed    = errors.New("sched: scheduler closed")
	ErrQueueFull = errors.New("sched: admission queue full")
	ErrExpired   = errors.New("sched: ticket expired in queue")
)

// Deadline bounds one request end to end. The two clocks a request spans get
// one bound each: Wall limits the wall-clock time the ticket may spend in the
// admission queue (like Config.QueryTimeout, but per request — whichever is
// tighter wins), and Exec is the virtual-time budget forwarded into the
// executor, where it stops retries that cannot finish in time (coop) and
// degrades too-slow shards to host execution at their merge position (fleet).
// The zero Deadline imposes no bound on either clock.
type Deadline struct {
	Wall time.Duration
	Exec vclock.Duration
}

// Ticket is one submitted query's handle: it resolves to an Outcome once the
// query ran (or was rejected).
type Ticket struct {
	query     *query.Query
	priority  Priority
	ctx       context.Context
	submitted time.Time
	deadline  Deadline

	done    chan struct{}
	outcome Outcome
}

// Wait blocks until the outcome is available or ctx is done.
func (t *Ticket) Wait(ctx context.Context) (*Outcome, error) {
	// Both arms converge on state recorded elsewhere: the outcome is written
	// before done is closed, and a context cancellation returns without
	// touching any shared state, so the race is benign for determinism.
	//lint:allow detsched both outcomes converge; no sim state depends on which arm wins
	select {
	case <-t.done:
		return &t.outcome, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Done returns a channel closed when the outcome is available.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Outcome returns the outcome after Done is closed (nil before).
func (t *Ticket) Outcome() *Outcome {
	select {
	case <-t.done:
		return &t.outcome
	default:
		return nil
	}
}

// Scheduler is a running serving instance over one system.
type Scheduler struct {
	opt    *optimizer.Optimizer
	exec   *coop.Executor
	model  hw.Model
	cfg    Config
	ledger *Ledger
	stats  *collector
	calib  calibration
	hist   history

	mu       sync.Mutex
	notEmpty *sync.Cond               // set once in New
	notFull  *sync.Cond               // set once in New
	queues   [numPriorities][]*Ticket // guarded by mu
	queued   int                      // guarded by mu
	popCount uint64                   // guarded by mu
	closed   bool                     // guarded by mu

	wg sync.WaitGroup
}

// New starts a scheduler with cfg.Workers worker goroutines over the given
// planner and executor. Call Close to drain and stop it.
func New(opt *optimizer.Optimizer, exec *coop.Executor, m hw.Model, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	hostLanes := cfg.Workers
	if m.HostCores > 0 && hostLanes > m.HostCores {
		hostLanes = m.HostCores
	}
	devLanes := cfg.Devices * cfg.DeviceCmdSlots
	s := &Scheduler{
		opt:    opt,
		exec:   exec,
		model:  m,
		cfg:    cfg,
		ledger: NewLedger(m, cfg.Devices, cfg.DeviceCmdSlots, hostLanes),
		stats:  newCollector(hostLanes, devLanes),
		hist:   history{m: map[string]*qhist{}},
	}
	s.ledger.ConfigureBreaker(cfg.BreakerThreshold, cfg.BreakerProbeAfter)
	s.ledger.bindMetrics(cfg.Metrics)
	if cfg.Fleet != nil {
		cfg.Fleet.Gate = &fleetGate{l: s.ledger, m: cfg.Metrics}
		if cfg.Fleet.Metrics == nil {
			cfg.Fleet.Metrics = cfg.Metrics
		}
		if cfg.Fleet.Hedge.Enabled && cfg.Fleet.Hedge.Scale == nil {
			// Hedge thresholds scale with the calibration loop's EWMA of
			// actual/estimate device time, so a fleet whose devices run slower
			// than the model predicts does not hedge every shard.
			cfg.Fleet.Hedge.Scale = s.calib.deviceFactor
		}
	}
	s.notEmpty = sync.NewCond(&s.mu)
	s.notFull = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit enqueues a query, blocking while the admission queue is full
// (backpressure) until space frees up, ctx is done, or the scheduler closes.
func (s *Scheduler) Submit(ctx context.Context, q *query.Query, prio Priority) (*Ticket, error) {
	return s.SubmitDeadline(ctx, q, prio, Deadline{})
}

// SubmitDeadline enqueues like Submit with a per-request deadline attached:
// the ticket expires in queue (ErrExpired on its Outcome) once its wall wait
// exceeds dl.Wall, and dl.Exec rides along into the executor as the virtual
// execution budget. The zero Deadline makes this identical to Submit.
func (s *Scheduler) SubmitDeadline(ctx context.Context, q *query.Query, prio Priority, dl Deadline) (*Ticket, error) {
	if prio < High || prio > Batch {
		prio = Normal
	}
	t := &Ticket{query: q, priority: prio, ctx: ctx, submitted: s.cfg.Clock.Now(), deadline: dl, done: make(chan struct{})}
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.notFull.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	for s.queued >= s.cfg.QueueDepth && !s.closed && ctx.Err() == nil {
		s.notFull.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.enqueueLocked(t)
	s.mu.Unlock()
	s.stats.submitted()
	s.cfg.Metrics.Counter("sched.submitted").Inc()
	return t, nil
}

// TrySubmit enqueues without blocking; ErrQueueFull signals backpressure.
func (s *Scheduler) TrySubmit(q *query.Query, prio Priority) (*Ticket, error) {
	if prio < High || prio > Batch {
		prio = Normal
	}
	t := &Ticket{query: q, priority: prio, ctx: context.Background(), submitted: s.cfg.Clock.Now(), done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.stats.rejected()
		s.cfg.Metrics.Counter("sched.rejected.full").Inc()
		return nil, ErrQueueFull
	}
	s.enqueueLocked(t)
	s.mu.Unlock()
	s.stats.submitted()
	s.cfg.Metrics.Counter("sched.submitted").Inc()
	return t, nil
}

func (s *Scheduler) enqueueLocked(t *Ticket) {
	s.queues[t.priority] = append(s.queues[t.priority], t)
	s.queued++
	s.publishQueueLocked(t.priority)
	s.notEmpty.Signal()
}

// publishQueueLocked mirrors one class's queue depth (and the total) into
// gauges. Caller holds s.mu; all calls are no-ops without a registry.
func (s *Scheduler) publishQueueLocked(p Priority) {
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	m.Gauge("sched.queue.depth." + p.String()).SetInt(int64(len(s.queues[p])))
	m.Gauge("sched.queue.depth").SetInt(int64(s.queued))
}

// wallLimit is the ticket's effective wall-clock queue bound: the tighter of
// the scheduler-wide QueryTimeout and the ticket's own deadline (0 = none).
func (s *Scheduler) wallLimit(t *Ticket) time.Duration {
	limit := s.cfg.QueryTimeout
	if d := t.deadline.Wall; d > 0 && (limit == 0 || d < limit) {
		limit = d
	}
	return limit
}

// expireLocked sweeps deadline-dead tickets out of every class queue: a
// ticket whose wall wait already exceeds its limit (or whose context is done)
// is finished with ErrExpired right away instead of occupying a bounded-queue
// slot until a worker happens to pop it. Caller holds s.mu; the sweep runs on
// the same every-fourth-dispatch cadence as priority aging, so its cost is
// amortized and the queue-order fast path stays untouched.
func (s *Scheduler) expireLocked() {
	now := s.cfg.Clock.Now()
	freed := false
	for p := range s.queues {
		kept := s.queues[p][:0]
		for _, t := range s.queues[p] {
			wait := now.Sub(t.submitted)
			limit := s.wallLimit(t)
			var ctxErr error
			if t.ctx != nil {
				ctxErr = t.ctx.Err()
			}
			if ctxErr == nil && (limit <= 0 || wait <= limit) {
				kept = append(kept, t)
				continue
			}
			s.stats.rejected()
			s.cfg.Metrics.Counter("sched.rejected.expired").Inc()
			s.cfg.Metrics.Counter("sched.queue.aged_expiry").Inc()
			err := ctxErr
			if err != nil {
				err = fmt.Errorf("%w: %v", ErrExpired, err)
			} else {
				err = fmt.Errorf("%w: queue wait %v exceeded limit %v", ErrExpired, wait, limit)
			}
			t.finish(Outcome{Query: t.query.Name, Priority: t.priority, QueueWait: wait, Device: -1, Err: err})
			s.queued--
			freed = true
		}
		if len(kept) != len(s.queues[p]) {
			// Zero the freed tail so expired tickets do not linger reachable.
			for i := len(kept); i < len(s.queues[p]); i++ {
				s.queues[p][i] = nil
			}
			s.queues[p] = kept
			s.publishQueueLocked(Priority(p))
		}
	}
	if freed {
		s.notFull.Broadcast()
	}
}

// popLocked removes the next ticket: priority order normally, and every
// fourth dispatch the oldest ticket across all classes (aging), so a steady
// stream of high-priority work cannot starve the batch class. The aging
// dispatch doubles as the expiry sweep: before picking the oldest ticket,
// tickets already past their wall deadline are rejected in place.
func (s *Scheduler) popLocked() *Ticket {
	s.popCount++
	pick := -1
	if s.popCount%4 == 0 {
		s.expireLocked()
		var oldest time.Time
		for p := range s.queues {
			if len(s.queues[p]) == 0 {
				continue
			}
			if head := s.queues[p][0]; pick < 0 || head.submitted.Before(oldest) {
				pick, oldest = p, head.submitted
			}
		}
	} else {
		for p := range s.queues {
			if len(s.queues[p]) > 0 {
				pick = p
				break
			}
		}
	}
	if pick < 0 {
		return nil
	}
	t := s.queues[pick][0]
	if s.popCount%4 == 0 {
		s.cfg.Metrics.Counter("sched.queue.aged_dispatch").Inc()
	}
	s.queues[pick] = s.queues[pick][1:]
	s.queued--
	s.publishQueueLocked(Priority(pick))
	return t
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.closed {
			s.notEmpty.Wait()
		}
		if s.queued == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		t := s.popLocked()
		s.notFull.Signal()
		s.mu.Unlock()
		if t == nil {
			// The expiry sweep drained the queue before the pick.
			continue
		}
		s.process(t)
	}
}

// Close stops intake and drains: queued tickets still execute, then the
// workers exit. Blocked Submit calls return ErrClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.notEmpty.Broadcast()
	s.notFull.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats snapshots the serving counters.
func (s *Scheduler) Stats() Stats { return s.stats.snapshot() }

// Load snapshots the resource ledger.
func (s *Scheduler) Load() Load { return s.ledger.Snapshot() }

// finish resolves a ticket.
func (t *Ticket) finish(o Outcome) {
	t.outcome = o
	close(t.done)
}

// process runs one ticket through decide → degrade → execute → record.
func (s *Scheduler) process(t *Ticket) {
	m := s.cfg.Metrics
	wait := s.cfg.Clock.Since(t.submitted)
	base := Outcome{Query: t.query.Name, Priority: t.priority, QueueWait: wait, Device: -1}
	m.Histogram("sched.queue.wait.ns", obs.DefaultDurationBuckets).Observe(float64(wait.Nanoseconds()))

	// Admission timeout / cancelled context: reject instead of executing
	// work nobody is waiting for.
	if err := t.ctx.Err(); err != nil {
		s.stats.rejected()
		m.Counter("sched.rejected.expired").Inc()
		base.Err = fmt.Errorf("%w: %v", ErrExpired, err)
		t.finish(base)
		return
	}
	if limit := s.wallLimit(t); limit > 0 && wait > limit {
		s.stats.rejected()
		m.Counter("sched.rejected.expired").Inc()
		if t.deadline.Wall > 0 && (s.cfg.QueryTimeout == 0 || t.deadline.Wall < s.cfg.QueryTimeout) {
			m.Counter("sched.rejected.deadline").Inc()
		}
		base.Err = fmt.Errorf("%w: queue wait %v exceeded timeout %v", ErrExpired, wait, limit)
		t.finish(base)
		return
	}

	d, err := s.opt.Decide(t.query)
	if err != nil {
		base.Err = err
		s.recordOutcome(&base, 0, 0)
		t.finish(base)
		return
	}
	unloaded := strategyOf(d)
	base.Unloaded = unloaded.String()

	if s.cfg.Fleet != nil {
		s.processFleet(t, &base, d)
		return
	}

	cand, dev, err := s.place(t.ctx, d)
	if err != nil {
		base.Err = err
		s.recordOutcome(&base, 0, 0)
		t.finish(base)
		return
	}
	base.Chosen = cand.strat.String()
	base.Degraded = cand.strat != unloaded
	base.Device = dev
	if dev >= 0 {
		m.Counter("sched.admit.device").Inc()
	} else {
		m.Counter("sched.admit.host").Inc()
	}
	if base.Degraded {
		m.Counter("sched.admit.degraded").Inc()
	}

	tr := s.cfg.Traces.New(t.query.Name)
	s.ledger.AddHost(cand.hostNs)
	rep, err := s.exec.RunDeadline(d.Plan, cand.strat, tr, t.deadline.Exec)
	if dev >= 0 {
		// Feed the breaker: a command only counts as a device success when it
		// actually completed on the device — an executor-level host fallback
		// means the device failed every retry.
		s.ledger.ReportDeviceResult(dev, err == nil && rep != nil && !rep.FellBack)
		if rep != nil {
			// True up the estimate with the measured device busy time, so
			// estimation error cannot keep overloading the device pool, and
			// feed the actual/estimate ratio into the calibration loop.
			actual := float64(deviceBusy(rep))
			s.ledger.AdjustDevice(dev, actual-cand.claim.EstDeviceNs)
			s.calib.observeDevice(actual, cand.rawDevNs)
			if cand.rawDevNs > 0 {
				m.Histogram("sched.trueup.device.ratio", obs.DefaultRatioBuckets).
					Observe(actual / cand.rawDevNs)
			}
			m.Gauge("sched.calib.device.factor").Set(s.calib.deviceFactor())
		}
		s.ledger.Release(dev, cand.claim)
	}
	if err != nil && cand.strat.Kind != coop.HostNative {
		// Device-side execution failure: the paper's preconditions mandate
		// falling back to the traditional host-only path.
		base.Chosen = coop.Strategy{Kind: coop.HostNative}.String()
		base.Degraded = true
		m.Counter("sched.fallback.host").Inc()
		rep, err = s.exec.RunTraced(d.Plan, coop.Strategy{Kind: coop.HostNative}, tr)
	}
	if err != nil {
		base.Err = err
		s.recordOutcome(&base, 0, 0)
		t.finish(base)
		return
	}
	s.ledger.AdjustHost(float64(hostBusy(rep)) - cand.hostNs)
	if cand.rawHostNs > 0 {
		m.Histogram("sched.trueup.host.ratio", obs.DefaultRatioBuckets).
			Observe(float64(hostBusy(rep)) / cand.rawHostNs)
	}
	// Remember this query's per-pool actual/estimate ratios for repeats.
	s.hist.observe(queryKey(d.Plan),
		float64(deviceBusy(rep)), cand.rawDevNs,
		float64(hostBusy(rep)), cand.rawHostNs)
	base.Elapsed = rep.Elapsed
	base.Report = rep
	s.recordOutcome(&base, hostBusy(rep), deviceBusy(rep))
	t.finish(base)
}

// recordOutcome books a terminal outcome into the stats collector and the
// metrics registry (completion/error counters per strategy and priority).
func (s *Scheduler) recordOutcome(o *Outcome, hostBusy, devBusy vclock.Duration) {
	s.stats.record(o, hostBusy, devBusy)
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	if o.Err != nil {
		m.Counter("sched.errors").Inc()
		return
	}
	m.Counter("sched.completed").Inc()
	m.Counter("sched.completed." + o.Priority.String()).Inc()
	m.Counter("sched.strategy." + o.Chosen).Inc()
	m.Histogram("sched.elapsed.ns", obs.DefaultDurationBuckets).Observe(float64(o.Elapsed))
}

// place chooses the strategy under the configured policy and acquires the
// device claim. The returned device index is -1 for host-native execution.
func (s *Scheduler) place(ctx context.Context, d *optimizer.Decision) (candidate, int, error) {
	switch s.cfg.Policy {
	case ForceHost:
		return candidate{strat: coop.Strategy{Kind: coop.HostNative}, hostNs: d.Costs.HostTotal, rawHostNs: d.Costs.HostTotal}, -1, nil
	case ForceNDP:
		cands := s.candidates(d)
		// The last NDP-kind candidate is full NDP; fall back to host when
		// the plan never fits the device.
		var ndp *candidate
		for i := range cands {
			if cands[i].strat.Kind == coop.NDPOnly {
				ndp = &cands[i]
			}
		}
		if ndp == nil {
			return candidate{strat: coop.Strategy{Kind: coop.HostNative}, hostNs: d.Costs.HostTotal, rawHostNs: d.Costs.HostTotal}, -1, nil
		}
		dev, err := s.ledger.Acquire(ctx, ndp.claim)
		if err != nil {
			if errors.Is(err, device.ErrDeviceBusy) {
				// Every breaker is open: even forced NDP must route host-side
				// rather than error out or deadlock.
				s.cfg.Metrics.Counter("sched.breaker.routed.host").Inc()
				return candidate{strat: coop.Strategy{Kind: coop.HostNative}, hostNs: d.Costs.HostTotal, rawHostNs: d.Costs.HostTotal}, -1, nil
			}
			return candidate{}, -1, fmt.Errorf("sched: forced-NDP admission: %w", err)
		}
		return *ndp, dev, nil
	}
	// Adaptive: rank all alternatives under the current load, then walk the
	// ranking; device-bound choices must clear admission control. When a
	// device candidate is blocked on admission, the loaded estimate is
	// re-costed with the device's capacity discounted — the in-flight work
	// it would queue behind. If it still beats the host alternative, the
	// query holds out for a slot and re-ranks on the next release; otherwise
	// it degrades to the next-cheapest alternative. The host-native
	// candidate needs no claim, so placement always terminates.
	for {
		ld := s.ledger.Snapshot()
		cands := rank(s.candidates(d), ld)
		hostLoaded := math.Inf(1)
		for i := range cands {
			if !cands[i].onDevice() {
				hostLoaded = cands[i].loaded
				break
			}
		}
		if ld.DevicesHealthy == 0 {
			// Every device breaker is open: holding out for a slot would wait
			// on a fleet that admits nothing. Route straight to the host.
			s.cfg.Metrics.Counter("sched.breaker.routed.host").Inc()
			for i := range cands {
				if !cands[i].onDevice() {
					return cands[i], -1, nil
				}
			}
			return candidate{strat: coop.Strategy{Kind: coop.HostNative}, hostNs: d.Costs.HostTotal, rawHostNs: d.Costs.HostTotal}, -1, nil
		}
		wait := false
		for i := range cands {
			c := cands[i]
			if !c.onDevice() {
				return c, -1, nil
			}
			if c.risky {
				// No per-query evidence yet: the first execution stays on the
				// host, where a misestimate costs one lane, not the device.
				continue
			}
			if dev, ok := s.ledger.TryAcquire(c.claim); ok {
				return c, dev, nil
			}
			if c.loaded+ld.DeviceInFlightNs < hostLoaded {
				wait = true
				break
			}
			// Saturated and not worth waiting for: degrade to the next
			// candidate in the ranking.
		}
		if !wait {
			// Unreachable: candidates always contains host-native.
			return candidate{strat: coop.Strategy{Kind: coop.HostNative}, hostNs: d.Costs.HostTotal, rawHostNs: d.Costs.HostTotal}, -1, nil
		}
		s.cfg.Metrics.Counter("sched.admit.heldout").Inc()
		if err := s.ledger.AwaitChange(ctx); err != nil {
			// The query's context expired while holding out for a device
			// slot: run it on the host rather than rejecting admitted work.
			return candidate{strat: coop.Strategy{Kind: coop.HostNative}, hostNs: d.Costs.HostTotal, rawHostNs: d.Costs.HostTotal}, -1, nil
		}
	}
}

// hostBusy extracts the host's busy (non-stall) virtual time from a report.
// Fault-recovery waits (host waiting out a crashed device attempt, retry
// backoff) are stalls, not load.
func hostBusy(r *coop.Report) vclock.Duration {
	busy := r.Elapsed - r.HostAccount[hw.CatWaitInitial] - r.HostAccount[hw.CatWaitFetch] -
		r.HostAccount[hw.CatFaultWait] - r.HostAccount[hw.CatBackoff]
	if busy < 0 {
		busy = 0
	}
	return busy
}

// deviceBusy extracts the device's busy virtual time (setup rendezvous and
// slot stalls excluded).
func deviceBusy(r *coop.Report) vclock.Duration {
	var busy vclock.Duration
	for cat, d := range r.DeviceAccount {
		if cat == hw.CatWaitSlots || cat == hw.CatNDPSetup {
			continue
		}
		busy += d
	}
	return busy
}
