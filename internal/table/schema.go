// Package table implements the relational layer over nKV: schemas with the
// paper's fixed-width record layout (4-byte integers, padded CHAR fields,
// 4-byte alignment as required by the COSMOS+ board), the record codec,
// primary and secondary index maintenance in separate column families, and
// the index-sample statistics the cost model's cardinality estimation uses.
package table

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// ColType is a column's data type.
type ColType int

// Column types. The JOB port uses fixed-size byte lengths for
// character-based values (string padding / trimming, per the paper §5).
const (
	Int32 ColType = iota
	Char
)

func (t ColType) String() string {
	switch t {
	case Int32:
		return "INT32"
	case Char:
		return "CHAR"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column describes one attribute.
type Column struct {
	Name     string
	Type     ColType
	Size     int // payload bytes: 4 for Int32, the fixed length for Char
	Nullable bool
}

func align4(n int) int { return (n + 3) &^ 3 }

// storedSize is the 4-byte-aligned on-record footprint of the column.
func (c Column) storedSize() int {
	if c.Type == Int32 {
		return 4
	}
	return align4(c.Size)
}

// SecondaryIndex declares a secondary index over one column. As in
// MyRocks/RocksDB, every secondary index is kept in its own column family /
// LSM tree whose key combines the secondary value with the primary key.
type SecondaryIndex struct {
	Name   string
	Column string
}

// Schema is one table definition.
type Schema struct {
	Name             string
	Columns          []Column
	PrimaryKey       string // must name an Int32 column
	SecondaryIndexes []SecondaryIndex

	colIdx   map[string]int
	offsets  []int
	nullOff  int
	rowBytes int
	pkIdx    int
}

// NewSchema validates and finalizes a table definition, computing the
// fixed-width record layout.
func NewSchema(name string, cols []Column, pk string, secondary ...SecondaryIndex) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("table: schema needs a name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("table %s: no columns", name)
	}
	s := &Schema{Name: name, Columns: cols, PrimaryKey: pk, SecondaryIndexes: secondary,
		colIdx: make(map[string]int, len(cols)), pkIdx: -1}
	// Null bitmap first, padded to 4 bytes.
	s.nullOff = 0
	bitmap := align4((len(cols) + 7) / 8)
	off := bitmap
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("table %s: column %d unnamed", name, i)
		}
		if _, dup := s.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("table %s: duplicate column %q", name, c.Name)
		}
		if c.Type == Char && c.Size <= 0 {
			return nil, fmt.Errorf("table %s: CHAR column %q needs a positive size", name, c.Name)
		}
		s.colIdx[c.Name] = i
		s.offsets = append(s.offsets, off)
		off += c.storedSize()
		if c.Name == pk {
			if c.Type != Int32 {
				return nil, fmt.Errorf("table %s: primary key %q must be INT32", name, pk)
			}
			if c.Nullable {
				return nil, fmt.Errorf("table %s: primary key %q must not be nullable", name, pk)
			}
			s.pkIdx = i
		}
	}
	if s.pkIdx < 0 {
		return nil, fmt.Errorf("table %s: primary key %q is not a column", name, pk)
	}
	s.rowBytes = off
	seen := map[string]bool{}
	for _, si := range secondary {
		if _, ok := s.colIdx[si.Column]; !ok {
			return nil, fmt.Errorf("table %s: secondary index %q over unknown column %q", name, si.Name, si.Column)
		}
		if si.Name == "" || seen[si.Name] {
			return nil, fmt.Errorf("table %s: secondary index needs a unique name (%q)", name, si.Name)
		}
		seen[si.Name] = true
	}
	return s, nil
}

// MustSchema is NewSchema for static definitions.
func MustSchema(name string, cols []Column, pk string, secondary ...SecondaryIndex) *Schema {
	s, err := NewSchema(name, cols, pk, secondary...)
	if err != nil {
		panic(err)
	}
	return s
}

// RowBytes reports the fixed record size.
func (s *Schema) RowBytes() int { return s.rowBytes }

// NumColumns reports the column count.
func (s *Schema) NumColumns() int { return len(s.Columns) }

// ColumnIndex resolves a column name, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.colIdx[name]; ok {
		return i
	}
	return -1
}

// Column returns the definition of the named column.
func (s *Schema) ColumnByName(name string) (Column, bool) {
	i := s.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return s.Columns[i], true
}

// ColumnOffset reports the byte offset of column i in the fixed-width record
// layout. Vectorized kernels use it to read one column across a batch of row
// views without decoding Values; i must be a valid column index.
func (s *Schema) ColumnOffset(i int) int { return s.offsets[i] }

// NullBit reports the null-bitmap byte index and bit mask testing whether
// column i is NULL (row[byteIdx]&mask != 0), the batch-kernel form of
// Record.IsNull.
func (s *Schema) NullBit(i int) (byteIdx int, mask byte) {
	return s.nullOff + i/8, 1 << (i % 8)
}

// ColumnStoredBytes reports the aligned on-record footprint of one column,
// used by the cost model's projection-byte terms (tbl_pbn).
func (s *Schema) ColumnStoredBytes(name string) int {
	i := s.ColumnIndex(name)
	if i < 0 {
		return 0
	}
	return s.Columns[i].storedSize()
}

// Value is one typed column value.
type Value struct {
	Null bool
	Int  int32
	Str  string
	IsI  bool
}

// IntVal and StrVal build values.
func IntVal(v int32) Value { return Value{Int: v, IsI: true} }

// StrVal builds a string value.
func StrVal(v string) Value { return Value{Str: v} }

// NullVal builds a NULL.
func NullVal() Value { return Value{Null: true} }

func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	if v.IsI {
		return fmt.Sprint(v.Int)
	}
	return v.Str
}

// Record is a decoded view over one fixed-width row.
type Record struct {
	Schema *Schema
	Data   []byte
}

// IsNull reports whether column i is NULL.
func (r Record) IsNull(i int) bool {
	byteIdx := i / 8
	return r.Data[r.Schema.nullOff+byteIdx]&(1<<(i%8)) != 0
}

// Get returns column i as a typed value.
func (r Record) Get(i int) Value {
	if i < 0 || i >= len(r.Schema.Columns) {
		return NullVal()
	}
	if r.IsNull(i) {
		return NullVal()
	}
	c := r.Schema.Columns[i]
	off := r.Schema.offsets[i]
	if c.Type == Int32 {
		return IntVal(int32(binary.LittleEndian.Uint32(r.Data[off:])))
	}
	raw := r.Data[off : off+c.Size]
	return StrVal(strings.TrimRight(string(raw), "\x00"))
}

// GetByName returns the named column's value.
func (r Record) GetByName(name string) Value { return r.Get(r.Schema.ColumnIndex(name)) }

// AppendColKey appends column i's join-key encoding to dst without decoding
// the value: 'i' + big-endian int32 + 0x00 for integers, 's' + the
// NUL-trimmed character payload + 0x00 for CHAR columns — byte-identical to
// encoding Get(i) through the executor's value-key codec, with no string
// allocation. ok is false (dst unchanged) when the column is NULL or i is out
// of range; the caller decides how NULL keys behave (joins skip the tuple,
// grouping encodes an empty marker).
func (r Record) AppendColKey(dst []byte, i int) ([]byte, bool) {
	if i < 0 || i >= len(r.Schema.Columns) || r.IsNull(i) {
		return dst, false
	}
	c := r.Schema.Columns[i]
	off := r.Schema.offsets[i]
	if c.Type == Int32 {
		v := int32(binary.LittleEndian.Uint32(r.Data[off:]))
		return append(dst, 'i', byte(v>>24), byte(v>>16), byte(v>>8), byte(v), 0), true
	}
	raw := r.Data[off : off+c.Size]
	end := len(raw)
	for end > 0 && raw[end-1] == 0 {
		end--
	}
	dst = append(dst, 's')
	dst = append(dst, raw[:end]...)
	return append(dst, 0), true
}

// PK returns the record's primary key.
func (r Record) PK() int32 {
	return r.Get(r.Schema.pkIdx).Int
}

// EncodeRow builds a row from values in column order. Strings longer than
// the column size are trimmed; shorter ones padded (paper §5 workload notes).
func (s *Schema) EncodeRow(vals []Value) ([]byte, error) {
	if len(vals) != len(s.Columns) {
		return nil, fmt.Errorf("table %s: EncodeRow got %d values for %d columns", s.Name, len(vals), len(s.Columns))
	}
	row := make([]byte, s.rowBytes)
	for i, v := range vals {
		c := s.Columns[i]
		if v.Null {
			if !c.Nullable {
				return nil, fmt.Errorf("table %s: NULL in non-nullable column %q", s.Name, c.Name)
			}
			row[s.nullOff+i/8] |= 1 << (i % 8)
			continue
		}
		off := s.offsets[i]
		if c.Type == Int32 {
			if !v.IsI {
				return nil, fmt.Errorf("table %s: column %q wants INT32, got string", s.Name, c.Name)
			}
			binary.LittleEndian.PutUint32(row[off:], uint32(v.Int))
			continue
		}
		str := v.Str
		if v.IsI {
			return nil, fmt.Errorf("table %s: column %q wants CHAR, got int", s.Name, c.Name)
		}
		if len(str) > c.Size {
			str = str[:c.Size] // trim longer values
		}
		copy(row[off:off+c.Size], str)
	}
	return row, nil
}

// EncodePK renders a primary key as a sortable big-endian key with the sign
// bit flipped so negative keys order before positive ones.
func EncodePK(v int32) []byte {
	var k [4]byte
	binary.BigEndian.PutUint32(k[:], uint32(v)^0x80000000)
	return k[:]
}

// DecodePK reverses EncodePK.
func DecodePK(k []byte) int32 {
	return int32(binary.BigEndian.Uint32(k) ^ 0x80000000)
}

// EncodeSecondaryKey builds the key of a secondary-index entry: the sortable
// secondary value followed by the primary key (paper §2.2: "a key in the
// secondary index combines ... with the key of the primary index").
func (s *Schema) EncodeSecondaryKey(col string, v Value, pk int32) ([]byte, error) {
	c, ok := s.ColumnByName(col)
	if !ok {
		return nil, fmt.Errorf("table %s: unknown secondary column %q", s.Name, col)
	}
	var key []byte
	switch {
	case v.Null:
		key = append(key, 0) // NULLs sort first
	case c.Type == Int32:
		key = append(key, 1)
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(v.Int)^0x80000000)
		key = append(key, b[:]...)
	default:
		key = append(key, 1)
		str := v.Str
		if len(str) > c.Size {
			str = str[:c.Size]
		}
		padded := make([]byte, c.Size)
		copy(padded, str)
		key = append(key, padded...)
	}
	key = append(key, EncodePK(pk)...)
	return key, nil
}

// SecondaryPrefix builds the key prefix matching all entries with secondary
// value v (for equality seeks over the index).
func (s *Schema) SecondaryPrefix(col string, v Value) ([]byte, error) {
	k, err := s.EncodeSecondaryKey(col, v, 0)
	if err != nil {
		return nil, err
	}
	return k[:len(k)-4], nil
}

// PKFromSecondaryKey extracts the primary key stored at the tail of a
// secondary-index key.
func PKFromSecondaryKey(key []byte) int32 {
	return DecodePK(key[len(key)-4:])
}
