package table

import (
	"hybridndp/internal/lsm"
	"hybridndp/internal/num"
)

// Stats holds the optimizer statistics of one table, collected out of index
// samples as in MyRocks (paper §3: "we rely on the standard MySQL
// techniques, which in case of MyRocks are collected out of index samples").
// Selectivities estimated from the sample are deliberately imperfect,
// matching the paper's setup where optimal selectivities are not injected.
type Stats struct {
	RowCount  int64
	RowBytes  int
	Sample    []Record
	NDV       map[string]int64 // column → distinct values (sample-scaled)
	IntMinMax map[string][2]int32
}

const maxSampleRows = 2048

// CollectStats samples the primary index and derives the statistics. The
// collection itself is maintenance work and is not charged.
func (t *Table) CollectStats() *Stats {
	t.mu.RLock()
	if t.stats != nil {
		s := t.stats
		t.mu.RUnlock()
		return s
	}
	t.mu.RUnlock()

	rows := t.RowCount()
	stride := int64(1)
	if rows > maxSampleRows {
		stride = rows / maxSampleRows
	}
	st := &Stats{
		RowCount:  rows,
		RowBytes:  t.Schema.RowBytes(),
		NDV:       make(map[string]int64),
		IntMinMax: make(map[string][2]int32),
	}
	distinct := make(map[string]map[Value]struct{})
	for _, c := range t.Schema.Columns {
		distinct[c.Name] = make(map[Value]struct{})
	}
	var i int64
	for it := t.ScanAll(lsm.Access{}); it.Valid(); it.Next() {
		if i%stride == 0 && len(st.Sample) < maxSampleRows {
			data := append([]byte(nil), it.Entry().Value...)
			rec := Record{Schema: t.Schema, Data: data}
			st.Sample = append(st.Sample, rec)
			for ci, c := range t.Schema.Columns {
				v := rec.Get(ci)
				if v.Null {
					continue
				}
				distinct[c.Name][v] = struct{}{}
				if c.Type == Int32 {
					mm, ok := st.IntMinMax[c.Name]
					if !ok {
						st.IntMinMax[c.Name] = [2]int32{v.Int, v.Int}
					} else {
						if v.Int < mm[0] {
							mm[0] = v.Int
						}
						if v.Int > mm[1] {
							mm[1] = v.Int
						}
						st.IntMinMax[c.Name] = mm
					}
				}
			}
		}
		i++
	}
	// Scale distinct counts from the sample to the table: if nearly every
	// sampled value is distinct, assume the column is key-like.
	n := int64(len(st.Sample))
	for col, set := range distinct {
		d := int64(len(set))
		if n > 0 && d*10 >= n*9 { // ≥90% distinct in sample → scale up
			d = d * rows / num.MaxI64(n, 1)
		}
		if d < 1 {
			d = 1
		}
		st.NDV[col] = d
	}

	t.mu.Lock()
	t.stats = st
	t.mu.Unlock()
	return st
}

// SelectivityOf estimates the fraction of rows matching pred by evaluating it
// over the sample, with Laplace smoothing so zero-match predicates keep a
// small non-zero estimate (as real optimizers do).
func (s *Stats) SelectivityOf(pred func(Record) bool) float64 {
	if len(s.Sample) == 0 {
		return 0.1
	}
	match := 0
	for _, r := range s.Sample {
		if pred(r) {
			match++
		}
	}
	return (float64(match) + 0.5) / (float64(len(s.Sample)) + 1.0)
}

// EqSelectivity estimates an equality predicate on col via distinct counts.
func (s *Stats) EqSelectivity(col string) float64 {
	d := s.NDV[col]
	if d <= 0 {
		return 0.1
	}
	return 1.0 / float64(d)
}

// TotalBytes estimates the table's payload size.
func (s *Stats) TotalBytes() int64 { return s.RowCount * int64(s.RowBytes) }
