package table

import (
	"fmt"
	"sort"
	"sync"

	"hybridndp/internal/kv"
	"hybridndp/internal/lsm"
)

// Table binds a schema to its column families: one for the primary data
// (key = encoded PK, value = fixed-width row) and one per secondary index.
type Table struct {
	Schema  *Schema
	Data    *kv.ColumnFamily
	Indexes map[string]*kv.ColumnFamily // index name → CF

	mu       sync.RWMutex
	rowCount int64  // guarded by mu
	stats    *Stats // guarded by mu
}

// Catalog is the data dictionary: every table of the database.
type Catalog struct {
	mu     sync.RWMutex
	db     *kv.DB
	tables map[string]*Table // guarded by mu
}

// NewCatalog creates an empty catalog over db.
func NewCatalog(db *kv.DB) *Catalog {
	return &Catalog{db: db, tables: make(map[string]*Table)}
}

// DB exposes the underlying nKV instance.
func (c *Catalog) DB() *kv.DB { return c.db }

// CreateTable registers the schema and creates its column families.
func (c *Catalog) CreateTable(s *Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[s.Name]; ok {
		return nil, fmt.Errorf("table: %q already exists", s.Name)
	}
	data, err := c.db.CreateColumnFamily("tbl." + s.Name)
	if err != nil {
		return nil, err
	}
	t := &Table{Schema: s, Data: data, Indexes: make(map[string]*kv.ColumnFamily)}
	for _, si := range s.SecondaryIndexes {
		cf, err := c.db.CreateColumnFamily("idx." + s.Name + "." + si.Name)
		if err != nil {
			return nil, err
		}
		t.Indexes[si.Name] = cf
	}
	c.tables[s.Name] = t
	return t, nil
}

// Table resolves a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("table: %q does not exist", name)
	}
	return t, nil
}

// Tables lists table names in order.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Insert encodes and stores one row, maintaining every secondary index.
func (t *Table) Insert(vals []Value) error {
	row, err := t.Schema.EncodeRow(vals)
	if err != nil {
		return err
	}
	rec := Record{Schema: t.Schema, Data: row}
	pk := rec.PK()
	if err := t.Data.Put(EncodePK(pk), row); err != nil {
		return err
	}
	for _, si := range t.Schema.SecondaryIndexes {
		v := rec.GetByName(si.Column)
		key, err := t.Schema.EncodeSecondaryKey(si.Column, v, pk)
		if err != nil {
			return err
		}
		if err := t.Indexes[si.Name].Put(key, nil); err != nil {
			return err
		}
	}
	t.mu.Lock()
	t.rowCount++
	t.stats = nil // invalidate
	t.mu.Unlock()
	return nil
}

// RowCount reports the exact number of inserted rows (the statistics layer
// deliberately works from samples instead).
func (t *Table) RowCount() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rowCount
}

// GetByPK fetches one row by primary key.
func (t *Table) GetByPK(pk int32, ac lsm.Access) (Record, bool, error) {
	v, ok, err := t.Data.Get(EncodePK(pk), ac)
	if err != nil || !ok {
		return Record{}, false, err
	}
	return Record{Schema: t.Schema, Data: v}, true, nil
}

// GetByPKView fetches one row through a frozen read view (update-aware NDP:
// the device resolves records against the invocation's snapshot).
func (t *Table) GetByPKView(v *lsm.View, pk int32, ac lsm.Access) (Record, bool, error) {
	if v == nil {
		return t.GetByPK(pk, ac)
	}
	val, ok, err := v.Get(EncodePK(pk), ac)
	if err != nil || !ok {
		return Record{}, false, err
	}
	return Record{Schema: t.Schema, Data: val}, true, nil
}

// ScanAll iterates the primary index in PK order.
func (t *Table) ScanAll(ac lsm.Access) *lsm.TreeIter {
	return t.Data.Scan(nil, nil, ac)
}

// ScanView iterates [lo, hi) of the primary index through a frozen view
// (nil view falls back to the live tree).
func (t *Table) ScanView(v *lsm.View, lo, hi []byte, ac lsm.Access) *lsm.TreeIter {
	if v == nil {
		return t.Data.Scan(lo, hi, ac)
	}
	return v.Scan(lo, hi, ac)
}

// SecondaryIndexFor reports the index covering the given column, if any.
func (t *Table) SecondaryIndexFor(col string) (SecondaryIndex, bool) {
	for _, si := range t.Schema.SecondaryIndexes {
		if si.Column == col {
			return si, true
		}
	}
	return SecondaryIndex{}, false
}

// IndexSeek returns the primary keys of all rows whose indexed column equals
// v, via a prefix scan over the secondary LSM tree.
func (t *Table) IndexSeek(idxName string, v Value, ac lsm.Access) ([]int32, error) {
	cf, ok := t.Indexes[idxName]
	if !ok {
		return nil, fmt.Errorf("table %s: no index %q", t.Schema.Name, idxName)
	}
	var si *SecondaryIndex
	for i := range t.Schema.SecondaryIndexes {
		if t.Schema.SecondaryIndexes[i].Name == idxName {
			si = &t.Schema.SecondaryIndexes[i]
		}
	}
	if si == nil {
		return nil, fmt.Errorf("table %s: index %q not in schema", t.Schema.Name, idxName)
	}
	prefix, err := t.Schema.SecondaryPrefix(si.Column, v)
	if err != nil {
		return nil, err
	}
	var pks []int32
	end := prefixEnd(prefix)
	for it := cf.Scan(prefix, end, ac); it.Valid(); it.Next() {
		pks = append(pks, PKFromSecondaryKey(it.Entry().Key))
	}
	return pks, nil
}

// prefixEnd returns the smallest key greater than every key with the prefix.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil // all 0xff: unbounded
}

// Flush pushes all column families of the table to SSTs.
func (t *Table) Flush() error {
	if err := t.Data.Flush(); err != nil {
		return err
	}
	for _, cf := range t.Indexes {
		if err := cf.Flush(); err != nil {
			return err
		}
	}
	return nil
}
