package table

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
	"hybridndp/internal/kv"
	"hybridndp/internal/lsm"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	fl := flash.New(hw.Cosmos(), 0)
	db := kv.Open(fl, hw.Cosmos(), lsm.DefaultConfig())
	return NewCatalog(db)
}

func personSchema() *Schema {
	return MustSchema("person", []Column{
		{Name: "id", Type: Int32, Size: 4},
		{Name: "name", Type: Char, Size: 12, Nullable: true},
		{Name: "age", Type: Int32, Size: 4, Nullable: true},
		{Name: "city", Type: Char, Size: 10},
	}, "id",
		SecondaryIndex{Name: "idx_city", Column: "city"},
		SecondaryIndex{Name: "idx_age", Column: "age"})
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func() (*Schema, error)
	}{
		{"no name", func() (*Schema, error) { return NewSchema("", []Column{{Name: "id", Type: Int32}}, "id") }},
		{"no columns", func() (*Schema, error) { return NewSchema("t", nil, "id") }},
		{"dup column", func() (*Schema, error) {
			return NewSchema("t", []Column{{Name: "a", Type: Int32}, {Name: "a", Type: Int32}}, "a")
		}},
		{"char without size", func() (*Schema, error) {
			return NewSchema("t", []Column{{Name: "a", Type: Char}}, "a")
		}},
		{"missing pk", func() (*Schema, error) {
			return NewSchema("t", []Column{{Name: "a", Type: Int32}}, "b")
		}},
		{"char pk", func() (*Schema, error) {
			return NewSchema("t", []Column{{Name: "a", Type: Char, Size: 4}}, "a")
		}},
		{"nullable pk", func() (*Schema, error) {
			return NewSchema("t", []Column{{Name: "a", Type: Int32, Nullable: true}}, "a")
		}},
		{"bad index column", func() (*Schema, error) {
			return NewSchema("t", []Column{{Name: "a", Type: Int32}}, "a", SecondaryIndex{Name: "i", Column: "zz"})
		}},
		{"dup index name", func() (*Schema, error) {
			return NewSchema("t", []Column{{Name: "a", Type: Int32}, {Name: "b", Type: Int32}}, "a",
				SecondaryIndex{Name: "i", Column: "a"}, SecondaryIndex{Name: "i", Column: "b"})
		}},
	}
	for _, c := range cases {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRowLayoutAlignment(t *testing.T) {
	s := personSchema()
	// bitmap 4 + id 4 + name 12 + age 4 + city 12 (10→12 aligned) = 36.
	if s.RowBytes() != 36 {
		t.Fatalf("RowBytes = %d, want 36 (4-byte alignment per paper)", s.RowBytes())
	}
	if s.ColumnStoredBytes("city") != 12 {
		t.Fatalf("city stored bytes = %d, want 12", s.ColumnStoredBytes("city"))
	}
	if s.ColumnStoredBytes("id") != 4 {
		t.Fatal("int column must store 4 bytes")
	}
	if s.ColumnStoredBytes("missing") != 0 {
		t.Fatal("unknown column must report 0")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := personSchema()
	row, err := s.EncodeRow([]Value{IntVal(7), StrVal("alice"), IntVal(33), StrVal("berlin")})
	if err != nil {
		t.Fatal(err)
	}
	r := Record{Schema: s, Data: row}
	if r.PK() != 7 {
		t.Fatalf("PK = %d", r.PK())
	}
	if v := r.GetByName("name"); v.Str != "alice" || v.Null {
		t.Fatalf("name = %+v", v)
	}
	if v := r.GetByName("age"); v.Int != 33 {
		t.Fatalf("age = %+v", v)
	}
	if v := r.GetByName("city"); v.Str != "berlin" {
		t.Fatalf("city = %+v", v)
	}
}

func TestEncodeNullsAndErrors(t *testing.T) {
	s := personSchema()
	row, err := s.EncodeRow([]Value{IntVal(1), NullVal(), NullVal(), StrVal("x")})
	if err != nil {
		t.Fatal(err)
	}
	r := Record{Schema: s, Data: row}
	if !r.GetByName("name").Null || !r.GetByName("age").Null {
		t.Fatal("nulls lost")
	}
	if r.GetByName("city").Null {
		t.Fatal("non-null column reported null")
	}
	// NULL into non-nullable.
	if _, err := s.EncodeRow([]Value{IntVal(1), NullVal(), NullVal(), NullVal()}); err == nil {
		t.Fatal("NULL in non-nullable column must fail")
	}
	// Type mismatches.
	if _, err := s.EncodeRow([]Value{StrVal("x"), NullVal(), NullVal(), StrVal("c")}); err == nil {
		t.Fatal("string into int column must fail")
	}
	if _, err := s.EncodeRow([]Value{IntVal(1), IntVal(2), NullVal(), StrVal("c")}); err == nil {
		t.Fatal("int into char column must fail")
	}
	// Arity.
	if _, err := s.EncodeRow([]Value{IntVal(1)}); err == nil {
		t.Fatal("wrong arity must fail")
	}
}

func TestStringTrimming(t *testing.T) {
	s := personSchema()
	long := "a-very-long-name-beyond-twelve"
	row, err := s.EncodeRow([]Value{IntVal(1), StrVal(long), NullVal(), StrVal("c")})
	if err != nil {
		t.Fatal(err)
	}
	got := Record{Schema: s, Data: row}.GetByName("name").Str
	if got != long[:12] {
		t.Fatalf("trimmed to %q, want %q (paper: fixed byte lengths via trimming)", got, long[:12])
	}
}

func TestPKEncodingOrderProperty(t *testing.T) {
	f := func(a, b int32) bool {
		ka, kb := EncodePK(a), EncodePK(b)
		if DecodePK(ka) != a || DecodePK(kb) != b {
			return false
		}
		return (a < b) == (bytes.Compare(ka, kb) < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSecondaryKeyOrdering(t *testing.T) {
	s := personSchema()
	// Int secondary keys order numerically, including negatives.
	k1, _ := s.EncodeSecondaryKey("age", IntVal(-5), 1)
	k2, _ := s.EncodeSecondaryKey("age", IntVal(3), 1)
	k3, _ := s.EncodeSecondaryKey("age", NullVal(), 1)
	if bytes.Compare(k1, k2) >= 0 {
		t.Fatal("-5 must order before 3")
	}
	if bytes.Compare(k3, k1) >= 0 {
		t.Fatal("NULL must order first")
	}
	// The PK is recoverable from the tail.
	k4, _ := s.EncodeSecondaryKey("city", StrVal("x"), 4242)
	if PKFromSecondaryKey(k4) != 4242 {
		t.Fatal("PK tail lost")
	}
	// Same value, different PKs: prefix matches both.
	p, _ := s.SecondaryPrefix("city", StrVal("x"))
	if !bytes.HasPrefix(k4, p) {
		t.Fatal("prefix must cover the entry")
	}
	if _, err := s.EncodeSecondaryKey("nope", IntVal(1), 1); err == nil {
		t.Fatal("unknown column must fail")
	}
}

func TestInsertGetScanIndexSeek(t *testing.T) {
	cat := testCatalog(t)
	tbl, err := cat.CreateTable(personSchema())
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"berlin", "tokyo", "lima"}
	for i := int32(1); i <= 300; i++ {
		err := tbl.Insert([]Value{
			IntVal(i), StrVal(fmt.Sprintf("p%03d", i)), IntVal(20 + i%50), StrVal(cities[int(i)%3]),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if tbl.RowCount() != 300 {
		t.Fatalf("RowCount = %d", tbl.RowCount())
	}
	rec, ok, err := tbl.GetByPK(42, lsm.Access{})
	if err != nil || !ok {
		t.Fatalf("GetByPK: %v %v", ok, err)
	}
	if rec.GetByName("name").Str != "p042" {
		t.Fatalf("wrong row: %v", rec.GetByName("name"))
	}
	if _, ok, _ := tbl.GetByPK(9999, lsm.Access{}); ok {
		t.Fatal("missing PK found")
	}
	// Scan order and completeness.
	n := 0
	prev := int32(-1 << 30)
	for it := tbl.ScanAll(lsm.Access{}); it.Valid(); it.Next() {
		pk := DecodePK(it.Entry().Key)
		if pk <= prev {
			t.Fatal("scan out of PK order")
		}
		prev = pk
		n++
	}
	if n != 300 {
		t.Fatalf("scan found %d rows", n)
	}
	// Index seek returns exactly the matching PKs.
	pks, err := tbl.IndexSeek("idx_city", StrVal("tokyo"), lsm.Access{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pk := range pks {
		r, _, _ := tbl.GetByPK(pk, lsm.Access{})
		if r.GetByName("city").Str != "tokyo" {
			t.Fatalf("index seek returned pk %d with city %q", pk, r.GetByName("city").Str)
		}
	}
	want := 0
	for i := int32(1); i <= 300; i++ {
		if int(i)%3 == 1 {
			want++
		}
	}
	if len(pks) != want {
		t.Fatalf("idx_city(tokyo) returned %d pks, want %d", len(pks), want)
	}
	if _, err := tbl.IndexSeek("nope", StrVal("x"), lsm.Access{}); err == nil {
		t.Fatal("unknown index must fail")
	}
	if _, ok := tbl.SecondaryIndexFor("city"); !ok {
		t.Fatal("SecondaryIndexFor(city) missing")
	}
	if _, ok := tbl.SecondaryIndexFor("name"); ok {
		t.Fatal("SecondaryIndexFor(name) should not exist")
	}
}

func TestCatalogDuplicatesAndLookup(t *testing.T) {
	cat := testCatalog(t)
	if _, err := cat.CreateTable(personSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable(personSchema()); err == nil {
		t.Fatal("duplicate table must fail")
	}
	if _, err := cat.Table("person"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Table("ghost"); err == nil {
		t.Fatal("missing table must fail")
	}
	if got := cat.Tables(); len(got) != 1 || got[0] != "person" {
		t.Fatalf("Tables = %v", got)
	}
}

func TestStatsFromIndexSamples(t *testing.T) {
	cat := testCatalog(t)
	tbl, _ := cat.CreateTable(personSchema())
	rng := rand.New(rand.NewSource(3))
	for i := int32(1); i <= 5000; i++ {
		city := "berlin"
		if rng.Intn(10) == 0 {
			city = "tokyo" // ~10%
		}
		tbl.Insert([]Value{IntVal(i), NullVal(), IntVal(int32(rng.Intn(80))), StrVal(city)})
	}
	tbl.Flush()
	st := tbl.CollectStats()
	if st.RowCount != 5000 {
		t.Fatalf("RowCount = %d", st.RowCount)
	}
	if len(st.Sample) == 0 || len(st.Sample) > 2048 {
		t.Fatalf("sample size %d", len(st.Sample))
	}
	// Selectivity of city='tokyo' should land near 10%.
	sel := st.SelectivityOf(func(r Record) bool { return r.GetByName("city").Str == "tokyo" })
	if sel < 0.04 || sel > 0.2 {
		t.Fatalf("selectivity estimate %.3f, want ≈0.1", sel)
	}
	// PK column is detected as key-like (NDV scaled to the table).
	if st.NDV["id"] < 4000 {
		t.Fatalf("NDV(id) = %d, want ≈5000", st.NDV["id"])
	}
	if st.NDV["city"] > 10 {
		t.Fatalf("NDV(city) = %d, want 2", st.NDV["city"])
	}
	mm := st.IntMinMax["age"]
	if mm[0] < 0 || mm[1] > 79 {
		t.Fatalf("age min/max = %v", mm)
	}
	if st.TotalBytes() != st.RowCount*int64(st.RowBytes) {
		t.Fatal("TotalBytes inconsistent")
	}
	// Eq selectivity from NDV.
	if s := st.EqSelectivity("city"); s < 0.2 || s > 1 {
		t.Fatalf("EqSelectivity(city) = %.3f", s)
	}
	// Stats are cached until the next insert invalidates them.
	if tbl.CollectStats() != st {
		t.Fatal("stats not cached")
	}
	tbl.Insert([]Value{IntVal(9999), NullVal(), NullVal(), StrVal("x")})
	if tbl.CollectStats() == st {
		t.Fatal("insert must invalidate stats")
	}
}

func TestValueString(t *testing.T) {
	if NullVal().String() != "NULL" || IntVal(5).String() != "5" || StrVal("x").String() != "x" {
		t.Fatal("Value.String broken")
	}
}
