package fleet

import (
	"testing"

	"hybridndp/internal/fault"
	"hybridndp/internal/job"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/vclock"
)

// denyGate denies admission to a fixed set of devices and records the
// release discipline of the admitted shards.
type denyGate struct {
	deny     map[int]bool
	admitted []int
	released int
	okAll    bool
}

func (g *denyGate) AdmitShard(dev int, memBytes int64, estNs float64) (func(ok bool, busyNs float64), bool) {
	if g.deny[dev] {
		return nil, false
	}
	g.admitted = append(g.admitted, dev)
	return func(ok bool, busyNs float64) {
		g.released++
		g.okAll = g.okAll && ok
	}, true
}

// deviceQuery returns the first JOB query the optimizer decides to run with
// device participation (hybrid or NDP), plus its decision.
func deviceQuery(t *testing.T, opt *optimizer.Optimizer) *optimizer.Decision {
	t.Helper()
	for _, q := range job.Queries() {
		d, err := opt.Decide(q)
		if err != nil {
			t.Fatal(err)
		}
		if d.Hybrid || d.NDP {
			return d
		}
	}
	t.Skip("no JOB query decided device-mode at this scale")
	return nil
}

// TestDegradedShardMatchesFullFleet runs one device-mode query over a
// 4-device fleet twice — unconstrained, and with one device denied admission
// — and requires the degraded run to report the degradation while producing
// the byte-identical result (partial-fleet degradation must never change an
// answer).
func TestDegradedShardMatchesFullFleet(t *testing.T) {
	ds := testDataset(t)
	opt := optimizer.New(ds.Cat, ds.Model)
	d := deviceQuery(t, opt)

	desc, err := Build(ds.Cat, 4, SchemeRange)
	if err != nil {
		t.Fatal(err)
	}
	if err := desc.Validate(ds.Cat); err != nil {
		t.Fatal(err)
	}
	a, err := PlanShards(opt, desc, d)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mode == ModeHost {
		t.Fatalf("device-mode decision planned as host fleet assignment")
	}
	if len(a.Shards) != 4 {
		t.Fatalf("got %d shards, want 4", len(a.Shards))
	}

	full := NewExecutor(ds.Cat, ds.DB, ds.Model, desc)
	fullRep, err := full.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if fullRep.DegradedShards != 0 {
		t.Fatalf("ungated run degraded %d shards", fullRep.DegradedShards)
	}

	gate := &denyGate{deny: map[int]bool{1: true}, okAll: true}
	deg := NewExecutor(ds.Cat, ds.DB, ds.Model, desc)
	deg.Gate = gate
	degRep, err := deg.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if degRep.DegradedShards < 1 {
		t.Fatal("denied shard not reported as degraded")
	}
	if !degRep.Shards[1].Degraded {
		t.Fatal("shard 1 not marked degraded")
	}
	if got, want := Fingerprint(degRep.Result), Fingerprint(fullRep.Result); got != want {
		t.Fatalf("degraded fleet changed the result: %s != %s", got, want)
	}
	if gate.released != len(gate.admitted) {
		t.Fatalf("released %d of %d admitted shards", gate.released, len(gate.admitted))
	}
	if !gate.okAll {
		t.Fatal("an admitted shard released with ok=false on a clean run")
	}
}

// TestAllShardsDeniedStillAnswers degrades the whole fleet to host execution.
func TestAllShardsDeniedStillAnswers(t *testing.T) {
	ds := testDataset(t)
	opt := optimizer.New(ds.Cat, ds.Model)
	d := deviceQuery(t, opt)
	desc, err := Build(ds.Cat, 2, SchemeRange)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PlanShards(opt, desc, d)
	if err != nil {
		t.Fatal(err)
	}

	free := NewExecutor(ds.Cat, ds.DB, ds.Model, desc)
	want, err := free.Run(a)
	if err != nil {
		t.Fatal(err)
	}

	x := NewExecutor(ds.Cat, ds.DB, ds.Model, desc)
	x.Gate = &denyGate{deny: map[int]bool{0: true, 1: true}}
	rep, err := x.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	devShards := 0
	for _, sp := range a.Shards {
		if !(a.Mode == ModeHybrid && sp.Split == 0) {
			devShards++
		}
	}
	if rep.DegradedShards != devShards {
		t.Fatalf("degraded %d shards, want %d", rep.DegradedShards, devShards)
	}
	if got := Fingerprint(rep.Result); got != Fingerprint(want.Result) {
		t.Fatal("fully degraded fleet changed the result")
	}
	if rep.Batches != 0 {
		t.Fatalf("fully degraded run still transferred %d batches", rep.Batches)
	}
}

// TestSingleDeviceShardPlanMirrorsGlobalDecision pins the N=1 planning
// invariant: with one device holding the full driving table (frac = 1), the
// shard-local split re-derivation must reproduce the optimizer's global
// split exactly.
func TestSingleDeviceShardPlanMirrorsGlobalDecision(t *testing.T) {
	ds := testDataset(t)
	opt := optimizer.New(ds.Cat, ds.Model)
	desc, err := Build(ds.Cat, 1, SchemeRange)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range job.Queries() {
		d, err := opt.Decide(q)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Hybrid || d.Split == 0 {
			continue
		}
		a, err := PlanShards(opt, desc, d)
		if err != nil {
			t.Fatal(err)
		}
		if a.Mode != ModeHybrid {
			t.Fatalf("%s: mode %s, want hybrid", q.Name, a.Mode)
		}
		if a.Shards[0].Frac != 1 {
			t.Fatalf("%s: single-device frac %v, want 1", q.Name, a.Shards[0].Frac)
		}
		if a.Shards[0].Split != d.Split {
			t.Fatalf("%s: shard split H%d, global decision H%d", q.Name, a.Shards[0].Split, d.Split)
		}
	}
}

// TestHedgeFingerprintUnchanged is the hedging correctness gate: for every
// JOB query, a 4-device fleet run with aggressive hedging (threshold far
// below every shard's elapsed, so backups launch fleet-wide) produces a
// result fingerprint byte-identical to the unhedged run. Hedge wins consume
// the host backup's rows, hedge losses the device's — either way the merged
// stream must be the same stream.
func TestHedgeFingerprintUnchanged(t *testing.T) {
	ds := testDataset(t)
	opt := optimizer.New(ds.Cat, ds.Model)
	desc, err := Build(ds.Cat, 4, SchemeRange)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewExecutor(ds.Cat, ds.DB, ds.Model, desc)
	hedged := NewExecutor(ds.Cat, ds.DB, ds.Model, desc)
	hedged.Hedge = HedgeConfig{Enabled: true, Mult: 0.001}

	fired, won, lost := 0, 0, 0
	for _, q := range job.Queries() {
		d, err := opt.Decide(q)
		if err != nil {
			t.Fatal(err)
		}
		a, err := PlanShards(opt, desc, d)
		if err != nil {
			t.Fatal(err)
		}
		base, err := plain.Run(a)
		if err != nil {
			t.Fatalf("%s: plain: %v", q.Name, err)
		}
		rep, err := hedged.Run(a)
		if err != nil {
			t.Fatalf("%s: hedged: %v", q.Name, err)
		}
		if got, want := Fingerprint(rep.Result), Fingerprint(base.Result); got != want {
			t.Fatalf("%s: hedged fingerprint %s != unhedged %s", q.Name, got, want)
		}
		fired += rep.HedgesFired
		won += rep.HedgesWon
		lost += rep.HedgesLost
		if rep.HedgesFired != rep.HedgesWon+rep.HedgesLost {
			t.Fatalf("%s: hedge accounting fired=%d won=%d lost=%d", q.Name, rep.HedgesFired, rep.HedgesWon, rep.HedgesLost)
		}
	}
	if fired == 0 {
		t.Fatal("aggressive hedge config fired no hedges across the suite")
	}
	if won == 0 || lost == 0 {
		t.Fatalf("hedge suite should exercise both outcomes: won=%d lost=%d (fired=%d)", won, lost, fired)
	}
}

// TestDeadlineDegradesShards pins mid-gather deadline propagation: a deadline
// tighter than any device shard's elapsed degrades every device-side shard to
// host execution at its merge position, the report says so, and the result is
// unchanged.
func TestDeadlineDegradesShards(t *testing.T) {
	ds := testDataset(t)
	opt := optimizer.New(ds.Cat, ds.Model)
	d := deviceQuery(t, opt)
	desc, err := Build(ds.Cat, 4, SchemeRange)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PlanShards(opt, desc, d)
	if err != nil {
		t.Fatal(err)
	}
	x := NewExecutor(ds.Cat, ds.DB, ds.Model, desc)
	base, err := x.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.RunTraced(a, nil, vclock.Duration(1)) // 1ns: nothing device-side can finish
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadlineDegraded == 0 {
		t.Fatalf("1ns deadline degraded no shards: %+v", rep)
	}
	if got, want := Fingerprint(rep.Result), Fingerprint(base.Result); got != want {
		t.Fatalf("deadline-degraded fingerprint %s != baseline %s", got, want)
	}
	// A roomy deadline changes nothing.
	loose, err := x.RunTraced(a, nil, base.Elapsed*1000)
	if err != nil {
		t.Fatal(err)
	}
	if loose.DeadlineDegraded != 0 {
		t.Fatalf("roomy deadline still degraded %d shards", loose.DeadlineDegraded)
	}
	if loose.Elapsed != base.Elapsed {
		t.Fatalf("roomy deadline changed elapsed: %v != %v", loose.Elapsed, base.Elapsed)
	}
}

// TestFleetChaosFingerprintUnchanged injects a device-scoped crash and
// interconnect corruption into a 4-device fleet run: the crashed shard and
// every corrupt batch re-run host-side, the report accounts them, and the
// answer never changes.
func TestFleetChaosFingerprintUnchanged(t *testing.T) {
	ds := testDataset(t)
	opt := optimizer.New(ds.Cat, ds.Model)
	d := deviceQuery(t, opt)
	desc, err := Build(ds.Cat, 4, SchemeRange)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PlanShards(opt, desc, d)
	if err != nil {
		t.Fatal(err)
	}
	clean := NewExecutor(ds.Cat, ds.DB, ds.Model, desc)
	base, err := clean.Run(a)
	if err != nil {
		t.Fatal(err)
	}

	pl, err := fault.Parse("dev1:dev.crash@batch=0,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	x := NewExecutor(ds.Cat, ds.DB, ds.Model, desc)
	x.Faults = pl
	rep, err := x.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CrashedShards != 1 || !rep.Shards[1].Crashed {
		t.Fatalf("scoped crash accounting: %+v", rep)
	}
	for i, sr := range rep.Shards {
		if i != 1 && sr.Crashed {
			t.Fatalf("crash leaked to device %d", i)
		}
	}
	if got := Fingerprint(rep.Result); got != Fingerprint(base.Result) {
		t.Fatal("crashed fleet changed the result")
	}

	pl2, err := fault.Parse("xfer.corrupt=1,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	x2 := NewExecutor(ds.Cat, ds.DB, ds.Model, desc)
	x2.Faults = pl2
	rep2, err := x2.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Batches > 0 && rep2.CorruptBatches == 0 {
		t.Fatalf("xfer.corrupt=1 corrupted nothing across %d batches", rep2.Batches)
	}
	if got := Fingerprint(rep2.Result); got != Fingerprint(base.Result) {
		t.Fatal("corrupt transfers changed the result")
	}
}
