package fleet

import (
	"errors"
	"sync"
	"testing"

	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/table"
)

var (
	dsOnce sync.Once
	dsInst *job.Dataset
	dsErr  error
)

// testDataset shares one tiny JOB dataset across the fleet tests.
func testDataset(t *testing.T) *job.Dataset {
	t.Helper()
	dsOnce.Do(func() { dsInst, dsErr = job.LoadSeeded(0.01, hw.Cosmos(), job.DefaultSeed) })
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsInst
}

// TestBuildCoversEveryTableExactlyOnce builds descriptors across schemes and
// fleet sizes and proves that every catalog table's key space is tiled
// exactly once: Validate passes, and every sampled primary key (plus the
// open extremes) falls into exactly one partition.
func TestBuildCoversEveryTableExactlyOnce(t *testing.T) {
	ds := testDataset(t)
	for _, spec := range []string{"range", "", "stripe", "stripe:3"} {
		for _, devices := range []int{1, 3, 4} {
			d, err := Build(ds.Cat, devices, spec)
			if err != nil {
				t.Fatalf("Build(devices=%d, spec=%q): %v", devices, spec, err)
			}
			if err := d.Validate(ds.Cat); err != nil {
				t.Fatalf("Validate(devices=%d, spec=%q): %v", devices, spec, err)
			}
			if len(d.Parts) != len(ds.Cat.Tables()) {
				t.Fatalf("devices=%d spec=%q: descriptor covers %d tables, catalog has %d",
					devices, spec, len(d.Parts), len(ds.Cat.Tables()))
			}
			for _, name := range ds.Cat.Tables() {
				tab, err := ds.Cat.Table(name)
				if err != nil {
					t.Fatal(err)
				}
				probe := []int32{-1 << 30, 0, 1, 1 << 30}
				for _, r := range tab.CollectStats().Sample {
					probe = append(probe, r.PK())
				}
				for _, pk := range probe {
					owners := 0
					for _, p := range d.Parts[name] {
						if p.Contains(pk) {
							owners++
						}
					}
					if owners != 1 {
						t.Fatalf("devices=%d spec=%q: table %s pk %d owned by %d partitions",
							devices, spec, name, pk, owners)
					}
				}
			}
		}
	}
}

// mutilate builds a valid 2-device descriptor and hands one table's
// partition slice (guaranteed to have at least 2 partitions) to the mutator.
func mutilate(t *testing.T, cat *table.Catalog, fn func(name string, parts []Partition) []Partition) *Descriptor {
	t.Helper()
	d, err := Build(cat, 2, SchemeRange)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cat.Tables() {
		if len(d.Parts[name]) >= 2 {
			d.Parts[name] = fn(name, d.Parts[name])
			return d
		}
	}
	t.Fatal("no table produced 2 partitions at 2 devices")
	return nil
}

// TestValidateTypedErrors drives Validate through every defect class with a
// table-driven set of descriptor mutations.
func TestValidateTypedErrors(t *testing.T) {
	ds := testDataset(t)
	cases := []struct {
		name string
		want error
		make func(t *testing.T) *Descriptor
	}{
		{"valid", nil, func(t *testing.T) *Descriptor {
			d, err := Build(ds.Cat, 2, SchemeRange)
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
		{"unknown-table", ErrUnknownTable, func(t *testing.T) *Descriptor {
			d, err := Build(ds.Cat, 2, SchemeRange)
			if err != nil {
				t.Fatal(err)
			}
			d.Parts["aaa_not_a_table"] = []Partition{{Table: "aaa_not_a_table", Device: 0}}
			return d
		}},
		{"missing-table", ErrPartitionGap, func(t *testing.T) *Descriptor {
			d, err := Build(ds.Cat, 2, SchemeRange)
			if err != nil {
				t.Fatal(err)
			}
			delete(d.Parts, ds.Cat.Tables()[0])
			return d
		}},
		{"interior-gap", ErrPartitionGap, func(t *testing.T) *Descriptor {
			return mutilate(t, ds.Cat, func(name string, parts []Partition) []Partition {
				lo := *parts[1].Lo + 1
				parts[1].Lo = &lo
				return parts
			})
		}},
		{"leading-gap", ErrPartitionGap, func(t *testing.T) *Descriptor {
			return mutilate(t, ds.Cat, func(name string, parts []Partition) []Partition {
				lo := int32(-1 << 30)
				parts[0].Lo = &lo
				return parts
			})
		}},
		{"trailing-gap", ErrPartitionGap, func(t *testing.T) *Descriptor {
			return mutilate(t, ds.Cat, func(name string, parts []Partition) []Partition {
				hi := int32(1 << 30)
				parts[len(parts)-1].Hi = &hi
				return parts
			})
		}},
		{"overlap", ErrPartitionOverlap, func(t *testing.T) *Descriptor {
			return mutilate(t, ds.Cat, func(name string, parts []Partition) []Partition {
				lo := *parts[1].Lo - 1
				parts[1].Lo = &lo
				return parts
			})
		}},
		{"open-overlap", ErrPartitionOverlap, func(t *testing.T) *Descriptor {
			return mutilate(t, ds.Cat, func(name string, parts []Partition) []Partition {
				parts[1].Lo = nil
				return parts
			})
		}},
		{"inverted", ErrPartitionOverlap, func(t *testing.T) *Descriptor {
			return mutilate(t, ds.Cat, func(name string, parts []Partition) []Partition {
				hi := *parts[1].Lo
				parts[1].Hi = &hi
				parts = parts[:2]
				return parts
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.make(t).Validate(ds.Cat)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestValidateDeviceRange rejects partitions naming devices outside the fleet.
func TestValidateDeviceRange(t *testing.T) {
	ds := testDataset(t)
	d, err := Build(ds.Cat, 2, SchemeRange)
	if err != nil {
		t.Fatal(err)
	}
	name := ds.Cat.Tables()[0]
	d.Parts[name][0].Device = 99
	err = d.Validate(ds.Cat)
	if err == nil {
		t.Fatal("Validate accepted a partition on device 99 of a 2-device fleet")
	}
	if errors.Is(err, ErrPartitionGap) || errors.Is(err, ErrPartitionOverlap) || errors.Is(err, ErrUnknownTable) {
		t.Fatalf("device-range violation reported as %v", err)
	}
}

// TestParseSpec covers the spec grammar.
func TestParseSpec(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		scheme  string
		stripes int
		wantErr bool
	}{
		{"", SchemeRange, 1, false},
		{"range", SchemeRange, 1, false},
		{"stripe", SchemeStripe, 2, false},
		{"stripe:4", SchemeStripe, 4, false},
		{"stripe:0", "", 0, true},
		{"stripe:x", "", 0, true},
		{"hash", "", 0, true},
	} {
		scheme, stripes, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q) accepted", tc.spec)
			}
			continue
		}
		if err != nil || scheme != tc.scheme || stripes != tc.stripes {
			t.Errorf("ParseSpec(%q) = (%q, %d, %v), want (%q, %d)", tc.spec, scheme, stripes, err, tc.scheme, tc.stripes)
		}
	}
}
