// Package fleet scales the single-device hybridNDP model out to a sharded
// smart-storage fleet: a fleet descriptor range-partitions every table's
// primary-key space across N simulated devices (the platform-configuration
// idiom of DPU offload services — the descriptor names which device holds
// which partitions before any query runs), the split-point calculator is
// re-run per shard against the shard's local statistics, and a scatter-
// gather executor fans per-partition NDP-PQEPs out to the devices and merges
// partial results host-side in ascending partition order, so the merged
// tuple stream — and therefore every query result — is byte-identical to a
// single-device run regardless of fleet size or worker interleaving (the
// Taurus-NDP shape from PAPERS.md: push scans to many page stores, combine
// at the compute layer).
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hybridndp/internal/table"
)

// Typed descriptor-validation errors. Validation runs before any execution:
// a descriptor that does not cover every table's key space exactly once
// would silently drop or duplicate rows.
var (
	// ErrPartitionGap reports key ranges no partition covers.
	ErrPartitionGap = errors.New("fleet: partition gap")
	// ErrPartitionOverlap reports key ranges covered by more than one
	// partition (or non-ascending partition bounds).
	ErrPartitionOverlap = errors.New("fleet: partitions overlap")
	// ErrUnknownTable reports a descriptor entry for a table the catalog does
	// not have.
	ErrUnknownTable = errors.New("fleet: unknown table")
)

// Partition is one contiguous primary-key range [Lo, Hi) of a table assigned
// to a device. Nil bounds are open (-inf / +inf).
type Partition struct {
	Table  string
	Lo, Hi *int32
	Device int
}

// Contains reports whether pk falls into the partition.
func (p Partition) Contains(pk int32) bool {
	if p.Lo != nil && pk < *p.Lo {
		return false
	}
	if p.Hi != nil && pk >= *p.Hi {
		return false
	}
	return true
}

// rangeLabel renders one bound pair.
func rangeLabel(lo, hi *int32) string {
	l, h := "-inf", "+inf"
	if lo != nil {
		l = strconv.Itoa(int(*lo))
	}
	if hi != nil {
		h = strconv.Itoa(int(*hi))
	}
	return "[" + l + "," + h + ")"
}

// Descriptor is the fleet's platform configuration: how many devices exist
// and which device holds which primary-key partition of which table. It is
// immutable after Build/Validate and safe to share across concurrent runs.
type Descriptor struct {
	Devices int
	Scheme  string // "range" or "stripe"
	// Parts maps table name → partitions in ascending key order. Every
	// table's partitions must tile (-inf, +inf) exactly once (Validate).
	Parts map[string][]Partition
}

// Spec schemes. Range gives each device one contiguous block of every
// table's key space; stripe cuts each table into Devices×stripesPerDevice
// quantile sub-ranges dealt round-robin — the hash-like placement that still
// stays executable as PK-range scans.
const (
	SchemeRange  = "range"
	SchemeStripe = "stripe"
)

// stripesPerDevice is the default stripe factor of the stripe scheme.
const stripesPerDevice = 2

// ParseSpec parses a -fleet spec: "range", "stripe", or "stripe:<n>" with an
// explicit per-device stripe count.
func ParseSpec(spec string) (scheme string, stripes int, err error) {
	switch {
	case spec == "" || spec == SchemeRange:
		return SchemeRange, 1, nil
	case spec == SchemeStripe:
		return SchemeStripe, stripesPerDevice, nil
	case strings.HasPrefix(spec, SchemeStripe+":"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, SchemeStripe+":"))
		if err != nil || n < 1 {
			return "", 0, fmt.Errorf("fleet: bad stripe factor in spec %q", spec)
		}
		return SchemeStripe, n, nil
	}
	return "", 0, fmt.Errorf("fleet: unknown spec %q (want range, stripe or stripe:<n>)", spec)
}

// Build derives a fleet descriptor over every catalog table from the stats
// samples (the same PK-quantile technique the device uses for chunk bounds):
// deterministic for a given dataset, so two processes building the same spec
// agree on placement without exchanging state.
func Build(cat *table.Catalog, devices int, spec string) (*Descriptor, error) {
	scheme, stripes, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if devices < 1 {
		devices = 1
	}
	nparts := devices
	if scheme == SchemeStripe {
		nparts = devices * stripes
	}
	d := &Descriptor{Devices: devices, Scheme: scheme, Parts: make(map[string][]Partition)}
	for _, name := range cat.Tables() {
		t, err := cat.Table(name)
		if err != nil {
			return nil, err
		}
		bounds := quantileBounds(t.CollectStats(), nparts)
		parts := make([]Partition, 0, len(bounds)-1)
		for i := 0; i+1 < len(bounds); i++ {
			dev := i
			if scheme == SchemeStripe {
				dev = i % devices
			}
			if dev >= devices { // fewer cut points than devices: clamp
				dev = devices - 1
			}
			parts = append(parts, Partition{Table: name, Lo: bounds[i], Hi: bounds[i+1], Device: dev})
		}
		d.Parts[name] = parts
	}
	return d, nil
}

// quantileBounds cuts a table's PK space into at most n ranges at sample
// quantiles (mirrors the device's chunk-bound derivation; duplicate
// quantiles collapse, so tiny tables may yield fewer ranges than requested).
func quantileBounds(st *table.Stats, n int) []*int32 {
	bounds := []*int32{nil}
	if n > 1 && len(st.Sample) >= 2 {
		pks := make([]int32, 0, len(st.Sample))
		for _, r := range st.Sample {
			pks = append(pks, r.PK())
		}
		sort.Slice(pks, func(i, j int) bool { return pks[i] < pks[j] })
		for i := 1; i < n; i++ {
			q := pks[i*len(pks)/n]
			if last := bounds[len(bounds)-1]; last == nil || q > *last {
				v := q
				bounds = append(bounds, &v)
			}
		}
	}
	return append(bounds, nil)
}

// Validate checks the descriptor against the catalog: every descriptor table
// must exist (ErrUnknownTable), every catalog table's full key space must be
// covered (ErrPartitionGap) exactly once (ErrPartitionOverlap), and every
// partition must name a device inside the fleet.
func (d *Descriptor) Validate(cat *table.Catalog) error {
	known := make(map[string]bool)
	for _, name := range cat.Tables() {
		known[name] = true
	}
	names := make([]string, 0, len(d.Parts))
	for name := range d.Parts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !known[name] {
			return fmt.Errorf("%w: %q is not in the catalog", ErrUnknownTable, name)
		}
		parts := d.Parts[name]
		if len(parts) == 0 {
			return fmt.Errorf("%w: table %q has no partitions", ErrPartitionGap, name)
		}
		for i, p := range parts {
			if p.Device < 0 || p.Device >= d.Devices {
				return fmt.Errorf("fleet: table %q partition %s names device %d outside fleet of %d",
					name, rangeLabel(p.Lo, p.Hi), p.Device, d.Devices)
			}
			if p.Lo != nil && p.Hi != nil && *p.Hi <= *p.Lo {
				return fmt.Errorf("%w: table %q partition %s is empty or inverted",
					ErrPartitionOverlap, name, rangeLabel(p.Lo, p.Hi))
			}
			if i == 0 {
				if p.Lo != nil {
					return fmt.Errorf("%w: table %q keys below %d are uncovered",
						ErrPartitionGap, name, *p.Lo)
				}
				continue
			}
			prev := parts[i-1]
			switch {
			case prev.Hi == nil || p.Lo == nil:
				return fmt.Errorf("%w: table %q partition %s overlaps %s",
					ErrPartitionOverlap, name, rangeLabel(p.Lo, p.Hi), rangeLabel(prev.Lo, prev.Hi))
			case *p.Lo < *prev.Hi:
				return fmt.Errorf("%w: table %q partition %s overlaps %s",
					ErrPartitionOverlap, name, rangeLabel(p.Lo, p.Hi), rangeLabel(prev.Lo, prev.Hi))
			case *p.Lo > *prev.Hi:
				return fmt.Errorf("%w: table %q keys in %s are uncovered",
					ErrPartitionGap, name, rangeLabel(prev.Hi, p.Lo))
			}
		}
		if last := parts[len(parts)-1]; last.Hi != nil {
			return fmt.Errorf("%w: table %q keys from %d up are uncovered",
				ErrPartitionGap, name, *last.Hi)
		}
	}
	for _, name := range cat.Tables() {
		if _, ok := d.Parts[name]; !ok {
			return fmt.Errorf("%w: catalog table %q has no partitions", ErrPartitionGap, name)
		}
	}
	return nil
}

// String renders the descriptor as a platform-configuration listing, one
// line per table, deterministic for diffing.
func (d *Descriptor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet devices=%d scheme=%s\n", d.Devices, d.Scheme)
	names := make([]string, 0, len(d.Parts))
	for name := range d.Parts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %s:", name)
		for _, p := range d.Parts[name] {
			fmt.Fprintf(&b, " %s→dev%d", rangeLabel(p.Lo, p.Hi), p.Device)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
