package fleet

import (
	"fmt"

	"hybridndp/internal/device"
	"hybridndp/internal/exec"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/table"
)

// Execution modes of a fleet assignment, derived from the optimizer's global
// decision. Host runs the whole query on the host (no scatter); H0 offloads
// every leaf selection fleet-wide; Hybrid gives every shard its own interior
// split; NDP offloads every join.
const (
	ModeHost   = "host"
	ModeH0     = "H0"
	ModeHybrid = "hybrid"
	ModeNDP    = "ndp"
)

// ShardPlan is one device's per-partition NDP-PQEP: how much of the driving
// table the device holds, and where its plan is split.
type ShardPlan struct {
	Device int
	// Frac is the device's share of the driving table (from its stats-sample
	// PK counts over the descriptor's partitions).
	Frac float64
	// Split encodes the shard-local PQEP cut: -1 = scan-only offload (H0
	// leaves / single-table scans ship filtered rows, all joins host-side),
	// 0 = the shard's partition runs entirely on the host, k ≥ 1 = the first
	// k join steps run on the device.
	Split int
	// Reason explains the shard-local choice.
	Reason string
	// EstDevNs is the cost model's estimate of the shard's device-side work,
	// fed to per-shard admission.
	EstDevNs float64
	// EstHostNs estimates what this shard's partitions would cost executed
	// host-native (the shard's share of the plan's host-only total), fed to
	// the hedge winner decision.
	EstHostNs float64
	// Mem is the device DRAM reservation of the shard command.
	Mem device.MemoryPlan
}

// Assignment is a planned fleet execution: the plan, the global mode, the
// driving table's partitions in ascending key order, and one ShardPlan per
// device.
type Assignment struct {
	Plan *exec.Plan
	Mode string
	// DrivingParts are the driving table's descriptor partitions, ascending;
	// the scatter-gather merge consumes them in exactly this order.
	DrivingParts []Partition
	// Shards is indexed by device id.
	Shards []ShardPlan
}

// Label summarizes the assignment for sweep tables: the global mode, plus
// the per-device splits when they diverge (e.g. "H2" or "H2/H1/host/H2").
func (a *Assignment) Label() string {
	if a.Mode != ModeHybrid {
		return a.Mode
	}
	first := a.Shards[0].Split
	uniform := true
	for _, sp := range a.Shards[1:] {
		if sp.Split != first {
			uniform = false
			break
		}
	}
	lbl := func(split int) string {
		if split == 0 {
			return "host"
		}
		return fmt.Sprintf("H%d", split)
	}
	if uniform {
		return lbl(first)
	}
	out := lbl(a.Shards[0].Split)
	for _, sp := range a.Shards[1:] {
		out += "/" + lbl(sp.Split)
	}
	return out
}

// PlanShards turns the optimizer's global decision into per-shard PQEPs
// against the fleet descriptor: the global choice fixes the strategy family
// (host / H0 / hybrid / NDP — H0's leaf broadcast and the host baseline are
// fleet-global by construction), and within the hybrid family every device
// re-runs the split-point calculation against its shard's local statistics,
// so a small shard whose fixed inner-scan costs dominate may cut its PQEP at
// a different Hk — or hand its partition back to the host — than a large one.
func PlanShards(opt *optimizer.Optimizer, desc *Descriptor, d *optimizer.Decision) (*Assignment, error) {
	p := d.Plan
	a := &Assignment{Plan: p, Mode: ModeHost}
	if !d.Hybrid && !d.NDP {
		return a, nil
	}
	parts, ok := desc.Parts[p.Driving.Ref.Table]
	if !ok {
		return nil, fmt.Errorf("%w: driving table %q has no fleet partitions",
			ErrUnknownTable, p.Driving.Ref.Table)
	}
	a.DrivingParts = parts

	t, err := opt.Cat.Table(p.Driving.Ref.Table)
	if err != nil {
		return nil, err
	}
	fracs := drivingFracs(t.CollectStats().Sample, parts, desc.Devices)
	a.Shards = make([]ShardPlan, desc.Devices)

	switch {
	case d.NDP && len(p.Steps) == 0:
		// Single-table NDP: each shard scans and filters its partition; the
		// host merges and finalizes (projection/aggregation over the merged
		// stream keeps fleet results byte-identical to one device).
		a.Mode = ModeNDP
		for dev := range a.Shards {
			a.Shards[dev] = ShardPlan{
				Device: dev, Frac: fracs[dev], Split: -1,
				Reason:    "single-table scan offload",
				EstDevNs:  fracs[dev] * d.Costs.NDPTotal,
				EstHostNs: fracs[dev] * d.Costs.HostTotal,
				Mem:       device.PlanMemory(opt.Model, p, -1),
			}
		}
	case d.NDP:
		a.Mode = ModeNDP
		for dev := range a.Shards {
			a.Shards[dev] = ShardPlan{
				Device: dev, Frac: fracs[dev], Split: len(p.Steps),
				Reason:    "full NDP offload",
				EstDevNs:  fracs[dev] * d.Costs.NDPTotal,
				EstHostNs: fracs[dev] * d.Costs.HostTotal,
				Mem:       device.PlanMemory(opt.Model, p, len(p.Steps)),
			}
		}
	case d.Split == 0:
		// H0 is fleet-global: every device ships its partitions of every leaf
		// selection and the host joins the merged inners.
		a.Mode = ModeH0
		for dev := range a.Shards {
			a.Shards[dev] = ShardPlan{
				Device: dev, Frac: fracs[dev], Split: -1,
				Reason:    "H0 leaf offload",
				EstDevNs:  fracs[dev] * d.Costs.DevPart[0],
				EstHostNs: fracs[dev] * d.Costs.HostTotal,
				Mem:       device.PlanMemory(opt.Model, p, -1),
			}
		}
	default:
		a.Mode = ModeHybrid
		for dev := range a.Shards {
			sd, err := opt.DecideShard(p, fracs[dev])
			if err != nil {
				return nil, err
			}
			sp := ShardPlan{Device: dev, Frac: fracs[dev], Reason: sd.Reason,
				EstHostNs: fracs[dev] * d.Costs.HostTotal}
			if sd.Hybrid {
				sp.Split = sd.Split
				sp.EstDevNs = sd.Costs.DevPart[sd.Split]
				sp.Mem = device.PlanMemory(opt.Model, p, sd.Split)
			}
			a.Shards[dev] = sp
		}
	}
	return a, nil
}

// drivingFracs estimates each device's share of the driving table by
// counting stats-sample PKs over its partitions. A device whose partitions
// caught no sample rows gets the Laplace floor so shard costing never
// degenerates; a single-device fleet gets exactly 1 so shard planning
// reproduces the global split decision bit for bit.
func drivingFracs(sample []table.Record, parts []Partition, devices int) []float64 {
	fr := make([]float64, devices)
	if devices == 1 {
		fr[0] = 1
		return fr
	}
	n := len(sample)
	if n == 0 {
		for _, p := range parts {
			fr[p.Device] += 1.0 / float64(len(parts))
		}
		return fr
	}
	counts := make([]int, devices)
	for _, r := range sample {
		pk := r.PK()
		for _, p := range parts {
			if p.Contains(pk) {
				counts[p.Device]++
				break
			}
		}
	}
	for dev := range fr {
		fr[dev] = float64(counts[dev]) / float64(n)
		if fr[dev] == 0 {
			fr[dev] = 0.5 / (float64(n) + 1)
		}
	}
	return fr
}
