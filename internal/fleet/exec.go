package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"hybridndp/internal/device"
	"hybridndp/internal/exec"
	"hybridndp/internal/fault"
	"hybridndp/internal/hw"
	"hybridndp/internal/kv"
	"hybridndp/internal/lsm"
	"hybridndp/internal/num"
	"hybridndp/internal/obs"
	"hybridndp/internal/table"
	"hybridndp/internal/vclock"
)

// Gate is the fleet's per-shard admission hook (wired to the scheduler's
// device ledger and breakers). AdmitShard asks to run a device-side shard on
// device dev; a denial degrades that shard to host execution instead of
// failing the query. The returned release must be called exactly once with
// the shard's outcome and its device-busy virtual time. A nil Gate admits
// everything.
type Gate interface {
	AdmitShard(dev int, memBytes int64, estNs float64) (release func(ok bool, busyNs float64), admitted bool)
}

// ShardReport is one device's contribution to a fleet run.
type ShardReport struct {
	Device     int
	Split      int
	Partitions int
	Frac       float64
	// Rows counts driving tuples plus leaf rows the shard produced.
	Rows    int64
	Batches int
	Elapsed vclock.Duration
	Account map[string]vclock.Duration
	// Degraded marks a device-planned shard the admission gate refused; its
	// partitions executed host-side instead.
	Degraded bool
	// Crashed marks a shard whose device command died on an injected fault;
	// its partitions executed host-side instead.
	Crashed bool
	// Hedged marks a shard whose host-native backup beat the device on the
	// virtual timeline (or whose device result would have blown the request
	// deadline); the merge consumed the host backup's rows.
	Hedged bool
	Reason string
}

// Report is the outcome of one scatter-gather fleet execution.
type Report struct {
	Query  string
	Mode   string
	Result *exec.Result
	// Elapsed is the host timeline's completion instant (merge + finalize).
	Elapsed     vclock.Duration
	HostAccount map[string]vclock.Duration

	Batches          int
	TransferredBytes int64
	Devices          int
	DegradedShards   int
	// CrashedShards counts shards abandoned to the host after an injected
	// device crash; CorruptBatches counts batches that failed host-side
	// checksum verification (their partitions re-ran host-side).
	CrashedShards  int
	CorruptBatches int
	// HedgesFired / HedgesWon / HedgesLost account hedged shard execution:
	// fired = a host backup was launched for a slow shard, won = the backup's
	// estimated finish beat the device and the merge used the host rows,
	// lost = the device still finished first and the backup was cancelled.
	HedgesFired int
	HedgesWon   int
	HedgesLost  int
	// DeadlineDegraded counts shards routed to host-side execution because
	// their device completion would have blown the request deadline.
	DeadlineDegraded int
	Shards           []ShardReport
}

// Executor fans per-partition NDP-PQEPs out over the fleet and gathers the
// partial results on the host. All devices run on independent virtual
// timelines anchored at their command-setup instants; the host merge
// consumes shard batches in ascending driving-partition order (never in
// completion order), so the merged tuple stream — and the finalized result —
// is byte-identical to a single-device run for every fleet size.
type Executor struct {
	Cat   *table.Catalog
	DB    *kv.DB
	Model hw.Model
	Desc  *Descriptor
	// Gate is the per-shard admission hook; nil admits every shard.
	Gate Gate
	// Chunks overrides the global driving-table chunk count (0 = auto); each
	// shard gets its per-device share.
	Chunks int
	// BatchSize sets the columnar batch row capacity of every engine this
	// executor builds (0 = exec.DefaultBatchSize); charges are byte-identical
	// at every size.
	BatchSize int
	// Faults, when set to an enabled plan, injects per-device faults into the
	// scatter path (device-scoped entries like "dev1:dev.stall=2ms" hit only
	// that fleet member). A crashed shard degrades to host-side execution at
	// its merge position; a corrupt batch re-runs its partition host-side.
	Faults *fault.Plan
	// Metrics receives fleet counters (hedges, crashes, degradations); the
	// registry is race-safe and may be shared. Nil disables recording.
	Metrics *obs.Registry
	// Budget, when set, is the shared retry/hedge token budget: launching a
	// shard hedge spends one token, and a drained bucket suppresses hedging
	// so fault storms cannot amplify. Nil = unlimited.
	Budget *fault.RetryBudget
	// Hedge configures hedged shard execution (disabled by default).
	Hedge HedgeConfig
}

// HedgeConfig tunes hedged shard execution: once a shard's device elapsed
// virtual time exceeds Mult × the Quantile of the admitted shards' EstDevNs
// (optionally rescaled by the scheduler's EWMA device-calibration factor via
// Scale), a host-native backup for that shard is launched at the threshold
// instant, and the merge takes whichever side finishes first on the virtual
// timeline. Both sides produce the identical tuple stream for the shard's
// partitions, so fingerprints are unchanged whichever wins.
type HedgeConfig struct {
	// Enabled turns hedging on.
	Enabled bool
	// Quantile of the admitted shards' device estimates that anchors the
	// threshold (0 = 0.5, the median).
	Quantile float64
	// Mult scales the quantile into the launch threshold (0 = 3): a shard
	// must look Mult× slower than the typical shard estimate before the
	// backup spends host work.
	Mult float64
	// Scale, when set, rescales the threshold by the scheduler's learned
	// device calibration factor so hedge launches track real device speed
	// rather than raw model estimates.
	Scale func() float64
}

// NewExecutor builds a fleet executor over the catalog and descriptor.
func NewExecutor(cat *table.Catalog, db *kv.DB, m hw.Model, desc *Descriptor) *Executor {
	return &Executor{Cat: cat, DB: db, Model: m, Desc: desc}
}

// hostCache mirrors the cooperative executor's cold host block cache.
func (x *Executor) hostCache() *lsm.BlockCache {
	bytes := int64(float64(x.DB.Flash().Used()) * x.Model.HostCacheFraction)
	return lsm.NewBlockCache(bytes)
}

// snapshotFor captures shared state for the device-read tables (driving plus
// the inner tables of the first `split` steps; split < 0 = all).
func (x *Executor) snapshotFor(p *exec.Plan, split int) (*kv.Snapshot, error) {
	names := []string{"tbl." + p.Driving.Ref.Table}
	limit := len(p.Steps)
	if split >= 0 && split < limit {
		limit = split
	}
	for i := 0; i < limit; i++ {
		names = append(names, "tbl."+p.Steps[i].Right.Ref.Table)
	}
	return x.DB.TakeSnapshot(names)
}

// chunkCount mirrors the cooperative executor's driving-chunk sizing; each
// fleet shard then takes its per-device share (+1 so a shard never rounds to
// zero chunks).
func (x *Executor) chunkCount(p *exec.Plan) int {
	if x.Chunks > 0 {
		return x.Chunks
	}
	t, err := x.Cat.Table(p.Driving.Ref.Table)
	if err != nil {
		return 8
	}
	bytes := float64(t.CollectStats().TotalBytes())
	c := int(bytes / float64(4*x.Model.SharedBufferSlot))
	if c < 4 {
		c = 4
	}
	if c > 64 {
		c = 64
	}
	return c
}

// snapshotViews extracts the frozen per-table views from the snapshot.
func snapshotViews(snap *kv.Snapshot) map[string]*lsm.View {
	views := make(map[string]*lsm.View, len(snap.CFs))
	for name, cf := range snap.CFs {
		views[strings.TrimPrefix(name, "tbl.")] = cf.View
	}
	return views
}

// leafKey addresses one inner table's partition scan: step index within the
// plan plus partition index within the table's descriptor entry.
type leafKey struct{ step, part int }

// Run executes a planned assignment over the fleet.
func (x *Executor) Run(a *Assignment) (*Report, error) {
	return x.RunTraced(a, nil, 0)
}

// RunTraced executes a planned assignment with structured spans on the host
// timeline and an optional per-request virtual-time deadline (0 = none). The
// deadline never aborts the request: a shard whose device completion would
// land past the deadline is degraded to host-side execution at its merge
// position — the same partition-preserving path an admission denial takes —
// so the host stops waiting on stragglers it can out-run.
func (x *Executor) RunTraced(a *Assignment, tr *obs.Trace, deadline vclock.Duration) (*Report, error) {
	p := a.Plan
	rep := &Report{Query: p.Query.Name, Mode: a.Mode, Devices: x.Desc.Devices}
	hostTL := vclock.NewTimeline("host")
	hostR := hw.HostRates(x.Model)
	hostEng := &exec.Engine{Cat: x.Cat, TL: hostTL, R: hostR, Cache: x.hostCache(), BatchSize: x.BatchSize}

	root := tr.Start(hostTL, "query:"+p.Query.Name).Attr("strategy", "fleet:"+a.Label())
	defer root.End()

	// A host-global decision never scatters: the whole plan runs on the host
	// exactly like the cooperative baseline.
	if a.Mode == ModeHost {
		res, err := hostEng.RunPlan(p)
		if err != nil {
			return nil, err
		}
		rep.Result = res
		rep.Elapsed = vclock.Duration(hostTL.Now())
		rep.HostAccount = hostTL.Account()
		return rep, nil
	}

	// H0 joins device-shipped leaf rows on the host: index joins against the
	// base tables would discard the offloaded selections (same plan-copy
	// coercion as the cooperative H0 path).
	if a.Mode == ModeH0 && len(p.Steps) > 0 {
		p2 := *p
		p2.Steps = append([]exec.JoinStep(nil), p.Steps...)
		for i := range p2.Steps {
			if p2.Steps[i].Type == exec.BNLI {
				p2.Steps[i].Type = exec.BNL
			}
		}
		p = &p2
	}

	// Per-shard admission. A denied device-planned shard degrades to host
	// execution of its partitions; planned host shards (hybrid Split == 0)
	// never claim device resources.
	nDev := x.Desc.Devices
	releases := make([]func(ok bool, busyNs float64), nDev)
	degraded := make([]bool, nDev)
	wantsDevice := func(dev int) bool {
		return !(a.Mode == ModeHybrid && a.Shards[dev].Split == 0)
	}
	released := false
	releaseAll := func(ok bool, busy func(dev int) float64) {
		if released {
			return
		}
		released = true
		for dev, rel := range releases {
			if rel != nil {
				rel(ok, busy(dev))
			}
		}
	}
	defer releaseAll(false, func(int) float64 { return 0 })
	for dev := 0; dev < nDev; dev++ {
		if !wantsDevice(dev) {
			continue
		}
		if x.Gate == nil {
			continue
		}
		sp := a.Shards[dev]
		rel, ok := x.Gate.AdmitShard(dev, sp.Mem.TotalBytes, sp.EstDevNs)
		if !ok {
			degraded[dev] = true
			rep.DegradedShards++
			continue
		}
		releases[dev] = rel
	}
	crashed := make([]bool, nDev)
	healthy := func(dev int) bool { return wantsDevice(dev) && !degraded[dev] && !crashed[dev] }

	anyDevice := false
	maxSplit := -1
	for dev := 0; dev < nDev; dev++ {
		if healthy(dev) {
			anyDevice = true
			if s := a.Shards[dev].Split; s > maxSplit {
				maxSplit = s
			}
		}
	}
	if a.Mode == ModeH0 {
		maxSplit = -1 // leaf offload reads every inner table on device
	}

	pl, err := hostEng.StartPipeline(p)
	if err != nil {
		return nil, err
	}

	// Scatter phase: each admitted device gets its own command, engine and
	// pipeline, so inner builds and scans charge the owning device's
	// timeline. Devices are visited in ascending id — their timelines are
	// independent, so code order only fixes determinism, not virtual
	// concurrency.
	var snap *kv.Snapshot
	if anyDevice {
		snap, err = x.snapshotFor(p, maxSplit)
		if err != nil {
			return nil, err
		}
	}
	shardChunks := x.chunkCount(p)/nDev + 1
	devs := make([]*device.Device, nDev)
	injs := make([]*fault.Injector, nDev)
	leaves := make(map[leafKey]device.Batch)
	drivingBatches := make([][]device.Batch, len(a.DrivingParts))
	shardRows := make([]int64, nDev)
	shardBatches := make([]int, nDev)
	for dev := 0; dev < nDev; dev++ {
		if !healthy(dev) {
			continue
		}
		sp := a.Shards[dev]
		d := device.New(x.Model, x.Cat)
		d.BatchSize = x.BatchSize
		d.Trace = tr
		if fp := x.Faults.ForDevice(dev); fp.Enabled() {
			// Per-device fault stream: the run key folds in the device id so
			// one sick device's episode never perturbs its siblings'.
			injs[dev] = fp.Injector(p.Query.Name + "|" + a.Mode + "|dev" + strconv.Itoa(dev)).Bind(x.Metrics)
			d.Faults = injs[dev]
		}
		devs[dev] = d
		cmd := &device.Command{Plan: p, SplitAfter: sp.Split, Snapshot: snap, Chunks: shardChunks}
		if err := d.Validate(cmd); err != nil {
			return nil, err
		}
		eng := d.Engine(sp.Mem)
		eng.Views = snapshotViews(snap)
		dpl, err := eng.StartPipeline(p)
		if err != nil {
			return nil, err
		}

		// NDP setup: the host issues the fleet's commands back to back; each
		// device's timeline starts when its own command arrived.
		setup := hostR.Interconnect.Transfer(cmd.Bytes(), cmd.Bytes())
		hostTL.Charge(hw.CatNDPSetup, setup)
		d.TL.WaitUntil(hostTL.Now(), hw.CatNDPSetup)

		devErr := func() error {
			// H0: this device ships its partitions of every leaf selection.
			if a.Mode == ModeH0 {
				for si, st := range p.Steps {
					for pi, part := range x.Desc.Parts[st.Right.Ref.Table] {
						if part.Device != dev {
							continue
						}
						b, err := d.ScanLeafPartition(st.Right, eng, part.Lo, part.Hi)
						if err != nil {
							return err
						}
						leaves[leafKey{si, pi}] = b
						shardRows[dev] += int64(b.Cols.Len())
						shardBatches[dev]++
					}
				}
			}
			// Driving partitions owned by this device, in ascending key order.
			for pi, part := range a.DrivingParts {
				if part.Device != dev {
					continue
				}
				slot := pi
				err := d.RunShard(cmd, dpl, eng, part.Lo, part.Hi, func(b device.Batch) error {
					drivingBatches[slot] = append(drivingBatches[slot], b)
					shardRows[dev] += int64(len(b.Tuples))
					shardBatches[dev]++
					return nil
				})
				if err != nil {
					return err
				}
			}
			return nil
		}()
		if devErr != nil {
			if !fault.Injected(devErr) {
				return nil, devErr
			}
			// Injected crash: abandon the shard and run its partitions
			// host-side at their merge positions (the breaker-denial path).
			// Partial device output is discarded so the merged stream stays
			// byte-identical to the fault-free run.
			crashed[dev] = true
			rep.CrashedShards++
			x.Metrics.Counter("fleet.shard.crashed").Inc()
			for si, st := range p.Steps {
				for pi, part := range x.Desc.Parts[st.Right.Ref.Table] {
					if part.Device == dev {
						delete(leaves, leafKey{si, pi})
					}
				}
			}
			for pi, part := range a.DrivingParts {
				if part.Device == dev {
					drivingBatches[pi] = nil
				}
			}
			shardRows[dev], shardBatches[dev] = 0, 0
		}
	}

	// Hedge / deadline decision. Every admitted shard's device completion
	// instant is known here; a shard past the request deadline degrades to
	// host-side execution outright, and — with hedging on — a shard past the
	// hedge threshold launches a host-native backup at the threshold instant,
	// the merge taking whichever side's virtual finish comes first. Either
	// way the shard's partitions yield the identical tuple stream, so the
	// choice moves latency, never bytes.
	hedged := make([]bool, nDev)
	hedgeFloor := make([]vclock.Time, nDev)
	thr := x.hedgeThreshold(a, healthy)
	for dev := 0; dev < nDev; dev++ {
		if !healthy(dev) {
			continue
		}
		elapsed := devs[dev].TL.Now()
		if deadline > 0 && vclock.Duration(elapsed) > deadline {
			hedged[dev] = true
			rep.DeadlineDegraded++
			x.Metrics.Counter("fleet.deadline.degraded").Inc()
			continue
		}
		if thr > 0 && float64(elapsed) > thr {
			if !x.Budget.Allow() {
				x.Metrics.Counter("fleet.hedge.budget_denied").Inc()
				continue
			}
			rep.HedgesFired++
			x.Metrics.Counter("fleet.hedge.fired").Inc()
			if thr+a.Shards[dev].EstHostNs < float64(elapsed) {
				hedged[dev] = true
				hedgeFloor[dev] = vclock.Time(thr)
				rep.HedgesWon++
				x.Metrics.Counter("fleet.hedge.won").Inc()
			} else {
				rep.HedgesLost++
				x.Metrics.Counter("fleet.hedge.lost").Inc()
			}
		}
	}
	// useDevice: the merge consumes this shard's device batches (admitted,
	// alive, and not out-raced by its host backup).
	useDevice := func(dev int) bool { return healthy(dev) && !hedged[dev] }

	// Host prep overlaps the devices' initial execution: pre-build the inner
	// hash tables of host-side buffered joins (H0 inners are device-seeded
	// and must stay unbuilt until the leaf batches arrive).
	if a.Mode != ModeH0 {
		minHostFrom := len(p.Steps)
		for _, part := range a.DrivingParts {
			hf := 0
			if useDevice(part.Device) {
				if hf = a.Shards[part.Device].Split; hf < 0 {
					hf = 0
				}
			}
			if hf < minHostFrom {
				minHostFrom = hf
			}
		}
		for si := minHostFrom; si < len(p.Steps); si++ {
			if p.Steps[si].Type != exec.BNLI {
				if _, err := hostEng.BuildInner(pl, si); err != nil {
					return nil, err
				}
			}
		}
	}

	// Gather phase. Batches are consumed in plan order — every leaf
	// partition of every step first (H0), then every driving partition — in
	// ascending partition order regardless of which device produced them, so
	// the merged tuple stream reconstructs the single-device order exactly.
	first := true
	fetch := func(b device.Batch) {
		cat := hw.CatWaitFetch
		if first {
			cat = hw.CatWaitInitial
			first = false
		}
		hostTL.WaitUntil(b.Ready, cat)
		hostR.Transfer(hostTL, num.MaxI64(b.Bytes, 64), x.Model.SharedBufferSlot)
		rep.TransferredBytes += b.Bytes
		rep.Batches++
	}
	// verify draws the in-transfer corruption for a sealed batch and checks
	// its checksum host-side; a failed batch sends its partition to the host
	// path. Unsealed batches (fault-free runs) skip everything.
	verify := func(dev int, b device.Batch) bool {
		if b.Sum == 0 {
			return true
		}
		if injs[dev].TransferCorrupt() {
			b.CorruptInTransfer()
		}
		if b.Verify() != nil {
			rep.CorruptBatches++
			x.Metrics.Counter("fleet.batch.corrupt").Inc()
			return false
		}
		return true
	}
	if a.Mode == ModeH0 {
		for si, st := range p.Steps {
			for pi, part := range x.Desc.Parts[st.Right.Ref.Table] {
				if b, ok := leaves[leafKey{si, pi}]; ok && !hedged[part.Device] {
					fetch(b)
					if verify(part.Device, b) {
						if err := hostEng.AppendInnerCols(pl, si, b.Cols); err != nil {
							return nil, err
						}
						continue
					}
				}
				// Degraded, crashed, hedged or corrupt owner: the host scans
				// this leaf partition itself.
				hostTL.WaitUntil(hedgeFloor[part.Device], hw.CatHedgeWait)
				cb, _, err := hostEng.ScanCols(st.Right, part.Lo, part.Hi)
				if err != nil {
					return nil, err
				}
				if err := hostEng.AppendInnerCols(pl, si, cb); err != nil {
					return nil, err
				}
			}
		}
	}
	var tuples []exec.Tuple
	joinRange := func(from int, batch []exec.Tuple) ([]exec.Tuple, error) {
		for si := from; si < len(p.Steps); si++ {
			var jerr error
			if batch, jerr = hostEng.JoinStep(pl, si, batch); jerr != nil {
				return nil, jerr
			}
		}
		return batch, nil
	}
	for pi, part := range a.DrivingParts {
		dev := part.Device
		fromDevice := false
		if useDevice(dev) {
			// Merge the shard's device batches; a corrupt batch abandons the
			// partition's merged rows and falls through to the host path, so
			// the final stream carries each partition exactly once.
			fromDevice = true
			var partTuples []exec.Tuple
			hostFrom := a.Shards[dev].Split
			if hostFrom < 0 {
				hostFrom = 0
			}
			for _, b := range drivingBatches[pi] {
				fetch(b)
				if !verify(dev, b) {
					fromDevice = false
					break
				}
				out, err := joinRange(hostFrom, b.Tuples)
				if err != nil {
					return nil, err
				}
				partTuples = append(partTuples, out...)
			}
			if fromDevice {
				tuples = append(tuples, partTuples...)
				continue
			}
		}
		// Host shard (planned, degraded, crashed, hedged or corrupt): its
		// partition runs entirely host-side at its merge position, preserving
		// the global order. A hedge-won shard's backup is floored at the
		// hedge launch instant — the backup cannot have started earlier.
		var hsp *obs.Span
		if hedged[dev] {
			name := "fleet.deadline.degrade"
			if hedgeFloor[dev] > 0 {
				name = "fleet.hedge"
			}
			hsp = tr.Start(hostTL, name).AttrInt("device", int64(dev)).AttrInt("partition", int64(pi))
			hostTL.WaitUntil(hedgeFloor[dev], hw.CatHedgeWait)
		}
		rows, _, err := hostEng.ScanAccess(p.Driving, part.Lo, part.Hi)
		if err != nil {
			hsp.End()
			return nil, err
		}
		if !healthy(dev) {
			shardRows[dev] += int64(len(rows))
		}
		out, err := joinRange(0, pl.MakeTuples(rows))
		if err != nil {
			hsp.End()
			return nil, err
		}
		tuples = append(tuples, out...)
		hsp.End()
	}

	res, err := hostEng.Finalize(pl, tuples)
	if err != nil {
		return nil, err
	}
	rep.Result = res
	rep.Elapsed = vclock.Duration(hostTL.Now())
	rep.HostAccount = hostTL.Account()
	rep.Shards = make([]ShardReport, nDev)
	for dev := 0; dev < nDev; dev++ {
		sp := a.Shards[dev]
		sr := ShardReport{
			Device: dev, Split: sp.Split, Frac: sp.Frac, Reason: sp.Reason,
			Rows: shardRows[dev], Batches: shardBatches[dev], Degraded: degraded[dev],
			Crashed: crashed[dev], Hedged: hedged[dev],
		}
		for _, part := range a.DrivingParts {
			if part.Device == dev {
				sr.Partitions++
			}
		}
		if d := devs[dev]; d != nil {
			sr.Elapsed = vclock.Duration(d.TL.Now())
			sr.Account = d.TL.Account()
		}
		rep.Shards[dev] = sr
	}
	releaseAll(true, func(dev int) float64 {
		if d := devs[dev]; d != nil {
			return float64(d.TL.Now())
		}
		return 0
	})
	return rep, nil
}

// hedgeThreshold derives the virtual-time hedge launch threshold for this
// assignment: Mult × the Quantile of the admitted shards' device estimates,
// rescaled by the scheduler's learned device-calibration factor when wired.
// Anchoring on the shard population's own estimates (rather than a fixed
// duration) makes the threshold scale-free: a query whose shards are all
// expensive hedges late, a cheap query's straggler is caught early. Returns 0
// (hedging off) when disabled or no shard is device-admitted.
func (x *Executor) hedgeThreshold(a *Assignment, healthy func(int) bool) float64 {
	if !x.Hedge.Enabled {
		return 0
	}
	var ests []float64
	for dev := range a.Shards {
		if healthy(dev) {
			ests = append(ests, a.Shards[dev].EstDevNs)
		}
	}
	if len(ests) == 0 {
		return 0
	}
	sort.Float64s(ests)
	q := x.Hedge.Quantile
	if q <= 0 || q > 1 {
		q = 0.5
	}
	idx := int(q*float64(len(ests)-1) + 0.5)
	mult := x.Hedge.Mult
	if mult <= 0 {
		mult = 3
	}
	scale := 1.0
	if x.Hedge.Scale != nil {
		if s := x.Hedge.Scale(); s > 0 {
			scale = s
		}
	}
	return mult * scale * ests[idx]
}

// Fingerprint digests a result for byte-identity comparison: column names,
// row count, byte volume and every retained row's values feed one FNV-1a
// stream, so two results agree iff the digests agree.
func Fingerprint(r *exec.Result) string {
	h := fnv.New64a()
	for _, c := range r.Columns {
		fmt.Fprintf(h, "%s\x00", c)
	}
	fmt.Fprintf(h, "|%d|%d|", r.RowCount, r.Bytes)
	for _, row := range r.Rows {
		for _, v := range row {
			switch {
			case v.Null:
				fmt.Fprintf(h, "N\x00")
			case v.IsI:
				fmt.Fprintf(h, "i%d\x00", v.Int)
			default:
				fmt.Fprintf(h, "s%s\x00", v.Str)
			}
		}
		fmt.Fprintf(h, "\n")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
