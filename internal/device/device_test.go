package device_test

import (
	"sync"
	"testing"

	"hybridndp/internal/device"
	"hybridndp/internal/exec"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/vclock"
)

var (
	dsOnce sync.Once
	ds     *job.Dataset
	dsErr  error
)

func env(t *testing.T) (*job.Dataset, *optimizer.Optimizer) {
	t.Helper()
	dsOnce.Do(func() { ds, dsErr = job.Load(0.01, hw.Cosmos()) })
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return ds, optimizer.New(ds.Cat, ds.Model)
}

func TestPlanMemoryLimits(t *testing.T) {
	m := hw.Cosmos() // unscaled: 17 MB / 7 MB / 400 MB
	mkPlan := func(tables int, secondary bool) *exec.Plan {
		p := &exec.Plan{Query: nil}
		for i := 1; i < tables; i++ {
			st := exec.JoinStep{Type: exec.BNL}
			if secondary {
				st.Type = exec.BNLI
				st.RightIndex = "idx_x"
			}
			p.Steps = append(p.Steps, st)
		}
		return p
	}
	// Paper §5 allows ≤17 tables without secondary indices per NDP call;
	// with every join using a secondary index (each adding its own 17 MB
	// selection buffer) the ledger caps at 10 — the paper's 12 assumes a
	// mix of indexed and non-indexed joins.
	if mp := device.PlanMemory(m, mkPlan(17, false), 16); !mp.Fits() {
		t.Fatalf("17 tables without secondary indices must fit: %+v", mp)
	}
	if mp := device.PlanMemory(m, mkPlan(18, false), 17); mp.Fits() {
		t.Fatalf("18 tables must not fit: %+v", mp)
	}
	if mp := device.PlanMemory(m, mkPlan(10, true), 9); !mp.Fits() {
		t.Fatalf("10 all-secondary tables must fit: %+v", mp)
	}
	if mp := device.PlanMemory(m, mkPlan(12, true), 11); mp.Fits() {
		t.Fatalf("12 all-secondary tables must not fit: %+v", mp)
	}
}

func TestPlanMemoryPointerFormatSwitch(t *testing.T) {
	m := hw.Cosmos()
	two := &exec.Plan{Steps: []exec.JoinStep{{Type: exec.BNL}}}
	three := &exec.Plan{Steps: []exec.JoinStep{{Type: exec.BNL}, {Type: exec.BNL}}}
	if device.PlanMemory(m, two, 1).UsesPointerFmt {
		t.Fatal("2 tables must use the row cache format (paper §4.2)")
	}
	if !device.PlanMemory(m, three, 2).UsesPointerFmt {
		t.Fatal("3 tables must switch to the pointer cache format")
	}
	// H0 over a wide plan counts every leaf.
	wide := &exec.Plan{Steps: make([]exec.JoinStep, 6)}
	mp := device.PlanMemory(m, wide, -1)
	if mp.Selections != 7 || mp.Joins != 0 {
		t.Fatalf("H0 memory plan: %+v", mp)
	}
}

func TestValidateRejectsOversizedCommands(t *testing.T) {
	ds, opt := env(t)
	p, err := opt.BuildPlan(job.QueryByName("8c"))
	if err != nil {
		t.Fatal(err)
	}
	d := device.New(ds.Model, ds.Cat)
	if err := d.Validate(&device.Command{Plan: p, SplitAfter: len(p.Steps) + 3}); err == nil {
		t.Fatal("split beyond the plan must fail validation")
	}
	// A crushed budget rejects everything beyond tiny offloads.
	m := ds.Model
	m.DeviceNDPBudget = 1
	tiny := device.New(m, ds.Cat)
	if err := tiny.Validate(&device.Command{Plan: p, SplitAfter: 2}); err == nil {
		t.Fatal("over-budget command must fail validation")
	}
}

func TestCommandBytesGrowWithPlan(t *testing.T) {
	_, opt := env(t)
	small, err := opt.BuildPlan(job.QueryByName("32b"))
	if err != nil {
		t.Fatal(err)
	}
	big, err := opt.BuildPlan(job.QueryByName("29a"))
	if err != nil {
		t.Fatal(err)
	}
	cs := &device.Command{Plan: small, SplitAfter: 1}
	cb := &device.Command{Plan: big, SplitAfter: 1}
	if cb.Bytes() <= cs.Bytes() {
		t.Fatal("bigger plans must serialize to bigger commands")
	}
}

func TestRunH0EmitsLeavesThenDrivingChunks(t *testing.T) {
	ds, opt := env(t)
	p, err := opt.BuildPlan(job.QueryByName("1a"))
	if err != nil {
		t.Fatal(err)
	}
	d := device.New(ds.Model, ds.Cat)
	cmd := &device.Command{Plan: p, SplitAfter: -1, Chunks: 4}
	mp := device.PlanMemory(ds.Model, p, -1)
	eng := d.Engine(mp)
	hostEng := &exec.Engine{Cat: ds.Cat}
	pl, err := hostEng.StartPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	var leafBatches, chunkBatches int
	sawChunk := false
	var lastReady vclock.Time
	emit := func(b device.Batch) error {
		if b.Ready < lastReady {
			t.Fatal("batch timestamps must be monotone")
		}
		lastReady = b.Ready
		if b.LeafAlias != "" {
			if sawChunk {
				t.Fatal("leaf batches must precede driving chunks")
			}
			leafBatches++
			if b.Cols == nil && b.Bytes > 0 {
				t.Fatal("leaf batch without a column batch")
			}
		} else {
			sawChunk = true
			chunkBatches++
		}
		return nil
	}
	if err := d.Run(cmd, pl, eng, emit, func(int) (vclock.Time, bool) { return 0, false }); err != nil {
		t.Fatal(err)
	}
	if leafBatches != len(p.Steps) {
		t.Fatalf("H0 emitted %d leaf batches, want %d", leafBatches, len(p.Steps))
	}
	if chunkBatches == 0 {
		t.Fatal("no driving chunks emitted")
	}
}

func TestRunHkProducesJoinedTuples(t *testing.T) {
	ds, opt := env(t)
	p, err := opt.BuildPlan(job.QueryByName("1a"))
	if err != nil {
		t.Fatal(err)
	}
	d := device.New(ds.Model, ds.Cat)
	split := 2
	cmd := &device.Command{Plan: p, SplitAfter: split, Chunks: 4}
	mp := device.PlanMemory(ds.Model, p, split)
	eng := d.Engine(mp)
	pl, err := (&exec.Engine{Cat: ds.Cat}).StartPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	emit := func(b device.Batch) error {
		for _, tu := range b.Tuples {
			if len(tu) != split+1 {
				t.Fatalf("tuple spans %d tables, want %d", len(tu), split+1)
			}
		}
		total += len(b.Tuples)
		return nil
	}
	if err := d.Run(cmd, pl, eng, emit, func(int) (vclock.Time, bool) { return 0, false }); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("device pipeline produced nothing")
	}
	if d.TL.Now() <= 0 {
		t.Fatal("device work was not charged")
	}
}

func TestWaitSlotBackPressure(t *testing.T) {
	ds, opt := env(t)
	p, err := opt.BuildPlan(job.QueryByName("17b"))
	if err != nil {
		t.Fatal(err)
	}
	m := ds.Model
	m.SharedSlots = 1
	d := device.New(m, ds.Cat)
	split := 1
	cmd := &device.Command{Plan: p, SplitAfter: split, Chunks: 8}
	mp := device.PlanMemory(m, p, split)
	eng := d.Engine(mp)
	pl, err := (&exec.Engine{Cat: ds.Cat}).StartPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	// The host "fetches" each batch only far in the future, so the single
	// slot forces the device to stall between batches.
	var ready []vclock.Time
	slack := vclock.Time(0)
	emit := func(b device.Batch) error {
		ready = append(ready, b.Ready)
		return nil
	}
	waitSlot := func(j int) (vclock.Time, bool) {
		if j < len(ready) {
			slack += 1e9 // each fetch 1 virtual second after the last
			return ready[j].Add(vclock.Duration(slack)), true
		}
		return 0, false
	}
	if err := d.Run(cmd, pl, eng, emit, waitSlot); err != nil {
		t.Fatal(err)
	}
	if len(ready) > 1 && d.TL.Booked(hw.CatWaitSlots) <= 0 {
		t.Fatal("device never stalled despite a single occupied slot")
	}
}
