// Package device simulates the COSMOS+ smart-storage board of the paper: a
// management core (core 0) that receives NDP commands and relays result
// buffers, a dedicated execution core (core 1) that runs the offloaded
// partial plan as a volcano pipeline over bounded caches, a DRAM budget
// ledger enforcing the paper's memory reservations, and shared buffer slots
// that create back-pressure between device production and host consumption.
package device

import (
	"errors"
	"fmt"
	"hash/fnv"

	"hybridndp/internal/exec"
	"hybridndp/internal/fault"
	"hybridndp/internal/hw"
	"hybridndp/internal/kv"
	"hybridndp/internal/lsm"
	"hybridndp/internal/obs"
	"hybridndp/internal/table"
	"hybridndp/internal/vclock"
)

// Typed device errors. The crash/corruption sentinels are re-exported from
// internal/fault so recovery code can errors.Is against either package.
var (
	// ErrDeviceCrash is a mid-command device crash (injected).
	ErrDeviceCrash = fault.ErrDeviceCrash
	// ErrCorruptBatch is a result batch whose checksum failed verification.
	ErrCorruptBatch = fault.ErrCorruptBatch
	// ErrDeviceBusy signals that no device can admit the command right now
	// (all NDP command slots taken or every breaker open).
	ErrDeviceBusy = errors.New("device: no NDP command slot available")
	// ErrMemoryBudget signals a command whose memory plan exceeds the NDP
	// DRAM budget.
	ErrMemoryBudget = errors.New("device: NDP memory plan exceeds budget")
	// ErrBadSplit signals a split point past the plan's join count.
	ErrBadSplit = errors.New("device: split exceeds join steps")
)

// Command is one NDP invocation: the offloaded partial plan plus everything
// the device needs to execute it without host interaction (paper Fig. 7 A):
// the shared-state snapshot, physical placements, index information and the
// transfer buffer configuration.
type Command struct {
	Plan *exec.Plan
	// SplitAfter is the number of join steps executed on device. -1 selects
	// leaf-only offloading (H0: every base-table selection runs on device,
	// all joins remain on the host). len(Plan.Steps) offloads every join.
	SplitAfter int
	// Snapshot is the shared state shipped with the invocation.
	Snapshot *kv.Snapshot
	// Chunks partitions the driving table; each chunk yields one
	// intermediate result set placed in a shared buffer slot.
	Chunks int
}

// Bytes estimates the serialized command size (plan description, placement
// map, shared state), charged as PCIe payload during the NDP setup.
func (c *Command) Bytes() int64 {
	var n int64 = 256                    // command header, buffer config
	n += int64(c.Plan.NumTables()) * 128 // per-table descriptor + predicates
	n += int64(len(c.Plan.Steps)) * 64   // join descriptors
	if c.Snapshot != nil {
		n += c.Snapshot.Bytes()
	}
	return n
}

// Batch is one intermediate result set: the tuples of one driving-table
// chunk after the device-side joins, stamped with the device time at which
// the shared buffer slot became ready for pickup.
type Batch struct {
	Tuples []exec.Tuple
	Bytes  int64
	Ready  vclock.Time
	// LeafAlias is set for H0 leaf batches: which table's selection this is.
	LeafAlias string
	// Cols carries an H0 leaf selection as a fully-selected column batch —
	// the cross-interconnect transfer unit the host gather loop feeds straight
	// into SeedInnerCols/AppendInnerCols.
	Cols *exec.ColBatch
	Last bool
	// Sum is the payload checksum sealed by the device before the slot is
	// published and verified by the host after the fetch. 0 = unsealed
	// (fault injection disabled): verification is skipped, so fault-free
	// runs pay no checksum cost and stay byte-identical.
	Sum uint64
}

// corruptMask is the bit pattern injected corruption XORs into a sealed
// checksum — any non-zero mask makes Verify fail.
const corruptMask = 0xdeadbeefcafef00d

// Checksum hashes the batch payload (FNV-1a over tuples/rows with length
// framing). It is a simulation-level integrity check, not charged to any
// timeline: real hardware folds CRC into the DMA engine.
func (b *Batch) Checksum() uint64 {
	h := fnv.New64a()
	var frame [8]byte
	writeLen := func(n int) {
		frame[0] = byte(n)
		frame[1] = byte(n >> 8)
		frame[2] = byte(n >> 16)
		frame[3] = byte(n >> 24)
		h.Write(frame[:4])
	}
	writeLen(len(b.Tuples))
	for _, t := range b.Tuples {
		writeLen(len(t))
		for _, pos := range t {
			writeLen(len(pos))
			h.Write(pos)
		}
	}
	// Leaf payload: the column batch's selected rows in selection order —
	// the same bytes, in the same framing, as the row-slice payload this
	// checksum originally covered, so sealed sums are unchanged.
	if b.Cols != nil {
		writeLen(b.Cols.Len())
		for _, i := range b.Cols.Sel {
			r := b.Cols.Rows[i]
			writeLen(len(r))
			h.Write(r)
		}
	} else {
		writeLen(0)
	}
	h.Write([]byte(b.LeafAlias))
	sum := h.Sum64()
	if sum == 0 {
		sum = 1 // 0 is reserved for "unsealed"
	}
	return sum
}

// Seal stamps the batch with its checksum; corrupt simulates device-side
// payload corruption by sealing a flipped sum.
func (b *Batch) Seal(corrupt bool) {
	b.Sum = b.Checksum()
	if corrupt {
		b.Sum ^= corruptMask
	}
}

// CorruptInTransfer simulates interconnect corruption during the host fetch
// of a sealed batch (no-op on unsealed batches).
func (b *Batch) CorruptInTransfer() {
	if b.Sum != 0 {
		b.Sum ^= corruptMask
	}
}

// Verify re-hashes the payload against the sealed checksum. Unsealed batches
// (Sum 0, faults disabled) pass unconditionally.
func (b *Batch) Verify() error {
	if b.Sum == 0 {
		return nil
	}
	if got := b.Checksum(); got != b.Sum {
		return fmt.Errorf("device: checksum %#x != sealed %#x: %w", got, b.Sum, ErrCorruptBatch)
	}
	return nil
}

// MemoryPlan is the device DRAM ledger for one command (paper §5 memory
// reservations: 17 MB per selection via an index, 7 MB per join, within the
// ~400 MB NDP budget).
type MemoryPlan struct {
	Selections     int
	SecondaryIdx   int
	Joins          int
	SelBytes       int64
	JoinBytes      int64
	TotalBytes     int64
	BudgetBytes    int64
	UsesPointerFmt bool
}

// PlanMemory computes the ledger for offloading the given prefix.
func PlanMemory(m hw.Model, p *exec.Plan, splitAfter int) MemoryPlan {
	mp := MemoryPlan{BudgetBytes: m.DeviceNDPBudget}
	nTables := 1
	if splitAfter < 0 {
		nTables = p.NumTables() // H0: all leaves
	} else {
		nTables = 1 + splitAfter
	}
	mp.Selections = nTables
	if splitAfter > 0 {
		mp.Joins = splitAfter
	}
	for i := 0; i < splitAfter && i < len(p.Steps); i++ {
		if p.Steps[i].Type == exec.BNLI && !p.Steps[i].RightIndexIsPK {
			mp.SecondaryIdx++
		}
	}
	mp.SelBytes = int64(mp.Selections+mp.SecondaryIdx) * m.SelBufBytes
	mp.JoinBytes = int64(mp.Joins) * m.JoinBufBytes
	mp.TotalBytes = mp.SelBytes + mp.JoinBytes
	mp.UsesPointerFmt = nTables > 2 // paper §4.2: pointer cache above 2 tables
	return mp
}

// Fits reports whether the ledger stays inside the NDP budget. With the
// paper's numbers this allows at most 12 tables with secondary indices or 17
// without in one NDP call.
func (mp MemoryPlan) Fits() bool { return mp.TotalBytes <= mp.BudgetBytes }

// Device is the simulated smart-storage board.
type Device struct {
	Model hw.Model
	Cat   *table.Catalog
	// TL is core 1's execution timeline.
	TL *vclock.Timeline
	// Trace receives device-side spans (leaf scans, driving chunks, explicit
	// slot-stall spans). Nil disables tracing. A device is created per run, so
	// the trace needs no further synchronization here.
	Trace *obs.Trace
	// Metrics receives device counters (scan volume, batches, slot stalls).
	// Nil disables them.
	Metrics *obs.Registry
	// Faults, when set, injects crash/stall/corruption faults into this
	// run's batch-emit path and flash read errors into the device engine.
	// Per-run state like Trace: the caller attaches one injector per run.
	Faults *fault.Injector
	// BatchSize is the columnar batch row capacity of the engines this device
	// builds (0 = exec.DefaultBatchSize); charges are byte-identical at every
	// size.
	BatchSize int
}

// New creates a device bound to the catalog (whose flash it reads directly).
func New(m hw.Model, cat *table.Catalog) *Device {
	return &Device{Model: m, Cat: cat, TL: vclock.NewTimeline("device")}
}

// Engine builds the on-device execution engine for one command: device
// rates, bounded buffers, the row/pointer cache format switch, and a small
// data-block buffer cache carved out of the temporary-storage reservation.
func (d *Device) Engine(mp MemoryPlan) *exec.Engine {
	cacheBytes := int64(float64(d.Cat.DB().Flash().Used()) * d.Model.DeviceCacheFraction)
	eng := &exec.Engine{
		Cat:          d.Cat,
		TL:           d.TL,
		R:            hw.DeviceRates(d.Model),
		Cache:        lsm.NewBlockCache(cacheBytes),
		JoinBuf:      d.Model.JoinBufBytes,
		SelBuf:       d.Model.SelBufBytes,
		PointerCache: mp.UsesPointerFmt,
		BatchSize:    d.BatchSize,
	}
	if d.Faults != nil {
		// Only assign a live injector: a typed-nil interface would defeat
		// the inj != nil fast path in the flash layer.
		eng.Faults = d.Faults
	}
	return eng
}

// Run executes the command's device part, calling emit for every produced
// batch. waitSlot is consulted before producing batch j once all shared
// buffer slots are occupied: it returns the host fetch-completion time of
// batch j-slots, and the device stalls until then (paper §4.1: "the smart
// storage stalls and waits for the host-engine"). Both callbacks run
// synchronously; batches are emitted in production order. A non-nil error
// from emit aborts the run (the host rejected the batch); with d.Faults set,
// an injected crash aborts before the batch is emitted.
func (d *Device) Run(cmd *Command, pl *exec.Pipeline, eng *exec.Engine,
	emit func(Batch) error, waitSlot func(batchIdx int) (vclock.Time, bool)) error {

	slots := d.Model.SharedSlots
	produced := 0
	emitBatch := func(b Batch) error {
		if d.Faults != nil {
			ev := d.Faults.BeforeEmit()
			if ev.Stall > 0 {
				// Firmware hiccup: extra device latency before the slot is
				// produced, charged to the device timeline.
				d.TL.Charge(hw.CatFaultStall, ev.Stall)
			}
			if ev.Crash != nil {
				return fmt.Errorf("device: batch %d: %w", produced, ev.Crash)
			}
			b.Seal(ev.Corrupt)
		}
		if produced >= slots {
			if t, ok := waitSlot(produced - slots); ok {
				// All shared buffer slots are occupied: the device stalls
				// until the host has drained the oldest one. The span makes
				// the back-pressure visible as an explicit region on the
				// device track.
				ssp := d.Trace.Start(d.TL, "device.wait.slot").AttrInt("batch", int64(produced))
				stall := d.TL.WaitUntil(t, hw.CatWaitSlots)
				ssp.Attr("stall", stall.String()).End()
				d.Metrics.Counter("device.slot.stalls").Inc()
			}
		}
		b.Ready = d.TL.Now()
		d.Metrics.Counter("device.batches").Inc()
		if err := emit(b); err != nil {
			return err
		}
		produced++
		return nil
	}

	p := cmd.Plan
	devSteps := cmd.SplitAfter
	err := func() error {
		if devSteps < 0 {
			// H0: run every leaf selection on device. Inner tables ship as one
			// batch each; the driving table streams in chunks.
			for _, st := range p.Steps {
				lsp := d.Trace.Start(d.TL, "device.leaf.scan").Attr("alias", st.Right.Ref.Alias)
				cb, width, err := eng.ScanCols(st.Right, nil, nil)
				if err != nil {
					lsp.End()
					return err
				}
				lsp.AttrInt("rows", int64(cb.Len())).End()
				d.recordScan(int64(cb.Len()), int64(cb.Len())*width)
				if err := emitBatch(Batch{
					LeafAlias: st.Right.Ref.Alias,
					Cols:      cb,
					Bytes:     int64(cb.Len()) * width,
				}); err != nil {
					return err
				}
			}
			return d.streamDriving(cmd, pl, eng, 0, emitBatch)
		}

		// Hk: pre-build the inner sides of the device joins (hash tables are
		// built once and probed by every chunk), then stream driving chunks
		// through the device join pipeline.
		return d.streamDriving(cmd, pl, eng, devSteps, emitBatch)
	}()
	if err == nil && d.Metrics != nil && eng.Cache != nil {
		hits, misses, _ := eng.Cache.Stats()
		d.Metrics.Counter("device.cache.hits").Add(hits)
		d.Metrics.Counter("device.cache.misses").Add(misses)
		h := d.Metrics.Counter("device.cache.hits").Value()
		if n := h + d.Metrics.Counter("device.cache.misses").Value(); n > 0 {
			d.Metrics.Gauge("device.cache.hitrate").Set(float64(h) / float64(n))
		}
	}
	return err
}

// recordScan books device scan volume: rows and bytes read compaction-free
// from the frozen snapshot views (the NDP premise — this volume never crosses
// the interconnect).
func (d *Device) recordScan(rows, bytes int64) {
	d.Metrics.Counter("device.scan.rows").Add(rows)
	d.Metrics.Counter("device.scan.bytes").Add(bytes)
}

// streamDriving partitions the driving table into chunks by primary-key
// ranges and pushes each chunk through the first devSteps join steps.
func (d *Device) streamDriving(cmd *Command, pl *exec.Pipeline, eng *exec.Engine,
	devSteps int, emitBatch func(Batch) error) error {
	return d.streamDrivingRange(cmd, pl, eng, devSteps, nil, nil, emitBatch)
}

// RunPartition is Run restricted to a driving-table PK partition [lo, hi),
// used for multi-device cooperative execution: every device runs the same
// device-side PQEP over its share of the driving table. Shared-slot
// back-pressure is not applied — the caller merges batches from several
// producers and the host is the bottleneck. Under H0 only the first
// partition (lo == nil) carries the inner tables' leaf scans; in a real
// deployment each device would scan its own partition of every table.
func (d *Device) RunPartition(cmd *Command, pl *exec.Pipeline, eng *exec.Engine,
	lo, hi *int32, emit func(Batch)) error {

	// Fault injection targets the single-device cooperative path (Run); the
	// multi-device merge path keeps a void emit and no injection hooks.
	emitBatch := func(b Batch) error {
		b.Ready = d.TL.Now()
		emit(b)
		return nil
	}
	devSteps := cmd.SplitAfter
	if devSteps < 0 {
		if lo == nil {
			for _, st := range cmd.Plan.Steps {
				cb, width, err := eng.ScanCols(st.Right, nil, nil)
				if err != nil {
					return err
				}
				if err := emitBatch(Batch{
					LeafAlias: st.Right.Ref.Alias,
					Cols:      cb,
					Bytes:     int64(cb.Len()) * width,
				}); err != nil {
					return err
				}
			}
		}
		devSteps = 0
	}
	return d.streamDrivingRange(cmd, pl, eng, devSteps, lo, hi, emitBatch)
}

// RunShard streams the driving-table partition [lo, hi) through the first
// cmd.SplitAfter join steps (0 or -1 = scan-only: the shard ships filtered
// driving rows and every join stays on the host). Unlike RunPartition it
// carries no H0 leaf logic — fleet execution scans each inner table's
// partitions through ScanLeafPartition on the owning device — and emit may
// reject a batch with an error. Shared-slot back-pressure is not applied:
// the host merges batches from the whole fleet in partition order, so the
// host side is the bottleneck.
func (d *Device) RunShard(cmd *Command, pl *exec.Pipeline, eng *exec.Engine,
	lo, hi *int32, emit func(Batch) error) error {

	devSteps := cmd.SplitAfter
	if devSteps < 0 {
		devSteps = 0
	}
	produced := 0
	return d.streamDrivingRange(cmd, pl, eng, devSteps, lo, hi, func(b Batch) error {
		if d.Faults != nil {
			// Per-device fleet chaos: the shard's batches face the same
			// stall/crash/corrupt draws as the cooperative path (a crash
			// degrades the whole shard at the fleet layer instead of retrying).
			ev := d.Faults.BeforeEmit()
			if ev.Stall > 0 {
				d.TL.Charge(hw.CatFaultStall, ev.Stall)
			}
			if ev.Crash != nil {
				return fmt.Errorf("device: shard batch %d: %w", produced, ev.Crash)
			}
			b.Seal(ev.Corrupt)
		}
		produced++
		b.Ready = d.TL.Now()
		return emit(b)
	})
}

// ScanLeafPartition scans one inner table's partition [lo, hi) on this device
// (fleet H0: every device ships its share of every leaf selection) and
// returns it as a leaf batch stamped with the device completion time.
func (d *Device) ScanLeafPartition(ap exec.AccessPath, eng *exec.Engine, lo, hi *int32) (Batch, error) {
	lsp := d.Trace.Start(d.TL, "device.leaf.scan").Attr("alias", ap.Ref.Alias)
	cb, width, err := eng.ScanCols(ap, lo, hi)
	if err != nil {
		lsp.End()
		return Batch{}, err
	}
	lsp.AttrInt("rows", int64(cb.Len())).End()
	d.recordScan(int64(cb.Len()), int64(cb.Len())*width)
	b := Batch{
		LeafAlias: ap.Ref.Alias,
		Cols:      cb,
		Bytes:     int64(cb.Len()) * width,
	}
	if d.Faults != nil {
		ev := d.Faults.BeforeEmit()
		if ev.Stall > 0 {
			d.TL.Charge(hw.CatFaultStall, ev.Stall)
		}
		if ev.Crash != nil {
			return Batch{}, fmt.Errorf("device: leaf scan %s: %w", ap.Ref.Alias, ev.Crash)
		}
		b.Seal(ev.Corrupt)
	}
	b.Ready = d.TL.Now()
	return b, nil
}

// streamDrivingRange is streamDriving clipped to [loPart, hiPart).
func (d *Device) streamDrivingRange(cmd *Command, pl *exec.Pipeline, eng *exec.Engine,
	devSteps int, loPart, hiPart *int32, emitBatch func(Batch) error) error {

	p := cmd.Plan
	bounds, err := d.chunkBounds(p.Driving.Ref.Table, cmd.Chunks)
	if err != nil {
		return err
	}
	bounds = clipBounds(bounds, loPart, hiPart)
	width := pl.TupleWidth(devSteps + 1)
	slot := d.Model.SharedBufferSlot
	var acc []exec.Tuple
	var accBytes int64
	flush := func(last bool) error {
		if len(acc) == 0 && !last {
			// An empty intermediate result set occupies no buffer slot and
			// is not transferred.
			return nil
		}
		err := emitBatch(Batch{Tuples: acc, Bytes: accBytes, Last: last})
		acc = nil
		accBytes = 0
		return err
	}
	// The chunk's rows stream through the device joins in bounded pieces
	// (the volcano pipeline over per-operation caches of paper Fig. 8): each
	// operation hands over once its cache holds a piece, so result sets fill
	// shared-buffer slots incrementally with honest per-piece timestamps.
	const pieceRows = 256
	var runFrom func(si int, tuples []exec.Tuple) error
	runFrom = func(si int, tuples []exec.Tuple) error {
		if len(tuples) == 0 {
			return nil
		}
		if si >= devSteps {
			acc = append(acc, tuples...)
			accBytes += int64(len(tuples)) * width
			if accBytes >= slot {
				return flush(false)
			}
			return nil
		}
		for off := 0; off < len(tuples); off += pieceRows {
			end := off + pieceRows
			if end > len(tuples) {
				end = len(tuples)
			}
			out, err := eng.JoinStep(pl, si, tuples[off:end])
			if err != nil {
				return err
			}
			if err := runFrom(si+1, out); err != nil {
				return err
			}
		}
		return nil
	}
	for ci := 0; ci+1 < len(bounds); ci++ {
		lo, hi := bounds[ci], bounds[ci+1]
		csp := d.Trace.Start(d.TL, "device.chunk").AttrInt("chunk", int64(ci))
		rows, rowWidth, err := eng.ScanAccess(p.Driving, lo, hi)
		if err != nil {
			csp.End()
			return err
		}
		d.recordScan(int64(len(rows)), int64(len(rows))*rowWidth)
		csp.AttrInt("rows", int64(len(rows)))
		group := len(rows)/8 + 1
		if group > pieceRows {
			group = pieceRows
		}
		for off := 0; off < len(rows); off += group {
			end := off + group
			if end > len(rows) {
				end = len(rows)
			}
			tuples := pl.MakeTuples(rows[off:end])
			if err := runFrom(0, tuples); err != nil {
				csp.End()
				return err
			}
		}
		csp.End()
	}
	return flush(true)
}

// chunkBounds derives n chunk boundaries from the primary-key quantiles of
// the table's statistics sample. The first and last bounds are open.
func (d *Device) chunkBounds(tableName string, n int) ([]*int32, error) {
	if n < 1 {
		n = 1
	}
	t, err := d.Cat.Table(tableName)
	if err != nil {
		return nil, err
	}
	st := t.CollectStats()
	bounds := make([]*int32, 0, n+1)
	bounds = append(bounds, nil)
	if len(st.Sample) >= 2 && n > 1 {
		pks := make([]int32, 0, len(st.Sample))
		for _, r := range st.Sample {
			pks = append(pks, r.PK())
		}
		sortInt32(pks)
		for i := 1; i < n; i++ {
			q := pks[i*len(pks)/n]
			// Boundaries must be strictly increasing.
			if last := bounds[len(bounds)-1]; last == nil || q > *last {
				v := q
				bounds = append(bounds, &v)
			}
		}
	}
	bounds = append(bounds, nil)
	return bounds, nil
}

// clipBounds restricts chunk boundaries to the partition [lo, hi).
func clipBounds(bounds []*int32, lo, hi *int32) []*int32 {
	out := []*int32{lo}
	for _, b := range bounds[1 : len(bounds)-1] {
		if b == nil {
			continue
		}
		if lo != nil && *b <= *lo {
			continue
		}
		if hi != nil && *b >= *hi {
			continue
		}
		out = append(out, b)
	}
	return append(out, hi)
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Validate checks that the command can run on the device at all.
func (d *Device) Validate(cmd *Command) error {
	mp := PlanMemory(d.Model, cmd.Plan, cmd.SplitAfter)
	if !mp.Fits() {
		return fmt.Errorf("%w: NDP memory plan (%d MB for %d selections, %d secondary, %d joins) exceeds budget (%d MB)",
			ErrMemoryBudget, mp.TotalBytes>>20, mp.Selections, mp.SecondaryIdx, mp.Joins, mp.BudgetBytes>>20)
	}
	if cmd.SplitAfter > len(cmd.Plan.Steps) {
		return fmt.Errorf("%w: split after %d exceeds %d join steps", ErrBadSplit, cmd.SplitAfter, len(cmd.Plan.Steps))
	}
	return nil
}

// ResultWidthCols reports a human label for batches (debugging aid).
func ResultWidthCols(p *exec.Plan, devSteps int) []string {
	aliases := p.Aliases()
	if devSteps < 0 {
		return aliases[:1]
	}
	return aliases[:devSteps+1]
}
