// Package query defines the logical query model of the reproduction: the
// select-project-join-aggregate shape of the Join-Order Benchmark, which the
// optimizer turns into a split physical plan and the engines execute.
package query

import (
	"fmt"
	"sort"
	"strings"

	"hybridndp/internal/expr"
	"hybridndp/internal/table"
)

// TableRef names a base table with its alias.
type TableRef struct {
	Alias string
	Table string
}

func (r TableRef) String() string { return r.Table + " AS " + r.Alias }

// JoinCond is an equality join condition between two aliased columns.
type JoinCond struct {
	LeftAlias, LeftCol   string
	RightAlias, RightCol string
}

func (c JoinCond) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", c.LeftAlias, c.LeftCol, c.RightAlias, c.RightCol)
}

// Touches reports whether the condition references alias.
func (c JoinCond) Touches(alias string) bool {
	return c.LeftAlias == alias || c.RightAlias == alias
}

// Other returns the alias on the opposite side, or "".
func (c JoinCond) Other(alias string) string {
	switch alias {
	case c.LeftAlias:
		return c.RightAlias
	case c.RightAlias:
		return c.LeftAlias
	}
	return ""
}

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions supported in-situ by nKV (paper §2.1).
const (
	Min AggFunc = iota
	Max
	Sum
	Avg
	Count
)

func (f AggFunc) String() string {
	switch f {
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Count:
		return "COUNT"
	}
	return "AGG"
}

// ColRef is an aliased column reference.
type ColRef struct {
	Alias string
	Col   string
}

func (c ColRef) String() string { return c.Alias + "." + c.Col }

// Aggregate is one aggregate output.
type Aggregate struct {
	Func AggFunc
	Arg  ColRef // ignored for COUNT(*)
	Star bool
	As   string
}

func (a Aggregate) String() string {
	if a.Star {
		return a.Func.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}

// Query is one logical query.
type Query struct {
	Name       string
	Tables     []TableRef
	Filters    map[string]expr.Pred // alias → local predicate
	Joins      []JoinCond
	Output     []ColRef // plain projected columns
	Aggregates []Aggregate
	GroupBy    []ColRef
}

// Validate checks referential consistency against a catalog.
func (q *Query) Validate(cat *table.Catalog) error {
	if len(q.Tables) == 0 {
		return fmt.Errorf("query %s: no tables", q.Name)
	}
	aliases := map[string]*table.Schema{}
	for _, t := range q.Tables {
		if _, dup := aliases[t.Alias]; dup {
			return fmt.Errorf("query %s: duplicate alias %q", q.Name, t.Alias)
		}
		tbl, err := cat.Table(t.Table)
		if err != nil {
			return fmt.Errorf("query %s: %v", q.Name, err)
		}
		aliases[t.Alias] = tbl.Schema
	}
	checkCol := func(c ColRef) error {
		s, ok := aliases[c.Alias]
		if !ok {
			return fmt.Errorf("query %s: unknown alias %q", q.Name, c.Alias)
		}
		if s.ColumnIndex(c.Col) < 0 {
			return fmt.Errorf("query %s: table %s has no column %q", q.Name, s.Name, c.Col)
		}
		return nil
	}
	for alias, p := range q.Filters {
		s, ok := aliases[alias]
		if !ok {
			return fmt.Errorf("query %s: filter on unknown alias %q", q.Name, alias)
		}
		for _, col := range p.Columns() {
			if s.ColumnIndex(col) < 0 {
				return fmt.Errorf("query %s: filter references %s.%s which does not exist", q.Name, alias, col)
			}
		}
	}
	for _, j := range q.Joins {
		if err := checkCol(ColRef{j.LeftAlias, j.LeftCol}); err != nil {
			return err
		}
		if err := checkCol(ColRef{j.RightAlias, j.RightCol}); err != nil {
			return err
		}
	}
	for _, c := range q.Output {
		if err := checkCol(c); err != nil {
			return err
		}
	}
	for _, a := range q.Aggregates {
		if !a.Star {
			if err := checkCol(a.Arg); err != nil {
				return err
			}
		}
	}
	for _, c := range q.GroupBy {
		if err := checkCol(c); err != nil {
			return err
		}
	}
	// Connectivity: every table must be reachable through join conditions.
	if len(q.Tables) > 1 {
		reach := map[string]bool{q.Tables[0].Alias: true}
		for changed := true; changed; {
			changed = false
			for _, j := range q.Joins {
				l, r := reach[j.LeftAlias], reach[j.RightAlias]
				if l != r {
					reach[j.LeftAlias], reach[j.RightAlias] = true, true
					changed = true
				}
			}
		}
		for _, t := range q.Tables {
			if !reach[t.Alias] {
				return fmt.Errorf("query %s: table %s is not connected by any join condition", q.Name, t.Alias)
			}
		}
	}
	return nil
}

// ProjectedColumns reports, per alias, the set of columns needed above the
// scan: output columns, aggregate arguments, group-by keys and join columns.
// This drives early projection (a size-reducing NDP staple).
func (q *Query) ProjectedColumns() map[string][]string {
	need := map[string]map[string]bool{}
	add := func(alias, col string) {
		if need[alias] == nil {
			need[alias] = map[string]bool{}
		}
		need[alias][col] = true
	}
	for _, c := range q.Output {
		add(c.Alias, c.Col)
	}
	for _, a := range q.Aggregates {
		if !a.Star {
			add(a.Arg.Alias, a.Arg.Col)
		}
	}
	for _, c := range q.GroupBy {
		add(c.Alias, c.Col)
	}
	for _, j := range q.Joins {
		add(j.LeftAlias, j.LeftCol)
		add(j.RightAlias, j.RightCol)
	}
	out := map[string][]string{}
	for alias, set := range need {
		cols := make([]string, 0, len(set))
		for c := range set {
			cols = append(cols, c)
		}
		// Stable order for deterministic plans.
		sort.Strings(cols)
		out[alias] = cols
	}
	return out
}

// SQL renders an approximate SQL text of the query for display.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	var sel []string
	for _, a := range q.Aggregates {
		sel = append(sel, a.String())
	}
	for _, c := range q.Output {
		sel = append(sel, c.String())
	}
	if len(sel) == 0 {
		sel = []string{"*"}
	}
	b.WriteString(strings.Join(sel, ", "))
	b.WriteString("\nFROM ")
	var tabs []string
	for _, t := range q.Tables {
		tabs = append(tabs, t.String())
	}
	b.WriteString(strings.Join(tabs, ", "))
	var conds []string
	for _, t := range q.Tables {
		if p, ok := q.Filters[t.Alias]; ok {
			// Filter predicates render bare column names; mark the owning
			// alias so the display stays unambiguous across tables.
			conds = append(conds, fmt.Sprintf("/* %s */ %s", t.Alias, p.String()))
		}
	}
	for _, j := range q.Joins {
		conds = append(conds, j.String())
	}
	if len(conds) > 0 {
		b.WriteString("\nWHERE ")
		b.WriteString(strings.Join(conds, "\n  AND "))
	}
	if len(q.GroupBy) > 0 {
		var g []string
		for _, c := range q.GroupBy {
			g = append(g, c.String())
		}
		b.WriteString("\nGROUP BY ")
		b.WriteString(strings.Join(g, ", "))
	}
	b.WriteString(";")
	return b.String()
}
