package query

import (
	"strings"
	"testing"

	"hybridndp/internal/expr"
	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
	"hybridndp/internal/kv"
	"hybridndp/internal/lsm"
	"hybridndp/internal/table"
)

func testCatalog(t *testing.T) *table.Catalog {
	t.Helper()
	fl := flash.New(hw.Cosmos(), 0)
	db := kv.Open(fl, hw.Cosmos(), lsm.DefaultConfig())
	cat := table.NewCatalog(db)
	a := table.MustSchema("ta", []table.Column{
		{Name: "id", Type: table.Int32, Size: 4},
		{Name: "x", Type: table.Int32, Size: 4, Nullable: true},
	}, "id")
	b := table.MustSchema("tb", []table.Column{
		{Name: "id", Type: table.Int32, Size: 4},
		{Name: "a_id", Type: table.Int32, Size: 4},
		{Name: "note", Type: table.Char, Size: 8, Nullable: true},
	}, "id")
	if _, err := cat.CreateTable(a); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable(b); err != nil {
		t.Fatal(err)
	}
	return cat
}

func validQuery() *Query {
	return &Query{
		Name:   "q",
		Tables: []TableRef{{Alias: "a", Table: "ta"}, {Alias: "b", Table: "tb"}},
		Filters: map[string]expr.Pred{
			"b": expr.IsNull{Col: "note"},
		},
		Joins:      []JoinCond{{LeftAlias: "a", LeftCol: "id", RightAlias: "b", RightCol: "a_id"}},
		Aggregates: []Aggregate{{Func: Min, Arg: ColRef{Alias: "a", Col: "x"}}},
	}
}

func TestValidateAccepts(t *testing.T) {
	cat := testCatalog(t)
	if err := validQuery().Validate(cat); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		name string
		mut  func(*Query)
	}{
		{"no tables", func(q *Query) { q.Tables = nil }},
		{"dup alias", func(q *Query) { q.Tables = append(q.Tables, TableRef{Alias: "a", Table: "tb"}) }},
		{"unknown table", func(q *Query) { q.Tables[0].Table = "ghost" }},
		{"filter on unknown alias", func(q *Query) { q.Filters["z"] = expr.IsNull{Col: "note"} }},
		{"filter on unknown column", func(q *Query) { q.Filters["a"] = expr.IsNull{Col: "ghost"} }},
		{"join unknown alias", func(q *Query) { q.Joins[0].LeftAlias = "z" }},
		{"join unknown column", func(q *Query) { q.Joins[0].RightCol = "ghost" }},
		{"agg unknown column", func(q *Query) { q.Aggregates[0].Arg.Col = "ghost" }},
		{"output unknown column", func(q *Query) { q.Output = []ColRef{{Alias: "a", Col: "ghost"}} }},
		{"group unknown column", func(q *Query) { q.GroupBy = []ColRef{{Alias: "b", Col: "ghost"}} }},
		{"disconnected", func(q *Query) { q.Joins = nil }},
	}
	for _, c := range cases {
		q := validQuery()
		c.mut(q)
		if err := q.Validate(cat); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestConnectivityIsTransitive(t *testing.T) {
	cat := testCatalog(t)
	q := validQuery()
	// A third reference of ta connected through b only.
	q.Tables = append(q.Tables, TableRef{Alias: "a2", Table: "ta"})
	q.Joins = append(q.Joins, JoinCond{LeftAlias: "b", LeftCol: "a_id", RightAlias: "a2", RightCol: "id"})
	if err := q.Validate(cat); err != nil {
		t.Fatalf("transitively connected query rejected: %v", err)
	}
}

func TestProjectedColumns(t *testing.T) {
	q := validQuery()
	q.Output = []ColRef{{Alias: "b", Col: "note"}}
	q.GroupBy = []ColRef{{Alias: "b", Col: "note"}}
	proj := q.ProjectedColumns()
	// a: x (aggregate) + id (join); b: a_id (join) + note (output/group).
	if got := strings.Join(proj["a"], ","); got != "id,x" {
		t.Fatalf("proj[a] = %q", got)
	}
	if got := strings.Join(proj["b"], ","); got != "a_id,note" {
		t.Fatalf("proj[b] = %q", got)
	}
}

func TestJoinCondHelpers(t *testing.T) {
	j := JoinCond{LeftAlias: "a", LeftCol: "id", RightAlias: "b", RightCol: "a_id"}
	if !j.Touches("a") || !j.Touches("b") || j.Touches("c") {
		t.Fatal("Touches broken")
	}
	if j.Other("a") != "b" || j.Other("b") != "a" || j.Other("c") != "" {
		t.Fatal("Other broken")
	}
	if j.String() != "a.id = b.a_id" {
		t.Fatalf("String = %q", j.String())
	}
}

func TestSQLRendering(t *testing.T) {
	q := validQuery()
	sql := q.SQL()
	for _, frag := range []string{"SELECT MIN(a.x)", "FROM ta AS a, tb AS b", "note IS NULL", "a.id = b.a_id", ";"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("SQL %q missing %q", sql, frag)
		}
	}
	// Aggregate-free, output-free query renders SELECT *.
	q2 := &Query{Name: "s", Tables: []TableRef{{Alias: "a", Table: "ta"}}, Filters: map[string]expr.Pred{}}
	if !strings.Contains(q2.SQL(), "SELECT *") {
		t.Fatal("SELECT * missing")
	}
}

func TestAggregateRendering(t *testing.T) {
	if (Aggregate{Func: Count, Star: true}).String() != "COUNT(*)" {
		t.Fatal("COUNT(*) rendering")
	}
	a := Aggregate{Func: Max, Arg: ColRef{Alias: "t", Col: "c"}}
	if a.String() != "MAX(t.c)" {
		t.Fatalf("got %q", a.String())
	}
	for _, f := range []AggFunc{Min, Max, Sum, Avg, Count} {
		if f.String() == "AGG" {
			t.Fatal("unnamed aggregate function")
		}
	}
}
