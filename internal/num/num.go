// Package num collects the small integer helpers that previously lived as
// per-package copies (exec, coop, fleet, table each carried a maxI64). One
// definition keeps the semantics — and any future overflow handling — in one
// place.
package num

// MaxI64 returns the larger of a and b.
func MaxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MinI64 returns the smaller of a and b.
func MinI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ClampInt converts an int64 count to int, saturating at the platform's
// maximum int instead of wrapping (charge counts derived from row-pair
// products can exceed 32-bit ranges).
func ClampInt(v int64) int {
	const maxInt = int(^uint(0) >> 1)
	if v > int64(maxInt) {
		return maxInt
	}
	return int(v)
}
