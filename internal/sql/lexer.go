// Package sql implements a small SQL front end for the query model: the
// SELECT-PROJECT-JOIN-AGGREGATE dialect the Join-Order Benchmark uses
// (SELECT MIN(...)/columns FROM t AS a, ... WHERE <conjunction> GROUP BY ...),
// which is exactly the shape nKV's MySQL layer hands to hybridNDP. Parsed
// statements compile to query.Query values ready for the optimizer.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , ; . = < > <= >= <> !=
	tokKeyword
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "LIKE": true, "IN": true, "BETWEEN": true, "IS": true,
	"NULL": true, "AS": true, "GROUP": true, "BY": true, "MIN": true,
	"MAX": true, "SUM": true, "AVG": true, "COUNT": true,
}

type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers as written
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens. SQL strings use single quotes with ”
// escaping; identifiers are bare words; keywords are case-insensitive.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(input) {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
				}
				if input[i] == '\'' {
					if i+1 < len(input) && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			out = append(out, token{tokString, sb.String(), start})
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			i++
			for i < len(input) && input[i] >= '0' && input[i] <= '9' {
				i++
			}
			out = append(out, token{tokNumber, input[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < len(input) && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				out = append(out, token{tokKeyword, up, start})
			} else {
				out = append(out, token{tokIdent, word, start})
			}
		case c == '<' || c == '>' || c == '!':
			start := i
			i++
			if i < len(input) && (input[i] == '=' || c == '<' && input[i] == '>') {
				i++
			}
			out = append(out, token{tokSymbol, input[start:i], start})
		case strings.ContainsRune("(),;.=*", rune(c)):
			out = append(out, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: len(input)})
	return out, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
