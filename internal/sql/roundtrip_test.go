package sql

import (
	"reflect"
	"testing"

	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/optimizer"
)

// TestRenderRoundTripJOB proves the serving layer's SQL-in contract: every
// JOB query rendered to SQL and parsed back is structurally identical to the
// hand-built definition, and compiles to a byte-identical physical plan.
func TestRenderRoundTripJOB(t *testing.T) {
	dsOnce.Do(func() { ds, dsErr = job.Load(0.004, hw.Cosmos()) })
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	opt := optimizer.New(ds.Cat, hw.Cosmos())
	queries := job.Queries()
	if len(queries) != 113 {
		t.Fatalf("JOB query count = %d, want 113", len(queries))
	}
	for _, orig := range queries {
		text, err := Render(orig)
		if err != nil {
			t.Fatalf("%s: Render: %v", orig.Name, err)
		}
		parsed, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: Parse(%q): %v", orig.Name, text, err)
		}
		// Parse names every statement "adhoc"; the name carries no plan
		// structure, so align it before the structural comparison.
		parsed.Name = orig.Name
		if !reflect.DeepEqual(parsed, orig) {
			t.Fatalf("%s: round-trip mismatch\nsql:    %s\nparsed: %+v\norig:   %+v", orig.Name, text, parsed, orig)
		}
		if err := parsed.Validate(ds.Cat); err != nil {
			t.Fatalf("%s: parsed query invalid: %v", orig.Name, err)
		}
		origPlan, err := opt.BuildPlan(orig)
		if err != nil {
			t.Fatalf("%s: BuildPlan(orig): %v", orig.Name, err)
		}
		gotPlan, err := opt.BuildPlan(parsed)
		if err != nil {
			t.Fatalf("%s: BuildPlan(parsed): %v", orig.Name, err)
		}
		if gotPlan.String() != origPlan.String() {
			t.Fatalf("%s: plan mismatch\nsql: %s\ngot:\n%s\nwant:\n%s", orig.Name, text, gotPlan, origPlan)
		}
	}
}

// TestNormalizeCanonical proves Normalize is idempotent and collapses
// formatting differences — the property the plan-cache key relies on.
func TestNormalizeCanonical(t *testing.T) {
	a := `select   min(t.title)  from title as t
	       where t.production_year > 1990;`
	b := `SELECT MIN(t.title) FROM title AS t WHERE t.production_year > 1990`
	na, err := Normalize(a)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Normalize(b)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb {
		t.Fatalf("normal forms differ:\n%s\n%s", na, nb)
	}
	again, err := Normalize(na)
	if err != nil {
		t.Fatal(err)
	}
	if again != na {
		t.Fatalf("Normalize not idempotent:\n%s\n%s", na, again)
	}
}

// TestParseNestedBooleans covers the grammar the JOB round trip depends on:
// AND groups inside parens, OR over AND, and deep nesting, all preserving
// structure.
func TestParseNestedBooleans(t *testing.T) {
	q := mustParse(t, `SELECT * FROM tab AS a WHERE
		(a.x = 1 AND (a.y = 2 OR a.z = 3 AND a.w = 4) OR a.v = 5)`)
	f := q.Filters["a"]
	got := f.String()
	// Shape: Or{ And{x=1, Or{y=2, And{z=3, w=4}}}, v=5 }.
	want := "(x = 1 AND (y = 2 OR z = 3 AND w = 4) OR v = 5)"
	if got != want {
		t.Fatalf("nested boolean parse = %s, want %s", got, want)
	}
	// Mixed-alias groups must still fail.
	for _, bad := range []string{
		"SELECT * FROM t AS a, u AS b WHERE (a.x = 1 AND b.y = 2) AND a.z = b.w",
		"SELECT * FROM t AS a, u AS b WHERE ((a.x = 1) OR (b.y = 2)) AND a.z = b.w",
		"SELECT * FROM t AS a WHERE (a.x = 1 AND (a.y = 2)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
