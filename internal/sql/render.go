package sql

import (
	"fmt"
	"strconv"
	"strings"

	"hybridndp/internal/expr"
	"hybridndp/internal/query"
	"hybridndp/internal/table"
)

// Render emits SQL text for q that Parse compiles back to a structurally
// identical query.Query (same predicate nesting, same join and projection
// order). This is the inverse the serving layer relies on: sessions ship SQL
// over the wire, and the plan cache keys on the canonical text, so the
// rendered form must preserve every bit of structure the optimizer sees.
// Unlike query.SQL (display-only), Render fails loudly on anything that
// cannot round-trip: NULL comparison literals, expr.Not, aggregates without
// an explicit alias, or identifiers that collide with keywords.
//
// Shape contract with the parser:
//   - every column is alias-qualified, since predicates store bare columns;
//   - each alias contributes exactly one top-level WHERE conjunct — atoms go
//     bare, And/Or trees go inside one parenthesized group — because the
//     parser merges repeated same-alias conjuncts pairwise (attachFilter)
//     which would re-associate a flat And;
//   - filters render in q.Tables order, then joins in q.Joins order.
func Render(q *query.Query) (string, error) {
	var b strings.Builder
	b.WriteString("SELECT ")
	var sel []string
	for _, a := range q.Aggregates {
		s, err := renderAgg(a)
		if err != nil {
			return "", err
		}
		sel = append(sel, s)
	}
	for _, c := range q.Output {
		s, err := renderColRef(c)
		if err != nil {
			return "", err
		}
		sel = append(sel, s)
	}
	if len(sel) == 0 {
		sel = []string{"*"}
	}
	b.WriteString(strings.Join(sel, ", "))

	b.WriteString(" FROM ")
	tabs := make([]string, len(q.Tables))
	for i, t := range q.Tables {
		if err := checkIdent(t.Table); err != nil {
			return "", err
		}
		if err := checkIdent(t.Alias); err != nil {
			return "", err
		}
		tabs[i] = t.Table + " AS " + t.Alias
	}
	b.WriteString(strings.Join(tabs, ", "))

	var conds []string
	filtered := 0
	for _, t := range q.Tables {
		p, ok := q.Filters[t.Alias]
		if !ok {
			continue
		}
		filtered++
		s, err := renderFilter(t.Alias, p)
		if err != nil {
			return "", err
		}
		conds = append(conds, s)
	}
	if filtered != len(q.Filters) {
		return "", fmt.Errorf("sql: query %s has filters on aliases missing from FROM", q.Name)
	}
	for _, j := range q.Joins {
		for _, id := range []string{j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol} {
			if err := checkIdent(id); err != nil {
				return "", err
			}
		}
		conds = append(conds, fmt.Sprintf("%s.%s = %s.%s", j.LeftAlias, j.LeftCol, j.RightAlias, j.RightCol))
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}

	if len(q.GroupBy) > 0 {
		g := make([]string, len(q.GroupBy))
		for i, c := range q.GroupBy {
			s, err := renderColRef(c)
			if err != nil {
				return "", err
			}
			g[i] = s
		}
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(g, ", "))
	}
	b.WriteString(";")
	return b.String(), nil
}

// Normalize parses input and re-renders it in canonical form: one line,
// canonical keyword case and spacing, explicit AS everywhere. Two statements
// that compile to the same query normalize to the same bytes, which is what
// the serving plan cache keys on.
func Normalize(input string) (string, error) {
	q, err := Parse(input)
	if err != nil {
		return "", err
	}
	return Render(q)
}

func renderAgg(a query.Aggregate) (string, error) {
	if a.As == "" {
		return "", fmt.Errorf("sql: aggregate %s needs an explicit alias to round-trip", a)
	}
	// The parser names an unaliased aggregate after its function; rendering
	// that default back as `AS min` would collide with the keyword, so omit
	// the clause and let the parser re-derive it.
	defaultAs := a.As == strings.ToLower(a.Func.String())
	if !defaultAs {
		if err := checkIdent(a.As); err != nil {
			return "", err
		}
	}
	var arg string
	if a.Star {
		if a.Func != query.Count {
			return "", fmt.Errorf("sql: %s(*) is only valid for COUNT", a.Func)
		}
		arg = "*"
	} else {
		s, err := renderColRef(a.Arg)
		if err != nil {
			return "", err
		}
		arg = s
	}
	if defaultAs {
		return fmt.Sprintf("%s(%s)", a.Func, arg), nil
	}
	return fmt.Sprintf("%s(%s) AS %s", a.Func, arg, a.As), nil
}

func renderColRef(c query.ColRef) (string, error) {
	if err := checkIdent(c.Alias); err != nil {
		return "", err
	}
	if err := checkIdent(c.Col); err != nil {
		return "", err
	}
	return c.Alias + "." + c.Col, nil
}

// renderFilter emits one alias's predicate as a single top-level conjunct.
func renderFilter(alias string, p expr.Pred) (string, error) {
	switch p.(type) {
	case expr.And, expr.Or:
		inner, err := renderBool(alias, p)
		if err != nil {
			return "", err
		}
		return "(" + inner + ")", nil
	default:
		return renderAtom(alias, p)
	}
}

// renderBool renders an And/Or node without its own parentheses (the caller
// supplies them); nested combinators are parenthesized so the parser rebuilds
// the exact tree.
func renderBool(alias string, p expr.Pred) (string, error) {
	var preds []expr.Pred
	var sep string
	switch t := p.(type) {
	case expr.And:
		preds, sep = t.Preds, " AND "
	case expr.Or:
		preds, sep = t.Preds, " OR "
	default:
		return renderAtom(alias, p)
	}
	if len(preds) < 2 {
		return "", fmt.Errorf("sql: boolean combinator with %d operand(s) cannot round-trip", len(preds))
	}
	parts := make([]string, len(preds))
	for i, sub := range preds {
		var err error
		switch sub.(type) {
		case expr.And, expr.Or:
			inner, e := renderBool(alias, sub)
			if e != nil {
				return "", e
			}
			parts[i] = "(" + inner + ")"
		default:
			parts[i], err = renderAtom(alias, sub)
			if err != nil {
				return "", err
			}
		}
	}
	return strings.Join(parts, sep), nil
}

func renderAtom(alias string, p expr.Pred) (string, error) {
	col := func(c string) (string, error) {
		if err := checkIdent(alias); err != nil {
			return "", err
		}
		if err := checkIdent(c); err != nil {
			return "", err
		}
		return alias + "." + c, nil
	}
	switch t := p.(type) {
	case expr.Cmp:
		c, err := col(t.Col)
		if err != nil {
			return "", err
		}
		v, err := renderValue(t.Val)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s %s %s", c, t.Op, v), nil
	case expr.Between:
		c, err := col(t.Col)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s BETWEEN %d AND %d", c, t.Lo, t.Hi), nil
	case expr.In:
		c, err := col(t.Col)
		if err != nil {
			return "", err
		}
		if len(t.Vals) == 0 {
			return "", fmt.Errorf("sql: empty IN list on %s cannot round-trip", c)
		}
		vals := make([]string, len(t.Vals))
		for i, v := range t.Vals {
			s, err := renderValue(v)
			if err != nil {
				return "", err
			}
			vals[i] = s
		}
		return fmt.Sprintf("%s IN (%s)", c, strings.Join(vals, ", ")), nil
	case expr.Like:
		c, err := col(t.Col)
		if err != nil {
			return "", err
		}
		op := "LIKE"
		if t.Not {
			op = "NOT LIKE"
		}
		return fmt.Sprintf("%s %s %s", c, op, quoteStr(t.Pattern)), nil
	case expr.IsNull:
		c, err := col(t.Col)
		if err != nil {
			return "", err
		}
		if t.Not {
			return c + " IS NOT NULL", nil
		}
		return c + " IS NULL", nil
	default:
		return "", fmt.Errorf("sql: cannot render %T predicates", p)
	}
}

func renderValue(v table.Value) (string, error) {
	if v.Null {
		return "", fmt.Errorf("sql: NULL comparison literals cannot round-trip; use IS NULL")
	}
	if v.IsI {
		return strconv.FormatInt(int64(v.Int), 10), nil
	}
	return quoteStr(v.Str), nil
}

func quoteStr(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// checkIdent rejects names the lexer would not hand back as a single
// identifier token (keyword collisions, empty names, punctuation).
func checkIdent(s string) error {
	if s == "" {
		return fmt.Errorf("sql: empty identifier cannot round-trip")
	}
	if keywords[strings.ToUpper(s)] {
		return fmt.Errorf("sql: identifier %q collides with a keyword", s)
	}
	for i, r := range s {
		if i == 0 && !isIdentStart(r) || i > 0 && !isIdentPart(r) {
			return fmt.Errorf("sql: identifier %q is not lexable", s)
		}
	}
	return nil
}
