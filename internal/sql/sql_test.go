package sql

import (
	"strings"
	"sync"
	"testing"

	"hybridndp/internal/expr"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/query"
)

func mustParse(t *testing.T, s string) *query.Query {
	t.Helper()
	q, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return q
}

func TestParseListing1(t *testing.T) {
	// Paper Listing 1 (JOB Q1.a), verbatim shape.
	q := mustParse(t, `
SELECT MIN(mc.note), MIN(t.title), MIN(t.production_year)
FROM company_type AS ct, info_type AS it,
     movie_info_idx AS mi_idx, title AS t,
     movie_companies AS mc
WHERE ct.kind = 'production companies'
AND it.info = 'top_250_rank'
AND mc.note NOT LIKE '%(as Metro-Goldwyn-Mayer Pictures)%'
AND (mc.note LIKE '%(co-production)%' OR mc.note LIKE '%(presents)%')
AND ct.id = mc.company_type_id
AND t.id = mc.movie_id
AND t.id = mi_idx.movie_id
AND mc.movie_id = mi_idx.movie_id
AND it.id = mi_idx.info_type_id;`)
	if len(q.Tables) != 5 {
		t.Fatalf("tables = %d", len(q.Tables))
	}
	if len(q.Joins) != 5 {
		t.Fatalf("joins = %d", len(q.Joins))
	}
	if len(q.Aggregates) != 3 || q.Aggregates[0].Func != query.Min {
		t.Fatalf("aggregates = %v", q.Aggregates)
	}
	// mc's filter is NOT LIKE AND (LIKE OR LIKE).
	mcf, ok := q.Filters["mc"]
	if !ok {
		t.Fatal("mc filter missing")
	}
	if !strings.Contains(mcf.String(), "OR") {
		t.Fatalf("mc filter lost the OR group: %s", mcf)
	}
	if _, ok := q.Filters["ct"]; !ok {
		t.Fatal("ct filter missing")
	}
}

func TestParseListing2(t *testing.T) {
	// Paper Listing 2.
	q := mustParse(t, `
SELECT * FROM movie_keyword AS movie_keyword, movie_link AS movie_link
WHERE movie_link.id <= 10000 AND
      movie_keyword.movie_id = movie_link.movie_id;`)
	if len(q.Output) != 0 || len(q.Aggregates) != 0 {
		t.Fatal("SELECT * must have no explicit outputs")
	}
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %d", len(q.Joins))
	}
	f := q.Filters["movie_link"]
	cmp, ok := f.(expr.Cmp)
	if !ok || cmp.Op != expr.Le || cmp.Val.Int != 10000 {
		t.Fatalf("filter = %v", f)
	}
}

func TestParseFeatures(t *testing.T) {
	q := mustParse(t, `
SELECT COUNT(*) AS n, c.region, SUM(o.amount) AS total
FROM customers AS c, orders AS o
WHERE o.customer_id = c.id
  AND c.region IN ('north', 'south')
  AND o.amount BETWEEN 10 AND 500
  AND o.note IS NOT NULL
  AND o.flags <> 3
GROUP BY c.region`)
	if len(q.Aggregates) != 2 {
		t.Fatalf("aggregates = %v", q.Aggregates)
	}
	if q.Aggregates[0].As != "n" || !q.Aggregates[0].Star {
		t.Fatalf("COUNT(*) AS n parsed as %+v", q.Aggregates[0])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Col != "region" {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	of := q.Filters["o"].String()
	for _, frag := range []string{"BETWEEN 10 AND 500", "IS NOT NULL", "<> 3"} {
		if !strings.Contains(of, frag) {
			t.Fatalf("o filter %q missing %q", of, frag)
		}
	}
	cf := q.Filters["c"]
	if _, ok := cf.(expr.In); !ok {
		t.Fatalf("c filter = %T", cf)
	}
}

func TestParseNegativeNumbersAndEscapes(t *testing.T) {
	q := mustParse(t, `SELECT MIN(t.x) FROM tab AS t WHERE t.x > -5 AND t.s = 'it''s'`)
	f := q.Filters["t"].String()
	if !strings.Contains(f, "-5") || !strings.Contains(f, "it's") {
		t.Fatalf("filter = %q", f)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t AS a WHERE",
		"SELECT * FROM t AS a WHERE a.x",
		"SELECT * FROM t AS a WHERE a.x ~ 3",
		"SELECT * FROM t AS a WHERE a.x LIKE 5",
		"SELECT * FROM t AS a WHERE a.x < b.y",   // non-equality join
		"SELECT * FROM t AS a WHERE (a.x = b.y)", // join inside OR group
		"SELECT * FROM t AS a WHERE (a.x = 1 OR b.y = 2)",
		"SELECT SUM(*) FROM t AS a",
		"SELECT MIN(t.x FROM t AS a",
		"SELECT * FROM t AS a GROUP BY",
		"SELECT * FROM t AS a; extra",
		"SELECT * FROM t AS a WHERE a.x = 'unterminated",
		"SELECT * FROM t AS a WHERE a.x BETWEEN 'a' AND 3",
		"SELECT * FROM t AS a WHERE a.x IN (",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	q := mustParse(t, "select min(a.x) from t as a where a.x is null group by a.y")
	if len(q.Aggregates) != 1 || len(q.GroupBy) != 1 {
		t.Fatal("lower-case keywords not recognized")
	}
}

var (
	dsOnce sync.Once
	ds     *job.Dataset
	dsErr  error
)

func TestParsedQueryExecutes(t *testing.T) {
	dsOnce.Do(func() { ds, dsErr = job.Load(0.004, hw.Cosmos()) })
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	q := mustParse(t, `
SELECT MIN(t.title)
FROM title AS t, movie_keyword AS mk, keyword AS k
WHERE k.id = mk.keyword_id AND t.id = mk.movie_id
  AND k.keyword = 'sequel' AND t.production_year > 1990`)
	if err := q.Validate(ds.Cat); err != nil {
		t.Fatal(err)
	}
}

func TestParsedEquivalentToBuiltinQuery(t *testing.T) {
	dsOnce.Do(func() { ds, dsErr = job.Load(0.004, hw.Cosmos()) })
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	// The SQL form of 17b must validate and carry the same structure as the
	// programmatic definition.
	parsed := mustParse(t, `
SELECT MIN(n.name), MIN(n.name)
FROM cast_info AS ci, company_name AS cn, keyword AS k,
     movie_companies AS mc, movie_keyword AS mk, name AS n, title AS t
WHERE cn.country_code = '[us]'
  AND k.keyword = 'character-name-in-title'
  AND n.name LIKE 'Z%'
  AND n.id = ci.person_id AND ci.movie_id = t.id AND t.id = mk.movie_id
  AND mk.keyword_id = k.id AND t.id = mc.movie_id AND mc.company_id = cn.id
  AND ci.movie_id = mc.movie_id AND ci.movie_id = mk.movie_id
  AND mc.movie_id = mk.movie_id;`)
	if err := parsed.Validate(ds.Cat); err != nil {
		t.Fatal(err)
	}
	builtin := job.QueryByName("17b")
	if len(parsed.Tables) != len(builtin.Tables) || len(parsed.Joins) != len(builtin.Joins) {
		t.Fatalf("structure mismatch: %d/%d tables, %d/%d joins",
			len(parsed.Tables), len(builtin.Tables), len(parsed.Joins), len(builtin.Joins))
	}
}
