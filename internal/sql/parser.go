package sql

import (
	"fmt"
	"strconv"
	"strings"

	"hybridndp/internal/expr"
	"hybridndp/internal/query"
	"hybridndp/internal/table"
)

// Parse compiles one SELECT statement of the JOB dialect into a query.Query.
// Supported grammar (keywords case-insensitive):
//
//	SELECT select_item {, select_item}
//	FROM table [AS] alias {, table [AS] alias}
//	[WHERE condition {AND condition}]
//	[GROUP BY column {, column}] [;]
//
//	select_item := * | alias.column | AGG(alias.column) | COUNT(*)
//	condition   := atom | ( or_expr )
//	or_expr     := and_expr {OR and_expr}        (single-table)
//	and_expr    := primary {AND primary}
//	primary     := atom | ( or_expr )
//	atom        := alias.col = alias.col          (join condition)
//	             | alias.col op literal           (op: = <> != < <= > >=)
//	             | alias.col [NOT] LIKE 'pattern'
//	             | alias.col IS [NOT] NULL
//	             | alias.col BETWEEN n AND n
//	             | alias.col IN ( literal {, literal} )
//
// WHERE is a conjunction at the top level, exactly the JOB shape; inside
// parentheses, arbitrarily nested AND/OR groups are allowed as long as every
// atom references the same table alias (AND binds tighter than OR). Join
// conditions may only appear as bare top-level conjuncts. Parenthesized
// groups preserve their boolean structure exactly — parse(Render(q)) rebuilds
// the same expr tree — which the serving plan cache relies on.
func Parse(input string) (*query.Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sql: expected %s, found %s", kw, t)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("sql: expected %q, found %s", sym, t)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.i++
		return true
	}
	return false
}

// colRef parses alias.column.
func (p *parser) colRef() (query.ColRef, error) {
	a := p.next()
	if a.kind != tokIdent {
		return query.ColRef{}, fmt.Errorf("sql: expected alias, found %s", a)
	}
	if err := p.expectSymbol("."); err != nil {
		return query.ColRef{}, err
	}
	c := p.next()
	if c.kind != tokIdent {
		return query.ColRef{}, fmt.Errorf("sql: expected column after %s., found %s", a.text, c)
	}
	return query.ColRef{Alias: a.text, Col: c.text}, nil
}

var aggFuncs = map[string]query.AggFunc{
	"MIN": query.Min, "MAX": query.Max, "SUM": query.Sum,
	"AVG": query.Avg, "COUNT": query.Count,
}

func (p *parser) parseSelect() (*query.Query, error) {
	q := &query.Query{Filters: map[string]expr.Pred{}}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if p.acceptSymbol("*") {
		// SELECT *: no output columns, no aggregates.
	} else {
		for {
			t := p.cur()
			if t.kind == tokKeyword {
				if fn, ok := aggFuncs[t.text]; ok {
					p.i++
					if err := p.expectSymbol("("); err != nil {
						return nil, err
					}
					agg := query.Aggregate{Func: fn}
					if p.acceptSymbol("*") {
						if fn != query.Count {
							return nil, fmt.Errorf("sql: %s(*) is only valid for COUNT", t.text)
						}
						agg.Star = true
					} else {
						cr, err := p.colRef()
						if err != nil {
							return nil, err
						}
						agg.Arg = cr
					}
					if err := p.expectSymbol(")"); err != nil {
						return nil, err
					}
					agg.As = p.optionalAlias(strings.ToLower(t.text))
					q.Aggregates = append(q.Aggregates, agg)
				} else {
					return nil, fmt.Errorf("sql: unexpected %s in select list", t)
				}
			} else {
				cr, err := p.colRef()
				if err != nil {
					return nil, err
				}
				p.optionalAlias("")
				q.Output = append(q.Output, cr)
			}
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("sql: expected table name, found %s", t)
		}
		ref := query.TableRef{Table: t.text, Alias: t.text}
		p.acceptKeyword("AS")
		if p.cur().kind == tokIdent {
			ref.Alias = p.next().text
		}
		q.Tables = append(q.Tables, ref)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if p.acceptKeyword("WHERE") {
		for {
			if err := p.parseCondition(q); err != nil {
				return nil, err
			}
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			cr, err := p.colRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, cr)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	p.acceptSymbol(";")
	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input starting at %s", t)
	}
	q.Name = "adhoc"
	return q, nil
}

// optionalAlias consumes [AS] ident and returns it (or def).
func (p *parser) optionalAlias(def string) string {
	if p.acceptKeyword("AS") {
		if p.cur().kind == tokIdent {
			return p.next().text
		}
		return def
	}
	if p.cur().kind == tokIdent {
		// Bare alias only when followed by , FROM-keyword boundary; to keep
		// the grammar predictable we require AS for aliases.
		return def
	}
	return def
}

// parseCondition parses one top-level conjunct and attaches it to the query
// as either a join condition or a single-table filter.
func (p *parser) parseCondition(q *query.Query) error {
	if p.acceptSymbol("(") {
		// Parenthesized boolean group over one table.
		pred, alias, err := p.parseOrExpr()
		if err != nil {
			return err
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
		p.attachFilter(q, alias, pred)
		return nil
	}
	return p.parseSimpleCondition(q)
}

// parseOrExpr parses and_expr {OR and_expr} where every atom references the
// same alias. Two or more operands build an expr.Or; a single operand passes
// through unchanged, so the boolean tree mirrors the source parenthesization.
func (p *parser) parseOrExpr() (expr.Pred, string, error) {
	pred, alias, err := p.parseAndExpr()
	if err != nil {
		return nil, "", err
	}
	preds := []expr.Pred{pred}
	for p.acceptKeyword("OR") {
		next, a, err := p.parseAndExpr()
		if err != nil {
			return nil, "", err
		}
		if a != alias {
			return nil, "", fmt.Errorf("sql: OR group mixes tables %s and %s", alias, a)
		}
		preds = append(preds, next)
	}
	if len(preds) == 1 {
		return preds[0], alias, nil
	}
	return expr.Or{Preds: preds}, alias, nil
}

// parseAndExpr parses primary {AND primary} over one alias.
func (p *parser) parseAndExpr() (expr.Pred, string, error) {
	pred, alias, err := p.parsePrimary()
	if err != nil {
		return nil, "", err
	}
	preds := []expr.Pred{pred}
	for p.acceptKeyword("AND") {
		next, a, err := p.parsePrimary()
		if err != nil {
			return nil, "", err
		}
		if a != alias {
			return nil, "", fmt.Errorf("sql: AND group mixes tables %s and %s", alias, a)
		}
		preds = append(preds, next)
	}
	if len(preds) == 1 {
		return preds[0], alias, nil
	}
	return expr.And{Preds: preds}, alias, nil
}

// parsePrimary parses a nested parenthesized group or a single atom.
func (p *parser) parsePrimary() (expr.Pred, string, error) {
	if p.acceptSymbol("(") {
		pred, alias, err := p.parseOrExpr()
		if err != nil {
			return nil, "", err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, "", err
		}
		return pred, alias, nil
	}
	pred, alias, isJoin, _, err := p.parseAtom()
	if err != nil {
		return nil, "", err
	}
	if isJoin {
		return nil, "", fmt.Errorf("sql: join conditions cannot appear inside boolean groups")
	}
	return pred, alias, nil
}

func (p *parser) parseSimpleCondition(q *query.Query) error {
	pred, alias, isJoin, jc, err := p.parseAtom()
	if err != nil {
		return err
	}
	if isJoin {
		q.Joins = append(q.Joins, jc)
		return nil
	}
	p.attachFilter(q, alias, pred)
	return nil
}

func (p *parser) attachFilter(q *query.Query, alias string, pred expr.Pred) {
	if old, ok := q.Filters[alias]; ok {
		q.Filters[alias] = expr.And{Preds: []expr.Pred{old, pred}}
		return
	}
	q.Filters[alias] = pred
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.Eq, "<>": expr.Ne, "!=": expr.Ne,
	"<": expr.Lt, "<=": expr.Le, ">": expr.Gt, ">=": expr.Ge,
}

// parseAtom parses one comparison/LIKE/IN/BETWEEN/IS NULL condition. It
// reports either a single-table predicate (with its alias) or a join
// condition.
func (p *parser) parseAtom() (expr.Pred, string, bool, query.JoinCond, error) {
	none := query.JoinCond{}
	left, err := p.colRef()
	if err != nil {
		return nil, "", false, none, err
	}
	t := p.next()
	op, isCmp := cmpOps[t.text]
	switch {
	case t.kind == tokSymbol && isCmp:
		rhs := p.cur()
		switch rhs.kind {
		case tokIdent:
			// alias.col op alias.col → join condition (only equality).
			right, err := p.colRef()
			if err != nil {
				return nil, "", false, none, err
			}
			if op != expr.Eq {
				return nil, "", false, none, fmt.Errorf("sql: only equality joins are supported, found %s", t)
			}
			return nil, "", true, query.JoinCond{
				LeftAlias: left.Alias, LeftCol: left.Col,
				RightAlias: right.Alias, RightCol: right.Col,
			}, nil
		case tokNumber:
			p.i++
			n, err := strconv.ParseInt(rhs.text, 10, 32)
			if err != nil {
				return nil, "", false, none, fmt.Errorf("sql: bad number %q", rhs.text)
			}
			return expr.Cmp{Col: left.Col, Op: op, Val: table.IntVal(int32(n))}, left.Alias, false, none, nil
		case tokString:
			p.i++
			return expr.Cmp{Col: left.Col, Op: op, Val: table.StrVal(rhs.text)}, left.Alias, false, none, nil
		default:
			return nil, "", false, none, fmt.Errorf("sql: expected literal or column after %s, found %s", t.text, rhs)
		}

	case t.kind == tokKeyword && t.text == "LIKE":
		s := p.next()
		if s.kind != tokString {
			return nil, "", false, none, fmt.Errorf("sql: LIKE needs a string pattern, found %s", s)
		}
		return expr.Like{Col: left.Col, Pattern: s.text}, left.Alias, false, none, nil

	case t.kind == tokKeyword && t.text == "NOT":
		if err := p.expectKeyword("LIKE"); err != nil {
			return nil, "", false, none, err
		}
		s := p.next()
		if s.kind != tokString {
			return nil, "", false, none, fmt.Errorf("sql: NOT LIKE needs a string pattern, found %s", s)
		}
		return expr.Like{Col: left.Col, Pattern: s.text, Not: true}, left.Alias, false, none, nil

	case t.kind == tokKeyword && t.text == "IS":
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, "", false, none, err
		}
		return expr.IsNull{Col: left.Col, Not: not}, left.Alias, false, none, nil

	case t.kind == tokKeyword && t.text == "BETWEEN":
		lo := p.next()
		if lo.kind != tokNumber {
			return nil, "", false, none, fmt.Errorf("sql: BETWEEN needs numeric bounds, found %s", lo)
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, "", false, none, err
		}
		hi := p.next()
		if hi.kind != tokNumber {
			return nil, "", false, none, fmt.Errorf("sql: BETWEEN needs numeric bounds, found %s", hi)
		}
		l, err1 := strconv.ParseInt(lo.text, 10, 32)
		h, err2 := strconv.ParseInt(hi.text, 10, 32)
		if err1 != nil || err2 != nil {
			return nil, "", false, none, fmt.Errorf("sql: bad BETWEEN bounds")
		}
		return expr.Between{Col: left.Col, Lo: int32(l), Hi: int32(h)}, left.Alias, false, none, nil

	case t.kind == tokKeyword && t.text == "IN":
		if err := p.expectSymbol("("); err != nil {
			return nil, "", false, none, err
		}
		var vals []table.Value
		for {
			v := p.next()
			switch v.kind {
			case tokString:
				vals = append(vals, table.StrVal(v.text))
			case tokNumber:
				n, err := strconv.ParseInt(v.text, 10, 32)
				if err != nil {
					return nil, "", false, none, fmt.Errorf("sql: bad number %q in IN list", v.text)
				}
				vals = append(vals, table.IntVal(int32(n)))
			default:
				return nil, "", false, none, fmt.Errorf("sql: expected literal in IN list, found %s", v)
			}
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, "", false, none, err
		}
		return expr.In{Col: left.Col, Vals: vals}, left.Alias, false, none, nil
	}
	return nil, "", false, none, fmt.Errorf("sql: unexpected %s after %s.%s", t, left.Alias, left.Col)
}
