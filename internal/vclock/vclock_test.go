package vclock

import (
	"testing"
	"testing/quick"
)

func TestChargeAdvancesClock(t *testing.T) {
	tl := NewTimeline("host")
	if tl.Now() != 0 {
		t.Fatal("fresh timeline must start at zero")
	}
	tl.Charge("work", 100*Microsecond)
	tl.Charge("work", 50*Microsecond)
	tl.Charge("other", 25*Microsecond)
	if got := tl.Now(); got != Time(175*Microsecond) {
		t.Fatalf("Now = %v, want 175µs", got)
	}
	if got := tl.Booked("work"); got != 150*Microsecond {
		t.Fatalf("Booked(work) = %v", got)
	}
}

func TestChargePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge must panic")
		}
	}()
	NewTimeline("x").Charge("bad", -1)
}

func TestWaitUntil(t *testing.T) {
	tl := NewTimeline("host")
	tl.Charge("work", 10*Microsecond)
	// Waiting for a past instant is free.
	if d := tl.WaitUntil(Time(5*Microsecond), "wait"); d != 0 {
		t.Fatalf("past wait returned %v", d)
	}
	if tl.Now() != Time(10*Microsecond) {
		t.Fatal("past wait must not move the clock")
	}
	// Waiting for a future instant books the stall.
	if d := tl.WaitUntil(Time(30*Microsecond), "wait"); d != 20*Microsecond {
		t.Fatalf("future wait returned %v, want 20µs", d)
	}
	if tl.Booked("wait") != 20*Microsecond {
		t.Fatalf("wait booked %v", tl.Booked("wait"))
	}
	if tl.Now() != Time(30*Microsecond) {
		t.Fatalf("Now = %v", tl.Now())
	}
}

func TestBreakdownSortedAndSumsTo100(t *testing.T) {
	tl := NewTimeline("dev")
	tl.Charge("a", 10)
	tl.Charge("b", 30)
	tl.Charge("c", 60)
	bd := tl.Breakdown()
	if len(bd) != 3 || bd[0].Category != "c" || bd[2].Category != "a" {
		t.Fatalf("breakdown order wrong: %+v", bd)
	}
	sum := 0.0
	for _, e := range bd {
		sum += e.Percent
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("percentages sum to %.2f", sum)
	}
}

func TestResetClearsState(t *testing.T) {
	tl := NewTimeline("x")
	tl.Charge("a", 5)
	tl.Reset()
	if tl.Now() != 0 || tl.Booked("a") != 0 || len(tl.Account()) != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestAccountIsACopy(t *testing.T) {
	tl := NewTimeline("x")
	tl.Charge("a", 5)
	acc := tl.Account()
	acc["a"] = 999
	if tl.Booked("a") != 5 {
		t.Fatal("mutating the returned account affected the timeline")
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(100)
	b := a.Add(50)
	if b != Time(150) {
		t.Fatalf("Add: %v", b)
	}
	if d := b.Sub(a); d != 50 {
		t.Fatalf("Sub: %v", d)
	}
	if MaxTime(a, b) != b || MaxTime(b, a) != b {
		t.Fatal("MaxTime wrong")
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Millisecond
	if d.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", d.Seconds())
	}
	if d.Milliseconds() != 1500 {
		t.Fatalf("Milliseconds = %v", d.Milliseconds())
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// Any sequence of charges and waits keeps the clock monotone and the
	// clock always equals the sum of all booked durations.
	f := func(charges []uint16) bool {
		tl := NewTimeline("p")
		prev := tl.Now()
		for i, c := range charges {
			if i%3 == 2 {
				tl.WaitUntil(tl.Now().Add(Duration(c)), "w")
			} else {
				tl.Charge("c", Duration(c))
			}
			if tl.Now() < prev {
				return false
			}
			prev = tl.Now()
		}
		var sum Duration
		for _, v := range tl.Account() {
			sum += v
		}
		return Time(sum) == tl.Now()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
