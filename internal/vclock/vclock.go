// Package vclock provides the virtual-time substrate for the hybridNDP
// simulator. Operators execute for real over real data, but instead of being
// timed with a wall clock they charge virtual durations to a Timeline at
// rates calibrated from the hardware model. Two timelines (host and device)
// advance independently; rendezvous points such as buffer handoffs are
// modelled with WaitUntil, which moves a consumer forward to the producer's
// timestamp and reports the stall, exactly mirroring the cooperative
// execution model of the paper (Fig. 17).
package vclock

import (
	"fmt"
	"sort"
	"time"
)

// Duration is a virtual duration in nanoseconds. It is kept as a float64 so
// that sub-nanosecond per-record costs accumulate without rounding to zero.
type Duration float64

// Common virtual durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Std converts a virtual duration to a time.Duration for display.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// FromStd converts a wall-clock duration into virtual nanoseconds. It is the
// only sanctioned crossing in that direction (the vtunits analyzer flags raw
// conversions); callers should have a stated reason to import measured wall
// time into virtual accounting, e.g. seeding a cost model from a calibration
// run.
func FromStd(d time.Duration) Duration { return Duration(d) }

func (d Duration) String() string { return d.Std().String() }

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration in milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Time is a virtual instant: nanoseconds since the start of the execution.
type Time float64

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return time.Duration(t).String() }

// MaxTime returns the later of two instants.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Timeline is one engine's private virtual clock plus a per-category cost
// account used for execution breakdowns (paper Table 4).
type Timeline struct {
	name    string
	now     Time
	account map[string]Duration
}

// NewTimeline returns a timeline starting at virtual time zero.
func NewTimeline(name string) *Timeline {
	return &Timeline{name: name, account: make(map[string]Duration)}
}

// Name reports the timeline's label ("host" or "device").
func (tl *Timeline) Name() string { return tl.name }

// Now reports the current virtual instant.
func (tl *Timeline) Now() Time { return tl.now }

// Charge advances the clock by d and books it under category.
func (tl *Timeline) Charge(category string, d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative charge %v to %s/%s", d, tl.name, category))
	}
	tl.now = tl.now.Add(d)
	tl.account[category] += d
}

// WaitUntil advances the clock to t if t is in the future, booking the gap
// under category (e.g. "wait.initial", "wait.slots"). It returns the stall
// duration (zero when no wait was needed).
func (tl *Timeline) WaitUntil(t Time, category string) Duration {
	if t <= tl.now {
		return 0
	}
	d := t.Sub(tl.now)
	tl.now = t
	tl.account[category] += d
	return d
}

// Account returns a copy of the per-category cost account.
func (tl *Timeline) Account() map[string]Duration {
	out := make(map[string]Duration, len(tl.account))
	for k, v := range tl.account {
		out[k] = v
	}
	return out
}

// Booked reports the total booked under category.
func (tl *Timeline) Booked(category string) Duration { return tl.account[category] }

// Reset rewinds the timeline to zero and clears the account.
func (tl *Timeline) Reset() {
	tl.now = 0
	tl.account = make(map[string]Duration)
}

// BreakdownEntry is one line of a timeline's account report.
type BreakdownEntry struct {
	Category string
	Total    Duration
	Percent  float64
}

// Breakdown returns the account sorted by descending share of the total.
func (tl *Timeline) Breakdown() []BreakdownEntry {
	var total Duration
	for _, v := range tl.account {
		total += v
	}
	out := make([]BreakdownEntry, 0, len(tl.account))
	for k, v := range tl.account {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(v) / float64(total)
		}
		out = append(out, BreakdownEntry{Category: k, Total: v, Percent: pct})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Category < out[j].Category
	})
	return out
}
