// Package flash simulates the NAND flash module of the smart-storage device.
// SST files live here as page-aligned blobs. Reads really return the stored
// bytes and charge virtual time to the reading engine's timeline at that
// engine's flash rates, so the same physical read is cheap for the on-device
// NDP engine (high internal bandwidth, no interconnect) and expensive for the
// host path (external bandwidth, protocol/stack overhead) — the asymmetry all
// of NDP rests on.
package flash

import (
	"errors"
	"fmt"
	"sync"

	"hybridndp/internal/hw"
	"hybridndp/internal/vclock"
)

// FileID identifies one stored blob (one SST file).
type FileID uint64

// Typed flash errors, errors.Is-able through the fmt.Errorf wrapping at the
// return sites.
var (
	// ErrNotExist is returned for reads of deleted or never-written files.
	ErrNotExist = errors.New("flash: file does not exist")
	// ErrOutOfBounds is returned for reads past a file's end.
	ErrOutOfBounds = errors.New("flash: read out of bounds")
	// ErrCapacity is returned when a write would exceed the configured
	// capacity.
	ErrCapacity = errors.New("flash: capacity exceeded")
)

// Faults optionally injects read failures into the flash path (implemented
// by fault.Injector). The hook fires after the read's virtual time has been
// charged: a failed read still occupied the flash channel.
type Faults interface {
	ReadFault(id FileID, off, length int64) error
}

// Stats counts physical flash activity.
type Stats struct {
	BytesRead    int64
	BytesWritten int64
	PageReads    int64
	RandomReads  int64
	FilesLive    int
}

// Flash is the simulated flash module.
type Flash struct {
	mu        sync.RWMutex
	pageBytes int64
	capacity  int64
	used      int64             // guarded by mu
	next      FileID            // guarded by mu
	root      FileID            // guarded by mu
	files     map[FileID][]byte // guarded by mu
	stats     Stats             // guarded by mu
}

// New creates a flash module with the model's page size and a capacity in
// bytes (0 means unbounded).
func New(m hw.Model, capacity int64) *Flash {
	return &Flash{
		pageBytes: m.FlashPageBytes,
		capacity:  capacity,
		files:     make(map[FileID][]byte),
	}
}

// PageBytes reports the flash page size.
func (f *Flash) PageBytes() int64 { return f.pageBytes }

// Used reports the page-aligned bytes currently occupied.
func (f *Flash) Used() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.used
}

// Stats returns a snapshot of the activity counters.
func (f *Flash) Stats() Stats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	s := f.stats
	s.FilesLive = len(f.files)
	return s
}

func (f *Flash) align(n int64) int64 {
	if n%f.pageBytes == 0 {
		return n
	}
	return (n/f.pageBytes + 1) * f.pageBytes
}

// WriteFile stores data as a new file and returns its ID. The write is
// charged to tl (if non-nil) at the writing engine's flash streaming rate;
// flash writes are roughly 2.5× slower than reads on the simulated MLC part.
func (f *Flash) WriteFile(data []byte, tl *vclock.Timeline, r hw.Rates) (FileID, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sz := f.align(int64(len(data)))
	if f.capacity > 0 && f.used+sz > f.capacity {
		return 0, fmt.Errorf("%w (%d used + %d > %d)", ErrCapacity, f.used, sz, f.capacity)
	}
	f.next++
	id := f.next
	cp := make([]byte, len(data))
	copy(cp, data)
	f.files[id] = cp
	f.used += sz
	f.stats.BytesWritten += int64(len(data))
	if tl != nil {
		tl.Charge(hw.CatFlashLoad, vclock.Duration(float64(len(data))*r.FlashNsPerByte*2.5))
	}
	return id, nil
}

// DeleteFile removes a file (e.g. after compaction).
func (f *Flash) DeleteFile(id FileID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if data, ok := f.files[id]; ok {
		f.used -= f.align(int64(len(data)))
		delete(f.files, id)
	}
}

// Size reports the byte length of a file, or -1 if it does not exist.
func (f *Flash) Size(id FileID) int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if data, ok := f.files[id]; ok {
		return int64(len(data))
	}
	return -1
}

// ReadAt returns length bytes of file id starting at off and charges the read
// to tl at rates r: one random page seek plus streaming for the pages
// touched. The returned slice aliases the stored blob and must be treated as
// read-only. A non-nil inj may turn the read into an injected failure after
// the time is charged.
func (f *Flash) ReadAt(id FileID, off, length int64, tl *vclock.Timeline, r hw.Rates, inj Faults) ([]byte, error) {
	return f.read(id, off, length, tl, r, false, inj)
}

// ReadAtSeq is ReadAt for sequential continuation reads: the flash channel
// pipeline hides the page latency behind the previous transfer, so only
// streaming bandwidth is charged.
func (f *Flash) ReadAtSeq(id FileID, off, length int64, tl *vclock.Timeline, r hw.Rates, inj Faults) ([]byte, error) {
	return f.read(id, off, length, tl, r, true, inj)
}

func (f *Flash) read(id FileID, off, length int64, tl *vclock.Timeline, r hw.Rates, sequential bool, inj Faults) ([]byte, error) {
	f.mu.RLock()
	data, ok := f.files[id]
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: file %d", ErrNotExist, id)
	}
	if off < 0 || off+length > int64(len(data)) {
		return nil, fmt.Errorf("%w: [%d,%d) of file %d (%d bytes)", ErrOutOfBounds, off, off+length, id, len(data))
	}
	firstPage := off / f.pageBytes
	lastPage := (off + length - 1) / f.pageBytes
	if length == 0 {
		lastPage = firstPage
	}
	pages := lastPage - firstPage + 1

	f.mu.Lock()
	f.stats.BytesRead += length
	f.stats.PageReads += pages
	if !sequential {
		f.stats.RandomReads++
	}
	f.mu.Unlock()

	if tl != nil {
		// Random accesses pay one page latency and the full page span;
		// sequential continuation reads are coalesced by the channel
		// pipeline and pay only the actual bytes.
		if sequential {
			r.FlashRead(tl, length, 0)
		} else {
			r.FlashRead(tl, pages*f.pageBytes, 1)
		}
	}
	if inj != nil {
		// The fault fires after the charge: an uncorrectable read still
		// occupied the channel for its full span before ECC gave up.
		if err := inj.ReadFault(id, off, length); err != nil {
			return nil, err
		}
	}
	return data[off : off+length], nil
}

// SetRoot atomically updates the device's root pointer (the superblock slot
// real devices reserve for the manifest of the storage engine). Zero clears
// it.
func (f *Flash) SetRoot(id FileID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.root = id
}

// Root returns the current root pointer (0 = none).
func (f *Flash) Root() FileID {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.root
}

// ReadFile returns the whole file, charged as one sequential read. Recovery
// and manifest reads go through here, outside the fault-injection surface.
func (f *Flash) ReadFile(id FileID, tl *vclock.Timeline, r hw.Rates) ([]byte, error) {
	sz := f.Size(id)
	if sz < 0 {
		return nil, fmt.Errorf("%w: file %d", ErrNotExist, id)
	}
	return f.ReadAt(id, 0, sz, tl, r, nil)
}
