package flash

import (
	"bytes"
	"errors"
	"testing"

	"hybridndp/internal/hw"
	"hybridndp/internal/vclock"
)

func blob(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := New(hw.Cosmos(), 0)
	data := blob(100_000)
	id, err := f.WriteFile(data, nil, hw.Rates{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadFile(id, nil, hw.Rates{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
	part, err := f.ReadAt(id, 5000, 1234, nil, hw.Rates{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, data[5000:6234]) {
		t.Fatal("partial read mismatch")
	}
}

func TestReadBounds(t *testing.T) {
	f := New(hw.Cosmos(), 0)
	id, _ := f.WriteFile(blob(1000), nil, hw.Rates{})
	if _, err := f.ReadAt(id, 900, 200, nil, hw.Rates{}, nil); err == nil {
		t.Fatal("out-of-bounds read must fail")
	}
	if _, err := f.ReadAt(id, -1, 10, nil, hw.Rates{}, nil); err == nil {
		t.Fatal("negative offset must fail")
	}
	if _, err := f.ReadAt(999, 0, 10, nil, hw.Rates{}, nil); err == nil {
		t.Fatal("missing file must fail")
	}
	if f.Size(999) != -1 {
		t.Fatal("Size of missing file must be -1")
	}
}

// TestTypedErrors is the regression test for reads of deleted/unknown files:
// they must fail with the typed ErrNotExist sentinel (not zero bytes, not an
// anonymous error), and bounds/capacity failures carry their own sentinels.
func TestTypedErrors(t *testing.T) {
	f := New(hw.Cosmos(), 2*hw.Cosmos().FlashPageBytes)
	if _, err := f.ReadAt(42, 0, 10, nil, hw.Rates{}, nil); !errors.Is(err, ErrNotExist) {
		t.Fatalf("read of unknown file: got %v, want ErrNotExist", err)
	}
	id, err := f.WriteFile(blob(1000), nil, hw.Rates{})
	if err != nil {
		t.Fatal(err)
	}
	f.DeleteFile(id)
	if _, err := f.ReadAt(id, 0, 10, nil, hw.Rates{}, nil); !errors.Is(err, ErrNotExist) {
		t.Fatalf("read of deleted file: got %v, want ErrNotExist", err)
	}
	if _, err := f.ReadFile(id, nil, hw.Rates{}); !errors.Is(err, ErrNotExist) {
		t.Fatalf("ReadFile of deleted file: got %v, want ErrNotExist", err)
	}
	id2, _ := f.WriteFile(blob(1000), nil, hw.Rates{})
	if _, err := f.ReadAt(id2, 900, 200, nil, hw.Rates{}, nil); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("out-of-bounds read: got %v, want ErrOutOfBounds", err)
	}
	if _, err := f.WriteFile(blob(int(3*hw.Cosmos().FlashPageBytes)), nil, hw.Rates{}); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-capacity write: got %v, want ErrCapacity", err)
	}
}

// failEveryRead is a test double for the Faults hook.
type failEveryRead struct {
	err   error
	calls int
}

func (f *failEveryRead) ReadFault(id FileID, off, length int64) error {
	f.calls++
	return f.err
}

func TestInjectedReadFaultFiresAfterCharge(t *testing.T) {
	m := hw.Cosmos()
	f := New(m, 0)
	id, _ := f.WriteFile(blob(int(2*m.FlashPageBytes)), nil, hw.Rates{})
	tl := vclock.NewTimeline("r")
	inj := &failEveryRead{err: errors.New("boom")}
	_, err := f.ReadAt(id, 0, 4096, tl, hw.DeviceRates(m), inj)
	if !errors.Is(err, inj.err) {
		t.Fatalf("injected fault not surfaced: %v", err)
	}
	if inj.calls != 1 {
		t.Fatalf("hook called %d times, want 1", inj.calls)
	}
	if tl.Now() <= 0 {
		t.Fatal("failed read must still charge the flash channel time")
	}
	// A nil hook or a benign hook leaves the read untouched.
	if _, err := f.ReadAt(id, 0, 4096, tl, hw.DeviceRates(m), &failEveryRead{}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityEnforced(t *testing.T) {
	m := hw.Cosmos()
	f := New(m, 4*m.FlashPageBytes)
	if _, err := f.WriteFile(blob(int(3*m.FlashPageBytes)), nil, hw.Rates{}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteFile(blob(int(2*m.FlashPageBytes)), nil, hw.Rates{}); err == nil {
		t.Fatal("write beyond capacity must fail")
	}
}

func TestDeleteReclaimsSpace(t *testing.T) {
	f := New(hw.Cosmos(), 0)
	id, _ := f.WriteFile(blob(100_000), nil, hw.Rates{})
	used := f.Used()
	if used <= 0 {
		t.Fatal("Used not tracking")
	}
	f.DeleteFile(id)
	if f.Used() != 0 {
		t.Fatalf("Used = %d after delete", f.Used())
	}
	// Double delete is harmless.
	f.DeleteFile(id)
}

func TestUsedIsPageAligned(t *testing.T) {
	m := hw.Cosmos()
	f := New(m, 0)
	f.WriteFile(blob(1), nil, hw.Rates{})
	if f.Used() != m.FlashPageBytes {
		t.Fatalf("1-byte file occupies %d, want one page (%d)", f.Used(), m.FlashPageBytes)
	}
}

func TestChargingRandomVsSequential(t *testing.T) {
	m := hw.Cosmos()
	f := New(m, 0)
	id, _ := f.WriteFile(blob(int(4*m.FlashPageBytes)), nil, hw.Rates{})
	r := hw.DeviceRates(m)

	rnd := vclock.NewTimeline("r")
	seq := vclock.NewTimeline("s")
	if _, err := f.ReadAt(id, 0, 4096, rnd, r, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAtSeq(id, 0, 4096, seq, r, nil); err != nil {
		t.Fatal(err)
	}
	if seq.Now() >= rnd.Now() {
		t.Fatalf("sequential read (%v) must be cheaper than random (%v)", seq.Now(), rnd.Now())
	}
	st := f.Stats()
	if st.RandomReads != 1 {
		t.Fatalf("RandomReads = %d, want 1 (sequential reads excluded)", st.RandomReads)
	}
	if st.BytesRead != 8192 {
		t.Fatalf("BytesRead = %d", st.BytesRead)
	}
}

func TestDeviceReadsCheaperThanHost(t *testing.T) {
	m := hw.Cosmos()
	f := New(m, 0)
	id, _ := f.WriteFile(blob(1<<20), nil, hw.Rates{})
	host := vclock.NewTimeline("h")
	dev := vclock.NewTimeline("d")
	f.ReadFile(id, host, hw.HostRates(m))
	f.ReadFile(id, dev, hw.DeviceRates(m))
	if dev.Now() >= host.Now() {
		t.Fatal("device-internal read must be cheaper than the host path")
	}
}

func TestWriteCharges(t *testing.T) {
	m := hw.Cosmos()
	f := New(m, 0)
	tl := vclock.NewTimeline("w")
	f.WriteFile(blob(1<<20), tl, hw.DeviceRates(m))
	if tl.Now() <= 0 {
		t.Fatal("charged write booked nothing")
	}
	if f.Stats().BytesWritten != 1<<20 {
		t.Fatalf("BytesWritten = %d", f.Stats().BytesWritten)
	}
}
