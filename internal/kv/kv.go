// Package kv implements the nKV layer of the paper (§2.1): a key-value store
// of named column families, each backed by its own LSM tree (as in
// RocksDB/MyRocks where every DB object and every secondary index is a
// separate column family), plus the shared-state snapshot mechanism that
// ships un-flushed C0 contents and the physical SST placement map alongside
// every NDP invocation, so the device can process a transactionally
// consistent snapshot without host interaction.
package kv

import (
	"fmt"
	"sort"
	"sync"

	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
	"hybridndp/internal/lsm"
)

// DB is an nKV database instance.
type DB struct {
	mu    sync.RWMutex
	fl    *flash.Flash
	model hw.Model
	cfg   lsm.Config
	cfs   map[string]*ColumnFamily // guarded by mu

	// Durable-mode state (see durable.go).
	durable     bool
	manifestMu  sync.Mutex
	cfManifests map[string]flash.FileID // guarded by manifestMu
}

// Open creates a database over the given flash module.
func Open(fl *flash.Flash, model hw.Model, cfg lsm.Config) *DB {
	return &DB{fl: fl, model: model, cfg: cfg, cfs: make(map[string]*ColumnFamily)}
}

// Flash exposes the underlying flash module (the device simulator reads SSTs
// from it directly).
func (db *DB) Flash() *flash.Flash { return db.fl }

// Model reports the hardware model the database was opened with.
func (db *DB) Model() hw.Model { return db.model }

// CreateColumnFamily registers a new column family with its own LSM tree.
// In durable mode the tree logs to a WAL and reports its manifests into the
// database manifest.
func (db *DB) CreateColumnFamily(name string) (*ColumnFamily, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.cfs[name]; ok {
		return nil, fmt.Errorf("kv: column family %q already exists", name)
	}
	cfg := db.cfg
	if db.durable {
		cfg.OnManifest = db.manifestHook(name)
	}
	cf := &ColumnFamily{name: name, tree: lsm.NewTree(db.fl, cfg)}
	db.cfs[name] = cf
	return cf, nil
}

// CF returns a column family by name.
func (db *DB) CF(name string) (*ColumnFamily, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	cf, ok := db.cfs[name]
	if !ok {
		return nil, fmt.Errorf("kv: column family %q does not exist", name)
	}
	return cf, nil
}

// ColumnFamilies lists the registered families in name order.
func (db *DB) ColumnFamilies() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.cfs))
	for n := range db.cfs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FlushAll flushes every column family's memtables to SSTs.
func (db *DB) FlushAll() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, cf := range db.cfs {
		if err := cf.tree.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// ColumnFamily is one logically partitioned key space with its own LSM tree.
type ColumnFamily struct {
	name string
	tree *lsm.Tree
}

// Name reports the family's name.
func (cf *ColumnFamily) Name() string { return cf.name }

// Put stores a key/value pair.
func (cf *ColumnFamily) Put(key, value []byte) error { return cf.tree.Put(key, value) }

// Delete removes a key.
func (cf *ColumnFamily) Delete(key []byte) error { return cf.tree.Delete(key) }

// Get retrieves the value for key, charging the access.
func (cf *ColumnFamily) Get(key []byte, ac lsm.Access) ([]byte, bool, error) {
	return cf.tree.Get(key, ac)
}

// Scan iterates [lo, hi) in key order, charging the access.
func (cf *ColumnFamily) Scan(lo, hi []byte, ac lsm.Access) *lsm.TreeIter {
	return cf.tree.Scan(lo, hi, ac)
}

// Flush forces memtables out to C1.
func (cf *ColumnFamily) Flush() error { return cf.tree.Flush() }

// Sync group-commits pending WAL records (durable mode).
func (cf *ColumnFamily) Sync() error { return cf.tree.Sync() }

// Stats reports LSM statistics for the optimizer.
func (cf *ColumnFamily) Stats() lsm.Stats { return cf.tree.Stats() }

// Placement reports the physical organization (the address-mapping table
// content sent with NDP invocations).
func (cf *ColumnFamily) Placement() []lsm.LevelInfo { return cf.tree.Placement() }

// View returns a frozen, transactionally consistent read view of the family
// (update-aware NDP: what the device reads after an invocation).
func (cf *ColumnFamily) View() *lsm.View { return cf.tree.View() }

// CFSnapshot is the per-object part of the shared state: the un-flushed C0
// contents plus the physical placement of all SSTs of the object, and the
// frozen view the device-side engine reads through.
type CFSnapshot struct {
	Name      string
	MemState  []lsm.Entry
	Placement []lsm.LevelInfo
	View      *lsm.View
}

// Bytes estimates the serialized size of the snapshot part, which is charged
// as NDP command payload when the invocation crosses the interconnect.
func (s CFSnapshot) Bytes() int64 {
	var n int64 = 64
	for _, e := range s.MemState {
		n += int64(len(e.Key)+len(e.Value)) + 3
	}
	for _, li := range s.Placement {
		n += 8
		for _, sst := range li.SSTs {
			n += int64(len(sst.MinKey)+len(sst.MaxKey)) + 24
		}
	}
	return n
}

// Snapshot is the shared state of one NDP invocation: a transactionally
// consistent view of every involved DB object.
type Snapshot struct {
	CFs map[string]CFSnapshot
}

// TakeSnapshot captures the shared state for the named column families.
func (db *DB) TakeSnapshot(names []string) (*Snapshot, error) {
	snap := &Snapshot{CFs: make(map[string]CFSnapshot, len(names))}
	for _, n := range names {
		cf, err := db.CF(n)
		if err != nil {
			return nil, err
		}
		snap.CFs[n] = CFSnapshot{
			Name:      n,
			MemState:  cf.MemContents(),
			Placement: cf.Placement(),
			View:      cf.View(),
		}
	}
	return snap, nil
}

// MemContents exposes the un-flushed C0 state captured by snapshots.
func (cf *ColumnFamily) MemContents() []lsm.Entry { return cf.tree.MemContents() }

// Bytes estimates the serialized snapshot size.
func (s *Snapshot) Bytes() int64 {
	var n int64
	for _, cf := range s.CFs {
		n += cf.Bytes()
	}
	return n
}
