package kv

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
	"hybridndp/internal/lsm"
)

// Durable-mode support: one flash-rooted database manifest maps every column
// family to its tree manifest, so the whole nKV instance (all tables and all
// secondary indexes) survives a restart through ReopenDB.

const dbManifestMagic = 0x6e4b5644 // "nKVD"

// OpenDurable creates a database whose column families log to WALs and keep
// flash-rooted manifests.
func OpenDurable(fl *flash.Flash, model hw.Model, cfg lsm.Config) *DB {
	cfg.Durable = true
	db := Open(fl, model, cfg)
	db.durable = true
	db.cfManifests = make(map[string]flash.FileID)
	return db
}

// registerManifestHook wires a column family's tree manifests into the
// database manifest.
func (db *DB) manifestHook(name string) func(flash.FileID) error {
	return func(id flash.FileID) error {
		db.manifestMu.Lock()
		defer db.manifestMu.Unlock()
		db.cfManifests[name] = id
		return db.persistDBManifestLocked()
	}
}

// persistDBManifestLocked rewrites the database manifest and installs it as
// the flash root (write-new-then-switch).
func (db *DB) persistDBManifestLocked() error {
	names := make([]string, 0, len(db.cfManifests))
	for n := range db.cfManifests {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, dbManifestMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, n := range names {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n)))
		buf = append(buf, n...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(db.cfManifests[n]))
	}
	id, err := db.fl.WriteFile(buf, nil, hw.Rates{})
	if err != nil {
		return err
	}
	old := db.fl.Root()
	db.fl.SetRoot(id)
	if old != 0 {
		db.fl.DeleteFile(old)
	}
	return nil
}

func decodeDBManifest(raw []byte) (map[string]flash.FileID, error) {
	if len(raw) < 8 || binary.LittleEndian.Uint32(raw) != dbManifestMagic {
		return nil, fmt.Errorf("kv: bad database manifest")
	}
	n := binary.LittleEndian.Uint32(raw[4:])
	raw = raw[8:]
	out := make(map[string]flash.FileID, n)
	for i := uint32(0); i < n; i++ {
		if len(raw) < 4 {
			return nil, fmt.Errorf("kv: truncated database manifest")
		}
		l := binary.LittleEndian.Uint32(raw)
		raw = raw[4:]
		if uint32(len(raw)) < l+8 {
			return nil, fmt.Errorf("kv: truncated database manifest entry")
		}
		name := string(raw[:l])
		raw = raw[l:]
		out[name] = flash.FileID(binary.LittleEndian.Uint64(raw))
		raw = raw[8:]
	}
	return out, nil
}

// ReopenDB rebuilds a durable database from the flash root: every column
// family's tree is reopened from its manifest and its WAL replayed.
func ReopenDB(fl *flash.Flash, model hw.Model, cfg lsm.Config) (*DB, error) {
	root := fl.Root()
	if root == 0 {
		return nil, fmt.Errorf("kv: no database manifest on this flash")
	}
	raw, err := fl.ReadFile(root, nil, hw.Rates{})
	if err != nil {
		return nil, err
	}
	manifests, err := decodeDBManifest(raw)
	if err != nil {
		return nil, err
	}
	db := OpenDurable(fl, model, cfg)
	for name, mid := range manifests {
		treeCfg := db.cfg
		treeCfg.OnManifest = db.manifestHook(name)
		tree, err := lsm.ReopenFromManifest(fl, treeCfg, mid)
		if err != nil {
			return nil, fmt.Errorf("kv: reopening column family %q: %v", name, err)
		}
		db.mu.Lock()
		db.cfs[name] = &ColumnFamily{name: name, tree: tree}
		db.mu.Unlock()
		db.manifestMu.Lock()
		db.cfManifests[name] = mid
		db.manifestMu.Unlock()
	}
	return db, nil
}
