package kv

import (
	"bytes"
	"fmt"
	"testing"

	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
	"hybridndp/internal/lsm"
)

func testDB() *DB {
	m := hw.Cosmos()
	return Open(flash.New(m, 0), m, lsm.DefaultConfig())
}

func TestColumnFamilyLifecycle(t *testing.T) {
	db := testDB()
	cf, err := db.CreateColumnFamily("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateColumnFamily("data"); err == nil {
		t.Fatal("duplicate CF must fail")
	}
	if _, err := db.CF("data"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CF("ghost"); err == nil {
		t.Fatal("missing CF must fail")
	}
	if cf.Name() != "data" {
		t.Fatal("CF name")
	}
	db.CreateColumnFamily("idx.a")
	names := db.ColumnFamilies()
	if len(names) != 2 || names[0] != "data" || names[1] != "idx.a" {
		t.Fatalf("ColumnFamilies = %v", names)
	}
}

func TestCFIsolation(t *testing.T) {
	db := testDB()
	a, _ := db.CreateColumnFamily("a")
	b, _ := db.CreateColumnFamily("b")
	a.Put([]byte("k"), []byte("va"))
	b.Put([]byte("k"), []byte("vb"))
	va, ok, _ := a.Get([]byte("k"), lsm.Access{})
	if !ok || !bytes.Equal(va, []byte("va")) {
		t.Fatal("CF a corrupted")
	}
	vb, ok, _ := b.Get([]byte("k"), lsm.Access{})
	if !ok || !bytes.Equal(vb, []byte("vb")) {
		t.Fatal("CF b corrupted")
	}
	a.Delete([]byte("k"))
	if _, ok, _ := a.Get([]byte("k"), lsm.Access{}); ok {
		t.Fatal("delete in a failed")
	}
	if _, ok, _ := b.Get([]byte("k"), lsm.Access{}); !ok {
		t.Fatal("delete in a leaked into b")
	}
}

func TestFlushAllAndStats(t *testing.T) {
	db := testDB()
	cf, _ := db.CreateColumnFamily("x")
	for i := 0; i < 1000; i++ {
		cf.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("v"))
	}
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	st := cf.Stats()
	if st.Entries < 1000 || st.SSTs == 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	pl := cf.Placement()
	if len(pl) < 2 || pl[0].Level != 0 {
		t.Fatalf("placement: %+v", pl)
	}
	if pl[0].MemEntries != 0 {
		t.Fatal("flush left memtable entries behind")
	}
	n := 0
	for it := cf.Scan(nil, nil, lsm.Access{}); it.Valid(); it.Next() {
		n++
	}
	if n != 1000 {
		t.Fatalf("scan found %d", n)
	}
}

func TestSnapshotCapturesSharedState(t *testing.T) {
	db := testDB()
	cf, _ := db.CreateColumnFamily("obj")
	for i := 0; i < 100; i++ {
		cf.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("flushed"))
	}
	cf.Flush()
	// Un-flushed modifications land in C0 and must appear in the snapshot.
	cf.Put([]byte("hot1"), []byte("v1"))
	cf.Delete([]byte("k005"))

	snap, err := db.TakeSnapshot([]string{"obj"})
	if err != nil {
		t.Fatal(err)
	}
	s := snap.CFs["obj"]
	if s.Name != "obj" {
		t.Fatal("snapshot name")
	}
	foundHot, foundTomb := false, false
	for _, e := range s.MemState {
		if bytes.Equal(e.Key, []byte("hot1")) && !e.Tombstone {
			foundHot = true
		}
		if bytes.Equal(e.Key, []byte("k005")) && e.Tombstone {
			foundTomb = true
		}
	}
	if !foundHot || !foundTomb {
		t.Fatalf("shared state incomplete: hot=%v tombstone=%v", foundHot, foundTomb)
	}
	if len(s.Placement) < 2 {
		t.Fatal("snapshot missing placement map")
	}
	if snap.Bytes() <= 0 {
		t.Fatal("snapshot size estimate")
	}
	if _, err := db.TakeSnapshot([]string{"ghost"}); err == nil {
		t.Fatal("snapshot of missing CF must fail")
	}
}

func TestDurableDBReopen(t *testing.T) {
	m := hw.Cosmos()
	fl := flash.New(m, 0)
	cfg := lsm.Config{MemTableBytes: 8 << 10, MaxL1Files: 4, LevelRatio: 4,
		BaseLevelBytes: 64 << 10, WALSyncBytes: 1 << 10}
	db := OpenDurable(fl, m, cfg)
	a, err := db.CreateColumnFamily("tbl.a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateColumnFamily("idx.b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		a.Put([]byte(fmt.Sprintf("a%05d", i)), []byte("va"))
		b.Put([]byte(fmt.Sprintf("b%05d", i)), []byte("vb"))
	}
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Un-flushed tail on one family, synced through its tree's WAL.
	a.Put([]byte("hot"), []byte("tail"))
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}

	// "Crash": reopen everything from the flash root.
	re, err := ReopenDB(fl, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := re.ColumnFamilies()
	if len(names) != 2 || names[0] != "idx.b" || names[1] != "tbl.a" {
		t.Fatalf("reopened families: %v", names)
	}
	ra, _ := re.CF("tbl.a")
	rb, _ := re.CF("idx.b")
	if v, ok, _ := ra.Get([]byte("a01234"), lsm.Access{}); !ok || string(v) != "va" {
		t.Fatalf("flushed data lost: %q %v", v, ok)
	}
	if v, ok, _ := ra.Get([]byte("hot"), lsm.Access{}); !ok || string(v) != "tail" {
		t.Fatalf("WAL tail lost: %q %v", v, ok)
	}
	n := 0
	for it := rb.Scan(nil, nil, lsm.Access{}); it.Valid(); it.Next() {
		n++
	}
	if n != 2000 {
		t.Fatalf("idx.b reopened with %d keys", n)
	}
	// The reopened database keeps logging: write, flush, reopen again.
	ra.Put([]byte("second"), []byte("gen"))
	if err := ra.Flush(); err != nil {
		t.Fatal(err)
	}
	re2, err := ReopenDB(fl, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra2, _ := re2.CF("tbl.a")
	if v, ok, _ := ra2.Get([]byte("second"), lsm.Access{}); !ok || string(v) != "gen" {
		t.Fatal("second-generation write lost")
	}
}

func TestReopenDBWithoutRootFails(t *testing.T) {
	m := hw.Cosmos()
	if _, err := ReopenDB(flash.New(m, 0), m, lsm.DefaultConfig()); err == nil {
		t.Fatal("reopen without a root must fail")
	}
}

func TestSnapshotBytesGrowWithState(t *testing.T) {
	db := testDB()
	cf, _ := db.CreateColumnFamily("obj")
	cf.Put([]byte("a"), []byte("1"))
	small, _ := db.TakeSnapshot([]string{"obj"})
	for i := 0; i < 500; i++ {
		cf.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("x"), 50))
	}
	big, _ := db.TakeSnapshot([]string{"obj"})
	if big.Bytes() <= small.Bytes() {
		t.Fatal("snapshot size must grow with un-flushed state")
	}
}
