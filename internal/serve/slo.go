package serve

import (
	"math"

	"hybridndp/internal/obs"
	"hybridndp/internal/vclock"
)

// LatencyBuckets is the fixed-bound ladder for request latency histograms:
// 64 geometric buckets from 1µs, ratio 10^(1/8) (~1.33×, eight buckets per
// decade), reaching ~80 virtual seconds. Fixed bounds keep the metrics dump
// byte-stable and make quantile estimates a deterministic function of the
// bucket counts alone.
var LatencyBuckets = makeLatencyBuckets()

func makeLatencyBuckets() []float64 {
	out := make([]float64, 64)
	ratio := math.Pow(10, 0.125)
	v := 1e3
	for i := range out {
		out[i] = math.Round(v)
		v *= ratio
	}
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of a fixed-bound histogram
// as the upper bound of the first bucket whose cumulative count reaches
// q×total — a conservative (never-underestimating) deterministic estimate.
// Samples in the +Inf overflow bucket report +Inf. Zero observations report
// zero.
func Quantile(h *obs.Histogram, q float64) vclock.Duration {
	bounds, counts := h.Buckets()
	if len(counts) == 0 {
		return 0
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			if i < len(bounds) {
				return vclock.Duration(bounds[i])
			}
			return vclock.Duration(math.Inf(1))
		}
	}
	return vclock.Duration(math.Inf(1))
}
