package serve

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"hybridndp/internal/vclock"
)

// ArrivalSpec describes an open-loop arrival process on virtual time. Unlike
// the closed-loop ServingMix replay, the offered load — not the completion of
// earlier queries — decides when the next request lands, so queues can
// actually build and tail latency means something. Three shapes:
//
//	poisson:<qps>                     stationary Poisson at <qps> per tenant
//	burst:<qps>:<period_ms>:<duty>:<mult>
//	                                  Poisson modulated by a square wave: for
//	                                  the first <duty> fraction of each
//	                                  <period_ms> window the rate is
//	                                  <qps>×<mult>, otherwise <qps>
//	trace:<ms>,<ms>,...               explicit arrival offsets in virtual ms,
//	                                  replayed identically by every tenant
//
// <qps> is the default per-tenant rate; a tenant's RateQPS overrides it.
// Generation is seeded per (seed, tenant) and burst windows are sampled with
// the memoryless redraw-at-boundary construction, so the stream is
// byte-deterministic for a given spec and seed.
type ArrivalSpec struct {
	Kind    string // "poisson", "burst" or "trace"
	Rate    float64
	Period  vclock.Duration
	Duty    float64
	Mult    float64
	Offsets []vclock.Duration
}

// DefaultArrival is a stationary Poisson process with the rate left to the
// tenant configuration (or calibration).
func DefaultArrival() ArrivalSpec { return ArrivalSpec{Kind: "poisson"} }

// ParseArrival parses the -arrival flag syntax described on ArrivalSpec.
func ParseArrival(s string) (ArrivalSpec, error) {
	parts := strings.Split(s, ":")
	switch parts[0] {
	case "poisson":
		spec := ArrivalSpec{Kind: "poisson"}
		if len(parts) > 2 {
			return spec, fmt.Errorf("serve: poisson spec %q: want poisson[:qps]", s)
		}
		if len(parts) == 2 {
			r, err := strconv.ParseFloat(parts[1], 64)
			if err != nil || r < 0 {
				return spec, fmt.Errorf("serve: bad poisson rate %q", parts[1])
			}
			spec.Rate = r
		}
		return spec, nil
	case "burst":
		if len(parts) != 5 {
			return ArrivalSpec{}, fmt.Errorf("serve: burst spec %q: want burst:<qps>:<period_ms>:<duty>:<mult>", s)
		}
		vals := make([]float64, 4)
		for i, p := range parts[1:] {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil || v < 0 {
				return ArrivalSpec{}, fmt.Errorf("serve: bad burst field %q", p)
			}
			vals[i] = v
		}
		spec := ArrivalSpec{Kind: "burst", Rate: vals[0],
			Period: vclock.Duration(vals[1]) * vclock.Millisecond, Duty: vals[2], Mult: vals[3]}
		if spec.Period <= 0 || spec.Duty <= 0 || spec.Duty >= 1 || spec.Mult < 1 {
			return spec, fmt.Errorf("serve: burst spec %q needs period>0, 0<duty<1, mult>=1", s)
		}
		return spec, nil
	case "trace":
		if len(parts) != 2 || parts[1] == "" {
			return ArrivalSpec{}, fmt.Errorf("serve: trace spec %q: want trace:<ms>,<ms>,...", s)
		}
		var offs []vclock.Duration
		for _, f := range strings.Split(parts[1], ",") {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil || v < 0 {
				return ArrivalSpec{}, fmt.Errorf("serve: bad trace offset %q", f)
			}
			offs = append(offs, vclock.Duration(v)*vclock.Millisecond)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		return ArrivalSpec{Kind: "trace", Offsets: offs}, nil
	}
	return ArrivalSpec{}, fmt.Errorf("serve: unknown arrival kind %q (want poisson, burst or trace)", s)
}

// String renders the spec back in flag syntax (ParseArrival round-trips it).
func (a ArrivalSpec) String() string {
	switch a.Kind {
	case "burst":
		return fmt.Sprintf("burst:%s:%s:%s:%s", trimFloat(a.Rate),
			trimFloat(a.Period.Milliseconds()), trimFloat(a.Duty), trimFloat(a.Mult))
	case "trace":
		offs := make([]string, len(a.Offsets))
		for i, o := range a.Offsets {
			offs[i] = trimFloat(o.Milliseconds())
		}
		return "trace:" + strings.Join(offs, ",")
	default:
		if a.Rate > 0 {
			return "poisson:" + trimFloat(a.Rate)
		}
		return "poisson"
	}
}

func trimFloat(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// times generates one tenant's arrival instants in [0, horizon) at the given
// base rate (queries per virtual second) from the tenant's seeded stream.
func (a ArrivalSpec) times(rng *rand.Rand, rate float64, horizon vclock.Duration) []vclock.Time {
	if horizon <= 0 {
		return nil
	}
	if a.Kind == "trace" {
		var out []vclock.Time
		for _, o := range a.Offsets {
			if o < horizon {
				out = append(out, vclock.Time(o))
			}
		}
		return out
	}
	if rate <= 0 {
		return nil
	}
	var out []vclock.Time
	end := horizon.Seconds()
	t := 0.0
	for t < end {
		lambda, segEnd := a.rateAt(t, rate, end)
		gap := rng.ExpFloat64() / lambda
		if t+gap >= segEnd {
			// The exponential is memoryless: jumping to the window boundary
			// and redrawing at the new rate samples the inhomogeneous process
			// exactly.
			if segEnd <= t {
				// Guard against float absorption right at a window boundary:
				// force strict progress to the next representable instant.
				segEnd = math.Nextafter(t, math.MaxFloat64)
			}
			t = segEnd
			continue
		}
		t += gap
		out = append(out, vclock.Time(t*float64(vclock.Second)))
	}
	return out
}

// rateAt reports the instantaneous rate at time t (seconds) and the end of
// the constant-rate window containing t. Window boundaries are derived from
// the window index, not from t itself — subtracting the phase from t and
// adding it back loses the boundary to float absorption when t sits just
// below it.
func (a ArrivalSpec) rateAt(t, base, end float64) (lambda, segEnd float64) {
	if a.Kind != "burst" {
		return base, end
	}
	period := a.Period.Seconds()
	k := math.Floor(t / period)
	onEnd := k*period + a.Duty*period
	if t < onEnd {
		return base * a.Mult, minF(end, onEnd)
	}
	return base, minF(end, (k+1)*period)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// tenantSeed derives one tenant's private PRNG seed from the run seed by an
// FNV-1a style mix, so adding a tenant never perturbs the others' streams.
func tenantSeed(seed int64, tenant int) int64 {
	h := uint64(1469598103934665603)
	for _, v := range []uint64{uint64(seed), uint64(tenant) + 0x9e3779b97f4a7c15} {
		h ^= v
		h *= 1099511628211
	}
	return int64(h >> 1)
}
