// Package serve is the serving front door over the hybridNDP stack: SQL
// sessions with prepared statements, a shared bounded plan cache, per-tenant
// token-bucket quotas, weighted fair queuing across tenants, and open-loop
// arrival generation with per-tenant SLO accounting.
//
// The whole layer is a deterministic discrete-event simulation on virtual
// time. Wall-clock parallelism exists only in Measure, which executes each
// distinct (query, strategy) pair once for real — independently
// deterministic, merged into pre-sized slots. The serving loop itself is
// single-threaded: arrivals, cache operations, fair-queue picks, lane
// placement and every metric recording happen in one goroutine in virtual-
// time order, which is what makes SLO tables and metrics dumps byte-identical
// across worker counts (the fleet/chaos determinism contract, extended to
// serving). Requests replay the memoized virtual service times; the queueing,
// caching and admission behavior — the object of study here — is simulated
// exactly on top of them.
//
// Placement model: HostLanes host execution lanes and DeviceSlots NDP command
// slots. Host-native runs occupy one host lane; full-NDP runs one device
// slot; hybrid splits occupy one of each for the run's duration (the host
// side of a cooperative run drives the device side). Per policy: force-host
// always takes the host lane; force-ndp takes a device slot whenever the plan
// fits device memory; adaptive compares earliest-completion across the host
// path and the decided device path (spilling host-decided queries to full NDP
// when feasible) and breaks ties toward the host.
package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"hybridndp/internal/coop"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/obs"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/query"
	"hybridndp/internal/sched"
	"hybridndp/internal/sql"
	"hybridndp/internal/vclock"
)

// TenantConfig describes one tenant's admission contract.
type TenantConfig struct {
	Name string
	// Weight is the deficit-round-robin share multiplier (≥ 1).
	Weight int
	// RateQPS is the tenant's offered arrival rate; 0 falls back to the
	// arrival spec's default rate.
	RateQPS float64
	// QuotaQPS is the token-bucket refill rate; 0 disables the quota.
	QuotaQPS float64
	// Burst is the token-bucket capacity (minimum 1).
	Burst int
	// SLO is the per-request virtual latency objective; 0 disables
	// miss accounting for the tenant.
	SLO vclock.Duration
	// Skew is the Zipf exponent for query selection (> 1 activates skew;
	// anything else selects uniformly). Tenants rotate the Zipf ranking so
	// their hot sets differ.
	Skew float64
}

// DefaultTenants builds n tenants with cycling 1/2/4 weights, a common SLO
// and moderate Zipf skew over the workload.
func DefaultTenants(n int, slo vclock.Duration) []TenantConfig {
	out := make([]TenantConfig, n)
	for i := range out {
		out[i] = TenantConfig{
			Name:   fmt.Sprintf("t%d", i),
			Weight: 1 << uint(i%3),
			SLO:    slo,
			Skew:   1.3,
		}
	}
	return out
}

// Config sizes one serving run.
type Config struct {
	Tenants []TenantConfig
	Arrival ArrivalSpec
	// Policy selects adaptive placement or one of the forced baselines.
	Policy sched.Policy
	// HostLanes bounds concurrent host-native executions (default: the
	// model's host core count).
	HostLanes int
	// DeviceSlots bounds concurrent device-resident executions (default 1,
	// the COSMOS+ single execution core).
	DeviceSlots int
	// QueueDepth bounds each tenant's admission queue across the three
	// priority classes (default 64).
	QueueDepth int
	// PlanCacheCap bounds the shared plan cache (default 256 entries).
	PlanCacheCap int
	// Quantum is the DRR base quantum in virtual time; a tenant earns
	// Quantum×Weight of service credit per scheduler round (default 1ms).
	Quantum vclock.Duration
	// Horizon is the arrival-generation window; queued work drains past it
	// (default 1 virtual second).
	Horizon vclock.Duration
	// Seed drives arrival generation and query selection (default 1).
	Seed int64
	// Metrics receives counters/histograms; nil uses a private registry
	// (the server always needs one for SLO accounting).
	Metrics *obs.Registry
	// Queries is the workload (default: the full 113-query JOB set).
	Queries []*query.Query
	// FleetSpec tags plan-cache keys with the device topology (default
	// "single").
	FleetSpec string
	// UseDeadlines turns tenant SLOs into hard per-request deadlines
	// (deadline = arrival + SLO): a picked request whose earliest feasible
	// completion already blows its deadline is shed (ErrDeadlineExceeded,
	// counted per tenant) instead of burning a lane on work nobody can use.
	// Tenants with SLO 0 are never shed. Off by default — SLOs then stay
	// observational, as before.
	UseDeadlines bool
}

func (c Config) withDefaults(m hw.Model) Config {
	if len(c.Tenants) == 0 {
		c.Tenants = DefaultTenants(2, 20*vclock.Millisecond)
	} else {
		c.Tenants = append([]TenantConfig(nil), c.Tenants...)
	}
	for i := range c.Tenants {
		if c.Tenants[i].Name == "" {
			c.Tenants[i].Name = fmt.Sprintf("t%d", i)
		}
		if c.Tenants[i].Weight < 1 {
			c.Tenants[i].Weight = 1
		}
	}
	if c.Arrival.Kind == "" {
		c.Arrival = DefaultArrival()
	}
	if c.HostLanes < 1 {
		c.HostLanes = m.HostCores
		if c.HostLanes < 1 {
			c.HostLanes = 1
		}
	}
	if c.DeviceSlots < 1 {
		c.DeviceSlots = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.PlanCacheCap < 1 {
		c.PlanCacheCap = 256
	}
	if c.Quantum <= 0 {
		c.Quantum = vclock.Millisecond
	}
	if c.Horizon <= 0 {
		c.Horizon = vclock.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FleetSpec == "" {
		c.FleetSpec = "single"
	}
	return c
}

// Server is one serving instance: sessions per tenant, the shared plan
// cache, and the open-loop executor over a measured cost table.
type Server struct {
	cfg     Config
	opt     *optimizer.Optimizer
	ct      *CostTable
	m       *obs.Registry
	cache   *PlanCache
	session []*Session
	queries []*query.Query
	epoch   int64
}

// New assembles a server over a loaded dataset and a measured cost table
// (Measure over the same workload). Every tenant gets a session with all
// workload queries prepared through the SQL front end — rendered to text,
// parsed back, validated — so serving exercises the full SQL-in path, not
// the hand-built query structs.
func New(ds *job.Dataset, ct *CostTable, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults(ds.Model)
	queries := cfg.Queries
	if len(queries) == 0 {
		queries = job.Queries()
	}
	if len(queries) == 0 {
		return nil, errors.New("serve: empty workload")
	}
	s := &Server{
		cfg:     cfg,
		opt:     optimizer.New(ds.Cat, ds.Model),
		ct:      ct,
		m:       cfg.Metrics,
		queries: queries,
	}
	if s.m == nil {
		s.m = obs.NewRegistry()
	}
	s.cache = NewPlanCache(cfg.PlanCacheCap, s.m)
	seen := map[string]bool{}
	for _, tc := range cfg.Tenants {
		if seen[tc.Name] {
			return nil, fmt.Errorf("serve: duplicate tenant name %q", tc.Name)
		}
		seen[tc.Name] = true
	}
	for _, q := range queries {
		if _, ok := ct.Cost(q.Name); !ok {
			return nil, fmt.Errorf("serve: cost table is missing workload query %s", q.Name)
		}
	}
	for _, tc := range cfg.Tenants {
		sess := NewSession(tc.Name, ds.Cat)
		for _, q := range queries {
			text, err := sql.Render(q)
			if err != nil {
				return nil, fmt.Errorf("serve: render %s: %w", q.Name, err)
			}
			if _, err := sess.Prepare(q.Name, text); err != nil {
				return nil, err
			}
		}
		s.session = append(s.session, sess)
	}
	return s, nil
}

// Session returns tenant i's session.
func (s *Server) Session(i int) *Session { return s.session[i] }

// Cache returns the shared plan cache.
func (s *Server) Cache() *PlanCache { return s.cache }

// Registry returns the metrics registry serving records into.
func (s *Server) Registry() *obs.Registry { return s.m }

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// BumpStatsEpoch advances the statistics epoch, invalidating every cached
// plan on next lookup (new keys miss; old entries age out via LRU).
func (s *Server) BumpStatsEpoch() { s.epoch++ }

// StatsEpoch reports the current statistics epoch.
func (s *Server) StatsEpoch() int64 { return s.epoch }

// PlanFor resolves tenant's prepared statement through the shared plan
// cache at virtual instant now, compiling on miss.
func (s *Server) PlanFor(tenant int, stmt string, now vclock.Time) (*optimizer.Decision, error) {
	prep, ok := s.session[tenant].Stmt(stmt)
	if !ok {
		return nil, fmt.Errorf("serve: tenant %s has no prepared statement %q", s.cfg.Tenants[tenant].Name, stmt)
	}
	return s.planFor(prep, now)
}

func (s *Server) planFor(p *Prepared, now vclock.Time) (*optimizer.Decision, error) {
	key := CacheKey{SQL: p.Norm, StatsEpoch: s.epoch, FleetSpec: s.cfg.FleetSpec}
	if d, ok := s.cache.Get(key, now); ok {
		return d, nil
	}
	d, err := s.opt.Decide(p.Query)
	if err != nil {
		return nil, fmt.Errorf("serve: compile %s: %w", p.Name, err)
	}
	s.cache.Put(key, d, now)
	return d, nil
}

// TenantResult is one tenant's SLO accounting for a run.
type TenantResult struct {
	Name                                              string
	Weight                                            int
	Requests, Completed, QuotaRejected, QueueRejected int
	// DeadlineRejected counts requests shed under Config.UseDeadlines because
	// their earliest feasible completion already blew arrival + SLO.
	DeadlineRejected int
	SLOMissed        int
	P50, P95, P99    vclock.Duration
	MeanLatency      vclock.Duration
	SLO              vclock.Duration
	MissRate         float64
}

// Result is one serving run's outcome.
type Result struct {
	Policy                                            sched.Policy
	Tenants                                           []TenantResult
	Requests, Completed, QuotaRejected, QueueRejected int
	DeadlineRejected                                  int
	Makespan                                          vclock.Duration
	ThroughputQPS                                     float64
	CacheHits, CacheMisses, CacheEvictions            int64
}

// lanes is the run's resource state: per-lane earliest-free instants.
type lanes struct {
	host []vclock.Time
	dev  []vclock.Time
}

func earliest(frees []vclock.Time) (int, vclock.Time) {
	bi, bt := 0, frees[0]
	for i := 1; i < len(frees); i++ {
		if frees[i] < bt {
			bi, bt = i, frees[i]
		}
	}
	return bi, bt
}

// placement is one dispatch choice: strategy, service time, lane indexes
// (-1 = unused) and the earliest start instant.
type placement struct {
	strat     coop.Strategy
	svc       vclock.Duration
	host, dev int
	start     vclock.Time
}

func (p placement) completion() vclock.Time { return p.start.Add(p.svc) }

// place chooses the placement for r under the configured policy given the
// current lane state. Deterministic: lane picks take the lowest free index,
// completion ties break toward the host path.
func (s *Server) place(r *request, now vclock.Time, L *lanes) (placement, error) {
	prep, ok := s.session[r.tenant].Stmt(r.name)
	if !ok {
		return placement{}, fmt.Errorf("serve: no prepared statement %q", r.name)
	}
	dec, err := s.planFor(prep, now)
	if err != nil {
		return placement{}, err
	}
	qc, ok := s.ct.Cost(r.name)
	if !ok {
		return placement{}, fmt.Errorf("serve: no measured cost for %q", r.name)
	}
	decided := decidedStrategy(dec)

	hi, hf := earliest(L.host)
	hostP := placement{
		strat: coop.Strategy{Kind: coop.HostNative}, svc: qc.Host,
		host: hi, dev: -1, start: vclock.MaxTime(now, hf),
	}
	switch s.cfg.Policy {
	case sched.ForceHost:
		return hostP, nil
	case sched.ForceNDP:
		if !qc.NDPFeasible {
			return hostP, nil
		}
		di, df := earliest(L.dev)
		return placement{
			strat: coop.Strategy{Kind: coop.NDPOnly}, svc: qc.NDP,
			host: -1, dev: di, start: vclock.MaxTime(now, df),
		}, nil
	}
	devStrat, devNs, hasDev := qc.devicePathFor(decided)
	if !hasDev {
		return hostP, nil
	}
	di, df := earliest(L.dev)
	devP := placement{strat: devStrat, svc: devNs, host: -1, dev: di}
	if devStrat.Kind == coop.Hybrid {
		// A cooperative run holds a host lane too: the host side drives the
		// device and merges above the split.
		devP.host = hi
		devP.start = vclock.MaxTime(vclock.MaxTime(now, hf), df)
	} else {
		devP.start = vclock.MaxTime(now, df)
	}
	if devP.completion() < hostP.completion() {
		return devP, nil
	}
	return hostP, nil
}

// devicePathFor reports the device-bound placement candidate given the
// cached decision's strategy: the decided split when device-bound, otherwise
// full NDP if feasible (adaptive's spill path under host overload).
func (qc *QueryCost) devicePathFor(decided coop.Strategy) (coop.Strategy, vclock.Duration, bool) {
	switch decided.Kind {
	case coop.Hybrid:
		return decided, qc.Dec, true
	case coop.NDPOnly:
		return decided, qc.NDP, true
	}
	if qc.NDPFeasible {
		return coop.Strategy{Kind: coop.NDPOnly}, qc.NDP, true
	}
	return coop.Strategy{}, 0, false
}

// genArrivals builds the merged, time-ordered open-loop arrival stream:
// per-tenant seeded processes, Zipf (or uniform) query selection with
// per-tenant rotation, priorities cycling high→normal→batch per tenant
// sequence number. Ordering ties break by (tenant, seq) — fully
// deterministic for a given (seed, spec, tenant set).
func (s *Server) genArrivals() []*request {
	var all []*request
	for ti := range s.cfg.Tenants {
		tc := s.cfg.Tenants[ti]
		rng := rand.New(rand.NewSource(tenantSeed(s.cfg.Seed, ti)))
		rate := tc.RateQPS
		if rate <= 0 {
			rate = s.cfg.Arrival.Rate
		}
		times := s.cfg.Arrival.times(rng, rate, s.cfg.Horizon)
		var zipf *rand.Zipf
		if tc.Skew > 1 && len(s.queries) > 1 {
			zipf = rand.NewZipf(rng, tc.Skew, 1, uint64(len(s.queries)-1))
		}
		for seq, at := range times {
			var qi int
			if zipf != nil {
				qi = int((zipf.Uint64() + uint64(ti)*37) % uint64(len(s.queries)))
			} else {
				qi = rng.Intn(len(s.queries))
			}
			q := s.queries[qi]
			qc, _ := s.ct.Cost(q.Name)
			all = append(all, &request{
				tenant: ti, seq: seq, name: q.Name,
				prio: sched.Priority(seq % 3), arrival: at, cost: qc.Host,
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].arrival != all[j].arrival {
			return all[i].arrival < all[j].arrival
		}
		if all[i].tenant != all[j].tenant {
			return all[i].tenant < all[j].tenant
		}
		return all[i].seq < all[j].seq
	})
	return all
}

// tenantAcc accumulates one tenant's per-run counts.
type tenantAcc struct {
	requests, completed, quotaRej, queueRej, deadlineRej, missed int
	latSum                                                       vclock.Duration
}

// admit classifies one arrival: nil (queued), ErrQuotaExceeded (token bucket
// dry) or sched.ErrQueueFull (tenant queue at depth). Counting happens here
// so the registry sees admission in arrival order.
func (s *Server) admit(r *request, now vclock.Time, w *wfq, b *tokenBucket, acc *tenantAcc) error {
	name := s.cfg.Tenants[r.tenant].Name
	s.m.Counter("serve.requests").Inc()
	s.m.Counter("serve.requests." + name).Inc()
	acc.requests++
	if !b.allow(now) {
		acc.quotaRej++
		s.m.Counter("serve.rejected.quota").Inc()
		s.m.Counter("serve.rejected.quota." + name).Inc()
		return fmt.Errorf("%w: tenant %s at %v", ErrQuotaExceeded, name, now)
	}
	if !w.push(r) {
		acc.queueRej++
		s.m.Counter("serve.rejected.queue_full").Inc()
		s.m.Counter("serve.rejected.queue_full." + name).Inc()
		return fmt.Errorf("%w: tenant %s queue at depth %d", sched.ErrQueueFull, name, s.cfg.QueueDepth)
	}
	s.m.Counter("serve.admitted").Inc()
	return nil
}

// shed classifies a picked request against its deadline (arrival + tenant
// SLO) under UseDeadlines: when the chosen placement's completion already
// blows the deadline, the request is rejected here — deadline propagation's
// serving-level analog of the scheduler's reject-on-arrival. Shedding at pick
// time is safe because lane frees only move later: no future placement of
// this request could complete earlier than the one just computed.
func (s *Server) shed(r *request, p placement, acc *tenantAcc) error {
	tc := s.cfg.Tenants[r.tenant]
	if !s.cfg.UseDeadlines || tc.SLO <= 0 {
		return nil
	}
	deadline := r.arrival.Add(tc.SLO)
	if p.completion() <= deadline {
		return nil
	}
	acc.deadlineRej++
	s.m.Counter("serve.rejected.deadline").Inc()
	s.m.Counter("serve.rejected.deadline." + tc.Name).Inc()
	return fmt.Errorf("%w: tenant %s completion %v past deadline %v",
		ErrDeadlineExceeded, tc.Name, p.completion(), deadline)
}

// Run executes one open-loop serving simulation and returns its SLO
// accounting. The loop is single-threaded on virtual time: it alternates
// between admitting the next arrival and dispatching the fair queue's next
// pick at its earliest feasible start, whichever comes first (arrival wins
// ties). The plan cache persists across runs on the same server, so a second
// Run observes steady-state hit rates.
func (s *Server) Run() (*Result, error) {
	arr := s.genArrivals()
	L := &lanes{host: make([]vclock.Time, s.cfg.HostLanes), dev: make([]vclock.Time, s.cfg.DeviceSlots)}
	w := newWFQ(s.cfg.Tenants, s.cfg.Quantum, s.cfg.QueueDepth)
	buckets := make([]tokenBucket, len(s.cfg.Tenants))
	for i := range s.cfg.Tenants {
		buckets[i] = newTokenBucket(s.cfg.Tenants[i].QuotaQPS, s.cfg.Tenants[i].Burst)
	}
	acc := make([]tenantAcc, len(s.cfg.Tenants))
	hitsBefore, missesBefore, evictsBefore := s.cacheCounters()

	var now, makespan vclock.Time
	ai := 0
	var pending *request
	var pendingP placement
	inf := vclock.Time(math.Inf(1))
	for ai < len(arr) || w.Len() > 0 || pending != nil {
		if pending == nil && w.Len() > 0 {
			pending = w.pick()
			p, err := s.place(pending, now, L)
			if err != nil {
				return nil, err
			}
			if err := s.shed(pending, p, &acc[pending.tenant]); err != nil {
				if !errors.Is(err, ErrDeadlineExceeded) {
					return nil, err
				}
				pending = nil
				continue
			}
			pendingP = p
		}
		tArr, tDis := inf, inf
		if ai < len(arr) {
			tArr = arr[ai].arrival
		}
		if pending != nil {
			tDis = pendingP.start
		}
		if tArr <= tDis {
			now = vclock.MaxTime(now, tArr)
			r := arr[ai]
			ai++
			// Open-loop clients do not retry: a quota or queue-full rejection
			// is terminal for the request and already accounted by class
			// inside admit. Anything else is a real failure.
			if err := s.admit(r, now, w, &buckets[r.tenant], &acc[r.tenant]); err != nil &&
				!errors.Is(err, ErrQuotaExceeded) && !errors.Is(err, sched.ErrQueueFull) {
				return nil, err
			}
			continue
		}
		now = vclock.MaxTime(now, tDis)
		comp := pendingP.completion()
		if pendingP.host >= 0 {
			L.host[pendingP.host] = comp
		}
		if pendingP.dev >= 0 {
			L.dev[pendingP.dev] = comp
		}
		s.recordDispatch(pending, pendingP, &acc[pending.tenant])
		if comp > makespan {
			makespan = comp
		}
		pending = nil
	}
	return s.result(acc, makespan, hitsBefore, missesBefore, evictsBefore), nil
}

// recordDispatch books one dispatched request's accounting: queue wait,
// end-to-end latency, SLO miss, strategy counters. All single-threaded, so
// histogram sums accumulate in a deterministic order.
func (s *Server) recordDispatch(r *request, p placement, acc *tenantAcc) {
	tc := s.cfg.Tenants[r.tenant]
	wait := p.start.Sub(r.arrival)
	lat := p.completion().Sub(r.arrival)
	acc.completed++
	acc.latSum += lat
	s.m.Counter("serve.completed").Inc()
	s.m.Counter("serve.completed." + tc.Name).Inc()
	s.m.Counter("serve.strategy." + p.strat.String()).Inc()
	s.m.Histogram("serve.queue.wait.ns", LatencyBuckets).Observe(float64(wait))
	s.m.Histogram("serve.latency.ns", LatencyBuckets).Observe(float64(lat))
	s.m.Histogram("serve.latency.ns."+tc.Name, LatencyBuckets).Observe(float64(lat))
	if tc.SLO > 0 && lat > tc.SLO {
		acc.missed++
		s.m.Counter("serve.slo.miss." + tc.Name).Inc()
	}
}

func (s *Server) cacheCounters() (hits, misses, evicts int64) {
	return s.cache.hits.Value(), s.cache.misses.Value(), s.cache.evictions.Value()
}

func (s *Server) result(acc []tenantAcc, makespan vclock.Time, h0, m0, e0 int64) *Result {
	res := &Result{Policy: s.cfg.Policy, Makespan: vclock.Duration(makespan)}
	h1, m1, e1 := s.cacheCounters()
	res.CacheHits, res.CacheMisses, res.CacheEvictions = h1-h0, m1-m0, e1-e0
	for i := range s.cfg.Tenants {
		tc := s.cfg.Tenants[i]
		a := acc[i]
		tr := TenantResult{
			Name: tc.Name, Weight: tc.Weight, SLO: tc.SLO,
			Requests: a.requests, Completed: a.completed,
			QuotaRejected: a.quotaRej, QueueRejected: a.queueRej,
			DeadlineRejected: a.deadlineRej,
			SLOMissed:        a.missed,
		}
		hist := s.m.Histogram("serve.latency.ns."+tc.Name, LatencyBuckets)
		tr.P50 = Quantile(hist, 0.50)
		tr.P95 = Quantile(hist, 0.95)
		tr.P99 = Quantile(hist, 0.99)
		if a.completed > 0 {
			tr.MeanLatency = a.latSum / vclock.Duration(a.completed)
			tr.MissRate = float64(a.missed) / float64(a.completed)
		}
		res.Tenants = append(res.Tenants, tr)
		res.Requests += a.requests
		res.Completed += a.completed
		res.QuotaRejected += a.quotaRej
		res.QueueRejected += a.queueRej
		res.DeadlineRejected += a.deadlineRej
	}
	if res.Makespan > 0 {
		res.ThroughputQPS = float64(res.Completed) / res.Makespan.Seconds()
	}
	return res
}
