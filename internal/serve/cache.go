package serve

import (
	"container/list"

	"hybridndp/internal/obs"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/vclock"
)

// CacheKey identifies one cached plan. Normalized SQL (sql.Normalize's
// canonical rendering) makes formatting-equivalent statements share an entry;
// the stats epoch invalidates every plan when table statistics move; the
// fleet spec keys plans to the device topology they were optimized for, so a
// resharded fleet never serves stale splits.
type CacheKey struct {
	SQL        string
	StatsEpoch int64
	FleetSpec  string
}

type cacheEntry struct {
	key CacheKey
	dec *optimizer.Decision
	// lastUsed is the virtual instant of the most recent hit; the LRU list
	// order is exactly descending lastUsed, making eviction a pure function
	// of the virtual clock rather than of wall-clock insertion races.
	lastUsed vclock.Time
}

// PlanCache is the shared, bounded plan cache behind every session.
// Eviction is strict LRU on virtual time. It is not internally synchronized:
// all access happens on the server's single-threaded event loop, which is
// also what keeps its obs counters byte-deterministic.
type PlanCache struct {
	capacity int
	entries  map[CacheKey]*list.Element
	lru      *list.List // front = most recently used

	hits, misses, evictions *obs.Counter
	size                    *obs.Gauge
}

// NewPlanCache returns an empty cache holding at most capacity plans,
// reporting hit/miss/eviction counters and a size gauge into m (which may be
// nil for a metric-less cache).
func NewPlanCache(capacity int, m *obs.Registry) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		capacity:  capacity,
		entries:   map[CacheKey]*list.Element{},
		lru:       list.New(),
		hits:      m.Counter("serve.cache.hit"),
		misses:    m.Counter("serve.cache.miss"),
		evictions: m.Counter("serve.cache.evict"),
		size:      m.Gauge("serve.cache.size"),
	}
}

// Get returns the cached decision for k, refreshing its LRU stamp to now.
func (c *PlanCache) Get(k CacheKey, now vclock.Time) (*optimizer.Decision, bool) {
	el, ok := c.entries[k]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	ent := el.Value.(*cacheEntry)
	ent.lastUsed = now
	c.lru.MoveToFront(el)
	return ent.dec, true
}

// Put inserts d under k (stamped now), evicting the least-recently-used
// entry when the cache is full. Re-putting an existing key refreshes it.
func (c *PlanCache) Put(k CacheKey, d *optimizer.Decision, now vclock.Time) {
	if el, ok := c.entries[k]; ok {
		ent := el.Value.(*cacheEntry)
		ent.dec = d
		ent.lastUsed = now
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		if back != nil {
			victim := back.Value.(*cacheEntry)
			delete(c.entries, victim.key)
			c.lru.Remove(back)
			c.evictions.Inc()
		}
	}
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, dec: d, lastUsed: now})
	c.size.SetInt(int64(c.lru.Len()))
}

// Len reports the live entry count.
func (c *PlanCache) Len() int { return c.lru.Len() }

// Oldest reports the least-recently-used entry's key and virtual-time stamp
// (zero values when empty) — the next eviction victim.
func (c *PlanCache) Oldest() (CacheKey, vclock.Time, bool) {
	back := c.lru.Back()
	if back == nil {
		return CacheKey{}, 0, false
	}
	ent := back.Value.(*cacheEntry)
	return ent.key, ent.lastUsed, true
}
