package serve

import (
	"errors"
	"fmt"

	"hybridndp/internal/query"
	"hybridndp/internal/sql"
	"hybridndp/internal/table"
)

// Serving-layer admission errors. ErrQuotaExceeded is deliberately distinct
// from sched.ErrQueueFull: a quota rejection means THIS tenant's token bucket
// ran dry while the system may be idle; queue-full means the tenant's bounded
// queue (the shared-capacity signal) overflowed. Capacity planning treats the
// two very differently, so callers can errors.Is on each.
var ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")

// ErrDeadlineExceeded marks a request shed because it could not complete
// within its deadline (arrival + tenant SLO, when Config.UseDeadlines is on).
// It is distinct from ErrQuotaExceeded (the tenant's own token bucket ran
// dry), from sched.ErrQueueFull (bounded-queue backpressure) and from
// sched.ErrExpired (a scheduler ticket aged out on the wall clock): a
// deadline shed means the system was too loaded to finish the work in time,
// and chose not to start it — capacity planning reads it as an overload
// signal, not an admission-policy one.
var ErrDeadlineExceeded = errors.New("serve: request deadline exceeded")

// Prepared is one prepared statement: SQL text compiled to the logical query
// model and re-rendered to its canonical form, which is the plan-cache key
// text shared by every session preparing an equivalent statement.
type Prepared struct {
	Name  string
	Query *query.Query
	Norm  string // canonical SQL (sql.Render of the parsed query)
}

// Session is one tenant connection: SQL text in, prepared statements held by
// name, resolved against the loaded catalog. Sessions own no execution
// resources — they feed the server's shared plan cache and admission layers.
type Session struct {
	Tenant string

	cat   *table.Catalog
	stmts map[string]*Prepared
	names []string // preparation order, for deterministic iteration
}

// NewSession opens a session for tenant over the catalog.
func NewSession(tenant string, cat *table.Catalog) *Session {
	return &Session{Tenant: tenant, cat: cat, stmts: map[string]*Prepared{}}
}

// Prepare parses and validates text and stores it under name, replacing any
// previous statement with that name.
func (s *Session) Prepare(name, text string) (*Prepared, error) {
	p, err := s.compile(text)
	if err != nil {
		return nil, fmt.Errorf("serve: prepare %s for %s: %w", name, s.Tenant, err)
	}
	p.Name = name
	p.Query.Name = name
	if _, exists := s.stmts[name]; !exists {
		s.names = append(s.names, name)
	}
	s.stmts[name] = p
	return p, nil
}

// Stmt returns the prepared statement by name.
func (s *Session) Stmt(name string) (*Prepared, bool) {
	p, ok := s.stmts[name]
	return p, ok
}

// Statements lists prepared-statement names in preparation order.
func (s *Session) Statements() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Query compiles one ad-hoc statement without storing it.
func (s *Session) Query(text string) (*Prepared, error) {
	p, err := s.compile(text)
	if err != nil {
		return nil, fmt.Errorf("serve: query for %s: %w", s.Tenant, err)
	}
	return p, nil
}

func (s *Session) compile(text string) (*Prepared, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(s.cat); err != nil {
		return nil, err
	}
	// Canonicalize through the renderer: equivalent statements share cache
	// keys regardless of formatting, and the round-trip property guarantees
	// the canonical text still compiles to this exact query.
	norm, err := sql.Render(q)
	if err != nil {
		return nil, err
	}
	return &Prepared{Name: q.Name, Query: q, Norm: norm}, nil
}
