package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"hybridndp/internal/coop"
	"hybridndp/internal/fault"
	"hybridndp/internal/fleet"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/obs"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/query"
	"hybridndp/internal/sched"
	"hybridndp/internal/vclock"
)

var (
	dsOnce sync.Once
	dsInst *job.Dataset
	ctInst *CostTable
	dsErr  error
)

// fixture loads the JOB dataset once and measures the full workload's cost
// table (shared by every test; Measure itself is deterministic).
func fixture(t *testing.T) (*job.Dataset, *CostTable) {
	t.Helper()
	dsOnce.Do(func() {
		dsInst, dsErr = job.Load(0.004, hw.Cosmos())
		if dsErr != nil {
			return
		}
		ctInst, dsErr = Measure(dsInst, job.Queries(), 8)
	})
	if dsErr != nil {
		t.Fatalf("fixture: %v", dsErr)
	}
	return dsInst, ctInst
}

func subset(n int) []*query.Query {
	qs := job.Queries()
	if n > len(qs) {
		n = len(qs)
	}
	return qs[:n]
}

func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(2, 2) // 2 tokens/s, burst 2, starts full
	now := vclock.Time(0)
	if !b.allow(now) || !b.allow(now) {
		t.Fatal("burst tokens should admit two requests")
	}
	if b.allow(now) {
		t.Fatal("third request at t=0 should be rejected")
	}
	now = now.Add(500 * vclock.Millisecond) // refills 1 token
	if !b.allow(now) {
		t.Fatal("want one token after 500ms at 2 qps")
	}
	if b.allow(now) {
		t.Fatal("second request after refill should be rejected")
	}
	disabled := newTokenBucket(0, 1)
	for i := 0; i < 100; i++ {
		if !disabled.allow(now) {
			t.Fatal("rate 0 disables the quota")
		}
	}
}

func TestArrivalSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"poisson", "poisson:250", "poisson:12.5",
		"burst:100:50:0.2:5", "burst:80:10:0.5:1",
		"trace:0,1,2.5,10",
	} {
		spec, err := ParseArrival(s)
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
	for _, s := range []string{
		"", "fifo", "poisson:-1", "poisson:1:2",
		"burst:100:0:0.2:5", "burst:100:50:1.5:5", "burst:100:50:0.2:0.5",
		"burst:100:50", "trace:", "trace:1,x",
	} {
		if _, err := ParseArrival(s); err == nil {
			t.Fatalf("ParseArrival(%q) should fail", s)
		}
	}
}

func TestArrivalTimesDeterministic(t *testing.T) {
	spec, err := ParseArrival("burst:200:20:0.25:4")
	if err != nil {
		t.Fatal(err)
	}
	horizon := vclock.Duration(500 * vclock.Millisecond)
	gen := func() []vclock.Time {
		rng := rand.New(rand.NewSource(tenantSeed(42, 1)))
		return spec.times(rng, spec.Rate, horizon)
	}
	a, b := gen(), gen()
	if len(a) == 0 {
		t.Fatal("burst process generated no arrivals")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed must reproduce the identical arrival stream")
	}
	for i, at := range a {
		if at >= vclock.Time(horizon) {
			t.Fatalf("arrival %d at %v beyond horizon", i, at)
		}
		if i > 0 && at < a[i-1] {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
	if s2 := tenantSeed(42, 2); s2 == tenantSeed(42, 1) || s2 < 0 {
		t.Fatal("tenant seeds must differ and stay non-negative")
	}
}

func TestTenantQueueAging(t *testing.T) {
	tq := &tenantQueue{depth: 16}
	mk := func(prio sched.Priority, at vclock.Time) *request {
		return &request{prio: prio, arrival: at}
	}
	oldBatch := mk(sched.Batch, 1)
	tq.push(oldBatch)
	for i := 2; i <= 5; i++ {
		tq.push(mk(sched.High, vclock.Time(i)))
	}
	for i := 0; i < 3; i++ {
		if got := tq.pop(); got.prio != sched.High {
			t.Fatalf("pop %d: want high-priority, got %v", i, got.prio)
		}
	}
	if got := tq.pop(); got != oldBatch {
		t.Fatalf("4th pop must take the oldest request (aging), got %+v", got)
	}
	if got := tq.peek(); got == nil || got.arrival != 5 {
		t.Fatalf("peek after aging pop: %+v", got)
	}
}

func TestWFQProportionalShare(t *testing.T) {
	tenants := []TenantConfig{{Name: "a", Weight: 1}, {Name: "b", Weight: 2}}
	q := vclock.Millisecond
	w := newWFQ(tenants, q, 64)
	for i := 0; i < 30; i++ {
		w.push(&request{tenant: 0, seq: i, cost: q})
		w.push(&request{tenant: 1, seq: i, cost: q})
	}
	counts := [2]int{}
	for i := 0; i < 30; i++ {
		r := w.pick()
		counts[r.tenant]++
	}
	if counts[0] != 10 || counts[1] != 20 {
		t.Fatalf("DRR with weights 1:2 over equal-cost work: got %v, want [10 20]", counts)
	}
}

func TestPlanCacheLRU(t *testing.T) {
	m := obs.NewRegistry()
	c := NewPlanCache(2, m)
	d := &optimizer.Decision{}
	key := func(s string) CacheKey { return CacheKey{SQL: s, FleetSpec: "single"} }
	c.Put(key("a"), d, 1)
	c.Put(key("b"), d, 2)
	if _, ok := c.Get(key("a"), 3); !ok {
		t.Fatal("a should be cached")
	}
	// b is now LRU; inserting c must evict b, not a.
	c.Put(key("c"), d, 4)
	if _, ok := c.Get(key("b"), 5); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get(key("a"), 6); !ok {
		t.Fatal("a should have survived eviction")
	}
	if k, at, ok := c.Oldest(); !ok || k != key("c") || at != 4 {
		t.Fatalf("oldest = %v@%v, want c@4", k, at)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if h, ms, ev := m.Counter("serve.cache.hit").Value(), m.Counter("serve.cache.miss").Value(), m.Counter("serve.cache.evict").Value(); h != 2 || ms != 1 || ev != 1 {
		t.Fatalf("counters hit=%d miss=%d evict=%d, want 2/1/1", h, ms, ev)
	}
	// Epoch and fleet-spec changes key distinct entries.
	if _, ok := c.Get(CacheKey{SQL: "a", StatsEpoch: 1, FleetSpec: "single"}, 7); ok {
		t.Fatal("stats-epoch bump must miss")
	}
	if _, ok := c.Get(CacheKey{SQL: "a", FleetSpec: "shard:2"}, 8); ok {
		t.Fatal("fleet-spec change must miss")
	}
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	ds, ct := fixture(t)
	s, err := New(ds, ct, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// TestPlanCacheCorrectness is the cache acceptance test: a hit returns a plan
// byte-identical to a cold compile and executes identically; a stats-epoch
// bump invalidates.
func TestPlanCacheCorrectness(t *testing.T) {
	ds, _ := fixture(t)
	s := newServer(t, Config{Queries: subset(6), Tenants: DefaultTenants(2, 0)})
	name := subset(6)[0].Name

	cold, err := s.PlanFor(0, name, 1)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := s.PlanFor(0, name, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hit != cold {
		t.Fatal("second lookup must be served from the cache (same decision)")
	}
	// Tenant 1 prepared the same statement: normalized SQL shares the entry.
	other, err := s.PlanFor(1, name, 3)
	if err != nil {
		t.Fatal(err)
	}
	if other != cold {
		t.Fatal("equivalent statements from different sessions must share the cache entry")
	}
	if h := s.Cache().hits.Value(); h != 2 {
		t.Fatalf("cache hits = %d, want 2", h)
	}

	// Byte-identical to an independent cold compile, and executes identically.
	prep, _ := s.Session(0).Stmt(name)
	fresh, err := optimizer.New(ds.Cat, ds.Model).Decide(prep.Query)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Plan.String() != fresh.Plan.String() {
		t.Fatal("cached plan differs from cold compile")
	}
	ex := coop.NewExecutor(ds.Cat, ds.DB, ds.Model)
	repCached, err := ex.Run(cold.Plan, decidedStrategy(cold))
	if err != nil {
		t.Fatal(err)
	}
	repFresh, err := ex.Run(fresh.Plan, decidedStrategy(fresh))
	if err != nil {
		t.Fatal(err)
	}
	if repCached.Elapsed != repFresh.Elapsed {
		t.Fatalf("cached plan executed in %v, cold compile in %v", repCached.Elapsed, repFresh.Elapsed)
	}

	misses := s.Cache().misses.Value()
	s.BumpStatsEpoch()
	bumped, err := s.PlanFor(0, name, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cache().misses.Value(); got != misses+1 {
		t.Fatal("stats-epoch bump must invalidate the cached plan")
	}
	if bumped.Plan.String() != cold.Plan.String() {
		t.Fatal("recompile after epoch bump should produce the same plan (stats unchanged)")
	}
}

func TestMeasureWorkerInvariance(t *testing.T) {
	ds, _ := fixture(t)
	qs := subset(16)
	a, err := Measure(ds, qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(ds, qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		ca, _ := a.Cost(q.Name)
		cb, _ := b.Cost(q.Name)
		if ca.Host != cb.Host || ca.Dec != cb.Dec || ca.NDP != cb.NDP ||
			ca.NDPFeasible != cb.NDPFeasible || ca.Decided != cb.Decided ||
			ca.Decision.Plan.String() != cb.Decision.Plan.String() {
			t.Fatalf("%s: cost table differs across worker counts:\n%+v\n%+v", q.Name, ca, cb)
		}
	}
	if a.MeanHost() != b.MeanHost() {
		t.Fatal("mean host cost differs across worker counts")
	}
}

func TestAdmitTypedErrors(t *testing.T) {
	s := newServer(t, Config{
		Queries:    subset(4),
		Tenants:    []TenantConfig{{Name: "t0", QuotaQPS: 0.001, Burst: 1}},
		QueueDepth: 1,
	})
	w := newWFQ(s.cfg.Tenants, s.cfg.Quantum, s.cfg.QueueDepth)
	bucket := newTokenBucket(s.cfg.Tenants[0].QuotaQPS, s.cfg.Tenants[0].Burst)
	var acc tenantAcc
	r := &request{tenant: 0, name: subset(4)[0].Name, cost: vclock.Millisecond}
	if err := s.admit(r, 0, w, &bucket, &acc); err != nil {
		t.Fatalf("first request should pass the burst token: %v", err)
	}
	err := s.admit(r, 0, w, &bucket, &acc)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("dry token bucket: got %v, want ErrQuotaExceeded", err)
	}
	if errors.Is(err, sched.ErrQueueFull) {
		t.Fatal("quota rejection must not read as queue-full")
	}
	// Disable the quota: the depth-1 queue already holds one request.
	open := newTokenBucket(0, 1)
	err = s.admit(r, 0, w, &open, &acc)
	if !errors.Is(err, sched.ErrQueueFull) {
		t.Fatalf("full tenant queue: got %v, want sched.ErrQueueFull", err)
	}
	if errors.Is(err, ErrQuotaExceeded) {
		t.Fatal("queue-full rejection must not read as quota")
	}
	if acc.quotaRej != 1 || acc.queueRej != 1 || acc.requests != 3 {
		t.Fatalf("accounting: %+v", acc)
	}
}

func TestQuantile(t *testing.T) {
	m := obs.NewRegistry()
	h := m.Histogram("q", []float64{10, 20, 30})
	if got := Quantile(h, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for _, v := range []float64{5, 15, 15, 25} {
		h.Observe(v)
	}
	if got := Quantile(h, 0.5); got != 20 {
		t.Fatalf("p50 = %v, want 20", got)
	}
	if got := Quantile(h, 1.0); got != 30 {
		t.Fatalf("p100 = %v, want 30", got)
	}
	h.Observe(99) // overflow bucket
	if got := Quantile(h, 1.0); !math.IsInf(float64(got), 1) {
		t.Fatalf("overflow quantile = %v, want +Inf", got)
	}
}

func serveCfg(queries []*query.Query, policy sched.Policy, seed int64) Config {
	return Config{
		Queries: queries,
		Tenants: []TenantConfig{
			{Name: "gold", Weight: 4, SLO: 5 * vclock.Millisecond, Skew: 1.3},
			{Name: "silver", Weight: 2, SLO: 10 * vclock.Millisecond, Skew: 1.3},
			{Name: "bronze", Weight: 1, SLO: 20 * vclock.Millisecond, Skew: 1.3, QuotaQPS: 120, Burst: 4},
		},
		Arrival: ArrivalSpec{Kind: "poisson", Rate: 250},
		Policy:  policy,
		Horizon: 500 * vclock.Millisecond,
		Seed:    seed,
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() (string, string) {
		s := newServer(t, serveCfg(subset(16), sched.Adaptive, 7))
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", res), s.Registry().Dump()
	}
	r1, d1 := run()
	r2, d2 := run()
	if r1 != r2 {
		t.Fatalf("results differ across identical runs:\n%s\n%s", r1, r2)
	}
	if d1 != d2 {
		t.Fatal("metrics dumps differ across identical runs")
	}
	if !strings.Contains(d1, "serve.cache.hit") || !strings.Contains(d1, "serve.latency.ns.gold") {
		t.Fatalf("dump is missing serve metrics:\n%s", d1)
	}
	s3 := newServer(t, serveCfg(subset(16), sched.Adaptive, 8))
	res3, err := s3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", res3) == r1 {
		t.Fatal("different seeds should produce different runs")
	}
}

func TestRunAccounting(t *testing.T) {
	s := newServer(t, serveCfg(subset(16), sched.Adaptive, 11))
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Completed == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.Completed+res.QuotaRejected+res.QueueRejected != res.Requests {
		t.Fatalf("request conservation: %+v", res)
	}
	m := s.Registry()
	if got := m.Counter("serve.requests").Value(); got != int64(res.Requests) {
		t.Fatalf("serve.requests = %d, want %d", got, res.Requests)
	}
	if got := m.Counter("serve.completed").Value(); got != int64(res.Completed) {
		t.Fatalf("serve.completed = %d, want %d", got, res.Completed)
	}
	var misses int
	for _, tr := range res.Tenants {
		misses += tr.SLOMissed
		if tr.Completed > 0 && (tr.P50 <= 0 || tr.P95 < tr.P50 || tr.P99 < tr.P95) {
			t.Fatalf("%s: quantiles not monotone: %+v", tr.Name, tr)
		}
		if got := m.Counter("serve.slo.miss." + tr.Name).Value(); got != int64(tr.SLOMissed) {
			t.Fatalf("%s: slo miss counter %d != result %d", tr.Name, got, tr.SLOMissed)
		}
	}
	if res.Makespan <= 0 || res.ThroughputQPS <= 0 {
		t.Fatalf("makespan/throughput: %+v", res)
	}
}

// TestCacheSteadyState is the hit-rate acceptance: after the cold compiles a
// workload-sized cache serves >90% of lookups, and a warm second run misses
// never.
func TestCacheSteadyState(t *testing.T) {
	cfg := serveCfg(subset(16), sched.Adaptive, 3)
	cfg.Horizon = vclock.Second
	s := newServer(t, cfg)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := res.CacheHits + res.CacheMisses
	if total == 0 {
		t.Fatal("no cache traffic")
	}
	if rate := float64(res.CacheHits) / float64(total); rate <= 0.9 {
		t.Fatalf("steady-state hit rate %.3f (hits=%d misses=%d), want > 0.9", rate, res.CacheHits, res.CacheMisses)
	}
	if res.CacheMisses > int64(len(subset(16))) {
		t.Fatalf("misses %d exceed distinct statements %d (cap is large enough)", res.CacheMisses, len(subset(16)))
	}
	res2, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheMisses != 0 {
		t.Fatalf("warm run missed %d times", res2.CacheMisses)
	}
}

// TestDeadlineErrorDistinct pins the serving-layer admission-error contract:
// a deadline shed is its own typed sentinel, distinguishable (errors.Is) from
// quota rejections, queue backpressure and scheduler ticket expiry.
func TestDeadlineErrorDistinct(t *testing.T) {
	s := newServer(t, Config{
		Queries:      subset(4),
		Tenants:      []TenantConfig{{Name: "t0", SLO: vclock.Microsecond}},
		UseDeadlines: true,
	})
	var acc tenantAcc
	r := &request{tenant: 0, name: subset(4)[0].Name, arrival: 0}
	p := placement{svc: vclock.Millisecond, start: 0, host: 0, dev: -1}
	err := s.shed(r, p, &acc)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("shed past deadline: got %v, want ErrDeadlineExceeded", err)
	}
	if errors.Is(err, ErrQuotaExceeded) || errors.Is(err, sched.ErrQueueFull) || errors.Is(err, sched.ErrExpired) {
		t.Fatalf("deadline shed must not read as quota/queue-full/sched-expired: %v", err)
	}
	if acc.deadlineRej != 1 {
		t.Fatalf("deadlineRej = %d, want 1", acc.deadlineRej)
	}
	// Within the deadline: no shed.
	fast := placement{svc: vclock.Duration(100), start: 0, host: 0, dev: -1}
	if err := s.shed(r, fast, &acc); err != nil {
		t.Fatalf("placement inside deadline shed anyway: %v", err)
	}
	// Deadlines off: never shed.
	s.cfg.UseDeadlines = false
	if err := s.shed(r, p, &acc); err != nil {
		t.Fatalf("UseDeadlines off must never shed: %v", err)
	}
}

// TestDeadlineShedding runs the open-loop simulation with hard deadlines on:
// under overload a tight-SLO tenant sheds work (DeadlineRejected > 0), the
// request-conservation identity extends to the new class, every completed
// request of a shedding tenant met its deadline, and the run stays
// byte-deterministic.
func TestDeadlineShedding(t *testing.T) {
	cfg := serveCfg(subset(16), sched.ForceHost, 7)
	cfg.UseDeadlines = true
	// Saturate the host lanes so queue waits push completions past the SLOs.
	cfg.Arrival.Rate = 4000
	for i := range cfg.Tenants {
		cfg.Tenants[i].SLO = 2 * vclock.Millisecond
		cfg.Tenants[i].QuotaQPS = 0
	}
	run := func() (*Result, string) {
		s := newServer(t, cfg)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, fmt.Sprintf("%+v", res)
	}
	res, r1 := run()
	_, r2 := run()
	if r1 != r2 {
		t.Fatalf("deadline runs differ across identical configs:\n%s\n%s", r1, r2)
	}
	if res.DeadlineRejected == 0 {
		t.Fatalf("overloaded force-host run with hard deadlines shed nothing: %+v", res)
	}
	if res.Completed+res.QuotaRejected+res.QueueRejected+res.DeadlineRejected != res.Requests {
		t.Fatalf("request conservation with deadline shedding: %+v", res)
	}
	for _, tr := range res.Tenants {
		if tr.SLO > 0 && tr.DeadlineRejected > 0 && tr.SLOMissed > 0 {
			t.Fatalf("%s: hard deadlines on, yet a dispatched request missed its SLO: %+v", tr.Name, tr)
		}
	}
	off := cfg
	off.UseDeadlines = false
	s3 := newServer(t, off)
	res3, err := s3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res3.DeadlineRejected != 0 {
		t.Fatalf("UseDeadlines off still shed: %+v", res3)
	}
}

// TestMeasureFleet covers the fleet-aware cost measurement: fault-free fleet
// measurement agrees with the coop table on the host column, a device-scoped
// stall inflates the measured device paths (and only those), hedging caps the
// inflation, every fleet result fingerprint-matches host execution (or the
// measurement errors), and the table is byte-identical across worker counts.
func TestMeasureFleet(t *testing.T) {
	ds, ct := fixture(t)
	qs := subset(12)
	desc, err := fleet.Build(ds.Cat, 4, "range")
	if err != nil {
		t.Fatal(err)
	}
	newFX := func(spec string, hedge bool) *fleet.Executor {
		fx := fleet.NewExecutor(ds.Cat, ds.DB, ds.Model, desc)
		if spec != "" {
			pl, err := fault.Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			fx.Faults = pl
		}
		if hedge {
			fx.Hedge = fleet.HedgeConfig{Enabled: true}
		}
		return fx
	}

	clean, err := MeasureFleet(ds, qs, newFX("", false), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		qc, _ := clean.Cost(q.Name)
		ref, _ := ct.Cost(q.Name)
		if qc.Host != ref.Host {
			t.Fatalf("%s: fleet-measured host %v != coop-measured host %v", q.Name, qc.Host, ref.Host)
		}
	}

	stalled, err := MeasureFleet(ds, qs, newFX("dev1:dev.stall=2ms", false), 8)
	if err != nil {
		t.Fatal(err)
	}
	inflated := 0
	for _, q := range qs {
		sc, _ := stalled.Cost(q.Name)
		cc, _ := clean.Cost(q.Name)
		if sc.Host != cc.Host {
			t.Fatalf("%s: a device-scoped stall moved the host column: %v vs %v", q.Name, sc.Host, cc.Host)
		}
		if sc.NDPFeasible && sc.NDP > cc.NDP {
			inflated++
		}
	}
	if inflated == 0 {
		t.Fatal("dev1:dev.stall=2ms inflated no device path across the subset")
	}

	hedged, err := MeasureFleet(ds, qs, newFX("dev1:dev.stall=2ms", true), 8)
	if err != nil {
		t.Fatal(err)
	}
	capped := 0
	for _, q := range qs {
		hc, _ := hedged.Cost(q.Name)
		sc, _ := stalled.Cost(q.Name)
		if hc.NDPFeasible && hc.NDP < sc.NDP {
			capped++
		}
		if hc.NDPFeasible && hc.NDP > sc.NDP {
			t.Fatalf("%s: hedging made the stalled NDP path slower: %v > %v", q.Name, hc.NDP, sc.NDP)
		}
	}
	if capped == 0 {
		t.Fatal("hedging capped no stalled device path across the subset")
	}

	again, err := MeasureFleet(ds, qs, newFX("dev1:dev.stall=2ms", true), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		a, _ := again.Cost(q.Name)
		b, _ := hedged.Cost(q.Name)
		if a.Decided != b.Decided || a.Host != b.Host || a.Dec != b.Dec ||
			a.NDP != b.NDP || a.NDPFeasible != b.NDPFeasible {
			t.Fatalf("%s: MeasureFleet differs across worker counts: %+v vs %+v", q.Name, a, b)
		}
	}
}
