package serve

import (
	"hybridndp/internal/sched"
	"hybridndp/internal/vclock"
)

// request is one open-loop arrival flowing through admission → WFQ → lanes.
type request struct {
	tenant  int
	seq     int
	name    string // workload query name (prepared-statement key)
	prio    sched.Priority
	arrival vclock.Time
	// cost is the request's host-path service estimate, the work unit the
	// deficit-round-robin scheduler charges against tenant deficits. Using
	// the same canonical cost for every placement keeps the fair-share
	// arithmetic independent of the policy under test.
	cost vclock.Duration
}

// tokenBucket enforces one tenant's admission quota on virtual time.
type tokenBucket struct {
	rate   float64 // tokens per virtual second; <= 0 disables the quota
	burst  float64
	tokens float64
	last   vclock.Time
}

func newTokenBucket(rate float64, burst int) tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// allow consumes one token at virtual instant now, refilling first.
func (b *tokenBucket) allow(now vclock.Time) bool {
	if b.rate <= 0 {
		return true
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// tenantQueue is one tenant's bounded admission queue: the scheduler's
// three-priority shape with the same aging rule (every fourth pop takes the
// oldest request regardless of class), re-keyed on virtual arrival time.
type tenantQueue struct {
	classes  [3][]*request
	size     int
	depth    int
	popCount uint64
}

// push appends r to its class; false means the tenant's queue is full.
func (t *tenantQueue) push(r *request) bool {
	if t.size >= t.depth {
		return false
	}
	t.classes[r.prio] = append(t.classes[r.prio], r)
	t.size++
	return true
}

// choose picks the class the NEXT pop will take from, without mutating
// state, so peek and pop always agree.
func (t *tenantQueue) choose() int {
	if (t.popCount+1)%4 == 0 {
		pick := -1
		var oldest vclock.Time
		for c := range t.classes {
			if len(t.classes[c]) == 0 {
				continue
			}
			if h := t.classes[c][0]; pick < 0 || h.arrival < oldest {
				pick, oldest = c, h.arrival
			}
		}
		return pick
	}
	for c := range t.classes {
		if len(t.classes[c]) > 0 {
			return c
		}
	}
	return -1
}

// peek returns the request the next pop will dispatch (nil when empty).
func (t *tenantQueue) peek() *request {
	c := t.choose()
	if c < 0 {
		return nil
	}
	return t.classes[c][0]
}

func (t *tenantQueue) pop() *request {
	c := t.choose()
	if c < 0 {
		return nil
	}
	t.popCount++
	r := t.classes[c][0]
	t.classes[c] = t.classes[c][1:]
	t.size--
	return r
}

// wfq is the cross-tenant weighted fair queue: classic deficit round robin
// over the per-tenant priority queues. Each visit to a backlogged tenant
// grants quantum×weight virtual nanoseconds of deficit; a tenant dispatches
// while its deficit covers the head request's canonical cost. Tenant order is
// the configuration order, so tie-breaking is deterministic by construction.
type wfq struct {
	qs      []*tenantQueue
	deficit []float64
	quantum []float64
	rr      int
	total   int
}

func newWFQ(tenants []TenantConfig, quantum vclock.Duration, depth int) *wfq {
	w := &wfq{
		qs:      make([]*tenantQueue, len(tenants)),
		deficit: make([]float64, len(tenants)),
		quantum: make([]float64, len(tenants)),
	}
	for i, tc := range tenants {
		w.qs[i] = &tenantQueue{depth: depth}
		weight := tc.Weight
		if weight < 1 {
			weight = 1
		}
		w.quantum[i] = float64(quantum) * float64(weight)
	}
	return w
}

// push enqueues r on its tenant's queue; false means that queue is full.
func (w *wfq) push(r *request) bool {
	if !w.qs[r.tenant].push(r) {
		return false
	}
	w.total++
	return true
}

// Len reports the queued request count across tenants.
func (w *wfq) Len() int { return w.total }

// pick dispatches the next request under deficit round robin, or nil when
// every queue is empty. An empty tenant forfeits its deficit (standard DRR:
// idle tenants must not bank credit).
func (w *wfq) pick() *request {
	if w.total == 0 {
		return nil
	}
	for {
		ti := w.rr % len(w.qs)
		tq := w.qs[ti]
		if tq.size == 0 {
			w.deficit[ti] = 0
			w.rr++
			continue
		}
		head := tq.peek()
		if w.deficit[ti] < float64(head.cost) {
			w.deficit[ti] += w.quantum[ti]
			w.rr++
			continue
		}
		w.deficit[ti] -= float64(head.cost)
		w.total--
		return tq.pop()
	}
}
