package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hybridndp/internal/coop"
	"hybridndp/internal/device"
	"hybridndp/internal/fleet"
	"hybridndp/internal/job"
	"hybridndp/internal/optimizer"
	"hybridndp/internal/query"
	"hybridndp/internal/vclock"
)

// QueryCost is one workload query's measured virtual service times, the
// inputs to open-loop placement. Every distinct (query, strategy) pair runs
// exactly once for real through the cooperative executor; the serving loop
// then replays the memoized durations. That memoization is exact, not an
// approximation: executions use fresh per-run engines and virtual timelines,
// so a query's elapsed under a strategy is a constant of the dataset seed
// (the same property the parallel sweep runner rests on).
type QueryCost struct {
	Decision *optimizer.Decision
	Decided  coop.Strategy
	// Host is the host-native elapsed time (always available — the fallback
	// lane of every policy, and the canonical DRR work unit).
	Host vclock.Duration
	// Dec is the decided strategy's elapsed (equal to Host when the decision
	// is host-native).
	Dec vclock.Duration
	// NDP is the full-NDP elapsed when the whole plan fits device memory.
	NDP         vclock.Duration
	NDPFeasible bool
}

// CostTable holds measured costs for a whole workload, shareable across
// servers (the SLO sweep measures once and serves three policies from it).
type CostTable struct {
	byName   map[string]*QueryCost
	names    []string
	meanHost vclock.Duration
}

// Cost returns one query's measured costs.
func (ct *CostTable) Cost(name string) (*QueryCost, bool) {
	qc, ok := ct.byName[name]
	return qc, ok
}

// MeanHostNs reports the unweighted mean host-native service time.
func (ct *CostTable) MeanHost() vclock.Duration { return ct.meanHost }

// HostCapacityQPS estimates the host-only saturation throughput for `lanes`
// host lanes under a uniform query mix — the calibration anchor for overload
// scenarios (offered load above this rate must queue under force-host).
func (ct *CostTable) HostCapacityQPS(lanes int) float64 {
	if lanes < 1 {
		lanes = 1
	}
	if ct.meanHost <= 0 {
		return 0
	}
	return float64(lanes) / ct.meanHost.Seconds()
}

// Measure runs the workload's cost measurement: per query, the optimizer's
// decision plus real executions of the host-native path, the decided split
// and (when the plan fits device memory) full NDP. workers bounds wall-clock
// parallelism only — each (query, strategy) execution is independently
// deterministic, and results land in pre-sized per-index slots, so the table
// is byte-identical for any worker count.
func Measure(ds *job.Dataset, queries []*query.Query, workers int) (*CostTable, error) {
	return MeasureBatched(ds, queries, workers, 0)
}

// MeasureBatched is Measure with an explicit columnar batch row capacity for
// the measuring executor (0 = exec.DefaultBatchSize). Virtual costs are
// byte-identical at every batch size; the parameter exists so the golden
// suite can prove it on the serving surface too.
func MeasureBatched(ds *job.Dataset, queries []*query.Query, workers, batchSize int) (*CostTable, error) {
	opt := optimizer.New(ds.Cat, ds.Model)
	// A private executor: no metrics registry is attached, so parallel
	// measurement cannot interleave writes into the serving registry.
	ex := coop.NewExecutor(ds.Cat, ds.DB, ds.Model)
	ex.BatchSize = batchSize
	costs := make([]*QueryCost, len(queries))
	errs := make([]error, len(queries))
	forEach(workers, len(queries), func(i int) {
		costs[i], errs[i] = measureOne(opt, ex, ds, queries[i])
	})
	ct := &CostTable{byName: make(map[string]*QueryCost, len(queries))}
	var sum vclock.Duration
	for i, q := range queries {
		if errs[i] != nil {
			return nil, fmt.Errorf("serve: measure %s: %w", q.Name, errs[i])
		}
		if _, dup := ct.byName[q.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate workload query name %s", q.Name)
		}
		ct.byName[q.Name] = costs[i]
		ct.names = append(ct.names, q.Name)
		sum += costs[i].Host
	}
	if len(queries) > 0 {
		ct.meanHost = sum / vclock.Duration(len(queries))
	}
	return ct, nil
}

// MeasureFleet measures the workload's cost table through sharded fleet
// execution instead of the single-device cooperative path: Host stays the
// coop host-native elapsed (the fallback lane never touches the fleet), while
// the decided strategy and the full-NDP alternative run scatter-gather
// through fx — with whatever fault plan and hedge configuration fx carries
// baked into the memoized service times. This is how chaos reaches the
// serving simulation: a per-device stall inflates the measured device paths,
// and hedging caps that inflation, so the open-loop SLO tables replay the
// fleet's robustness behavior exactly. Every fleet result is
// fingerprint-checked against the host-native execution — faults and hedges
// may degrade latency, never correctness — and a mismatch fails the
// measurement. The table is byte-identical for any worker count; a shared
// retry budget on fx would break that (token order follows wall-clock
// interleaving), so measurement forces workers to 1 when one is set.
func MeasureFleet(ds *job.Dataset, queries []*query.Query, fx *fleet.Executor, workers int) (*CostTable, error) {
	opt := optimizer.New(ds.Cat, ds.Model)
	ex := coop.NewExecutor(ds.Cat, ds.DB, ds.Model)
	ex.BatchSize = fx.BatchSize
	if fx.Budget != nil {
		workers = 1
	}
	costs := make([]*QueryCost, len(queries))
	errs := make([]error, len(queries))
	forEach(workers, len(queries), func(i int) {
		costs[i], errs[i] = measureOneFleet(opt, ex, fx, ds, queries[i])
	})
	ct := &CostTable{byName: make(map[string]*QueryCost, len(queries))}
	var sum vclock.Duration
	for i, q := range queries {
		if errs[i] != nil {
			return nil, fmt.Errorf("serve: measure fleet %s: %w", q.Name, errs[i])
		}
		if _, dup := ct.byName[q.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate workload query name %s", q.Name)
		}
		ct.byName[q.Name] = costs[i]
		ct.names = append(ct.names, q.Name)
		sum += costs[i].Host
	}
	if len(queries) > 0 {
		ct.meanHost = sum / vclock.Duration(len(queries))
	}
	return ct, nil
}

func measureOneFleet(opt *optimizer.Optimizer, ex *coop.Executor, fx *fleet.Executor, ds *job.Dataset, q *query.Query) (*QueryCost, error) {
	d, err := opt.Decide(q)
	if err != nil {
		return nil, err
	}
	qc := &QueryCost{Decision: d, Decided: decidedStrategy(d)}
	hostRep, err := ex.Run(d.Plan, coop.Strategy{Kind: coop.HostNative})
	if err != nil {
		return nil, err
	}
	qc.Host = hostRep.Elapsed
	hostFP := fleet.Fingerprint(hostRep.Result)
	runFleet := func(dec *optimizer.Decision) (vclock.Duration, error) {
		a, err := fleet.PlanShards(opt, fx.Desc, dec)
		if err != nil {
			return 0, err
		}
		rep, err := fx.Run(a)
		if err != nil {
			return 0, err
		}
		if fp := fleet.Fingerprint(rep.Result); fp != hostFP {
			return 0, fmt.Errorf("fleet result fingerprint %s != host %s (mode %s)", fp, hostFP, a.Label())
		}
		return rep.Elapsed, nil
	}
	if device.PlanMemory(ds.Model, d.Plan, len(d.Plan.Steps)).Fits() {
		nd := *d
		nd.NDP, nd.Hybrid = true, false
		elapsed, err := runFleet(&nd)
		if err != nil {
			return nil, err
		}
		qc.NDP = elapsed
		qc.NDPFeasible = true
	}
	switch qc.Decided.Kind {
	case coop.HostNative:
		qc.Dec = qc.Host
	case coop.NDPOnly:
		if !qc.NDPFeasible {
			return nil, fmt.Errorf("serve: decision picked NDP for %s but the plan does not fit device memory", q.Name)
		}
		qc.Dec = qc.NDP
	default: // hybrid
		elapsed, err := runFleet(d)
		if err != nil {
			return nil, err
		}
		qc.Dec = elapsed
	}
	return qc, nil
}

func measureOne(opt *optimizer.Optimizer, ex *coop.Executor, ds *job.Dataset, q *query.Query) (*QueryCost, error) {
	d, err := opt.Decide(q)
	if err != nil {
		return nil, err
	}
	qc := &QueryCost{Decision: d, Decided: decidedStrategy(d)}
	hostRep, err := ex.Run(d.Plan, coop.Strategy{Kind: coop.HostNative})
	if err != nil {
		return nil, err
	}
	qc.Host = hostRep.Elapsed
	if device.PlanMemory(ds.Model, d.Plan, len(d.Plan.Steps)).Fits() {
		rep, err := ex.Run(d.Plan, coop.Strategy{Kind: coop.NDPOnly})
		if err != nil {
			return nil, err
		}
		qc.NDP = rep.Elapsed
		qc.NDPFeasible = true
	}
	switch qc.Decided.Kind {
	case coop.HostNative:
		qc.Dec = qc.Host
	case coop.NDPOnly:
		if !qc.NDPFeasible {
			return nil, fmt.Errorf("serve: decision picked NDP for %s but the plan does not fit device memory", q.Name)
		}
		qc.Dec = qc.NDP
	default: // hybrid
		rep, err := ex.Run(d.Plan, qc.Decided)
		if err != nil {
			return nil, err
		}
		qc.Dec = rep.Elapsed
	}
	return qc, nil
}

// decidedStrategy maps the optimizer's decision to an execution strategy
// (mirrors the scheduler's mapping, including H0 → leaf-broadcast split -1).
func decidedStrategy(d *optimizer.Decision) coop.Strategy {
	switch {
	case d.Hybrid:
		split := d.Split
		if split == 0 {
			split = -1
		}
		return coop.Strategy{Kind: coop.Hybrid, Split: split}
	case d.NDP:
		return coop.Strategy{Kind: coop.NDPOnly}
	default:
		return coop.Strategy{Kind: coop.HostNative}
	}
}

// forEach runs fn(0..n-1) across min(workers, n) goroutines, inline when
// sequential. Indexes are claimed atomically and callers write disjoint
// pre-sized slots — the deterministic fan-in idiom (no append, no channels).
func forEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
