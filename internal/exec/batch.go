package exec

import (
	"hybridndp/internal/table"
)

// DefaultBatchSize is the row capacity of one columnar batch. 1024 fixed-width
// row views keep the batch's slice headers and selection vector inside the L2
// cache while amortizing per-batch bookkeeping; the EXPERIMENTS.md batch-size
// sweep picked it from measured wall-clock data.
const DefaultBatchSize = 1024

// ColBatch is one fixed-size batch of rows in the engine's columnar
// processing format: row views over the fixed-width record layout plus a
// selection vector naming the rows that survived predicate evaluation, in
// first-occurrence order. Operators communicate batches instead of single
// tuples; rejected rows are never materialized — they are simply absent from
// Sel. Column-major access falls out of the fixed-width layout: column i of
// row r lives at Rows[r][schema.ColumnOffset(i)], so a per-column kernel
// walks one fixed offset across the batch.
type ColBatch struct {
	Schema *table.Schema
	Rows   [][]byte // row views (shared storage, never mutated)
	Sel    []int32  // indices into Rows that passed selection, ascending
}

// Len reports the number of selected rows.
func (b *ColBatch) Len() int { return len(b.Sel) }

// Reset re-arms the batch for reuse with a new schema, keeping capacity.
func (b *ColBatch) Reset(s *table.Schema) {
	b.Schema = s
	b.Rows = b.Rows[:0]
	b.Sel = b.Sel[:0]
}

// SelectAll marks every row as selected.
func (b *ColBatch) SelectAll() {
	b.Sel = b.Sel[:0]
	for i := range b.Rows {
		b.Sel = append(b.Sel, int32(i))
	}
}

// Selected appends the selected row views to dst and returns it.
func (b *ColBatch) Selected(dst [][]byte) [][]byte {
	for _, i := range b.Sel {
		dst = append(dst, b.Rows[i])
	}
	return dst
}

// View returns the selected row views in selection order. Fully-selected
// batches (the transfer-unit case: every surviving row was already filtered
// at the producer) return the backing slice without copying.
func (b *ColBatch) View() [][]byte {
	if len(b.Sel) == len(b.Rows) {
		return b.Rows
	}
	return b.Selected(nil)
}

// NewColBatch wraps already-selected rows (a device batch arriving over the
// interconnect, a fleet shard's partition) as a fully-selected column batch.
func NewColBatch(s *table.Schema, rows [][]byte) *ColBatch {
	b := &ColBatch{Schema: s, Rows: rows}
	b.SelectAll()
	return b
}

// batchSize resolves the engine's configured batch row capacity.
func (e *Engine) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	return DefaultBatchSize
}
