// Package exec implements the physical execution layer shared by the host
// engine and the on-device NDP engine: access paths, the left-deep join
// pipeline with BNL / BNLI / NLJ / GHJ algorithms, grouping and aggregation.
// Operators execute for real over real records; every primitive (flash read,
// predicate evaluation, key comparison, buffer copy) charges virtual time to
// the engine's timeline at the engine's rate table, so identical operator
// code yields host-priced or device-priced executions.
package exec

import (
	"fmt"
	"strings"

	"hybridndp/internal/expr"
	"hybridndp/internal/query"
	"hybridndp/internal/table"
)

// JoinType selects the join algorithm (paper §2.1: nKV supports NLJ, BNLJ,
// Grace hash join, and BNLI using primary/secondary indices).
type JoinType int

// Join algorithms.
const (
	BNL  JoinType = iota // block nested loop, hash table in the join buffer
	BNLI                 // block nested loop over an index (PK or secondary)
	NLJ                  // naive nested loop
	GHJ                  // grace hash join
)

func (t JoinType) String() string {
	switch t {
	case BNL:
		return "BNL"
	case BNLI:
		return "BNLI"
	case NLJ:
		return "NLJ"
	case GHJ:
		return "GHJ"
	}
	return fmt.Sprintf("JoinType(%d)", int(t))
}

// AccessPath describes how one base table is read.
type AccessPath struct {
	Ref    query.TableRef
	Filter expr.Pred // local predicate, may be nil
	Proj   []string  // columns needed upstream (early projection set)

	// Equality access over a secondary index chosen for the filter.
	UseFilterIndex bool
	FilterIndex    string
	FilterValue    table.Value

	// Optimizer estimates.
	EstRows float64 // rows surviving the filter
	EstSel  float64 // filter selectivity
}

func (a AccessPath) String() string {
	s := a.Ref.String()
	if a.UseFilterIndex {
		s += " via idx " + a.FilterIndex
	}
	if a.Filter != nil {
		s += " σ(" + a.Filter.String() + ")"
	}
	return s
}

// BoundCond is a join condition resolved against the tuple shape: position
// LeftPos in the accumulated tuple joins column LeftCol with RightCol of the
// incoming table. LeftColIdx/RightColIdx carry the plan-time-resolved column
// indices so the per-tuple path never resolves names; StartPipeline verifies
// them against the schemas (index 0 is a valid column, so a zero value alone
// cannot distinguish "unresolved" from "column 0") and re-resolves when a
// hand-built plan left them unset.
type BoundCond struct {
	LeftPos     int
	LeftCol     string
	RightCol    string
	LeftColIdx  int
	RightColIdx int
}

// JoinStep joins the accumulated tuple stream with one more base table.
type JoinStep struct {
	Right AccessPath
	Conds []BoundCond
	Type  JoinType

	// BNLI access choice on the right side.
	RightIndexIsPK bool   // join column is the right table's primary key
	RightIndex     string // secondary index name when not PK

	EstRows float64 // estimated rows after this join
}

func (s JoinStep) String() string {
	conds := make([]string, len(s.Conds))
	for i, c := range s.Conds {
		conds[i] = fmt.Sprintf("t%d.%s=%s", c.LeftPos, c.LeftCol, c.RightCol)
	}
	return fmt.Sprintf("%s ⋈ %s on %s", s.Type, s.Right, strings.Join(conds, ","))
}

// Plan is a left-deep physical plan: a driving access path plus join steps,
// topped by optional grouping/aggregation. Splitting the plan at position k
// (paper §3.3) sends Driving plus Steps[:k] to the device and keeps
// Steps[k:] plus the top on the host.
type Plan struct {
	Query      *query.Query
	Driving    AccessPath
	Steps      []JoinStep
	Aggregates []query.Aggregate
	Output     []query.ColRef
	GroupBy    []query.ColRef

	// EstTotalRows is the optimizer's final cardinality estimate.
	EstTotalRows float64
}

// NumTables reports the number of base tables in the plan.
func (p *Plan) NumTables() int { return 1 + len(p.Steps) }

// Aliases lists the table aliases in join order (the tuple shape).
func (p *Plan) Aliases() []string {
	out := []string{p.Driving.Ref.Alias}
	for _, s := range p.Steps {
		out = append(out, s.Right.Ref.Alias)
	}
	return out
}

func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan(%s): %s", p.Query.Name, p.Driving)
	for _, s := range p.Steps {
		fmt.Fprintf(&b, "\n  %s", s.String())
	}
	if len(p.Aggregates) > 0 || len(p.GroupBy) > 0 {
		fmt.Fprintf(&b, "\n  γ(")
		for i, a := range p.Aggregates {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

// Shape maps tuple positions to aliases and schemas.
type Shape struct {
	Aliases []string
	Schemas []*table.Schema
	pos     map[string]int
}

// NewShape builds a shape for the given aliases/schemas.
func NewShape(aliases []string, schemas []*table.Schema) *Shape {
	s := &Shape{Aliases: aliases, Schemas: schemas, pos: make(map[string]int, len(aliases))}
	for i, a := range aliases {
		s.pos[a] = i
	}
	return s
}

// Pos resolves an alias to its tuple position, or -1.
func (s *Shape) Pos(alias string) int {
	if i, ok := s.pos[alias]; ok {
		return i
	}
	return -1
}

// Extend returns a new shape with one more table appended.
func (s *Shape) Extend(alias string, schema *table.Schema) *Shape {
	return NewShape(append(append([]string(nil), s.Aliases...), alias),
		append(append([]*table.Schema(nil), s.Schemas...), schema))
}

// Tuple is one row of a join pipeline: the raw record of each base table in
// shape order. Joins extend tuples by appending the matched right-side row.
type Tuple [][]byte

// Record returns the decoded view of position i under shape sh.
func (t Tuple) Record(sh *Shape, i int) table.Record {
	return table.Record{Schema: sh.Schemas[i], Data: t[i]}
}

// Col resolves an aliased column against the tuple.
func (t Tuple) Col(sh *Shape, alias, col string) table.Value {
	i := sh.Pos(alias)
	if i < 0 || t[i] == nil {
		return table.NullVal()
	}
	return table.Record{Schema: sh.Schemas[i], Data: t[i]}.GetByName(col)
}
