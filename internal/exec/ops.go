package exec

import (
	"fmt"
	"sort"

	"hybridndp/internal/expr"
	"hybridndp/internal/hw"
	"hybridndp/internal/num"
	"hybridndp/internal/query"
	"hybridndp/internal/table"
	"hybridndp/internal/vclock"
)

// ScanAccess reads one base table through its access path: rows surviving
// the local predicate, restricted to the optional primary-key range
// [loPK, hiPK) used by the device engine's chunked pipeline. The scan charges
// flash reads and merge comparisons through the LSM layer, predicate
// evaluation per scanned record, and a selection-cache copy per match.
//
// Execution is vectorized: row views accumulate into a fixed-size column
// batch, the compiled predicate refines the batch's selection vector term by
// term, and only selected views reach the result — rejected rows are never
// materialized. Charges derive from the accumulated scanned/selected counts,
// so virtual time is byte-identical at every batch size (size 1 degenerates
// to the tuple-at-a-time order of operations).
func (e *Engine) ScanAccess(ap AccessPath, loPK, hiPK *int32) ([][]byte, int64, error) {
	t, err := e.Cat.Table(ap.Ref.Table)
	if err != nil {
		return nil, 0, err
	}
	ac := e.Access()
	terms := 0
	if ap.Filter != nil {
		terms = ap.Filter.Terms()
	}
	width := projWidth(t.Schema, ap.Proj)

	bp := expr.Compile(t.Schema, ap.Filter)
	bs := e.batchSize()
	batch := ColBatch{Schema: t.Schema, Rows: make([][]byte, 0, bs), Sel: make([]int32, 0, bs)}
	var rows [][]byte
	scanned := 0
	flush := func() {
		if len(batch.Rows) == 0 {
			return
		}
		batch.SelectAll()
		if bp != nil {
			batch.Sel = bp.Filter(batch.Rows, batch.Sel)
		}
		rows = batch.Selected(rows)
		batch.Rows = batch.Rows[:0]
	}

	view := e.viewOf(ap.Ref.Table)
	if ap.UseFilterIndex {
		pks, err := t.IndexSeek(ap.FilterIndex, ap.FilterValue, ac)
		if err != nil {
			return nil, 0, err
		}
		for _, pk := range pks {
			if loPK != nil && pk < *loPK {
				continue
			}
			if hiPK != nil && pk >= *hiPK {
				continue
			}
			rec, ok, err := t.GetByPKView(view, pk, ac)
			if err != nil {
				return nil, 0, err
			}
			if !ok {
				continue
			}
			scanned++
			batch.Rows = append(batch.Rows, rec.Data)
			if len(batch.Rows) >= bs {
				flush()
			}
		}
	} else {
		var lo, hi []byte
		if loPK != nil {
			lo = table.EncodePK(*loPK)
		}
		if hiPK != nil {
			hi = table.EncodePK(*hiPK)
		}
		for it := t.ScanView(view, lo, hi, ac); it.Valid(); it.Next() {
			scanned++
			batch.Rows = append(batch.Rows, it.Entry().Value)
			if len(batch.Rows) >= bs {
				flush()
			}
		}
	}
	flush()

	if e.TL != nil {
		e.R.Eval(e.TL, scanned, terms)
		copyBytes := int64(len(rows)) * e.cacheWidth(width)
		e.R.Memcpy(e.TL, copyBytes)
		e.R.RowOverhead(e.TL, len(rows), hw.CatSelection)
	}
	return rows, width, nil
}

// ScanCols is ScanAccess in the engine's columnar transfer format: the
// surviving rows arrive as one fully-selected ColBatch, the unit device leaf
// scans emit and the host gather loop consumes. Charges are ScanAccess's.
func (e *Engine) ScanCols(ap AccessPath, loPK, hiPK *int32) (*ColBatch, int64, error) {
	rows, width, err := e.ScanAccess(ap, loPK, hiPK)
	if err != nil {
		return nil, 0, err
	}
	t, err := e.Cat.Table(ap.Ref.Table)
	if err != nil {
		return nil, 0, err
	}
	return NewColBatch(t.Schema, rows), width, nil
}

// SeedInnerCols seeds a join's inner side from a column batch (the H0 leaf
// batch a device shipped).
func (e *Engine) SeedInnerCols(pl *Pipeline, si int, cb *ColBatch) error {
	return e.SeedInner(pl, si, cb.View())
}

// AppendInnerCols appends a column batch to a join's inner side (multi-device
// and fleet gather loops, one shard partition at a time).
func (e *Engine) AppendInnerCols(pl *Pipeline, si int, cb *ColBatch) error {
	return e.AppendInner(pl, si, cb.View())
}

// cacheWidth is the per-record footprint in an intermediate cache: the
// projected row (row-cache format) or an 8-byte pointer (pointer-cache
// format, paper §4.2).
func (e *Engine) cacheWidth(rowWidth int64) int64 {
	if e.PointerCache {
		return 8
	}
	return rowWidth
}

// innerState caches the materialized inner side of a BNL/GHJ/NLJ join so
// chunked executions build it only once (the device builds its hash tables
// once and streams probes through them). For BNL with a bounded join buffer
// it also tracks how much outer data has streamed past, charging one extra
// inner pass every time the cumulative outer volume crosses a buffer-sized
// block boundary — the block-nested-loop rescan behaviour.
type innerState struct {
	rows   [][]byte
	tab    *keyTab
	built  bool
	seeded bool
	width  int64

	scanDelta     map[string]vclock.Duration // cost of one inner scan pass
	cumOuterBytes int64
	chargedBlocks int64
}

// appendTupleKey appends the composite join key of the left tuple to buf
// using plan-time-bound column indices; ok is false when any component is
// NULL (SQL equality never matches NULL). Partial appends from earlier
// conditions are the caller's to discard (it resets buf per tuple).
func appendTupleKey(buf []byte, sh *Shape, tu Tuple, conds []BoundCond) ([]byte, bool) {
	for _, c := range conds {
		var ok bool
		buf, ok = tu.Record(sh, c.LeftPos).AppendColKey(buf, c.LeftColIdx)
		if !ok {
			return buf, false
		}
	}
	return buf, true
}

// appendRowKey appends the composite key of a right-side record to buf.
func appendRowKey(buf []byte, rec table.Record, conds []BoundCond) ([]byte, bool) {
	for _, c := range conds {
		var ok bool
		buf, ok = rec.AppendColKey(buf, c.RightColIdx)
		if !ok {
			return buf, false
		}
	}
	return buf, true
}

// JoinStep executes join step si of the pipeline over the given left tuples
// and returns the extended tuples. Inner-side state persists in the pipeline
// across chunked invocations.
func (e *Engine) JoinStep(pl *Pipeline, si int, left []Tuple) ([]Tuple, error) {
	step := pl.Plan.Steps[si]
	leftShape := pl.ShapeAt(si)
	switch step.Type {
	case BNL, NLJ, GHJ:
		return e.joinBuffered(pl, si, leftShape, left, step)
	case BNLI:
		return e.joinIndexed(pl, si, leftShape, left, step)
	default:
		return nil, fmt.Errorf("exec: unknown join type %v", step.Type)
	}
}

// joinBuffered implements BNL (hash table in the join buffer), NLJ and GHJ.
// All three compute the same equality-join result; they differ in the work
// charged: BNL re-reads the inner table once per outer block that exceeds
// the join buffer, NLJ charges the full cross-comparison, GHJ charges
// partitioning copies of both sides.
func (e *Engine) joinBuffered(pl *Pipeline, si int, leftShape *Shape, left []Tuple, step JoinStep) ([]Tuple, error) {
	inner, err := e.BuildInner(pl, si)
	if err != nil {
		return nil, err
	}

	// BNL rescan accounting: once the cumulative outer volume exceeds the
	// join buffer, each further buffer-sized outer block re-reads the inner
	// table (Exp 5: the device BNL bottleneck).
	if step.Type == BNL && e.JoinBuf > 0 && !inner.seeded {
		innerBytes := int64(len(inner.rows)) * e.cacheWidth(inner.width)
		if innerBytes > e.JoinBuf {
			inner.cumOuterBytes += int64(len(left)) * pl.TupleWidth(si+1)
			blocks := inner.cumOuterBytes / e.JoinBuf
			if blocks > inner.chargedBlocks && e.TL != nil {
				chargeRepeatDelta(e.TL, inner.scanDelta, int(blocks-inner.chargedBlocks))
				inner.chargedBlocks = blocks
			}
		}
	}

	// Batch-at-a-time probing: for each batch of left tuples, phase 1 encodes
	// every join key into the shared arena and resolves its hash-table entry;
	// phase 2 walks the batch again chasing match chains in the same tuple
	// order, so output ordering and the integer comparison counters — and with
	// them every charge — are identical to tuple-at-a-time execution.
	var out []Tuple
	var cmpBytes int64
	cmps := 0
	conds := pl.conds[si]
	bs := e.batchSize()
	keys := pl.keyBuf[:0]
	ends := pl.probeEnd[:0]
	ents := pl.probeEnt[:0]
	for base := 0; base < len(left); base += bs {
		chunk := left[base:min(base+bs, len(left))]
		keys = keys[:0]
		ends = ends[:0]
		ents = ents[:0]
		for _, tu := range chunk {
			start := len(keys)
			var ok bool
			keys, ok = appendTupleKey(keys, leftShape, tu, conds)
			if !ok {
				keys = keys[:start] // discard partial NULL-key append
				ends = append(ends, int32(start))
				ents = append(ents, -1)
				continue
			}
			k := keys[start:]
			ends = append(ends, int32(len(keys)))
			ents = append(ents, inner.tab.find(fnv1a(k), k))
		}
		start := int32(0)
		for j, tu := range chunk {
			end := ends[j]
			if ei := ents[j]; ei >= 0 {
				ent := &inner.tab.entries[ei]
				cmps += int(ent.n)
				cmpBytes += int64(end-start) * int64(ent.n)
				for r := ent.head; r >= 0; r = inner.tab.next[r] {
					out = append(out, pl.extendTuple(tu, inner.rows[r]))
				}
			}
			start = end
		}
	}
	pl.keyBuf = keys[:0]
	pl.probeEnd = ends[:0]
	pl.probeEnt = ents[:0]
	if e.TL != nil {
		e.R.HashProbe(e.TL, len(left))
		e.R.Memcmp(e.TL, cmpBytes, cmps)
		if step.Type == NLJ {
			// Naive nested loop compares every pair.
			pairs := int64(len(left)) * int64(len(inner.rows))
			e.R.Memcmp(e.TL, pairs*8, num.ClampInt(pairs))
		}
		e.R.Memcpy(e.TL, int64(len(out))*e.cacheWidth(pl.Widths[si+1]))
		e.R.RowOverhead(e.TL, len(out), hw.CatBufferManage)
		e.chargeDeref(pl, si, len(out))
	}
	return out, nil
}

// chargeDeref books the pointer-cache dereferencing of the produced tuples
// (paper §4.2) when the engine stores intermediates in pointer format.
func (e *Engine) chargeDeref(pl *Pipeline, si, out int) {
	if !e.PointerCache || out == 0 {
		return
	}
	positions := si + 2
	e.R.Deref(e.TL, out, positions, int64(out)*pl.TupleWidth(positions))
}

// BuildInner materializes and hashes the inner side of join step si if not
// yet built. The cooperative executor calls this to pre-build the host-side
// hash tables while the device runs its initial execution, overlapping the
// two engines (paper §4.1).
func (e *Engine) BuildInner(pl *Pipeline, si int) (*innerState, error) {
	inner := pl.inner[si]
	if inner == nil {
		inner = &innerState{}
		pl.inner[si] = inner
	}
	if inner.built {
		return inner, nil
	}
	step := pl.Plan.Steps[si]
	snapBefore := accountSnapshot(e)
	rows, width, err := e.ScanAccess(step.Right, nil, nil)
	if err != nil {
		return nil, err
	}
	snapAfter := accountSnapshot(e)
	inner.scanDelta = accountDelta(snapBefore, snapAfter)
	e.hashInner(inner, rows, width, step, pl.conds[si])
	if e.TL != nil && step.Type == GHJ {
		// Grace hash join additionally partitions both sides through flash.
		e.R.Memcpy(e.TL, 2*int64(len(rows))*width)
	}
	return inner, nil
}

// SeedInner installs device-shipped, already-filtered rows as the inner side
// of join step si, so the host joins NDP outputs instead of rescanning the
// base table (H0 leaf offloading).
func (e *Engine) SeedInner(pl *Pipeline, si int, rows [][]byte) error {
	inner := pl.inner[si]
	if inner == nil {
		inner = &innerState{}
		pl.inner[si] = inner
	}
	step := pl.Plan.Steps[si]
	rt, err := e.Cat.Table(step.Right.Ref.Table)
	if err != nil {
		return err
	}
	e.hashInner(inner, rows, projWidth(rt.Schema, step.Right.Proj), step, pl.conds[si])
	inner.seeded = true
	return nil
}

// AppendInner extends a seeded inner side with further device-shipped rows
// (multi-device execution delivers each inner table's partitions as separate
// leaf batches). A first call on an unbuilt inner behaves like SeedInner.
func (e *Engine) AppendInner(pl *Pipeline, si int, rows [][]byte) error {
	inner := pl.inner[si]
	if inner == nil || !inner.built {
		return e.SeedInner(pl, si, rows)
	}
	step := pl.Plan.Steps[si]
	rt, err := e.Cat.Table(step.Right.Ref.Table)
	if err != nil {
		return err
	}
	base := len(inner.rows)
	inner.rows = append(inner.rows, rows...)
	conds := pl.conds[si]
	key := pl.keyBuf[:0]
	for i, r := range rows {
		key = key[:0]
		var ok bool
		key, ok = appendRowKey(key, table.Record{Schema: rt.Schema, Data: r}, conds)
		if !ok {
			continue
		}
		inner.tab.addRow(fnv1a(key), key, base+i)
	}
	pl.keyBuf = key[:0]
	if e.TL != nil {
		e.R.HashBuild(e.TL, len(rows))
		e.R.Memcpy(e.TL, int64(len(rows))*e.cacheWidth(inner.width))
	}
	return nil
}

// hashInner builds the in-buffer hash table over the inner rows.
func (e *Engine) hashInner(inner *innerState, rows [][]byte, width int64, step JoinStep, conds []BoundCond) {
	rt, _ := e.Cat.Table(step.Right.Ref.Table)
	inner.rows = rows
	inner.width = width
	inner.tab = newKeyTab(len(rows))
	var key []byte
	for i, r := range rows {
		key = key[:0]
		var ok bool
		key, ok = appendRowKey(key, table.Record{Schema: rt.Schema, Data: r}, conds)
		if !ok {
			continue
		}
		inner.tab.addRow(fnv1a(key), key, i)
	}
	if e.TL != nil {
		e.R.HashBuild(e.TL, len(rows))
		e.R.Memcpy(e.TL, int64(len(rows))*e.cacheWidth(width))
	}
	inner.built = true
}

// accountDelta computes per-category cost differences between snapshots.
func accountDelta(before, after map[string]vclock.Duration) map[string]vclock.Duration {
	out := make(map[string]vclock.Duration)
	for cat, d := range after {
		if delta := d - before[cat]; delta > 0 {
			out[cat] = delta
		}
	}
	return out
}

// chargeRepeatDelta books the delta map times extra times. Categories charge
// in sorted order so the timeline's float accumulation sequence — and with it
// every downstream golden — is independent of map iteration order.
func chargeRepeatDelta(tl *vclock.Timeline, delta map[string]vclock.Duration, times int) {
	if times <= 0 || delta == nil {
		return
	}
	cats := make([]string, 0, len(delta))
	for cat := range delta {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	for _, cat := range cats {
		tl.Charge(cat, delta[cat]*vclock.Duration(times))
	}
}

// joinIndexed implements BNLI: for every left tuple the right side is probed
// through an index — directly through the primary LSM tree when the join
// column is the PK, or through the secondary index with the two-stage
// secondary→primary seek of paper Fig. 9.
func (e *Engine) joinIndexed(pl *Pipeline, si int, leftShape *Shape, left []Tuple, step JoinStep) ([]Tuple, error) {
	rt, err := e.Cat.Table(step.Right.Ref.Table)
	if err != nil {
		return nil, err
	}
	if len(step.Conds) == 0 {
		return nil, fmt.Errorf("exec: BNLI join without conditions")
	}
	ac := e.Access()
	conds := pl.conds[si]
	primary := conds[0]
	residual := conds[1:]
	terms := 0
	if step.Right.Filter != nil {
		terms = step.Right.Filter.Terms()
	}
	// The right-side filter runs per fetched record; the compiled form reads
	// the fixed-width layout directly instead of decoding Values per term.
	rightBP := expr.Compile(rt.Schema, step.Right.Filter)

	var out []Tuple
	var rrows []table.Record
	fetched := 0
	for _, tu := range left {
		v := tu.Record(leftShape, primary.LeftPos).Get(primary.LeftColIdx)
		if v.Null {
			continue
		}
		rrows = rrows[:0]
		view := e.viewOf(step.Right.Ref.Table)
		if step.RightIndexIsPK {
			if !v.IsI {
				continue
			}
			rec, ok, err := rt.GetByPKView(view, v.Int, ac)
			if err != nil {
				return nil, err
			}
			if ok {
				rrows = append(rrows, rec)
			}
		} else {
			pks, err := rt.IndexSeek(step.RightIndex, v, ac)
			if err != nil {
				return nil, err
			}
			for _, pk := range pks {
				rec, ok, err := rt.GetByPKView(view, pk, ac)
				if err != nil {
					return nil, err
				}
				if ok {
					rrows = append(rrows, rec)
				}
			}
		}
		for _, rec := range rrows {
			fetched++
			if rightBP != nil && !rightBP.EvalRow(rec.Data) {
				continue
			}
			match := true
			for _, c := range residual {
				lv := tu.Record(leftShape, c.LeftPos).Get(c.LeftColIdx)
				rv := rec.Get(c.RightColIdx)
				if lv.Null || rv.Null || lv.IsI != rv.IsI ||
					(lv.IsI && lv.Int != rv.Int) || (!lv.IsI && lv.Str != rv.Str) {
					match = false
					break
				}
			}
			if match {
				out = append(out, pl.extendTuple(tu, rec.Data))
			}
		}
	}
	if e.TL != nil {
		e.R.Eval(e.TL, fetched, terms+len(residual))
		e.R.Memcpy(e.TL, int64(len(out))*e.cacheWidth(pl.Widths[si+1]))
		e.R.RowOverhead(e.TL, len(out), hw.CatBufferManage)
		e.chargeDeref(pl, si, len(out))
	}
	return out, nil
}

// tupleArenaBlock is the slot count of one arena block; at 8 bytes per slot a
// block is one 64 KiB allocation feeding thousands of tuple extensions.
const tupleArenaBlock = 8192

// tupleArena carves Tuple backing arrays out of large shared blocks so the
// join output path performs one allocation per block instead of one per
// tuple. Carved tuples use full slice expressions, so an (out-of-contract)
// append on a Tuple can never bleed into its neighbor. A pipeline — and
// therefore its arena — is only ever driven by one goroutine at a time: the
// cooperative executor runs host joins synchronously inside the device's
// emit callback, and the parallel sweep gives each worker its own engines
// and pipelines.
type tupleArena struct {
	block [][]byte
	off   int
}

func (a *tupleArena) alloc(n int) Tuple {
	if a.off+n > len(a.block) {
		sz := tupleArenaBlock
		if n > sz {
			sz = n
		}
		a.block = make([][]byte, sz)
		a.off = 0
	}
	t := Tuple(a.block[a.off : a.off+n : a.off+n])
	a.off += n
	return t
}

// extendTuple appends the matched right-side row to tu in arena-backed
// storage.
func (pl *Pipeline) extendTuple(tu Tuple, right []byte) Tuple {
	nt := pl.arena.alloc(len(tu) + 1)
	copy(nt, tu)
	nt[len(tu)] = right
	return nt
}

// boundRef is a column reference resolved against a shape: tuple position
// plus column index, so the per-tuple path never resolves names.
type boundRef struct{ pos, idx int }

// bindRef resolves an aliased column once. Unknown aliases or columns bind to
// -1 and read as NULL, matching Tuple.Col.
func bindRef(sh *Shape, alias, col string) boundRef {
	p := sh.Pos(alias)
	if p < 0 {
		return boundRef{pos: -1, idx: -1}
	}
	return boundRef{pos: p, idx: sh.Schemas[p].ColumnIndex(col)}
}

// colVal reads a bound column from the tuple (NULL for unbound refs and
// absent positions, as Tuple.Col does).
func colVal(sh *Shape, tu Tuple, r boundRef) table.Value {
	if r.pos < 0 || tu[r.pos] == nil {
		return table.NullVal()
	}
	return table.Record{Schema: sh.Schemas[r.pos], Data: tu[r.pos]}.Get(r.idx)
}

// groupAggregate hash-groups tuples and computes the aggregates. Groups live
// in the open-addressing key table — the entry ordinal is the group's
// first-occurrence rank, which is the output order — with flat accumulator
// arrays indexed by ordinal×len(aggs) instead of a per-group state struct.
func (e *Engine) groupAggregate(sh *Shape, tuples []Tuple, groupBy []query.ColRef, aggs []query.Aggregate) (*Result, error) {
	gbRefs := make([]boundRef, len(groupBy))
	for i, g := range groupBy {
		gbRefs[i] = bindRef(sh, g.Alias, g.Col)
	}
	aggRefs := make([]boundRef, len(aggs))
	for i, a := range aggs {
		if !a.Star {
			aggRefs[i] = bindRef(sh, a.Arg.Alias, a.Arg.Col)
		}
	}

	na := len(aggs)
	tab := newKeyTab(0)
	var (
		keys   [][]table.Value // decoded key of each group's first tuple
		minI   []int32         // flat accumulators: [ordinal*na + agg]
		minS   []string
		sums   []float64
		counts []int64
		seen   []bool
	)
	// Tuples accumulate batch-at-a-time: phase 1 encodes one batch of group
	// keys into a shared arena, phase 2 walks the spans doing the hash-table
	// upsert and accumulator updates in the same tuple order. put() copies the
	// key into the table's own arena, so reusing ours across batches is safe,
	// and ordinal assignment — the output order — matches one-at-a-time.
	bs := e.batchSize()
	var gkArena []byte
	var gkEnds []int32
	for b := 0; b < len(tuples); b += bs {
		chunk := tuples[b:min(b+bs, len(tuples))]
		gkArena = gkArena[:0]
		gkEnds = gkEnds[:0]
		for _, tu := range chunk {
			for gi := range groupBy {
				r := gbRefs[gi]
				if r.pos >= 0 && tu[r.pos] != nil {
					var ok bool
					gkArena, ok = table.Record{Schema: sh.Schemas[r.pos], Data: tu[r.pos]}.AppendColKey(gkArena, r.idx)
					if ok {
						continue
					}
				}
				// NULL group keys encode like the empty string (and collide
				// with it), as the decoded-value codec always has.
				gkArena = append(gkArena, 's', 0)
			}
			gkEnds = append(gkEnds, int32(len(gkArena)))
		}
		gkStart := int32(0)
		for j, tu := range chunk {
			gk := gkArena[gkStart:gkEnds[j]]
			gkStart = gkEnds[j]
			ord, fresh := tab.put(fnv1a(gk), gk)
			if fresh {
				kv := make([]table.Value, len(groupBy))
				for gi := range groupBy {
					kv[gi] = colVal(sh, tu, gbRefs[gi])
				}
				keys = append(keys, kv)
				for i := 0; i < na; i++ {
					minI = append(minI, 0)
					minS = append(minS, "")
					sums = append(sums, 0)
					counts = append(counts, 0)
					seen = append(seen, false)
				}
			}
			base := int(ord) * na
			for i, a := range aggs {
				if a.Star {
					counts[base+i]++
					continue
				}
				v := colVal(sh, tu, aggRefs[i])
				if v.Null {
					continue
				}
				counts[base+i]++
				switch a.Func {
				case query.Min:
					if v.IsI {
						if !seen[base+i] || v.Int < minI[base+i] {
							minI[base+i] = v.Int
						}
					} else if !seen[base+i] || v.Str < minS[base+i] {
						minS[base+i] = v.Str
					}
				case query.Max:
					if v.IsI {
						if !seen[base+i] || v.Int > minI[base+i] {
							minI[base+i] = v.Int
						}
					} else if !seen[base+i] || v.Str > minS[base+i] {
						minS[base+i] = v.Str
					}
				case query.Sum, query.Avg:
					if v.IsI {
						sums[base+i] += float64(v.Int)
					}
				case query.Count:
					// count handled above
				}
				seen[base+i] = true
			}
		}
	}

	if e.TL != nil {
		e.R.Group(e.TL, len(tuples))
	}

	res := &Result{}
	for _, g := range groupBy {
		res.Columns = append(res.Columns, g.String())
	}
	for _, a := range aggs {
		name := a.As
		if name == "" {
			name = a.String()
		}
		res.Columns = append(res.Columns, name)
	}
	rowWidth := int64(len(res.Columns) * 8)
	for ord := range keys {
		base := ord * na
		var row []table.Value
		row = append(row, keys[ord]...)
		for i, a := range aggs {
			switch {
			case a.Func == query.Count:
				row = append(row, table.IntVal(int32(counts[base+i])))
			case !seen[base+i]:
				row = append(row, table.NullVal())
			case a.Func == query.Sum:
				row = append(row, table.IntVal(int32(sums[base+i])))
			case a.Func == query.Avg:
				row = append(row, table.IntVal(int32(sums[base+i]/float64(num.MaxI64(counts[base+i], 1)))))
			case a.Func == query.Min || a.Func == query.Max:
				if minS[base+i] != "" {
					row = append(row, table.StrVal(minS[base+i]))
				} else {
					row = append(row, table.IntVal(minI[base+i]))
				}
			}
		}
		if len(res.Rows) < RetainRows {
			res.Rows = append(res.Rows, row)
		}
		res.RowCount++
		res.Bytes += rowWidth
	}
	// An aggregate query over zero tuples still returns one all-NULL row
	// (no GROUP BY case), as SQL does.
	if len(groupBy) == 0 && res.RowCount == 0 {
		var row []table.Value
		for _, a := range aggs {
			if a.Func == query.Count {
				row = append(row, table.IntVal(0))
			} else {
				row = append(row, table.NullVal())
			}
		}
		res.Rows = append(res.Rows, row)
		res.RowCount = 1
		res.Bytes = rowWidth
	}
	return res, nil
}

// projectTuples renders plain projections.
func (e *Engine) projectTuples(sh *Shape, tuples []Tuple, out []query.ColRef) (*Result, error) {
	res := &Result{}
	if len(out) == 0 {
		// SELECT *: all columns of all tables.
		for i, a := range sh.Aliases {
			for _, c := range sh.Schemas[i].Columns {
				res.Columns = append(res.Columns, a+"."+c.Name)
			}
		}
	} else {
		for _, c := range out {
			res.Columns = append(res.Columns, c.String())
		}
	}
	var rowWidth int64
	refs := make([]boundRef, len(out))
	if len(out) == 0 {
		for _, s := range sh.Schemas {
			rowWidth += int64(s.RowBytes())
		}
	} else {
		for ci, c := range out {
			i := sh.Pos(c.Alias)
			if i < 0 {
				return nil, fmt.Errorf("exec: projection references alias %q outside the plan", c.Alias)
			}
			rowWidth += int64(sh.Schemas[i].ColumnStoredBytes(c.Col))
			refs[ci] = bindRef(sh, c.Alias, c.Col)
		}
	}
	for _, tu := range tuples {
		if len(res.Rows) < RetainRows {
			var row []table.Value
			if len(out) == 0 {
				for i := range sh.Aliases {
					rec := tu.Record(sh, i)
					for ci := range sh.Schemas[i].Columns {
						row = append(row, rec.Get(ci))
					}
				}
			} else {
				for _, r := range refs {
					row = append(row, colVal(sh, tu, r))
				}
			}
			res.Rows = append(res.Rows, row)
		}
		res.RowCount++
	}
	res.Bytes = res.RowCount * rowWidth
	if e.TL != nil {
		e.R.Memcpy(e.TL, res.Bytes)
	}
	return res, nil
}
