package exec

import (
	"fmt"

	"hybridndp/internal/hw"
	"hybridndp/internal/query"
	"hybridndp/internal/table"
	"hybridndp/internal/vclock"
)

// ScanAccess reads one base table through its access path: rows surviving
// the local predicate, restricted to the optional primary-key range
// [loPK, hiPK) used by the device engine's chunked pipeline. The scan charges
// flash reads and merge comparisons through the LSM layer, predicate
// evaluation per scanned record, and a selection-cache copy per match.
func (e *Engine) ScanAccess(ap AccessPath, loPK, hiPK *int32) ([][]byte, int64, error) {
	t, err := e.Cat.Table(ap.Ref.Table)
	if err != nil {
		return nil, 0, err
	}
	ac := e.Access()
	terms := 0
	if ap.Filter != nil {
		terms = ap.Filter.Terms()
	}
	width := projWidth(t.Schema, ap.Proj)

	var rows [][]byte
	scanned := 0

	view := e.viewOf(ap.Ref.Table)
	if ap.UseFilterIndex {
		pks, err := t.IndexSeek(ap.FilterIndex, ap.FilterValue, ac)
		if err != nil {
			return nil, 0, err
		}
		for _, pk := range pks {
			if loPK != nil && pk < *loPK {
				continue
			}
			if hiPK != nil && pk >= *hiPK {
				continue
			}
			rec, ok, err := t.GetByPKView(view, pk, ac)
			if err != nil {
				return nil, 0, err
			}
			if !ok {
				continue
			}
			scanned++
			if ap.Filter == nil || ap.Filter.Eval(rec) {
				rows = append(rows, rec.Data)
			}
		}
	} else {
		var lo, hi []byte
		if loPK != nil {
			lo = table.EncodePK(*loPK)
		}
		if hiPK != nil {
			hi = table.EncodePK(*hiPK)
		}
		for it := t.ScanView(view, lo, hi, ac); it.Valid(); it.Next() {
			scanned++
			rec := table.Record{Schema: t.Schema, Data: it.Entry().Value}
			if ap.Filter == nil || ap.Filter.Eval(rec) {
				rows = append(rows, it.Entry().Value)
			}
		}
	}

	if e.TL != nil {
		e.R.Eval(e.TL, scanned, terms)
		copyBytes := int64(len(rows)) * e.cacheWidth(width)
		e.R.Memcpy(e.TL, copyBytes)
		e.R.RowOverhead(e.TL, len(rows), hw.CatSelection)
	}
	return rows, width, nil
}

// cacheWidth is the per-record footprint in an intermediate cache: the
// projected row (row-cache format) or an 8-byte pointer (pointer-cache
// format, paper §4.2).
func (e *Engine) cacheWidth(rowWidth int64) int64 {
	if e.PointerCache {
		return 8
	}
	return rowWidth
}

// innerState caches the materialized inner side of a BNL/GHJ/NLJ join so
// chunked executions build it only once (the device builds its hash tables
// once and streams probes through them). For BNL with a bounded join buffer
// it also tracks how much outer data has streamed past, charging one extra
// inner pass every time the cumulative outer volume crosses a buffer-sized
// block boundary — the block-nested-loop rescan behaviour.
type innerState struct {
	rows   [][]byte
	hash   map[string][]int
	built  bool
	seeded bool
	width  int64

	scanDelta     map[string]vclock.Duration // cost of one inner scan pass
	cumOuterBytes int64
	chargedBlocks int64
}

// joinKeyOfTuple extracts the composite join key from the left tuple; ok is
// false when any component is NULL (SQL equality never matches NULL).
func joinKeyOfTuple(sh *Shape, tu Tuple, conds []BoundCond) (string, int64, bool) {
	var key []byte
	var bytes int64
	for _, c := range conds {
		v := tu.Record(sh, c.LeftPos).GetByName(c.LeftCol)
		if v.Null {
			return "", 0, false
		}
		key = appendValueKey(key, v)
	}
	bytes = int64(len(key))
	return string(key), bytes, true
}

// joinKeyOfRow extracts the composite key from a right-side record.
func joinKeyOfRow(rec table.Record, conds []BoundCond) (string, bool) {
	var key []byte
	for _, c := range conds {
		v := rec.GetByName(c.RightCol)
		if v.Null {
			return "", false
		}
		key = appendValueKey(key, v)
	}
	return string(key), true
}

func appendValueKey(key []byte, v table.Value) []byte {
	if v.IsI {
		return append(key, byte('i'), byte(v.Int>>24), byte(v.Int>>16), byte(v.Int>>8), byte(v.Int), 0)
	}
	return append(append(append(key, 's'), v.Str...), 0)
}

// JoinStep executes join step si of the pipeline over the given left tuples
// and returns the extended tuples. Inner-side state persists in the pipeline
// across chunked invocations.
func (e *Engine) JoinStep(pl *Pipeline, si int, left []Tuple) ([]Tuple, error) {
	step := pl.Plan.Steps[si]
	leftShape := pl.ShapeAt(si)
	switch step.Type {
	case BNL, NLJ, GHJ:
		return e.joinBuffered(pl, si, leftShape, left, step)
	case BNLI:
		return e.joinIndexed(pl, si, leftShape, left, step)
	default:
		return nil, fmt.Errorf("exec: unknown join type %v", step.Type)
	}
}

// joinBuffered implements BNL (hash table in the join buffer), NLJ and GHJ.
// All three compute the same equality-join result; they differ in the work
// charged: BNL re-reads the inner table once per outer block that exceeds
// the join buffer, NLJ charges the full cross-comparison, GHJ charges
// partitioning copies of both sides.
func (e *Engine) joinBuffered(pl *Pipeline, si int, leftShape *Shape, left []Tuple, step JoinStep) ([]Tuple, error) {
	inner, err := e.BuildInner(pl, si)
	if err != nil {
		return nil, err
	}

	// BNL rescan accounting: once the cumulative outer volume exceeds the
	// join buffer, each further buffer-sized outer block re-reads the inner
	// table (Exp 5: the device BNL bottleneck).
	if step.Type == BNL && e.JoinBuf > 0 && !inner.seeded {
		innerBytes := int64(len(inner.rows)) * e.cacheWidth(inner.width)
		if innerBytes > e.JoinBuf {
			inner.cumOuterBytes += int64(len(left)) * pl.TupleWidth(si+1)
			blocks := inner.cumOuterBytes / e.JoinBuf
			if blocks > inner.chargedBlocks && e.TL != nil {
				chargeRepeatDelta(e.TL, inner.scanDelta, int(blocks-inner.chargedBlocks))
				inner.chargedBlocks = blocks
			}
		}
	}

	var out []Tuple
	var cmpBytes int64
	cmps := 0
	for _, tu := range left {
		k, kb, ok := joinKeyOfTuple(leftShape, tu, step.Conds)
		if !ok {
			continue
		}
		cands := inner.hash[k]
		cmps += len(cands)
		cmpBytes += kb * int64(len(cands))
		for _, ri := range cands {
			out = append(out, extendTuple(tu, inner.rows[ri]))
		}
	}
	if e.TL != nil {
		e.R.HashProbe(e.TL, len(left))
		e.R.Memcmp(e.TL, cmpBytes, cmps)
		if step.Type == NLJ {
			// Naive nested loop compares every pair.
			pairs := int64(len(left)) * int64(len(inner.rows))
			e.R.Memcmp(e.TL, pairs*8, clampInt(pairs))
		}
		e.R.Memcpy(e.TL, int64(len(out))*e.cacheWidth(pl.Widths[si+1]))
		e.R.RowOverhead(e.TL, len(out), hw.CatBufferManage)
		e.chargeDeref(pl, si, len(out))
	}
	return out, nil
}

// chargeDeref books the pointer-cache dereferencing of the produced tuples
// (paper §4.2) when the engine stores intermediates in pointer format.
func (e *Engine) chargeDeref(pl *Pipeline, si, out int) {
	if !e.PointerCache || out == 0 {
		return
	}
	positions := si + 2
	e.R.Deref(e.TL, out, positions, int64(out)*pl.TupleWidth(positions))
}

// BuildInner materializes and hashes the inner side of join step si if not
// yet built. The cooperative executor calls this to pre-build the host-side
// hash tables while the device runs its initial execution, overlapping the
// two engines (paper §4.1).
func (e *Engine) BuildInner(pl *Pipeline, si int) (*innerState, error) {
	inner := pl.inner[si]
	if inner == nil {
		inner = &innerState{}
		pl.inner[si] = inner
	}
	if inner.built {
		return inner, nil
	}
	step := pl.Plan.Steps[si]
	snapBefore := accountSnapshot(e)
	rows, width, err := e.ScanAccess(step.Right, nil, nil)
	if err != nil {
		return nil, err
	}
	snapAfter := accountSnapshot(e)
	inner.scanDelta = accountDelta(snapBefore, snapAfter)
	e.hashInner(inner, rows, width, step)
	if e.TL != nil && step.Type == GHJ {
		// Grace hash join additionally partitions both sides through flash.
		e.R.Memcpy(e.TL, 2*int64(len(rows))*width)
	}
	return inner, nil
}

// SeedInner installs device-shipped, already-filtered rows as the inner side
// of join step si, so the host joins NDP outputs instead of rescanning the
// base table (H0 leaf offloading).
func (e *Engine) SeedInner(pl *Pipeline, si int, rows [][]byte) error {
	inner := pl.inner[si]
	if inner == nil {
		inner = &innerState{}
		pl.inner[si] = inner
	}
	step := pl.Plan.Steps[si]
	rt, err := e.Cat.Table(step.Right.Ref.Table)
	if err != nil {
		return err
	}
	e.hashInner(inner, rows, projWidth(rt.Schema, step.Right.Proj), step)
	inner.seeded = true
	return nil
}

// AppendInner extends a seeded inner side with further device-shipped rows
// (multi-device execution delivers each inner table's partitions as separate
// leaf batches). A first call on an unbuilt inner behaves like SeedInner.
func (e *Engine) AppendInner(pl *Pipeline, si int, rows [][]byte) error {
	inner := pl.inner[si]
	if inner == nil || !inner.built {
		return e.SeedInner(pl, si, rows)
	}
	step := pl.Plan.Steps[si]
	rt, err := e.Cat.Table(step.Right.Ref.Table)
	if err != nil {
		return err
	}
	base := len(inner.rows)
	inner.rows = append(inner.rows, rows...)
	for i, r := range rows {
		k, ok := joinKeyOfRow(table.Record{Schema: rt.Schema, Data: r}, step.Conds)
		if !ok {
			continue
		}
		inner.hash[k] = append(inner.hash[k], base+i)
	}
	if e.TL != nil {
		e.R.HashBuild(e.TL, len(rows))
		e.R.Memcpy(e.TL, int64(len(rows))*e.cacheWidth(inner.width))
	}
	return nil
}

// hashInner builds the in-buffer hash table over the inner rows.
func (e *Engine) hashInner(inner *innerState, rows [][]byte, width int64, step JoinStep) {
	rt, _ := e.Cat.Table(step.Right.Ref.Table)
	inner.rows = rows
	inner.width = width
	inner.hash = make(map[string][]int, len(rows))
	for i, r := range rows {
		k, ok := joinKeyOfRow(table.Record{Schema: rt.Schema, Data: r}, step.Conds)
		if !ok {
			continue
		}
		inner.hash[k] = append(inner.hash[k], i)
	}
	if e.TL != nil {
		e.R.HashBuild(e.TL, len(rows))
		e.R.Memcpy(e.TL, int64(len(rows))*e.cacheWidth(width))
	}
	inner.built = true
}

// accountDelta computes per-category cost differences between snapshots.
func accountDelta(before, after map[string]vclock.Duration) map[string]vclock.Duration {
	out := make(map[string]vclock.Duration)
	for cat, d := range after {
		if delta := d - before[cat]; delta > 0 {
			out[cat] = delta
		}
	}
	return out
}

// chargeRepeatDelta books the delta map times extra times.
func chargeRepeatDelta(tl *vclock.Timeline, delta map[string]vclock.Duration, times int) {
	if times <= 0 || delta == nil {
		return
	}
	for cat, d := range delta {
		tl.Charge(cat, d*vclock.Duration(times))
	}
}

func clampInt(v int64) int {
	const maxInt = int(^uint(0) >> 1)
	if v > int64(maxInt) {
		return maxInt
	}
	return int(v)
}

// joinIndexed implements BNLI: for every left tuple the right side is probed
// through an index — directly through the primary LSM tree when the join
// column is the PK, or through the secondary index with the two-stage
// secondary→primary seek of paper Fig. 9.
func (e *Engine) joinIndexed(pl *Pipeline, si int, leftShape *Shape, left []Tuple, step JoinStep) ([]Tuple, error) {
	rt, err := e.Cat.Table(step.Right.Ref.Table)
	if err != nil {
		return nil, err
	}
	if len(step.Conds) == 0 {
		return nil, fmt.Errorf("exec: BNLI join without conditions")
	}
	ac := e.Access()
	primary := step.Conds[0]
	residual := step.Conds[1:]
	terms := 0
	if step.Right.Filter != nil {
		terms = step.Right.Filter.Terms()
	}

	var out []Tuple
	fetched := 0
	for _, tu := range left {
		v := tu.Record(leftShape, primary.LeftPos).GetByName(primary.LeftCol)
		if v.Null {
			continue
		}
		var rrows []table.Record
		view := e.viewOf(step.Right.Ref.Table)
		if step.RightIndexIsPK {
			if !v.IsI {
				continue
			}
			rec, ok, err := rt.GetByPKView(view, v.Int, ac)
			if err != nil {
				return nil, err
			}
			if ok {
				rrows = append(rrows, rec)
			}
		} else {
			pks, err := rt.IndexSeek(step.RightIndex, v, ac)
			if err != nil {
				return nil, err
			}
			for _, pk := range pks {
				rec, ok, err := rt.GetByPKView(view, pk, ac)
				if err != nil {
					return nil, err
				}
				if ok {
					rrows = append(rrows, rec)
				}
			}
		}
		for _, rec := range rrows {
			fetched++
			if step.Right.Filter != nil && !step.Right.Filter.Eval(rec) {
				continue
			}
			match := true
			for _, c := range residual {
				lv := tu.Record(leftShape, c.LeftPos).GetByName(c.LeftCol)
				rv := rec.GetByName(c.RightCol)
				if lv.Null || rv.Null || lv.IsI != rv.IsI ||
					(lv.IsI && lv.Int != rv.Int) || (!lv.IsI && lv.Str != rv.Str) {
					match = false
					break
				}
			}
			if match {
				out = append(out, extendTuple(tu, rec.Data))
			}
		}
	}
	if e.TL != nil {
		e.R.Eval(e.TL, fetched, terms+len(residual))
		e.R.Memcpy(e.TL, int64(len(out))*e.cacheWidth(pl.Widths[si+1]))
		e.R.RowOverhead(e.TL, len(out), hw.CatBufferManage)
		e.chargeDeref(pl, si, len(out))
	}
	return out, nil
}

func extendTuple(tu Tuple, right []byte) Tuple {
	nt := make(Tuple, len(tu)+1)
	copy(nt, tu)
	nt[len(tu)] = right
	return nt
}

// groupAggregate hash-groups tuples and computes the aggregates.
func (e *Engine) groupAggregate(sh *Shape, tuples []Tuple, groupBy []query.ColRef, aggs []query.Aggregate) (*Result, error) {
	type aggState struct {
		key    []table.Value
		minI   []int32
		minS   []string
		sums   []float64
		counts []int64
		seen   []bool
	}
	groups := map[string]*aggState{}
	var order []string

	for _, tu := range tuples {
		var gk []byte
		var keyVals []table.Value
		for _, g := range groupBy {
			v := tu.Col(sh, g.Alias, g.Col)
			keyVals = append(keyVals, v)
			gk = appendValueKey(gk, v)
		}
		st, ok := groups[string(gk)]
		if !ok {
			st = &aggState{
				key:    keyVals,
				minI:   make([]int32, len(aggs)),
				minS:   make([]string, len(aggs)),
				sums:   make([]float64, len(aggs)),
				counts: make([]int64, len(aggs)),
				seen:   make([]bool, len(aggs)),
			}
			groups[string(gk)] = st
			order = append(order, string(gk))
		}
		for i, a := range aggs {
			if a.Star {
				st.counts[i]++
				continue
			}
			v := tu.Col(sh, a.Arg.Alias, a.Arg.Col)
			if v.Null {
				continue
			}
			st.counts[i]++
			switch a.Func {
			case query.Min:
				if v.IsI {
					if !st.seen[i] || v.Int < st.minI[i] {
						st.minI[i] = v.Int
					}
				} else if !st.seen[i] || v.Str < st.minS[i] {
					st.minS[i] = v.Str
				}
			case query.Max:
				if v.IsI {
					if !st.seen[i] || v.Int > st.minI[i] {
						st.minI[i] = v.Int
					}
				} else if !st.seen[i] || v.Str > st.minS[i] {
					st.minS[i] = v.Str
				}
			case query.Sum, query.Avg:
				if v.IsI {
					st.sums[i] += float64(v.Int)
				}
			case query.Count:
				// count handled above
			}
			st.seen[i] = true
		}
	}

	if e.TL != nil {
		e.R.Group(e.TL, len(tuples))
	}

	res := &Result{}
	for _, g := range groupBy {
		res.Columns = append(res.Columns, g.String())
	}
	for _, a := range aggs {
		name := a.As
		if name == "" {
			name = a.String()
		}
		res.Columns = append(res.Columns, name)
	}
	rowWidth := int64(len(res.Columns) * 8)
	for _, gk := range order {
		st := groups[gk]
		var row []table.Value
		row = append(row, st.key...)
		for i, a := range aggs {
			switch {
			case a.Func == query.Count:
				row = append(row, table.IntVal(int32(st.counts[i])))
			case !st.seen[i]:
				row = append(row, table.NullVal())
			case a.Func == query.Sum:
				row = append(row, table.IntVal(int32(st.sums[i])))
			case a.Func == query.Avg:
				row = append(row, table.IntVal(int32(st.sums[i]/float64(maxI64(st.counts[i], 1)))))
			case a.Func == query.Min || a.Func == query.Max:
				if st.minS[i] != "" {
					row = append(row, table.StrVal(st.minS[i]))
				} else {
					row = append(row, table.IntVal(st.minI[i]))
				}
			}
		}
		if len(res.Rows) < RetainRows {
			res.Rows = append(res.Rows, row)
		}
		res.RowCount++
		res.Bytes += rowWidth
	}
	// An aggregate query over zero tuples still returns one all-NULL row
	// (no GROUP BY case), as SQL does.
	if len(groupBy) == 0 && res.RowCount == 0 {
		var row []table.Value
		for _, a := range aggs {
			if a.Func == query.Count {
				row = append(row, table.IntVal(0))
			} else {
				row = append(row, table.NullVal())
			}
		}
		res.Rows = append(res.Rows, row)
		res.RowCount = 1
		res.Bytes = rowWidth
	}
	return res, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// projectTuples renders plain projections.
func (e *Engine) projectTuples(sh *Shape, tuples []Tuple, out []query.ColRef) (*Result, error) {
	res := &Result{}
	if len(out) == 0 {
		// SELECT *: all columns of all tables.
		for i, a := range sh.Aliases {
			for _, c := range sh.Schemas[i].Columns {
				res.Columns = append(res.Columns, a+"."+c.Name)
			}
		}
	} else {
		for _, c := range out {
			res.Columns = append(res.Columns, c.String())
		}
	}
	var rowWidth int64
	if len(out) == 0 {
		for _, s := range sh.Schemas {
			rowWidth += int64(s.RowBytes())
		}
	} else {
		for _, c := range out {
			i := sh.Pos(c.Alias)
			if i < 0 {
				return nil, fmt.Errorf("exec: projection references alias %q outside the plan", c.Alias)
			}
			rowWidth += int64(sh.Schemas[i].ColumnStoredBytes(c.Col))
		}
	}
	for _, tu := range tuples {
		if len(res.Rows) < RetainRows {
			var row []table.Value
			if len(out) == 0 {
				for i := range sh.Aliases {
					rec := tu.Record(sh, i)
					for ci := range sh.Schemas[i].Columns {
						row = append(row, rec.Get(ci))
					}
				}
			} else {
				for _, c := range out {
					row = append(row, tu.Col(sh, c.Alias, c.Col))
				}
			}
			res.Rows = append(res.Rows, row)
		}
		res.RowCount++
	}
	res.Bytes = res.RowCount * rowWidth
	if e.TL != nil {
		e.R.Memcpy(e.TL, res.Bytes)
	}
	return res, nil
}
