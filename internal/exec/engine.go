package exec

import (
	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
	"hybridndp/internal/lsm"
	"hybridndp/internal/table"
	"hybridndp/internal/vclock"
)

// Engine executes physical plans against a catalog, charging all work to its
// timeline at its rate table. A host engine has effectively unbounded
// buffers; the device engine (internal/device) wraps an Engine with the
// paper's memory reservations and the pointer-cache switch.
type Engine struct {
	Cat *table.Catalog
	TL  *vclock.Timeline
	R   hw.Rates

	// Cache is the engine's block cache (RocksDB block cache on the host,
	// data-block buffer on the device); nil disables caching.
	Cache *lsm.BlockCache
	// Bloom, when set, accumulates Bloom-filter probe outcomes for the
	// metrics registry (host engines only; the device never probes filters).
	Bloom *lsm.BloomStats
	// Views maps table names to frozen read views (update-aware NDP): the
	// device engine resolves primary-data reads against the snapshot that
	// accompanied the invocation, so host-side writes issued after the
	// invocation stay invisible to it. Nil entries fall back to live reads.
	Views map[string]*lsm.View
	// JoinBuf bounds the join buffer (hw_MSJ on device); 0 = unbounded.
	// A bounded buffer forces extra BNL passes over the inner table.
	JoinBuf int64
	// SelBuf bounds the selection result cache (hw_MSS on device).
	SelBuf int64
	// PointerCache stores intermediate results as pointers instead of
	// copied rows (paper §4.2 cache structure optimization).
	PointerCache bool
	// BatchSize is the row capacity of the columnar batches the engine's
	// operators process at a time (0 = DefaultBatchSize). Charges derive from
	// accumulated batch counts with the same integer math at every size, so
	// virtual time is byte-identical for any value; the knob only trades
	// wall-clock locality against scratch memory.
	BatchSize int
	// Faults, when set, injects flash read failures into this engine's
	// storage accesses (chaos runs; see internal/fault).
	Faults flash.Faults
}

// Access returns the engine's LSM access context.
func (e *Engine) Access() lsm.Access {
	return lsm.Access{TL: e.TL, R: e.R, Cache: e.Cache, Bloom: e.Bloom, Faults: e.Faults}
}

// viewOf returns the frozen view for a table, if the engine reads through a
// snapshot.
func (e *Engine) viewOf(tableName string) *lsm.View {
	if e.Views == nil {
		return nil
	}
	return e.Views[tableName]
}

// Result is the output of a (partial) plan execution.
type Result struct {
	Columns  []string
	Rows     [][]table.Value // retained rows (capped at RetainRows)
	RowCount int64
	Bytes    int64 // total output payload bytes
}

// RetainRows caps the rows materialized into Result.Rows; counts and byte
// totals always cover the full output.
const RetainRows = 100

// RunPlan executes the whole plan on this engine (host-only / full-NDP
// execution paths).
func (e *Engine) RunPlan(p *Plan) (*Result, error) {
	pl, err := e.StartPipeline(p)
	if err != nil {
		return nil, err
	}
	rows, _, err := e.ScanAccess(p.Driving, nil, nil)
	if err != nil {
		return nil, err
	}
	tuples := pl.MakeTuples(rows)
	for si := range p.Steps {
		tuples, err = e.JoinStep(pl, si, tuples)
		if err != nil {
			return nil, err
		}
	}
	return e.Finalize(pl, tuples)
}

// Pipeline carries the resolved state of one plan execution: the tuple shape
// and per-position projected widths, plus cached inner-side state so chunked
// device execution builds each join's hash table only once.
type Pipeline struct {
	Plan   *Plan
	Shapes []*Shape // Shapes[i] = shape after i join steps
	Widths []int64  // projected bytes per tuple position
	inner  []*innerState

	// conds holds per-step join conditions with verified column indices (the
	// plan's conds are not mutated; hand-built plans may carry unresolved
	// indices).
	conds [][]BoundCond
	// keyBuf is the reusable scratch arena for join/group-key encoding (one
	// batch of keys at a time).
	keyBuf []byte
	// probeEnd/probeEnt are the reusable batch-probe scratch vectors: per
	// batch tuple, the key's end offset in keyBuf and its resolved hash-table
	// entry (-1 = NULL key or no match).
	probeEnd []int32
	probeEnt []int32
	// arena backs tuple extension storage (see tupleArena).
	arena tupleArena
}

// StartPipeline resolves tables and builds shapes for the plan.
func (e *Engine) StartPipeline(p *Plan) (*Pipeline, error) {
	t0, err := e.Cat.Table(p.Driving.Ref.Table)
	if err != nil {
		return nil, err
	}
	sh := NewShape([]string{p.Driving.Ref.Alias}, []*table.Schema{t0.Schema})
	pl := &Pipeline{
		Plan:   p,
		Shapes: []*Shape{sh},
		Widths: []int64{projWidth(t0.Schema, p.Driving.Proj)},
		inner:  make([]*innerState, len(p.Steps)),
	}
	for _, s := range p.Steps {
		tr, err := e.Cat.Table(s.Right.Ref.Table)
		if err != nil {
			return nil, err
		}
		sh = sh.Extend(s.Right.Ref.Alias, tr.Schema)
		pl.Shapes = append(pl.Shapes, sh)
		pl.Widths = append(pl.Widths, projWidth(tr.Schema, s.Right.Proj))
	}
	pl.conds = make([][]BoundCond, len(p.Steps))
	for si, s := range p.Steps {
		cs := make([]BoundCond, len(s.Conds))
		copy(cs, s.Conds)
		leftSh := pl.Shapes[si]
		rightSchema := pl.Shapes[si+1].Schemas[len(pl.Shapes[si+1].Schemas)-1]
		for i := range cs {
			c := &cs[i]
			if c.LeftPos >= 0 && c.LeftPos < len(leftSh.Schemas) {
				ls := leftSh.Schemas[c.LeftPos]
				if c.LeftColIdx < 0 || c.LeftColIdx >= len(ls.Columns) || ls.Columns[c.LeftColIdx].Name != c.LeftCol {
					c.LeftColIdx = ls.ColumnIndex(c.LeftCol)
				}
			}
			if c.RightColIdx < 0 || c.RightColIdx >= len(rightSchema.Columns) || rightSchema.Columns[c.RightColIdx].Name != c.RightCol {
				c.RightColIdx = rightSchema.ColumnIndex(c.RightCol)
			}
		}
		pl.conds[si] = cs
	}
	return pl, nil
}

// MakeTuples materializes scan rows as single-position driving tuples backed
// by the pipeline's arena (one block allocation per tupleArenaBlock rows,
// instead of one slice header per row).
func (pl *Pipeline) MakeTuples(rows [][]byte) []Tuple {
	tuples := make([]Tuple, len(rows))
	for i, r := range rows {
		t := pl.arena.alloc(1)
		t[0] = r
		tuples[i] = t
	}
	return tuples
}

// FinalShape returns the shape after all join steps.
func (pl *Pipeline) FinalShape() *Shape { return pl.Shapes[len(pl.Shapes)-1] }

// ShapeAt returns the shape after k join steps.
func (pl *Pipeline) ShapeAt(k int) *Shape { return pl.Shapes[k] }

// TupleWidth reports the projected byte width of a tuple with the first n
// positions populated.
func (pl *Pipeline) TupleWidth(n int) int64 {
	var w int64
	for i := 0; i < n && i < len(pl.Widths); i++ {
		w += pl.Widths[i]
	}
	return w
}

// projWidth sums the aligned stored widths of the projected columns (all
// columns when proj is empty — full projection).
func projWidth(s *table.Schema, proj []string) int64 {
	if len(proj) == 0 {
		return int64(s.RowBytes())
	}
	var w int64
	for _, c := range proj {
		w += int64(s.ColumnStoredBytes(c))
	}
	if w == 0 {
		w = 4
	}
	return w
}

// Finalize applies grouping/aggregation or projection to the joined tuples.
func (e *Engine) Finalize(pl *Pipeline, tuples []Tuple) (*Result, error) {
	p := pl.Plan
	sh := pl.FinalShape()
	if len(p.Aggregates) > 0 || len(p.GroupBy) > 0 {
		return e.groupAggregate(sh, tuples, p.GroupBy, p.Aggregates)
	}
	return e.projectTuples(sh, tuples, p.Output)
}

// accountSnapshot captures the timeline's account for pass-cost deltas.
func accountSnapshot(e *Engine) map[string]vclock.Duration {
	if e.TL == nil {
		return nil
	}
	return e.TL.Account()
}
