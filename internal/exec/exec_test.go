package exec

import (
	"fmt"
	"testing"

	"hybridndp/internal/expr"
	"hybridndp/internal/flash"
	"hybridndp/internal/hw"
	"hybridndp/internal/kv"
	"hybridndp/internal/lsm"
	"hybridndp/internal/query"
	"hybridndp/internal/table"
	"hybridndp/internal/vclock"
)

// fixture builds customers(id, region) × orders(id, customer_id, amount)
// with a secondary index on orders.customer_id.
func fixture(t testing.TB, nCustomers, nOrders int) *table.Catalog {
	t.Helper()
	fl := flash.New(hw.Cosmos(), 0)
	db := kv.Open(fl, hw.Cosmos(), lsm.DefaultConfig())
	cat := table.NewCatalog(db)

	customers := table.MustSchema("customers", []table.Column{
		{Name: "id", Type: table.Int32, Size: 4},
		{Name: "region", Type: table.Char, Size: 8},
	}, "id")
	orders := table.MustSchema("orders", []table.Column{
		{Name: "id", Type: table.Int32, Size: 4},
		{Name: "customer_id", Type: table.Int32, Size: 4},
		{Name: "amount", Type: table.Int32, Size: 4, Nullable: true},
	}, "id", table.SecondaryIndex{Name: "idx_customer", Column: "customer_id"})

	tc, err := cat.CreateTable(customers)
	if err != nil {
		t.Fatal(err)
	}
	to, err := cat.CreateTable(orders)
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"north", "south", "east", "west"}
	for i := 1; i <= nCustomers; i++ {
		if err := tc.Insert([]table.Value{
			table.IntVal(int32(i)), table.StrVal(regions[i%4]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= nOrders; i++ {
		amount := table.IntVal(int32(10 + i%100))
		if i%13 == 0 {
			amount = table.NullVal()
		}
		if err := to.Insert([]table.Value{
			table.IntVal(int32(i)), table.IntVal(int32(1 + i%nCustomers)), amount,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return cat
}

func joinQuery() *query.Query {
	return &query.Query{
		Name:   "q",
		Tables: []query.TableRef{{Alias: "c", Table: "customers"}, {Alias: "o", Table: "orders"}},
		Filters: map[string]expr.Pred{
			"c": expr.Cmp{Col: "region", Op: expr.Eq, Val: table.StrVal("north")},
		},
		Joins:      []query.JoinCond{{LeftAlias: "o", LeftCol: "customer_id", RightAlias: "c", RightCol: "id"}},
		Aggregates: []query.Aggregate{{Func: query.Count, Star: true, As: "n"}},
	}
}

// planFor builds the physical plan by hand (no optimizer dependency).
func planFor(q *query.Query, jt JoinType, idxPK bool, idxName string) *Plan {
	return &Plan{
		Query: q,
		Driving: AccessPath{
			Ref:    q.Tables[0],
			Filter: q.Filters["c"],
			Proj:   []string{"id"},
			EstSel: 0.25,
		},
		Steps: []JoinStep{{
			Right: AccessPath{Ref: q.Tables[1], Proj: []string{"customer_id"}, EstSel: 1},
			Conds: []BoundCond{{LeftPos: 0, LeftCol: "id", RightCol: "customer_id"}},
			Type:  jt, RightIndexIsPK: idxPK, RightIndex: idxName,
		}},
		Aggregates: q.Aggregates,
	}
}

func hostEngine(cat *table.Catalog) *Engine {
	return &Engine{Cat: cat, TL: vclock.NewTimeline("host"), R: hw.HostRates(hw.Cosmos())}
}

func TestScanAccessFilterAndCharges(t *testing.T) {
	cat := fixture(t, 40, 1000)
	e := hostEngine(cat)
	ap := AccessPath{
		Ref:    query.TableRef{Alias: "c", Table: "customers"},
		Filter: expr.Cmp{Col: "region", Op: expr.Eq, Val: table.StrVal("north")},
		Proj:   []string{"id"},
	}
	rows, width, err := e.ScanAccess(ap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("north customers = %d, want 10", len(rows))
	}
	if width != 4 {
		t.Fatalf("projected width = %d", width)
	}
	if e.TL.Booked(hw.CatEval) <= 0 || e.TL.Booked(hw.CatFlashLoad) <= 0 {
		t.Fatal("scan charged nothing")
	}
}

func TestScanAccessPKRange(t *testing.T) {
	cat := fixture(t, 40, 1000)
	e := hostEngine(cat)
	lo, hi := int32(100), int32(200)
	rows, _, err := e.ScanAccess(AccessPath{Ref: query.TableRef{Alias: "o", Table: "orders"}}, &lo, &hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("PK range [100,200) returned %d rows", len(rows))
	}
	ordersT, _ := cat.Table("orders")
	for _, r := range rows {
		pk := (table.Record{Schema: ordersT.Schema, Data: r}).PK()
		if pk < lo || pk >= hi {
			t.Fatalf("pk %d outside range", pk)
		}
	}
}

func TestScanAccessIndexEquality(t *testing.T) {
	cat := fixture(t, 40, 1000)
	e := hostEngine(cat)
	ap := AccessPath{
		Ref:            query.TableRef{Alias: "o", Table: "orders"},
		Filter:         expr.Cmp{Col: "customer_id", Op: expr.Eq, Val: table.IntVal(7)},
		UseFilterIndex: true,
		FilterIndex:    "idx_customer",
		FilterValue:    table.IntVal(7),
	}
	rows, _, err := e.ScanAccess(ap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := hostEngine(cat).ScanAccess(AccessPath{
		Ref:    query.TableRef{Alias: "o", Table: "orders"},
		Filter: ap.Filter,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(full) || len(rows) == 0 {
		t.Fatalf("index access found %d rows, scan found %d", len(rows), len(full))
	}
	// PK-range restriction applies to the index path too.
	lo := int32(500)
	bounded, _, err := hostEngine(cat).ScanAccess(ap, &lo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded) >= len(rows) {
		t.Fatal("PK bound did not restrict the index path")
	}
}

func TestAllJoinAlgorithmsAgree(t *testing.T) {
	cat := fixture(t, 40, 2000)
	q := joinQuery()
	var ref int64 = -1
	for _, v := range []struct {
		jt      JoinType
		idxPK   bool
		idxName string
	}{
		{BNL, false, ""}, {NLJ, false, ""}, {GHJ, false, ""}, {BNLI, false, "idx_customer"},
	} {
		e := hostEngine(cat)
		res, err := e.RunPlan(planFor(q, v.jt, v.idxPK, v.idxName))
		if err != nil {
			t.Fatalf("%v: %v", v.jt, err)
		}
		n := int64(res.Rows[0][0].Int)
		if ref < 0 {
			ref = n
		} else if n != ref {
			t.Fatalf("%v counted %d, reference %d", v.jt, n, ref)
		}
	}
	if ref != 500 { // customers 1..40, north = i%4==1 → 10 customers × 50 orders
		t.Fatalf("join count = %d, want 500", ref)
	}
}

func TestBNLIPKJoin(t *testing.T) {
	cat := fixture(t, 40, 500)
	// orders ⋈ customers on customers.id (the PK side).
	q := &query.Query{
		Name:   "pkjoin",
		Tables: []query.TableRef{{Alias: "o", Table: "orders"}, {Alias: "c", Table: "customers"}},
		Joins:  []query.JoinCond{{LeftAlias: "o", LeftCol: "customer_id", RightAlias: "c", RightCol: "id"}},
		Aggregates: []query.Aggregate{
			{Func: query.Count, Star: true, As: "n"},
			{Func: query.Max, Arg: query.ColRef{Alias: "o", Col: "amount"}, As: "maxa"},
		},
	}
	p := &Plan{
		Query:   q,
		Driving: AccessPath{Ref: q.Tables[0], EstSel: 1},
		Steps: []JoinStep{{
			Right: AccessPath{Ref: q.Tables[1], EstSel: 1},
			Conds: []BoundCond{{LeftPos: 0, LeftCol: "customer_id", RightCol: "id"}},
			Type:  BNLI, RightIndexIsPK: true,
		}},
		Aggregates: q.Aggregates,
	}
	res, err := hostEngine(cat).RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 500 {
		t.Fatalf("count = %v, want 500 (every order has its customer)", res.Rows[0][0])
	}
	if res.Rows[0][1].Int != 109 {
		t.Fatalf("max amount = %v, want 109", res.Rows[0][1])
	}
}

func TestNLJChargesMoreThanBNL(t *testing.T) {
	cat := fixture(t, 40, 2000)
	q := joinQuery()
	eb := hostEngine(cat)
	if _, err := eb.RunPlan(planFor(q, BNL, false, "")); err != nil {
		t.Fatal(err)
	}
	en := hostEngine(cat)
	if _, err := en.RunPlan(planFor(q, NLJ, false, "")); err != nil {
		t.Fatal(err)
	}
	if en.TL.Now() <= eb.TL.Now() {
		t.Fatalf("NLJ (%v) must cost more than hash BNL (%v)", en.TL.Now(), eb.TL.Now())
	}
}

func TestBoundedJoinBufferChargesPasses(t *testing.T) {
	cat := fixture(t, 40, 4000)
	q := joinQuery()
	// Outer (driving customers) too small to trigger passes — use orders as
	// driving by swapping the plan: orders ⋈ customers with a tiny buffer.
	p := &Plan{
		Query:   q,
		Driving: AccessPath{Ref: query.TableRef{Alias: "o", Table: "orders"}, EstSel: 1},
		Steps: []JoinStep{{
			Right: AccessPath{Ref: query.TableRef{Alias: "c", Table: "customers"},
				Filter: q.Filters["c"], EstSel: 0.25},
			Conds: []BoundCond{{LeftPos: 0, LeftCol: "customer_id", RightCol: "id"}},
			Type:  BNL,
		}},
		Aggregates: q.Aggregates,
	}
	unbounded := hostEngine(cat)
	if _, err := unbounded.RunPlan(p); err != nil {
		t.Fatal(err)
	}
	bounded := hostEngine(cat)
	bounded.JoinBuf = 64 // bytes — forces inner re-passes per outer block
	if _, err := bounded.RunPlan(p); err != nil {
		t.Fatal(err)
	}
	if bounded.TL.Now() <= unbounded.TL.Now() {
		t.Fatalf("bounded buffer (%v) must cost more than unbounded (%v)",
			bounded.TL.Now(), unbounded.TL.Now())
	}
}

func TestPointerCacheCheapensCopiesButDerefs(t *testing.T) {
	cat := fixture(t, 40, 2000)
	q := joinQuery()
	p := planFor(q, BNL, false, "")
	// Full-width rows: the pointer format (8 B/position) only pays off when
	// rows are wider than a pointer.
	p.Driving.Proj = nil
	p.Steps[0].Right.Proj = nil
	row := hostEngine(cat)
	row.PointerCache = false
	row.RunPlan(p)
	ptr := hostEngine(cat)
	ptr.PointerCache = true
	ptr.RunPlan(p)
	if ptr.TL.Booked(hw.CatMemcpy) >= row.TL.Booked(hw.CatMemcpy) {
		t.Fatal("pointer cache must copy fewer bytes")
	}
	if ptr.TL.Booked(hw.CatBufferManage) <= row.TL.Booked(hw.CatBufferManage) {
		t.Fatal("pointer cache must pay dereferencing")
	}
}

func TestGroupBy(t *testing.T) {
	cat := fixture(t, 40, 2000)
	q := &query.Query{
		Name:   "grouped",
		Tables: []query.TableRef{{Alias: "c", Table: "customers"}, {Alias: "o", Table: "orders"}},
		Joins:  []query.JoinCond{{LeftAlias: "o", LeftCol: "customer_id", RightAlias: "c", RightCol: "id"}},
		GroupBy: []query.ColRef{
			{Alias: "c", Col: "region"},
		},
		Aggregates: []query.Aggregate{
			{Func: query.Count, Star: true, As: "n"},
			{Func: query.Sum, Arg: query.ColRef{Alias: "o", Col: "amount"}, As: "s"},
			{Func: query.Avg, Arg: query.ColRef{Alias: "o", Col: "amount"}, As: "a"},
			{Func: query.Min, Arg: query.ColRef{Alias: "o", Col: "amount"}, As: "lo"},
		},
	}
	p := &Plan{
		Query:   q,
		Driving: AccessPath{Ref: q.Tables[0], EstSel: 1},
		Steps: []JoinStep{{
			Right: AccessPath{Ref: q.Tables[1], EstSel: 1},
			Conds: []BoundCond{{LeftPos: 0, LeftCol: "id", RightCol: "customer_id"}},
			Type:  BNL,
		}},
		GroupBy:    q.GroupBy,
		Aggregates: q.Aggregates,
	}
	res, err := hostEngine(cat).RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount != 4 {
		t.Fatalf("groups = %d, want 4 regions", res.RowCount)
	}
	var total int64
	for _, row := range res.Rows {
		total += int64(row[1].Int)
	}
	if total != 2000 {
		t.Fatalf("counts sum to %d, want 2000", total)
	}
}

// TestGroupAggregateOrderPreserved pins the group output order to the first
// occurrence of each key in the join output: the open-addressing group table
// must reproduce the insertion order the string-keyed map maintained via its
// explicit order slice. Customers scan in PK order and regions cycle
// south/east/west/north from id 1, so that is the only acceptable output
// order.
func TestGroupAggregateOrderPreserved(t *testing.T) {
	cat := fixture(t, 40, 2000)
	q := &query.Query{
		Name:    "grouped-order",
		Tables:  []query.TableRef{{Alias: "c", Table: "customers"}, {Alias: "o", Table: "orders"}},
		Joins:   []query.JoinCond{{LeftAlias: "o", LeftCol: "customer_id", RightAlias: "c", RightCol: "id"}},
		GroupBy: []query.ColRef{{Alias: "c", Col: "region"}},
		Aggregates: []query.Aggregate{
			{Func: query.Count, Star: true, As: "n"},
		},
	}
	p := &Plan{
		Query:   q,
		Driving: AccessPath{Ref: q.Tables[0], EstSel: 1},
		Steps: []JoinStep{{
			Right: AccessPath{Ref: q.Tables[1], EstSel: 1},
			Conds: []BoundCond{{LeftPos: 0, LeftCol: "id", RightCol: "customer_id"}},
			Type:  BNL,
		}},
		GroupBy:    q.GroupBy,
		Aggregates: q.Aggregates,
	}
	res, err := hostEngine(cat).RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"south", "east", "west", "north"}
	if res.RowCount != int64(len(want)) {
		t.Fatalf("groups = %d, want %d", res.RowCount, len(want))
	}
	for i, w := range want {
		if got := res.Rows[i][0].Str; got != w {
			t.Fatalf("group %d = %q, want %q (first-occurrence order violated)", i, got, w)
		}
	}
}

func TestEmptyAggregateReturnsNullRow(t *testing.T) {
	cat := fixture(t, 40, 200)
	q := joinQuery()
	q.Filters["c"] = expr.Cmp{Col: "region", Op: expr.Eq, Val: table.StrVal("atlantis")}
	q.Aggregates = []query.Aggregate{
		{Func: query.Min, Arg: query.ColRef{Alias: "o", Col: "amount"}, As: "m"},
		{Func: query.Count, Star: true, As: "n"},
	}
	p := planFor(q, BNL, false, "")
	p.Driving.Filter = q.Filters["c"]
	p.Aggregates = q.Aggregates
	res, err := hostEngine(cat).RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount != 1 || !res.Rows[0][0].Null || res.Rows[0][1].Int != 0 {
		t.Fatalf("empty aggregate = %+v, want [NULL, 0]", res.Rows[0])
	}
}

func TestProjection(t *testing.T) {
	cat := fixture(t, 20, 100)
	q := &query.Query{
		Name:   "proj",
		Tables: []query.TableRef{{Alias: "c", Table: "customers"}, {Alias: "o", Table: "orders"}},
		Joins:  []query.JoinCond{{LeftAlias: "o", LeftCol: "customer_id", RightAlias: "c", RightCol: "id"}},
		Output: []query.ColRef{{Alias: "c", Col: "region"}, {Alias: "o", Col: "amount"}},
	}
	p := &Plan{
		Query:   q,
		Driving: AccessPath{Ref: q.Tables[0], EstSel: 1},
		Steps: []JoinStep{{
			Right: AccessPath{Ref: q.Tables[1], EstSel: 1},
			Conds: []BoundCond{{LeftPos: 0, LeftCol: "id", RightCol: "customer_id"}},
			Type:  BNL,
		}},
		Output: q.Output,
	}
	res, err := hostEngine(cat).RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount != 100 {
		t.Fatalf("projection rows = %d", res.RowCount)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "c.region" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 100 {
		t.Fatalf("retained %d rows", len(res.Rows))
	}
	if res.Bytes <= 0 {
		t.Fatal("projection bytes not tracked")
	}
	// SELECT * shape.
	p.Output = nil
	res, err = hostEngine(cat).RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 5 { // 2 customer cols + 3 order cols
		t.Fatalf("SELECT * columns = %v", res.Columns)
	}
}

func TestSeedInnerUsesShippedRows(t *testing.T) {
	cat := fixture(t, 40, 1000)
	q := joinQuery()
	p := planFor(q, BNL, false, "")
	e := hostEngine(cat)
	pl, err := e.StartPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	// Ship only orders of customer 1 as the seeded inner side.
	all, _, err := e.ScanAccess(AccessPath{Ref: query.TableRef{Alias: "o", Table: "orders"}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ordersT, _ := cat.Table("orders")
	var shipped [][]byte
	for _, r := range all {
		// Customer 4 is in region "north" (regions[i%4] with i=4).
		if (table.Record{Schema: ordersT.Schema, Data: r}).GetByName("customer_id").Int == 4 {
			shipped = append(shipped, r)
		}
	}
	if err := e.SeedInner(pl, 0, shipped); err != nil {
		t.Fatal(err)
	}
	rows, _, err := e.ScanAccess(p.Driving, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tuples := make([]Tuple, len(rows))
	for i, r := range rows {
		tuples[i] = Tuple{r}
	}
	out, err := e.JoinStep(pl, 0, tuples)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(shipped) {
		t.Fatalf("seeded join produced %d tuples, want %d", len(out), len(shipped))
	}
}

func TestEngineReadsThroughViews(t *testing.T) {
	cat := fixture(t, 20, 300)
	ot, _ := cat.Table("orders")
	frozen := map[string]*lsm.View{"orders": ot.Data.View()}

	// Post-snapshot writes (update-aware NDP: invisible on device).
	for i := int32(301); i <= 400; i++ {
		if err := ot.Insert([]table.Value{
			table.IntVal(i), table.IntVal(1), table.IntVal(1),
		}); err != nil {
			t.Fatal(err)
		}
	}

	ap := AccessPath{Ref: query.TableRef{Alias: "o", Table: "orders"}}
	snapEng := hostEngine(cat)
	snapEng.Views = frozen
	snapRows, _, err := snapEng.ScanAccess(ap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	liveRows, _, err := hostEngine(cat).ScanAccess(ap, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snapRows) != 300 {
		t.Fatalf("snapshot engine saw %d rows, want 300", len(snapRows))
	}
	if len(liveRows) != 400 {
		t.Fatalf("live engine saw %d rows, want 400", len(liveRows))
	}
	// BNLI point lookups honour the view too.
	rec, ok, err := ot.GetByPKView(frozen["orders"], 350, lsm.Access{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("view resolved post-snapshot PK 350: %v", rec.PK())
	}
}

func TestShapeAndTuple(t *testing.T) {
	cat := fixture(t, 5, 5)
	ct, _ := cat.Table("customers")
	ot, _ := cat.Table("orders")
	sh := NewShape([]string{"c"}, []*table.Schema{ct.Schema})
	sh2 := sh.Extend("o", ot.Schema)
	if sh2.Pos("c") != 0 || sh2.Pos("o") != 1 || sh2.Pos("x") != -1 {
		t.Fatal("shape positions wrong")
	}
	if sh.Pos("o") != -1 {
		t.Fatal("Extend must not mutate the original shape")
	}
	crow, _ := ct.Schema.EncodeRow([]table.Value{table.IntVal(9), table.StrVal("r")})
	tu := Tuple{crow, nil}
	if tu.Col(sh2, "c", "id").Int != 9 {
		t.Fatal("tuple column resolution broken")
	}
	if !tu.Col(sh2, "o", "amount").Null {
		t.Fatal("nil row position must yield NULL")
	}
	if !tu.Col(sh2, "zz", "id").Null {
		t.Fatal("unknown alias must yield NULL")
	}
}

func TestPlanStringAndAliases(t *testing.T) {
	q := joinQuery()
	p := planFor(q, BNLI, false, "idx_customer")
	if p.NumTables() != 2 {
		t.Fatal("NumTables")
	}
	al := p.Aliases()
	if len(al) != 2 || al[0] != "c" || al[1] != "o" {
		t.Fatalf("aliases = %v", al)
	}
	s := p.String()
	if s == "" || len(s) < 10 {
		t.Fatal("plan rendering empty")
	}
	for _, jt := range []JoinType{BNL, BNLI, NLJ, GHJ, JoinType(99)} {
		if jt.String() == "" {
			t.Fatal("join type rendering empty")
		}
	}
}

func TestRetainRowsCap(t *testing.T) {
	cat := fixture(t, 300, 0)
	q := &query.Query{
		Name:   "wide",
		Tables: []query.TableRef{{Alias: "c", Table: "customers"}},
		Output: []query.ColRef{{Alias: "c", Col: "id"}},
	}
	p := &Plan{Query: q, Driving: AccessPath{Ref: q.Tables[0], EstSel: 1}, Output: q.Output}
	res, err := hostEngine(cat).RunPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount != 300 {
		t.Fatalf("RowCount = %d", res.RowCount)
	}
	if len(res.Rows) != RetainRows {
		t.Fatalf("retained %d rows, cap is %d", len(res.Rows), RetainRows)
	}
}

func BenchmarkScanFilter(b *testing.B) {
	cat := fixture(b, 100, 20000)
	ap := AccessPath{
		Ref:    query.TableRef{Alias: "o", Table: "orders"},
		Filter: expr.Cmp{Col: "amount", Op: expr.Gt, Val: table.IntVal(50)},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := hostEngine(cat)
		if _, _, err := e.ScanAccess(ap, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	cat := fixture(b, 100, 20000)
	q := joinQuery()
	p := planFor(q, BNL, false, "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hostEngine(cat).RunPlan(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinStep isolates the buffered-join hot path: hash-build the inner
// side and probe every outer tuple, without the scan of the outer table. The
// allocs/op of this benchmark is the perf-trajectory gate for the
// zero-allocation join path (BENCH_PR4.json).
func BenchmarkJoinStep(b *testing.B) {
	cat := fixture(b, 100, 20000)
	q := joinQuery()
	p := planFor(q, BNL, false, "")
	e := hostEngine(cat)
	rows, _, err := e.ScanAccess(p.Driving, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := hostEngine(cat)
		pl, err := e.StartPipeline(p)
		if err != nil {
			b.Fatal(err)
		}
		tuples := pl.MakeTuples(rows)
		out, err := e.JoinStep(pl, 0, tuples)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("join produced nothing")
		}
	}
}

// BenchmarkGroupAggregate isolates hash grouping with aggregates over an
// already-joined tuple set (the groupAggregate hot path).
func BenchmarkGroupAggregate(b *testing.B) {
	cat := fixture(b, 100, 20000)
	q := &query.Query{
		Name:    "grouped",
		Tables:  []query.TableRef{{Alias: "c", Table: "customers"}, {Alias: "o", Table: "orders"}},
		Joins:   []query.JoinCond{{LeftAlias: "o", LeftCol: "customer_id", RightAlias: "c", RightCol: "id"}},
		GroupBy: []query.ColRef{{Alias: "c", Col: "region"}},
		Aggregates: []query.Aggregate{
			{Func: query.Count, Star: true, As: "n"},
			{Func: query.Sum, Arg: query.ColRef{Alias: "o", Col: "amount"}, As: "s"},
			{Func: query.Min, Arg: query.ColRef{Alias: "o", Col: "amount"}, As: "lo"},
		},
	}
	p := &Plan{
		Query:   q,
		Driving: AccessPath{Ref: q.Tables[0], EstSel: 1},
		Steps: []JoinStep{{
			Right: AccessPath{Ref: q.Tables[1], EstSel: 1},
			Conds: []BoundCond{{LeftPos: 0, LeftCol: "id", RightCol: "customer_id"}},
			Type:  BNL,
		}},
		GroupBy:    q.GroupBy,
		Aggregates: q.Aggregates,
	}
	e := hostEngine(cat)
	pl, err := e.StartPipeline(p)
	if err != nil {
		b.Fatal(err)
	}
	rows, _, err := e.ScanAccess(p.Driving, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	tuples, err := e.JoinStep(pl, 0, pl.MakeTuples(rows))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e2 := hostEngine(cat)
		pl2, err := e2.StartPipeline(p)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e2.Finalize(pl2, tuples)
		if err != nil {
			b.Fatal(err)
		}
		if res.RowCount != 4 {
			b.Fatalf("groups = %d", res.RowCount)
		}
	}
}

// BenchmarkBatchSize sweeps the columnar batch row capacity over the full
// scan→hash-join pipeline. It backs the EXPERIMENTS.md batch-size table that
// picked DefaultBatchSize; it is deliberately absent from the bench-json
// regex so the trajectory artifact tracks one configuration only.
func BenchmarkBatchSize(b *testing.B) {
	cat := fixture(b, 100, 20000)
	q := joinQuery()
	p := planFor(q, BNL, false, "")
	for _, bs := range []int{1, 7, 64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("bs=%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := hostEngine(cat)
				e.BatchSize = bs
				if _, err := e.RunPlan(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
