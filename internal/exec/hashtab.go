package exec

// keyTab is an open-addressing hash table over encoded join/group keys,
// replacing the former map[string][]int inner tables. Keys are stored once in
// a shared byte arena and addressed by (offset, length); buckets hold
// entry-index+1 with linear probing, so a lookup costs one FNV-1a pass over
// the probe key plus a byte-slice compare per collision — no string
// conversion, no per-bucket slice header churn.
//
// Entry order is first-occurrence order: entry k is the k-th distinct key
// inserted. Joins chain their row numbers through a separate next[] array in
// insertion order, reproducing the append order of the old per-key []int
// slices; grouping uses the entry index directly as the group ordinal. Both
// uses therefore iterate in exactly the order the map-based implementation
// produced, keeping results and virtual-time charges byte-identical.
type keyTab struct {
	buckets []int32 // entry index + 1; 0 = empty
	entries []keyEntry
	keys    []byte // arena of concatenated key bytes

	// Per-row match chains (join use only): next[row] is the next row with
	// the same key, -1 terminates. Parallel to the inner row slice.
	next []int32
}

type keyEntry struct {
	hash uint64
	off  int32 // key position in the arena
	klen int32

	head int32 // first row with this key (join use; -1 when unused)
	tail int32 // last row, for O(1) ordered appends
	n    int32 // chain length = len(old map bucket)
}

// fnv1a is the 64-bit FNV-1a hash of b (inlined to keep the probe loop free
// of interface calls).
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// newKeyTab sizes the table for about n distinct keys.
func newKeyTab(n int) *keyTab {
	sz := 8
	for sz < n*2 {
		sz <<= 1
	}
	return &keyTab{buckets: make([]int32, sz)}
}

// find returns the entry index holding key (pre-hashed as h), or -1.
func (t *keyTab) find(h uint64, key []byte) int32 {
	mask := uint64(len(t.buckets) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		b := t.buckets[i]
		if b == 0 {
			return -1
		}
		e := &t.entries[b-1]
		if e.hash == h && t.keyEquals(e, key) {
			return b - 1
		}
	}
}

// put returns the entry index for key, creating it when absent. fresh reports
// whether the entry was created by this call.
func (t *keyTab) put(h uint64, key []byte) (idx int32, fresh bool) {
	if (len(t.entries)+1)*4 > len(t.buckets)*3 {
		t.grow()
	}
	mask := uint64(len(t.buckets) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		b := t.buckets[i]
		if b == 0 {
			off := int32(len(t.keys))
			t.keys = append(t.keys, key...)
			t.entries = append(t.entries, keyEntry{hash: h, off: off, klen: int32(len(key)), head: -1, tail: -1})
			t.buckets[i] = int32(len(t.entries))
			return int32(len(t.entries)) - 1, true
		}
		e := &t.entries[b-1]
		if e.hash == h && t.keyEquals(e, key) {
			return b - 1, false
		}
	}
}

func (t *keyTab) keyEquals(e *keyEntry, key []byte) bool {
	if int(e.klen) != len(key) {
		return false
	}
	stored := t.keys[e.off : e.off+e.klen]
	for i, c := range key {
		if stored[i] != c {
			return false
		}
	}
	return true
}

// grow doubles the bucket array and reinserts the entry references. Entries,
// key bytes and chains are untouched, so ordinals and iteration order are
// stable across growth.
func (t *keyTab) grow() {
	old := t.buckets
	t.buckets = make([]int32, 2*len(old))
	mask := uint64(len(t.buckets) - 1)
	for ei := range t.entries {
		h := t.entries[ei].hash
		for i := h & mask; ; i = (i + 1) & mask {
			if t.buckets[i] == 0 {
				t.buckets[i] = int32(ei + 1)
				break
			}
		}
	}
}

// addRow links row (with encoded key, pre-hashed as h) into the table's match
// chain, preserving insertion order. Rows must be added with strictly
// increasing row numbers; the caller skips NULL-key rows, whose next slots
// stay unused.
func (t *keyTab) addRow(h uint64, key []byte, row int) {
	for len(t.next) <= row {
		t.next = append(t.next, -1)
	}
	idx, fresh := t.put(h, key)
	e := &t.entries[idx]
	if fresh || e.head < 0 {
		e.head = int32(row)
	} else {
		t.next[e.tail] = int32(row)
	}
	e.tail = int32(row)
	e.n++
}
