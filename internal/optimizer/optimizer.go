// Package optimizer turns logical queries into split physical plans: it
// chooses access paths (full scan vs secondary-index equality access), a
// greedy left-deep join order with per-step join-type selection (BNL vs
// BNLI, as nKV does during join-order calculation), and finally decides the
// execution strategy — host-only, full NDP, or a hybrid split Hk — using the
// hybridNDP cost model (paper §3).
package optimizer

import (
	"fmt"
	"math"

	"hybridndp/internal/cost"
	"hybridndp/internal/exec"
	"hybridndp/internal/expr"
	"hybridndp/internal/hw"
	"hybridndp/internal/query"
	"hybridndp/internal/table"
)

// Optimizer plans queries against a catalog and hardware model.
type Optimizer struct {
	Cat   *table.Catalog
	Model hw.Model
	Est   *cost.Estimator

	// NDPMounted mirrors the paper's precondition: the smart storage must be
	// mounted in NDP mode for offloading to be considered.
	NDPMounted bool
	// MinDeviceBytes is the offloading precondition on transfer volume: the
	// device-side tables must carry at least this much data so the NDP call
	// amortizes (paper: volume close to the max transfer per command).
	MinDeviceBytes int64
}

// New builds an optimizer.
func New(cat *table.Catalog, m hw.Model) *Optimizer {
	return &Optimizer{
		Cat:            cat,
		Model:          m,
		Est:            cost.NewEstimator(cat, m, cost.DefaultParams()),
		NDPMounted:     true,
		MinDeviceBytes: m.SharedBufferSlot,
	}
}

// indexEqThreshold is the match-fraction above which an equality index
// access stops paying off against a scan.
const indexEqThreshold = 0.05

// buildAccessPath chooses the access path for one table reference.
func (o *Optimizer) buildAccessPath(q *query.Query, ref query.TableRef, proj map[string][]string) (exec.AccessPath, error) {
	t, err := o.Cat.Table(ref.Table)
	if err != nil {
		return exec.AccessPath{}, err
	}
	st := t.CollectStats()
	ap := exec.AccessPath{Ref: ref, Proj: proj[ref.Alias]}
	if p, ok := q.Filters[ref.Alias]; ok {
		ap.Filter = p
		ap.EstSel = st.SelectivityOf(p.Eval)
	} else {
		ap.EstSel = 1
	}
	ap.EstRows = float64(st.RowCount) * ap.EstSel

	// Secondary-index equality access when the filter pins an indexed
	// column and the estimated match fraction is small.
	if ap.Filter != nil {
		for _, si := range t.Schema.SecondaryIndexes {
			v, ok := expr.EqCol(ap.Filter, si.Column)
			if !ok {
				continue
			}
			eqSel := st.EqSelectivity(si.Column)
			if eqSel <= indexEqThreshold {
				ap.UseFilterIndex = true
				ap.FilterIndex = si.Name
				ap.FilterValue = v
				break
			}
		}
	}
	return ap, nil
}

// BuildPlan computes the physical plan: access paths, greedy join order and
// join types (paper §3.2: the optimizer estimates the best access path per
// table, combines it with the subsequent table, and compares join orders).
func (o *Optimizer) BuildPlan(q *query.Query) (*exec.Plan, error) {
	if err := q.Validate(o.Cat); err != nil {
		return nil, err
	}
	proj := q.ProjectedColumns()
	paths := make(map[string]exec.AccessPath, len(q.Tables))
	for _, ref := range q.Tables {
		ap, err := o.buildAccessPath(q, ref, proj)
		if err != nil {
			return nil, err
		}
		paths[ref.Alias] = ap
	}

	plan := &exec.Plan{
		Query:      q,
		Aggregates: q.Aggregates,
		Output:     q.Output,
		GroupBy:    q.GroupBy,
	}

	if len(q.Tables) == 1 {
		plan.Driving = paths[q.Tables[0].Alias]
		plan.EstTotalRows = plan.Driving.EstRows
		return plan, nil
	}

	// Driving table: the cheapest estimated access (host side). Iterate in
	// query declaration order, not map order, so tied scores break the same
	// way on every run — plans (and therefore simulated times) must be
	// deterministic for a given query.
	var drivingAlias string
	best := math.Inf(1)
	for _, ref := range q.Tables {
		ap := paths[ref.Alias]
		nc, err := o.Est.AccessCost(ap, cost.Host)
		if err != nil {
			return nil, err
		}
		// Penalize large survivor sets: they multiply downstream join work.
		score := nc.Total() + ap.EstRows*100
		if score < best {
			best = score
			drivingAlias = ref.Alias
		}
	}
	plan.Driving = paths[drivingAlias]

	joined := map[string]int{drivingAlias: 0} // alias → tuple position
	rows := plan.Driving.EstRows
	remaining := map[string]bool{}
	for _, ref := range q.Tables {
		if ref.Alias != drivingAlias {
			remaining[ref.Alias] = true
		}
	}

	for len(remaining) > 0 {
		type cand struct {
			step  exec.JoinStep
			out   float64
			score float64
		}
		var bestC *cand
		for _, ref := range q.Tables { // declaration order: deterministic ties
			alias := ref.Alias
			if !remaining[alias] {
				continue
			}
			conds := o.boundConds(q, alias, joined)
			if len(conds) == 0 {
				continue
			}
			step, err := o.chooseJoin(paths[alias], conds, rows)
			if err != nil {
				return nil, err
			}
			nc, out, err := o.Est.StepCost(step, rows, cost.Host)
			if err != nil {
				return nil, err
			}
			score := nc.Total() + out*100
			if bestC == nil || score < bestC.score {
				bestC = &cand{step: step, out: out, score: score}
			}
		}
		if bestC == nil {
			return nil, fmt.Errorf("optimizer: query %s has disconnected tables", q.Name)
		}
		bestC.step.EstRows = bestC.out
		plan.Steps = append(plan.Steps, bestC.step)
		joined[bestC.step.Right.Ref.Alias] = len(joined)
		delete(remaining, bestC.step.Right.Ref.Alias)
		rows = bestC.out
	}
	plan.EstTotalRows = rows
	return plan, nil
}

// boundConds resolves all join conditions linking alias to already-joined
// tables into tuple-position-bound conditions, with column indices resolved
// at plan time so the executor's per-tuple path never resolves names.
func (o *Optimizer) boundConds(q *query.Query, alias string, joined map[string]int) []exec.BoundCond {
	schemaOf := func(a string) *table.Schema {
		for _, ref := range q.Tables {
			if ref.Alias == a {
				if t, err := o.Cat.Table(ref.Table); err == nil {
					return t.Schema
				}
				break
			}
		}
		return nil
	}
	rightSchema := schemaOf(alias)
	var out []exec.BoundCond
	for _, j := range q.Joins {
		if !j.Touches(alias) {
			continue
		}
		other := j.Other(alias)
		pos, ok := joined[other]
		if !ok {
			continue
		}
		bc := exec.BoundCond{LeftPos: pos, LeftColIdx: -1, RightColIdx: -1}
		if j.LeftAlias == alias {
			bc.LeftCol = j.RightCol
			bc.RightCol = j.LeftCol
		} else {
			bc.LeftCol = j.LeftCol
			bc.RightCol = j.RightCol
		}
		if ls := schemaOf(other); ls != nil {
			bc.LeftColIdx = ls.ColumnIndex(bc.LeftCol)
		}
		if rightSchema != nil {
			bc.RightColIdx = rightSchema.ColumnIndex(bc.RightCol)
		}
		out = append(out, bc)
	}
	return out
}

// chooseJoin selects the join algorithm for bringing in the right table:
// BNLI when an index over a join column is available and the indexed probe
// beats the buffered build (compared through the cost model), BNL otherwise.
func (o *Optimizer) chooseJoin(right exec.AccessPath, conds []exec.BoundCond, leftRows float64) (exec.JoinStep, error) {
	rt, err := o.Cat.Table(right.Ref.Table)
	if err != nil {
		return exec.JoinStep{}, err
	}
	step := exec.JoinStep{Right: right, Conds: conds, Type: exec.BNL}

	// Find an indexable condition and move it to the front.
	idxCand := -1
	isPK := false
	idxName := ""
	for i, c := range conds {
		if c.RightCol == rt.Schema.PrimaryKey {
			idxCand, isPK = i, true
			break
		}
		if si, ok := rt.SecondaryIndexFor(c.RightCol); ok {
			idxCand, idxName = i, si.Name
		}
	}
	if idxCand < 0 {
		return step, nil
	}
	indexed := step
	indexed.Type = exec.BNLI
	indexed.RightIndexIsPK = isPK
	indexed.RightIndex = idxName
	indexed.Conds = append([]exec.BoundCond{conds[idxCand]}, removeAt(conds, idxCand)...)

	bnlCost, _, err := o.Est.StepCost(step, leftRows, cost.Host)
	if err != nil {
		return exec.JoinStep{}, err
	}
	bnliCost, _, err := o.Est.StepCost(indexed, leftRows, cost.Host)
	if err != nil {
		return exec.JoinStep{}, err
	}
	if bnliCost.Total() < bnlCost.Total() {
		return indexed, nil
	}
	return step, nil
}

func removeAt(s []exec.BoundCond, i int) []exec.BoundCond {
	out := make([]exec.BoundCond, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

// Decision is the optimizer's final choice for a query.
type Decision struct {
	Plan  *exec.Plan
	Costs *cost.SplitCosts
	// Kind and Split encode the chosen strategy (coop.Strategy mirrors
	// this; the optimizer package avoids importing coop).
	Hybrid bool
	NDP    bool
	// Split is the chosen Hk index: 0 = H0 (leaf offloading), k ≥ 1 = Hk.
	Split int
	// Reason explains the choice.
	Reason string
}

// StrategyLabel renders the decision.
func (d *Decision) StrategyLabel() string {
	switch {
	case d.Hybrid:
		return fmt.Sprintf("H%d", d.Split)
	case d.NDP:
		return "ndp"
	default:
		return "host"
	}
}

// Decide plans the query and picks an execution strategy (paper §3.3): the
// preconditions gate offloading, the split point Hk is the one whose
// cumulative device cost is closest to c_target, and the final choice is the
// cheapest of host-only, NDP-only and hybrid-at-Hk.
func (o *Optimizer) Decide(q *query.Query) (*Decision, error) {
	p, err := o.BuildPlan(q)
	if err != nil {
		return nil, err
	}
	sc, err := o.Est.PlanCosts(p)
	if err != nil {
		return nil, err
	}
	d := &Decision{Plan: p, Costs: sc}

	if !o.NDPMounted {
		d.Reason = "device not mounted in NDP mode"
		return d, nil
	}
	if p.NumTables() < 2 {
		// Single-table queries: NDP-only vs host decided by total cost.
		if sc.NDPTotal < sc.HostTotal {
			d.NDP = true
			d.Reason = "single-table, NDP cheaper"
		} else {
			d.Reason = "single-table, host cheaper"
		}
		return d, nil
	}
	var devBytes int64
	for _, ref := range q.Tables {
		t, err := o.Cat.Table(ref.Table)
		if err != nil {
			return nil, err
		}
		devBytes += t.CollectStats().TotalBytes()
	}
	if devBytes < o.MinDeviceBytes {
		d.Reason = "transfer volume below the per-command minimum"
		return d, nil
	}

	// Device feasibility caps the candidate splits (≤12/17 table limit).
	feasible := make([]bool, len(sc.CNode))
	for k := range sc.CNode {
		sa := k
		if k == 0 {
			sa = -1
		}
		feasible[k] = devicePlanFits(o.Model, p, sa)
	}

	best := -1
	bestDist := math.Inf(1)
	for k := range sc.CNode {
		if !feasible[k] {
			continue
		}
		if dd := math.Abs(sc.CNode[k] - sc.CTarget); dd < bestDist {
			best, bestDist = k, dd
		}
	}
	if best < 0 {
		d.Reason = "no feasible device split (memory budget)"
		return d, nil
	}
	d.Split = best

	hybridCost := sc.HybridEst[best]
	switch {
	case hybridCost <= sc.HostTotal && hybridCost <= sc.NDPTotal:
		d.Hybrid = true
		d.Reason = fmt.Sprintf("hybrid H%d closest to c_target and cheapest (%.0f ≤ host %.0f, ndp %.0f)",
			best, hybridCost, sc.HostTotal, sc.NDPTotal)
	case sc.NDPTotal < sc.HostTotal && feasible[len(feasible)-1]:
		d.NDP = true
		d.Reason = fmt.Sprintf("full NDP cheapest (%.0f < host %.0f)", sc.NDPTotal, sc.HostTotal)
	default:
		d.Reason = fmt.Sprintf("host-only cheapest (%.0f)", sc.HostTotal)
	}
	return d, nil
}

// DecideShard re-runs the split-point calculation for one driving-table
// shard holding frac of the driving rows (fleet execution, paper §3 applied
// per partition): the shard's c_node curve is priced against its local
// statistics via ShardPlanCosts and the candidate splits are restricted to
// the interior Hk (k ≥ 1) — H0's leaf broadcast and the host-only baseline
// are fleet-global choices, so a shard only decides between "device joins up
// to k" and "run my partition on the host". The returned decision carries
// Hybrid=true with the chosen Split, or Hybrid=false when the shard-local
// host cost undercuts every feasible device split.
func (o *Optimizer) DecideShard(p *exec.Plan, frac float64) (*Decision, error) {
	sc, err := o.Est.ShardPlanCosts(p, frac)
	if err != nil {
		return nil, err
	}
	d := &Decision{Plan: p, Costs: sc}
	best := -1
	bestDist := math.Inf(1)
	for k := 1; k < len(sc.CNode); k++ {
		if !devicePlanFits(o.Model, p, k) {
			continue
		}
		if dd := math.Abs(sc.CNode[k] - sc.CTarget); dd < bestDist {
			best, bestDist = k, dd
		}
	}
	if best < 0 {
		d.Reason = "shard: no feasible device split (memory budget)"
		return d, nil
	}
	d.Split = best
	if sc.HybridEst[best] <= sc.HostTotal {
		d.Hybrid = true
		d.Reason = fmt.Sprintf("shard frac %.3f: H%d closest to c_target (%.0f ≤ host %.0f)",
			frac, best, sc.HybridEst[best], sc.HostTotal)
	} else {
		d.Reason = fmt.Sprintf("shard frac %.3f: host cheaper (%.0f < H%d %.0f)",
			frac, sc.HostTotal, best, sc.HybridEst[best])
	}
	if d.Hybrid && frac < 1 {
		// Fleet deepening (N > 1 devices): the gather host is shared by
		// every shard while shard device chains run in parallel, so a shard
		// can afford join steps past the single-device balance point. The
		// fleet estimate for split k overlaps the shard's frac-scaled device
		// chain with the *global* host remainder (all shards' tuples pass
		// through one host) plus the global transfer; deepen past best while
		// the estimate improves. At frac = 1 the fleet degenerates to the
		// single-device split above, keeping the N=1 mirror invariant.
		g, err := o.Est.PlanCosts(p)
		if err != nil {
			return nil, err
		}
		fleetEst := func(k int) float64 {
			return math.Max(sc.DevPart[k], g.HostPart[k]) + g.Trans[k]
		}
		deep, deepCost := best, fleetEst(best)
		for k := best + 1; k < len(sc.CNode); k++ {
			if !devicePlanFits(o.Model, p, k) {
				continue
			}
			if c := fleetEst(k); c < deepCost {
				deep, deepCost = k, c
			}
		}
		if deep != best {
			d.Split = deep
			d.Reason = fmt.Sprintf("shard frac %.3f: deepened H%d→H%d (fleet est %.0f, shared host part %.0f)",
				frac, best, deep, deepCost, g.HostPart[deep])
		}
	}
	return d, nil
}

// devicePlanFits mirrors device.PlanMemory without importing the package
// (avoids a dependency cycle through coop).
func devicePlanFits(m hw.Model, p *exec.Plan, splitAfter int) bool {
	nTables := 1 + splitAfter
	if splitAfter < 0 {
		nTables = p.NumTables()
	}
	joins := 0
	if splitAfter > 0 {
		joins = splitAfter
	}
	secondary := 0
	for i := 0; i < splitAfter && i < len(p.Steps); i++ {
		if p.Steps[i].Type == exec.BNLI && !p.Steps[i].RightIndexIsPK {
			secondary++
		}
	}
	total := int64(nTables+secondary)*m.SelBufBytes + int64(joins)*m.JoinBufBytes
	return total <= m.DeviceNDPBudget
}
