package optimizer_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"hybridndp/internal/exec"
	"hybridndp/internal/harness"
	"hybridndp/internal/hw"
	"hybridndp/internal/job"
	"hybridndp/internal/obs"
	"hybridndp/internal/optimizer"
)

var (
	dsOnce sync.Once
	ds     *job.Dataset
	dsErr  error
)

func testOpt(t *testing.T) (*job.Dataset, *optimizer.Optimizer) {
	t.Helper()
	dsOnce.Do(func() {
		ds, dsErr = job.Load(0.01, hw.Cosmos())
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return ds, optimizer.New(ds.Cat, ds.Model)
}

func TestBuildPlanCoversAllTablesOnce(t *testing.T) {
	_, opt := testOpt(t)
	for _, name := range []string{"1a", "8c", "17b", "29a", "33c"} {
		q := job.QueryByName(name)
		p, err := opt.BuildPlan(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.NumTables() != len(q.Tables) {
			t.Fatalf("%s: plan has %d tables, query %d", name, p.NumTables(), len(q.Tables))
		}
		seen := map[string]bool{}
		for _, a := range p.Aliases() {
			if seen[a] {
				t.Fatalf("%s: alias %s appears twice", name, a)
			}
			seen[a] = true
		}
		// Every join step must have at least one bound condition (connected
		// left-deep order).
		for i, st := range p.Steps {
			if len(st.Conds) == 0 {
				t.Fatalf("%s: step %d is a cross product", name, i)
			}
			for _, c := range st.Conds {
				if c.LeftPos < 0 || c.LeftPos > i {
					t.Fatalf("%s: step %d condition references future position %d", name, i, c.LeftPos)
				}
			}
		}
	}
}

func TestPlansForAll113Queries(t *testing.T) {
	_, opt := testOpt(t)
	for _, q := range job.Queries() {
		p, err := opt.BuildPlan(q)
		if err != nil {
			t.Errorf("%s: %v", q.Name, err)
			continue
		}
		if p.EstTotalRows < 0 {
			t.Errorf("%s: negative cardinality estimate", q.Name)
		}
	}
}

func TestDrivingTableIsSelective(t *testing.T) {
	_, opt := testOpt(t)
	// 17b: keyword has an equality filter over an indexed column; the
	// optimizer should drive from a selective access path, not cast_info.
	p, err := opt.BuildPlan(job.QueryByName("17b"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Driving.Ref.Table == "cast_info" || p.Driving.Ref.Table == "movie_keyword" {
		t.Fatalf("driving table %s is a fact table; expected a selective dimension", p.Driving.Ref.Table)
	}
}

func TestIndexAccessPathForSelectiveEquality(t *testing.T) {
	_, opt := testOpt(t)
	// keyword.keyword = '...' is highly selective and idx_keyword exists.
	p, err := opt.BuildPlan(job.QueryByName("17b"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	check := func(ap exec.AccessPath) {
		if ap.Ref.Table == "keyword" {
			found = true
			if !ap.UseFilterIndex || ap.FilterIndex != "idx_keyword" {
				t.Fatalf("keyword access should use idx_keyword, got %+v", ap)
			}
		}
	}
	check(p.Driving)
	for _, st := range p.Steps {
		check(st.Right)
	}
	if !found {
		t.Fatal("keyword table missing from plan")
	}
}

func TestDecisionHasReasonAndConsistentCosts(t *testing.T) {
	_, opt := testOpt(t)
	for _, name := range []string{"1a", "8c", "32b"} {
		d, err := opt.Decide(job.QueryByName(name))
		if err != nil {
			t.Fatal(err)
		}
		if d.Reason == "" {
			t.Fatalf("%s: no reason", name)
		}
		if d.Hybrid && d.NDP {
			t.Fatalf("%s: contradictory decision", name)
		}
		label := d.StrategyLabel()
		if label == "" {
			t.Fatalf("%s: empty label", name)
		}
		if d.Hybrid && !strings.HasPrefix(label, "H") {
			t.Fatalf("%s: hybrid label %q", name, label)
		}
	}
}

func TestNDPNotMountedForcesHost(t *testing.T) {
	ds, _ := testOpt(t)
	opt := optimizer.New(ds.Cat, ds.Model)
	opt.NDPMounted = false
	d, err := opt.Decide(job.QueryByName("8c"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Hybrid || d.NDP {
		t.Fatal("unmounted device must force host-only")
	}
	if !strings.Contains(d.Reason, "mounted") {
		t.Fatalf("reason %q should mention the mount precondition", d.Reason)
	}
}

func TestMinVolumePrecondition(t *testing.T) {
	ds, _ := testOpt(t)
	opt := optimizer.New(ds.Cat, ds.Model)
	opt.MinDeviceBytes = 1 << 50 // nothing qualifies
	d, err := opt.Decide(job.QueryByName("8c"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Hybrid || d.NDP {
		t.Fatal("below-minimum volume must force host-only")
	}
}

func TestDeviceMemoryLimitBlocksDeepSplits(t *testing.T) {
	ds, _ := testOpt(t)
	m := ds.Model
	// Shrink the budget so only tiny offloads fit.
	m.DeviceNDPBudget = m.SelBufBytes * 2
	opt := optimizer.New(ds.Cat, m)
	d, err := opt.Decide(job.QueryByName("29a")) // 16-table query
	if err != nil {
		t.Fatal(err)
	}
	if d.Hybrid && d.Split > 1 {
		t.Fatalf("budget-constrained device accepted split H%d", d.Split)
	}
}

func TestJoinTypeSelectionPrefersIndexForSelectiveProbes(t *testing.T) {
	_, opt := testOpt(t)
	// 32b drives from an extremely selective keyword; joins against title
	// via PK should become BNLI.
	p, err := opt.BuildPlan(job.QueryByName("32b"))
	if err != nil {
		t.Fatal(err)
	}
	hasBNLI := false
	for _, st := range p.Steps {
		if st.Type == exec.BNLI {
			hasBNLI = true
			if !st.RightIndexIsPK && st.RightIndex == "" {
				t.Fatal("BNLI step without an index binding")
			}
		}
	}
	if !hasBNLI {
		t.Skip("optimizer chose buffered joins throughout (estimate-dependent)")
	}
}

func TestSingleTableDecision(t *testing.T) {
	ds, opt := testOpt(t)
	_ = ds
	q := job.Listing2(1<<30, false) // 2 tables
	if _, err := opt.Decide(q); err != nil {
		t.Fatal(err)
	}
}

// TestDecisionsAreDeterministic serializes the optimizer's full output (plan
// tree, strategy, split, reason) for a fixed query set and requires every
// repetition — sequential and under t.Parallel against a shared catalog — to
// be byte-identical. This is the tier-1 determinism gate backing the maporder
// analyzer: any map-iteration-ordered choice in planning or splitting shows up
// here as a flaky diff.
func TestDecisionsAreDeterministic(t *testing.T) {
	ds, _ := testOpt(t)
	queries := []string{"1a", "4a", "8c", "16b", "17b", "22c", "29a", "33c"}
	serialize := func(opt *optimizer.Optimizer) string {
		var b strings.Builder
		for _, name := range queries {
			d, err := opt.Decide(job.QueryByName(name))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			fmt.Fprintf(&b, "%s %s split=%d reason=%q\n%s\n", name, d.StrategyLabel(), d.Split, d.Reason, d.Plan)
		}
		return b.String()
	}
	want := serialize(optimizer.New(ds.Cat, ds.Model))
	for i := 0; i < 10; i++ {
		if got := serialize(optimizer.New(ds.Cat, ds.Model)); got != want {
			t.Fatalf("sequential repetition %d diverged:\n got: %q\nwant: %q", i, got, want)
		}
	}
	for i := 0; i < 10; i++ {
		i := i
		t.Run(fmt.Sprintf("parallel-%d", i), func(t *testing.T) {
			t.Parallel()
			if got := serialize(optimizer.New(ds.Cat, ds.Model)); got != want {
				t.Fatalf("parallel repetition %d diverged", i)
			}
		})
	}
}

// TestTracesAreDeterministic extends the determinism gate to the
// observability subsystem: two fresh harnesses at the same seed must trace
// the same query into byte-identical Chrome trace_event JSON, flame reports
// and metrics dumps. Any wall-clock leakage or map-ordered emission in
// internal/obs (or the instrumentation sites in coop/device) shows up here
// as a flaky diff — the run-time counterpart of the wallclock and maporder
// analyzers.
func TestTracesAreDeterministic(t *testing.T) {
	capture := func() (trace, flame, metrics string) {
		h, err := harness.NewSeeded(0.01, hw.Cosmos(), job.DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		reg := h.BindMetrics(obs.NewRegistry())
		// H1 forces the cooperative hybrid so both timelines carry spans.
		tr, err := h.TraceQuery("8d", "H1")
		if err != nil {
			t.Fatal(err)
		}
		var j, f strings.Builder
		if err := tr.Trace.WriteChromeTrace(&j, 1); err != nil {
			t.Fatal(err)
		}
		if err := tr.Trace.WriteFlame(&f); err != nil {
			t.Fatal(err)
		}
		if !tr.Profile.Reconciles() {
			t.Fatal("profile does not reconcile with the virtual runtime")
		}
		h.PublishStorage(reg)
		return j.String(), f.String(), reg.Dump()
	}
	trace1, flame1, metrics1 := capture()
	trace2, flame2, metrics2 := capture()
	if trace1 != trace2 {
		t.Errorf("trace JSON diverged between identically-seeded runs:\n%s\n---\n%s", trace1, trace2)
	}
	if flame1 != flame2 {
		t.Errorf("flame report diverged:\n%s\n---\n%s", flame1, flame2)
	}
	if metrics1 != metrics2 {
		t.Errorf("metrics dump diverged:\n%s\n---\n%s", metrics1, metrics2)
	}
	if !strings.Contains(trace1, `"ph":"X"`) {
		t.Error("trace contains no complete spans")
	}
}
