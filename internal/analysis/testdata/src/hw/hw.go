// Package hw is the wallclock allow-list fixture: the real internal/hw
// profiler measures wall time legitimately, so //lint:allow wallclock is
// honored here — but only on annotated lines.
package hw

import "time"

func profile() float64 {
	start := time.Now() //lint:allow wallclock (profiler measures real throughput)
	work()
	return time.Since(start).Seconds() //lint:allow wallclock (profiler measures real throughput)
}

func work() {}

func unannotated() time.Time {
	return time.Now() // want `wall-clock call time\.Now`
}
