// Package maporder is the maporder fixture: map iteration with
// order-dependent effects must sort, one way or the other.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// badAppend collects map keys without sorting: the plan order changes run to
// run.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map m`
	}
	return keys
}

// goodAppendThenSort is the blessed pattern: append, then sort before use.
func goodAppendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortedKeysRange ranges over a sorted slice, not the map: fine.
func goodSortedKeysRange(m map[string]int) []int {
	keys := goodAppendThenSort(m)
	var vals []int
	for _, k := range keys {
		vals = append(vals, m[k])
	}
	return vals
}

// badPrint emits output in iteration order.
func badPrint(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map m`
	}
}

// badBuilder writes to a strings.Builder in iteration order.
func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b\.WriteString inside range over map m`
	}
	return b.String()
}

// goodLoopLocal appends to state declared inside the loop body: each
// iteration's slice is independent, so order cannot leak.
func goodLoopLocal(m map[string][]int, out map[string]int) {
	for k, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v*2)
		}
		out[k] = len(local)
	}
}

// goodMapToMap builds another map: no ordered sink.
func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// goodAggregate folds into a scalar: order-independent.
func goodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
