// Package sched is a wallclock fixture: its final import-path segment makes
// it a simulation package, so wall-clock calls and global math/rand are
// violations, and //lint:allow directives are not honored here.
package sched

import (
	"math/rand"
	"time"
)

type ticket struct {
	submitted time.Time
}

func submit() *ticket {
	return &ticket{submitted: time.Now()} // want `wall-clock call time\.Now`
}

func wait(t *ticket) time.Duration {
	return time.Since(t.submitted) // want `wall-clock call time\.Since`
}

func backoff() {
	time.Sleep(time.Millisecond) // want `wall-clock call time\.Sleep`
}

func jitter() int {
	return rand.Intn(100) // want `global math/rand call rand\.Intn`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand call rand\.Shuffle`
}

// seeded is the blessed pattern: an injected per-instance source.
func seeded(rng *rand.Rand) int {
	return rng.Intn(100)
}

// construction of sources is allowed — only the global functions are banned.
func newSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// durations and other time types are fine; only wall-clock reads are banned.
func grace(d time.Duration) time.Duration {
	return d.Round(time.Millisecond)
}

func suppressed() time.Time {
	// The directive is parsed, but sched is not on the wallclock allow-list,
	// so it is itself reported — and does not suppress the call below it.
	//lint:allow wallclock not allowed outside internal/hw // want `//lint:allow wallclock is not permitted in package sched`
	return time.Now() // want `wall-clock call time\.Now`
}
