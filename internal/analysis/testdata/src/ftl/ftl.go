// Package ftl is a chargecheck fixture of charging helpers: functions that
// either charge a timeline directly or route through the charging flash
// surface. The analyzer exports a charges fact for each, which the coop
// fixture imports — the cross-package half of the fact round-trip.
package ftl

import (
	"flash"

	"vclock"
)

// ChargedTransfer reads through the charging flash channel; flash.ReadAt's
// exported fact covers this function, which in turn earns its own fact.
func ChargedTransfer(f *flash.Flash, p []byte) (int, error) {
	return f.ReadAt(p, 0)
}

// Forward charges the transfer cost directly.
func Forward(tl *vclock.Timeline, p []byte) {
	tl.Charge("ftl.forward", vclock.Duration(len(p)))
}
