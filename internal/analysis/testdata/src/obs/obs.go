// Package obs is a fixture stub of the real internal/obs tracing surface:
// Trace.Start opens a span on a timeline, Span.End closes it, Attr/AttrInt
// return the span for chaining. Just enough for the spanbalance fixtures to
// type-check; the analyzer matches these types by package-path suffix.
package obs

import "vclock"

// Trace collects spans.
type Trace struct {
	open int
}

// Span is one traced interval.
type Span struct {
	name string
}

// Start opens a span on tl.
func (tr *Trace) Start(tl *vclock.Timeline, name string) *Span {
	tr.open++
	return &Span{name: name}
}

// End closes the span. Idempotent and nil-safe, like the real one.
func (s *Span) End() {}

// Attr attaches a string attribute and returns s for chaining.
func (s *Span) Attr(k, v string) *Span { return s }

// AttrInt attaches an integer attribute and returns s for chaining.
func (s *Span) AttrInt(k string, v int) *Span { return s }
