// Package device is a fixture stub of the real internal/device package:
// just the Batch type and a Device whose Run streams batches through an
// error-returning emit callback — the surface chargecheck recognizes as the
// device → host batch emission channel. This stub's Run does not charge, so
// it carries no charges fact; fixture callers must account for the stream
// themselves (the real device charges internally).
package device

// Batch is one emitted result batch.
type Batch struct {
	Rows int
}

// Device is a minimal smart-storage device.
type Device struct {
	ID int
}

// Run streams n batches through emit, propagating the first emit error.
func (d *Device) Run(n int, emit func(Batch) error) error {
	for i := 0; i < n; i++ {
		if err := emit(Batch{Rows: i}); err != nil {
			return err
		}
	}
	return nil
}
