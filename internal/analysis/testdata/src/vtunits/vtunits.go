// Package vtunits is the vtunits fixture: raw unit conversions and
// cross-timeline arithmetic are flagged; the blessed Std/FromStd conversions
// and single-timeline math are not.
package vtunits

import (
	"time"

	"vclock"
)

// badVirtualToWall casts a virtual duration straight to wall units.
func badVirtualToWall(d vclock.Duration) time.Duration {
	return time.Duration(d) // want `raw conversion time\.Duration\(d\) from vclock\.Duration: use the \.Std\(\) accessor`
}

// badInstantToWall casts a virtual instant straight to wall units.
func badInstantToWall(t vclock.Time) time.Duration {
	return time.Duration(t) // want `raw conversion time\.Duration\(t\) from vclock\.Time: use the \.Std\(\) accessor`
}

// badWallToVirtual casts a wall duration straight to virtual units.
func badWallToVirtual(d time.Duration) vclock.Duration {
	return vclock.Duration(d) // want `raw conversion vclock\.Duration\(d\) from time\.Duration: use vclock\.FromStd`
}

// badWallToInstant seeds a virtual instant from wall time.
func badWallToInstant(d time.Duration) vclock.Time {
	return vclock.Time(d) // want `wall-clock time must not seed a virtual instant`
}

// goodStd uses the blessed accessor.
func goodStd(d vclock.Duration) time.Duration {
	return d.Std()
}

// goodFromStd uses the blessed constructor.
func goodFromStd(d time.Duration) vclock.Duration {
	return vclock.FromStd(d)
}

// goodScalar converts from a unitless scalar, not across the boundary.
func goodScalar(us float64) vclock.Duration {
	return vclock.Duration(us)
}

// badCrossSub subtracts instants read from two independent clocks.
func badCrossSub(host, dev *vclock.Timeline) vclock.Duration {
	return host.Now().Sub(dev.Now()) // want `combines instants from different timelines \(dev, host\)`
}

// badCrossCompare compares instants read from two independent clocks.
func badCrossCompare(host, dev *vclock.Timeline) bool {
	return host.Now() < dev.Now() // want `combines instants from different timelines \(dev, host\)`
}

// badCrossMinus mixes two clocks in raw binary arithmetic.
func badCrossMinus(host, dev *vclock.Timeline) vclock.Time {
	return host.Now() - dev.Now() // want `combines instants from different timelines \(dev, host\)`
}

// goodSameTimeline measures a span on one clock: fine.
func goodSameTimeline(tl *vclock.Timeline) vclock.Duration {
	start := tl.Now()
	return tl.Now().Sub(start)
}

// goodAdd advances an instant by a duration on one clock: fine.
func goodAdd(tl *vclock.Timeline, d vclock.Duration) vclock.Time {
	return tl.Now().Add(d)
}

// goodRendezvous synchronizes clocks the explicit way: Now() as a call
// argument is a handoff, not arithmetic.
func goodRendezvous(host, dev *vclock.Timeline) {
	host.WaitUntil(dev.Now())
}

// goodMax picks the later rendezvous point via the blessed helper.
func goodMax(host, dev *vclock.Timeline) vclock.Time {
	return vclock.MaxTime(host.Now(), dev.Now())
}
