// Package lsm is the spanbalance fixture: spans opened and closed in every
// legal way (explicit End, defer, attr chains, ownership transfers) next to
// the leak shapes the analyzer must flag (early-return leaks, dropped and
// discarded Start results, reassignment while open, per-iteration leaks).
package lsm

import (
	"errors"

	"obs"
	"vclock"
)

var errDemo = errors.New("demo")

func work() bool { return true }

func more() {}

func register(sp *obs.Span) {}

// balanced: straight-line Start/End.
func balanced(tr *obs.Trace, tl *vclock.Timeline) {
	sp := tr.Start(tl, "balanced")
	sp.End()
}

// deferred: defer covers every exit, including the early return.
func deferred(tr *obs.Trace, tl *vclock.Timeline) {
	sp := tr.Start(tl, "deferred")
	defer sp.End()
	if work() {
		return
	}
	more()
}

// leaky: the error path returns with the span still open.
func leaky(tr *obs.Trace, tl *vclock.Timeline, fail bool) error {
	sp := tr.Start(tl, "leaky")
	if fail {
		return errDemo // want `span "leaky" \(started at line \d+\) may still be open at this return`
	}
	sp.End()
	return nil
}

// dropped: the Start result is neither kept nor ended.
func dropped(tr *obs.Trace, tl *vclock.Timeline) {
	tr.Start(tl, "dropped") // want `span "dropped" is started and dropped`
}

// discarded: assigning to _ can never be ended.
func discarded(tr *obs.Trace, tl *vclock.Timeline) {
	_ = tr.Start(tl, "discarded") // want `span "discarded" is started and discarded`
}

// chained: attr chains are transparent on both the Start and the End side.
func chained(tr *obs.Trace, tl *vclock.Timeline, n int) {
	sp := tr.Start(tl, "chained").Attr("k", "v").AttrInt("n", n)
	sp.AttrInt("rows", n).End()
}

// inlineEnd: a whole Start-to-End chain in one statement is balanced.
func inlineEnd(tr *obs.Trace, tl *vclock.Timeline) {
	tr.Start(tl, "inline").Attr("k", "v").End()
}

// restart: reassigning the variable orphans the first span — reported at
// the reassignment (the new span is then tracked under the name as usual).
func restart(tr *obs.Trace, tl *vclock.Timeline) {
	sp := tr.Start(tl, "first")
	sp = tr.Start(tl, "second") // want `span variable sp is reassigned while span "first" is still open`
	sp.End()
}

// branchLeak: ended on one branch only.
func branchLeak(tr *obs.Trace, tl *vclock.Timeline, deep bool) {
	sp := tr.Start(tl, "branch")
	if deep {
		sp.End()
	}
} // want `span "branch" \(started at line \d+\) may still be open at the end of the function`

// escapeArg: passing the span away transfers ownership.
func escapeArg(tr *obs.Trace, tl *vclock.Timeline) {
	sp := tr.Start(tl, "escape-arg")
	register(sp)
}

// escapeReturn: returning the span transfers ownership to the caller; attr
// chains before the return do not count as escapes on their own.
func escapeReturn(tr *obs.Trace, tl *vclock.Timeline) *obs.Span {
	sp := tr.Start(tl, "escape-return")
	sp.Attr("owner", "caller")
	return sp
}

// escapeClosure: a closure capturing the span owns its End.
func escapeClosure(tr *obs.Trace, tl *vclock.Timeline) func() {
	sp := tr.Start(tl, "escape-closure")
	return func() { sp.End() }
}

// panicPath: a panic terminates the path without counting as a leak.
func panicPath(tr *obs.Trace, tl *vclock.Timeline, bad bool) {
	sp := tr.Start(tl, "panic-path")
	if bad {
		panic("bad")
	}
	sp.End()
}

// loopLeak: one leaked span per iteration.
func loopLeak(tr *obs.Trace, tl *vclock.Timeline, n int) {
	for i := 0; i < n; i++ {
		sp := tr.Start(tl, "iter") // want `span "iter" started in a loop body is not ended before the iteration ends`
		sp.Attr("phase", "compact")
	}
}

// loopBalanced: the per-iteration span is closed before the body ends.
func loopBalanced(tr *obs.Trace, tl *vclock.Timeline, n int) {
	for i := 0; i < n; i++ {
		sp := tr.Start(tl, "iter-ok")
		sp.AttrInt("i", i)
		sp.End()
	}
}
