// Package fleet is the detsched fixture: scheduler-order-dependent
// constructions (multi-case selects, arrival-order fan-in, unordered
// iteration feeding digests) next to their deterministic counterparts.
package fleet

import (
	"crypto/sha256"
	"sort"
	"sync"
)

// badSelect races two channels: whichever is ready first wins.
func badSelect(a, b chan int) int {
	select { // want `select with 2 comm cases resolves in scheduler order`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// okPoll: a default clause makes the select a non-blocking poll.
func okPoll(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return 0
	}
}

// okSingle: one comm case has exactly one outcome.
func okSingle(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

// registry holds results in a sync.Map, whose iteration and interleaving
// are both scheduler-dependent.
type registry struct {
	results sync.Map // want `sync\.Map is scheduler-order-dependent`
}

// badFanIn collects worker results by arrival order.
func badFanIn(parts []int) []int {
	var out []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			mu.Lock()
			out = append(out, p*2) // want `append to out inside a goroutine orders results by arrival`
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return out
}

// badMapMerge interleaves shared-map writes in scheduler order.
func badMapMerge(parts []int) map[int]int {
	out := map[int]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			mu.Lock()
			out[p] = p * 2 // want `write to shared map out inside a goroutine interleaves in scheduler order`
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return out
}

// okFanIn writes results[i] by the worker's own index: deterministic.
func okFanIn(parts []int) []int {
	out := make([]int, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			out[i] = p * 2
		}(i, p)
	}
	wg.Wait()
	return out
}

// Fingerprint folds values into a stable digest — when fed in a stable order.
func Fingerprint(vals []int) uint64 {
	var acc uint64
	for _, v := range vals {
		acc = acc*1099511628211 + uint64(v)
	}
	return acc
}

// badMapDigest feeds a hash in map iteration order.
func badMapDigest(m map[string][]byte) []byte {
	h := sha256.New()
	for k := range m { // want `map iteration order feeds Write`
		h.Write([]byte(k))
	}
	return h.Sum(nil)
}

// badMapFingerprint feeds a fingerprint in map iteration order.
func badMapFingerprint(m map[int][]int) uint64 {
	var acc uint64
	for _, v := range m { // want `map iteration order feeds Fingerprint`
		acc ^= Fingerprint(v)
	}
	return acc
}

// okSortedDigest iterates sorted keys: same digest every run.
func okSortedDigest(m map[string][]byte) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
	}
	return h.Sum(nil)
}
