// Package coop is the chargecheck violation/ok fixture: host-side functions
// that stream device batches or read flash, with and without accounting.
package coop

import (
	"device"
	"flash"
	"ftl"

	"vclock"
)

// fetchCharged charges the host timeline for the stream it drives: the
// direct-charge form.
func fetchCharged(tl *vclock.Timeline, dev *device.Device) error {
	tl.Charge("host.fetch", 1)
	return dev.Run(4, func(b device.Batch) error { return nil })
}

// fetchViaHelper routes the transfer through a fact-carrying helper from
// another package: covered by ftl.ChargedTransfer's imported fact.
func fetchViaHelper(f *flash.Flash, p []byte) (int, error) {
	return ftl.ChargedTransfer(f, p)
}

// fetchUncharged streams device batches with no accounting anywhere: the
// stub device does not charge and neither does this function.
func fetchUncharged(dev *device.Device) error {
	return dev.Run(4, func(b device.Batch) error { return nil }) // want `modeled I/O device execution Device\.Run in fetchUncharged, which never charges`
}

// readThrough uses the charging flash surface: flash.ReadAt's fact covers it.
func readThrough(f *flash.Flash, p []byte) (int, error) {
	return f.ReadAt(p, 0)
}

// readRaw moves modeled bytes through the non-charging mmap view with no
// local charge: flagged.
func readRaw(m *flash.Mmap, p []byte) (int, error) {
	return m.ReadAt(p, 0) // want `modeled I/O flash access Mmap\.ReadAt in readRaw, which never charges`
}

// readRawCharged performs the same raw read but accounts for it locally.
func readRawCharged(tl *vclock.Timeline, m *flash.Mmap, p []byte) (int, error) {
	tl.Charge("flash.read", vclock.Duration(len(p)))
	return m.ReadAt(p, 0)
}

// drain invokes a batch emit callback without charging anything: the
// emission surface itself is modeled I/O.
func drain(emit func(device.Batch) error) error {
	return emit(device.Batch{}) // want `modeled I/O batch emit emit in drain, which never charges`
}

// drainCharged is the corrected form: the host pays for the transfer.
func drainCharged(tl *vclock.Timeline, emit func(device.Batch) error) error {
	tl.Charge("host.transfer", 1)
	return emit(device.Batch{})
}
