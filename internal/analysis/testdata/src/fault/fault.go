// Package fault is the errsink fixture: error-returning simulator APIs
// (modeled injectors, recovery feeds, emit callbacks) whose errors are
// discarded in every way the analyzer flags, next to properly-handled and
// out-of-scope (non-simulator) calls.
package fault

import "fmt"

// Inject models injecting one fault event.
func Inject(ev string) error {
	if ev == "" {
		return fmt.Errorf("empty event")
	}
	return nil
}

// Recover models feeding one recovery outcome; returns the applied id.
func Recover(id int) (int, error) {
	return id, nil
}

// Batch stands in for a result batch streamed through an emit callback.
type Batch struct{}

// sinkStatement drops the error by using the call as a bare statement.
func sinkStatement() {
	Inject("flip") // want `error result of fault\.Inject is discarded: the call is used as a statement`
}

// sinkBlank drops the error with the blank identifier.
func sinkBlank() {
	_ = Inject("flip") // want `error result of fault\.Inject is assigned to _`
}

// sinkTuple drops the error position of a multi-result call.
func sinkTuple() int {
	v, _ := Recover(1) // want `error result of fault\.Recover is assigned to _`
	return v
}

// sinkGo launches the call on a goroutine, so the error vanishes.
func sinkGo() {
	go Inject("async") // want `error result of fault\.Inject vanishes with the goroutine`
}

// sinkDefer defers the call, so the error is discarded at function exit.
func sinkDefer() {
	defer Inject("cleanup") // want `error result of fault\.Inject is discarded by defer`
}

// drive drops the error of a func-valued emit callback.
func drive(emit func(Batch) error) {
	emit(Batch{}) // want `error result of emit is discarded: the call is used as a statement`
}

// driveOK propagates the emit error.
func driveOK(emit func(Batch) error) error {
	return emit(Batch{})
}

// okHandled consumes every error.
func okHandled() error {
	if err := Inject("flip"); err != nil {
		return err
	}
	v, err := Recover(1)
	if err != nil {
		return err
	}
	if v < 0 {
		return fmt.Errorf("bad id %d", v)
	}
	return nil
}

// okNonSim: error-returning calls into non-simulator packages are out of
// scope — this analyzer guards the simulator contract, not general hygiene.
func okNonSim() {
	fmt.Println("fine")
}
