// Package vclock is a fixture stub of the real internal/vclock package: just
// enough surface (Duration, Time, Timeline, the blessed conversions) for the
// vtunits fixture to type-check. The analyzer matches vclock types by package
// path suffix, so this stub's "vclock" path stands in for the real one — and,
// like the real one, the package itself is exempt from vtunits.
package vclock

import "time"

// Duration is a span of virtual time in microseconds.
type Duration float64

// Time is an instant on a virtual timeline, microseconds since start.
type Time float64

// Std converts a virtual duration to a wall-clock representation.
func (d Duration) Std() time.Duration {
	return time.Duration(float64(d) * float64(time.Microsecond))
}

// Std converts a virtual instant to a wall-clock offset representation.
func (t Time) Std() time.Duration {
	return time.Duration(float64(t) * float64(time.Microsecond))
}

// FromStd converts a wall-clock duration into virtual microseconds.
func FromStd(d time.Duration) Duration {
	return Duration(float64(d) / float64(time.Microsecond))
}

// Sub returns the span t-u on one timeline.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Timeline is an independently advancing virtual clock.
type Timeline struct {
	now Time
}

// Now returns the timeline's current instant.
func (tl *Timeline) Now() Time { return tl.now }

// WaitUntil advances the timeline to at least t (a rendezvous point).
func (tl *Timeline) WaitUntil(t Time) {
	if t > tl.now {
		tl.now = t
	}
}

// Charge advances the timeline by d under an accounting category.
func (tl *Timeline) Charge(category string, d Duration) {
	_ = category
	tl.now = tl.now.Add(d)
}

// MaxTime returns the later of two instants.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
