// Package lockcheck is the lockcheck fixture: counter's fields are annotated
// "guarded by mu", so methods must lock before touching them.
package lockcheck

import "sync"

type counter struct {
	mu sync.Mutex
	n  int   // guarded by mu
	hi int   // guarded by mu
	ro int64 // immutable, not annotated
}

// Inc holds the lock: no diagnostics.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	if c.n > c.hi {
		c.hi = c.n
	}
}

// Peek reads n without the lock: flagged.
func (c *counter) Peek() int {
	return c.n // want `counter\.n is guarded by mu`
}

// bump touches n before locking: the late lock does not retroactively bless
// the earlier access.
func (c *counter) bump() {
	c.n++ // want `counter\.n is guarded by mu`
	c.mu.Lock()
	c.hi = c.n
	c.mu.Unlock()
}

// resetLocked follows the caller-holds-the-lock naming convention: exempt.
func (c *counter) resetLocked() {
	c.n = 0
	c.hi = 0
}

// Reset drives the helper under the lock.
func (c *counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetLocked()
}

// Immutable reads an unannotated field: no diagnostic.
func (c *counter) Immutable() int64 { return c.ro }

// newCounter is a constructor, not a method: composite-literal initialization
// is out of scope for the syntactic check.
func newCounter() *counter {
	return &counter{ro: 7}
}

type rw struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

// Get holds the read lock: RLock counts as holding mu.
func (r *rw) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// Len forgets the lock: flagged.
func (r *rw) Len() int {
	return len(r.m) // want `rw\.m is guarded by mu`
}

type badAnnotation struct { // want `annotated guarded by lock, but badAnnotation has no field lock`
	n int // guarded by lock
}

func (b *badAnnotation) get() int { return b.n } // want `badAnnotation\.n is guarded by lock`
