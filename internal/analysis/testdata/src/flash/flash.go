// Package flash is a fixture stub of the real internal/flash package for the
// chargecheck fixtures. Flash.ReadAt charges its timeline internally — like
// the real one — so the analyzer exports a charges fact for it and callers
// in downstream fixture packages are covered without charging again.
// Mmap.ReadAt is the deliberate counter-example: a raw mapped read with no
// accounting, so callers must charge themselves or be flagged.
package flash

import "vclock"

// Flash is the charging flash channel.
type Flash struct {
	TL *vclock.Timeline
}

// ReadAt models one flash read and charges for the bytes moved.
func (f *Flash) ReadAt(p []byte, off int64) (int, error) {
	if f.TL != nil {
		f.TL.Charge("flash.read", vclock.Duration(len(p)))
	}
	return len(p), nil
}

// ReadAtSeq models a sequential flash read; same accounting.
func (f *Flash) ReadAtSeq(p []byte, off int64) (int, error) {
	if f.TL != nil {
		f.TL.Charge("flash.read.seq", vclock.Duration(len(p)))
	}
	return len(p), nil
}

// Mmap is a raw mapped view of the flash image: its ReadAt moves modeled
// bytes but deliberately does not charge, so accounting is the caller's job.
type Mmap struct{}

// ReadAt copies from the mapped image without touching any timeline.
func (m *Mmap) ReadAt(p []byte, off int64) (int, error) {
	return len(p), nil
}
