package detsched_test

import (
	"testing"

	"hybridndp/internal/analysis/analysistest"
	"hybridndp/internal/analysis/detsched"
)

func TestDetsched(t *testing.T) {
	analysistest.Run(t, "../testdata", detsched.Analyzer, "fleet")
}
