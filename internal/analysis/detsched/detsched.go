// Package detsched flags scheduler-order nondeterminism the runtime
// determinism tests can only sample. The simulator's contract is
// byte-identical fingerprints at any GOMAXPROCS, worker count, or fleet
// size; that holds only if no result ever depends on which goroutine the Go
// runtime happened to run first. Three constructions break it silently:
//
//   - a multi-case select: whichever channel is ready first wins, and with
//     more than one comm case "first" is a runtime race. Deterministic code
//     drains channels in a fixed order or uses a single-case select (a
//     default case makes the select a non-blocking poll and is exempt
//     because the poll outcome must then be handled explicitly);
//   - goroutine fan-in that collects results by append (or by writing a
//     shared map) from inside the goroutines: arrival order becomes slice
//     order. Deterministic fan-in pre-sizes the slice and writes
//     results[i] by the worker's own index, merging after Wait;
//   - iteration over an unordered container feeding a fingerprint:
//     sync.Map anywhere, or a map range whose body updates a hash or calls
//     a *Fingerprint* function — map iteration order is randomized by the
//     runtime, so the digest differs run to run.
//
// Legitimate exceptions (the sched package's cancellable Ticket.Wait is
// one: both select outcomes converge to the same recorded result) live in
// allow-listed packages under //lint:allow detsched with a justification.
package detsched

import (
	"go/ast"
	"go/types"
	"strings"

	"hybridndp/internal/analysis"
)

// SimPackages mirrors wallclock's list.
var SimPackages = []string{"vclock", "coop", "exec", "ftl", "lsm", "flash", "sched", "device", "hw", "obs", "fault", "fleet", "serve"}

// Analyzer is the detsched check.
var Analyzer = &analysis.Analyzer{
	Name:      "detsched",
	Doc:       "flags scheduler-order nondeterminism: multi-case selects, order-dependent goroutine fan-in, unordered iteration feeding fingerprints",
	Packages:  SimPackages,
	AllowIn:   []string{"internal/sched"},
	SkipTests: true,
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.SelectStmt:
				checkSelect(pass, st)
			case *ast.SelectorExpr:
				checkSyncMap(pass, st)
			case *ast.ValueSpec:
				checkSyncMapType(pass, st.Type)
			case *ast.Field:
				checkSyncMapType(pass, st.Type)
			case *ast.GoStmt:
				checkFanIn(pass, st)
			case *ast.RangeStmt:
				checkMapFingerprint(pass, st)
			}
			return true
		})
	}
	return nil
}

// checkSelect reports selects with two or more comm clauses. A default
// clause is not a comm clause; a select containing one is a non-blocking
// poll whose outcome the code must branch on anyway.
func checkSelect(pass *analysis.Pass, st *ast.SelectStmt) {
	comms := 0
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms >= 2 {
		pass.Reportf(st.Pos(), "select with %d comm cases resolves in scheduler order: drain channels in a fixed order or document why the outcomes converge", comms)
	}
}

// checkSyncMap reports any mention of sync.Map: its iteration order and
// its Load/Store interleaving are both scheduler-dependent.
func checkSyncMap(pass *analysis.Pass, sel *ast.SelectorExpr) {
	if t := pass.TypeOf(sel.X); isSyncMap(t) {
		pass.Reportf(sel.Pos(), "sync.Map is scheduler-order-dependent: use a plain map under a mutex with sorted iteration")
	}
}

func checkSyncMapType(pass *analysis.Pass, texpr ast.Expr) {
	if texpr == nil {
		return
	}
	if t := pass.TypeOf(texpr); isSyncMap(t) {
		pass.Reportf(texpr.Pos(), "sync.Map is scheduler-order-dependent: use a plain map under a mutex with sorted iteration")
	}
}

func isSyncMap(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Map"
}

// checkFanIn reports goroutine bodies that merge results in arrival order:
// an append whose target is declared outside the goroutine, or an index
// write into an outer map. Writing results[i] for a captured per-worker
// index i into an outer pre-sized slice is the deterministic idiom and is
// not flagged.
func checkFanIn(pass *analysis.Pass, st *ast.GoStmt) {
	lit, ok := st.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	outer := outerObjects(pass, lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != lit {
			return true // nested literals inherit the same capture analysis
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			// x = append(x, ...) with x captured from outside the goroutine.
			if i < len(as.Rhs) {
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isAppend(call) {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && outer[pass.Info.ObjectOf(id)] {
						pass.Reportf(as.Pos(), "append to %s inside a goroutine orders results by arrival: write results[i] by worker index and merge after Wait", id.Name)
						continue
					}
				}
			}
			// m[k] = v with m an outer map.
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if id, ok := ast.Unparen(ix.X).(*ast.Ident); ok && outer[pass.Info.ObjectOf(id)] {
					if _, isMap := pass.TypeOf(ix.X).Underlying().(*types.Map); isMap {
						pass.Reportf(as.Pos(), "write to shared map %s inside a goroutine interleaves in scheduler order: collect per-worker and merge deterministically after Wait", id.Name)
					}
				}
			}
		}
		return true
	})
}

// outerObjects collects the objects referenced in lit that are declared
// outside it (captured variables).
func outerObjects(pass *analysis.Pass, lit *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			out[obj] = true
		}
		return true
	})
	return out
}

func isAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

// checkMapFingerprint reports map ranges whose body feeds a digest: a call
// to a method on a hash.Hash-ish value (package path starting "hash" or
// "crypto"), a call to a function whose name contains "Fingerprint", or an
// fmt.Fprint* into such a value.
func checkMapFingerprint(pass *analysis.Pass, st *ast.RangeStmt) {
	t := pass.TypeOf(st.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	done := false
	ast.Inspect(st.Body, func(n ast.Node) bool {
		if done {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := staticCallee(pass, call); fn != nil && strings.Contains(fn.Name(), "Fingerprint") {
			pass.Reportf(st.Pos(), "map iteration order feeds %s: iterate sorted keys so the digest is deterministic", fn.Name())
			done = true
			return false
		}
		// A method invoked on a hash/crypto-typed value (h.Write, d.Sum):
		// the receiver's static type decides, because embedded interface
		// methods (hash.Hash's Write) resolve to io.Writer otherwise.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isHashValue(pass.TypeOf(sel.X)) {
			pass.Reportf(st.Pos(), "map iteration order feeds %s: iterate sorted keys so the digest is deterministic", sel.Sel.Name)
			done = true
			return false
		}
		return true
	})
}

func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.ObjectOf(id).(*types.Func)
	return fn
}

// isHashValue reports whether t is a named type from a hash or crypto
// package (hash.Hash, hash.Hash32, sha256 digests, ...).
func isHashValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "hash" || strings.HasPrefix(path, "hash/") || strings.HasPrefix(path, "crypto/")
}
