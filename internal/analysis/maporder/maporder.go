// Package maporder flags range statements over maps whose loop body has
// order-dependent effects: appending to a slice declared outside the loop, or
// writing to an output sink (fmt.Fprintf, strings.Builder, io.Writer...).
// Go's map iteration order is deliberately randomized, so such loops produce
// a different plan, report, or byte stream on every run — exactly the
// nondeterminism class that had to be fixed by hand in the optimizer during
// PR 1. The blessed patterns are: collect the keys, sort them, range over the
// sorted slice; or append inside the loop and sort the result before use —
// an append whose target is passed to a sort call later in the same function
// is therefore not flagged.
package maporder

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"hybridndp/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration with order-dependent effects (append/output) without sorting",
	Run:  run,
}

// outputFuncs are fmt-style functions that emit in call order.
var outputFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// outputMethods are writer methods that emit in call order.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, body, rs)
		return true
	})
}

// checkMapRange inspects one map-range's body for order-dependent effects.
func checkMapRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// target = append(target, ...) with target declared outside the loop.
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isAppend(pass, call) || i >= len(s.Lhs) {
					continue
				}
				target := s.Lhs[i]
				if declaredWithin(pass, target, rs.Body) {
					continue
				}
				if sortedAfter(pass, fnBody, rs, target) {
					continue
				}
				pass.Reportf(s.Pos(), "append to %s inside range over map %s: iteration order is random; sort the keys first or sort %s before use",
					render(target), render(rs.X), render(target))
			}
		case *ast.CallExpr:
			if name, out := isOutputCall(pass, s); out {
				pass.Reportf(s.Pos(), "%s inside range over map %s emits in random iteration order; sort the keys first",
					name, render(rs.X))
			}
		}
		return true
	})
}

// isAppend reports whether call is the builtin append.
func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
		return b.Name() == "append"
	}
	return false
}

// declaredWithin reports whether e's base identifier is declared inside
// node's source range (i.e. loop-local state): a selector or index target
// such as dedup.Conds is loop-local when dedup is.
func declaredWithin(pass *analysis.Pass, e ast.Expr, node ast.Node) bool {
	for {
		switch t := e.(type) {
		case *ast.SelectorExpr:
			e = t.X
			continue
		case *ast.IndexExpr:
			e = t.X
			continue
		case *ast.ParenExpr:
			e = t.X
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// isOutputCall classifies fmt print functions and writer methods.
func isOutputCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && outputFuncs[sel.Sel.Name] {
				return "fmt." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	if outputMethods[sel.Sel.Name] && pass.Info.Selections[sel] != nil {
		return render(sel.X) + "." + sel.Sel.Name, true
	}
	return "", false
}

// sortedAfter reports whether target is passed to a sort call after the range
// statement within the enclosing function body (append-then-sort pattern).
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, target ast.Expr) bool {
	want := render(target)
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(arg, want) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprMentions reports whether want's rendering appears as a subexpression.
func exprMentions(e ast.Expr, want string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if expr, ok := n.(ast.Expr); ok && render(expr) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

func render(e ast.Expr) string {
	var b bytes.Buffer
	_ = printer.Fprint(&b, token.NewFileSet(), e)
	return b.String()
}
