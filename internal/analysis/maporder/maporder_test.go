package maporder_test

import (
	"testing"

	"hybridndp/internal/analysis/analysistest"
	"hybridndp/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "../testdata", maporder.Analyzer, "maporder")
}
