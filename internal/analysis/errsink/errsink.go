// Package errsink forbids discarding error results from simulator APIs.
//
// The PR 5/6 work made the emit, fault-injection and recovery surfaces
// error-returning precisely so that callers must route failures into the
// deterministic recovery machinery (sched.ReportDeviceResult, retry/fallback
// in coop, circuit-breaking admission). An error silently dropped with
//
//	_ = emit(batch)
//	dev.Run(q, emit)        // (value used as statement)
//	go inj.Inject(ev)       // (goroutine result vanishes)
//
// doesn't just lose a log line: the virtual-time ledger and the fault
// bookkeeping diverge from the modeled device state, and the divergence is
// invisible until a fingerprint mismatch much later. The check is syntactic
// and whole-package: any call whose static callee is declared in a
// simulation package and whose result tuple contains an error must consume
// that error — assigning it to `_`, using the call as a bare statement, or
// launching it via go/defer all count as sinks and are reported.
//
// Calls into non-simulation packages (fmt, io, strings, ...) are never
// flagged — this analyzer guards the simulator's own contract, not general
// Go hygiene. Deliberate sinks in allow-listed packages use
// //lint:allow errsink with a justification.
package errsink

import (
	"go/ast"
	"go/types"
	"strings"

	"hybridndp/internal/analysis"
)

// SimPackages mirrors wallclock's list.
var SimPackages = []string{"vclock", "coop", "exec", "ftl", "lsm", "flash", "sched", "device", "hw", "obs", "fault", "fleet", "serve"}

// Analyzer is the errsink check.
var Analyzer = &analysis.Analyzer{
	Name:      "errsink",
	Doc:       "error results of simulator APIs (emit, inject, recovery feeds) must not be discarded",
	Packages:  SimPackages,
	AllowIn:   []string{"internal/obs", "internal/fault"},
	SkipTests: true,
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(pass, call, "is discarded: the call is used as a statement")
				}
			case *ast.GoStmt:
				check(pass, st.Call, "vanishes with the goroutine: collect it and feed it to the recovery path")
			case *ast.DeferStmt:
				check(pass, st.Call, "is discarded by defer: wrap it in a closure that consumes the error")
			case *ast.AssignStmt:
				checkAssign(pass, st)
			}
			return true
		})
	}
	return nil
}

// check reports call if its callee is a simulator function (or a
// simulator-declared func value, e.g. an emit callback) whose results
// include an error.
func check(pass *analysis.Pass, call *ast.CallExpr, how string) {
	name, idx, _ := simErrCallee(pass, call)
	if idx < 0 {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s %s", name, how)
}

// checkAssign reports `_`-in-error-position assignments from sim calls:
// v, _ := dev.Run(...) and _ = emit(b).
func checkAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, idx, nres := simErrCallee(pass, call)
	if idx < 0 {
		return
	}
	var target ast.Expr
	switch {
	case nres == len(st.Lhs):
		target = st.Lhs[idx]
	case nres == 1 && len(st.Lhs) == 1:
		target = st.Lhs[0]
	default:
		return
	}
	if id, ok := target.(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(call.Pos(), "error result of %s is assigned to _: handle it or feed it to the recovery path", name)
	}
}

// simErrCallee resolves the call's callee and, when it belongs to a
// simulation package and returns an error, yields a display name, the
// error's index in the result tuple, and the tuple length. Two callee kinds
// qualify: a statically-resolved function or method declared in a sim
// package, and a func-typed value (parameter, field, local — e.g. a
// device.Run emit callback) declared in a sim package. Calls that resolve to
// neither are skipped.
func simErrCallee(pass *analysis.Pass, call *ast.CallExpr) (string, int, int) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", -1, 0
	}
	obj := pass.Info.ObjectOf(id)
	if obj == nil || obj.Pkg() == nil || !inSimPackage(obj.Pkg().Path()) {
		return "", -1, 0
	}
	var name string
	switch obj.(type) {
	case *types.Func:
		name = obj.Pkg().Name() + "." + obj.Name()
	case *types.Var:
		name = obj.Name() // a func value: the variable name is the best label
	default:
		return "", -1, 0
	}
	sig, ok := obj.Type().Underlying().(*types.Signature)
	if !ok {
		return "", -1, 0
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return name, i, res.Len()
		}
	}
	return "", -1, 0
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}

func inSimPackage(path string) bool {
	for _, s := range SimPackages {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
