package errsink_test

import (
	"testing"

	"hybridndp/internal/analysis/analysistest"
	"hybridndp/internal/analysis/errsink"
)

func TestErrsink(t *testing.T) {
	analysistest.Run(t, "../testdata", errsink.Analyzer, "fault")
}
