// Package load discovers, parses and type-checks every Go package of a
// module using only the standard library: go/parser for syntax and go/types
// with the source importer for semantics. It exists because the repository
// builds fully offline — golang.org/x/tools (go/packages) is not available —
// and the hybridlint analyzers need type information to distinguish, say, a
// range over a map from a range over a slice.
//
// Module-internal imports are resolved against the packages discovered in the
// same load; everything else (the standard library) falls back to the source
// importer, which type-checks GOROOT packages from source.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"hybridndp/internal/analysis"
)

// rawPkg is one directory's worth of parsed files, pre type-check.
type rawPkg struct {
	importPath string
	dir        string
	files      []*ast.File // package files + in-package _test.go files
	xtestFiles []*ast.File // package foo_test files
	imports    map[string]bool
	xtestImps  map[string]bool
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	m := moduleRe.FindSubmatch(b)
	if m == nil {
		return "", fmt.Errorf("load: no module directive in %s/go.mod", root)
	}
	return string(m[1]), nil
}

// Module parses and type-checks every package under root (the module
// directory). Directories named testdata, vendor, or starting with "." or "_"
// are skipped. In-package test files are type-checked together with their
// package; external _test packages are returned as separate units with the
// import path suffix ".test".
func Module(root string) ([]*analysis.Unit, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	raw := map[string]*rawPkg{} // import path → package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		rp, err := parseDir(fset, path, ip)
		if err != nil {
			return err
		}
		if rp != nil {
			raw[ip] = rp
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return check(fset, modPath, raw)
}

// Tree is like Module but for a bare directory tree of packages whose import
// paths are their directory names relative to root (no module prefix). It is
// the loader behind analysistest fixtures, mirroring the GOPATH-style
// testdata/src layout of x/tools' analysistest.
func Tree(root string) ([]*analysis.Unit, error) {
	fset := token.NewFileSet()
	raw := map[string]*rawPkg{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		rp, err := parseDir(fset, path, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		if rp != nil {
			raw[filepath.ToSlash(rel)] = rp
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return check(fset, "", raw)
}

// parseDir parses one directory's Go files into a rawPkg (nil if no Go files).
func parseDir(fset *token.FileSet, dir, importPath string) (*rawPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rp := &rawPkg{importPath: importPath, dir: dir, imports: map[string]bool{}, xtestImps: map[string]bool{}}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		xtest := strings.HasSuffix(f.Name.Name, "_test")
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if xtest {
				rp.xtestImps[p] = true
			} else {
				rp.imports[p] = true
			}
		}
		if xtest {
			rp.xtestFiles = append(rp.xtestFiles, f)
		} else {
			rp.files = append(rp.files, f)
		}
	}
	if len(rp.files) == 0 && len(rp.xtestFiles) == 0 {
		return nil, nil
	}
	return rp, nil
}

// moduleImporter resolves module-internal imports from the checked map and
// delegates everything else to the source importer.
type moduleImporter struct {
	checked map[string]*types.Package
	std     types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// check type-checks the raw packages in dependency order.
func check(fset *token.FileSet, modPath string, raw map[string]*rawPkg) ([]*analysis.Unit, error) {
	internal := func(p string) bool {
		_, ok := raw[p]
		return ok
	}
	// Topological order over module-internal imports.
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("load: import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		deps := make([]string, 0, len(raw[p].imports))
		for d := range raw[p].imports {
			if internal(d) {
				deps = append(deps, d)
			}
		}
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	imp := &moduleImporter{
		checked: map[string]*types.Package{},
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	var units []*analysis.Unit
	checkUnit := func(path, name string, files []*ast.File) (*types.Package, error) {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		var errs []string
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				errs = append(errs, err.Error())
			},
		}
		pkg, _ := conf.Check(name, fset, files, info)
		if len(errs) > 0 {
			n := len(errs)
			if n > 5 {
				errs = errs[:5]
			}
			return nil, fmt.Errorf("load: type errors in %s (%d):\n  %s", path, n, strings.Join(errs, "\n  "))
		}
		units = append(units, &analysis.Unit{Path: path, Fset: fset, Files: files, Pkg: pkg, Info: info})
		return pkg, nil
	}
	for _, p := range order {
		rp := raw[p]
		if len(rp.files) > 0 {
			pkg, err := checkUnit(p, p, rp.files)
			if err != nil {
				return nil, err
			}
			imp.checked[p] = pkg
		}
	}
	// External test packages after every base package is available.
	for _, p := range order {
		rp := raw[p]
		if len(rp.xtestFiles) > 0 {
			if _, err := checkUnit(p+".test", p+"_test", rp.xtestFiles); err != nil {
				return nil, err
			}
		}
	}
	return units, nil
}
