package load_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hybridndp/internal/analysis/load"
)

func write(t *testing.T, root, name, src string) {
	t.Helper()
	p := filepath.Join(root, name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSyntaxErrorReportsCleanly checks that a package with a parse error
// comes back as an error naming the offending file — not a panic, and not a
// silent skip.
func TestSyntaxErrorReportsCleanly(t *testing.T) {
	root := t.TempDir()
	write(t, root, "go.mod", "module broken\n\ngo 1.22\n")
	write(t, root, "bad/bad.go", "package bad\n\nfunc oops( {\n")
	_, err := load.Module(root)
	if err == nil {
		t.Fatal("load.Module on a syntax-error package: got nil error")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error does not name the offending file: %v", err)
	}
}

// TestTypeErrorReportsCleanly checks the same for a type-check failure.
func TestTypeErrorReportsCleanly(t *testing.T) {
	root := t.TempDir()
	write(t, root, "go.mod", "module broken\n\ngo 1.22\n")
	write(t, root, "bad/bad.go", "package bad\n\nvar x int = \"not an int\"\n")
	_, err := load.Module(root)
	if err == nil {
		t.Fatal("load.Module on a type-error package: got nil error")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error does not name the offending package: %v", err)
	}
}

// TestTreeSyntaxError checks the fixture-tree loader path as well — the
// analysistest harness depends on this not panicking.
func TestTreeSyntaxError(t *testing.T) {
	root := t.TempDir()
	write(t, root, "bad/bad.go", "package bad\n\nfunc oops( {\n")
	_, err := load.Tree(root)
	if err == nil {
		t.Fatal("load.Tree on a syntax-error package: got nil error")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Errorf("error does not name the offending file: %v", err)
	}
}

// TestModulePathMissing checks that a missing go.mod is a clean error.
func TestModulePathMissing(t *testing.T) {
	if _, err := load.ModulePath(t.TempDir()); err == nil {
		t.Fatal("load.ModulePath without go.mod: got nil error")
	}
}

// TestModulePath reads the declared module path back.
func TestModulePath(t *testing.T) {
	root := t.TempDir()
	write(t, root, "go.mod", "module example.com/demo\n\ngo 1.22\n")
	got, err := load.ModulePath(root)
	if err != nil {
		t.Fatalf("ModulePath: %v", err)
	}
	if got != "example.com/demo" {
		t.Errorf("ModulePath = %q, want %q", got, "example.com/demo")
	}
}
