package spanbalance_test

import (
	"testing"

	"hybridndp/internal/analysis/analysistest"
	"hybridndp/internal/analysis/spanbalance"
)

func TestSpanbalance(t *testing.T) {
	analysistest.Run(t, "../testdata", spanbalance.Analyzer, "lsm")
}
