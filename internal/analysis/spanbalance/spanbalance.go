// Package spanbalance enforces that every obs.Trace.Start is paired with
// Span.End on every control-flow path. An un-ended span is not cosmetic in
// this simulator: Trace keeps a per-timeline stack of open spans, so a span
// leaked on an error path leaves the stack pointing at a dead span and every
// later span on that timeline — including the spans of a fault-injection
// *retry* of the same query — nests under it, corrupting the trace tree the
// tracecheck CI gate validates.
//
// The analysis interprets each function body statement by statement,
// tracking every variable bound to a Start result:
//
//   - sp := tr.Start(...) opens the span (chained .Attr/.AttrInt are
//     transparent). A Start result that is neither captured nor immediately
//     .End()ed in the same chain is reported as dropped.
//   - sp.End() — directly or at the end of an attr chain — closes it;
//     defer sp.End() balances every subsequent exit.
//   - A return (or the implicit fall-off-the-end of a void function) while a
//     span is definitely open is reported at the return.
//   - Reassigning an open span variable to a fresh Start is reported: the
//     old span can no longer be ended through that name.
//   - Passing the span to a call, returning it, storing it in a field,
//     slice, map or other variable, or capturing it in a closure transfers
//     ownership: the variable is treated as balanced from then on.
//
// Branches merge pessimistically (open in either arm counts as open), loop
// bodies are interpreted once, and a span started inside a loop body must be
// closed by the end of that body. The obs package itself — where Start and
// End are defined — is exempt.
package spanbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hybridndp/internal/analysis"
)

// SimPackages mirrors wallclock's list; spans only exist in simulation code.
var SimPackages = []string{"vclock", "coop", "exec", "ftl", "lsm", "flash", "sched", "device", "hw", "obs", "fault", "fleet", "serve"}

// Analyzer is the spanbalance check.
var Analyzer = &analysis.Analyzer{
	Name:      "spanbalance",
	Doc:       "every obs.Trace.Start must be paired with Span.End on all control-flow paths",
	Packages:  SimPackages,
	AllowIn:   []string{"internal/coop", "internal/device"},
	SkipTests: true,
	Run:       run,
}

func run(pass *analysis.Pass) error {
	if isPkg(pass.Path, "obs") {
		return nil // the defining package manages spans by hand
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// spanState is one tracked span variable's abstract state.
type spanState int

const (
	stateOpen spanState = iota
	stateClosed
	stateEscaped // ownership transferred or defer-ended: balanced by fiat
)

// span is one tracked Start result.
type span struct {
	obj   types.Object
	name  string // span label for messages (the Start name argument if literal)
	start token.Pos
}

// env maps tracked spans to their state along one path.
type env map[*span]spanState

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// merge folds a branch's exit state into e: open in either is open.
func (e env) merge(o env) {
	for k, v := range o {
		cur, ok := e[k]
		if !ok {
			e[k] = v
			continue
		}
		if v == stateOpen || cur == stateOpen {
			e[k] = stateOpen
		} else if v == stateEscaped || cur == stateEscaped {
			e[k] = stateEscaped
		}
	}
}

// checker interprets one function body. Nested function literals are
// separate functions (checked on their own); a reference to an outer span
// inside one is an escape.
type checker struct {
	pass *analysis.Pass
	body *ast.BlockStmt
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, body: body}
	e := env{}
	terminated := c.stmts(body.List, e)
	if !terminated {
		c.reportOpen(e, body.End(), "at the end of the function")
	}
}

// stmts interprets a list; returns true when every path terminates.
func (c *checker) stmts(list []ast.Stmt, e env) bool {
	for _, s := range list {
		if c.stmt(s, e) {
			return true
		}
	}
	return false
}

// stmt interprets one statement into e; returns true if the path terminates.
func (c *checker) stmt(s ast.Stmt, e env) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		c.assign(st, e)
		return false
	case *ast.ExprStmt:
		if isPanic(st.X) {
			return true
		}
		c.expr(st.X, e, true)
		return false
	case *ast.DeferStmt:
		// defer sp.End() (possibly through an attr chain or a closure that
		// ends it) balances every subsequent exit.
		if sp := c.endTarget(st.Call, e); sp != nil {
			e[sp] = stateEscaped
			return false
		}
		c.expr(st.Call, e, false)
		return false
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.expr(r, e, false)
		}
		c.reportOpen(e, st.Pos(), "at this return")
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return c.stmts(st.List, e)
	case *ast.LabeledStmt:
		return c.stmt(st.Stmt, e)
	case *ast.IfStmt:
		if st.Init != nil {
			c.stmt(st.Init, e)
		}
		c.expr(st.Cond, e, false)
		thenEnv := e.clone()
		thenTerm := c.stmts(st.Body.List, thenEnv)
		elseEnv := e.clone()
		elseTerm := false
		if st.Else != nil {
			elseTerm = c.stmt(st.Else, elseEnv)
		}
		for k := range e {
			delete(e, k)
		}
		switch {
		case thenTerm && elseTerm:
			e.merge(thenEnv) // arbitrary: both terminated, state unused
			return true
		case thenTerm:
			e.merge(elseEnv)
		case elseTerm:
			e.merge(thenEnv)
		default:
			e.merge(thenEnv)
			e.merge(elseEnv)
		}
		return false
	case *ast.ForStmt:
		if st.Init != nil {
			c.stmt(st.Init, e)
		}
		c.loopBody(st.Body, e)
		return false
	case *ast.RangeStmt:
		c.expr(st.X, e, false)
		c.loopBody(st.Body, e)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		c.clauses(s, e)
		return false
	case *ast.GoStmt:
		c.expr(st.Call, e, false)
		return false
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, e, false)
					}
				}
			}
		}
		return false
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if ex, ok := n.(ast.Expr); ok {
				c.expr(ex, e, false)
				return false
			}
			return true
		})
		return false
	}
}

// loopBody interprets a loop body once. Spans opened inside the body must be
// closed by its end — each iteration would leak one otherwise.
func (c *checker) loopBody(body *ast.BlockStmt, e env) {
	inner := e.clone()
	c.stmts(body.List, inner)
	for sp, st := range inner {
		if _, existed := e[sp]; existed {
			e[sp] = st
			continue
		}
		if st == stateOpen {
			c.pass.Reportf(sp.start, "span %s started in a loop body is not ended before the iteration ends", sp.name)
		}
	}
}

// clauses interprets switch/type-switch/select clause bodies as branches.
func (c *checker) clauses(s ast.Stmt, e env) {
	var bodies [][]ast.Stmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			c.stmt(st.Init, e)
		}
		if st.Tag != nil {
			c.expr(st.Tag, e, false)
		}
		for _, cl := range st.Body.List {
			bodies = append(bodies, cl.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range st.Body.List {
			bodies = append(bodies, cl.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cl := range st.Body.List {
			bodies = append(bodies, cl.(*ast.CommClause).Body)
		}
	}
	base := e.clone()
	merged := false
	for _, b := range bodies {
		be := base.clone()
		if !c.stmts(b, be) {
			if !merged {
				for k := range e {
					delete(e, k)
				}
				e.merge(be)
				merged = true
			} else {
				e.merge(be)
			}
		}
	}
}

// assign handles span births (sp := tr.Start(...)), reassignments, ends via
// chains on the RHS, and ownership transfers.
func (c *checker) assign(st *ast.AssignStmt, e env) {
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) {
			c.expr(rhs, e, false)
			continue
		}
		lhs := st.Lhs[i]
		if startCall, name := c.startChain(rhs); startCall != nil {
			id, blank := lhsIdent(lhs)
			if id == nil {
				if !blank {
					// Stored straight into a field/slice/map: escaped.
					c.expr(lhs, e, false)
					continue
				}
				// _ = tr.Start(...): explicitly discarded, never endable.
				c.pass.Reportf(startCall.Pos(), "span %s is started and discarded: the Start result must be ended", name)
				continue
			}
			obj := c.pass.Info.ObjectOf(id)
			if prev := findSpan(e, obj); prev != nil {
				if e[prev] == stateOpen {
					c.pass.Reportf(startCall.Pos(), "span variable %s is reassigned while span %s is still open", id.Name, prev.name)
				}
				// The name now denotes the new span; stop tracking the old
				// binding (its leak, if any, was just reported).
				delete(e, prev)
			}
			sp := &span{obj: obj, name: name, start: startCall.Pos()}
			e[sp] = stateOpen
			continue
		}
		// Non-Start RHS: any tracked span mentioned escapes (stored away).
		c.expr(rhs, e, false)
		if id, _ := lhsIdent(lhs); id == nil {
			c.expr(lhs, e, false)
		}
	}
}

// expr scans an expression for span events. When stmtLevel is true the
// expression is a standalone statement, so a bare Start chain without End is
// a drop and an End chain is a close; otherwise any mention of a tracked
// span that is not an End/attr chain is an escape.
func (c *checker) expr(x ast.Expr, e env, stmtLevel bool) {
	if x == nil {
		return
	}
	// End through a chain rooted at a tracked variable?
	if call, ok := x.(*ast.CallExpr); ok {
		if sp := c.endTarget(call, e); sp != nil {
			if e[sp] != stateEscaped {
				e[sp] = stateClosed
			}
			// Arguments of the attr chain may still mention other spans.
			for _, a := range call.Args {
				c.expr(a, e, false)
			}
			return
		}
		if startCall, name := c.startChain(x); startCall != nil && stmtLevel {
			c.pass.Reportf(startCall.Pos(), "span %s is started and dropped: end it, defer its End, or assign it", name)
			return
		}
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// Capture by a closure: every tracked span mentioned escapes.
			c.escapeMentions(v.Body, e)
			return false
		case *ast.CallExpr:
			if sp := c.endTarget(v, e); sp != nil {
				if e[sp] != stateEscaped {
					e[sp] = stateClosed
				}
				return false
			}
			// A span passed as an argument escapes; attr chains on the span
			// keep it open but are not escapes.
			if root, isChain := c.attrChainRoot(v); isChain {
				_ = root
				for _, a := range v.Args {
					c.expr(a, e, false)
				}
				return false
			}
			return true
		case *ast.Ident:
			if sp := findSpan(e, c.pass.Info.ObjectOf(v)); sp != nil && e[sp] == stateOpen {
				e[sp] = stateEscaped
			}
		}
		return true
	})
}

// escapeMentions marks every tracked span referenced under n as escaped.
func (c *checker) escapeMentions(n ast.Node, e env) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if sp := findSpan(e, c.pass.Info.ObjectOf(id)); sp != nil {
				e[sp] = stateEscaped
			}
		}
		return true
	})
}

// startChain unwraps a (possibly attr-chained) Trace.Start call: returns the
// Start call and the span's display name, or nil.
func (c *checker) startChain(x ast.Expr) (*ast.CallExpr, string) {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Start":
		if !isNamedType(c.pass.TypeOf(sel.X), "obs", "Trace") {
			return nil, ""
		}
		name := "(dynamic)"
		if len(call.Args) >= 2 {
			name = render(call.Args[1])
		}
		return call, name
	case "Attr", "AttrInt":
		if !isNamedType(c.pass.TypeOf(sel.X), "obs", "Span") {
			return nil, ""
		}
		return c.startChain(sel.X)
	}
	return nil, ""
}

// endTarget resolves calls of the form sp.End(), sp.Attr(...).End(), ... to
// the tracked span variable sp, or nil.
func (c *checker) endTarget(call *ast.CallExpr, e env) *span {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	root := chainRoot(sel.X)
	if root == nil {
		return nil
	}
	return findSpan(e, c.pass.Info.ObjectOf(root))
}

// attrChainRoot reports whether call is an Attr/AttrInt chain on a tracked
// span (kept open, not an escape) and returns its root identifier.
func (c *checker) attrChainRoot(call *ast.CallExpr) (*ast.Ident, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	if sel.Sel.Name != "Attr" && sel.Sel.Name != "AttrInt" {
		return nil, false
	}
	if !isNamedType(c.pass.TypeOf(sel.X), "obs", "Span") {
		return nil, false
	}
	root := chainRoot(sel.X)
	return root, root != nil
}

// chainRoot walks sp.Attr(...).AttrInt(...) ... back to the base identifier.
func chainRoot(x ast.Expr) *ast.Ident {
	for {
		switch v := x.(type) {
		case *ast.Ident:
			return v
		case *ast.CallExpr:
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			x = sel.X
		case *ast.ParenExpr:
			x = v.X
		case *ast.SelectorExpr:
			x = v.X
		default:
			return nil
		}
	}
}

// findSpan looks a variable object up among the tracked spans.
func findSpan(e env, obj types.Object) *span {
	if obj == nil {
		return nil
	}
	for sp := range e {
		if sp.obj == obj {
			return sp
		}
	}
	return nil
}

// reportOpen reports every span definitely open in e.
func (c *checker) reportOpen(e env, pos token.Pos, where string) {
	// Deterministic order: by start position.
	var open []*span
	for sp, st := range e {
		if st == stateOpen {
			open = append(open, sp)
		}
	}
	sort.Slice(open, func(i, j int) bool { return open[i].start < open[j].start })
	for _, sp := range open {
		c.pass.Reportf(pos, "span %s (started at line %d) may still be open %s: End it on this path or defer its End",
			sp.name, c.pass.Fset.Position(sp.start).Line, where)
	}
}

// lhsIdent classifies an assignment target: a plain identifier (tracked), the
// blank identifier, or something else (field/index — an escape).
func lhsIdent(lhs ast.Expr) (*ast.Ident, bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return nil, false
	}
	if id.Name == "_" {
		return nil, true
	}
	return id, false
}

// isNamedType reports whether t (possibly a pointer) is pkgSuffix.name.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	return isPkg(obj.Pkg().Path(), pkgSuffix)
}

func isPkg(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isPanic reports whether e is a call to the builtin panic.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// render prints a short label for the span-name argument.
func render(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.BasicLit:
		return v.Value
	case *ast.Ident:
		return v.Name
	case *ast.BinaryExpr:
		return render(v.X) + "+…"
	}
	return "(expr)"
}
