package analysis_test

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hybridndp/internal/analysis"
	"hybridndp/internal/analysis/load"
)

// markedFact marks a function whose name starts with "Marked".
type markedFact struct{}

func (*markedFact) AFact() {}

// factAnalyzer exports a fact on every Marked* function and reports every
// call to a fact-carrying function — so a diagnostic in package b proves the
// fact exported while analyzing package a survived the package boundary.
var factAnalyzer = &analysis.Analyzer{
	Name: "factprobe",
	Doc:  "test analyzer: flags calls to fact-marked functions",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.FuncDecl:
					if obj, ok := pass.Info.Defs[v.Name].(*types.Func); ok {
						if len(v.Name.Name) >= 6 && v.Name.Name[:6] == "Marked" {
							pass.ExportObjectFact(obj, &markedFact{})
						}
					}
				case *ast.CallExpr:
					var id *ast.Ident
					switch fun := v.Fun.(type) {
					case *ast.Ident:
						id = fun
					case *ast.SelectorExpr:
						id = fun.Sel
					default:
						return true
					}
					if fn, ok := pass.Info.Uses[id].(*types.Func); ok {
						if _, found := pass.ImportObjectFact(fn); found {
							pass.Reportf(v.Pos(), "call to marked %s", fn.Name())
						}
					}
				}
				return true
			})
		}
		return nil
	},
}

// writeTree lays a two-package fixture tree (b imports a) into a temp dir.
func writeTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"a/a.go": "package a\n\nfunc MarkedHelper() {}\n\nfunc plain() {}\n",
		"b/b.go": "package b\n\nimport \"a\"\n\nfunc use() {\n\ta.MarkedHelper()\n}\n",
	}
	for name, src := range files {
		p := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestFactRoundTrip checks that a fact exported on an object while analyzing
// its defining package is importable from a downstream package's pass.
func TestFactRoundTrip(t *testing.T) {
	units, err := load.Tree(writeTree(t))
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	diags, err := analysis.Run(units, []*analysis.Analyzer{factAnalyzer})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if filepath.Base(d.Pos.Filename) != "b.go" || d.Message != "call to marked MarkedHelper" {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestRunDeterministic checks that repeated concurrent runs of multiple
// analyzers produce byte-identical, fully sorted output.
func TestRunDeterministic(t *testing.T) {
	units, err := load.Tree(writeTree(t))
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	// A second analyzer reporting at the same position as the first, so the
	// sort's analyzer/message tiebreakers are exercised.
	echo := &analysis.Analyzer{
		Name: "echoprobe",
		Doc:  "test analyzer: flags every call",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						pass.Reportf(call.Pos(), "call seen")
					}
					return true
				})
			}
			return nil
		},
	}
	var first []analysis.Diagnostic
	for i := 0; i < 20; i++ {
		diags, err := analysis.Run(units, []*analysis.Analyzer{factAnalyzer, echo})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if i == 0 {
			first = diags
			if len(first) != 2 {
				t.Fatalf("got %d diagnostics, want 2: %v", len(first), first)
			}
			continue
		}
		if !reflect.DeepEqual(diags, first) {
			t.Fatalf("run %d differs:\n got %v\nwant %v", i, diags, first)
		}
	}
}
