package wallclock_test

import (
	"testing"

	"hybridndp/internal/analysis/analysistest"
	"hybridndp/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "../testdata", wallclock.Analyzer, "sched", "hw")
}
